// Command meshbench regenerates the experiment tables of EXPERIMENTS.md:
// every theorem and figure of the SPAA'91 multisearch paper has one
// experiment (see DESIGN.md §4 for the index).
//
// Usage:
//
//	meshbench                 # run everything, full sizes
//	meshbench -quick          # small sizes (CI-friendly)
//	meshbench -run E2,E5      # selected experiments
//	meshbench -model theoretical
//	meshbench -seed 7
//	meshbench -profile        # per-operation step breakdowns (E1–E5)
//	meshbench -timeout 30s    # per-experiment wall-clock limit
//	meshbench -budget 1e7     # per-mesh step budget
//	meshbench -audit          # verify op invariants while running
//	meshbench -chaos 42       # seeded fault injection (see DESIGN.md §3.3)
//	meshbench -trace out.json # Chrome trace-event export (Perfetto-loadable)
//	meshbench -phase-table    # per-phase step tables (DESIGN.md §3.4)
//	meshbench -metrics :8844  # live run metrics over HTTP while running
//
// A failing experiment — timeout, budget overrun, detected fault, panic —
// prints its error and any rows completed so far; the remaining experiments
// still run, and the process exits non-zero if anything failed.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// liveState is what the -metrics endpoint reports next to the tracer's own
// snapshot: experiment progress and step-budget headroom.
type liveState struct {
	mu        sync.Mutex
	current   string
	completed int
	failed    int
	total     int
}

func (s *liveState) set(current string, completed, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current, s.completed, s.failed = current, completed, failed
}

// snapshot assembles the full metrics document. budget is the -budget flag
// (0 = unlimited); headroom is measured against the tracer's current run.
func (s *liveState) snapshot(tr *trace.Tracer, budget int64) map[string]any {
	live := tr.Live()
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := map[string]any{
		"experiment_current":   s.current,
		"experiments_done":     s.completed,
		"experiments_failed":   s.failed,
		"experiments_total":    s.total,
		"trace":                live,
		"step_budget_per_mesh": budget,
	}
	if budget > 0 {
		// The span clock is a low-water mark (it only advances on span
		// events), and one tracer serves many meshes: a run can legitimately
		// pass the per-mesh budget of an *earlier* mesh, or overrun before
		// the abort lands. Clamp at zero — headroom is "budget remaining",
		// never a debt.
		headroom := budget - live.StepClock
		if headroom < 0 {
			headroom = 0
		}
		doc["step_budget_headroom"] = headroom
	}
	return doc
}

// serveMetrics exposes the snapshot on /metrics (plus the standard
// /debug/vars expvar page) at addr, e.g. ":8844".
func serveMetrics(addr string, s *liveState, tr *trace.Tracer, budget int64) {
	expvar.Publish("meshbench", expvar.Func(func() any { return s.snapshot(tr, budget) }))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(s.snapshot(tr, budget))
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: metrics server: %v\n", err)
		}
	}()
}

func main() {
	quick := flag.Bool("quick", false, "small problem sizes")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	model := flag.String("model", "counted", "cost model: counted | theoretical")
	format := flag.String("format", "text", "output format: text | csv")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "progress to stderr")
	list := flag.Bool("list", false, "list experiments and exit")
	profile := flag.Bool("profile", false, "append per-operation step breakdowns (sorts, scans, RAR/RAW, ...) to each table")
	timeout := flag.Duration("timeout", 0, "wall-clock limit per experiment (0 = none)")
	budget := flag.Float64("budget", 0, "mesh step budget per experiment mesh (0 = unlimited)")
	audit := flag.Bool("audit", false, "verify operation invariants (sortedness, scan identities, RAR/RAW oracles) while running")
	chaos := flag.Int64("chaos", 0, "inject seeded faults with this seed (non-zero; combine with -audit to detect them)")
	chaosP := flag.Float64("chaos-p", 0.01, "per-consultation fault probability for -chaos")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of all runs to this file (load in Perfetto)")
	phaseTable := flag.Bool("phase-table", false, "print per-phase step tables after each experiment")
	metrics := flag.String("metrics", "", "serve live run metrics (JSON) on this address, e.g. :8844")
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Profile: *profile}
	switch *model {
	case "counted":
		cfg.Model = mesh.CostCounted
	case "theoretical":
		cfg.Model = mesh.CostTheoretical
	default:
		fmt.Fprintf(os.Stderr, "meshbench: unknown cost model %q\n", *model)
		os.Exit(2)
	}
	// Validate -format before any experiment runs: a full experiment can
	// take minutes, and the seed only rejected an unknown format inside the
	// per-experiment output loop, after that work was already spent.
	switch *format {
	case "text", "csv":
	default:
		fmt.Fprintf(os.Stderr, "meshbench: unknown format %q (want text | csv)\n", *format)
		os.Exit(2)
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	cfg.Budget = int64(*budget)
	cfg.Audit = *audit
	var injector *faults.Injector
	if *chaos != 0 {
		p := *chaosP
		injector = faults.New(faults.Config{
			Seed: *chaos, PSortLie: p, PCorrupt: p, PDrop: p, PDup: p,
		})
		cfg.Injector = injector
	}
	var tracer *trace.Tracer
	if *traceFile != "" || *phaseTable || *metrics != "" {
		tracer = trace.New()
		cfg.Tracer = tracer
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All
	} else {
		seen := map[string]bool{}
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e := bench.Find(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "meshbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			if seen[e.ID] {
				fmt.Fprintf(os.Stderr, "meshbench: experiment %s listed twice in -run\n", e.ID)
				os.Exit(2)
			}
			seen[e.ID] = true
			selected = append(selected, *e)
		}
	}

	if *format == "text" {
		fmt.Printf("multisearch on a mesh-connected computer — experiment harness\n")
		fmt.Printf("cost model: %s   seed: %d   quick: %v\n", cfg.Model, cfg.Seed, cfg.Quick)
		if *chaos != 0 {
			fmt.Printf("chaos: seed %d, p=%g per consultation   audit: %v\n", *chaos, *chaosP, *audit)
		}
	}
	live := &liveState{total: len(selected)}
	if *metrics != "" {
		serveMetrics(*metrics, live, tracer, int64(*budget))
	}
	failed, done := 0, 0
	for _, e := range selected {
		e := e
		runCfg := cfg
		cancel := func() {}
		if *timeout > 0 {
			runCfg.Ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		}
		live.set(e.ID, done, failed)
		mark := 0
		if tracer != nil {
			mark = tracer.NumRuns()
		}
		start := time.Now()
		t, err := bench.SafeRun(&e, runCfg)
		cancel()
		// Partial rows are worth printing even on failure — that is the
		// point of the harness owning the table.
		switch *format {
		case "csv":
			t.CSV(os.Stdout)
		case "text":
			t.Print(os.Stdout)
			fmt.Printf("  (%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		}
		if *phaseTable && tracer != nil {
			runs := tracer.RunsSince(mark)
			if *format == "csv" {
				trace.WritePhaseCSV(os.Stdout, runs)
			} else {
				trace.WritePhaseTable(os.Stdout, runs)
			}
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "meshbench: %s failed after %.1fs: %v\n",
				e.ID, time.Since(start).Seconds(), err)
		}
		done++
		live.set("", done, failed)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
			os.Exit(1)
		}
		werr := tracer.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "meshbench: writing %s: %v\n", *traceFile, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "meshbench: wrote %d traced run(s) to %s\n", tracer.NumRuns(), *traceFile)
	}
	if injector != nil {
		fmt.Fprintf(os.Stderr, "meshbench: chaos injected %d fault(s)\n", injector.Count())
		if *verbose {
			for _, ev := range injector.Events() {
				fmt.Fprintf(os.Stderr, "  %s\n", ev)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "meshbench: %d of %d experiment(s) failed\n", failed, len(selected))
		os.Exit(1)
	}
}
