// Command meshbench regenerates the experiment tables of EXPERIMENTS.md:
// every theorem and figure of the SPAA'91 multisearch paper has one
// experiment (see DESIGN.md §4 for the index).
//
// Usage:
//
//	meshbench                 # run everything, full sizes
//	meshbench -quick          # small sizes (CI-friendly)
//	meshbench -run E2,E5      # selected experiments
//	meshbench -model theoretical
//	meshbench -seed 7
//	meshbench -profile        # per-operation step breakdowns (E1–E5)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/mesh"
)

func main() {
	quick := flag.Bool("quick", false, "small problem sizes")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	model := flag.String("model", "counted", "cost model: counted | theoretical")
	format := flag.String("format", "text", "output format: text | csv")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "progress to stderr")
	list := flag.Bool("list", false, "list experiments and exit")
	profile := flag.Bool("profile", false, "append per-operation step breakdowns (sorts, scans, RAR/RAW, ...) to each table")
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Profile: *profile}
	switch *model {
	case "counted":
		cfg.Model = mesh.CostCounted
	case "theoretical":
		cfg.Model = mesh.CostTheoretical
	default:
		fmt.Fprintf(os.Stderr, "meshbench: unknown cost model %q\n", *model)
		os.Exit(2)
	}
	// Validate -format before any experiment runs: a full experiment can
	// take minutes, and the seed only rejected an unknown format inside the
	// per-experiment output loop, after that work was already spent.
	switch *format {
	case "text", "csv":
	default:
		fmt.Fprintf(os.Stderr, "meshbench: unknown format %q (want text | csv)\n", *format)
		os.Exit(2)
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := bench.Find(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "meshbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	if *format == "text" {
		fmt.Printf("multisearch on a mesh-connected computer — experiment harness\n")
		fmt.Printf("cost model: %s   seed: %d   quick: %v\n", cfg.Model, cfg.Seed, cfg.Quick)
	}
	for _, e := range selected {
		start := time.Now()
		t := e.Run(cfg)
		switch *format {
		case "csv":
			t.CSV(os.Stdout)
		case "text":
			t.Print(os.Stdout)
			fmt.Printf("  (%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		}
	}
}
