// Command meshserve runs the batched multisearch query service (internal/
// serve, DESIGN.md §3.5): a long-lived mesh holding a (2,3)-tree dictionary,
// answering concurrent membership lookups by collecting them into batches
// and serving each batch with one multisearch round.
//
// Serve mode (default) exposes the HTTP surface and drains gracefully on
// SIGINT/SIGTERM:
//
//	meshserve -side 16 -batch-linger 2ms -budget 1e6 -addr :8845
//	curl 'localhost:8845/search?key=7'
//	curl  localhost:8845/metrics
//
// Load-generator mode drives the server in-process with closed-loop clients
// and prints the throughput table of EXPERIMENTS.md §E20 — queries/round,
// simulated steps/query, and wall-clock rounds/sec versus client count:
//
//	meshserve -loadgen -clients 1,4,16,64 -duration 2s -side 16
//
// Every load-generated answer is verified against the host-side dictionary
// oracle; any mismatch fails the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/mesh"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	side := flag.Int("side", 16, "mesh side length (power of two)")
	linger := flag.Duration("batch-linger", 2*time.Millisecond, "how long a round waits to fill its batch after the first query (0 = start immediately)")
	budget := flag.Float64("budget", 0, "per-round mesh step budget (0 = unlimited)")
	addr := flag.String("addr", ":8845", "HTTP listen address (serve mode)")
	model := flag.String("model", "counted", "cost model: counted | theoretical")
	maxBatch := flag.Int("max-batch", 0, "max queries per round (0 = mesh size)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 4×max-batch)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
	clients := flag.String("clients", "1,4,16,64", "comma-separated closed-loop client counts (loadgen)")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per client count (loadgen)")
	seed := flag.Int64("seed", 1, "needle-stream seed (loadgen)")
	flag.Parse()

	cfg := serve.Config{
		Side:       *side,
		Linger:     *linger,
		Budget:     int64(*budget),
		MaxBatch:   *maxBatch,
		QueueDepth: *queueDepth,
		Tracer:     trace.New(),
	}
	switch *model {
	case "counted":
		cfg.Model = mesh.CostCounted
	case "theoretical":
		cfg.Model = mesh.CostTheoretical
	default:
		fmt.Fprintf(os.Stderr, "meshserve: unknown cost model %q\n", *model)
		os.Exit(2)
	}

	if *loadgen {
		counts, err := parseCounts(*clients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(2)
		}
		if err := runLoadgen(cfg, counts, *duration, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runServe(cfg, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
		os.Exit(1)
	}
}

// runServe is serve mode: HTTP until SIGINT/SIGTERM, then a bounded drain
// that answers every admitted query before exiting.
func runServe(cfg serve.Config, addr string, drain time.Duration) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "meshserve: %dx%d mesh, %d keys, serving on %s (SIGINT drains)\n",
		cfg.Side, cfg.Side, len(s.Tree().Keys), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}
	stop()

	fmt.Fprintf(os.Stderr, "meshserve: draining (deadline %s)\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	_ = httpSrv.Close()
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "meshserve: served %d queries in %d rounds (%d rejected, %d failed), %d simulated steps\n",
		st.Served, st.Rounds, st.Rejected, st.Failed, st.SimSteps)
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	return nil
}

// runLoadgen sweeps closed-loop client counts against one long-lived server
// and prints one throughput row per count from the stats deltas.
func runLoadgen(cfg serve.Config, counts []int, dur time.Duration, seed int64) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	keys := int64(len(s.Tree().Keys))
	fmt.Printf("meshserve loadgen: %dx%d mesh (%s model), %d keys, max batch %d, linger %s, window %s/point\n",
		cfg.Side, cfg.Side, cfg.Model, keys, s.MaxBatch(), cfg.Linger, dur)
	fmt.Printf("%8s %12s %10s %10s %14s %10s\n",
		"clients", "queries/s", "rounds/s", "q/round", "steps/query", "rejected")

	for _, nc := range counts {
		before := s.Stats()
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		var wg sync.WaitGroup
		var mismatches, hardErrs atomic.Int64
		for c := 0; c < nc; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(c)*7919))
				for ctx.Err() == nil {
					needle := rng.Int63n(2 * keys) // ~half hits, half misses
					res, err := s.Lookup(ctx, needle)
					switch {
					case errors.Is(err, serve.ErrOverloaded):
						time.Sleep(200 * time.Microsecond) // back off, retry
					case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						return
					case err != nil:
						hardErrs.Add(1)
						return
					case res.Found != s.Tree().Contains(needle):
						mismatches.Add(1)
						return
					}
				}
			}()
		}
		wg.Wait()
		cancel()
		wall := time.Since(start).Seconds()
		d := s.Stats()
		served := d.Served - before.Served
		rounds := d.Rounds - before.Rounds
		steps := d.SimSteps - before.SimSteps
		rejected := d.Rejected - before.Rejected
		qPerRound, stepsPerQuery := 0.0, 0.0
		if rounds > 0 {
			qPerRound = float64(served) / float64(rounds)
		}
		if served > 0 {
			stepsPerQuery = float64(steps) / float64(served)
		}
		fmt.Printf("%8d %12.0f %10.1f %10.1f %14.0f %10d\n",
			nc, float64(served)/wall, float64(rounds)/wall, qPerRound, stepsPerQuery, rejected)
		if m := mismatches.Load(); m > 0 {
			return fmt.Errorf("%d answers disagreed with the host oracle at %d clients", m, nc)
		}
		if e := hardErrs.Load(); e > 0 {
			return fmt.Errorf("%d lookups failed at %d clients", e, nc)
		}
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("-clients is empty")
	}
	return out, nil
}
