// Command meshserve runs the batched multisearch query service (internal/
// serve, DESIGN.md §3.5): a long-lived mesh holding a (2,3)-tree dictionary,
// answering concurrent membership lookups by collecting them into batches
// and serving each batch with one multisearch round.
//
// Serve mode (default) exposes the HTTP surface and drains gracefully on
// SIGINT/SIGTERM:
//
//	meshserve -side 16 -batch-linger 2ms -budget 1e6 -addr :8845
//	curl 'localhost:8845/search?key=7'
//	curl  localhost:8845/metrics
//
// Load-generator mode drives the server in-process with closed-loop clients
// and prints the throughput table of EXPERIMENTS.md §E20 — queries/round,
// simulated steps/query, and wall-clock rounds/sec versus client count:
//
//	meshserve -loadgen -clients 1,4,16,64 -duration 2s -side 16
//
// Every load-generated answer is verified against the host-side dictionary
// oracle; any mismatch fails the run. With -chaos N the serving mesh runs
// under seeded fault injection (audit mode is forced on so faults trip the
// recovery ladder of DESIGN.md §3.6 instead of corrupting answers); the
// acceptance bar is zero mismatches and zero failed queries:
//
//	meshserve -loadgen -clients 8,32 -duration 1s -side 16 -chaos 42 -chaos-p 0.02
//
// Workload mode (-workload, DESIGN.md §3.7) is the open-loop counterpart:
// arrivals follow a seeded Poisson or ON/OFF-bursty process whose clock does
// not wait for answers, so queueing delay and saturation become observable.
// It reports per-window latency percentiles, offered vs achieved qps, and
// degraded/rejected fractions; -trace-out records the arrival plan plus the
// answer stream to JSONL, -workload replay -trace-in re-runs it and requires
// the answers to reproduce exactly; -saturate binary-searches the max
// sustainable rate under an SLO and prints the knee (EXPERIMENTS.md E22):
//
//	meshserve -workload poisson -rate 200x2s,800x500ms,200x2s -side 16 -trace-out run.jsonl
//	meshserve -workload replay -trace-in run.jsonl -side 16
//	meshserve -workload poisson -rate 256 -saturate -slo-p99 50ms -bench-out BENCH_PR6.json
//
// Fleet mode (-replicas N, DESIGN.md §3.8) runs N instances behind a
// health-aware router (-policy round-robin | least-loaded | health-weighted).
// A lookup whose replica faults or crashes fails over to a healthy replica
// before the fleet-level oracle; -chaos-instance kills and restarts replicas
// on a seeded schedule while /healthz stays 200 as long as one replica is
// healthy. The workload harness drives a fleet in-process, or any remote
// meshserve over HTTP with -target:
//
//	meshserve -side 8 -replicas 3 -policy health-weighted -chaos-instance 42
//	meshserve -workload poisson -rate 600 -side 8 -replicas 3 -policy least-loaded
//	meshserve -workload poisson -rate 300 -target http://127.0.0.1:8845
//	meshserve -workload poisson -rate 200 -saturate -sweep-replicas 1,2,4 \
//	    -policy all -bench-out BENCH_PR7.json
//
// Every query family of the paper is servable as a typed kind (-kinds,
// DESIGN.md §3.10): membership, pointloc, interval, linepoly, tangent. Serve
// mode loads each requested kind's structure onto the shared mesh and /search
// gains a kind= parameter (membership stays the default, so v1 clients keep
// working); the workload harness draws each arrival's kind from the weighted
// mix and checks every answer against that kind's own host oracle
// (EXPERIMENTS.md E25):
//
//	meshserve -side 16 -kinds membership,pointloc,interval
//	curl 'localhost:8845/search?kind=pointloc&x=12&y=7'
//	meshserve -workload poisson -rate 400 -side 16 \
//	    -kinds membership:0.6,pointloc:0.3,interval:0.1 -bench-out BENCH_PR9.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	side := flag.Int("side", 16, "mesh side length (power of two)")
	linger := flag.Duration("batch-linger", 2*time.Millisecond, "how long a round waits to fill its batch after the first query (0 = start immediately)")
	budget := flag.Float64("budget", 0, "per-round mesh step budget (0 = unlimited)")
	addr := flag.String("addr", ":8845", "HTTP listen address (serve mode)")
	model := flag.String("model", "counted", "cost model: counted | theoretical")
	maxBatch := flag.Int("max-batch", 0, "max queries per round (0 = mesh size)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 4×max-batch)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
	clients := flag.String("clients", "1,4,16,64", "comma-separated closed-loop client counts (loadgen)")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per client count (loadgen)")
	seed := flag.Int64("seed", 1, "needle-stream seed (loadgen)")
	audit := flag.Bool("audit", false, "run every round in audit mode (forced on by -chaos)")
	chaos := flag.Int64("chaos", 0, "inject seeded faults with this seed (non-zero; see internal/faults)")
	chaosP := flag.Float64("chaos-p", 0.01, "per-consultation fault probability for -chaos")
	chaosLimit := flag.Int("chaos-limit", 0, "stop injecting after this many faults (0 = unlimited)")
	retries := flag.Int("retries", 0, "audited re-executions per failed round (0 = default 3, negative = none)")
	breakerWindow := flag.Int("breaker-window", 0, "circuit-breaker sliding window, in rounds (0 = default 16)")
	canaryInterval := flag.Duration("canary-interval", 0, "how often an open circuit probes the mesh (0 = default 50ms, negative = never)")
	queryDeadline := flag.Duration("query-deadline", 5*time.Second, "per-query deadline for loadgen lookups (0 = none)")
	obsOn := flag.Bool("obs", true, "request tracing + per-stage wall-clock metrics (internal/obs; /debug/traces, Prometheus /metrics?format=prometheus)")
	obsRing := flag.Int("obs-ring", 256, "retained-trace ring size for /debug/traces (-obs)")
	obsLog := flag.Bool("obs-log", false, "log interesting trace completions (slow/degraded/failover/error) to stderr (-obs)")
	kindsFlag := flag.String("kinds", "", "query-kind mix served and generated: \"membership:0.6,pointloc:0.3,interval:0.1\" or \"membership,pointloc\" (empty = membership only; see DESIGN.md §3.10)")

	replicas := flag.Int("replicas", 1, "fleet size: run this many instances behind a router (see DESIGN.md §3.8)")
	policy := flag.String("policy", "round-robin", "fleet routing policy: round-robin | least-loaded | health-weighted (or 'all' with -sweep-replicas)")
	chaosInstance := flag.Int64("chaos-instance", 0, "kill/restart replicas on this seeded schedule (non-zero; needs -replicas ≥ 2)")
	chaosKillEvery := flag.Duration("chaos-kill-every", 500*time.Millisecond, "mean interval between instance kills (-chaos-instance)")
	chaosDowntime := flag.Duration("chaos-downtime", 250*time.Millisecond, "how long a killed instance stays down before restart (-chaos-instance)")

	outage := flag.String("outage", "", "gray-failure schedule: per-replica latency injection, e.g. \"slow:r1:10x@2s,stall:r2@5s\" (needs -replicas ≥ 2; see DESIGN.md §3.11)")
	hedge := flag.Bool("hedge", false, "hedge slow dispatches: speculatively re-dispatch to a second replica after the hedge delay, first answer wins (§3.11)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive: -hedge-p99x × the median per-replica p99)")
	hedgeP99x := flag.Float64("hedge-p99x", 3, "adaptive hedge delay multiple of the per-replica p99 median (-hedge)")
	eject := flag.Bool("eject", false, "eject latency-outlier replicas from routing until canary probes re-admit them (§3.11)")
	ejectMultiple := flag.Float64("eject-multiple", 4, "eject a replica whose EWMA latency exceeds this multiple of the fleet median (-eject)")
	ejectProbe := flag.Duration("eject-probe-interval", 100*time.Millisecond, "how often ejected replicas are probed for re-admission (-eject)")
	outageCompare := flag.Bool("outage-compare", false, "run the -outage plan twice over the same arrival plan — plain failover vs hedging+ejection — and report the p99 recovery ratio (workload)")
	outageMinRecovery := flag.Float64("outage-min-recovery", 0, "fail unless the -outage-compare p99 recovery ratio reaches this bound (0 = report only)")

	workload := flag.String("workload", "", "open-loop workload mode: poisson | burst | replay (see DESIGN.md §3.7)")
	target := flag.String("target", "", "drive a remote meshserve at this base URL (e.g. http://host:8845) instead of an in-process server (workload; remote must serve the default key set)")
	sweepReplicas := flag.String("sweep-replicas", "", "capacity-planning sweep: comma-separated replica counts, one saturation search each (workload -saturate)")
	rate := flag.String("rate", "256", "offered-rate schedule, qps: \"400\" or \"200x2s,800x500ms,200x2s\" (workload)")
	workloadDur := flag.Duration("workload-dur", 4*time.Second, "duration of bare-rate schedule phases (workload)")
	window := flag.Duration("window", time.Second, "reporting window for per-window percentiles (workload)")
	burstOn := flag.Duration("on", 200*time.Millisecond, "burst ON-window length (workload burst)")
	burstOff := flag.Duration("off", 200*time.Millisecond, "burst OFF-window length (workload burst)")
	zipf := flag.Float64("zipf", 0, "Zipfian key-popularity exponent, > 1 (0 = uniform; workload)")
	maxInflight := flag.Int("max-inflight", 0, "client-side cap on outstanding open-loop lookups (0 = 4096; workload)")
	traceOut := flag.String("trace-out", "", "record the arrival plan + answers to this JSONL file (workload poisson|burst)")
	traceIn := flag.String("trace-in", "", "replay this recorded JSONL trace (workload replay)")
	benchOut := flag.String("bench-out", "", "write the machine-readable run report to this JSON file (workload)")
	saturate := flag.Bool("saturate", false, "binary-search the max sustainable rate under the SLO instead of a single run (workload)")
	sloP99 := flag.Duration("slo-p99", 50*time.Millisecond, "SLO: answered-query p99 latency bound (saturate)")
	sloDegraded := flag.Float64("slo-degraded", 0.01, "SLO: max degraded fraction of answered queries (saturate)")
	sloRejected := flag.Float64("slo-rejected", 0.01, "SLO: max rejected+shed fraction of offered queries (saturate)")
	satBisect := flag.Int("sat-bisect", 5, "bisection refinements after the SLO first breaks (saturate)")
	satMax := flag.Float64("sat-max", 1e6, "rate ceiling for the saturation search, qps (saturate)")
	probeDur := flag.Duration("probe-dur", 2*time.Second, "measurement window per saturation probe (saturate)")
	flag.Parse()

	// -budget parses as float64 so 1e6-style spellings work, but the serve
	// layer counts integral steps: validate instead of silently truncating
	// (a -budget 0.5 used to become 0 = unlimited — the opposite of asked).
	if *budget < 0 || *budget != math.Trunc(*budget) || *budget > math.MaxInt64 {
		fmt.Fprintf(os.Stderr, "meshserve: -budget must be a non-negative integral step count, got %v\n", *budget)
		os.Exit(2)
	}

	// The kind mix configures both ends: the serve layer loads the mix's
	// structures, the workload harness draws arrivals from its weights.
	mix, err := parseKindsFlag(*kindsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
		os.Exit(2)
	}

	cfg := serve.Config{
		Side:           *side,
		Kinds:          mix.Kinds(),
		Linger:         *linger,
		Budget:         int64(*budget),
		MaxBatch:       *maxBatch,
		QueueDepth:     *queueDepth,
		Tracer:         trace.New(),
		MaxRetries:     *retries,
		BreakerWindow:  *breakerWindow,
		CanaryInterval: *canaryInterval,
	}
	switch *model {
	case "counted":
		cfg.Model = mesh.CostCounted
	case "theoretical":
		cfg.Model = mesh.CostTheoretical
	default:
		fmt.Fprintf(os.Stderr, "meshserve: unknown cost model %q\n", *model)
		os.Exit(2)
	}
	var injector *faults.Injector
	var makeInjector func(i int) mesh.Injector
	if *chaos != 0 {
		p := *chaosP
		injector = faults.New(faults.Config{
			Seed: *chaos, PSortLie: p, PCorrupt: p, PDrop: p, PDup: p, Limit: *chaosLimit,
		})
		cfg.Injector = injector
		// Fleet replicas must not share one injector (their fault streams
		// would couple through its state): derive one per instance from the
		// same seed, each with the full per-instance fault budget.
		makeInjector = func(i int) mesh.Injector {
			return faults.New(faults.Config{
				Seed: *chaos + int64(i)*1_000_003, PSortLie: p, PCorrupt: p, PDrop: p, PDup: p, Limit: *chaosLimit,
			})
		}
		if !*audit {
			fmt.Fprintln(os.Stderr, "meshserve: -chaos forces -audit on (faults must trip the audit, not corrupt answers)")
			*audit = true
		}
		// Satellite of §3.11: the retry ladder's backoff jitter draws from a
		// chaos-derived seed, so a chaos run's whole recovery timeline —
		// faults AND backoff sleeps — replays deterministically.
		cfg.BackoffSeed = *chaos
	}
	cfg.Audit = *audit

	// One observer serves the whole process — instance or fleet — so the SLO
	// burn gauges measure the same targets the saturation search enforces.
	if *obsOn {
		oc := obs.Config{Ring: *obsRing, SLOP99: *sloP99, SLOMaxDegraded: *sloDegraded}
		// Under a kind mix the stage histograms split per kind (the class
		// index is the kind value); without one the observer keeps its v1
		// single-class shape so /metrics output is byte-compatible.
		if *kindsFlag != "" {
			oc.Classes = serve.KindNames()
		}
		if *obsLog {
			oc.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
		}
		cfg.Obs = obs.New(oc)
	}

	if *loadgen && *workload != "" {
		fmt.Fprintln(os.Stderr, "meshserve: -loadgen (closed-loop sweep) and -workload (open-loop harness) are mutually exclusive")
		os.Exit(2)
	}
	if *replicas < 1 || *replicas > fleet.MaxReplicas {
		fmt.Fprintf(os.Stderr, "meshserve: -replicas must be in [1, %d], got %d\n", fleet.MaxReplicas, *replicas)
		os.Exit(2)
	}
	if *loadgen && *kindsFlag != "" {
		fmt.Fprintln(os.Stderr, "meshserve: -loadgen is the membership-only closed-loop sweep; use -workload for kind mixes")
		os.Exit(2)
	}
	if *policy == "all" {
		if *sweepReplicas == "" {
			fmt.Fprintln(os.Stderr, "meshserve: -policy all only makes sense with -sweep-replicas (one search per policy)")
			os.Exit(2)
		}
	} else if _, err := fleet.PolicyByName(*policy); err != nil {
		fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
		os.Exit(2)
	}
	if *chaosInstance != 0 && *replicas < 2 {
		fmt.Fprintln(os.Stderr, "meshserve: -chaos-instance needs -replicas ≥ 2 (the monkey never kills the last replica)")
		os.Exit(2)
	}
	var outagePlanParsed outagePlan
	if *outage != "" {
		if *replicas < 2 {
			fmt.Fprintln(os.Stderr, "meshserve: -outage needs -replicas ≥ 2 (gray-failure resilience is routing around a slow replica)")
			os.Exit(2)
		}
		plan, err := parseOutage(*outage, *replicas, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(2)
		}
		outagePlanParsed = plan
		// Unlike -chaos this does NOT force -audit: latency injection is a
		// gray failure — every answer stays correct, no audit would trip.
		makeInjector = plan.makeInjector(makeInjector)
	}
	if *outageCompare && (*outage == "" || *workload == "") {
		fmt.Fprintln(os.Stderr, "meshserve: -outage-compare needs -outage and -workload (it reruns one arrival plan with and without hedging+ejection)")
		os.Exit(2)
	}
	hedgeCfg := fleet.HedgeConfig{Enabled: *hedge, Delay: *hedgeDelay, P99Multiple: *hedgeP99x}
	ejectCfg := fleet.EjectConfig{Enabled: *eject, Multiple: *ejectMultiple, ProbeInterval: *ejectProbe}
	if *loadgen && *replicas > 1 {
		fmt.Fprintln(os.Stderr, "meshserve: -loadgen drives one instance; use -workload for fleet runs")
		os.Exit(2)
	}
	if *target != "" {
		if *workload == "" {
			fmt.Fprintln(os.Stderr, "meshserve: -target needs -workload (the HTTP driver is part of the open-loop harness)")
			os.Exit(2)
		}
		if *replicas > 1 || *chaosInstance != 0 || *sweepReplicas != "" {
			fmt.Fprintln(os.Stderr, "meshserve: -target drives a remote server; -replicas/-chaos-instance/-sweep-replicas configure in-process fleets")
			os.Exit(2)
		}
	}
	if *sweepReplicas != "" && !*saturate {
		fmt.Fprintln(os.Stderr, "meshserve: -sweep-replicas needs -saturate (it runs one saturation search per fleet size)")
		os.Exit(2)
	}
	if *workload != "" {
		f := workloadFlags{
			mode: *workload, rate: *rate, dur: *workloadDur, window: *window,
			on: *burstOn, off: *burstOff, zipf: *zipf, seed: *seed,
			deadline: *queryDeadline, maxInFl: *maxInflight,
			kinds: *kindsFlag, mix: mix,
			traceOut: *traceOut, traceIn: *traceIn, benchOut: *benchOut,
			saturate: *saturate, sloP99: *sloP99, sloDegraded: *sloDegraded,
			sloRejected: *sloRejected, satBisect: *satBisect, satMax: *satMax,
			probeDur: *probeDur,
			trace:    *obsOn,
			target:   *target, replicas: *replicas, policy: *policy,
			sweepReplicas: *sweepReplicas, makeInjector: makeInjector,
			chaosInstance: *chaosInstance, chaosKillEvery: *chaosKillEvery,
			chaosDowntime: *chaosDowntime,
			outage:        *outage, outagePlan: outagePlanParsed,
			outageCompare: *outageCompare, outageMinRecovery: *outageMinRecovery,
			hedgeCfg: hedgeCfg, ejectCfg: ejectCfg,
		}
		if err := runWorkload(cfg, f); err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *loadgen {
		counts, err := parseCounts(*clients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(2)
		}
		if err := runLoadgen(cfg, counts, *duration, *seed, *queryDeadline, injector); err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *replicas > 1 {
		fc := fleetConfig(cfg, *replicas, *policy, makeInjector, hedgeCfg, ejectCfg)
		chaos := fleet.ChaosConfig{Seed: *chaosInstance, KillEvery: *chaosKillEvery, Downtime: *chaosDowntime}
		if err := runServeFleet(fc, *addr, *drain, chaos); err != nil {
			fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runServe(cfg, *addr, *drain, injector); err != nil {
		fmt.Fprintf(os.Stderr, "meshserve: %v\n", err)
		os.Exit(1)
	}
}

// fleetConfig assembles the fleet template from the per-instance serve
// config: every replica gets its own tracer (a tracer records one mesh) and,
// under -chaos, its own derived fault injector.
func fleetConfig(cfg serve.Config, replicas int, policyName string, makeInjector func(i int) mesh.Injector, hedge fleet.HedgeConfig, eject fleet.EjectConfig) fleet.Config {
	pol, err := fleet.PolicyByName(policyName)
	if err != nil {
		pol = fleet.RoundRobin() // validated in main; sweep passes "all"
	}
	return fleet.Config{
		Replicas:     replicas,
		Instance:     cfg,
		Policy:       pol,
		MakeInjector: makeInjector,
		MakeTracer:   func(int) *trace.Tracer { return trace.New() },
		// Unlike tracers and injectors, the observer is deliberately shared:
		// a failed-over request's trace must accumulate stage marks from
		// every replica it touched, in one place.
		Obs:   cfg.Obs,
		Hedge: hedge,
		Eject: eject,
	}
}

// runServeFleet is serve mode for -replicas > 1: the fleet HTTP surface
// until SIGINT/SIGTERM, then a bounded parallel drain of every replica.
func runServeFleet(fc fleet.Config, addr string, drain time.Duration, chaos fleet.ChaosConfig) error {
	f, err := fleet.New(fc)
	if err != nil {
		return err
	}
	stopChaos := func() {}
	if chaos.Seed != 0 {
		stopChaos = f.StartChaos(chaos)
		fmt.Fprintf(os.Stderr, "meshserve: instance chaos armed (seed %d, kill ~%s, down %s)\n",
			chaos.Seed, chaos.KillEvery, chaos.Downtime)
	}
	httpSrv := &http.Server{Addr: addr, Handler: f.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "meshserve: fleet of %d %dx%d meshes (%s routing), %d keys, kinds %s, serving on %s (/search /healthz /metrics; SIGINT drains)\n",
		f.Replicas(), fc.Instance.Side, fc.Instance.Side, fc.Policy.Name(), len(f.Tree().Keys), kindNamesOf(f.Kinds()), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		stopChaos()
		return fmt.Errorf("http server: %w", err)
	}
	stop()
	stopChaos()

	fmt.Fprintf(os.Stderr, "meshserve: draining fleet (deadline %s)\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	drainErr := f.Shutdown(dctx)
	_ = httpSrv.Close()
	printFleetStats(f.Stats())
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	return nil
}

// printFleetStats reports the routing/failover/chaos counters of a fleet run.
func printFleetStats(st fleet.Stats) {
	fmt.Fprintf(os.Stderr,
		"meshserve: fleet served %d dispatches (%d failover-served, %d oracle, %d overloaded, %d unrouted), agg %d queries in %d rounds, health %s\n",
		st.Dispatched, st.FailoverServed, st.OracleServed, st.OverloadedAll, st.Unrouted,
		st.Agg.Served, st.Agg.Rounds, st.Health)
	if st.Crashes > 0 || st.Restarts > 0 {
		fmt.Fprintf(os.Stderr,
			"meshserve: chaos — %d crashes, %d restarts, time-to-healthy last %s / max %s\n",
			st.Crashes, st.Restarts,
			st.LastTimeToHealthy.Round(time.Millisecond), st.MaxTimeToHealthy.Round(time.Millisecond))
	}
	if st.Hedges > 0 || st.Ejections > 0 || st.BudgetShed > 0 || st.Agg.BudgetShed > 0 {
		fmt.Fprintf(os.Stderr,
			"meshserve: gray-failure — %d hedges (%d won), %d ejections / %d readmissions (%d probes), budget shed %d fleet + %d instance\n",
			st.Hedges, st.HedgeWins, st.Ejections, st.Readmissions, st.EjectProbes,
			st.BudgetShed, st.Agg.BudgetShed)
	}
}

// runServe is serve mode: HTTP until SIGINT/SIGTERM, then a bounded drain
// that answers every admitted query before exiting.
func runServe(cfg serve.Config, addr string, drain time.Duration, injector *faults.Injector) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "meshserve: %dx%d mesh, %d keys, kinds %s, serving on %s (/search /healthz /metrics; SIGINT drains)\n",
		cfg.Side, cfg.Side, len(s.Tree().Keys), kindNamesOf(s.Kinds()), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}
	stop()

	fmt.Fprintf(os.Stderr, "meshserve: draining (deadline %s)\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	_ = httpSrv.Close()
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "meshserve: served %d queries in %d rounds (%d rejected, %d failed), %d simulated steps\n",
		st.Served, st.Rounds, st.Rejected, st.Failed, st.SimSteps)
	printRecovery(st, injector)
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	return nil
}

// printRecovery reports the recovery ladder's work (DESIGN.md §3.6) when any
// of it ran: silent on a fault-free, fully-healthy run.
func printRecovery(st serve.Stats, injector *faults.Injector) {
	if st.Retries+st.Recovered+st.Degraded+st.CircuitOpens+st.CanaryRounds == 0 && injector == nil {
		return
	}
	fmt.Fprintf(os.Stderr,
		"meshserve: recovery — %d retries, %d rounds recovered, %d degraded answers in %d rounds, circuit %d opens/%d closes, canaries %d (%d failed), health %s\n",
		st.Retries, st.Recovered, st.Degraded, st.DegradedRounds,
		st.CircuitOpens, st.CircuitCloses, st.CanaryRounds, st.CanaryFails, st.Health)
	if injector != nil {
		fmt.Fprintf(os.Stderr, "meshserve: chaos injected %d fault(s)\n", injector.Count())
	}
}

// runLoadgen sweeps closed-loop client counts against one long-lived server
// and prints one throughput row per count from the stats deltas. Overloaded
// lookups retry under the shared jittered backoff (not a fixed sleep), each
// query carries its own deadline, and every answer — mesh-served or
// degraded — is checked against the host oracle.
func runLoadgen(cfg serve.Config, counts []int, dur time.Duration, seed int64, deadline time.Duration, injector *faults.Injector) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	keys := int64(len(s.Tree().Keys))
	fmt.Printf("meshserve loadgen: %dx%d mesh (%s model), %d keys, max batch %d, linger %s, window %s/point\n",
		cfg.Side, cfg.Side, cfg.Model, keys, s.MaxBatch(), cfg.Linger, dur)
	if injector != nil {
		fmt.Printf("chaos: audit %v, acceptance = zero oracle mismatches, zero failed queries\n", cfg.Audit)
	}
	fmt.Printf("%8s %12s %10s %10s %14s %10s %10s\n",
		"clients", "queries/s", "rounds/s", "q/round", "steps/query", "rejected", "degraded")

	backoff := serve.Backoff{Base: cfg.RetryBackoff}
	for _, nc := range counts {
		before := s.Stats()
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		var wg sync.WaitGroup
		// First mismatch or hard error aborts the whole window: a client
		// goroutine that silently returned used to shrink the offered
		// concurrency for the rest of the window, quietly corrupting the
		// throughput row it was about to print. fail() records the first
		// cause and cancels every client; the row is only printed if the
		// acceptance bar passed.
		var failOnce sync.Once
		var failErr error
		fail := func(err error) {
			failOnce.Do(func() { failErr = err })
			cancel()
		}
		for c := 0; c < nc; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(c)*7919))
				overloads := 0
				for ctx.Err() == nil {
					needle := rng.Int63n(2 * keys) // ~half hits, half misses
					res, err := lookupWithDeadline(ctx, s, needle, deadline)
					switch {
					case errors.Is(err, serve.ErrOverloaded):
						if !backoff.Sleep(ctx, overloads) {
							return
						}
						overloads++
					case errors.Is(err, context.Canceled):
						return
					case errors.Is(err, context.DeadlineExceeded):
						if ctx.Err() != nil {
							return // measurement window closed, not a lost query
						}
						fail(fmt.Errorf("lookup of %d exceeded its %s deadline", needle, deadline))
						return
					case errors.Is(err, serve.ErrBudgetExhausted):
						// The measurement-window context doubles as each
						// query's outer deadline, so as the window closes the
						// budget rung rightly sheds queries that cannot finish
						// in time — end of stream, not a lost query. Only a
						// shed against the per-query deadline itself counts
						// as a failure.
						if wd, ok := ctx.Deadline(); ok && (deadline <= 0 || time.Until(wd) < deadline) {
							return
						}
						fail(fmt.Errorf("lookup of %d shed mid-window: %w", needle, err))
						return
					case err != nil:
						fail(fmt.Errorf("lookup of %d failed: %w", needle, err))
						return
					case res.Found != s.Tree().Contains(needle),
						res.Found && res.LeafKey != needle:
						fail(fmt.Errorf("answer for %d disagrees with the host oracle (found=%v leaf=%d)",
							needle, res.Found, res.LeafKey))
						return
					default:
						overloads = 0
					}
				}
			}()
		}
		wg.Wait()
		cancel()
		if failErr != nil {
			return fmt.Errorf("at %d clients: %w", nc, failErr)
		}
		wall := time.Since(start).Seconds()
		d := s.Stats()
		served := d.Served - before.Served
		rounds := d.Rounds - before.Rounds
		steps := d.SimSteps - before.SimSteps
		rejected := d.Rejected - before.Rejected
		degraded := d.Degraded - before.Degraded
		qPerRound, stepsPerQuery := 0.0, 0.0
		if rounds > 0 {
			qPerRound = float64(served) / float64(rounds)
		}
		if served > 0 {
			stepsPerQuery = float64(steps) / float64(served)
		}
		fmt.Printf("%8d %12.0f %10.1f %10.1f %14.0f %10d %10d\n",
			nc, float64(served)/wall, float64(rounds)/wall, qPerRound, stepsPerQuery, rejected, degraded)
	}
	printRecovery(s.Stats(), injector)
	return nil
}

// lookupWithDeadline bounds one lookup by the per-query deadline (0 = none)
// on top of the sweep context.
func lookupWithDeadline(ctx context.Context, s *serve.Server, needle int64, deadline time.Duration) (serve.Result, error) {
	if deadline <= 0 {
		return s.Lookup(ctx, needle)
	}
	qctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	return s.Lookup(qctx, needle)
}

// kindNamesOf renders a served-kind list for banners.
func kindNamesOf(kinds []serve.Kind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("-clients is empty")
	}
	return out, nil
}
