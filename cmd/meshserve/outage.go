package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/mesh"
)

// Gray-failure outage schedules (-outage, DESIGN.md §3.11): per-replica
// latency injection that a serving fleet cannot see through its breakers —
// the injected replica stays correct and healthy-looking, just slow.
//
// Grammar (comma-separated entries, one or more per replica):
//
//	slow:rI:Fx@T        replica I runs F× slower from T after its first round
//	stall:rI@T          replica I stalls intermittently (50ms every ~250ms)
//	stall:rI:DUR@T      … with DUR-long stalls
//	creep:rI:Fx@T       replica I degrades linearly to F× over 2s from T
//	creep:rI:Fx:RAMP@T  … over RAMP
//
// Example: -outage "slow:r1:10x@2s,stall:r2@5s"

// outagePlan maps replica index → latency-injector configs to stack on it.
type outagePlan map[int][]faults.LatencyConfig

// parseOutage parses the -outage flag against the configured fleet size.
// Seed feeds the deterministic stall jitter so reruns degrade identically.
func parseOutage(spec string, replicas int, seed int64) (outagePlan, error) {
	plan := outagePlan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		head, afterSpec, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("-outage %q: missing @onset (e.g. %q)", entry, entry+"@2s")
		}
		after, err := time.ParseDuration(afterSpec)
		if err != nil || after < 0 {
			return nil, fmt.Errorf("-outage %q: bad onset %q", entry, afterSpec)
		}
		parts := strings.Split(head, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("-outage %q: want verb:rI[:...]@onset", entry)
		}
		verb := parts[0]
		idx, err := parseReplicaRef(parts[1], replicas)
		if err != nil {
			return nil, fmt.Errorf("-outage %q: %w", entry, err)
		}
		lc := faults.LatencyConfig{Seed: seed + int64(idx)*7_368_787, After: after}
		switch verb {
		case "slow":
			if len(parts) != 3 {
				return nil, fmt.Errorf("-outage %q: want slow:rI:Fx@onset", entry)
			}
			if lc.Factor, err = parseFactor(parts[2]); err != nil {
				return nil, fmt.Errorf("-outage %q: %w", entry, err)
			}
		case "creep":
			if len(parts) != 3 && len(parts) != 4 {
				return nil, fmt.Errorf("-outage %q: want creep:rI:Fx[:ramp]@onset", entry)
			}
			if lc.Factor, err = parseFactor(parts[2]); err != nil {
				return nil, fmt.Errorf("-outage %q: %w", entry, err)
			}
			lc.Ramp = 2 * time.Second
			if len(parts) == 4 {
				if lc.Ramp, err = time.ParseDuration(parts[3]); err != nil || lc.Ramp <= 0 {
					return nil, fmt.Errorf("-outage %q: bad ramp %q", entry, parts[3])
				}
			}
		case "stall":
			if len(parts) > 3 {
				return nil, fmt.Errorf("-outage %q: want stall:rI[:dur]@onset", entry)
			}
			lc.StallEvery = 250 * time.Millisecond
			if len(parts) == 3 {
				if lc.StallFor, err = time.ParseDuration(parts[2]); err != nil || lc.StallFor <= 0 {
					return nil, fmt.Errorf("-outage %q: bad stall duration %q", entry, parts[2])
				}
			}
		default:
			return nil, fmt.Errorf("-outage %q: unknown verb %q (want slow, stall, or creep)", entry, verb)
		}
		plan[idx] = append(plan[idx], lc)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("-outage %q: no entries", spec)
	}
	return plan, nil
}

func parseReplicaRef(s string, replicas int) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad replica ref %q (want r0..r%d)", s, replicas-1)
	}
	idx, err := strconv.Atoi(s[1:])
	if err != nil || idx < 0 || idx >= replicas {
		return 0, fmt.Errorf("bad replica ref %q (want r0..r%d)", s, replicas-1)
	}
	return idx, nil
}

func parseFactor(s string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil || f <= 1 {
		return 0, fmt.Errorf("bad slowdown factor %q (want e.g. 10x, > 1)", s)
	}
	return f, nil
}

// makeInjector composes the plan over an inner per-replica injector factory
// (the -chaos one, or nil). Each call builds FRESH Latency injectors: an
// injector carries schedule state, so two fleets (the -outage-compare
// baseline and resilient runs) must never share one.
func (p outagePlan) makeInjector(inner func(i int) mesh.Injector) func(i int) mesh.Injector {
	return func(i int) mesh.Injector {
		var in mesh.Injector
		if inner != nil {
			in = inner(i)
		}
		for _, lc := range p[i] {
			in = faults.NewLatency(lc, in)
		}
		return in
	}
}

// String renders the plan for banners.
func (p outagePlan) String() string {
	n := 0
	for _, cfgs := range p {
		n += len(cfgs)
	}
	return fmt.Sprintf("%d latency fault(s) across %d replica(s)", n, len(p))
}
