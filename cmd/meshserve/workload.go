package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/serve"
)

func context30s() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// workloadFlags collects the open-loop harness knobs (-workload and
// friends); see DESIGN.md §3.7–3.8 and EXPERIMENTS.md E22–E23.
type workloadFlags struct {
	mode     string // poisson | burst | replay
	rate     string // schedule spec: "400" or "200x2s,800x500ms"
	dur      time.Duration
	window   time.Duration
	on, off  time.Duration
	zipf     float64 // 0 = uniform, else Zipf exponent (> 1)
	seed     int64
	deadline time.Duration
	maxInFl  int
	trace    bool // -obs: propagate traceparent to remote targets, sample stage means

	// Query-kind mix (-kinds, DESIGN.md §3.10): the raw spec for trace
	// headers and bench docs, and the parsed mix the generator draws from.
	// A nil mix means membership only (the pre-kind behaviour).
	kinds string
	mix   *loadgen.KindMix

	traceOut string
	traceIn  string
	benchOut string

	saturate    bool
	sloP99      time.Duration
	sloDegraded float64
	sloRejected float64
	satBisect   int
	satMax      float64
	probeDur    time.Duration

	// Fleet / remote targeting (DESIGN.md §3.8).
	target         string // remote meshserve base URL; "" = in-process
	replicas       int
	policy         string
	sweepReplicas  string // "1,2,4" → one saturation search per fleet size
	makeInjector   func(i int) mesh.Injector
	chaosInstance  int64
	chaosKillEvery time.Duration
	chaosDowntime  time.Duration

	// Gray-failure resilience (-outage and friends, DESIGN.md §3.11).
	outage            string     // raw -outage spec for banners and bench docs
	outagePlan        outagePlan // parsed plan (already folded into makeInjector)
	outageCompare     bool
	outageMinRecovery float64
	hedgeCfg          fleet.HedgeConfig
	ejectCfg          fleet.EjectConfig
}

// wlTarget is what the harness drives: a single in-process instance, an
// in-process fleet, or a remote meshserve over HTTP. The harness itself is
// target-agnostic — arrival plans, SLO accounting, record/replay and the
// saturation search all run against this seam.
type wlTarget struct {
	desc     string
	side     int
	keys     int
	server   *serve.Server // single in-process instance (nil otherwise)
	fleet    *fleet.Fleet  // in-process fleet (nil otherwise)
	lookup   func(ctx context.Context, needle int64) (serve.Result, error)
	stats    func() serve.Stats
	stages   func() obs.StageSnapshot // nil when the target has no observer
	contains func(int64) bool
	close    func()

	// Kind-typed seams: dispatch, the needle→typed-arguments mapping the
	// generator uses, and the per-kind host-oracle answer check. lookupKind
	// is nil for a single in-process instance (the runner then calls
	// Server.LookupKind directly).
	lookupKind func(ctx context.Context, kind serve.Kind, args serve.Args) (serve.Result, error)
	argsFor    func(serve.Kind, int64) serve.Args
	check      func(serve.Kind, serve.Args, serve.Result) bool
}

// newTarget builds the workload target from the flag set. forceFleet makes
// a 1-replica run go through the fleet path anyway (the sweep compares
// fleet sizes, so even its n=1 point must pay the router).
func newTarget(cfg serve.Config, f workloadFlags, replicas int, policyName string, forceFleet bool) (*wlTarget, error) {
	if f.target != "" {
		return newRemoteTarget(f)
	}
	if replicas > 1 || forceFleet {
		return newFleetTarget(cfg, f, replicas, policyName)
	}
	s, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	ss := s.Structures()
	t := &wlTarget{
		desc: fmt.Sprintf("%dx%d mesh (%s model), %d keys, kinds %s",
			cfg.Side, cfg.Side, cfg.Model, len(s.Tree().Keys), kindNamesOf(s.Kinds())),
		side:     cfg.Side,
		keys:     len(s.Tree().Keys),
		server:   s,
		contains: s.Tree().Contains,
		argsFor:  loadgen.StructureArgs(ss),
		check:    loadgen.StructureChecker(ss),
		close: func() {
			ctx, cancel := context30s()
			defer cancel()
			_ = s.Shutdown(ctx)
		},
	}
	if o := s.Observer(); o != nil {
		t.stages = o.Stages
	}
	return t, nil
}

// newFleetTarget builds an in-process fleet target, arming the instance
// chaos monkey when -chaos-instance is set (and the fleet is big enough for
// the monkey to ever fire).
func newFleetTarget(cfg serve.Config, f workloadFlags, replicas int, policyName string) (*wlTarget, error) {
	fc := fleetConfig(cfg, replicas, policyName, f.makeInjector, f.hedgeCfg, f.ejectCfg)
	fl, err := fleet.New(fc)
	if err != nil {
		return nil, err
	}
	stopChaos := func() {}
	if f.chaosInstance != 0 && replicas >= 2 {
		stopChaos = fl.StartChaos(fleet.ChaosConfig{
			Seed: f.chaosInstance, KillEvery: f.chaosKillEvery, Downtime: f.chaosDowntime,
		})
	}
	t := &wlTarget{
		desc: fmt.Sprintf("fleet of %d %dx%d meshes (%s routing, %s model), %d keys",
			replicas, cfg.Side, cfg.Side, fc.Policy.Name(), cfg.Model, len(fl.Tree().Keys)),
		side:  cfg.Side,
		keys:  len(fl.Tree().Keys),
		fleet: fl,
		lookup: func(ctx context.Context, needle int64) (serve.Result, error) {
			res, err := fl.Lookup(ctx, needle)
			return res.Result, err
		},
		lookupKind: func(ctx context.Context, kind serve.Kind, args serve.Args) (serve.Result, error) {
			res, err := fl.LookupKind(ctx, kind, args)
			return res.Result, err
		},
		stats:    func() serve.Stats { return fl.Stats().Agg },
		contains: fl.Tree().Contains,
		argsFor:  loadgen.StructureArgs(fl.Structures()),
		check:    loadgen.StructureChecker(fl.Structures()),
		close: func() {
			stopChaos()
			ctx, cancel := context30s()
			defer cancel()
			_ = fl.Shutdown(ctx)
		},
	}
	if o := fl.Observer(); o != nil {
		t.stages = o.Stages
	}
	return t, nil
}

// newRemoteTarget probes the remote server's shape and reconstructs the
// host oracle from it: meshserve always serves the default key set — the
// odd integers 1, 3, …, 2k−1 — so membership is decidable without shipping
// the dictionary over the wire.
func newRemoteTarget(f workloadFlags) (*wlTarget, error) {
	t := loadgen.NewHTTPTarget(f.target)
	// With -obs, every remote lookup carries a client-minted traceparent, so
	// a slow client-side sample can be found in the server's /debug/traces.
	t.Trace = f.trace
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	side, keys, err := t.Probe(ctx)
	if err != nil {
		return nil, fmt.Errorf("probing %s: %w", f.target, err)
	}
	// Structures are a deterministic function of (side, keys), so every
	// kind's oracle — not just membership — is rebuildable host-side without
	// shipping state over the wire. A remote serving kinds outside the mix
	// is fine; a remote NOT serving a mixed-in kind answers 400 and the run
	// fails visibly on the failed-query bar.
	ss, err := serve.BuildStructures(side, defaultKeySet(keys), 2, 3, f.kindMix().Kinds())
	if err != nil {
		return nil, fmt.Errorf("rebuilding the host oracle for %s: %w", f.target, err)
	}
	return &wlTarget{
		desc:       fmt.Sprintf("remote %s (%dx%d mesh, %d keys)", t.Base, side, side, keys),
		side:       side,
		keys:       keys,
		lookup:     t.Lookup,
		lookupKind: t.LookupKind,
		stats:      t.Stats,
		contains: func(needle int64) bool {
			return needle >= 1 && needle < int64(2*keys) && needle%2 == 1
		},
		argsFor: loadgen.StructureArgs(ss),
		check:   loadgen.StructureChecker(ss),
		close:   func() {},
	}, nil
}

// defaultKeySet is the key set meshserve always serves: the first k odd
// integers 1, 3, …, 2k−1.
func defaultKeySet(k int) []int64 {
	keys := make([]int64, k)
	for i := range keys {
		keys[i] = int64(2*i + 1)
	}
	return keys
}

// kindMix is f.mix with the nil default applied (membership only).
func (f workloadFlags) kindMix() *loadgen.KindMix {
	if f.mix == nil {
		return loadgen.SingleKind(serve.KindMembership)
	}
	return f.mix
}

// parseKindsFlag parses -kinds. (It lives here rather than in main.go so the
// loadgen package name does not collide with main's -loadgen flag variable.)
func parseKindsFlag(spec string) (*loadgen.KindMix, error) {
	return loadgen.ParseKindMix(spec)
}

// runConfig assembles the loadgen run config for this target.
func (t *wlTarget) runConfig(events []loadgen.TraceEvent, f workloadFlags) loadgen.Config {
	return loadgen.Config{
		Server:      t.server,
		Lookup:      t.lookup,
		LookupKind:  t.lookupKind,
		Stats:       t.stats,
		Stages:      t.stages,
		Events:      events,
		Window:      f.window,
		Deadline:    f.deadline,
		MaxInFlight: f.maxInFl,
		Contains:    t.contains,
		Check:       t.check,
	}
}

// runWorkload is the open-loop serving-mode counterpart of runLoadgen: it
// drives the target — instance, fleet, or remote server — with an arrival
// process that does not wait for answers, reports per-window SLO metrics,
// and (optionally) binary-searches the saturation knee. Exit is non-zero on
// any oracle mismatch, failed query, or replay divergence.
func runWorkload(cfg serve.Config, f workloadFlags) error {
	if f.sweepReplicas != "" {
		return runSweep(cfg, f)
	}
	if f.outageCompare {
		return runOutageCompare(cfg, f)
	}
	t, err := newTarget(cfg, f, f.replicas, f.policy, false)
	if err != nil {
		return err
	}
	defer t.close()
	fmt.Printf("meshserve workload: %s arrivals%s, %s, window %s\n", f.mode, mixBanner(f), t.desc, f.window)

	if f.saturate {
		if f.mode == "replay" {
			return fmt.Errorf("-saturate replays nothing: use -workload poisson or burst")
		}
		kr, err := runSaturation(t, f)
		if err != nil {
			return err
		}
		if t.fleet != nil {
			printFleetStats(t.fleet.Stats())
		}
		if f.benchOut != "" {
			return writeBench(f.benchOut, cfg, f, t, nil, kr, nil)
		}
		return nil
	}

	var events []loadgen.TraceEvent
	var recorded []loadgen.TraceEvent // replay mode: the answer stream to reproduce
	switch f.mode {
	case "replay":
		if f.traceIn == "" {
			return fmt.Errorf("-workload replay needs -trace-in")
		}
		fh, err := os.Open(f.traceIn)
		if err != nil {
			return err
		}
		header, rec, err := loadgen.ReadTrace(fh)
		fh.Close()
		if err != nil {
			return err
		}
		if header.Side != t.side || header.Keys != t.keys {
			return fmt.Errorf("trace was recorded against a %dx%d mesh with %d keys; this target is %dx%d with %d",
				header.Side, header.Side, header.Keys, t.side, t.side, t.keys)
		}
		if header.Kinds != "" && f.kinds == "" {
			return fmt.Errorf("trace was recorded with a kind mix (%s); rerun with -kinds %q so the target serves those kinds",
				header.Kinds, header.Kinds)
		}
		recorded = rec
		events = loadgen.StripAnswers(rec)
		fmt.Printf("replaying %d arrivals recorded from a %s workload (seed %d)\n",
			len(events), header.Workload, header.Seed)
	case "poisson", "burst":
		events, err = generateEvents(f, t)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -workload %q (want poisson, burst, or replay)", f.mode)
	}

	rep, err := loadgen.Run(t.runConfig(events, f))
	if err != nil {
		return err
	}
	printReport(rep)
	if t.fleet != nil {
		printFleetStats(t.fleet.Stats())
	}

	if recorded != nil {
		n, first := loadgen.CompareAnswers(recorded, events)
		if n > 0 {
			return fmt.Errorf("replay diverged from the recorded answer stream on %d of %d events: %v",
				n, len(recorded), first)
		}
		fmt.Printf("replay reproduced all %d recorded answers exactly (digest %.16s…)\n",
			len(recorded), rep.Digest)
	}
	if rep.Total.Mismatched > 0 {
		return fmt.Errorf("%d answers disagreed with the host oracle", rep.Total.Mismatched)
	}
	if rep.Total.Failed > 0 {
		return fmt.Errorf("%d queries failed", rep.Total.Failed)
	}

	if f.traceOut != "" && recorded == nil {
		fh, err := os.Create(f.traceOut)
		if err != nil {
			return err
		}
		header := loadgen.TraceHeader{Workload: f.mode, Side: t.side, Keys: t.keys, Seed: f.seed, Kinds: mixSpec(f)}
		werr := loadgen.WriteTrace(fh, header, events)
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("recorded %d arrivals + answers to %s\n", len(events), f.traceOut)
	}
	if f.benchOut != "" {
		if err := writeBench(f.benchOut, cfg, f, t, rep, nil, nil); err != nil {
			return err
		}
	}
	return nil
}

// generateEvents materializes the arrival plan from the flag set: each
// arrival draws its kind from the mix and its needle from the popularity
// draw, and the target's own argument mapping turns the pair into typed
// query arguments.
func generateEvents(f workloadFlags, t *wlTarget) ([]loadgen.TraceEvent, error) {
	sched, err := loadgen.ParseSchedule(f.rate, f.dur)
	if err != nil {
		return nil, err
	}
	var arr *loadgen.Arrivals
	switch f.mode {
	case "poisson":
		arr, err = loadgen.Poisson(sched, f.seed)
	case "burst":
		arr, err = loadgen.Bursty(sched, f.on, f.off, f.seed)
	default:
		return nil, fmt.Errorf("unknown workload %q", f.mode)
	}
	if err != nil {
		return nil, err
	}
	keys, err := keyDraw(f, t.keys)
	if err != nil {
		return nil, err
	}
	return loadgen.GenerateMix(arr, keys, f.kindMix(), t.argsFor, f.seed, 0)
}

func keyDraw(f workloadFlags, nKeys int) (loadgen.KeyDraw, error) {
	if f.zipf > 0 {
		return loadgen.ZipfKeys(nKeys, f.zipf, f.seed)
	}
	return loadgen.UniformKeys(nKeys, f.seed)
}

// runSaturation binary-searches the knee: max offered rate whose whole probe
// run meets the SLO. Probes share one long-lived target (the realistic
// capacity question) with fresh arrival plans per rate.
func runSaturation(t *wlTarget, f workloadFlags) (*loadgen.KneeReport, error) {
	slo := loadgen.SLO{P99: f.sloP99, MaxDegraded: f.sloDegraded, MaxRejected: f.sloRejected}
	startRate, err := firstScheduleRate(f)
	if err != nil {
		return nil, err
	}
	fmt.Printf("saturation search: SLO p99 < %s, degraded ≤ %.2f%%, rejected ≤ %.2f%%; probes %s at %g qps and up\n",
		slo.P99, 100*slo.MaxDegraded, 100*slo.MaxRejected, f.probeDur, startRate)
	fmt.Printf("%10s %6s %12s %10s %10s %10s %10s  %s\n",
		"rate", "pass", "achieved/s", "p50", "p99", "p999", "degraded", "reason")
	probeIdx := 0
	run := func(rate float64) (*loadgen.Report, error) {
		probeIdx++
		pf := f
		pf.rate = fmt.Sprintf("%g", rate)
		pf.dur = f.probeDur
		pf.seed = f.seed + int64(probeIdx) // decorrelate probes, still deterministic
		events, err := generateEvents(pf, t)
		if err != nil {
			return nil, err
		}
		rep, err := loadgen.Run(t.runConfig(events, pf))
		if err != nil {
			return nil, err
		}
		pass, reason := slo.Pass(rep)
		tt := rep.Total
		degFrac := 0.0
		if tt.Answered > 0 {
			degFrac = float64(tt.Degraded) / float64(tt.Answered)
		}
		fmt.Printf("%10.1f %6v %12.0f %10s %10s %10s %9.2f%%  %s\n",
			rate, pass, tt.AchievedQPS, tt.P50.Round(time.Microsecond), tt.P99.Round(time.Microsecond),
			tt.P999.Round(time.Microsecond), 100*degFrac, reason)
		return rep, nil
	}
	kr, err := loadgen.Saturate(run, startRate, f.satMax, f.satBisect, slo)
	if err != nil {
		return nil, err
	}
	if kr.Capped {
		fmt.Printf("knee: ≥ %.1f qps (search capped at -sat-max before the SLO broke)\n", kr.Knee)
	} else {
		fmt.Printf("knee: %.1f qps — the max sustainable rate under the SLO (%d probes)\n", kr.Knee, len(kr.Probes))
	}
	return kr, nil
}

// sweepEntry is one point of the capacity-planning sweep: the saturation
// knee of one fleet size under one routing policy (EXPERIMENTS.md E23).
type sweepEntry struct {
	Replicas int     `json:"replicas"`
	Policy   string  `json:"policy"`
	KneeQPS  float64 `json:"knee_qps"`
	Capped   bool    `json:"capped"`
	Probes   int     `json:"probes"`
}

// runSweep is the capacity-planning mode (-sweep-replicas): one saturation
// search per (policy, fleet size) point, each against a fresh fleet — the
// n=1 point also goes through the router, so the sweep isolates replication
// gain from router overhead. -policy all sweeps every routing policy.
func runSweep(cfg serve.Config, f workloadFlags) error {
	counts, err := parseCounts(f.sweepReplicas)
	if err != nil {
		return fmt.Errorf("-sweep-replicas: %w", err)
	}
	policies := []string{f.policy}
	if f.policy == "all" {
		policies = fleet.PolicyNames()
	}
	fmt.Printf("meshserve capacity sweep: %dx%d meshes, replicas %v, policies %v\n",
		cfg.Side, cfg.Side, counts, policies)
	var entries []sweepEntry
	for _, pol := range policies {
		for _, n := range counts {
			t, err := newTarget(cfg, f, n, pol, true)
			if err != nil {
				return err
			}
			fmt.Printf("\n--- %s ---\n", t.desc)
			kr, err := runSaturation(t, f)
			t.close()
			if err != nil {
				return err
			}
			entries = append(entries, sweepEntry{
				Replicas: n, Policy: pol, KneeQPS: kr.Knee,
				Capped: kr.Capped, Probes: len(kr.Probes),
			})
		}
	}
	fmt.Printf("\n%16s %9s %12s\n", "policy", "replicas", "knee qps")
	for _, e := range entries {
		capped := ""
		if e.Capped {
			capped = " (capped)"
		}
		fmt.Printf("%16s %9d %12.1f%s\n", e.Policy, e.Replicas, e.KneeQPS, capped)
	}
	if f.benchOut != "" {
		return writeBench(f.benchOut, cfg, f, nil, nil, nil, entries)
	}
	return nil
}

// mixSpec is the canonical (normalized-weight) rendering of the -kinds flag,
// or "" when the workload is membership only — the form recorded in trace
// headers and bench docs.
func mixSpec(f workloadFlags) string {
	if f.kinds == "" {
		return ""
	}
	return f.kindMix().String()
}

// mixBanner is the ", kind mix …" fragment of the workload banner.
func mixBanner(f workloadFlags) string {
	if f.kinds == "" {
		return ""
	}
	return fmt.Sprintf(" (kind mix %s)", f.kindMix().String())
}

// firstScheduleRate extracts the saturation search's starting rate from the
// -rate spec (its first phase's rate).
func firstScheduleRate(f workloadFlags) (float64, error) {
	sched, err := loadgen.ParseSchedule(f.rate, f.dur)
	if err != nil {
		return 0, err
	}
	for _, p := range sched {
		if p.Rate > 0 {
			return p.Rate, nil
		}
	}
	return 0, fmt.Errorf("schedule offers no load")
}

// printReport renders the per-window table and totals of one open-loop run.
func printReport(rep *loadgen.Report) {
	fmt.Printf("%8s %11s %12s %10s %10s %10s %10s %9s %5s %5s %5s %5s\n",
		"window", "offered/s", "achieved/s", "p50", "p95", "p99", "p999", "steps/q", "rej", "shed", "degr", "fail")
	row := func(label string, w loadgen.WindowStats) {
		stepsPerQ := w.SimStepsPerQuery
		fmt.Printf("%8s %11.0f %12.0f %10s %10s %10s %10s %9.0f %5d %5d %5d %5d\n",
			label, w.OfferedQPS, w.AchievedQPS,
			w.P50.Round(time.Microsecond), w.P95.Round(time.Microsecond),
			w.P99.Round(time.Microsecond), w.P999.Round(time.Microsecond),
			stepsPerQ, w.Rejected, w.Shed, w.Degraded, w.Failed)
	}
	for _, w := range rep.Windows {
		row(w.Start.Round(time.Millisecond).String(), w)
	}
	row("total", rep.Total)
	if len(rep.Kinds) > 1 {
		names := make([]string, 0, len(rep.Kinds))
		for name := range rep.Kinds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			row("·"+name, *rep.Kinds[name])
		}
	}
	fmt.Printf("answered %d/%d offered in %s (answer digest %.16s…)\n",
		rep.Total.Answered, rep.Total.Offered, rep.Wall.Round(time.Millisecond), rep.Digest)
	printStageBreakdown(rep)
}

// printStageBreakdown renders the whole-run mean wall-clock per stage per
// answered query (the decomposition of internal/obs), when the target had an
// observer to sample: where a query's latency actually went — queueing,
// lingering, mesh rounds, retries, failovers — not just what it totalled.
func printStageBreakdown(rep *loadgen.Report) {
	if len(rep.Total.StageNS) == 0 {
		return
	}
	fmt.Printf("stage means per answered query:")
	for _, name := range obs.StageNames() {
		ns, ok := rep.Total.StageNS[name]
		if !ok {
			continue
		}
		fmt.Printf("  %s %s", name, time.Duration(ns).Round(time.Microsecond))
	}
	fmt.Println()
}

// benchDoc is the machine-readable result trajectory entry (BENCH_PR6.json,
// BENCH_PR7.json).
type benchDoc struct {
	PR         int                 `json:"pr"`
	Title      string              `json:"title"`
	Harness    string              `json:"harness"`
	Mode       string              `json:"mode"`
	Side       int                 `json:"side"`
	RateSpec   string              `json:"rate_spec"`
	Zipf       float64             `json:"zipf_s,omitempty"`
	Kinds      string              `json:"kinds,omitempty"`
	Seed       int64               `json:"seed"`
	Window     string              `json:"window"`
	Target     string              `json:"target,omitempty"`
	Replicas   int                 `json:"replicas,omitempty"`
	Policy     string              `json:"policy,omitempty"`
	Outage     string              `json:"outage,omitempty"`
	Report     *loadgen.Report     `json:"report,omitempty"`
	Saturation *loadgen.KneeReport `json:"saturation,omitempty"`
	Sweep      []sweepEntry        `json:"sweep,omitempty"`
	Fleet      *fleet.Stats        `json:"fleet,omitempty"`
	Compare    *compareDoc         `json:"compare,omitempty"`
}

func writeBench(path string, cfg serve.Config, f workloadFlags, t *wlTarget, rep *loadgen.Report, kr *loadgen.KneeReport, sweep []sweepEntry) error {
	doc := benchDoc{
		PR:       6,
		Title:    "Open-loop workload & SLO harness (E22)",
		Harness:  "meshserve -workload (internal/loadgen)",
		Mode:     f.mode,
		Side:     cfg.Side,
		RateSpec: f.rate,
		Zipf:     f.zipf,
		Kinds:    mixSpec(f),
		Seed:     f.seed,
		Window:   f.window.String(),
		Target:   f.target,
		Report:   rep,
	}
	if f.replicas > 1 || f.target != "" || sweep != nil {
		doc.PR = 7
		doc.Title = "Replicated fleet capacity & failover (E23)"
	}
	if f.kinds != "" {
		doc.PR = 9
		doc.Title = "Typed query-kind serving (E25)"
	}
	if f.outage != "" {
		doc.PR = 10
		doc.Title = "Gray-failure resilience: hedging + latency ejection (E26)"
		doc.Outage = f.outage
	}
	if kr != nil {
		doc.Saturation = kr
	}
	if sweep != nil {
		doc.Sweep = sweep
	}
	if t != nil && t.fleet != nil {
		doc.Replicas = t.fleet.Replicas()
		doc.Policy = f.policy
		fst := t.fleet.Stats()
		doc.Fleet = &fst
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Printf("wrote %s\n", path)
	}
	return werr
}
