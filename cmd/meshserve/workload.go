package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
)

func context30s() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// workloadFlags collects the open-loop harness knobs (-workload and
// friends); see DESIGN.md §3.7 and EXPERIMENTS.md E22.
type workloadFlags struct {
	mode     string // poisson | burst | replay
	rate     string // schedule spec: "400" or "200x2s,800x500ms"
	dur      time.Duration
	window   time.Duration
	on, off  time.Duration
	zipf     float64 // 0 = uniform, else Zipf exponent (> 1)
	seed     int64
	deadline time.Duration
	maxInFl  int

	traceOut string
	traceIn  string
	benchOut string

	saturate    bool
	sloP99      time.Duration
	sloDegraded float64
	sloRejected float64
	satBisect   int
	satMax      float64
	probeDur    time.Duration
}

// runWorkload is the open-loop serving-mode counterpart of runLoadgen: it
// drives the server with an arrival process that does not wait for answers,
// reports per-window SLO metrics, and (optionally) binary-searches the
// saturation knee. Exit is non-zero on any oracle mismatch, failed query,
// or replay divergence.
func runWorkload(cfg serve.Config, f workloadFlags) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context30s()
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	nKeys := len(s.Tree().Keys)
	fmt.Printf("meshserve workload: %s arrivals, %dx%d mesh (%s model), %d keys, window %s\n",
		f.mode, cfg.Side, cfg.Side, cfg.Model, nKeys, f.window)

	if f.saturate {
		if f.mode == "replay" {
			return fmt.Errorf("-saturate replays nothing: use -workload poisson or burst")
		}
		return runSaturation(s, cfg, f, nKeys)
	}

	var events []loadgen.TraceEvent
	var recorded []loadgen.TraceEvent // replay mode: the answer stream to reproduce
	switch f.mode {
	case "replay":
		if f.traceIn == "" {
			return fmt.Errorf("-workload replay needs -trace-in")
		}
		fh, err := os.Open(f.traceIn)
		if err != nil {
			return err
		}
		header, rec, err := loadgen.ReadTrace(fh)
		fh.Close()
		if err != nil {
			return err
		}
		if header.Side != cfg.Side || header.Keys != nKeys {
			return fmt.Errorf("trace was recorded against a %dx%d mesh with %d keys; this server is %dx%d with %d",
				header.Side, header.Side, header.Keys, cfg.Side, cfg.Side, nKeys)
		}
		recorded = rec
		events = loadgen.StripAnswers(rec)
		fmt.Printf("replaying %d arrivals recorded from a %s workload (seed %d)\n",
			len(events), header.Workload, header.Seed)
	case "poisson", "burst":
		events, err = generateEvents(f, nKeys)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -workload %q (want poisson, burst, or replay)", f.mode)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Server:      s,
		Events:      events,
		Window:      f.window,
		Deadline:    f.deadline,
		MaxInFlight: f.maxInFl,
		Contains:    s.Tree().Contains,
	})
	if err != nil {
		return err
	}
	printReport(rep)

	if recorded != nil {
		n, first := loadgen.CompareAnswers(recorded, events)
		if n > 0 {
			return fmt.Errorf("replay diverged from the recorded answer stream on %d of %d events: %v",
				n, len(recorded), first)
		}
		fmt.Printf("replay reproduced all %d recorded answers exactly (digest %.16s…)\n",
			len(recorded), rep.Digest)
	}
	if rep.Total.Mismatched > 0 {
		return fmt.Errorf("%d answers disagreed with the host oracle", rep.Total.Mismatched)
	}
	if rep.Total.Failed > 0 {
		return fmt.Errorf("%d queries failed", rep.Total.Failed)
	}

	if f.traceOut != "" && recorded == nil {
		fh, err := os.Create(f.traceOut)
		if err != nil {
			return err
		}
		header := loadgen.TraceHeader{Workload: f.mode, Side: cfg.Side, Keys: nKeys, Seed: f.seed}
		werr := loadgen.WriteTrace(fh, header, events)
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("recorded %d arrivals + answers to %s\n", len(events), f.traceOut)
	}
	if f.benchOut != "" {
		if err := writeBench(f.benchOut, cfg, f, rep, nil); err != nil {
			return err
		}
	}
	return nil
}

// generateEvents materializes the arrival plan from the flag set.
func generateEvents(f workloadFlags, nKeys int) ([]loadgen.TraceEvent, error) {
	sched, err := loadgen.ParseSchedule(f.rate, f.dur)
	if err != nil {
		return nil, err
	}
	var arr *loadgen.Arrivals
	switch f.mode {
	case "poisson":
		arr, err = loadgen.Poisson(sched, f.seed)
	case "burst":
		arr, err = loadgen.Bursty(sched, f.on, f.off, f.seed)
	default:
		return nil, fmt.Errorf("unknown workload %q", f.mode)
	}
	if err != nil {
		return nil, err
	}
	keys, err := keyDraw(f, nKeys)
	if err != nil {
		return nil, err
	}
	return loadgen.Generate(arr, keys, 0)
}

func keyDraw(f workloadFlags, nKeys int) (loadgen.KeyDraw, error) {
	if f.zipf > 0 {
		return loadgen.ZipfKeys(nKeys, f.zipf, f.seed)
	}
	return loadgen.UniformKeys(nKeys, f.seed)
}

// runSaturation binary-searches the knee: max offered rate whose whole probe
// run meets the SLO. Probes share one long-lived server (the realistic
// capacity question) with fresh arrival plans per rate.
func runSaturation(s *serve.Server, cfg serve.Config, f workloadFlags, nKeys int) error {
	slo := loadgen.SLO{P99: f.sloP99, MaxDegraded: f.sloDegraded, MaxRejected: f.sloRejected}
	startRate, err := firstScheduleRate(f)
	if err != nil {
		return err
	}
	fmt.Printf("saturation search: SLO p99 < %s, degraded ≤ %.2f%%, rejected ≤ %.2f%%; probes %s at %g qps and up\n",
		slo.P99, 100*slo.MaxDegraded, 100*slo.MaxRejected, f.probeDur, startRate)
	fmt.Printf("%10s %6s %12s %10s %10s %10s %10s  %s\n",
		"rate", "pass", "achieved/s", "p50", "p99", "p999", "degraded", "reason")
	probeIdx := 0
	run := func(rate float64) (*loadgen.Report, error) {
		probeIdx++
		pf := f
		pf.rate = fmt.Sprintf("%g", rate)
		pf.dur = f.probeDur
		pf.seed = f.seed + int64(probeIdx) // decorrelate probes, still deterministic
		events, err := generateEvents(pf, nKeys)
		if err != nil {
			return nil, err
		}
		rep, err := loadgen.Run(loadgen.Config{
			Server:      s,
			Events:      events,
			Window:      f.window,
			Deadline:    f.deadline,
			MaxInFlight: f.maxInFl,
			Contains:    s.Tree().Contains,
		})
		if err != nil {
			return nil, err
		}
		pass, reason := slo.Pass(rep)
		t := rep.Total
		degFrac := 0.0
		if t.Answered > 0 {
			degFrac = float64(t.Degraded) / float64(t.Answered)
		}
		fmt.Printf("%10.1f %6v %12.0f %10s %10s %10s %9.2f%%  %s\n",
			rate, pass, t.AchievedQPS, t.P50.Round(time.Microsecond), t.P99.Round(time.Microsecond),
			t.P999.Round(time.Microsecond), 100*degFrac, reason)
		return rep, nil
	}
	kr, err := loadgen.Saturate(run, startRate, f.satMax, f.satBisect, slo)
	if err != nil {
		return err
	}
	if kr.Capped {
		fmt.Printf("knee: ≥ %.1f qps (search capped at -sat-max before the SLO broke)\n", kr.Knee)
	} else {
		fmt.Printf("knee: %.1f qps — the max sustainable rate under the SLO (%d probes)\n", kr.Knee, len(kr.Probes))
	}
	if f.benchOut != "" {
		return writeBench(f.benchOut, cfg, f, nil, kr)
	}
	return nil
}

// firstScheduleRate extracts the saturation search's starting rate from the
// -rate spec (its first phase's rate).
func firstScheduleRate(f workloadFlags) (float64, error) {
	sched, err := loadgen.ParseSchedule(f.rate, f.dur)
	if err != nil {
		return 0, err
	}
	for _, p := range sched {
		if p.Rate > 0 {
			return p.Rate, nil
		}
	}
	return 0, fmt.Errorf("schedule offers no load")
}

// printReport renders the per-window table and totals of one open-loop run.
func printReport(rep *loadgen.Report) {
	fmt.Printf("%8s %11s %12s %10s %10s %10s %10s %9s %5s %5s %5s %5s\n",
		"window", "offered/s", "achieved/s", "p50", "p95", "p99", "p999", "steps/q", "rej", "shed", "degr", "fail")
	row := func(label string, w loadgen.WindowStats) {
		stepsPerQ := w.SimStepsPerQuery
		fmt.Printf("%8s %11.0f %12.0f %10s %10s %10s %10s %9.0f %5d %5d %5d %5d\n",
			label, w.OfferedQPS, w.AchievedQPS,
			w.P50.Round(time.Microsecond), w.P95.Round(time.Microsecond),
			w.P99.Round(time.Microsecond), w.P999.Round(time.Microsecond),
			stepsPerQ, w.Rejected, w.Shed, w.Degraded, w.Failed)
	}
	for _, w := range rep.Windows {
		row(w.Start.Round(time.Millisecond).String(), w)
	}
	row("total", rep.Total)
	fmt.Printf("answered %d/%d offered in %s (answer digest %.16s…)\n",
		rep.Total.Answered, rep.Total.Offered, rep.Wall.Round(time.Millisecond), rep.Digest)
}

// benchDoc is the machine-readable result trajectory entry (BENCH_PR6.json).
type benchDoc struct {
	PR         int                 `json:"pr"`
	Title      string              `json:"title"`
	Harness    string              `json:"harness"`
	Mode       string              `json:"mode"`
	Side       int                 `json:"side"`
	RateSpec   string              `json:"rate_spec"`
	Zipf       float64             `json:"zipf_s,omitempty"`
	Seed       int64               `json:"seed"`
	Window     string              `json:"window"`
	Report     *loadgen.Report     `json:"report,omitempty"`
	Saturation *loadgen.KneeReport `json:"saturation,omitempty"`
}

func writeBench(path string, cfg serve.Config, f workloadFlags, rep *loadgen.Report, kr *loadgen.KneeReport) error {
	doc := benchDoc{
		PR:       6,
		Title:    "Open-loop workload & SLO harness (E22)",
		Harness:  "meshserve -workload (internal/loadgen)",
		Mode:     f.mode,
		Side:     cfg.Side,
		RateSpec: f.rate,
		Zipf:     f.zipf,
		Seed:     f.seed,
		Window:   f.window.String(),
		Report:   rep,
	}
	if kr != nil {
		doc.Saturation = kr
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Printf("wrote %s\n", path)
	}
	return werr
}
