package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

// runOutageCompare is the E26 harness (-outage-compare): one arrival plan,
// one gray-failure schedule, two fleets — a baseline with plain sequential
// failover, and a resilient fleet with hedging and latency ejection on —
// and the p99 recovery ratio between them. Both runs must produce identical
// answer digests (the mechanisms may only move *time*, never answers) and
// zero oracle mismatches; the ratio quantifies what §3.11 buys.
func runOutageCompare(cfg serve.Config, f workloadFlags) error {
	if f.mode == "replay" || f.saturate {
		return fmt.Errorf("-outage-compare runs a fixed poisson/burst plan (not -saturate or replay)")
	}

	// Baseline: the outage plan injects (makeInjector builds fresh latency
	// injectors per fleet), but hedging and ejection stay off.
	base := f
	base.hedgeCfg = fleet.HedgeConfig{}
	base.ejectCfg = fleet.EjectConfig{}
	bt, err := newTarget(cfg, base, f.replicas, f.policy, true)
	if err != nil {
		return err
	}
	events, err := generateEvents(f, bt)
	if err != nil {
		bt.close()
		return err
	}
	fmt.Printf("--- baseline: sequential failover only, outage %s ---\n", f.outagePlan)
	baseRep, err := loadgen.Run(bt.runConfig(events, base))
	if err != nil {
		bt.close()
		return err
	}
	printReport(baseRep)
	baseFleet := bt.fleet.Stats()
	printFleetStats(baseFleet)
	bt.close()

	// Resilient: same plan, same injected outage, hedging + ejection on.
	res := f
	res.hedgeCfg.Enabled = true
	res.ejectCfg.Enabled = true
	rt, err := newTarget(cfg, res, f.replicas, f.policy, true)
	if err != nil {
		return err
	}
	resEvents := loadgen.StripAnswers(events)
	fmt.Printf("\n--- resilient: hedging + latency ejection, same plan, same outage ---\n")
	resRep, err := loadgen.Run(rt.runConfig(resEvents, res))
	if err != nil {
		rt.close()
		return err
	}
	printReport(resRep)
	resFleet := rt.fleet.Stats()
	printFleetStats(resFleet)
	rt.close()

	// Correctness gates: gray-failure machinery must be invisible in the
	// answer stream — both runs answer everything, identically.
	for name, rep := range map[string]*loadgen.Report{"baseline": baseRep, "resilient": resRep} {
		if rep.Total.Mismatched > 0 {
			return fmt.Errorf("%s run: %d answers disagreed with the host oracle", name, rep.Total.Mismatched)
		}
		if rep.Total.Failed > 0 {
			return fmt.Errorf("%s run: %d queries failed", name, rep.Total.Failed)
		}
	}
	if n, first := loadgen.CompareAnswers(events, resEvents); n > 0 {
		return fmt.Errorf("resilient run diverged from the baseline answer stream on %d of %d events: %v",
			n, len(events), first)
	}
	if baseRep.Digest != resRep.Digest {
		return fmt.Errorf("digest mismatch: baseline %.16s… vs resilient %.16s… (same plan must answer identically)",
			baseRep.Digest, resRep.Digest)
	}

	ratio := 0.0
	if resRep.Total.P99 > 0 {
		ratio = float64(baseRep.Total.P99) / float64(resRep.Total.P99)
	}
	fmt.Printf("\n%12s %12s %12s %12s\n", "", "p50", "p99", "p999")
	fmt.Printf("%12s %12s %12s %12s\n", "baseline",
		baseRep.Total.P50.Round(time.Microsecond), baseRep.Total.P99.Round(time.Microsecond), baseRep.Total.P999.Round(time.Microsecond))
	fmt.Printf("%12s %12s %12s %12s\n", "resilient",
		resRep.Total.P50.Round(time.Microsecond), resRep.Total.P99.Round(time.Microsecond), resRep.Total.P999.Round(time.Microsecond))
	fmt.Printf("p99 recovery ratio: %.2fx (answer digest %.16s…, identical in both runs)\n", ratio, baseRep.Digest)

	if f.benchOut != "" {
		if err := writeCompareBench(f.benchOut, cfg, f, baseRep, resRep, &baseFleet, &resFleet, ratio); err != nil {
			return err
		}
	}
	if f.outageMinRecovery > 0 && ratio < f.outageMinRecovery {
		return fmt.Errorf("p99 recovery ratio %.2fx is below the -outage-min-recovery bound %.2fx", ratio, f.outageMinRecovery)
	}
	return nil
}

// compareDoc is the E26 entry of the bench trajectory (BENCH_PR10.json).
type compareDoc struct {
	Outage         string          `json:"outage"`
	Hedge          bool            `json:"hedge"`
	Eject          bool            `json:"eject"`
	RecoveryP99    float64         `json:"recovery_p99_ratio"`
	Digest         string          `json:"answer_digest"`
	Baseline       *loadgen.Report `json:"baseline"`
	Resilient      *loadgen.Report `json:"resilient"`
	BaselineFleet  *fleet.Stats    `json:"baseline_fleet,omitempty"`
	ResilientFleet *fleet.Stats    `json:"resilient_fleet,omitempty"`
}

func writeCompareBench(path string, cfg serve.Config, f workloadFlags, baseRep, resRep *loadgen.Report, baseFleet, resFleet *fleet.Stats, ratio float64) error {
	doc := benchDoc{
		PR:       10,
		Title:    "Gray-failure resilience: hedging + latency ejection (E26)",
		Harness:  "meshserve -workload -outage-compare (internal/loadgen)",
		Mode:     f.mode,
		Side:     cfg.Side,
		RateSpec: f.rate,
		Zipf:     f.zipf,
		Kinds:    mixSpec(f),
		Seed:     f.seed,
		Window:   f.window.String(),
		Replicas: f.replicas,
		Policy:   f.policy,
		Compare: &compareDoc{
			Outage:         f.outage,
			Hedge:          true,
			Eject:          true,
			RecoveryP99:    ratio,
			Digest:         baseRep.Digest,
			Baseline:       baseRep,
			Resilient:      resRep,
			BaselineFleet:  baseFleet,
			ResilientFleet: resFleet,
		},
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Printf("wrote %s\n", path)
	}
	return werr
}
