// Kindserve: every query family the paper implements — dictionary
// membership ([PVS83] (2,3)-trees, §1), planar point location (Kirkpatrick
// hierarchies, §5), interval stabbing (§6), line–polyhedron intersection
// and tangent planes (DK hierarchies, §5 / Theorem 8) — served concurrently
// by ONE long-lived mesh as typed kinds. Each kind owns its resident
// structure; the executor runs one multisearch round per kind-batch and
// interleaves kinds fairly (DESIGN.md §3.10, experiment E25).
//
// Every answer is checked against serve.HostAnswer, the sequential host
// oracle for that kind's structure.
//
//	go run ./examples/kindserve
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve"
)

func main() {
	allKinds := []serve.Kind{
		serve.KindMembership, serve.KindPointLoc, serve.KindInterval,
		serve.KindLinePoly, serve.KindTangent,
	}
	s, err := serve.New(serve.Config{
		Side:   16,
		Linger: 500 * time.Microsecond,
		Kinds:  allKinds[1:], // membership is always served; opt in to the rest
	})
	if err != nil {
		panic(err)
	}
	defer s.Shutdown(context.Background())

	ss := s.Structures()
	fmt.Printf("one 16×16 mesh serving %d query kinds:\n", len(s.Kinds()))

	const perKind = 64
	var wg sync.WaitGroup
	type tally struct {
		kind  string
		found int
		steps int64
	}
	results := make([]tally, len(allKinds))
	for ki, k := range allKinds {
		wg.Add(1)
		go func(ki int, k serve.Kind) {
			defer wg.Done()
			st := ss.Get(k)
			t := tally{kind: k.String()}
			for i := int64(0); i < perKind; i++ {
				args := st.ArgsFor(i)
				var res serve.Result
				var err error
				for {
					res, err = s.LookupKind(context.Background(), k, args)
					if !errors.Is(err, serve.ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					panic(fmt.Sprintf("%s lookup %v: %v", k, args, err))
				}
				want := serve.HostAnswer(st, args)
				if res.Found != want.Found || res.Value != want.Value {
					panic(fmt.Sprintf("%s %v: mesh answered found=%v value=%d, host oracle says found=%v value=%d",
						k, args, res.Found, res.Value, want.Found, want.Value))
				}
				if res.Found {
					t.found++
				}
				t.steps += int64(res.Steps)
			}
			results[ki] = t
		}(ki, k)
	}
	wg.Wait()

	for _, t := range results {
		fmt.Printf("  %-10s  %d/%d queries answered, %d found, %d descent steps, all oracle-checked ✓\n",
			t.kind, perKind, perKind, t.found, t.steps)
	}
	st := s.Stats()
	fmt.Printf("%d lookups total, %d mesh rounds, 0 wrong answers\n",
		int64(len(allKinds))*perKind, st.Rounds)
}
