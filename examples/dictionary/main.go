// Dictionary: the mesh analogue of the parallel dictionaries of Paul,
// Vishkin and Wagener [PVS83], which §1 of the paper cites as the
// EREW-PRAM ancestor of multisearch. A (2,3)-tree over 20 000 keys answers
// one membership lookup per mesh processor in a single batch.
//
//	go run ./examples/dictionary
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/mesh"
)

func main() {
	const nKeys = 20000
	rng := rand.New(rand.NewSource(5))

	seen := map[int64]bool{}
	keys := make([]int64, 0, nKeys)
	for len(keys) < nKeys {
		k := rng.Int63n(1 << 40)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	bt := dict.New(keys, 2, 3)
	if err := bt.Validate(); err != nil {
		panic(err)
	}
	maxPart := bt.InstallSplitter()
	fmt.Printf("(2,3)-tree: %d keys, %d nodes, height %d\n", nKeys, bt.G.N(), bt.Height)

	side := 4
	for side*side < bt.G.N() {
		side *= 2
	}
	needles := make([]int64, side*side)
	hits := 0
	for i := range needles {
		if i%2 == 0 {
			needles[i] = keys[rng.Intn(len(keys))]
			hits++
		} else {
			needles[i] = rng.Int63n(1 << 40)
		}
	}

	m := mesh.New(side)
	in := core.NewInstance(m, bt.G, bt.NewQueries(needles), dict.Successor)
	stats := core.MultisearchAlpha(m.Root(), in, maxPart, 0)

	found := 0
	for i, q := range in.ResultQueries() {
		if dict.Member(q) != seen[needles[i]] {
			panic(fmt.Sprintf("needle %d: wrong membership", i))
		}
		if dict.Member(q) {
			found++
		}
	}
	fmt.Printf("%d lookups on a %d×%d mesh: %d members found, %d log-phases, %d mesh steps ✓\n",
		len(needles), side, side, found, stats.LogPhases, m.Steps())
}
