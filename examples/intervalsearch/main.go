// Interval search: the §6 application. A set of intervals is indexed twice
// — as a pair of directed rank trees (counting, Theorem 5 route) and as an
// undirected augmented interval tree (pruned-DFS reporting walks, Theorem 7
// route) — and a batch of intersection queries runs on the mesh through
// both, verified against brute force.
//
//	go run ./examples/intervalsearch
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/mesh"
)

func main() {
	const nIntervals = 2000
	const nQueries = 2048
	const span = 1 << 20

	rng := rand.New(rand.NewSource(7))
	set := make([]interval.Interval, nIntervals)
	for i := range set {
		lo := rng.Int63n(span)
		set[i] = interval.Interval{Lo: lo, Hi: lo + rng.Int63n(span/64), ID: int32(i)}
	}
	ranges := make([][2]int64, nQueries)
	for i := range ranges {
		lo := rng.Int63n(span)
		ranges[i] = [2]int64{lo, lo + rng.Int63n(span/256)}
	}

	// Route 1: counting via two rank descents per query (α-partitionable).
	ct := interval.NewCountTree(set)
	maxPart := ct.InstallSplitter()
	side := 4
	for side*side < ct.G.N() || side*side < 2*nQueries {
		side *= 2
	}
	m1 := mesh.New(side)
	in1 := core.NewInstance(m1, ct.G, ct.NewQueries(ranges), interval.CountSuccessor)
	st1 := core.MultisearchAlpha(m1.Root(), in1, maxPart, 0)
	counts := ct.Counts(in1.ResultQueries(), nQueries)
	fmt.Printf("count tree:  %d vertices, %d rank queries, %d log-phases, %d mesh steps\n",
		ct.G.N(), 2*nQueries, st1.LogPhases, m1.Steps())

	// Route 2: reporting walks on the undirected interval tree
	// (α-β-partitionable; walk length grows with the output size).
	st := interval.NewSearchTree(set)
	s1, s2 := st.InstallSplitters()
	side2 := 4
	for side2*side2 < st.Tree.N() || side2*side2 < nQueries {
		side2 *= 2
	}
	m2 := mesh.New(side2)
	in2 := core.NewInstance(m2, st.Tree.Graph, st.NewQueries(ranges), interval.Successor)
	st2 := core.MultisearchAlphaBeta(m2.Root(), in2, s1.MaxPart, s2.MaxPart, 0)
	walks := in2.ResultQueries()
	fmt.Printf("search tree: %d vertices, %d DFS walks, %d log-phases, %d mesh steps\n",
		st.Tree.N(), nQueries, st2.LogPhases, m2.Steps())

	// Both agree with brute force.
	var maxK, maxSteps int64
	for i, r := range ranges {
		want := interval.BruteCount(set, r[0], r[1])
		if counts[i] != want || interval.Count(walks[i]) != want {
			panic(fmt.Sprintf("query %d: count=%d walk=%d brute=%d", i, counts[i], interval.Count(walks[i]), want))
		}
		if want > maxK {
			maxK = want
		}
		if int64(walks[i].Steps) > maxSteps {
			maxSteps = int64(walks[i].Steps)
		}
	}
	fmt.Printf("all %d queries agree with brute force ✓ (max output %d, longest walk r=%d)\n",
		nQueries, maxK, maxSteps)
}
