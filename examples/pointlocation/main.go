// Point location: the §5 application. Build the Kirkpatrick subdivision
// hierarchy over a random triangulation and locate one query point per
// mesh processor with the hierarchical-DAG multisearch of Theorem 2.
//
//	go run ./examples/pointlocation
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/pointloc"
)

func main() {
	const sites = 1200
	const span = 1 << 20

	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point2, 0, sites)
	seen := map[geom.Point2]bool{}
	for len(pts) < sites {
		p := geom.Point2{X: rng.Int63n(span), Y: rng.Int63n(span)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}

	h, err := pointloc.Build(pts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangulation: %d sites → %d triangles\n", sites, len(h.Tri.Tris))
	fmt.Printf("Kirkpatrick hierarchy: %d levels, %d DAG nodes (μ ≈ %.2f)\n",
		h.Levels, h.Dag.N(), h.Dag.Mu)

	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	m := mesh.New(side)
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		panic(err)
	}

	queries := make([]geom.Point2, side*side/2)
	for i := range queries {
		queries[i] = geom.Point2{X: rng.Int63n(span), Y: rng.Int63n(span)}
	}
	in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(queries), h.Successor())
	core.MultisearchHDag(m.Root(), in, plan)

	located := 0
	for i, q := range in.ResultQueries() {
		if !h.Contains(pointloc.Answer(q), queries[i]) {
			panic(fmt.Sprintf("query %d landed in the wrong triangle", i))
		}
		located++
	}
	fmt.Printf("located %d points on a %d×%d mesh in %d simulated steps ✓\n",
		located, side, side, m.Steps())
}
