// Quickstart: run a batch of 4096 key searches on a balanced binary search
// tree, on a simulated 64×64 mesh-connected computer, with Algorithm 2
// (α-partitionable multisearch, Theorem 5) — and check the answers against
// the sequential oracle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

func main() {
	const side = 64 // the mesh is side×side; n = 4096 processors
	const height = 11

	// 1. Build the search structure G: a directed balanced binary tree with
	//    the Figure-2 α-splitter (cut at half height).
	tree := graph.NewBalancedTree(2, height, true)
	split := graph.InstallTreeSplitter(tree, (height+1)/2, graph.Primary)
	fmt.Printf("search tree: %d vertices, height %d\n", tree.N(), height)
	fmt.Printf("α-splitter: %d parts, largest %d ≈ n^%.2f\n", split.K, split.MaxPart, split.Delta)

	// 2. Draw one search query per processor; duplicated keys create the
	//    congestion that multisearch resolves by copying subgraphs.
	rng := rand.New(rand.NewSource(42))
	queries := workload.KeySearchQueries(side*side, int64(tree.SubtreeSize(0)), tree.Root(), 8, rng)

	// 3. Load everything onto the mesh and run the multisearch.
	m := mesh.New(side)
	in := core.NewInstance(m, tree.Graph, queries, workload.KeySearchSuccessor)
	stats := core.MultisearchAlpha(m.Root(), in, split.MaxPart, 0)

	fmt.Printf("\nmultisearch finished in %d log-phases\n", stats.LogPhases)
	fmt.Printf("simulated mesh time: %d steps (√n = %.0f, sort(n) = %d)\n",
		m.Steps(), math.Sqrt(float64(m.N())), m.Root().SortCost())

	// 4. Verify against the sequential oracle: identical visit sequences.
	want := core.Oracle(tree.Graph, queries, workload.KeySearchSuccessor, 0)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		panic(err)
	}
	fmt.Printf("all %d searches match the sequential oracle ✓\n", len(queries))
}
