// Tangent planes: the Theorem 8 application. Build the Dobkin–Kirkpatrick
// hierarchy of a random convex polyhedron and answer a batch of
// tangent-plane (extreme-vertex) queries on the mesh; then decide
// separation of two polyhedra from batched support queries.
//
//	go run ./examples/tangentplanes
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/polyhedron"
)

func main() {
	const hullPoints = 1500
	rng := rand.New(rand.NewSource(9))

	pts := geom.RandomSpherePoints(hullPoints, 1<<20, rng)
	poly, err := geom.ConvexHull3D(pts)
	if err != nil {
		panic(err)
	}
	h, err := polyhedron.Build(poly)
	if err != nil {
		panic(err)
	}
	fmt.Printf("polyhedron: %d vertices, %d faces\n", len(poly.Verts), len(poly.Faces))
	fmt.Printf("DK hierarchy: %d stages, %d DAG nodes\n", h.Stages, h.Dag.N())

	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	m := mesh.New(side)
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		panic(err)
	}
	dirs := make([]geom.Point3, side*side/2)
	for i := range dirs {
		for dirs[i] == (geom.Point3{}) {
			dirs[i] = geom.Point3{
				X: rng.Int63n(1<<20) - 1<<19,
				Y: rng.Int63n(1<<20) - 1<<19,
				Z: rng.Int63n(1<<20) - 1<<19,
			}
		}
	}
	in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(dirs), h.Successor())
	core.MultisearchHDag(m.Root(), in, plan)
	for i, q := range in.ResultQueries() {
		normal, off := h.TangentPlane(dirs[i], q)
		want := geom.Dot3(dirs[i], poly.Pts[poly.Extreme(dirs[i])])
		if off != want {
			panic(fmt.Sprintf("direction %d: tangent offset %d want %d", i, off, want))
		}
		_ = normal
	}
	fmt.Printf("%d tangent planes determined on a %d×%d mesh in %d steps ✓\n",
		len(dirs), side, side, m.Steps())

	// Separation of two polyhedra (Theorem 8.2).
	other := geom.RandomSpherePoints(hullPoints/2, 1<<19, rng)
	for i := range other {
		other[i].X += 3 << 20
	}
	poly2, err := geom.ConvexHull3D(other)
	if err != nil {
		panic(err)
	}
	h2, err := polyhedron.Build(poly2)
	if err != nil {
		panic(err)
	}
	axes := polyhedron.CandidateAxes(poly, poly2, 32, rng)
	side2 := side
	for side2*side2 < 4*len(axes) {
		side2 *= 2
	}
	res := polyhedron.Separate(h, h2, axes, mesh.New(side2), mesh.New(side2))
	fmt.Printf("separation: %d candidate axes, separated=%v, %d mesh steps\n",
		res.Axes, res.Separated, res.MeshSteps)
	if !res.Separated {
		panic("expected the translated hulls to be separated")
	}
}
