// Package repro is a reproduction of "Multisearch Techniques for
// Implementing Data Structures on a Mesh-Connected Computer (Preliminary
// Version)" (Atallah, Dehne, Miller, Rau-Chaplin, Tsay — SPAA 1991).
//
// The library lives under internal/:
//
//	internal/mesh       the simulated √n×√n mesh-connected computer
//	internal/graph      constant-degree graphs, hierarchical DAGs, splitters
//	internal/core       the multisearch algorithms (the paper's contribution)
//	internal/geom       exact geometric predicates, hulls, triangulations
//	internal/pointloc   Kirkpatrick subdivision hierarchies (§5)
//	internal/polyhedron Dobkin–Kirkpatrick hierarchies (§5, Theorem 8)
//	internal/interval   interval trees / multiple interval intersection (§6)
//	internal/workload   seeded input generators
//	internal/bench      the experiment harness behind cmd/meshbench
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
