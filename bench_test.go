package repro

// One benchmark per experiment of DESIGN.md §4. Each reports the simulated
// mesh time as the "mesh-steps" metric — the quantity the paper's theorems
// bound — alongside the usual wall-clock ns/op of the simulator itself.
// The full sweeps (several sizes per experiment) live in cmd/meshbench;
// these benchmarks pin one representative size each.

import (
	"math/rand"
	"testing"

	"math"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hypercube"
	"repro/internal/interval"
	"repro/internal/mesh"

	"repro/internal/pointloc"
	"repro/internal/polygon"
	"repro/internal/polyhedron"
	"repro/internal/workload"
)

const benchSide = 64 // 4096 processors

func reportSteps(b *testing.B, steps int64) {
	b.ReportMetric(float64(steps), "mesh-steps")
}

func benchTree(side int) (*graph.Tree, graph.Splitting) {
	h := 0
	for (1<<(h+2))-1 <= side*side {
		h++
	}
	tr := graph.NewBalancedTree(2, h, true)
	s := graph.InstallTreeSplitter(tr, (h+1)/2, graph.Primary)
	return tr, s
}

func BenchmarkE1ConstrainedMultisearch(b *testing.B) {
	tr, s := benchTree(benchSide)
	rng := rand.New(rand.NewSource(1))
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.KeySearchQueries(m.N(), int64(tr.SubtreeSize(0)), tr.Root(), 2, rng)
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		in.Prime(m.Root())
		in.GlobalStep(m.Root())
		m.ResetSteps()
		core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE2HierarchicalDAG(b *testing.B) {
	d := graph.CompleteTreeHDag(2, 11)
	plan, err := core.PlanHDag(d, benchSide)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.KeySearchQueries(m.N(), 1<<11, d.Root(), 2, rng)
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		m.ResetSteps()
		core.MultisearchHDag(m.Root(), in, plan)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE3AlphaPartitionable(b *testing.B) {
	g := workload.CycleGraph(benchSide*benchSide/benchSide, benchSide)
	rng := rand.New(rand.NewSource(3))
	r := 8 * core.Log2N(mesh.New(benchSide).Root())
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.WalkQueries(m.N(), r, g.N(), rng)
		in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
		core.MultisearchAlpha(m.Root(), in, benchSide, 0)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE4AlphaBeta(b *testing.B) {
	h := 11
	tr := graph.NewBalancedTree(2, h, false)
	s1 := graph.InstallTreeSplitter(tr, h/3, graph.Primary)
	s2 := graph.InstallTreeSplitter(tr, 2*h/3, graph.Secondary)
	rng := rand.New(rand.NewSource(4))
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.BounceQueries(m.N(), 4, int64(tr.SubtreeSize(0)), tr.Root(), rng)
		in := core.NewInstance(m, tr.Graph, qs, workload.BounceSuccessor(2))
		core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 0)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE5VsSynchronous(b *testing.B) {
	g := workload.CycleGraph(benchSide, benchSide)
	rng := rand.New(rand.NewSource(5))
	r := 8 * core.Log2N(mesh.New(benchSide).Root())
	b.Run("multisearch", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			m := mesh.New(benchSide)
			qs := workload.WalkQueries(m.N(), r, g.N(), rng)
			in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
			core.MultisearchAlpha(m.Root(), in, benchSide, 0)
			steps = m.Steps()
		}
		reportSteps(b, steps)
	})
	b.Run("synchronous", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			m := mesh.New(benchSide)
			qs := workload.WalkQueries(m.N(), r, g.N(), rng)
			in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
			core.SynchronousMultisearch(m.Root(), in, 0)
			steps = m.Steps()
		}
		reportSteps(b, steps)
	})
}

func BenchmarkE6SplitterStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := graph.NewBalancedTree(2, 14, true)
		s := graph.InstallTreeSplitter(tr, 7, graph.Primary)
		if err := graph.ValidateAlphaPartitionable(tr.Graph); err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

func BenchmarkE7AlphaBetaSplitterStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := graph.NewBalancedTree(2, 14, false)
		graph.InstallTreeSplitter(tr, 4, graph.Primary)
		graph.InstallTreeSplitter(tr, 9, graph.Secondary)
		if d := graph.SplitterDistance(tr.Graph); d < 4 {
			b.Fatalf("distance %d", d)
		}
	}
}

func BenchmarkE8BiDecomposition(b *testing.B) {
	d := graph.CompleteTreeHDag(2, 17)
	for i := 0; i < b.N; i++ {
		plan, err := core.PlanHDag(d, 512)
		if err != nil {
			b.Fatal(err)
		}
		if plan.S != 1 {
			b.Fatalf("S=%d", plan.S)
		}
	}
}

func BenchmarkE9IntervalIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	set := make([]interval.Interval, 2000)
	for i := range set {
		lo := rng.Int63n(1 << 20)
		set[i] = interval.Interval{Lo: lo, Hi: lo + rng.Int63n(1<<14), ID: int32(i)}
	}
	st := interval.NewSearchTree(set)
	s1, s2 := st.InstallSplitters()
	ranges := make([][2]int64, benchSide*benchSide/2)
	for i := range ranges {
		lo := rng.Int63n(1 << 20)
		ranges[i] = [2]int64{lo, lo + rng.Int63n(1<<12)}
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		in := core.NewInstance(m, st.Tree.Graph, st.NewQueries(ranges), interval.Successor)
		core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 0)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE10PointLocation(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pts := make([]geom.Point2, 0, 500)
	seen := map[geom.Point2]bool{}
	for len(pts) < 500 {
		p := geom.Point2{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	h, err := pointloc.Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geom.Point2, side*side/2)
	for i := range queries {
		queries[i] = geom.Point2{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20)}
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.New(side)
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(queries), h.Successor())
		core.MultisearchHDag(m.Root(), in, plan)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE11LinePolyhedron(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	poly, err := geom.ConvexHull3D(geom.RandomSpherePoints(800, 1<<20, rng))
	if err != nil {
		b.Fatal(err)
	}
	h, err := polyhedron.Build(poly)
	if err != nil {
		b.Fatal(err)
	}
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		b.Fatal(err)
	}
	dirs := make([]geom.Point3, side*side/2)
	for i := range dirs {
		for dirs[i] == (geom.Point3{}) {
			dirs[i] = geom.Point3{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20), Z: rng.Int63n(1 << 20)}
		}
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.New(side)
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(dirs), h.Successor())
		core.MultisearchHDag(m.Root(), in, plan)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE12Separation(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := geom.RandomSpherePoints(200, 1<<18, rng)
	c := geom.RandomSpherePoints(200, 1<<18, rng)
	for i := range c {
		c[i].X += 5 << 18
	}
	pa, _ := geom.ConvexHull3D(a)
	pb, _ := geom.ConvexHull3D(c)
	ha, err := polyhedron.Build(pa)
	if err != nil {
		b.Fatal(err)
	}
	hb, err := polyhedron.Build(pb)
	if err != nil {
		b.Fatal(err)
	}
	axes := polyhedron.CandidateAxes(pa, pb, 32, rng)
	side := 4
	for side*side < ha.Dag.N() || side*side < hb.Dag.N() || side*side < 4*len(axes) {
		side *= 2
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := polyhedron.Separate(ha, hb, axes, mesh.New(side), mesh.New(side))
		if !res.Separated {
			b.Fatal("not separated")
		}
		steps = res.MeshSteps
	}
	reportSteps(b, steps)
}

func BenchmarkE13CostModelAblation(b *testing.B) {
	d := graph.CompleteTreeHDag(2, 11)
	plan, err := core.PlanHDag(d, benchSide)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct {
		name  string
		model mesh.CostModel
	}{{"counted", mesh.CostCounted}, {"theoretical", mesh.CostTheoretical}} {
		b.Run(tc.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := mesh.New(benchSide, mesh.WithCostModel(tc.model))
				qs := workload.KeySearchQueries(m.N(), 1<<11, d.Root(), 2, rng)
				in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
				core.MultisearchHDag(m.Root(), in, plan)
				steps = m.Steps()
			}
			reportSteps(b, steps)
		})
	}
}

func BenchmarkE15Dictionary(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	seen := map[int64]bool{}
	keys := make([]int64, 0, 2000)
	for len(keys) < 2000 {
		k := rng.Int63n(1 << 40)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	bt := dict.New(keys, 2, 3)
	maxPart := bt.InstallSplitter()
	side := 4
	for side*side < bt.G.N() {
		side *= 2
	}
	needles := make([]int64, side*side/2)
	for i := range needles {
		needles[i] = keys[rng.Intn(len(keys))]
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.New(side)
		in := core.NewInstance(m, bt.G, bt.NewQueries(needles), dict.Successor)
		core.MultisearchAlpha(m.Root(), in, maxPart, 0)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE16ComputeLevels(b *testing.B) {
	d := graph.CompleteTreeHDag(2, 11)
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		in := core.NewInstance(m, d.Graph, nil, nil)
		core.ComputeLevels(m.Root(), in)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE17RecursionAblation(b *testing.B) {
	d := graph.CompleteTreeHDag(2, 11)
	man, err := core.ManualPlan(d, benchSide, 6, []core.HDagBlock{
		{Lo: 0, Hi: 2, Grid: 16},
		{Lo: 3, Hi: 5, Grid: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var steps int64
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.KeySearchQueries(m.N()/2, 1<<11, d.Root(), 2, rng)
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		core.MultisearchHDag(m.Root(), in, man)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE18HypercubeBaseline(b *testing.B) {
	g := workload.CycleGraph(benchSide, benchSide)
	rng := rand.New(rand.NewSource(18))
	r := 8 * core.Log2N(mesh.New(benchSide).Root())
	var steps int64
	for i := 0; i < b.N; i++ {
		c := hypercube.New(benchSide*benchSide, hypercube.CostCounted)
		qs := workload.WalkQueries(c.N(), r, g.N(), rng)
		in := hypercube.NewInstance(c, g, qs, workload.WalkSuccessor)
		hypercube.SynchronousMultisearch(in, 0)
		steps = c.Steps()
	}
	b.ReportMetric(float64(steps), "cube-steps")
}

func BenchmarkE19PolygonTangents(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	var raw []geom.Point2
	const nv = 2000
	for i := 0; i < nv; i++ {
		a := 2 * math.Pi * (float64(i) + 0.5) / nv
		raw = append(raw, geom.Point2{
			X: int64(float64(1<<26) * math.Cos(a)),
			Y: int64(float64(1<<26) * math.Sin(a)),
		})
	}
	hullIdx := geom.ConvexHull2D(raw)
	pts := make([]geom.Point2, len(hullIdx))
	for i, id := range hullIdx {
		pts[i] = raw[id]
	}
	h, err := polygon.Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geom.Point2, side*side/2)
	for i := range queries {
		a := 2 * math.Pi * rng.Float64()
		queries[i] = geom.Point2{
			X: int64(3 * float64(1<<26) * math.Cos(a)),
			Y: int64(3 * float64(1<<26) * math.Sin(a)),
		}
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.New(side)
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(queries, 1), h.Successor())
		core.MultisearchHDag(m.Root(), in, plan)
		steps = m.Steps()
	}
	reportSteps(b, steps)
}

func BenchmarkE14CopyVolume(b *testing.B) {
	tr, s := benchTree(benchSide)
	rng := rand.New(rand.NewSource(14))
	var vol int
	for i := 0; i < b.N; i++ {
		m := mesh.New(benchSide)
		qs := workload.SkewedQueries(m.N(), int64(tr.SubtreeSize(0)), tr.Root(), rng)
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		in.Prime(m.Root())
		in.GlobalStep(m.Root())
		st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
		if st.CopyVolume > 2*m.N() {
			b.Fatalf("copy volume %d > 2n", st.CopyVolume)
		}
		vol = st.CopyVolume
	}
	b.ReportMetric(float64(vol), "copy-words")
}
