package faults

import (
	"testing"
	"time"
)

// consult pokes one injection-seam consultation and discards the (no-fault)
// decision.
func consult(l *Latency) { _ = l.SortLie("test", 2) }

// TestLatencyZeroConfigInjectsNothing pins the no-op contract: a zero-config
// latency injector consults without sleeping and decides "no fault" at every
// seam point, so wrapping one changes nothing.
func TestLatencyZeroConfigInjectsNothing(t *testing.T) {
	l := NewLatency(LatencyConfig{}, nil)
	for i := 0; i < 200; i++ {
		if lie := l.SortLie("op", 8); lie != 0 {
			t.Fatalf("zero-config SortLie lied: %d", lie)
		}
		if _, _, ok := l.CorruptCell("op", 8); ok {
			t.Fatal("zero-config CorruptCell corrupted")
		}
		if _, ok := l.DropReply(4); ok {
			t.Fatal("zero-config DropReply dropped")
		}
		if _, _, ok := l.DuplicateReply(4); ok {
			t.Fatal("zero-config DuplicateReply duplicated")
		}
	}
	if got := l.Injected(); got != 0 {
		t.Fatalf("zero-config injector slept %v", got)
	}
	if got := l.Stalls(); got != 0 {
		t.Fatalf("zero-config injector stalled %d times", got)
	}
	if got := l.Consultations(); got != 800 {
		t.Fatalf("consultation count %d, want 800", got)
	}
}

// TestLatencyFactorInjectsProportionalDelay checks the constant-slow shape:
// with Factor f, each consultation charges (f-1)× the capped wall-clock gap
// since the previous one, so real gaps between consultations accumulate
// injected sleep.
func TestLatencyFactorInjectsProportionalDelay(t *testing.T) {
	l := NewLatency(LatencyConfig{Factor: 5}, nil)
	l.Arm(time.Now())
	for i := 0; i < 5; i++ {
		time.Sleep(300 * time.Microsecond) // the "real work" gap being amplified
		consult(l)
	}
	// 5 consultations × (5-1) × ~300µs gap ≈ 6ms; demand a loose 1ms floor so
	// coarse timers cannot flake the test.
	if got := l.Injected(); got < time.Millisecond {
		t.Fatalf("factor-5 injector slept only %v over 5 gapped consultations", got)
	}
	if got := l.Stalls(); got != 0 {
		t.Fatalf("factor-only config stalled %d times", got)
	}
}

// TestLatencyAfterDelaysOnset checks the outage-script knob: before the
// After offset elapses the injector is inert even with a large factor.
func TestLatencyAfterDelaysOnset(t *testing.T) {
	l := NewLatency(LatencyConfig{Factor: 50, After: time.Hour}, nil)
	l.Arm(time.Now())
	for i := 0; i < 5; i++ {
		time.Sleep(200 * time.Microsecond)
		consult(l)
	}
	if got := l.Injected(); got != 0 {
		t.Fatalf("injector slept %v before its onset", got)
	}
}

// TestLatencySetFactorDisarms checks the runtime override used by recovery
// scenarios: dropping the factor to 1 stops proportional injection.
func TestLatencySetFactorDisarms(t *testing.T) {
	l := NewLatency(LatencyConfig{Factor: 10}, nil)
	l.Arm(time.Now())
	l.SetFactor(1)
	for i := 0; i < 5; i++ {
		time.Sleep(200 * time.Microsecond)
		consult(l)
	}
	if got := l.Injected(); got != 0 {
		t.Fatalf("factor reset to 1 still slept %v", got)
	}
}

// TestLatencyStallsFire checks the intermittent-stall shape: consultations
// spread over a few stall intervals hit stall windows, each charging
// StallFor, and the stall count tracks the injected total.
func TestLatencyStallsFire(t *testing.T) {
	const stallFor = 2 * time.Millisecond
	l := NewLatency(LatencyConfig{Seed: 1, StallEvery: 500 * time.Microsecond, StallFor: stallFor}, nil)
	l.Arm(time.Now())
	deadline := time.Now().Add(2 * time.Second)
	for l.Stalls() < 2 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
		consult(l)
	}
	if got := l.Stalls(); got < 2 {
		t.Fatalf("only %d stalls fired in 2s with a 500µs mean interval", got)
	}
	if got := l.Injected(); got < stallFor {
		t.Fatalf("injected %v is below a single stall's duration %v", got, stallFor)
	}
}

// TestLatencyStallJitterIsSeeded pins the determinism contract for outage
// scripts: two injectors with the same seed draw identical stall-jitter
// sequences (so their stall schedules match, consultation for consultation),
// and a different seed diverges.
func TestLatencyStallJitterIsSeeded(t *testing.T) {
	draw := func(seed int64, n int) []float64 {
		l := NewLatency(LatencyConfig{Seed: seed}, nil)
		out := make([]float64, n)
		for i := range out {
			out[i] = l.stallJitter()
		}
		return out
	}
	a, b, c := draw(42, 64), draw(42, 64), draw(43, 64)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed produced %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("draw %d: %v outside [0,1)", i, a[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 drew identical 64-long jitter sequences")
	}
}

// TestLatencyCreepRamp checks the linear creep evaluation: factor 1 at
// onset, the midpoint halfway up, the full factor at and past the ramp end.
func TestLatencyCreepRamp(t *testing.T) {
	l := NewLatency(LatencyConfig{Factor: 9, Ramp: 8 * time.Second}, nil)
	cases := []struct {
		since time.Duration
		want  float64
	}{
		{0, 1},
		{2 * time.Second, 3},
		{4 * time.Second, 5},
		{8 * time.Second, 9},
		{time.Minute, 9},
	}
	for _, c := range cases {
		if got := l.factorAtLocked(c.since); got != c.want {
			t.Fatalf("factorAt(%v) = %v, want %v", c.since, got, c.want)
		}
	}
}

// relayInjector is a fault-decision stub with recognisable return values,
// for checking that Latency delegates every seam method to its inner
// injector.
type relayInjector struct{ calls int }

func (r *relayInjector) SortLie(string, int) int64                { r.calls++; return 7 }
func (r *relayInjector) CorruptCell(string, int) (int, int, bool) { r.calls++; return 1, 2, true }
func (r *relayInjector) DropReply(int) (int, bool)                { r.calls++; return 3, true }
func (r *relayInjector) DuplicateReply(int) (int, int, bool)      { r.calls++; return 4, 5, true }

// TestLatencyDelegatesToInner checks the chaining contract: a latency
// injector wrapped around a fault injector passes every decision through
// unchanged, so gray failure and fail-stop chaos compose.
func TestLatencyDelegatesToInner(t *testing.T) {
	inner := &relayInjector{}
	l := NewLatency(LatencyConfig{}, inner)
	if lie := l.SortLie("op", 8); lie != 7 {
		t.Fatalf("SortLie relay = %d, want 7", lie)
	}
	if a, b, ok := l.CorruptCell("op", 8); a != 1 || b != 2 || !ok {
		t.Fatalf("CorruptCell relay = %d,%d,%v", a, b, ok)
	}
	if a, ok := l.DropReply(4); a != 3 || !ok {
		t.Fatalf("DropReply relay = %d,%v", a, ok)
	}
	if a, b, ok := l.DuplicateReply(4); a != 4 || b != 5 || !ok {
		t.Fatalf("DuplicateReply relay = %d,%d,%v", a, b, ok)
	}
	if inner.calls != 4 {
		t.Fatalf("inner saw %d calls, want 4", inner.calls)
	}
}
