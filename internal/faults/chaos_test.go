package faults

import (
	"testing"

	"repro/internal/mesh"
)

// workload exercises every injection point: a register sort, a scan, and a
// full-mesh RAR with one reply per processor.
func workload(m *mesh.Mesh) {
	v := m.Root()
	r := mesh.NewReg[int](m)
	mesh.Apply(v, r, func(i int, _ int) int { return (i * 2654435761) % 1009 })
	mesh.Sort(v, r, func(a, b int) bool { return a < b })
	mesh.Scan(v, r, func(a, b int) int { return a + b })
	n := v.Size()
	mesh.RAR(v,
		func(i int) (int32, int, bool) { return int32(i), i * 3, true },
		func(i int) (int32, bool) { return int32((i + 5) % n), true },
		func(i int, val int, found bool) {})
}

// TestChaosEveryFaultClassIsCaught drives one fault class at a time at
// probability 1 against an audited mesh and requires the audit to fire.
func TestChaosEveryFaultClassIsCaught(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		kind string
	}{
		{"register corruption", Config{Seed: 1, PCorrupt: 1, Limit: 1}, "corrupt-cell"},
		{"lying comparator", Config{Seed: 2, PSortLie: 1, Limit: 1}, "sort-lie"},
		{"dropped RAR reply", Config{Seed: 3, PDrop: 1, Limit: 1}, "drop-reply"},
		{"duplicated RAR reply", Config{Seed: 4, PDup: 1, Limit: 1}, "dup-reply"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := New(tc.cfg)
			m := mesh.New(8, mesh.WithAudit(), mesh.WithInjector(inj))
			defer func() {
				r := recover()
				ae, ok := r.(*mesh.AuditError)
				if !ok {
					t.Fatalf("recovered %T (%v), want *mesh.AuditError", r, r)
				}
				evs := inj.Events()
				if len(evs) != 1 {
					t.Fatalf("injected %d faults, want 1 (%v)", len(evs), evs)
				}
				if evs[0].Kind != tc.kind {
					t.Fatalf("injected %q, want %q", evs[0].Kind, tc.kind)
				}
				if ae.Op == "" || ae.Detail == "" {
					t.Fatalf("audit error lacks context: %v", ae)
				}
			}()
			workload(m)
			t.Fatalf("fault class %q escaped the audit (events: %v)", tc.name, inj.Events())
		})
	}
}

// TestChaosScanVariantsAreCaught drives register corruption at probability 1
// against the scan variants and the scratch routing, which used to bypass the
// injection seam and the prefix-identity audit entirely. Setup uses mesh.Load
// (chargeless, never consults the injector), so the single injected fault
// lands on the op under test. Outputs are distinct by construction, so any
// src≠dst corruption is observable.
func TestChaosScanVariantsAreCaught(t *testing.T) {
	cases := []struct {
		name string
		op   string
		run  func(m *mesh.Mesh)
	}{
		{"ExclusiveScan", "ExclusiveScan", func(m *mesh.Mesh) {
			v := m.Root()
			r := mesh.NewReg[int](m)
			xs := make([]int, v.Size())
			for i := range xs {
				xs[i] = i + 1
			}
			mesh.Load(v, r, xs)
			mesh.ExclusiveScan(v, r, 0, func(a, b int) int { return a + b })
		}},
		{"SegScan", "SegScan", func(m *mesh.Mesh) {
			v := m.Root()
			r := mesh.NewReg[int](m)
			head := mesh.NewReg[bool](m)
			xs := make([]int, v.Size())
			hs := make([]bool, v.Size())
			for i := range xs {
				xs[i] = i
				hs[i] = i%5 == 0
			}
			mesh.Load(v, r, xs)
			mesh.Load(v, head, hs)
			mesh.SegScan(v, r, head, func(a, b int) int { return max(a, b) })
		}},
		{"RouteScratch", "RouteScratch", func(m *mesh.Mesh) {
			v := m.Root()
			src := make([]int, v.Size())
			for i := range src {
				src[i] = 100 + i
			}
			dst, occ := mesh.RouteScratch(v, src, len(src), 1,
				func(i int) int { return len(src) - 1 - i })
			mesh.Release(m, dst)
			mesh.Release(m, occ)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := New(Config{Seed: 11, PCorrupt: 1, Limit: 1})
			m := mesh.New(8, mesh.WithAudit(), mesh.WithInjector(inj))
			defer func() {
				r := recover()
				ae, ok := r.(*mesh.AuditError)
				if !ok {
					t.Fatalf("recovered %T (%v), want *mesh.AuditError", r, r)
				}
				evs := inj.Events()
				if len(evs) != 1 || evs[0].Kind != "corrupt-cell" || evs[0].Op != tc.op {
					t.Fatalf("injected %v, want one corrupt-cell on %s", evs, tc.op)
				}
				if ae.Op != tc.op {
					t.Fatalf("audit flagged op %q, want %q", ae.Op, tc.op)
				}
			}()
			tc.run(m)
			t.Fatalf("corruption on %s escaped the audit (events: %v)", tc.name, inj.Events())
		})
	}
}

// TestChaosDropEqualsDupSrcEdge scans seeds for the reply-fault edge where
// the seeded injector happens to drop exactly the reply it then duplicates
// (drop == dupSrc). The edge is easy to get wrong — the dropped origin is
// never delivered while the duplication target's origin is delivered twice —
// and the audit must flag every such run. Seed decisions are pure integer
// arithmetic, so which seeds produce the edge is deterministic.
func TestChaosDropEqualsDupSrcEdge(t *testing.T) {
	rar := func(m *mesh.Mesh) {
		v := m.Root()
		n := v.Size()
		mesh.RAR(v,
			func(i int) (int32, int, bool) { return int32(i), i * 3, true },
			func(i int) (int32, bool) { return int32((i + 5) % n), true },
			func(i int, val int, found bool) {})
	}
	edges := 0
	for seed := int64(1); seed <= 256; seed++ {
		inj := New(Config{Seed: seed, PDrop: 1, PDup: 1, Limit: 2})
		m := mesh.New(8, mesh.WithAudit(), mesh.WithInjector(inj))
		var ae *mesh.AuditError
		func() {
			defer func() {
				if r := recover(); r != nil {
					var ok bool
					if ae, ok = r.(*mesh.AuditError); !ok {
						panic(r)
					}
				}
			}()
			rar(m)
		}()
		if ae == nil {
			t.Fatalf("seed %d: drop+dup reply faults escaped the audit (events: %v)", seed, inj.Events())
		}
		evs := inj.Events()
		if len(evs) == 2 && evs[0].Kind == "drop-reply" && evs[1].Kind == "dup-reply" &&
			evs[0].A == evs[1].A {
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("no seed in 1..256 produced the drop == dupSrc edge; widen the scan")
	}
	t.Logf("drop == dupSrc edge hit on %d of 256 seeds, all flagged by audit", edges)
}

// runQuiet executes the workload, swallowing any panic the injected
// corruption provokes downstream (with audit off, a corrupted bank can
// still trip structural panics inside RAR — exactly what the core.Run
// containment boundary exists for).
func runQuiet(m *mesh.Mesh) {
	defer func() { _ = recover() }()
	workload(m)
}

// TestChaosSeededRunsAreReproducible runs the same sequential workload twice
// under the same seed and requires identical fault logs.
func TestChaosSeededRunsAreReproducible(t *testing.T) {
	cfg := Config{Seed: 42, PSortLie: 0.5, PCorrupt: 0.5, PDrop: 0.5, PDup: 0.5}
	run := func() []Event {
		inj := New(cfg)
		m := mesh.New(8, mesh.WithInjector(inj)) // audit off
		runQuiet(m)
		return inj.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.5 across a dozen consultations")
	}
	if len(a) != len(b) {
		t.Fatalf("fault logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestZeroConfigInjectsNothingAndMatchesPlainRun proves the no-injection
// path is inert: a zero-probability injector plus audit mode produces the
// same step clock and per-op profile as a bare mesh.
func TestZeroConfigInjectsNothingAndMatchesPlainRun(t *testing.T) {
	plain := mesh.New(8)
	workload(plain)

	inj := New(Config{Seed: 7})
	chaos := mesh.New(8, mesh.WithAudit(), mesh.WithInjector(inj))
	workload(chaos)

	if inj.Count() != 0 {
		t.Fatalf("zero config injected %d faults: %v", inj.Count(), inj.Events())
	}
	if plain.Steps() != chaos.Steps() {
		t.Fatalf("step clocks differ: plain=%d chaos=%d", plain.Steps(), chaos.Steps())
	}
	if plain.Profile() != chaos.Profile() {
		t.Fatalf("profiles differ:\nplain %+v\nchaos %+v", plain.Profile(), chaos.Profile())
	}
}

// TestLimitStopsInjection checks the fault budget.
func TestLimitStopsInjection(t *testing.T) {
	inj := New(Config{Seed: 9, PCorrupt: 1, Limit: 2})
	m := mesh.New(8, mesh.WithInjector(inj))
	for i := 0; i < 5; i++ {
		runQuiet(m)
	}
	if got := inj.Count(); got != 2 {
		t.Fatalf("injected %d faults, want exactly Limit=2", got)
	}
}

// TestEventStrings keeps the log human-readable.
func TestEventStrings(t *testing.T) {
	for _, e := range []Event{
		{Kind: "sort-lie", Op: "Sort", Items: 64, A: 12},
		{Kind: "corrupt-cell", Op: "RAR", Items: 128, A: 3, B: 77},
		{Kind: "drop-reply", Items: 64, A: 5},
		{Kind: "dup-reply", Items: 64, A: 5, B: 6},
	} {
		if e.String() == "" {
			t.Fatalf("empty String for %+v", e)
		}
	}
}
