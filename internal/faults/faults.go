// Package faults provides the seeded, deterministic mesh.Injector used by
// the chaos tests and the meshbench -chaos flag.
//
// The injector draws one decision per consultation from a seeded generator,
// so a chaos run is identified by its seed plus per-class probabilities: the
// same configuration injects the same faults. (Under RunParallel the
// *interleaving* of consultations across submesh goroutines can vary between
// runs, but each consultation's decision depends only on the seed and a
// consultation counter, so the injected fault multiset is reproducible; the
// chaos tests drive sequential workloads, where reproduction is exact.)
//
// Every injected fault is appended to an event log, so a failing chaos run
// reports what it actually broke, not just that something tripped the audit.
package faults

import (
	"fmt"
	"sync"

	"repro/internal/mesh"
)

// Config selects fault classes by probability per consultation point.
// Probabilities are in [0, 1]; zero disables a class. The zero Config
// injects nothing.
type Config struct {
	Seed     int64
	PSortLie float64 // lying comparator inside a charged sort
	PCorrupt float64 // corrupted register cell after a sort write-back
	PDrop    float64 // dropped RAR reply
	PDup     float64 // duplicated RAR reply to a wrong origin
	Limit    int     // stop injecting after this many faults; 0 = unlimited
}

// Event records one injected fault.
type Event struct {
	Kind  string // "sort-lie", "corrupt-cell", "drop-reply", "dup-reply"
	Op    string // operation name for sort faults, "" for reply faults
	Items int    // bank or reply-sweep size at the injection point
	A, B  int64  // fault parameters (comparison index, src/dst, drop index)
}

func (e Event) String() string {
	switch e.Kind {
	case "sort-lie":
		return fmt.Sprintf("%s: comparator lies from comparison %d (%s, %d items)", e.Kind, e.A, e.Op, e.Items)
	case "corrupt-cell":
		return fmt.Sprintf("%s: cell %d overwritten with cell %d (%s, %d items)", e.Kind, e.B, e.A, e.Op, e.Items)
	case "drop-reply":
		return fmt.Sprintf("%s: reply %d of %d dropped", e.Kind, e.A, e.Items)
	default:
		return fmt.Sprintf("%s: reply %d of %d re-delivered to origin of request %d", e.Kind, e.A, e.Items, e.B)
	}
}

// Injector is the seeded mesh.Injector. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	calls  uint64
	events []Event
}

var _ mesh.Injector = (*Injector)(nil)

// New returns an injector for the given configuration.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// rand01 returns a decision pair for the next consultation: a uniform
// variate in [0,1) and a raw 64-bit value for choosing fault parameters.
// Decisions depend only on the seed and the consultation counter
// (splitmix64 of seed+counter), never on goroutine scheduling.
func (f *Injector) rand01() (float64, uint64) {
	f.calls++
	z := uint64(f.cfg.Seed) + f.calls*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53), z
}

func (f *Injector) exhausted() bool {
	return f.cfg.Limit > 0 && len(f.events) >= f.cfg.Limit
}

// SortLie implements mesh.Injector.
func (f *Injector) SortLie(op string, items int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	u, z := f.rand01()
	if f.exhausted() || items < 2 || u >= f.cfg.PSortLie {
		return 0
	}
	// Lie from a comparison within the first items comparisons, early
	// enough in the O(items log items) total that the mis-sort is
	// substantial.
	k := int64(z%uint64(items)) + 1
	f.events = append(f.events, Event{Kind: "sort-lie", Op: op, Items: items, A: k})
	return k
}

// CorruptCell implements mesh.Injector.
func (f *Injector) CorruptCell(op string, items int) (int, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	u, z := f.rand01()
	if f.exhausted() || items < 2 || u >= f.cfg.PCorrupt {
		return 0, 0, false
	}
	src := int(z % uint64(items))
	dst := int((z >> 20) % uint64(items))
	if dst == src {
		dst = (dst + 1) % items
	}
	f.events = append(f.events, Event{Kind: "corrupt-cell", Op: op, Items: items, A: int64(src), B: int64(dst)})
	return src, dst, true
}

// DropReply implements mesh.Injector.
func (f *Injector) DropReply(replies int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	u, z := f.rand01()
	if f.exhausted() || replies < 1 || u >= f.cfg.PDrop {
		return 0, false
	}
	d := int(z % uint64(replies))
	f.events = append(f.events, Event{Kind: "drop-reply", Items: replies, A: int64(d)})
	return d, true
}

// DuplicateReply implements mesh.Injector.
func (f *Injector) DuplicateReply(replies int) (int, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	u, z := f.rand01()
	if f.exhausted() || replies < 2 || u >= f.cfg.PDup {
		return 0, 0, false
	}
	src := int(z % uint64(replies))
	dst := int((z >> 20) % uint64(replies))
	if dst == src {
		dst = (dst + 1) % replies
	}
	f.events = append(f.events, Event{Kind: "dup-reply", Items: replies, A: int64(src), B: int64(dst)})
	return src, dst, true
}

// Events returns a copy of the injected-fault log.
func (f *Injector) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, len(f.events))
	copy(out, f.events)
	return out
}

// Count returns the number of faults injected so far.
func (f *Injector) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.events)
}
