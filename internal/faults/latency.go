package faults

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mesh"
)

// Latency is a mesh.Injector that injects wall-clock delay instead of data
// faults: a gray failure. Every consultation point of the injection seam —
// one per charged mesh operation — may sleep before delegating to the
// wrapped injector (or returning "no fault" when none is wrapped), so a
// replica carrying one becomes slow without a single round failing: audits
// pass, the breaker sees no faults, /healthz stays 200, and step tables are
// byte-identical to an uninjected run. This is the failure mode the
// fail-stop chaos of internal/faults.Injector cannot produce, and the one
// the fleet's hedging and latency-aware ejection exist to absorb.
//
// The slowdown is gap-proportional: each consultation charges
// (factor-1) × the wall-clock gap since the previous consultation (capped
// by MaxGap so idle time between rounds is not amplified), which makes the
// replica's mesh work run at ~factor× wall-clock cost regardless of batch
// size or kind mix. Three degradation shapes compose from the config:
//
//	constant-slow — Factor > 1, Ramp 0: the replica is factor× slower from
//	                the onset instant on.
//	creeping      — Factor > 1, Ramp > 0: the slowdown grows linearly from
//	                1× to Factor× over Ramp, modelling slow resource decay.
//	stalls        — StallEvery > 0: the replica freezes for StallFor at
//	                seeded-jittered intervals, modelling GC/IO pauses.
//
// The schedule is anchored at Arm time (or lazily at the first consultation
// when Arm is never called) plus the After offset, so an outage script can
// stage "replica 1 becomes 10× slower at t=2s".
type Latency struct {
	cfg   LatencyConfig
	inner mesh.Injector

	mu        sync.Mutex
	armed     time.Time // schedule origin (zero until armed)
	last      time.Time // previous consultation, for the gap charge
	nextStall time.Time
	stallSeq  uint64  // deterministic stall-jitter counter
	factor    float64 // live slowdown target (SetFactor overrides cfg.Factor)

	calls  atomic.Int64
	slept  atomic.Int64 // injected ns
	stalls atomic.Int64
}

// LatencyConfig configures a Latency injector. The zero value injects
// nothing (factor 1, no stalls).
type LatencyConfig struct {
	// Seed jitters the stall schedule deterministically (same seed, same
	// stall instants relative to arming).
	Seed int64
	// Factor is the wall-clock slowdown multiple for mesh work (≤ 1 means
	// no proportional slowdown).
	Factor float64
	// Ramp makes the slowdown creep: the factor grows linearly from 1 to
	// Factor over this window after onset. 0 applies Factor as a step.
	Ramp time.Duration
	// After delays the degradation onset past the arming instant, so a
	// schedule can start a healthy replica and break it mid-run.
	After time.Duration
	// StallEvery enables intermittent stalls at this mean interval
	// (jittered ±50% from Seed); 0 disables stalls.
	StallEvery time.Duration
	// StallFor is each stall's duration (default 50ms when stalls are on).
	StallFor time.Duration
	// MaxGap caps the inter-consultation gap charged by the proportional
	// slowdown (default 1ms), so idle spells between rounds are not
	// amplified into huge sleeps on the next round's first operation.
	MaxGap time.Duration
}

var _ mesh.Injector = (*Latency)(nil)

// NewLatency returns a latency injector wrapping inner (nil injects latency
// only — every fault decision is "no fault").
func NewLatency(cfg LatencyConfig, inner mesh.Injector) *Latency {
	if cfg.StallEvery > 0 && cfg.StallFor <= 0 {
		cfg.StallFor = 50 * time.Millisecond
	}
	if cfg.MaxGap <= 0 {
		cfg.MaxGap = time.Millisecond
	}
	return &Latency{cfg: cfg, inner: inner, factor: cfg.Factor}
}

// Arm anchors the degradation schedule at t: onset is t+After. Without an
// explicit Arm the schedule anchors at the first consultation, which for a
// serving replica is its first post-build round.
func (l *Latency) Arm(t time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.armed.IsZero() {
		l.armed = t
		l.last = t
	}
}

// SetFactor replaces the slowdown target at runtime (ops override and the
// recovery half of ejection tests: a slow replica that heals).
func (l *Latency) SetFactor(f float64) {
	l.mu.Lock()
	l.factor = f
	l.mu.Unlock()
}

// Injected reports the total wall-clock delay injected so far.
func (l *Latency) Injected() time.Duration { return time.Duration(l.slept.Load()) }

// Stalls reports how many stall pauses fired.
func (l *Latency) Stalls() int64 { return l.stalls.Load() }

// Consultations reports how many injection-seam consultations were seen.
func (l *Latency) Consultations() int64 { return l.calls.Load() }

// stallJitter is a deterministic uniform variate in [0,1) from the seed and
// the stall counter (splitmix64, same generator as Injector.rand01).
func (l *Latency) stallJitter() float64 {
	l.stallSeq++
	z := uint64(l.cfg.Seed) + l.stallSeq*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// pause is the shared consultation hook: compute this consultation's delay
// under the lock, sleep outside it (concurrent submesh goroutines pause in
// parallel, which is what "the whole replica is slow" means).
func (l *Latency) pause() {
	l.calls.Add(1)
	now := time.Now()
	l.mu.Lock()
	if l.armed.IsZero() {
		l.armed = now
		l.last = now
	}
	gap := now.Sub(l.last)
	l.last = now
	if gap < 0 {
		gap = 0
	} else if gap > l.cfg.MaxGap {
		gap = l.cfg.MaxGap
	}
	since := now.Sub(l.armed) - l.cfg.After // time past onset; negative = not yet
	var d time.Duration
	if since >= 0 {
		if f := l.factorAtLocked(since); f > 1 {
			d = time.Duration(float64(gap) * (f - 1))
		}
		if l.cfg.StallEvery > 0 {
			if l.nextStall.IsZero() {
				// First stall lands within one (jittered) interval of onset.
				l.nextStall = now.Add(time.Duration(float64(l.cfg.StallEvery) * (0.5 + l.stallJitter())))
			} else if !now.Before(l.nextStall) {
				d += l.cfg.StallFor
				l.stalls.Add(1)
				l.nextStall = now.Add(time.Duration(float64(l.cfg.StallEvery) * (0.5 + l.stallJitter())))
			}
		}
	}
	l.mu.Unlock()
	if d > 0 {
		l.slept.Add(int64(d))
		time.Sleep(d)
	}
}

// factorAtLocked evaluates the creep ramp at time since onset.
func (l *Latency) factorAtLocked(since time.Duration) float64 {
	f := l.factor
	if f <= 1 {
		return 1
	}
	if l.cfg.Ramp <= 0 || since >= l.cfg.Ramp {
		return f
	}
	return 1 + (f-1)*float64(since)/float64(l.cfg.Ramp)
}

// SortLie implements mesh.Injector.
func (l *Latency) SortLie(op string, items int) int64 {
	l.pause()
	if l.inner != nil {
		return l.inner.SortLie(op, items)
	}
	return 0
}

// CorruptCell implements mesh.Injector.
func (l *Latency) CorruptCell(op string, items int) (int, int, bool) {
	l.pause()
	if l.inner != nil {
		return l.inner.CorruptCell(op, items)
	}
	return 0, 0, false
}

// DropReply implements mesh.Injector.
func (l *Latency) DropReply(replies int) (int, bool) {
	l.pause()
	if l.inner != nil {
		return l.inner.DropReply(replies)
	}
	return 0, false
}

// DuplicateReply implements mesh.Injector.
func (l *Latency) DuplicateReply(replies int) (int, int, bool) {
	l.pause()
	if l.inner != nil {
		return l.inner.DuplicateReply(replies)
	}
	return 0, 0, false
}
