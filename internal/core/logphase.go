package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// Algorithms 2 and 3: one log-phase advances every unfinished query Ω(log n)
// steps (given splitters with the §4 properties) in O(√n) time; the full
// multisearch iterates log-phases until all search paths end.

// PhaseStats aggregates one multisearch run for the Theorem 5/7 experiments.
type PhaseStats struct {
	LogPhases   int
	GlobalSteps int
	CMS         []CMSStats
}

// LogPhaseAlpha runs Algorithm 2, one log-phase of multisearch on an
// α-partitionable directed graph:
//
//  1. every query visits the next node in its search path
//  2. Constrained-Multisearch({H…,T…}, α)
//  3. every query visits the next node in its search path
//  4. Constrained-Multisearch({H…,T…}, α)
//
// maxPart bounds every part of the installed primary splitting.
func LogPhaseAlpha(v mesh.View, in *Instance, maxPart int) []CMSStats {
	defer trace.Span(v, "logphase-a")()
	steps := Log2N(v)
	globalStep(v, in)
	a := ConstrainedMultisearch(v, in, graph.Primary, maxPart, steps)
	globalStep(v, in)
	b := ConstrainedMultisearch(v, in, graph.Primary, maxPart, steps)
	return []CMSStats{a, b}
}

// LogPhaseAlphaBeta runs Algorithm 3, one log-phase of multisearch on an
// α-β-partitionable undirected graph: like Algorithm 2 but the second
// constrained multisearch switches to the subgraphs of the β-splitter.
func LogPhaseAlphaBeta(v mesh.View, in *Instance, maxPart1, maxPart2 int) []CMSStats {
	defer trace.Span(v, "logphase-ab")()
	steps := Log2N(v)
	globalStep(v, in)
	a := ConstrainedMultisearch(v, in, graph.Primary, maxPart1, steps)
	globalStep(v, in)
	b := ConstrainedMultisearch(v, in, graph.Secondary, maxPart2, steps)
	return []CMSStats{a, b}
}

// globalStep wraps Instance.GlobalStep in its tracing span.
func globalStep(v mesh.View, in *Instance) {
	defer trace.Span(v, "globalstep")()
	in.GlobalStep(v)
}

// MultisearchAlpha solves the multisearch problem on an α-partitionable
// directed graph (Theorem 5): Prime once, then iterate Algorithm 2
// log-phases until every search path has ended. maxPhases guards against
// inputs violating the partitionability contract (0 = derive from the
// worst case of one step of progress per phase).
func MultisearchAlpha(v mesh.View, in *Instance, maxPart, maxPhases int) PhaseStats {
	return runLogPhases(v, in, maxPhases, func() []CMSStats {
		return LogPhaseAlpha(v, in, maxPart)
	})
}

// MultisearchAlphaBeta solves the multisearch problem on an
// α-β-partitionable undirected graph (Theorem 7) by iterating Algorithm 3.
func MultisearchAlphaBeta(v mesh.View, in *Instance, maxPart1, maxPart2, maxPhases int) PhaseStats {
	return runLogPhases(v, in, maxPhases, func() []CMSStats {
		return LogPhaseAlphaBeta(v, in, maxPart1, maxPart2)
	})
}

func runLogPhases(v mesh.View, in *Instance, maxPhases int, phase func() []CMSStats) PhaseStats {
	defer trace.Span(v, "multisearch")()
	var st PhaseStats
	in.Prime(v)
	for in.Unfinished(v) > 0 {
		if maxPhases > 0 && st.LogPhases >= maxPhases {
			panic(fmt.Sprintf("core: multisearch did not finish within %d log-phases; "+
				"check the splitter properties of the input graph", maxPhases))
		}
		st.CMS = append(st.CMS, phase()...)
		st.LogPhases++
		st.GlobalSteps += 2
	}
	return st
}

// SynchronousMultisearch is the baseline the paper argues against for
// meshes (§1, the [DR90] hypercube strategy): advance all queries
// synchronously, one full-mesh random-access read per search step, Θ(r·√n)
// total. Returns the number of multisteps executed.
func SynchronousMultisearch(v mesh.View, in *Instance, maxSteps int) int {
	defer trace.Span(v, "synchronous")()
	in.Prime(v)
	steps := 0
	for in.Unfinished(v) > 0 {
		if maxSteps > 0 && steps >= maxSteps {
			panic(fmt.Sprintf("core: synchronous multisearch exceeded %d multisteps", maxSteps))
		}
		in.GlobalStep(v)
		steps++
	}
	return steps
}
