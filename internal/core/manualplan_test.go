package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

// Multi-block Algorithm 1 runs: automatic plans never reach S ≥ 2 at
// realizable sizes, so the step-2 union cascade (pushUnionDown) is
// exercised through manual plans.

func TestManualPlanTwoBlocks(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 9) // 1023 vertices
	plan, err := core.ManualPlan(d, 32, 6, []core.HDagBlock{
		{Lo: 0, Hi: 2, Grid: 8},
		{Lo: 3, Hi: 5, Grid: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.S != 2 || plan.GridOf(0) != 8 || plan.GridOf(1) != 4 || plan.GridOf(2) != 1 {
		t.Fatalf("plan: %+v", plan)
	}
	m := mesh.New(32)
	qs := workload.KeySearchQueries(512, 1<<9, d.Root(), 3, rand.New(rand.NewSource(40)))
	want := core.Oracle(d.Graph, qs, workload.KeySearchSuccessor, 0)
	in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
	st := core.MultisearchHDag(m.Root(), in, plan)
	if st.Blocks != 2 {
		t.Fatalf("blocks=%d", st.Blocks)
	}
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestManualPlanThreeBlocks(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 11) // 4095 vertices, side 64
	plan, err := core.ManualPlan(d, 64, 8, []core.HDagBlock{
		{Lo: 0, Hi: 2, Grid: 16},
		{Lo: 3, Hi: 5, Grid: 8},
		{Lo: 6, Hi: 7, Grid: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(64)
	qs := workload.KeySearchQueries(2048, 1<<11, d.Root(), 1, rand.New(rand.NewSource(41)))
	want := core.Oracle(d.Graph, qs, workload.KeySearchSuccessor, 0)
	in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestManualPlanValidation(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 9)
	cases := []struct {
		name   string
		starLo int
		blocks []core.HDagBlock
	}{
		{"gap", 6, []core.HDagBlock{{Lo: 0, Hi: 2, Grid: 8}, {Lo: 4, Hi: 5, Grid: 4}}},
		{"empty block", 6, []core.HDagBlock{{Lo: 0, Hi: -1, Grid: 8}}},
		{"bad grid", 6, []core.HDagBlock{{Lo: 0, Hi: 5, Grid: 3}}},
		{"grid grows", 6, []core.HDagBlock{{Lo: 0, Hi: 2, Grid: 4}, {Lo: 3, Hi: 5, Grid: 8}}},
		{"overflow", 6, []core.HDagBlock{{Lo: 0, Hi: 5, Grid: 32}}},
		{"star mismatch", 7, []core.HDagBlock{{Lo: 0, Hi: 2, Grid: 8}}},
		{"star empty", 10, []core.HDagBlock{{Lo: 0, Hi: 9, Grid: 8}}},
	}
	for _, tc := range cases {
		if _, err := core.ManualPlan(d, 32, tc.starLo, tc.blocks); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Mesh too small.
	if _, err := core.ManualPlan(d, 16, 6, nil); err == nil {
		t.Error("mesh overflow: expected error")
	}
}

func TestManualPlanMatchesAutomaticCostOrder(t *testing.T) {
	// Ablation sanity: on the same DAG and queries, a deeper manual
	// recursion must still produce correct results and cost within 3× of
	// the automatic plan.
	d := graph.CompleteTreeHDag(2, 11)
	qs := workload.KeySearchQueries(2048, 1<<11, d.Root(), 2, rand.New(rand.NewSource(42)))

	mAuto := mesh.New(64)
	auto, err := core.PlanHDag(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	inA := core.NewInstance(mAuto, d.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchHDag(mAuto.Root(), inA, auto)

	mMan := mesh.New(64)
	manual, err := core.ManualPlan(d, 64, 6, []core.HDagBlock{
		{Lo: 0, Hi: 2, Grid: 16},
		{Lo: 3, Hi: 5, Grid: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	inM := core.NewInstance(mMan, d.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchHDag(mMan.Root(), inM, manual)

	if err := core.SameOutcome(inA.ResultQueries(), inM.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	if mMan.Steps() > 3*mAuto.Steps() {
		t.Fatalf("manual plan cost %d vs automatic %d", mMan.Steps(), mAuto.Steps())
	}
}
