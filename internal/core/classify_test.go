package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/mesh"
)

// TestClassifyChains pins the classification of every error shape the
// containment boundary can produce, including the doubly-wrapped ones
// (typed fault inside a PanicError inside a RunError) that the serving
// layer's retry policy depends on.
func TestClassifyChains(t *testing.T) {
	audit := &mesh.AuditError{Op: "Sort", Detail: "out of order"}
	budget := &mesh.BudgetExceededError{Budget: 10, Steps: 11}
	canceled := &mesh.CanceledError{Steps: 3, Cause: context.Canceled}
	panicked := &mesh.PanicError{Val: "boom", Stack: []byte("stack")}

	cases := []struct {
		name string
		err  error
		want FaultClass
	}{
		{"nil", nil, FaultNone},
		{"bare audit", audit, FaultAudit},
		{"run-wrapped audit", &RunError{Label: "r", Err: audit}, FaultAudit},
		{"audit inside parallel panic", &RunError{Label: "r", Err: &mesh.PanicError{Val: audit, Stack: []byte("s")}, Stack: []byte("s")}, FaultAudit},
		{"run-wrapped budget", &RunError{Label: "r", Err: budget}, FaultBudget},
		{"budget inside parallel panic", &RunError{Label: "r", Err: &mesh.PanicError{Val: budget, Stack: []byte("s")}, Stack: []byte("s")}, FaultBudget},
		{"run-wrapped cancel", &RunError{Label: "r", Err: canceled}, FaultCanceled},
		{"bare context error", fmt.Errorf("wrapped: %w", context.DeadlineExceeded), FaultCanceled},
		{"contained submesh panic", &RunError{Label: "r", Err: panicked, Stack: panicked.Stack}, FaultPanic},
		{"contained plain panic", &RunError{Label: "r", Err: errors.New("panic: nope"), Stack: []byte("s")}, FaultPanic},
		{"ordinary error return", &RunError{Label: "r", Err: errors.New("bad input")}, FaultOther},
		{"unwrapped error", errors.New("bad input"), FaultOther},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestClassifyRunBoundary classifies errors produced by the real Run
// boundary rather than hand-built chains.
func TestClassifyRunBoundary(t *testing.T) {
	err := Run("panics", func() error { panic("kaboom") })
	if got := Classify(err); got != FaultPanic {
		t.Fatalf("recovered panic classified %v, want %v", got, FaultPanic)
	}
	err = Run("typed", func() error { panic(&mesh.AuditError{Op: "Scan", Detail: "prefix"}) })
	if got := Classify(err); got != FaultAudit {
		t.Fatalf("recovered audit panic classified %v, want %v", got, FaultAudit)
	}
	err = Run("plain", func() error { return errors.New("no") })
	if got := Classify(err); got != FaultOther {
		t.Fatalf("error return classified %v, want %v", got, FaultOther)
	}
	if got := Classify(Run("ok", func() error { return nil })); got != FaultNone {
		t.Fatalf("nil run classified %v, want %v", got, FaultNone)
	}
}

// TestRetryablePolicy pins which classes the recovery ladder re-executes.
func TestRetryablePolicy(t *testing.T) {
	want := map[FaultClass]bool{
		FaultNone:     false,
		FaultAudit:    true,
		FaultBudget:   false,
		FaultCanceled: false,
		FaultPanic:    true,
		FaultOther:    true,
	}
	for c, w := range want {
		if c.Retryable() != w {
			t.Errorf("%v.Retryable() = %v, want %v", c, c.Retryable(), w)
		}
	}
}
