package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mesh"
)

// ComputeLevels recomputes the level index of every vertex of a
// hierarchical DAG from its structure alone, on the mesh, using the
// peel-and-compress scheme the paper sketches in §3: "the level indices can
// be easily computed in time O(√n) by successively identifying the vertices
// in each level L_i, starting with level L_h, and compressing after each
// step the remaining levels into a subsquare of processors".
//
// Round k removes the current sinks (vertices whose children have all been
// removed) — these are exactly L_{h-k} in a hierarchical DAG, where every
// non-sink vertex has at least one child one level below. After each round
// the survivors are compressed; once they fit a quarter of the working
// square, the working square halves. Level sizes grow geometrically toward
// the bottom, so the total cost telescopes to O(Sort(√n)).
//
// The computed levels are written back into the Nodes register (and
// returned indexed by vertex ID). The instance's queries are untouched.
func ComputeLevels(v mesh.View, in *Instance) []int32 {
	if v.Rows() != v.Cols() {
		panic("core: ComputeLevels requires a square view")
	}
	work := mesh.NewReg[graph.Vertex](in.M)
	mesh.Fill(v, work, emptyVertex)
	mesh.RouteTo(v, in.Nodes, work, func(i int, nd graph.Vertex) (int, bool) {
		return i, nd.ID != graph.Nil
	})
	remaining := mesh.Concentrate(v, work, emptyVertex, func(nd graph.Vertex) bool {
		return nd.ID != graph.Nil
	})

	type peeled struct {
		id    graph.VertexID
		round int32
	}
	var done []peeled
	cur := v
	round := int32(0)
	for remaining > 0 {
		if round > int32(in.G.N()) {
			panic("core: ComputeLevels did not converge; graph is not a DAG with level-respecting arcs")
		}
		// A vertex is ready when none of its children are still present.
		// One RAR per adjacency slot (≤ MaxDegree, a constant).
		ready := make([]bool, remaining)
		for i := range ready {
			ready[i] = true
		}
		for slot := 0; slot < graph.MaxDegree; slot++ {
			mesh.RAR(cur,
				func(i int) (graph.VertexID, bool, bool) {
					nd := mesh.At(cur, work, i)
					return nd.ID, true, nd.ID != graph.Nil
				},
				func(i int) (graph.VertexID, bool) {
					nd := mesh.At(cur, work, i)
					if nd.ID == graph.Nil || slot >= int(nd.Deg) {
						return 0, false
					}
					return nd.Adj[slot], true
				},
				func(i int, _ bool, found bool) {
					if found && i < len(ready) {
						ready[i] = false
					}
				})
		}
		// Peel the ready vertices, keep the rest concentrated.
		kept := 0
		for i := 0; i < remaining; i++ {
			nd := mesh.At(cur, work, i)
			if ready[i] {
				done = append(done, peeled{id: nd.ID, round: round})
			} else {
				mesh.Set(cur, work, kept, nd)
				kept++
			}
		}
		for i := kept; i < remaining; i++ {
			mesh.Set(cur, work, i, emptyVertex)
		}
		cur.Charge(cur.SortCost()) // the concentration above
		if kept == remaining {
			panic("core: ComputeLevels stalled (cycle in the graph?)")
		}
		remaining = kept
		round++
		// Compress into a quarter square once the survivors fit. Gather
		// before rewriting: the regions overlap.
		for cur.Rows() > 1 && remaining <= (cur.Rows()/2)*(cur.Cols()/2) {
			buf := make([]graph.Vertex, remaining)
			for i := range buf {
				buf[i] = mesh.At(cur, work, i)
			}
			mesh.Fill(cur, work, emptyVertex)
			next := cur.Sub(0, 0, cur.Rows()/2, cur.Cols()/2)
			for i, nd := range buf {
				mesh.Set(next, work, i, nd)
			}
			cur.Charge(cur.SortCost()) // relayout into the subsquare
			cur = next
		}
	}

	// Convert rounds to levels (level = lastRound − round) and deliver them
	// home with one combining random-access write keyed by vertex ID.
	maxRound := round - 1
	levels := make([]int32, in.G.N())
	for _, p := range done {
		levels[p.id] = maxRound - p.round
	}
	mesh.RAW(v,
		func(i int) (graph.VertexID, bool) {
			nd := mesh.At(v, in.Nodes, i)
			return nd.ID, nd.ID != graph.Nil
		},
		func(i int) (graph.VertexID, int32, bool) {
			if i < len(done) {
				return done[i].id, maxRound - done[i].round, true
			}
			return 0, 0, false
		},
		func(a, b int32) int32 { return a }, // keys are unique: no combining
		func(i int, lvl int32, any bool) {
			if !any {
				panic(fmt.Sprintf("core: vertex at %d received no level", i))
			}
			nd := mesh.At(v, in.Nodes, i)
			nd.Level = lvl
			mesh.Set(v, in.Nodes, i, nd)
		})
	return levels
}
