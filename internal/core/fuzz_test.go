package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

// randomAlphaGraph builds a random directed graph that is α-partitionable
// by construction: kH head parts and kT tail parts of ≤ maxPart vertices
// each, random intra-part arcs, and cross arcs only from H-parts to
// T-parts.
func randomAlphaGraph(kH, kT, maxPart int, rng *rand.Rand) (*graph.Graph, int) {
	type part struct {
		start, size int
		head        bool
	}
	var parts []part
	n := 0
	for i := 0; i < kH+kT; i++ {
		size := 1 + rng.Intn(maxPart)
		parts = append(parts, part{start: n, size: size, head: i < kH})
		n += size
	}
	g := graph.New(n, true)
	for pi, p := range parts {
		for v := p.start; v < p.start+p.size; v++ {
			g.Verts[v].Part = int32(pi)
			// Intra-part arcs (allow cycles: long search paths live here).
			for e := 0; e < 1+rng.Intn(3); e++ {
				g.AddArc(graph.VertexID(v), graph.VertexID(p.start+rng.Intn(p.size)))
			}
			// Cross arcs H→T only.
			if p.head && kT > 0 && rng.Intn(3) == 0 {
				t := parts[kH+rng.Intn(kT)]
				g.AddArc(graph.VertexID(v), graph.VertexID(t.start+rng.Intn(t.size)))
			}
		}
	}
	g.RefreshAdjParts()
	return g, maxPart
}

// boundedWalk walks pseudorandomly for State[StateKey] steps.
func boundedWalk(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[1] = q.State[1]*1000003 + int64(v.ID) + 1
	if int64(q.Steps) >= q.State[0] || v.Deg == 0 {
		return 0, true
	}
	h := uint64(q.State[1]) * 0x9E3779B97F4A7C15
	return int(h % uint64(v.Deg)), false
}

func TestQuickMultisearchAlphaOnRandomGraphs(t *testing.T) {
	side := 16
	f := func(seed int64, rawKH, rawKT, rawR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kH := 1 + int(rawKH)%6
		kT := 1 + int(rawKT)%6
		g, maxPart := randomAlphaGraph(kH, kT, 16, rng)
		if g.N() > side*side {
			return true
		}
		if err := graph.ValidateAlphaPartitionable(g); err != nil {
			t.Fatalf("generator broke the H/T property: %v", err)
		}
		r := 1 + int(rawR)%40
		qs := make([]core.Query, side*side/2)
		for i := range qs {
			qs[i].Cur = graph.VertexID(rng.Intn(g.N()))
			qs[i].State[0] = int64(r)
		}
		want := core.Oracle(g, qs, boundedWalk, 0)
		m := mesh.New(side)
		in := core.NewInstance(m, g, qs, boundedWalk)
		core.MultisearchAlpha(m.Root(), in, maxPart, 0)
		return core.SameOutcome(want, in.ResultQueries()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomAlphaBetaTree: random cut depths on an undirected tree.
func TestQuickMultisearchAlphaBetaRandomCuts(t *testing.T) {
	tr := graph.NewBalancedTree(2, 7, false)
	f := func(seed int64, rawC1, rawC2, rawBounce uint8) bool {
		c1 := 1 + int(rawC1)%(tr.Height-1)
		c2 := 1 + int(rawC2)%(tr.Height-1)
		if c1 == c2 {
			c2 = c1%(tr.Height-1) + 1
		}
		topVsRest := func(p int32) int {
			if p == 0 {
				return 0
			}
			return 1
		}
		s1 := graph.InstallTreeSplitter(tr, c1, graph.Primary)
		if s1.K*s1.MaxPart > 2*tr.N() {
			s1 = graph.NormalizeParts(tr.Graph, s1, s1.MaxPart, topVsRest)
		}
		s2 := graph.InstallTreeSplitter(tr, c2, graph.Secondary)
		if s2.K*s2.MaxPart > 2*tr.N() {
			s2 = graph.NormalizeParts(tr.Graph, s2, s2.MaxPart, topVsRest)
		}
		bounces := 1 + int(rawBounce)%4
		rng := rand.New(rand.NewSource(seed))
		qs := workload.BounceQueries(100, bounces, int64(tr.SubtreeSize(0)), tr.Root(), rng)
		want := core.Oracle(tr.Graph, qs, workload.BounceSuccessor(2), 0)
		m := mesh.New(16)
		in := core.NewInstance(m, tr.Graph, qs, workload.BounceSuccessor(2))
		core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 0)
		return core.SameOutcome(want, in.ResultQueries()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz the hierarchical-DAG path with random DAG shapes, μ, heights and
// congestion levels.
func TestQuickMultisearchHDagRandomShapes(t *testing.T) {
	f := func(seed int64, rawMu, rawH, rawDup uint8) bool {
		mu := 2 + int(rawMu)%2
		h := 4 + int(rawH)%6
		if mu == 3 {
			h = 4 + int(rawH)%3 // keep 3^h meshes small
		}
		rng := rand.New(rand.NewSource(seed))
		d := graph.RandomHDag(mu, h, rng)
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		plan, err := core.PlanHDag(d, side)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		dup := 1 << (int(rawDup) % 8)
		qs := workload.KeySearchQueries(side*side/2, 1<<20, d.Root(), dup, rng)
		want := core.Oracle(d.Graph, qs, workload.RandomWalkDownSuccessor, 0)
		m := mesh.New(side)
		in := core.NewInstance(m, d.Graph, qs, workload.RandomWalkDownSuccessor)
		core.MultisearchHDag(m.Root(), in, plan)
		return core.SameOutcome(want, in.ResultQueries()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedMultisearchSecondarySlot(t *testing.T) {
	// Drive the Secondary splitting path directly.
	tr := graph.NewBalancedTree(2, 6, false)
	s2 := graph.InstallTreeSplitter(tr, 3, graph.Secondary)
	rng := rand.New(rand.NewSource(20))
	qs := workload.BounceQueries(60, 1, int64(tr.SubtreeSize(0)), tr.Root(), rng)
	m := mesh.New(16)
	in := core.NewInstance(m, tr.Graph, qs, workload.BounceSuccessor(2))
	in.Prime(m.Root())
	in.GlobalStep(m.Root())
	st := core.ConstrainedMultisearch(m.Root(), in, graph.Secondary, s2.MaxPart, core.Log2N(m.Root()))
	if st.Marked != 60 || st.Advanced == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestConstrainedMultisearchQueriesFinishInside(t *testing.T) {
	// Walks short enough to terminate inside their δ-submesh.
	g := workload.CycleGraph(8, 8)
	m := mesh.New(8)
	rng := rand.New(rand.NewSource(21))
	qs := workload.WalkQueries(40, 3, g.N(), rng)
	in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
	in.Prime(m.Root())
	in.GlobalStep(m.Root())
	core.ConstrainedMultisearch(m.Root(), in, graph.Primary, 8, core.Log2N(m.Root()))
	for i, q := range in.ResultQueries() {
		if !q.Done || q.Steps != 3 {
			t.Fatalf("query %d: %+v", i, q)
		}
	}
}

func TestConstrainedMultisearchPanicsOnOversizedPart(t *testing.T) {
	g := workload.CycleGraph(1, 64) // one part of 64 vertices
	m := mesh.New(8)                // 64 processors: slot side would exceed mesh
	rng := rand.New(rand.NewSource(22))
	qs := workload.WalkQueries(10, 5, g.N(), rng)
	in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
	in.Prime(m.Root())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: part larger than any δ-submesh")
		}
	}()
	core.ConstrainedMultisearch(m.Root(), in, graph.Primary, 65, core.Log2N(m.Root()))
}

func TestNewInstancePanicsOnOversizedInputs(t *testing.T) {
	m := mesh.New(4)
	tr := graph.NewBalancedTree(2, 6, true) // 127 > 16
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("graph overflow not detected")
			}
		}()
		core.NewInstance(m, tr.Graph, nil, workload.KeySearchSuccessor)
	}()
	small := graph.NewBalancedTree(2, 2, true)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("query overflow not detected")
			}
		}()
		core.NewInstance(m, small.Graph, make([]core.Query, 17), workload.KeySearchSuccessor)
	}()
}

func TestTheoreticalCostModelEndToEnd(t *testing.T) {
	tr, s := buildAlphaTree(16, 7)
	rng := rand.New(rand.NewSource(23))
	qs := workload.KeySearchQueries(100, 128, tr.Root(), 1, rng)
	want := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 0)

	mc := mesh.New(16)
	ic := core.NewInstance(mc, tr.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchAlpha(mc.Root(), ic, s.MaxPart, 0)

	mt := mesh.New(16, mesh.WithCostModel(mesh.CostTheoretical))
	it := core.NewInstance(mt, tr.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchAlpha(mt.Root(), it, s.MaxPart, 0)

	if err := core.SameOutcome(want, it.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	if mt.Steps() >= mc.Steps() {
		t.Fatalf("theoretical model (%d) should be cheaper than counted (%d)", mt.Steps(), mc.Steps())
	}
}
