// Package core implements the paper's contribution: the multisearch
// algorithms for the mesh-connected computer.
//
//   - Constrained-Multisearch(Ψ, δ) — §4.4, Lemma 3
//   - Algorithm 1: multisearch for hierarchical DAGs — §3, Theorem 2
//   - Algorithm 2: log-phases for α-partitionable directed graphs — §4.5,
//     Theorem 5
//   - Algorithm 3: log-phases for α-β-partitionable undirected graphs —
//     §4.6, Theorem 7
//
// plus the two comparators: the [DR90]-style synchronous multistep baseline
// and the sequential oracle used as the correctness reference.
//
// Search paths are built on-line, exactly as the paper requires: a query
// only learns its next vertex by evaluating the successor function at the
// vertex it currently visits. Algorithms never inspect a query's future.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mesh"
)

// StateWords is the number of per-query application state words. State is
// updated on every visit (accumulators, result slots); it is the only
// query-side memory, keeping query records O(1) words.
const StateWords = 6

// Query is the record of one search process. Cur is the next vertex the
// query must visit (graph.Nil once the search finished). CurPart, CurPart2
// and CurLevel mirror the splitter membership and level of Cur so that
// marking decisions are O(1)-local; they are maintained on every visit from
// the visited vertex's adjacency annotations.
type Query struct {
	ID       int32
	Cur      graph.VertexID
	CurPart  int32
	CurPart2 int32
	CurLevel int32
	Done     bool
	Mark     bool
	Steps    int32
	State    [StateWords]int64
}

// NoQuery marks an empty query cell.
const NoQuery int32 = -1

// Successor is the on-line search function f of §2: visiting vertex v with
// query q, it may update q.State and returns the adjacency slot of the next
// vertex, or done=true if the search path ends at v. Returning an edge
// outside [0, v.Deg) is a programming error and panics during the visit.
type Successor func(v graph.Vertex, q *Query) (edge int, done bool)

// Visit performs one search step: query q visits vertex v. It increments
// Steps, applies the successor, and maintains Cur/CurPart/CurPart2/CurLevel.
func Visit(f Successor, v graph.Vertex, q *Query) {
	q.Steps++
	edge, done := f(v, q)
	if done {
		q.Done = true
		q.Cur = graph.Nil
		q.CurPart = graph.NoPart
		q.CurPart2 = graph.NoPart
		q.CurLevel = -1
		return
	}
	if edge < 0 || edge >= int(v.Deg) {
		panic(fmt.Sprintf("core: successor returned edge %d at vertex %d (deg %d)", edge, v.ID, v.Deg))
	}
	q.Cur = v.Adj[edge]
	q.CurPart = v.AdjPart[edge]
	q.CurPart2 = v.AdjPart2[edge]
	q.CurLevel = v.Level + 1
}

// partFor returns the query's current part in the given splitting slot.
func (q *Query) partFor(slot graph.Slot) int32 {
	if slot == graph.Primary {
		return q.CurPart
	}
	return q.CurPart2
}

// Instance is a multisearch problem loaded onto a mesh: the graph G, the
// query set Q, and the successor function. The register set is fixed and
// O(1) per processor:
//
//	Nodes    — one vertex of G per processor (initial configuration)
//	Queries  — one query per processor, kept at processor index == ID
//	copies   — staged subgraph copies in δ-submeshes (per virtual layer)
//	staged   — staged queries in δ-submeshes (per virtual layer)
type Instance struct {
	M       *mesh.Mesh
	G       *graph.Graph
	F       Successor
	Nodes   *mesh.Reg[graph.Vertex]
	Queries *mesh.Reg[Query]
	NumQ    int

	copies []*mesh.Reg[graph.Vertex]
	staged []*mesh.Reg[Query]
}

// maxLayers bounds the number of virtual δ-submesh layers; each layer is
// one extra register pair, so this constant is the O(1) of "O(1) memory per
// processor". Lemma 3's accounting needs at most 2 when the splitting is
// normalized; 8 leaves headroom for adversarial tests.
const maxLayers = 8

var emptyVertex = func() graph.Vertex {
	var v graph.Vertex
	v.ID = graph.Nil
	v.Level = -1
	v.Part = graph.NoPart
	v.Part2 = graph.NoPart
	return v
}()

var emptyQuery = Query{ID: NoQuery, Cur: graph.Nil, CurPart: graph.NoPart, CurPart2: graph.NoPart, CurLevel: -1}

// NewInstance loads g and the queries onto mesh m in the paper's initial
// configuration: vertex i at processor i, query j at processor j. The graph
// and query set must each fit the mesh.
func NewInstance(m *mesh.Mesh, g *graph.Graph, queries []Query, f Successor) *Instance {
	if g.N() > m.N() {
		panic(fmt.Sprintf("core: graph with %d vertices exceeds mesh size %d", g.N(), m.N()))
	}
	if len(queries) > m.N() {
		panic(fmt.Sprintf("core: %d queries exceed mesh size %d", len(queries), m.N()))
	}
	in := &Instance{
		M: m, G: g, F: f,
		Nodes:   mesh.NewReg[graph.Vertex](m),
		Queries: mesh.NewReg[Query](m),
		NumQ:    len(queries),
	}
	root := m.Root()
	mesh.Fill(root, in.Nodes, emptyVertex)
	mesh.Load(root, in.Nodes, g.Verts)
	in.ResetQueries(root, queries)
	return in
}

// ResetQueries replaces the instance's query set with a fresh batch, leaving
// the loaded graph untouched: every query cell is cleared, the new queries
// are normalized (sequential IDs, zeroed progress, unknown splitter
// membership) and loaded at processor index == ID. This is what lets a
// long-lived serving mesh answer round after round of queries against one
// built structure without reloading it. Costs one Fill step; the loads are
// chargeless host initialization, as in NewInstance.
func (in *Instance) ResetQueries(v mesh.View, queries []Query) {
	if len(queries) > in.M.N() {
		panic(fmt.Sprintf("core: %d queries exceed mesh size %d", len(queries), in.M.N()))
	}
	mesh.Fill(v, in.Queries, emptyQuery)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		q.ID = int32(i)
		q.Done = false
		q.Mark = false
		q.Steps = 0
		q.CurPart = graph.NoPart
		q.CurPart2 = graph.NoPart
		q.CurLevel = -1
		qs[i] = q
	}
	mesh.Load(v, in.Queries, qs)
	in.NumQ = len(queries)
}

// layer returns (allocating on first use) the i-th virtual δ-submesh
// register pair.
func (in *Instance) layer(i int) (*mesh.Reg[graph.Vertex], *mesh.Reg[Query]) {
	if i >= maxLayers {
		panic("core: virtual δ-submesh layers exceed the O(1) register budget")
	}
	for len(in.copies) <= i {
		in.copies = append(in.copies, mesh.NewReg[graph.Vertex](in.M))
		in.staged = append(in.staged, mesh.NewReg[Query](in.M))
	}
	return in.copies[i], in.staged[i]
}

// Prime performs the initial full-mesh random-access read that tells every
// query the splitter membership and level of its start vertex. One RAR,
// O(Sort(n)) time. Must run once before the first multistep.
func (in *Instance) Prime(v mesh.View) {
	mesh.RAR(v,
		func(i int) (graph.VertexID, graph.Vertex, bool) {
			nd := mesh.At(v, in.Nodes, i)
			return nd.ID, nd, nd.ID != graph.Nil
		},
		func(i int) (graph.VertexID, bool) {
			q := mesh.At(v, in.Queries, i)
			return q.Cur, q.ID != NoQuery && !q.Done
		},
		func(i int, nd graph.Vertex, found bool) {
			if !found {
				panic(fmt.Sprintf("core: query at %d starts at unknown vertex", i))
			}
			q := mesh.At(v, in.Queries, i)
			q.CurPart = nd.Part
			q.CurPart2 = nd.Part2
			q.CurLevel = nd.Level
			mesh.Set(v, in.Queries, i, q)
		})
}

// GlobalStep advances every unfinished query one step in its search path
// via one full-mesh random-access read (the paper's "every q ∈ Q visits the
// next node in its search path"). Returns the number of queries advanced.
func (in *Instance) GlobalStep(v mesh.View) int {
	advanced := 0
	mesh.RAR(v,
		func(i int) (graph.VertexID, graph.Vertex, bool) {
			nd := mesh.At(v, in.Nodes, i)
			return nd.ID, nd, nd.ID != graph.Nil
		},
		func(i int) (graph.VertexID, bool) {
			q := mesh.At(v, in.Queries, i)
			return q.Cur, q.ID != NoQuery && !q.Done
		},
		func(i int, nd graph.Vertex, found bool) {
			if !found {
				panic(fmt.Sprintf("core: query at %d visits unknown vertex", i))
			}
			Visit(in.F, nd, mesh.Ref(v, in.Queries, i))
			advanced++
		})
	return advanced
}

// Unfinished counts the queries that have not completed their search paths.
func (in *Instance) Unfinished(v mesh.View) int {
	return mesh.Count(v, in.Queries, func(q Query) bool {
		return q.ID != NoQuery && !q.Done
	})
}

// ResultQueries snapshots the final query records in ID order (harness and
// test helper; no charge).
func (in *Instance) ResultQueries() []Query {
	all := mesh.Snapshot(in.M.Root(), in.Queries)
	out := make([]Query, in.NumQ)
	for _, q := range all {
		if q.ID != NoQuery {
			out[q.ID] = q
		}
	}
	return out
}
