package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// The B_i decomposition of §3 (Figures 4 and 5). Levels are counted from
// the root (level 0) to level h; B_i is the subgraph induced by levels
// [h − 2·log^(i)h, h − 1 − 2·log^(i+1)h] with log^(0)x = x/2 and logs to
// the base μ, and B* is the O(1)-level bottom block.
//
// Note on the paper text: it defines B* as starting at level
// h − 2·log^(log*h −1) h, which would overlap B_{log*h−1} entirely; the
// consistent reading (blocks partition the levels, B* has O(1) levels
// because log^(log*h) h < 2^c) is that B* starts where B_{log*h−1} ends,
// i.e. at h − 2·log^(log*h) h. We implement that reading.
//
// The plan also fixes the submesh grids: a B_i-partitioning tiles the mesh
// into Grid_i × Grid_i submeshes (Grid_i ≈ log^(i)h, rounded to a power of
// two and shrunk until all capacity constraints hold numerically — the
// paper's constant factors made explicit):
//
//	(side/Grid_i)² ≥ |B_i|            each B_i-submesh stores a copy of B_i
//	(side/Grid_i)² ≥ |B_0|+…+|B_{i-1}| the union cascade of step 2(b) fits
//	labels(i)      ≥ ⌈|B_i|/2⌉         label-i processors store B_i, ≤2 each
//	(side/(Grid_i·P1Grid_i))² ≥ |B_i^1| Lemma 1 phase-1 copies fit
type HDagBlock struct {
	Lo, Hi  int // level range of B_i, inclusive
	Count   int // vertices in B_i
	Grid    int // B_i-partitioning grid dimension g_i (power of two)
	P1Hi    int // top level of B_i^1; P1Hi < Lo means phase 1 is empty
	P1Count int // vertices in B_i^1
	P1Grid  int // Δh_i×Δh_i sub-partition dimension (power of two)
	// LabelPerSub is the number of label-i processors in one
	// B_{i+1}-submesh (uniform across submeshes by power-of-two alignment).
	LabelPerSub int
}

// HDagPlan is the complete Algorithm 1 execution plan for one hierarchical
// DAG on one mesh.
type HDagPlan struct {
	Side   int
	H      int
	Mu     float64
	C      int // threshold constant: μ^y ≥ y² for all y ≥ C
	S      int // number of B-blocks = log*_μ h
	Blocks []HDagBlock
	StarLo int // B* covers levels [StarLo, H]

	levelStart []int
	levelSizes []int
}

// GridOf returns g_i for i in [0, S]; g_S = 1 (the whole mesh is the single
// B_S-submesh).
func (p *HDagPlan) GridOf(i int) int {
	if i >= p.S {
		return 1
	}
	return p.Blocks[i].Grid
}

// countLevels returns the number of vertices on levels [lo, hi].
func (p *HDagPlan) countLevels(lo, hi int) int {
	c := 0
	for l := lo; l <= hi && l < len(p.levelSizes); l++ {
		if l >= 0 {
			c += p.levelSizes[l]
		}
	}
	return c
}

// thresholdC returns the smallest c ≥ 1 with μ^y ≥ y² for all y ≥ c.
func thresholdC(mu float64) int {
	holds := func(y int) bool { return math.Pow(mu, float64(y)) >= float64(y*y) }
	for c := 1; c <= 64; c++ {
		ok := true
		for y := c; y <= c+64; y++ {
			if !holds(y) {
				ok = false
				break
			}
		}
		if ok {
			return c
		}
	}
	return 64
}

func floorPow2(x int) int {
	p := 1
	for p*2 <= x {
		p *= 2
	}
	return p
}

// PlanHDag computes the B_i decomposition and submesh grids for running
// Algorithm 1 on d over a side×side mesh.
func PlanHDag(d *graph.HDag, side int) (*HDagPlan, error) {
	if d.N() > side*side {
		return nil, fmt.Errorf("core: DAG with %d vertices exceeds mesh size %d", d.N(), side*side)
	}
	h := d.Height()
	p := &HDagPlan{
		Side: side, H: h, Mu: d.Mu, C: thresholdC(d.Mu),
		levelStart: d.LevelStart, levelSizes: d.LevelSizes,
	}

	// The iterated-log sequence: log^(0)h = h/2, log^(1)h = log_μ h,
	// log^(i+1)h = log_μ log^(i)h, truncated at the first value < c.
	// S = log*_μ h = max{i : log^(i)h ≥ c} (0 when even h/2 < c).
	logMu := func(x float64) float64 { return math.Log(x) / math.Log(d.Mu) }
	ls := []float64{float64(h) / 2}
	if ls[0] >= float64(p.C) {
		ls = append(ls, logMu(float64(h)))
		for ls[len(ls)-1] >= float64(p.C) {
			ls = append(ls, logMu(ls[len(ls)-1]))
		}
	}
	S := len(ls) - 2
	if S < 0 {
		S = 0
	}
	p.S = S
	f := func(i int) int { // f(i) = ⌈2·log^(i) h⌉, the level-offset function
		if i >= len(ls) {
			return 0
		}
		return int(math.Ceil(2 * ls[i]))
	}
	if S == 0 {
		p.StarLo = 0
		return p, nil
	}

	p.StarLo = h - f(S)
	if p.StarLo < 0 {
		p.StarLo = 0
	}
	lo := 0 // = h - f(0) since f(0) = 2·⌈h/2⌉ ≥ h
	for i := 0; i < S; i++ {
		hi := h - 1 - f(i+1)
		if i == S-1 && hi >= p.StarLo {
			hi = p.StarLo - 1
		}
		if hi < lo {
			// Degenerate at small h: fold this and later blocks into B*.
			p.S = i
			if lo < p.StarLo {
				p.StarLo = lo
			}
			break
		}
		blk := HDagBlock{Lo: lo, Hi: hi, Count: p.countLevels(lo, hi)}
		// Grid ≈ log^(i) h, power of two, within the mesh.
		g := floorPow2(int(math.Max(1, ls[i])))
		if g > side {
			g = side
		}
		if i > 0 && g > p.Blocks[i-1].Grid {
			g = p.Blocks[i-1].Grid
		}
		blk.Grid = g
		p.Blocks = append(p.Blocks, blk)
		lo = hi + 1
	}
	if len(p.Blocks) == 0 {
		p.S = 0
		p.StarLo = 0
		return p, nil
	}
	p.S = len(p.Blocks)

	// Capacity fixpoint: shrink grids until every constraint holds.
	for changed := true; changed; {
		changed = false
		union := 0
		for i := range p.Blocks {
			blk := &p.Blocks[i]
			sub := side / blk.Grid
			need := blk.Count
			if union > need {
				need = union
			}
			for blk.Grid > 1 && sub*sub < need {
				blk.Grid /= 2
				sub = side / blk.Grid
				changed = true
			}
			if i > 0 && blk.Grid > p.Blocks[i-1].Grid {
				blk.Grid = p.Blocks[i-1].Grid
				changed = true
			}
			union += blk.Count
		}
		// Monotonicity: g_0 ≥ g_1 ≥ … (finer grids for smaller blocks).
		for i := 1; i < len(p.Blocks); i++ {
			if p.Blocks[i].Grid > p.Blocks[i-1].Grid {
				p.Blocks[i].Grid = p.Blocks[i-1].Grid
				changed = true
			}
		}
		// Label capacity: label-i processors in one B_{i+1}-submesh must
		// store B_i at ≤ 2 records each.
		for i := range p.Blocks {
			blk := &p.Blocks[i]
			cnt := p.labelCount(i)
			if cnt >= (blk.Count+1)/2 {
				blk.LabelPerSub = cnt
				continue
			}
			if blk.Grid > 1 {
				blk.Grid /= 2
				changed = true
			} else {
				return nil, fmt.Errorf("core: block %d (|B_i|=%d) cannot be stored: label capacity %d", i, blk.Count, cnt)
			}
		}
		if !changed {
			for i := range p.Blocks {
				p.Blocks[i].LabelPerSub = p.labelCount(i)
			}
		}
	}

	// Lemma 1 phase split: B_i^1 = [Lo, Hi − ⌈2·log₂ Δh⌉], phase-1 grid
	// Δh×Δh (rounded down to a power of two, shrunk to fit).
	for i := range p.Blocks {
		blk := &p.Blocks[i]
		dh := blk.Hi - blk.Lo + 1
		cut := int(math.Ceil(2 * math.Log2(math.Max(2, float64(dh)))))
		blk.P1Hi = blk.Hi - cut
		if blk.P1Hi < blk.Lo {
			blk.P1Hi = blk.Lo - 1 // empty phase 1
			blk.P1Grid = 1
			continue
		}
		blk.P1Count = p.countLevels(blk.Lo, blk.P1Hi)
		subSide := side / blk.Grid
		q := floorPow2(dh)
		if q > subSide {
			q = subSide
		}
		for q > 1 && (subSide/q)*(subSide/q) < blk.P1Count {
			q /= 2
		}
		blk.P1Grid = q
	}
	return p, nil
}

// ManualPlan builds an Algorithm 1 plan with hand-chosen blocks, validating
// every capacity constraint. PlanHDag's automatic decomposition never
// produces S ≥ 2 at physically realizable sizes (log*_μ h ≥ 2 needs
// h ≥ μ^(μ^c), i.e. > 2^65000 vertices for μ = 2), so deeper recursions —
// used by the recursion-depth ablation (E17) and the multi-block tests —
// are specified manually. Blocks must partition levels [0, starLo-1]
// consecutively; grids must be powers of two, nonincreasing, and divide
// side.
func ManualPlan(d *graph.HDag, side, starLo int, blocks []HDagBlock) (*HDagPlan, error) {
	if d.N() > side*side {
		return nil, fmt.Errorf("core: DAG with %d vertices exceeds mesh size %d", d.N(), side*side)
	}
	p := &HDagPlan{
		Side: side, H: d.Height(), Mu: d.Mu, C: thresholdC(d.Mu),
		S: len(blocks), Blocks: append([]HDagBlock{}, blocks...), StarLo: starLo,
		levelStart: d.LevelStart, levelSizes: d.LevelSizes,
	}
	lo := 0
	union := 0
	prevGrid := side
	for i := range p.Blocks {
		blk := &p.Blocks[i]
		if blk.Lo != lo {
			return nil, fmt.Errorf("core: block %d starts at level %d, want %d", i, blk.Lo, lo)
		}
		if blk.Hi < blk.Lo {
			return nil, fmt.Errorf("core: block %d empty", i)
		}
		lo = blk.Hi + 1
		blk.Count = p.countLevels(blk.Lo, blk.Hi)
		g := blk.Grid
		if g < 1 || g&(g-1) != 0 || side%g != 0 || g > prevGrid {
			return nil, fmt.Errorf("core: block %d grid %d invalid (prev %d, side %d)", i, g, prevGrid, side)
		}
		prevGrid = g
		sub := side / g
		if sub*sub < blk.Count || sub*sub < union {
			return nil, fmt.Errorf("core: block %d does not fit its submesh", i)
		}
		union += blk.Count
		// Lemma 1 split defaults: recompute from the level range.
		dh := blk.Hi - blk.Lo + 1
		cut := int(math.Ceil(2 * math.Log2(math.Max(2, float64(dh)))))
		blk.P1Hi = blk.Hi - cut
		blk.P1Grid = 1
		blk.P1Count = 0
		if blk.P1Hi >= blk.Lo {
			blk.P1Count = p.countLevels(blk.Lo, blk.P1Hi)
			q := floorPow2(dh)
			if q > sub {
				q = sub
			}
			for q > 1 && (sub/q)*(sub/q) < blk.P1Count {
				q /= 2
			}
			blk.P1Grid = q
		}
	}
	if lo != starLo {
		return nil, fmt.Errorf("core: blocks end at level %d, B* starts at %d", lo-1, starLo)
	}
	if starLo > p.H {
		return nil, fmt.Errorf("core: B* empty")
	}
	for i := range p.Blocks {
		blk := &p.Blocks[i]
		blk.LabelPerSub = p.labelCount(i)
		if 2*blk.LabelPerSub < blk.Count {
			return nil, fmt.Errorf("core: block %d label capacity %d < ⌈%d/2⌉", i, blk.LabelPerSub, blk.Count)
		}
	}
	return p, nil
}

// labelCount returns the number of label-i processors in one
// B_{i+1}-submesh under the current grids: the top-left B_i-submesh minus
// the top-left B_j-submeshes (j < i) of the finer partitionings that tile
// it (the overwrites of step 1).
func (p *HDagPlan) labelCount(i int) int {
	side := p.Side
	tSide := side / p.Blocks[i].Grid
	cnt := tSide * tSide
	for j := 0; j < i; j++ {
		tiles := p.Blocks[j+1].Grid / p.Blocks[i].Grid // B_{j+1}-submeshes per T side
		bj := side / p.Blocks[j].Grid
		cnt -= tiles * tiles * bj * bj
	}
	return cnt
}

// LabelAt returns the step-1 label of the processor at (row, col): the
// smallest i such that the processor lies in the top-left B_i-submesh of
// its B_{i+1}-submesh, or -1 if it lies in none.
func (p *HDagPlan) LabelAt(row, col int) int {
	for i := 0; i < p.S; i++ {
		si := p.Side / p.Blocks[i].Grid // B_i-submesh side
		so := p.Side / p.GridOf(i+1)    // B_{i+1}-submesh side
		if row%so < si && col%so < si {
			return i
		}
	}
	return -1
}
