package core

// White-box allocation regression for the steady-state multistep hot path.
// It lives in package core (not core_test) to drive advanceRange directly:
// the loop every Algorithm 1/2/3 run spends its time in must run out of the
// mesh's scratch arena with (near-)zero allocations per multistep. The seed
// allocated the full RAR item bank plus sort.SliceStable reflection
// artifacts on every call.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mesh"
)

// cycleInstance builds an n-processor instance whose queries chase each
// other around a 2-vertex cycle forever: every advanceRange call advances
// every query, so each run exercises the full RAR record+request bank.
func cycleInstance(side int) *Instance {
	g := &graph.Graph{Directed: true}
	for i := 0; i < 2; i++ {
		var v graph.Vertex
		v.ID = graph.VertexID(i)
		v.Level = 0
		v.Part = graph.NoPart
		v.Part2 = graph.NoPart
		v.Deg = 1
		v.Adj[0] = graph.VertexID(1 - i)
		v.AdjPart[0] = graph.NoPart
		v.AdjPart2[0] = graph.NoPart
		v.ExtIdx = -1
		g.Verts = append(g.Verts, v)
	}
	m := mesh.New(side)
	qs := make([]Query, m.N())
	for i := range qs {
		qs[i].Cur = graph.VertexID(i % 2)
	}
	// The successor never finishes and Visit assigns CurLevel = Level+1 = 1,
	// so advanceRange(lo=0, hi=2) keeps every query eligible forever.
	never := func(v graph.Vertex, q *Query) (int, bool) { return 0, false }
	in := NewInstance(m, g, qs, never)
	in.Prime(m.Root())
	return in
}

func TestAdvanceRangeAllocsSteadyState(t *testing.T) {
	in := cycleInstance(32)
	v := in.M.Root()
	// Warm the arena: the first multistep checks the buffers out of nothing.
	advanceRange(v, in, in.Nodes, 0, 2)
	allocs := testing.AllocsPerRun(50, func() {
		if n := advanceRange(v, in, in.Nodes, 0, 2); n != int64(in.M.N()) {
			t.Fatalf("advanced %d queries, want %d", n, in.M.N())
		}
	})
	if allocs > 1 {
		t.Errorf("steady-state advanceRange allocates %.0f per multistep, want ≤ 1", allocs)
	}
}
