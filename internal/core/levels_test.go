package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
)

func TestComputeLevelsCompleteTree(t *testing.T) {
	for _, h := range []int{3, 7, 11} {
		d := graph.CompleteTreeHDag(2, h)
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		m := mesh.New(side)
		in := core.NewInstance(m, d.Graph, nil, nil)
		levels := core.ComputeLevels(m.Root(), in)
		for id := range d.Verts {
			if levels[id] != d.Verts[id].Level {
				t.Fatalf("h=%d vertex %d: computed %d stored %d", h, id, levels[id], d.Verts[id].Level)
			}
		}
		// The Nodes register was updated in place as well.
		for i, nd := range mesh.Snapshot(m.Root(), in.Nodes) {
			if nd.ID != graph.Nil && nd.Level != d.Verts[nd.ID].Level {
				t.Fatalf("h=%d cell %d: register level %d", h, i, nd.Level)
			}
		}
	}
}

func TestComputeLevelsRandomDag(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 10; trial++ {
		d := graph.RandomHDag(2, 4+rng.Intn(6), rng)
		// The structural level (h − longest distance to a sink) equals the
		// stored level only when every non-last-level vertex has a child;
		// skip the rare instances where the degree-budget fallback left a
		// childless interior vertex.
		ok := true
		for i := range d.Verts {
			if d.Verts[i].Deg == 0 && int(d.Verts[i].Level) != d.Height() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		m := mesh.New(side)
		in := core.NewInstance(m, d.Graph, nil, nil)
		levels := core.ComputeLevels(m.Root(), in)
		for id := range d.Verts {
			if levels[id] != d.Verts[id].Level {
				t.Fatalf("trial %d vertex %d: computed %d stored %d", trial, id, levels[id], d.Verts[id].Level)
			}
		}
	}
}

func TestComputeLevelsCostTelescopes(t *testing.T) {
	// §3's remark promises O(√n): with shearsort, O(√n·log n). Check the
	// telescoping: cost within a small constant times one full-mesh sort
	// per adjacency slot, despite h rounds.
	d := graph.CompleteTreeHDag(2, 13)
	side := 128
	m := mesh.New(side)
	in := core.NewInstance(m, d.Graph, nil, nil)
	m.ResetSteps()
	core.ComputeLevels(m.Root(), in)
	sort := m.Root().SortCost()
	// Each round costs ≈ MaxDegree RARs ≈ 3·MaxDegree sorts at the current
	// square size; two rounds run per size before the square halves, so the
	// telescoped total is ≈ 2·3·MaxDegree·Σ4^-i ≈ 8·MaxDegree full-mesh
	// sorts. Without compression the h=13 rounds would cost ≈ 39·MaxDegree
	// full-mesh sorts — the budget below separates the two regimes.
	budget := 16 * sort * int64(graph.MaxDegree)
	if m.Steps() > budget {
		t.Fatalf("ComputeLevels cost %d exceeds telescoping budget %d (√n=%d)",
			m.Steps(), budget, int(math.Sqrt(float64(m.N()))))
	}
	noCompress := int64(13) * 3 * int64(graph.MaxDegree) * sort
	if m.Steps() >= noCompress {
		t.Fatalf("ComputeLevels cost %d not better than uncompressed %d", m.Steps(), noCompress)
	}
}

func TestComputeLevelsDetectsCycle(t *testing.T) {
	g := graph.New(4, true)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	m := mesh.New(2)
	in := core.NewInstance(m, g, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected stall panic on a cycle")
		}
	}()
	core.ComputeLevels(m.Root(), in)
}
