package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// Algorithm 1 (§3): multisearch on a hierarchical DAG in O(√n) mesh time.
//
// Register set (all fixed — the O(1) memory of Theorem 2):
//
//	Nodes    initial configuration of G (never moved; serves B*)
//	Queries  one query per processor, processed in place
//	labels   step-1 labels
//	stage    the union-cascade of step 2(b)
//	store ×2 the distributed B_i storage on label-i processors (≤2 records)
//	work     the per-B_i-submesh copy of B_i during step 3
//	phase1   the per-B_i^1-submesh copy of B_i^1 during Lemma 1 phase 1
//
// Queries never move: every query is processed by the B_i-submesh that
// contains its processor, which holds a full copy of B_i when needed.

// HDagStats aggregates one Algorithm 1 run.
type HDagStats struct {
	Blocks     int
	StarLevels int
	Advanced   int64
}

type hdagRegs struct {
	labels *mesh.Reg[int8]
	stage  *mesh.Reg[graph.Vertex]
	store1 *mesh.Reg[graph.Vertex]
	store2 *mesh.Reg[graph.Vertex]
	work   *mesh.Reg[graph.Vertex]
	phase1 *mesh.Reg[graph.Vertex]
}

// MultisearchHDag runs Algorithm 1 on the instance (whose graph must be the
// hierarchical DAG the plan was computed for).
func MultisearchHDag(v mesh.View, in *Instance, plan *HDagPlan) HDagStats {
	defer trace.Span(v, "algorithm1")()
	var st HDagStats
	st.Blocks = plan.S
	st.StarLevels = plan.H - plan.StarLo + 1
	m := in.M
	regs := &hdagRegs{
		labels: mesh.NewReg[int8](m),
		stage:  mesh.NewReg[graph.Vertex](m),
		store1: mesh.NewReg[graph.Vertex](m),
		store2: mesh.NewReg[graph.Vertex](m),
		work:   mesh.NewReg[graph.Vertex](m),
		phase1: mesh.NewReg[graph.Vertex](m),
	}
	for _, r := range []*mesh.Reg[graph.Vertex]{regs.stage, regs.store1, regs.store2, regs.work, regs.phase1} {
		mesh.Fill(v, r, emptyVertex)
	}
	in.Prime(v)

	if plan.S > 0 {
		// Step 1: labels. One O(1)-local pass per i (log* h passes total).
		endStep1 := trace.Span(v, "step1:labels")
		side := m.Side()
		mesh.Apply(v, regs.labels, func(local int, _ int8) int8 {
			g := v.Global(local)
			return int8(plan.LabelAt(g/side, g%side))
		})
		v.Charge(int64(plan.S - 1)) // Apply charged 1; step 1 is S passes
		endStep1()

		// Step 2 prologue: stage ← U_{S-1} (everything below B*),
		// concentrated in row-major order. One copy + one concentrate.
		endStage := trace.Span(v, "step2:stage")
		mesh.Fill(v, regs.stage, emptyVertex)
		mesh.RouteTo(v, in.Nodes, regs.stage, func(i int, nd graph.Vertex) (int, bool) {
			return i, nd.ID != graph.Nil && int(nd.Level) <= plan.Blocks[plan.S-1].Hi
		})
		mesh.Concentrate(v, regs.stage, emptyVertex, func(nd graph.Vertex) bool {
			return nd.ID != graph.Nil
		})
		endStage()

		// Step 2: for i = S-1 … 0, within each B_{i+1}-submesh: distribute
		// B_i onto the label-i processors, then push U_{i-1} down to the
		// B_i-submeshes.
		for i := plan.S - 1; i >= 0; i-- {
			blk := plan.Blocks[i]
			gOut := plan.GridOf(i + 1)
			subs := v.Partition(gOut, gOut)
			endBlock := trace.Span(v, "step2/B_%d", i)
			v.RunParallel(subs, func(_ int, delta mesh.View) {
				distributeToLabels(delta, regs, plan, i)
				if i > 0 {
					pushUnionDown(delta, regs, plan.Blocks[i-1].Hi, blk.Grid/gOut)
				}
			})
			endBlock()
		}

		// Step 3: for i = 0 … S-1: replicate B_i from its label storage to
		// every B_i-submesh of each B_{i+1}-submesh, then solve the
		// multisearch problem for B_i (Lemma 1) in every B_i-submesh.
		for i := 0; i < plan.S; i++ {
			blk := plan.Blocks[i]
			gOut := plan.GridOf(i + 1)
			subs := v.Partition(gOut, gOut)
			adv := mesh.Checkout[int64](m, len(subs))
			clear(adv)
			endBlock := trace.Span(v, "step3/B_%d", i)
			v.RunParallel(subs, func(si int, delta mesh.View) {
				endRep := trace.Span(delta, "replicate")
				replicateBi(delta, regs, plan, i)
				endRep()
				children := delta.Partition(blk.Grid/gOut, blk.Grid/gOut)
				childAdv := mesh.Checkout[int64](m, len(children))
				clear(childAdv)
				delta.RunParallel(children, func(ci int, sub mesh.View) {
					childAdv[ci] = solveLemma1(sub, in, regs, blk)
				})
				for _, a := range childAdv {
					adv[si] += a
				}
				mesh.Release(m, childAdv)
			})
			endBlock()
			for _, a := range adv {
				st.Advanced += a
			}
			mesh.Release(m, adv)
		}
	}

	// Step 4: B* level by level over the whole view, using the untouched
	// initial configuration (O(1) levels).
	endStar := trace.Span(v, "step4:Bstar")
	for t := 0; t < st.StarLevels; t++ {
		st.Advanced += advanceRange(v, in, in.Nodes, plan.StarLo, plan.H)
	}
	endStar()
	if left := in.Unfinished(v); left > 0 {
		panic(fmt.Sprintf("core: %d queries unfinished after Algorithm 1; graph violates the hierarchical-DAG contract", left))
	}
	return st
}

// distributeToLabels implements step 2(a) within one B_{i+1}-submesh: the
// B_i records (found in the local stage copy) are spread over the label-i
// processors, at most two per processor. Cost: one local sort.
func distributeToLabels(delta mesh.View, regs *hdagRegs, plan *HDagPlan, i int) {
	m := delta.Mesh()
	blk := plan.Blocks[i]
	size := delta.Size()
	recs := mesh.Checkout[graph.Vertex](m, size)[:0]
	for j := 0; j < size; j++ {
		nd := mesh.At(delta, regs.stage, j)
		if nd.ID != graph.Nil && int(nd.Level) >= blk.Lo && int(nd.Level) <= blk.Hi {
			recs = append(recs, nd)
		}
	}
	if len(recs) != blk.Count {
		panic(fmt.Sprintf("core: B_%d has %d records in stage, plan says %d", i, len(recs), blk.Count))
	}
	slots := mesh.Checkout[int32](m, size)[:0]
	for j := 0; j < size; j++ {
		g := delta.Global(j)
		side := m.Side()
		if plan.LabelAt(g/side, g%side) == i {
			slots = append(slots, int32(j))
		}
	}
	if len(slots)*2 < len(recs) {
		panic(fmt.Sprintf("core: B_%d: %d records onto %d label-%d processors", i, len(recs), len(slots), i))
	}
	mesh.SortScratch(delta, recs, 1, func(a, b graph.Vertex) bool { return a.ID < b.ID })
	for r, nd := range recs {
		if r < len(slots) {
			mesh.Set(delta, regs.store1, int(slots[r]), nd)
		} else {
			mesh.Set(delta, regs.store2, int(slots[r-len(slots)]), nd)
		}
	}
	mesh.Release(m, slots)
	mesh.Release(m, recs)
	delta.Charge(1)
}

// pushUnionDown implements step 2(b) within one B_{i+1}-submesh: shrink the
// stage to U_{i-1} and replicate it into every child B_i-submesh. Cost: one
// concentrate plus one block broadcast.
func pushUnionDown(delta mesh.View, regs *hdagRegs, unionHi int, childGrid int) {
	n := mesh.Concentrate(delta, regs.stage, emptyVertex, func(nd graph.Vertex) bool {
		return nd.ID != graph.Nil && int(nd.Level) <= unionHi
	})
	m := delta.Mesh()
	block := mesh.Checkout[graph.Vertex](m, n)
	for j := 0; j < n; j++ {
		block[j] = mesh.At(delta, regs.stage, j)
	}
	children := delta.Partition(childGrid, childGrid)
	mesh.BroadcastBlock(delta, regs.stage, block, children)
	mesh.Release(m, block)
}

// replicateBi implements step 3(a) within one B_{i+1}-submesh: gather B_i
// from the label-i processors (they all lie in the top-left B_i-submesh)
// and broadcast the block into the work register of every B_i-submesh.
func replicateBi(delta mesh.View, regs *hdagRegs, plan *HDagPlan, i int) {
	m := delta.Mesh()
	blk := plan.Blocks[i]
	size := delta.Size()
	recs := mesh.Checkout[graph.Vertex](m, 2*size)[:0]
	for j := 0; j < size; j++ {
		if nd := mesh.At(delta, regs.store1, j); nd.ID != graph.Nil && int(nd.Level) >= blk.Lo && int(nd.Level) <= blk.Hi {
			recs = append(recs, nd)
		}
	}
	for j := 0; j < size; j++ {
		if nd := mesh.At(delta, regs.store2, j); nd.ID != graph.Nil && int(nd.Level) >= blk.Lo && int(nd.Level) <= blk.Hi {
			recs = append(recs, nd)
		}
	}
	if len(recs) != blk.Count {
		panic(fmt.Sprintf("core: replicate B_%d found %d records, plan says %d", i, len(recs), blk.Count))
	}
	mesh.SortScratch(delta, recs, 1, func(a, b graph.Vertex) bool { return a.ID < b.ID })
	gOut := plan.GridOf(i + 1)
	children := delta.Partition(blk.Grid/gOut, blk.Grid/gOut)
	mesh.Fill(delta, regs.work, emptyVertex)
	mesh.BroadcastBlock(delta, regs.work, recs, children)
	mesh.Release(m, recs)
}

// solveLemma1 solves the multisearch problem for B_i within one
// B_i-submesh holding a copy of B_i in its work register (Lemma 1):
// phase 1 replicates B_i^1 into Δh×Δh sub-submeshes and advances the
// resident queries through B_i^1's levels there; phase 2 advances level by
// level through B_i^2 at the submesh granularity.
func solveLemma1(sub mesh.View, in *Instance, regs *hdagRegs, blk HDagBlock) int64 {
	var advanced int64
	m := sub.Mesh()
	p2lo := blk.Lo
	if blk.P1Hi >= blk.Lo {
		// Phase 1.
		endPhase1 := trace.Span(sub, "lemma1/phase1")
		size := sub.Size()
		block1 := mesh.Checkout[graph.Vertex](m, size)[:0]
		for j := 0; j < size; j++ {
			if nd := mesh.At(sub, regs.work, j); nd.ID != graph.Nil && int(nd.Level) <= blk.P1Hi && int(nd.Level) >= blk.Lo {
				block1 = append(block1, nd)
			}
		}
		mesh.SortScratch(sub, block1, 1, func(a, b graph.Vertex) bool { return a.ID < b.ID })
		grand := sub.Partition(blk.P1Grid, blk.P1Grid)
		mesh.Fill(sub, regs.phase1, emptyVertex)
		mesh.BroadcastBlock(sub, regs.phase1, block1, grand)
		mesh.Release(m, block1)
		iters := blk.P1Hi - blk.Lo + 1
		childAdv := mesh.Checkout[int64](m, len(grand))
		clear(childAdv)
		sub.RunParallel(grand, func(gi int, ss mesh.View) {
			for t := 0; t < iters; t++ {
				childAdv[gi] += advanceRange(ss, in, regs.phase1, blk.Lo, blk.P1Hi)
			}
		})
		for _, a := range childAdv {
			advanced += a
		}
		mesh.Release(m, childAdv)
		endPhase1()
		p2lo = blk.P1Hi + 1
	}
	// Phase 2: level by level through B_i^2 (≈ 2·log Δh levels).
	endPhase2 := trace.Span(sub, "lemma1/phase2")
	for lvl := p2lo; lvl <= blk.Hi; lvl++ {
		advanced += advanceRange(sub, in, regs.work, lvl, lvl)
	}
	endPhase2()
	return advanced
}

// advanceRange performs one local multistep: every unfinished query in the
// view whose current level lies in [lo, hi] visits its next vertex via a
// random-access read against the given node register. Returns the number of
// queries advanced.
func advanceRange(v mesh.View, in *Instance, nodes *mesh.Reg[graph.Vertex], lo, hi int) int64 {
	var advanced int64
	mesh.RAR(v,
		func(i int) (graph.VertexID, graph.Vertex, bool) {
			nd := mesh.At(v, nodes, i)
			return nd.ID, nd, nd.ID != graph.Nil
		},
		func(i int) (graph.VertexID, bool) {
			q := mesh.At(v, in.Queries, i)
			return q.Cur, q.ID != NoQuery && !q.Done && int(q.CurLevel) >= lo && int(q.CurLevel) <= hi
		},
		func(i int, nd graph.Vertex, found bool) {
			q := mesh.Ref(v, in.Queries, i)
			if !found {
				panic(fmt.Sprintf("core: query %d: vertex %d (level %d) missing from its submesh copy", q.ID, q.Cur, q.CurLevel))
			}
			Visit(in.F, nd, q)
			advanced++
		})
	return advanced
}
