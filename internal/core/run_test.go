package core_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/workload"
)

func TestRunPassesThroughSuccess(t *testing.T) {
	if err := core.Run("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunWrapsErrorReturn(t *testing.T) {
	base := errors.New("bad input")
	err := core.Run("E99", func() error { return base })
	var re *core.RunError
	if !errors.As(err, &re) || re.Label != "E99" {
		t.Fatalf("got %v", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("base error not reachable: %v", err)
	}
	if re.Stack != nil {
		t.Fatal("error return should carry no panic stack")
	}
}

func TestRunContainsStringPanic(t *testing.T) {
	err := core.Run("boom", func() error { panic("kaboom") })
	var re *core.RunError
	if !errors.As(err, &re) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(re.Error(), "kaboom") || len(re.Stack) == 0 {
		t.Fatalf("err=%v stack=%d bytes", re, len(re.Stack))
	}
}

func TestRunContainsMeshMisuse(t *testing.T) {
	// An out-of-range View.Global is the canonical internal panic; it must
	// come back as an error, never escape.
	m := mesh.New(4)
	err := core.Run("misuse", func() error {
		_ = m.Root().Global(99)
		return nil
	})
	var re *core.RunError
	if !errors.As(err, &re) {
		t.Fatalf("got %v", err)
	}
}

func TestRunContainsParallelBodyPanic(t *testing.T) {
	m := mesh.New(8)
	err := core.Run("parallel", func() error {
		m.Root().RunParallel(m.Root().Partition(2, 2), func(idx int, sub mesh.View) {
			if idx == 1 {
				panic("submesh fault")
			}
			sub.Charge(1)
		})
		return nil
	})
	var pe *mesh.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want wrapped *mesh.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("submesh stack lost")
	}
}

// TestBudgetAbortsSynchronousMultisearch aborts the paper's deliberately
// super-linear baseline (Θ(r·√n): one full-mesh RAR per search step) with a
// step budget, and requires the structured error to name the dominant op
// class.
func TestBudgetAbortsSynchronousMultisearch(t *testing.T) {
	const budget = 2000
	m := mesh.New(16, mesh.WithBudget(budget))
	tr, _ := buildAlphaTree(16, 7)
	rng := rand.New(rand.NewSource(5))
	qs := workload.KeySearchQueries(200, 128, tr.Root(), 3, rng)

	err := core.Run("synchronous multisearch", func() error {
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		core.SynchronousMultisearch(m.Root(), in, 0)
		return nil
	})
	var be *mesh.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want wrapped *mesh.BudgetExceededError", err)
	}
	if be.Steps <= budget {
		t.Fatalf("aborted at %d steps, budget %d", be.Steps, budget)
	}
	c, s := be.Dominant()
	if c != mesh.OpRAR || s == 0 {
		t.Fatalf("dominant class %s (%d steps), want rar", c, s)
	}
	if !strings.Contains(err.Error(), "rar") {
		t.Fatalf("error does not name the dominant class: %v", err)
	}
	// The breakdown in the error must account for the full elapsed clock.
	if got := be.Profile.TotalSteps(); got != be.Steps {
		t.Fatalf("profile sums to %d, clock says %d", got, be.Steps)
	}
}

func TestCancellationSurfacesThroughRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := mesh.New(16, mesh.WithContext(ctx))
	tr, _ := buildAlphaTree(16, 7)
	qs := workload.KeySearchQueries(50, 128, tr.Root(), 1, rand.New(rand.NewSource(6)))

	err := core.Run("canceled multisearch", func() error {
		// Instance construction charges steps too; it belongs inside the
		// boundary.
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		core.SynchronousMultisearch(m.Root(), in, 0)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in chain", err)
	}
	var ce *mesh.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want wrapped *mesh.CanceledError", err)
	}
}
