package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

func TestThresholdAndPlanSmall(t *testing.T) {
	// h small: log h < c ⇒ no blocks, everything in B*.
	d := graph.CompleteTreeHDag(2, 6) // n=127, h=6, log h ≈ 2.6 < 4
	p, err := core.PlanHDag(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.S != 0 || p.StarLo != 0 {
		t.Fatalf("S=%d StarLo=%d, want all-B*", p.S, p.StarLo)
	}
}

func TestPlanMedium(t *testing.T) {
	// h=17 (n=2^18-1 won't fit small test meshes; use RandomHDag with small
	// levels instead). CompleteTreeHDag(2,17) has 262143 vertices: mesh 512.
	d := graph.CompleteTreeHDag(2, 17)
	p, err := core.PlanHDag(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.S != 1 {
		t.Fatalf("S=%d want 1 (log*2(17) with c=4)", p.S)
	}
	blk := p.Blocks[0]
	if blk.Lo != 0 {
		t.Fatalf("B_0 starts at %d", blk.Lo)
	}
	if p.StarLo != blk.Hi+1 {
		t.Fatalf("B* gap: B_0 ends %d, B* starts %d", blk.Hi, p.StarLo)
	}
	if p.H-p.StarLo+1 > 2*16+1 {
		t.Fatalf("B* has %d levels, not O(1)", p.H-p.StarLo+1)
	}
	// Capacity invariants.
	sub := 512 / blk.Grid
	if sub*sub < blk.Count {
		t.Fatalf("B_0 (%d) does not fit its submesh (%d)", blk.Count, sub*sub)
	}
	if blk.LabelPerSub*2 < blk.Count {
		t.Fatalf("label capacity %d for %d records", blk.LabelPerSub, blk.Count)
	}
}

func TestPlanBlocksPartitionLevels(t *testing.T) {
	for _, h := range []int{4, 6, 10, 14, 17} {
		d := graph.CompleteTreeHDag(2, h)
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		p, err := core.PlanHDag(d, side)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		next := 0
		for i, blk := range p.Blocks {
			if blk.Lo != next {
				t.Fatalf("h=%d block %d starts at %d want %d", h, i, blk.Lo, next)
			}
			if blk.Hi < blk.Lo {
				t.Fatalf("h=%d block %d empty", h, i)
			}
			next = blk.Hi + 1
		}
		if p.StarLo != next {
			t.Fatalf("h=%d B* starts at %d want %d", h, p.StarLo, next)
		}
		if p.H < p.StarLo {
			t.Fatalf("h=%d B* empty", h)
		}
		// Grids monotone nonincreasing and dividing the side.
		prev := side
		for i, blk := range p.Blocks {
			if blk.Grid > prev || side%blk.Grid != 0 {
				t.Fatalf("h=%d grid %d at block %d (prev %d)", h, blk.Grid, i, prev)
			}
			prev = blk.Grid
		}
	}
}

func TestLabelCountsMatchEnumeration(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 17)
	p, err := core.PlanHDag(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range p.Blocks {
		gOut := p.GridOf(i + 1)
		subSide := 512 / gOut
		count := 0
		for r := 0; r < subSide; r++ {
			for c := 0; c < subSide; c++ {
				if p.LabelAt(r, c) == i {
					count++
				}
			}
		}
		if count != blk.LabelPerSub {
			t.Fatalf("block %d: enumerated %d label processors, plan says %d", i, count, blk.LabelPerSub)
		}
	}
}

func runHDagCase(t *testing.T, d *graph.HDag, side, nq, dup int, succ core.Successor, seed int64) {
	t.Helper()
	m := mesh.New(side)
	plan, err := core.PlanHDag(d, side)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	span := d.Verts[d.Root()].Data[graph.HDagSpanWidth]
	if span == 0 {
		span = 1 << 20
	}
	qs := workload.KeySearchQueries(nq, span, d.Root(), dup, rng)
	want := core.Oracle(d.Graph, qs, succ, 0)
	in := core.NewInstance(m, d.Graph, qs, succ)
	st := core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	if st.Advanced == 0 {
		t.Fatal("no advancement recorded")
	}
}

func TestMultisearchHDagSmallAllStar(t *testing.T) {
	runHDagCase(t, graph.CompleteTreeHDag(2, 6), 16, 100, 1, workload.KeySearchSuccessor, 11)
}

func TestMultisearchHDagBinary(t *testing.T) {
	runHDagCase(t, graph.CompleteTreeHDag(2, 13), 128, 4000, 1, workload.KeySearchSuccessor, 12)
}

func TestMultisearchHDagBinarySkewedDuplicates(t *testing.T) {
	runHDagCase(t, graph.CompleteTreeHDag(2, 13), 128, 4000, 64, workload.KeySearchSuccessor, 13)
}

func TestMultisearchHDagTernary(t *testing.T) {
	runHDagCase(t, graph.CompleteTreeHDag(3, 8), 128, 2000, 2, workload.KeySearchSuccessor, 14)
}

func TestMultisearchHDagWithBlocks(t *testing.T) {
	// h=17 forces S=1: exercises the full step 1-3 machinery.
	runHDagCase(t, graph.CompleteTreeHDag(2, 17), 512, 20000, 4, workload.KeySearchSuccessor, 15)
}

func TestMultisearchHDagRandomDagRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := graph.RandomHDag(2, 13, rng)
	side := 4
	for side*side < d.N() {
		side *= 2
	}
	runHDagCase(t, d, side, 3000, 8, workload.RandomWalkDownSuccessor, 17)
}

func TestMultisearchHDagQueriesFromMidLevels(t *testing.T) {
	// Queries starting at interior vertices (shorter search paths).
	d := graph.CompleteTreeHDag(2, 13)
	m := mesh.New(128)
	plan, err := core.PlanHDag(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	qs := make([]core.Query, 3000)
	for i := range qs {
		lvl := rng.Intn(d.Height())
		qs[i].Cur = graph.VertexID(d.LevelStart[lvl] + rng.Intn(d.LevelSizes[lvl]))
		qs[i].State[workload.StateKey] = rng.Int63n(1 << d.Height())
	}
	want := core.Oracle(d.Graph, qs, workload.KeySearchSuccessor, 0)
	in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestMultisearchHDagCostScaling(t *testing.T) {
	// Theorem 2 shape check (weak form): doubling the mesh side should grow
	// the step count by roughly 2× (√n scaling), definitely below 3×
	// (which would indicate √n·log² or worse).
	var prev int64
	for _, h := range []int{9, 11, 13} {
		d := graph.CompleteTreeHDag(2, h)
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		m := mesh.New(side)
		plan, err := core.PlanHDag(d, side)
		if err != nil {
			t.Fatal(err)
		}
		qs := workload.KeySearchQueries(d.N()/2, 1<<h, d.Root(), 1, rand.New(rand.NewSource(19)))
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		core.MultisearchHDag(m.Root(), in, plan)
		steps := m.Steps()
		if prev > 0 {
			ratio := float64(steps) / float64(prev)
			if ratio > 3.4 {
				t.Fatalf("h=%d: step ratio %.2f suggests super-√n·log behaviour", h, ratio)
			}
		}
		prev = steps
	}
}
