package core

import (
	"fmt"

	"repro/internal/graph"
)

// Oracle runs the multisearch sequentially on the host representation —
// plain pointer chasing, one query at a time. It is the correctness
// reference for every mesh algorithm: identical final query records
// (Steps and State included) certify that the mesh execution visited
// exactly the same search paths.
//
// maxSteps caps each search to guard against non-terminating successor
// functions; 0 means no cap.
func Oracle(g *graph.Graph, queries []Query, f Successor, maxSteps int) []Query {
	out := make([]Query, len(queries))
	for i, q := range queries {
		q.ID = int32(i)
		q.Done = false
		q.Mark = false
		q.Steps = 0
		q.CurPart = graph.NoPart
		q.CurPart2 = graph.NoPart
		q.CurLevel = -1
		if q.Cur != graph.Nil {
			nd := g.Verts[q.Cur]
			q.CurPart = nd.Part
			q.CurPart2 = nd.Part2
			q.CurLevel = nd.Level
		}
		for !q.Done && q.Cur != graph.Nil {
			if maxSteps > 0 && int(q.Steps) >= maxSteps {
				break
			}
			if q.Cur < 0 || int(q.Cur) >= g.N() {
				panic(fmt.Sprintf("core: oracle query %d reached invalid vertex %d", i, q.Cur))
			}
			Visit(f, g.Verts[q.Cur], &q)
		}
		out[i] = q
	}
	return out
}

// SameOutcome reports whether two query-result slices describe identical
// search processes: same Steps, same terminal vertex, same State words.
// Mark bits are ignored (scratch).
func SameOutcome(a, b []Query) error {
	if len(a) != len(b) {
		return fmt.Errorf("core: result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Steps != y.Steps || x.Done != y.Done || x.Cur != y.Cur || x.State != y.State {
			return fmt.Errorf("core: query %d differs:\n  %+v\n  %+v", i, x, y)
		}
	}
	return nil
}
