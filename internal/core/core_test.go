package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

// buildAlphaTree returns a directed balanced binary tree with the Figure-2
// α-splitter installed, sized to fit a mesh of the given side.
func buildAlphaTree(side, height int) (*graph.Tree, graph.Splitting) {
	tr := graph.NewBalancedTree(2, height, true)
	if tr.N() > side*side {
		panic("tree too large for mesh")
	}
	s := graph.InstallTreeSplitter(tr, (height+1)/2, graph.Primary)
	return tr, s
}

func TestPrimeSetsMembership(t *testing.T) {
	m := mesh.New(8)
	tr, _ := buildAlphaTree(8, 4)
	qs := workload.KeySearchQueries(10, 16, tr.Root(), 1, rand.New(rand.NewSource(1)))
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	in.Prime(m.Root())
	for i, q := range in.ResultQueries() {
		if q.CurPart != tr.Verts[tr.Root()].Part {
			t.Fatalf("query %d CurPart=%d", i, q.CurPart)
		}
		if q.CurLevel != 0 {
			t.Fatalf("query %d CurLevel=%d", i, q.CurLevel)
		}
	}
}

func TestGlobalStepAdvancesAll(t *testing.T) {
	m := mesh.New(8)
	tr, _ := buildAlphaTree(8, 4)
	qs := workload.KeySearchQueries(20, 16, tr.Root(), 1, rand.New(rand.NewSource(2)))
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	in.Prime(m.Root())
	if n := in.GlobalStep(m.Root()); n != 20 {
		t.Fatalf("advanced %d", n)
	}
	for i, q := range in.ResultQueries() {
		if q.Steps != 1 || q.CurLevel != 1 {
			t.Fatalf("query %d: steps=%d level=%d", i, q.Steps, q.CurLevel)
		}
	}
}

func TestSynchronousMatchesOracle(t *testing.T) {
	m := mesh.New(16)
	tr, _ := buildAlphaTree(16, 7)
	rng := rand.New(rand.NewSource(3))
	qs := workload.KeySearchQueries(200, 128, tr.Root(), 3, rng)
	want := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 0)

	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	steps := core.SynchronousMultisearch(m.Root(), in, 100)
	if steps != 8 { // path length h+1
		t.Fatalf("multisteps=%d", steps)
	}
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedMultisearchAdvancesWithinParts(t *testing.T) {
	m := mesh.New(16)
	tr, s := buildAlphaTree(16, 7) // cut at depth 4
	rng := rand.New(rand.NewSource(4))
	qs := workload.KeySearchQueries(100, 128, tr.Root(), 2, rng)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	in.Prime(m.Root())
	in.GlobalStep(m.Root()) // visit root; queries now at depth 1
	st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
	if st.Marked != 100 {
		t.Fatalf("marked=%d", st.Marked)
	}
	// Every query must now sit exactly at the first vertex of its subtree
	// part (depth 4 = the cut), having visited depths 1..3.
	for i, q := range in.ResultQueries() {
		if q.Done {
			t.Fatalf("query %d finished inside H", i)
		}
		if q.Steps != 4 { // visited depths 0(global),1,2,3
			t.Fatalf("query %d steps=%d want 4", i, q.Steps)
		}
		if d := tr.Depth[q.Cur]; d != 4 {
			t.Fatalf("query %d waiting at depth %d", i, d)
		}
		if q.CurPart == 0 || q.CurPart == graph.NoPart {
			t.Fatalf("query %d has CurPart=%d, should be a subtree part", i, q.CurPart)
		}
	}
	if st.Advanced != 3*100 {
		t.Fatalf("advanced=%d want 300", st.Advanced)
	}
}

func TestConstrainedMultisearchNoMarked(t *testing.T) {
	m := mesh.New(8)
	tr, s := buildAlphaTree(8, 4)
	qs := workload.KeySearchQueries(5, 16, tr.Root(), 1, rand.New(rand.NewSource(5)))
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	// Without Prime, CurPart is NoPart everywhere: nothing marks.
	st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
	if st.Marked != 0 || st.TotalGamma != 0 || st.Advanced != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestConstrainedMultisearchCopyVolumeBound(t *testing.T) {
	// Lemma 3 item (1): total copy volume O(n) — asserted ≤ 2n inside the
	// procedure; verify the reported number as well, under heavy skew.
	m := mesh.New(16)
	tr, s := buildAlphaTree(16, 7)
	rng := rand.New(rand.NewSource(6))
	qs := workload.SkewedQueries(256, 128, tr.Root(), rng)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	in.Prime(m.Root())
	in.GlobalStep(m.Root())
	st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
	if st.CopyVolume > 2*m.N() {
		t.Fatalf("copy volume %d > 2n", st.CopyVolume)
	}
	if st.TotalGamma == 0 {
		t.Fatal("no copies created")
	}
}

func TestMultisearchAlphaMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		side, height, nq, dup int
	}{
		{8, 4, 30, 1},
		{16, 7, 255, 4},
		{32, 9, 1023, 1},
		{32, 9, 1023, 16},
	} {
		m := mesh.New(tc.side)
		tr, s := buildAlphaTree(tc.side, tc.height)
		rng := rand.New(rand.NewSource(int64(tc.side + tc.nq)))
		qs := workload.KeySearchQueries(tc.nq, int64(tr.SubtreeSize(0)), tr.Root(), tc.dup, rng)
		want := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 0)

		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		st := core.MultisearchAlpha(m.Root(), in, s.MaxPart, 100)
		if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
			t.Fatalf("side=%d: %v", tc.side, err)
		}
		// r = h+1; one log-phase handles ≥ log n steps: phases stay small.
		if st.LogPhases > tc.height {
			t.Fatalf("side=%d: %d log-phases for height %d", tc.side, st.LogPhases, tc.height)
		}
	}
}

func TestMultisearchAlphaSkewed(t *testing.T) {
	m := mesh.New(32)
	tr, s := buildAlphaTree(32, 9)
	rng := rand.New(rand.NewSource(77))
	qs := workload.SkewedQueries(1024, int64(tr.SubtreeSize(0)), tr.Root(), rng)
	want := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 0)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchAlpha(m.Root(), in, s.MaxPart, 100)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestMultisearchAlphaWithNormalizedSplitting(t *testing.T) {
	// Cut deep so parts are tiny, then normalize: exercises grouped parts
	// where a subgraph is a union of components.
	// The grouping target must be Θ(n^α) = Θ(maxPart): the top tree has 127
	// vertices, so the tiny depth-7 subtrees are grouped to ~127 as well.
	m := mesh.New(32)
	tr := graph.NewBalancedTree(2, 9, true)
	s := graph.InstallTreeSplitter(tr, 7, graph.Primary)
	ns := graph.NormalizeParts(tr.Graph, s, 127, func(p int32) int {
		if p == 0 {
			return 0
		}
		return 1
	})
	rng := rand.New(rand.NewSource(8))
	qs := workload.KeySearchQueries(1000, int64(tr.SubtreeSize(0)), tr.Root(), 2, rng)
	want := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 0)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchAlpha(m.Root(), in, ns.MaxPart, 100)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestMultisearchAlphaBetaMatchesOracle(t *testing.T) {
	// Figure 3: undirected tree, S1 cut shallow, S2 cut deep, down-up
	// traversals crossing both splitters in both directions.
	for _, tc := range []struct {
		side, height, cut1, cut2, nq int
	}{
		{16, 6, 2, 5, 120},
		{32, 8, 3, 7, 1000},
	} {
		m := mesh.New(tc.side)
		tr := graph.NewBalancedTree(2, tc.height, false)
		s1 := graph.InstallTreeSplitter(tr, tc.cut1, graph.Primary)
		s2 := graph.InstallTreeSplitter(tr, tc.cut2, graph.Secondary)
		succ := workload.DownUpSuccessor(2)
		rng := rand.New(rand.NewSource(int64(tc.side)))
		qs := workload.KeySearchQueries(tc.nq, int64(tr.SubtreeSize(0)), tr.Root(), 2, rng)
		want := core.Oracle(tr.Graph, qs, succ, 0)

		in := core.NewInstance(m, tr.Graph, qs, succ)
		st := core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 200)
		if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
			t.Fatalf("side=%d: %v", tc.side, err)
		}
		if st.LogPhases == 0 {
			t.Fatal("no phases ran")
		}
		// Paths have length 2h+1: every query's Steps agrees.
		for i, q := range in.ResultQueries() {
			if int(q.Steps) != 2*tc.height+1 {
				t.Fatalf("query %d steps=%d want %d", i, q.Steps, 2*tc.height+1)
			}
		}
	}
}

func TestMultisearchCostSanity(t *testing.T) {
	// Theorem 5 shape: mesh steps for r=O(log n) paths should be within a
	// polylog factor of √n, and far below the r·√n of doing r full-mesh
	// RARs... the strong version is checked in the benchmarks; here just
	// assert the algorithm charges something and stays under r·Sort(n).
	m := mesh.New(32)
	tr, s := buildAlphaTree(32, 9)
	rng := rand.New(rand.NewSource(9))
	qs := workload.KeySearchQueries(1024, 512, tr.Root(), 1, rng)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	core.MultisearchAlpha(m.Root(), in, s.MaxPart, 100)
	steps := m.Steps()
	if steps <= 0 {
		t.Fatal("no cost charged")
	}
	if bound := int64(10) * m.Root().SortCost() * 10; steps > bound {
		t.Fatalf("cost %d exceeds sanity bound %d", steps, bound)
	}
}

func TestOracleRespectsMaxSteps(t *testing.T) {
	tr, _ := buildAlphaTree(8, 4)
	qs := workload.KeySearchQueries(3, 16, tr.Root(), 1, rand.New(rand.NewSource(10)))
	out := core.Oracle(tr.Graph, qs, workload.KeySearchSuccessor, 2)
	for _, q := range out {
		if q.Steps != 2 || q.Done {
			t.Fatalf("steps=%d done=%v", q.Steps, q.Done)
		}
	}
}

func TestSameOutcomeDetectsDifferences(t *testing.T) {
	a := []core.Query{{ID: 0, Steps: 3}}
	b := []core.Query{{ID: 0, Steps: 4}}
	if core.SameOutcome(a, b) == nil {
		t.Fatal("should differ")
	}
	if core.SameOutcome(a, a) != nil {
		t.Fatal("should match")
	}
	if core.SameOutcome(a, nil) == nil {
		t.Fatal("length mismatch")
	}
}
