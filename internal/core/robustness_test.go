package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

// The simulator must be deterministic regardless of how many goroutines
// execute the submesh bodies: same final registers, same step counts.
func TestParallelismDoesNotAffectResultsOrCost(t *testing.T) {
	tr, s := buildAlphaTree(32, 9)
	rng := rand.New(rand.NewSource(50))
	qs := workload.KeySearchQueries(1000, 512, tr.Root(), 4, rng)

	var ref []core.Query
	var refSteps int64
	for _, p := range []int{1, 2, 8, 64} {
		m := mesh.New(32, mesh.WithParallelism(p))
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		core.MultisearchAlpha(m.Root(), in, s.MaxPart, 0)
		if ref == nil {
			ref = in.ResultQueries()
			refSteps = m.Steps()
			continue
		}
		if err := core.SameOutcome(ref, in.ResultQueries()); err != nil {
			t.Fatalf("parallelism %d changed results: %v", p, err)
		}
		if m.Steps() != refSteps {
			t.Fatalf("parallelism %d changed cost: %d vs %d", p, m.Steps(), refSteps)
		}
	}
}

func TestHDagParallelismDeterminism(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 11)
	qs := workload.KeySearchQueries(2000, 1<<11, d.Root(), 8, rand.New(rand.NewSource(51)))
	var ref []core.Query
	var refSteps int64
	for _, p := range []int{1, 16} {
		m := mesh.New(64, mesh.WithParallelism(p))
		plan, err := core.PlanHDag(d, 64)
		if err != nil {
			t.Fatal(err)
		}
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		core.MultisearchHDag(m.Root(), in, plan)
		if ref == nil {
			ref, refSteps = in.ResultQueries(), m.Steps()
			continue
		}
		if err := core.SameOutcome(ref, in.ResultQueries()); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if m.Steps() != refSteps {
			t.Fatalf("parallelism %d cost %d vs %d", p, m.Steps(), refSteps)
		}
	}
}

// Failure injection: contract violations must be loud panics, never silent
// wrong answers.

func TestSuccessorReturningInvalidEdgePanics(t *testing.T) {
	tr, _ := buildAlphaTree(8, 4)
	bad := func(v graph.Vertex, q *core.Query) (int, bool) {
		return int(v.Deg) + 3, false // out of range
	}
	qs := workload.KeySearchQueries(5, 16, tr.Root(), 1, rand.New(rand.NewSource(52)))
	m := mesh.New(8)
	in := core.NewInstance(m, tr.Graph, qs, bad)
	in.Prime(m.Root())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid edge accepted")
		}
	}()
	in.GlobalStep(m.Root())
}

func TestQueryAtUnknownVertexPanics(t *testing.T) {
	tr, _ := buildAlphaTree(8, 4)
	qs := []core.Query{{Cur: graph.VertexID(tr.N() + 5)}} // beyond the graph
	m := mesh.New(8)
	in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown start vertex accepted")
		}
	}()
	in.Prime(m.Root())
}

func TestNonTerminatingSearchCaught(t *testing.T) {
	// A successor that never finishes on a cyclic graph: the log-phase
	// driver's maxPhases guard must fire.
	g := workload.CycleGraph(4, 16)
	forever := func(v graph.Vertex, q *core.Query) (int, bool) { return 0, false }
	qs := workload.WalkQueries(10, 1<<30, g.N(), rand.New(rand.NewSource(53)))
	m := mesh.New(8)
	in := core.NewInstance(m, g, qs, forever)
	defer func() {
		if recover() == nil {
			t.Fatal("non-termination not caught")
		}
	}()
	core.MultisearchAlpha(m.Root(), in, 16, 5)
}

func TestSynchronousMaxStepsGuard(t *testing.T) {
	g := workload.CycleGraph(4, 16)
	forever := func(v graph.Vertex, q *core.Query) (int, bool) { return 0, false }
	qs := workload.WalkQueries(10, 1<<30, g.N(), rand.New(rand.NewSource(54)))
	m := mesh.New(8)
	in := core.NewInstance(m, g, qs, forever)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway synchronous search not caught")
		}
	}()
	core.SynchronousMultisearch(m.Root(), in, 7)
}

func TestHDagRejectsLevelViolatingGraph(t *testing.T) {
	// A graph with a back arc (level 5 → root) violates the
	// hierarchical-DAG contract: queries caught in the loop cannot finish
	// within the level-paced schedule, and the post-run check must panic.
	d := graph.CompleteTreeHDag(2, 6)
	d.Verts[d.LevelStart[5]].Adj[0] = d.Root()
	m := mesh.New(16)
	plan, err := core.PlanHDag(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Key 0 descends the leftmost path straight into the back arc.
	qs := make([]core.Query, 4)
	for i := range qs {
		qs[i].Cur = d.Root()
	}
	in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
	defer func() {
		if recover() == nil {
			t.Fatal("level-violating graph accepted")
		}
	}()
	core.MultisearchHDag(m.Root(), in, plan)
}

func TestVisitBookkeeping(t *testing.T) {
	tr, _ := buildAlphaTree(8, 4)
	var q core.Query
	q.Cur = tr.Root()
	core.Visit(workload.KeySearchSuccessor, tr.Verts[tr.Root()], &q)
	if q.Steps != 1 || q.Done || q.CurLevel != 1 {
		t.Fatalf("after visit: %+v", q)
	}
	// Visit a leaf: Done with cleared position.
	leaf := tr.Verts[tr.N()-1]
	core.Visit(workload.KeySearchSuccessor, leaf, &q)
	if !q.Done || q.Cur != graph.Nil || q.CurPart != graph.NoPart || q.CurLevel != -1 {
		t.Fatalf("after leaf visit: %+v", q)
	}
}
