package core
