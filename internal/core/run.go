package core

import (
	"fmt"
	"runtime/debug"

	"repro/internal/mesh"
)

// Run is the panic-containment boundary for mesh algorithm executions. The
// mesh layer signals abnormal termination — step-budget overruns, context
// cancellation, audit violations, contained submesh panics, and plain
// programming errors (out-of-range View.Global, bad Partition, arena
// misuse) — by panicking, because the machine model has no error plumbing.
// Run recovers whatever escapes fn and converts it into a *RunError, so
// callers above the boundary (the bench harness, meshbench, library users)
// handle ordinary errors and no algorithm failure can take the process
// down.
//
// fn's own non-nil error return is wrapped identically, so callers have a
// single error shape to inspect with errors.As (the typed mesh faults are
// reachable through Unwrap).
func Run(label string, fn func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		re := &RunError{Label: label}
		switch v := r.(type) {
		case *mesh.PanicError:
			// Already carries the inner stack from the submesh goroutine.
			re.Err, re.Stack = v, v.Stack
		case error:
			re.Err, re.Stack = v, debug.Stack()
		default:
			re.Err, re.Stack = fmt.Errorf("panic: %v", v), debug.Stack()
		}
		err = re
	}()
	if e := fn(); e != nil {
		return &RunError{Label: label, Err: e}
	}
	return nil
}

// RunError reports a failed Run: the labelled execution and the underlying
// fault. Stack is the panic stack when the failure was a contained panic,
// nil for an ordinary error return.
type RunError struct {
	Label string
	Err   error
	Stack []byte
}

func (e *RunError) Error() string {
	return fmt.Sprintf("run %q failed: %v", e.Label, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }
