package core

import (
	"context"
	"errors"

	"repro/internal/mesh"
)

// FaultClass names the root cause of a failed Run, recovered from the
// *RunError unwrap chain. The serving layer's recovery ladder keys its
// policy off this classification: transient faults are re-executed,
// deterministic ones go straight to the degraded path (DESIGN.md §3.6).
type FaultClass int

const (
	// FaultNone is the classification of a nil error.
	FaultNone FaultClass = iota
	// FaultAudit is an audit-mode invariant violation (*mesh.AuditError):
	// under fault injection, the detector firing; without it, a simulator
	// bug. Either way the machine state of the run is untrustworthy.
	FaultAudit
	// FaultBudget is a step-budget overrun (*mesh.BudgetExceededError).
	FaultBudget
	// FaultCanceled is a context cancellation (*mesh.CanceledError, or a
	// bare context error that leaked through fn's own return path).
	FaultCanceled
	// FaultPanic is a contained panic: a *mesh.PanicError from a RunParallel
	// submesh body, or any other panic Run recovered (RunError.Stack != nil)
	// that does not unwrap to one of the typed faults above.
	FaultPanic
	// FaultOther is an ordinary error return that matches none of the typed
	// mesh faults.
	FaultOther
)

func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultAudit:
		return "audit"
	case FaultBudget:
		return "budget"
	case FaultCanceled:
		return "canceled"
	case FaultPanic:
		return "panic"
	default:
		return "other"
	}
}

// Classify walks err's unwrap chain and names the root cause. The typed
// mesh faults are checked before the panic envelope on purpose: an audit
// violation that fired inside a RunParallel body surfaces wrapped in a
// *mesh.PanicError, and the violation — not the panic transport — is the
// cause a recovery policy should act on.
func Classify(err error) FaultClass {
	if err == nil {
		return FaultNone
	}
	var ae *mesh.AuditError
	if errors.As(err, &ae) {
		return FaultAudit
	}
	var be *mesh.BudgetExceededError
	if errors.As(err, &be) {
		return FaultBudget
	}
	var ce *mesh.CanceledError
	if errors.As(err, &ce) {
		return FaultCanceled
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return FaultCanceled
	}
	var pe *mesh.PanicError
	if errors.As(err, &pe) {
		return FaultPanic
	}
	var re *RunError
	if errors.As(err, &re) && re.Stack != nil {
		return FaultPanic
	}
	return FaultOther
}

// Retryable reports whether re-executing the failed run can plausibly
// succeed. Audit violations, contained panics and unclassified errors are
// transient under the fault model (a lying comparator or a corrupted cell
// need not recur). A budget overrun is deterministic in the batch — audit
// checks charge no steps, so a re-execution replays the same clock and
// overruns again — and a cancellation means the run's context is gone for
// good; both go straight to the degraded path.
func (c FaultClass) Retryable() bool {
	switch c {
	case FaultAudit, FaultPanic, FaultOther:
		return true
	default:
		return false
	}
}
