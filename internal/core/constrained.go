package core

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// This file implements Procedure Constrained-Multisearch(Ψ, δ) of §4.4.
//
// Ψ is the installed splitting (Primary or Secondary): the subgraphs G_i
// are the parts, identified by the part indices carried on vertices and
// mirrored on queries. δ is realized by maxPart: every |G_i| ≤ maxPart, and
// the mesh is tiled into δ-submeshes of cap = slotSide² ≥ maxPart
// processors each.
//
// The seven steps of the paper map to the code as follows:
//
//	1  mark queries whose current vertex lies in some G_i
//	2  Γ_i = ⌈(#marked queries in G_i)/n^δ⌉ via sort + segmented scans
//	3  exit if ΣΓ = 0
//	4  create Γ_i copies of each G_i in δ-submeshes (sort, copy-scan, sort)
//	5  move marked queries to the δ-submeshes, ≤ n^δ per submesh (sort)
//	6  log₂n local advancement rounds inside each δ-submesh (local RARs)
//	7  discard the copies
//
// When ΣΓ exceeds the number of physical δ-submeshes, each submesh
// simulates a constant number of "virtual" δ-submeshes (the paper's proof
// of Lemma 3) — realized here as register layers.

// CMSStats reports the accounting of one Constrained-Multisearch call,
// used by the Lemma 3 experiments (E1, E14).
type CMSStats struct {
	Marked     int   // queries marked in step 1
	TotalGamma int   // ΣΓ — number of subgraph copies created
	CopyVolume int   // ΣΓ_i·|G_i| — total size of all copies (Lemma 3 item (1))
	Layers     int   // virtual δ-submesh layers used
	Advanced   int64 // total query advancement steps performed in step 6
}

// Log2N returns ⌈log₂ size⌉ of the view — the paper's advancement budget
// x = log₂ n per Constrained-Multisearch call.
func Log2N(v mesh.View) int { return bits.Len(uint(v.Size() - 1)) }

// slotPlan is the δ-submesh tiling for a given maximum part size.
type slotPlan struct {
	slotSide int // side of one δ-submesh (power of two)
	grid     int // δ-submeshes per view side
	cap      int // slotSide² = n^δ: node capacity = query capacity per slot
	phys     int // grid² physical δ-submeshes
}

func planSlots(v mesh.View, maxPart int) slotPlan {
	if v.Rows() != v.Cols() {
		panic("core: constrained multisearch requires a square view")
	}
	if maxPart < 1 {
		maxPart = 1
	}
	slotSide := 1
	for slotSide*slotSide < maxPart {
		slotSide *= 2
	}
	if slotSide > v.Rows() {
		panic(fmt.Sprintf("core: part size %d needs a δ-submesh of side %d > mesh side %d",
			maxPart, slotSide, v.Rows()))
	}
	grid := v.Rows() / slotSide
	return slotPlan{slotSide: slotSide, grid: grid, cap: slotSide * slotSide, phys: grid * grid}
}

// cell returns the view-local index of position j inside physical δ-submesh
// phys.
func (p slotPlan) cell(vcols, phys, j int) int {
	subR, subC := phys/p.grid, phys%p.grid
	jR, jC := j/p.slotSide, j%p.slotSide
	return (subR*p.slotSide+jR)*vcols + subC*p.slotSide + jC
}

// ConstrainedMultisearch advances every marked query by up to `steps` search
// steps, stopping early when the query's next vertex leaves its subgraph
// G_i (or its search path ends). maxPart must bound every part size of the
// splitting in `slot`; steps is x = log₂n in the paper (use Log2N(v)).
func ConstrainedMultisearch(v mesh.View, in *Instance, slot graph.Slot, maxPart, steps int) CMSStats {
	defer trace.Span(v, "cms")()
	var st CMSStats
	plan := planSlots(v, maxPart)
	vcols := v.Cols()

	// Step 1: mark queries sitting in some G_i.
	endClassify := trace.Span(v, "classify")
	mesh.Apply(v, in.Queries, func(_ int, q Query) Query {
		q.Mark = q.ID != NoQuery && !q.Done && q.partFor(slot) != graph.NoPart
		return q
	})

	// Step 2: per-part marked-query counts, Γ_i, and slot offsets.
	type qitem struct {
		part, origin int32
		cnt, total   int32 // rank within part (1-based); part total
		off          int32 // inclusive prefix of Γ over parts (incl. own)
	}
	m := v.Size()
	qs := make([]qitem, 0, m)
	for i := 0; i < m; i++ {
		q := mesh.At(v, in.Queries, i)
		if q.Mark {
			qs = append(qs, qitem{part: q.partFor(slot), origin: int32(i), cnt: 1})
		}
	}
	st.Marked = len(qs)
	mesh.SortScratch(v, qs, 1, func(a, b qitem) bool {
		if a.part != b.part {
			return a.part < b.part
		}
		return a.origin < b.origin
	})
	headQ := func(i int) bool { return i == 0 || qs[i].part != qs[i-1].part }
	lastQ := func(i int) bool { return i == len(qs)-1 || qs[i].part != qs[i+1].part }
	mesh.ScanScratch(v, qs, 1, headQ, func(a, b qitem) qitem { b.cnt += a.cnt; return b })
	for i := range qs {
		qs[i].total = qs[i].cnt
	}
	mesh.ScanScratchRev(v, qs, 1, lastQ, func(a, b qitem) qitem { b.total = a.total; return b })
	gammaOf := func(total int32) int32 { return (total + int32(plan.cap) - 1) / int32(plan.cap) }
	for i := range qs {
		if headQ(i) {
			qs[i].off = gammaOf(qs[i].total)
		} else {
			qs[i].off = 0
		}
	}
	mesh.ScanScratch(v, qs, 1, func(i int) bool { return i == 0 },
		func(a, b qitem) qitem { b.off += a.off; return b })

	// Step 3: ΣΓ.
	if len(qs) > 0 {
		st.TotalGamma = int(qs[len(qs)-1].off)
	}
	if st.TotalGamma == 0 {
		v.Charge(1) // the exit test itself
		endClassify()
		return st
	}
	st.Layers = (st.TotalGamma + plan.phys - 1) / plan.phys
	if st.Layers > maxLayers {
		panic(fmt.Sprintf("core: ΣΓ=%d needs %d virtual layers (>%d); splitting is not normalized",
			st.TotalGamma, st.Layers, maxLayers))
	}
	endClassify()

	endExpand := trace.Span(v, "expand")
	// Step 4a: tell every vertex its part's Γ and slot base via a RAR
	// against the part directory (the segment heads of qs).
	type dirEntry struct{ gamma, base int32 }
	var dirParts []int32
	var dirVals []dirEntry
	for i := range qs {
		if headQ(i) {
			g := gammaOf(qs[i].total)
			dirParts = append(dirParts, qs[i].part)
			dirVals = append(dirVals, dirEntry{gamma: g, base: qs[i].off - g})
		}
	}
	nodeGamma := make([]int32, m)
	nodeBase := make([]int32, m)
	mesh.RAR(v,
		func(i int) (int32, dirEntry, bool) {
			if i < len(dirParts) {
				return dirParts[i], dirVals[i], true
			}
			return 0, dirEntry{}, false
		},
		func(i int) (int32, bool) {
			nd := mesh.At(v, in.Nodes, i)
			p := slot.PartOf(&nd)
			return p, nd.ID != graph.Nil && p != graph.NoPart
		},
		func(i int, e dirEntry, found bool) {
			if found {
				nodeGamma[i] = e.gamma
				nodeBase[i] = e.base
			}
		})

	// Step 4b: expand. Copies of record j of G_i are laid out contiguously
	// (positions ebase_i + j·Γ_i + c), so one forward copy-scan creates all
	// of them; a final sort delivers copy c to position j of slot base+c.
	type nitem struct {
		part        int32
		id          graph.VertexID
		cnt, total  int32
		gamma, base int32
		ebase       int64 // inclusive prefix of Γ_p·|G_p| (incl. own part)
		v           graph.Vertex
	}
	ns := make([]nitem, 0, m)
	for i := 0; i < m; i++ {
		if nodeGamma[i] > 0 {
			nd := mesh.At(v, in.Nodes, i)
			ns = append(ns, nitem{
				part: slot.PartOf(&nd), id: nd.ID, cnt: 1,
				gamma: nodeGamma[i], base: nodeBase[i], v: nd,
			})
		}
	}
	mesh.SortScratch(v, ns, 1, func(a, b nitem) bool {
		if a.part != b.part {
			return a.part < b.part
		}
		return a.id < b.id
	})
	headN := func(i int) bool { return i == 0 || ns[i].part != ns[i-1].part }
	lastN := func(i int) bool { return i == len(ns)-1 || ns[i].part != ns[i+1].part }
	mesh.ScanScratch(v, ns, 1, headN, func(a, b nitem) nitem { b.cnt += a.cnt; return b })
	for i := range ns {
		ns[i].total = ns[i].cnt
	}
	mesh.ScanScratchRev(v, ns, 1, lastN, func(a, b nitem) nitem { b.total = a.total; return b })
	for i := range ns {
		if headN(i) {
			ns[i].ebase = int64(ns[i].gamma) * int64(ns[i].total)
		} else {
			ns[i].ebase = 0
		}
	}
	mesh.ScanScratch(v, ns, 1, func(i int) bool { return i == 0 },
		func(a, b nitem) nitem { b.ebase += a.ebase; return b })
	var expTotal int64
	if len(ns) > 0 {
		expTotal = ns[len(ns)-1].ebase
	}
	st.CopyVolume = int(expTotal)
	if expTotal > int64(2*m) {
		panic(fmt.Sprintf("core: copy volume %d exceeds 2n=%d; splitting is not normalized (Lemma 3 item (1))",
			expTotal, 2*m))
	}

	type copyItem struct {
		id          graph.VertexID
		j, c        int32
		gamma, base int32
		v           graph.Vertex
	}
	src := make([]copyItem, len(ns))
	for i, it := range ns {
		j := it.cnt - 1
		if int(j) >= plan.cap {
			panic(fmt.Sprintf("core: part %d has %d vertices > capacity %d (maxPart too small)",
				it.part, it.total, plan.cap))
		}
		src[i] = copyItem{id: it.id, j: j, c: 0, gamma: it.gamma, base: it.base, v: it.v}
	}
	expanded, occupied := mesh.RouteScratch(v, src, int(expTotal), 2, func(i int) int {
		it := ns[i]
		partBase := it.ebase - int64(it.gamma)*int64(it.total)
		return int(partBase + int64(it.cnt-1)*int64(it.gamma))
	})
	mesh.ScanScratch(v, expanded, 2,
		func(i int) bool { return occupied[i] },
		func(a, b copyItem) copyItem { a.c++; return a })

	// Deliver copy c of record j to cell j of slot base+c.
	type placed struct {
		layer, cell int32
		v           graph.Vertex
	}
	place := make([]placed, len(expanded))
	for i, cp := range expanded {
		s := int(cp.base) + int(cp.c)
		place[i] = placed{
			layer: int32(s / plan.phys),
			cell:  int32(plan.cell(vcols, s%plan.phys, int(cp.j))),
			v:     cp.v,
		}
	}
	mesh.Release(in.M, expanded)
	mesh.Release(in.M, occupied)
	mesh.SortScratch(v, place, 2, func(a, b placed) bool {
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		return a.cell < b.cell
	})
	for l := 0; l < st.Layers; l++ {
		copies, staged := in.layer(l)
		mesh.Fill(v, copies, emptyVertex)
		mesh.Fill(v, staged, emptyQuery)
	}
	for _, p := range place {
		copies, _ := in.layer(int(p.layer))
		mesh.Set(v, copies, int(p.cell), p.v)
	}
	v.Charge(1)
	endExpand()

	// Step 5: move marked queries to the δ-submeshes (≤ cap per slot).
	endPlace := trace.Span(v, "place")
	type qplaced struct {
		layer, cell int32
		q           Query
	}
	qp := make([]qplaced, len(qs))
	for i, it := range qs {
		base := it.off - gammaOf(it.total)
		s := int(base) + int(it.cnt-1)/plan.cap
		qp[i] = qplaced{
			layer: int32(s / plan.phys),
			cell:  int32(plan.cell(vcols, s%plan.phys, int(it.cnt-1)%plan.cap)),
			q:     mesh.At(v, in.Queries, int(it.origin)),
		}
	}
	mesh.SortScratch(v, qp, 1, func(a, b qplaced) bool {
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		return a.cell < b.cell
	})
	for _, p := range qp {
		_, staged := in.layer(int(p.layer))
		mesh.Set(v, staged, int(p.cell), p.q)
	}
	v.Charge(1)
	endPlace()

	// Step 6: log₂n advancement rounds inside every δ-submesh, all
	// submeshes in parallel, layers in sequence within a submesh.
	endAdvance := trace.Span(v, "advance")
	subs := v.Partition(plan.grid, plan.grid)
	advanced := make([]int64, len(subs))
	layers := st.Layers
	v.RunParallel(subs, func(si int, sub mesh.View) {
		for l := 0; l < layers; l++ {
			copies, staged := in.layer(l)
			live := mesh.Count(sub, staged, func(q Query) bool { return q.ID != NoQuery && q.Mark })
			for it := 0; it < steps && live > 0; it++ {
				mesh.RAR(sub,
					func(i int) (graph.VertexID, graph.Vertex, bool) {
						nd := mesh.At(sub, copies, i)
						return nd.ID, nd, nd.ID != graph.Nil
					},
					func(i int) (graph.VertexID, bool) {
						q := mesh.At(sub, staged, i)
						return q.Cur, q.ID != NoQuery && q.Mark
					},
					func(i int, nd graph.Vertex, found bool) {
						q := mesh.Ref(sub, staged, i)
						if !found {
							panic(fmt.Sprintf("core: staged query %d missing vertex %d in its δ-submesh copy", q.ID, q.Cur))
						}
						oldPart := q.partFor(slot)
						Visit(in.F, nd, q)
						advanced[si]++
						if q.Done || q.partFor(slot) != oldPart {
							q.Mark = false
							live--
						}
					})
			}
		}
	})
	for _, a := range advanced {
		st.Advanced += a
	}
	endAdvance()

	// Step 7: return queries home (processor index == query ID) and discard
	// the copies.
	endReturn := trace.Span(v, "return")
	for l := 0; l < st.Layers; l++ {
		copies, staged := in.layer(l)
		mesh.RouteTo(v, staged, in.Queries, func(_ int, q Query) (int, bool) {
			return int(q.ID), q.ID != NoQuery
		})
		mesh.Fill(v, staged, emptyQuery)
		mesh.Fill(v, copies, emptyVertex)
	}
	mesh.Apply(v, in.Queries, func(_ int, q Query) Query {
		q.Mark = false
		return q
	})
	endReturn()
	return st
}
