package polyhedron

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
)

// LineStab answers vertical-line / polyhedron intersection queries
// (Theorem 8.1's line–polyhedron family, specialized to a fixed line
// direction): the line {(x,y)}×R intersects the convex polyhedron P iff
// (x,y) lies in the xy-shadow of P, the 2-D convex hull of the projected
// hull vertices. The shadow is fan-decomposed from its first hull vertex
// and the wedges are arranged in a balanced directed binary tree routed by
// Orient2D against the fan rays — an α-partitionable search served by
// MultisearchAlpha (Theorem 5), exactly like the dictionary tree.
type LineStab struct {
	G      *graph.Graph
	Root   graph.VertexID
	Hull   []geom.Point2 // shadow hull, CCW
	Height int
	Depth  []int32
}

// LineStab payload layout: internal nodes carry the fan apex and the
// routing ray endpoint; leaves carry their whole wedge triangle plus the
// sector index.
const (
	lsAX     = 0 // apex h0 (internal and leaf)
	lsAY     = 1
	lsBX     = 2 // internal: routing vertex h[mid]; leaf: h[i]
	lsBY     = 3
	lsCX     = 4 // leaf: h[i+1]
	lsCY     = 5
	lsSector = 6 // leaf: sector index i
	lsLeaf   = 7 // 1 if leaf
)

// LineStab query state layout.
const (
	StabStateX = 0
	StabStateY = 1
	// StabStateHit is 1 if the vertical line intersects the polyhedron.
	StabStateHit = 2
	// StabStateSector receives the wedge index the descent ended in.
	StabStateSector = 3
	stabStateDigest = 4
)

// NewLineStab fan-decomposes the xy-shadow of p and builds the wedge tree.
// IDs are assigned level-major from the root so the depth-cut splitter
// applies unchanged.
func NewLineStab(p *geom.Polyhedron) (*LineStab, error) {
	pts2 := make([]geom.Point2, len(p.Verts))
	for i, v := range p.Verts {
		pts2[i] = geom.Point2{X: p.Pts[v].X, Y: p.Pts[v].Y}
	}
	hullIdx := geom.ConvexHull2D(pts2)
	if len(hullIdx) < 3 {
		return nil, fmt.Errorf("polyhedron: xy-shadow degenerates to %d points", len(hullIdx))
	}
	hull := make([]geom.Point2, len(hullIdx))
	for i, id := range hullIdx {
		hull[i] = pts2[id]
	}
	m := len(hull)
	// Sector i = triangle (h0, h[i], h[i+1]) for i ∈ [1, m-1).
	// BFS over sector ranges: popping in ID order with children appended in
	// order yields level-contiguous IDs (root = 0).
	type span struct{ lo, hi int }
	nodes := []span{{1, m - 1}}
	kids := [][2]int{{-1, -1}}
	depth := []int32{0}
	height := 0
	for i := 0; i < len(nodes); i++ {
		s := nodes[i]
		if s.hi-s.lo <= 1 {
			continue
		}
		mid := (s.lo + s.hi) / 2
		l, r := len(nodes), len(nodes)+1
		nodes = append(nodes, span{s.lo, mid}, span{mid, s.hi})
		kids[i] = [2]int{l, r}
		kids = append(kids, [2]int{-1, -1}, [2]int{-1, -1})
		d := depth[i] + 1
		depth = append(depth, d, d)
		if int(d) > height {
			height = int(d)
		}
	}

	g := graph.New(len(nodes), true)
	ls := &LineStab{G: g, Root: 0, Hull: hull, Height: height, Depth: depth}
	for i, s := range nodes {
		v := &g.Verts[i]
		v.Level = depth[i]
		v.Data[lsAX], v.Data[lsAY] = hull[0].X, hull[0].Y
		if kids[i][0] < 0 { // leaf wedge
			v.Data[lsBX], v.Data[lsBY] = hull[s.lo].X, hull[s.lo].Y
			v.Data[lsCX], v.Data[lsCY] = hull[s.lo+1].X, hull[s.lo+1].Y
			v.Data[lsSector] = int64(s.lo)
			v.Data[lsLeaf] = 1
			continue
		}
		mid := (s.lo + s.hi) / 2
		v.Data[lsBX], v.Data[lsBY] = hull[mid].X, hull[mid].Y
		g.AddArc(graph.VertexID(i), graph.VertexID(kids[i][0]))
		g.AddArc(graph.VertexID(i), graph.VertexID(kids[i][1]))
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return ls, nil
}

// InstallSplitter installs a normalized α-splitting (depth cut at half
// height) and returns the part-size bound for MultisearchAlpha.
func (ls *LineStab) InstallSplitter() int {
	cut := (ls.Height + 1) / 2
	if cut < 1 {
		cut = 1
	}
	if cut > ls.Height {
		cut = ls.Height
	}
	s := graph.InstallDepthSplitter(ls.G, ls.Root, ls.Depth, cut, graph.Primary)
	if s.K*s.MaxPart > 2*ls.G.N() {
		s = graph.NormalizeParts(ls.G, s, s.MaxPart, func(p int32) int {
			if p == 0 {
				return 0
			}
			return 1
		})
	}
	return s.MaxPart
}

// StabSuccessor drives one stabbing query step: internal nodes route by
// orientation against the fan ray apex→h[mid] (left of the ray means a
// higher wedge); leaf wedges decide with the inclusive triangle test, which
// agrees with geom.PointInConvexCCW on the shadow for every point — wedge
// triangles tile the hull and points behind the apex fail the leaf test.
func StabSuccessor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[stabStateDigest] = q.State[stabStateDigest]*1000003 + int64(v.ID) + 1
	p := geom.Point2{X: q.State[StabStateX], Y: q.State[StabStateY]}
	a := geom.Point2{X: v.Data[lsAX], Y: v.Data[lsAY]}
	b := geom.Point2{X: v.Data[lsBX], Y: v.Data[lsBY]}
	if v.Data[lsLeaf] == 1 {
		c := geom.Point2{X: v.Data[lsCX], Y: v.Data[lsCY]}
		if geom.InTriangle(p, a, b, c) {
			q.State[StabStateHit] = 1
		}
		q.State[StabStateSector] = v.Data[lsSector]
		return 0, true
	}
	if geom.Orient2D(a, b, p) > 0 {
		return 1, false
	}
	return 0, false
}

// NewStabQueries builds stabbing queries for the vertical lines through the
// given xy-points, starting at the tree root.
func (ls *LineStab) NewStabQueries(points []geom.Point2) []core.Query {
	qs := make([]core.Query, len(points))
	for i, p := range points {
		qs[i].Cur = ls.Root
		qs[i].State[StabStateX] = p.X
		qs[i].State[StabStateY] = p.Y
		qs[i].State[StabStateSector] = -1
	}
	return qs
}

// Stabbed reports whether a finished query's line intersects the polyhedron.
func Stabbed(q core.Query) bool { return q.State[StabStateHit] == 1 }

// StabSector extracts the wedge index the descent ended in.
func StabSector(q core.Query) int64 { return q.State[StabStateSector] }

// BruteStab is the independent sequential oracle: point-in-convex-polygon
// against the shadow hull, no tree involved.
func (ls *LineStab) BruteStab(p geom.Point2) bool {
	return geom.PointInConvexCCW(ls.Hull, p)
}
