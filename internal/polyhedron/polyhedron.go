// Package polyhedron implements the hierarchical representation of convex
// polyhedra (Dobkin–Kirkpatrick) used by §5 and Theorem 8: a sequence of
// nested hulls P = S_0 ⊃ S_1 ⊃ … ⊃ S_m obtained by repeatedly removing an
// independent set of low-degree vertices, turned into a constant-degree
// search DAG over which extreme-vertex ("multiple tangent plane
// determination") queries descend with O(1) work per level.
//
// The DK refinement lemma drives the successor: if v is the extreme vertex
// of S_s in direction d, the extreme vertex of the finer S_{s-1} is either
// v or one of the removed vertices adjacent to v in S_{s-1}. Each DAG node
// therefore links to exactly those candidates, and carries their
// coordinates in its extended payload so the query picks the argmax
// locally.
//
// Separation of two polyhedra (Theorem 8.2) is reduced to batched extreme
// queries over candidate directions (face normals and edge-pair cross
// products — the exact polytope separating-axis set); see separation.go.
package polyhedron

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
)

// fanoutCap bounds how many removed vertices may name one survivor as
// neighbour, keeping DAG out-degree ≤ 1 (self) + fanoutCap ≤ MaxDegree.
const fanoutCap = graph.MaxDegree - 1

// topMax is the coarsening target: the coarsest hull has at most topMax
// vertices, all children of the artificial root (≤ MaxDegree).
const topMax = graph.MaxDegree

// Hierarchy is the DK search DAG of one convex polyhedron.
type Hierarchy struct {
	Dag    *graph.HDag
	Poly   *geom.Polyhedron
	Levels int // DAG levels including the artificial root
	Stages int // hull stages
}

// Payload layout.
const (
	dataX = iota
	dataY
	dataZ
	dataHullIdx // index of the vertex in Poly.Pts; -1 at the root
)

// Query state layout.
const (
	StateDX = 0
	StateDY = 1
	StateDZ = 2
	// StateAnswer receives the extreme vertex's hull index.
	StateAnswer = 3
)

type stage struct {
	verts []int32           // hull vertex indices present in this stage
	adj   map[int32][]int32 // 1-skeleton of this stage
	// cand[v] = removed vertices of the next finer stage adjacent to v
	// there (filled during coarsening).
	cand map[int32][]int32
}

// Build constructs the hierarchy of the polyhedron.
func Build(p *geom.Polyhedron) (*Hierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("polyhedron: invalid input hull: %w", err)
	}
	cur := &stage{verts: append([]int32{}, p.Verts...), adj: p.Neighbors()}
	stages := []*stage{cur}
	for len(cur.verts) > topMax {
		next, err := coarsenHull(p.Pts, cur)
		if err != nil {
			return nil, err
		}
		if len(next.verts) >= len(cur.verts) {
			return nil, fmt.Errorf("polyhedron: coarsening stalled at %d vertices", len(cur.verts))
		}
		stages = append(stages, next)
		cur = next
	}
	return assemble(p, stages)
}

// coarsenHull removes a fanout-capped independent set of low-degree
// vertices from the stage and rebuilds the hull of the survivors. The
// removed vertices are recorded as candidates on their neighbours.
func coarsenHull(pts []geom.Point3, cur *stage) (*stage, error) {
	order := append([]int32{}, cur.verts...)
	sort.Slice(order, func(i, j int) bool {
		if len(cur.adj[order[i]]) != len(cur.adj[order[j]]) {
			return len(cur.adj[order[i]]) < len(cur.adj[order[j]])
		}
		return order[i] < order[j]
	})
	blocked := map[int32]bool{}
	fanout := map[int32]int{}
	cur.cand = map[int32][]int32{}
	removed := map[int32]bool{}
	budget := len(cur.verts) - 4 // always keep a tetrahedron's worth
	for _, v := range order {
		if budget == 0 {
			break
		}
		ns := cur.adj[v]
		if len(ns) > graph.MaxDegree || blocked[v] {
			continue
		}
		ok := true
		for _, u := range ns {
			if fanout[u] >= fanoutCap {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		removed[v] = true
		budget--
		for _, u := range ns {
			blocked[u] = true
			fanout[u]++
			cur.cand[u] = append(cur.cand[u], v)
		}
		blocked[v] = true
	}
	if len(removed) == 0 {
		return nil, fmt.Errorf("polyhedron: no removable vertex among %d", len(cur.verts))
	}
	var keep []int32
	for _, v := range cur.verts {
		if !removed[v] {
			keep = append(keep, v)
		}
	}
	// Rebuild the hull of the survivors to get the coarser 1-skeleton.
	sub := make([]geom.Point3, len(keep))
	for i, v := range keep {
		sub[i] = pts[v]
	}
	hull, err := geom.ConvexHull3D(sub)
	if err != nil {
		return nil, fmt.Errorf("polyhedron: coarse hull: %w", err)
	}
	adj := map[int32][]int32{}
	for local, ns := range hull.Neighbors() {
		orig := keep[local]
		for _, u := range ns {
			adj[orig] = append(adj[orig], keep[u])
		}
	}
	// Every survivor stays a hull vertex: the input polyhedron's vertices
	// are in convex position, so each is extreme in any subset. A survivor
	// swallowed by the coarse hull would break the DK refinement lemma.
	if len(hull.Verts) != len(keep) {
		return nil, fmt.Errorf("polyhedron: %d survivors but %d coarse hull vertices (input vertices not in convex position?)",
			len(keep), len(hull.Verts))
	}
	verts := make([]int32, 0, len(keep))
	for _, local := range hull.Verts {
		verts = append(verts, keep[local])
	}
	sortInt32(verts)
	return &stage{verts: verts, adj: adj}, nil
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// assemble builds the leveled DAG: level 0 = artificial root, level 1 =
// coarsest hull vertices, level Levels-1 = the input hull's vertices.
func assemble(p *geom.Polyhedron, stages []*stage) (*Hierarchy, error) {
	m := len(stages) - 1 // coarsest stage index
	levels := m + 2      // +1 root, stages m..0 at levels 1..m+1
	sizes := make([]int, levels)
	start := make([]int, levels)
	sizes[0] = 1
	n := 1
	start[0] = 0
	for i := 1; i < levels; i++ {
		sizes[i] = len(stages[m-(i-1)].verts)
		start[i] = n
		n += sizes[i]
	}
	g := graph.New(n, true)
	// nodeAt[level-1][hullVertex] = DAG id (levels ≥ 1).
	nodeAt := make([]map[int32]graph.VertexID, levels)
	for i := 1; i < levels; i++ {
		nodeAt[i] = map[int32]graph.VertexID{}
		st := stages[m-(i-1)]
		for j, hv := range st.verts {
			id := graph.VertexID(start[i] + j)
			nodeAt[i][hv] = id
			v := &g.Verts[id]
			v.Level = int32(i)
			v.Data[dataX] = p.Pts[hv].X
			v.Data[dataY] = p.Pts[hv].Y
			v.Data[dataZ] = p.Pts[hv].Z
			v.Data[dataHullIdx] = int64(hv)
		}
	}
	// Root.
	root := &g.Verts[0]
	root.Level = 0
	root.Data[dataHullIdx] = -1
	topStage := stages[m]
	ext := make([]int64, 0, 3*len(topStage.verts))
	for _, hv := range topStage.verts {
		g.AddArc(0, nodeAt[1][hv])
		ext = append(ext, p.Pts[hv].X, p.Pts[hv].Y, p.Pts[hv].Z)
	}
	root.ExtIdx = g.AddExt(ext)
	// Stage transitions: level i (stage s = m-i+1) → level i+1 (stage s-1).
	// The candidate lists live on the finer stage: coarsenHull(stages[j])
	// recorded them on stages[j] while producing stages[j+1].
	for i := 1; i < levels-1; i++ {
		st := stages[m-(i-1)]
		finer := stages[m-i]
		for _, hv := range st.verts {
			id := nodeAt[i][hv]
			v := &g.Verts[id]
			cands := append([]int32{hv}, finer.cand[hv]...)
			if len(cands) > graph.MaxDegree {
				return nil, fmt.Errorf("polyhedron: vertex %d has %d candidates", hv, len(cands))
			}
			ext := make([]int64, 0, 3*len(cands))
			for _, c := range cands {
				child, ok := nodeAt[i+1][c]
				if !ok {
					return nil, fmt.Errorf("polyhedron: candidate %d missing at level %d", c, i+1)
				}
				g.AddArc(id, child)
				ext = append(ext, p.Pts[c].X, p.Pts[c].Y, p.Pts[c].Z)
			}
			v.ExtIdx = g.AddExt(ext)
		}
	}
	mu := math.Exp(math.Log(math.Max(2, float64(sizes[levels-1]))) / math.Max(1, float64(levels-1)))
	if mu <= 1.01 {
		mu = 1.01
	}
	d := &graph.HDag{Graph: g, Mu: mu, LevelSizes: sizes, LevelStart: start}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{Dag: d, Poly: p, Levels: levels, Stages: len(stages)}, nil
}

// Successor drives one extreme-vertex query: descend into the candidate
// with the maximum dot product against the query direction (ties broken by
// lexicographically larger coordinates — any fixed rule works, it only has
// to be deterministic).
func (h *Hierarchy) Successor() core.Successor {
	g := h.Dag.Graph
	return func(v graph.Vertex, q *core.Query) (int, bool) {
		if v.Deg == 0 {
			q.State[StateAnswer] = v.Data[dataHullIdx]
			return 0, true
		}
		d := geom.Point3{X: q.State[StateDX], Y: q.State[StateDY], Z: q.State[StateDZ]}
		ext := g.ExtOf(&v)
		best := 0
		bestPt := geom.Point3{X: ext[0], Y: ext[1], Z: ext[2]}
		bestDot := geom.Dot3(d, bestPt)
		for j := 1; j < int(v.Deg); j++ {
			pt := geom.Point3{X: ext[3*j], Y: ext[3*j+1], Z: ext[3*j+2]}
			dot := geom.Dot3(d, pt)
			if dot > bestDot || (dot == bestDot && lexGreater(pt, bestPt)) {
				best, bestPt, bestDot = j, pt, dot
			}
		}
		return best, false
	}
}

func lexGreater(a, b geom.Point3) bool {
	if a.X != b.X {
		return a.X > b.X
	}
	if a.Y != b.Y {
		return a.Y > b.Y
	}
	return a.Z > b.Z
}

// NewQueries builds extreme-vertex queries for the given directions,
// starting at the DAG root. Direction coordinates must keep dot products in
// int64: |d| ≤ 2^32 is safe with MaxCoord points.
func (h *Hierarchy) NewQueries(dirs []geom.Point3) []core.Query {
	qs := make([]core.Query, len(dirs))
	for i, d := range dirs {
		qs[i].Cur = h.Dag.Root()
		qs[i].State[StateDX] = d.X
		qs[i].State[StateDY] = d.Y
		qs[i].State[StateDZ] = d.Z
		qs[i].State[StateAnswer] = -1
	}
	return qs
}

// Answer extracts the extreme vertex index from a finished query.
func Answer(q core.Query) int32 { return int32(q.State[StateAnswer]) }

// TangentPlane returns the supporting plane of the answer vertex for
// direction d: the plane {x : d·x = d·v} touches the polyhedron at v with
// the whole hull on the non-positive side.
func (h *Hierarchy) TangentPlane(d geom.Point3, q core.Query) (normal geom.Point3, offset int64) {
	v := h.Poly.Pts[Answer(q)]
	return d, geom.Dot3(d, v)
}
