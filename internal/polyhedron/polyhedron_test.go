package polyhedron_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/polyhedron"
)

func buildHierarchy(t *testing.T, n int, seed int64) *polyhedron.Hierarchy {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.RandomSpherePoints(n, 1<<20, rng)
	p, err := geom.ConvexHull3D(pts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := polyhedron.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomDirs(m int, rng *rand.Rand) []geom.Point3 {
	dirs := make([]geom.Point3, m)
	for i := range dirs {
		for dirs[i] == (geom.Point3{}) {
			dirs[i] = geom.Point3{
				X: rng.Int63n(1<<20) - 1<<19,
				Y: rng.Int63n(1<<20) - 1<<19,
				Z: rng.Int63n(1<<20) - 1<<19,
			}
		}
	}
	return dirs
}

func TestHierarchyShape(t *testing.T) {
	h := buildHierarchy(t, 300, 1)
	d := h.Dag
	if d.LevelSizes[0] != 1 {
		t.Fatal("root level")
	}
	// Geometric growth: total DAG size O(n).
	if d.N() > 8*len(h.Poly.Verts) {
		t.Fatalf("DAG size %d vs %d hull vertices", d.N(), len(h.Poly.Verts))
	}
	if err := d.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Levels logarithmic-ish.
	lg := 1
	for x := len(h.Poly.Verts); x > 1; x /= 2 {
		lg++
	}
	if h.Levels > 8*lg {
		t.Fatalf("%d levels for %d vertices", h.Levels, len(h.Poly.Verts))
	}
}

func TestExtremeQueriesMatchBruteForce(t *testing.T) {
	for _, n := range []int{20, 100, 500} {
		h := buildHierarchy(t, n, int64(n))
		rng := rand.New(rand.NewSource(int64(n) + 7))
		dirs := randomDirs(300, rng)
		qs := h.NewQueries(dirs)
		out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
		for i, q := range out {
			if !q.Done {
				t.Fatalf("n=%d query %d unfinished", n, i)
			}
			got := polyhedron.Answer(q)
			want := h.Poly.Extreme(dirs[i])
			gd := geom.Dot3(dirs[i], h.Poly.Pts[got])
			wd := geom.Dot3(dirs[i], h.Poly.Pts[want])
			if gd != wd {
				t.Fatalf("n=%d dir %v: descent found %d (dot %d), brute %d (dot %d)",
					n, dirs[i], got, gd, want, wd)
			}
		}
	}
}

func TestExtremeAxisDirections(t *testing.T) {
	// Degenerate directions (axis-aligned, likely dot ties).
	h := buildHierarchy(t, 150, 9)
	var dirs []geom.Point3
	for _, s := range []int64{1, -1} {
		dirs = append(dirs, geom.Point3{X: s}, geom.Point3{Y: s}, geom.Point3{Z: s})
	}
	qs := h.NewQueries(dirs)
	out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	for i, q := range out {
		gd := geom.Dot3(dirs[i], h.Poly.Pts[polyhedron.Answer(q)])
		wd := geom.Dot3(dirs[i], h.Poly.Pts[h.Poly.Extreme(dirs[i])])
		if gd != wd {
			t.Fatalf("dir %v: dot %d want %d", dirs[i], gd, wd)
		}
	}
}

func TestExtremeQueriesOnMesh(t *testing.T) {
	h := buildHierarchy(t, 400, 11)
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	m := mesh.New(side)
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	dirs := randomDirs(side*side/2, rng)
	qs := h.NewQueries(dirs)
	want := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	in := core.NewInstance(m, h.Dag.Graph, qs, h.Successor())
	core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestTangentPlaneSupportsHull(t *testing.T) {
	h := buildHierarchy(t, 120, 13)
	rng := rand.New(rand.NewSource(14))
	dirs := randomDirs(50, rng)
	qs := h.NewQueries(dirs)
	out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	for i, q := range out {
		normal, off := h.TangentPlane(dirs[i], q)
		for _, v := range h.Poly.Verts {
			if geom.Dot3(normal, h.Poly.Pts[v]) > off {
				t.Fatalf("dir %v: vertex %d above the tangent plane", dirs[i], v)
			}
		}
	}
}

func translate(pts []geom.Point3, d geom.Point3) []geom.Point3 {
	out := make([]geom.Point3, len(pts))
	for i, p := range pts {
		out[i] = geom.Point3{X: p.X + d.X, Y: p.Y + d.Y, Z: p.Z + d.Z}
	}
	return out
}

func TestSeparationDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := geom.RandomSpherePoints(80, 1<<18, rng)
	b := translate(geom.RandomSpherePoints(80, 1<<18, rng), geom.Point3{X: 5 << 18})
	hp := mustHierarchy(t, a)
	hq := mustHierarchy(t, b)
	axes := polyhedron.CandidateAxes(hp.Poly, hq.Poly, 50, rng)
	res := polyhedron.Separate(hp, hq, axes, nil, nil)
	if !res.Separated {
		t.Fatal("disjoint hulls not separated")
	}
	// Certify the witness axis exactly.
	d := res.Axis
	maxP := geom.Dot3(d, hp.Poly.Pts[hp.Poly.Extreme(d)])
	minQ := -geom.Dot3(geom.Point3{X: -d.X, Y: -d.Y, Z: -d.Z},
		hq.Poly.Pts[hq.Poly.Extreme(geom.Point3{X: -d.X, Y: -d.Y, Z: -d.Z})])
	maxQ := geom.Dot3(d, hq.Poly.Pts[hq.Poly.Extreme(d)])
	minP := -geom.Dot3(geom.Point3{X: -d.X, Y: -d.Y, Z: -d.Z},
		hp.Poly.Pts[hp.Poly.Extreme(geom.Point3{X: -d.X, Y: -d.Y, Z: -d.Z})])
	if !(maxP < minQ || maxQ < minP) {
		t.Fatal("witness axis does not certify separation")
	}
}

func TestSeparationOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := geom.RandomSpherePoints(60, 1<<18, rng)
	b := geom.RandomSpherePoints(60, 1<<18, rng) // same center: overlap
	hp := mustHierarchy(t, a)
	hq := mustHierarchy(t, b)
	// Both contain the origin.
	if !polyhedron.ContainsPoint(hp.Poly, geom.Point3{}) || !polyhedron.ContainsPoint(hq.Poly, geom.Point3{}) {
		t.Skip("sphere hulls unexpectedly miss the origin")
	}
	axes := polyhedron.CandidateAxes(hp.Poly, hq.Poly, 100, rng)
	res := polyhedron.Separate(hp, hq, axes, nil, nil)
	if res.Separated {
		t.Fatal("overlapping hulls reported separated")
	}
}

func TestSeparationOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := geom.RandomSpherePoints(100, 1<<18, rng)
	b := translate(geom.RandomSpherePoints(100, 1<<18, rng), geom.Point3{Y: 5 << 18})
	hp := mustHierarchy(t, a)
	hq := mustHierarchy(t, b)
	axes := polyhedron.CandidateAxes(hp.Poly, hq.Poly, 20, rng)
	side := 4
	for side*side < max(hp.Dag.N(), hq.Dag.N()) || side*side < 4*len(axes) {
		side *= 2
	}
	res := polyhedron.Separate(hp, hq, axes, mesh.New(side), mesh.New(side))
	if !res.Separated {
		t.Fatal("disjoint hulls not separated on mesh")
	}
	if res.MeshSteps <= 0 {
		t.Fatal("no mesh cost recorded")
	}
	// Host run agrees.
	host := polyhedron.Separate(hp, hq, axes, nil, nil)
	if host.Separated != res.Separated {
		t.Fatal("host and mesh disagree")
	}
}

func mustHierarchy(t *testing.T, pts []geom.Point3) *polyhedron.Hierarchy {
	t.Helper()
	p, err := geom.ConvexHull3D(pts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := polyhedron.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
