package polyhedron

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// Separation of convex polyhedra (Theorem 8.2) via batched extreme-vertex
// multisearch: for every candidate axis d, P and Q are separated along d
// iff their support intervals [−max(−d), max(d)] are disjoint. The complete
// candidate set for polytopes is the SAT family (face normals of both plus
// edge-pair cross products); CandidateAxes returns face normals and a
// sample of edge pairs, each axis scaled to keep all dot products exact in
// int64. Every "separated" verdict is certified by exact support values;
// "not separated" is exact when the full axis family is used and a
// high-confidence answer otherwise (see EXPERIMENTS.md, E12).

// maxAxisComp bounds axis components so that Dot3 stays within int64
// against MaxCoord points.
const maxAxisComp = int64(1) << 31

// scaleAxis shrinks an axis vector until all components fit maxAxisComp.
// Scaling loses low-order bits (a slightly perturbed axis), which can only
// cause a missed witness, never a false "separated".
func scaleAxis(v geom.Point3) geom.Point3 {
	a := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for a(v.X) >= maxAxisComp || a(v.Y) >= maxAxisComp || a(v.Z) >= maxAxisComp {
		v = geom.Point3{X: v.X >> 1, Y: v.Y >> 1, Z: v.Z >> 1}
	}
	return v
}

// faceNormal returns the outward normal of face f of p.
func faceNormal(p *geom.Polyhedron, f [3]int32) geom.Point3 {
	return geom.Cross3(geom.Sub3(p.Pts[f[1]], p.Pts[f[0]]), geom.Sub3(p.Pts[f[2]], p.Pts[f[0]]))
}

// CandidateAxes returns the deduplicated candidate separating axes: all
// face normals of both polyhedra plus up to extraEdgePairs random edge-pair
// cross products.
func CandidateAxes(p, q *geom.Polyhedron, extraEdgePairs int, rng *rand.Rand) []geom.Point3 {
	seen := map[geom.Point3]bool{}
	var out []geom.Point3
	add := func(v geom.Point3) {
		v = scaleAxis(v)
		if v == (geom.Point3{}) || seen[v] {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	for _, f := range p.Faces {
		add(faceNormal(p, f))
	}
	for _, f := range q.Faces {
		add(faceNormal(q, f))
	}
	edges := func(poly *geom.Polyhedron) [][2]int32 {
		var es [][2]int32
		for _, f := range poly.Faces {
			for e := 0; e < 3; e++ {
				u, v := f[e], f[(e+1)%3]
				if u < v {
					es = append(es, [2]int32{u, v})
				}
			}
		}
		return es
	}
	ep, eq := edges(p), edges(q)
	for t := 0; t < extraEdgePairs && len(ep) > 0 && len(eq) > 0; t++ {
		a := ep[rng.Intn(len(ep))]
		b := eq[rng.Intn(len(eq))]
		add(geom.Cross3(
			geom.Sub3(p.Pts[a[1]], p.Pts[a[0]]),
			geom.Sub3(q.Pts[b[1]], q.Pts[b[0]])))
	}
	return out
}

// SeparationResult reports the outcome of a separation test.
type SeparationResult struct {
	Separated bool
	Axis      geom.Point3 // a certified separating axis when Separated
	Axes      int         // candidate axes examined
	MeshSteps int64       // simulated mesh time (0 for host-side runs)
}

// supports evaluates max over the polyhedron of d·x for every direction in
// dirs, via hierarchy queries. When m is non-nil the batch runs as a
// hierarchical-DAG multisearch on the mesh; otherwise the sequential oracle
// is used.
func supports(h *Hierarchy, dirs []geom.Point3, m *mesh.Mesh) []int64 {
	qs := h.NewQueries(dirs)
	var out []core.Query
	if m == nil {
		out = core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	} else {
		plan, err := core.PlanHDag(h.Dag, m.Side())
		if err != nil {
			panic(err)
		}
		in := core.NewInstance(m, h.Dag.Graph, qs, h.Successor())
		end := trace.Span(m.Root(), "supports[%d dirs]", len(dirs))
		core.MultisearchHDag(m.Root(), in, plan)
		end()
		out = in.ResultQueries()
	}
	vals := make([]int64, len(dirs))
	for i, q := range out {
		vals[i] = geom.Dot3(dirs[i], h.Poly.Pts[Answer(q)])
	}
	return vals
}

// Separate decides separation of the two hierarchies' polyhedra over the
// candidate axes. Pass mesh factories to run the support batches on
// simulated meshes (one per polyhedron); pass nil for host-side evaluation.
func Separate(hp, hq *Hierarchy, axes []geom.Point3, mp, mq *mesh.Mesh) SeparationResult {
	res := SeparationResult{Axes: len(axes)}
	if len(axes) == 0 {
		return res
	}
	// One batch of 2·|axes| directions per polyhedron: d and −d.
	dirs := make([]geom.Point3, 0, 2*len(axes))
	for _, d := range axes {
		dirs = append(dirs, d, geom.Point3{X: -d.X, Y: -d.Y, Z: -d.Z})
	}
	sp := supports(hp, dirs, mp)
	sq := supports(hq, dirs, mq)
	if mp != nil {
		res.MeshSteps += mp.Steps()
	}
	if mq != nil {
		res.MeshSteps += mq.Steps()
	}
	for i, d := range axes {
		maxP, minP := sp[2*i], -sp[2*i+1]
		maxQ, minQ := sq[2*i], -sq[2*i+1]
		if maxP < minQ || maxQ < minP {
			res.Separated = true
			res.Axis = d
			return res
		}
	}
	return res
}

// ContainsPoint reports whether the polyhedron contains x (exact;
// reference for separation ground truth).
func ContainsPoint(p *geom.Polyhedron, x geom.Point3) bool {
	for _, f := range p.Faces {
		if geom.Orient3D(p.Pts[f[0]], p.Pts[f[1]], p.Pts[f[2]], x) > 0 {
			return false
		}
	}
	return true
}
