package pointloc_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/pointloc"
)

func randomPoints(n int, span int64, rng *rand.Rand) []geom.Point2 {
	seen := map[geom.Point2]bool{}
	pts := make([]geom.Point2, 0, n)
	for len(pts) < n {
		p := geom.Point2{X: rng.Int63n(span), Y: rng.Int63n(span)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestBuildHierarchySmall(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}, {X: 5, Y: 3}}
	h, err := pointloc.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dag.LevelSizes[0] != 1 {
		t.Fatalf("root level size %d", h.Dag.LevelSizes[0])
	}
	if err := h.Dag.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevelsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{50, 200, 800} {
		pts := randomPoints(n, 100000, rng)
		h, err := pointloc.Build(pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Kirkpatrick: O(log n) levels. Constant-degree greedy IS removal
		// gives roughly log_{1/(1-c)} regimes; anything under ~8·log₂ n is
		// healthy.
		maxLv := 1
		for x := 2 * n; x > 1; x /= 2 {
			maxLv++
		}
		if h.Levels > 8*maxLv {
			t.Fatalf("n=%d: %d levels (log bound %d)", n, h.Levels, maxLv)
		}
		// Level sizes must shrink monotonically toward the root.
		for i := 1; i < h.Levels; i++ {
			if h.Dag.LevelSizes[i-1] > h.Dag.LevelSizes[i] {
				t.Fatalf("n=%d: level %d size %d > level %d size %d",
					n, i-1, h.Dag.LevelSizes[i-1], i, h.Dag.LevelSizes[i])
			}
		}
	}
}

func TestLocateOracleAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(300, 50000, rng)
	h, err := pointloc.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomPoints(500, 50000, rng)
	qs := h.NewQueries(queries)
	out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	for i, q := range out {
		if !q.Done {
			t.Fatalf("query %d unfinished", i)
		}
		ans := pointloc.Answer(q)
		if !h.Contains(ans, queries[i]) {
			t.Fatalf("query %d: answer triangle %d does not contain %v", i, ans, queries[i])
		}
		if b := h.LocateBrute(queries[i]); b < 0 {
			t.Fatalf("query %d: brute found nothing", i)
		}
	}
}

func TestLocateVerticesAndEdgeMidpoints(t *testing.T) {
	// Degenerate query positions: exactly on triangulation vertices.
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(100, 2000, rng)
	h, err := pointloc.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	qs := h.NewQueries(pts)
	out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	for i, q := range out {
		if !h.Contains(pointloc.Answer(q), pts[i]) {
			t.Fatalf("vertex query %d misplaced", i)
		}
	}
}

func TestBatchedPointLocationOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(400, 100000, rng)
	h, err := pointloc.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	m := mesh.New(side)
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomPoints(side*side/2, 100000, rng)
	qs := h.NewQueries(queries)
	want := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)

	in := core.NewInstance(m, h.Dag.Graph, qs, h.Successor())
	core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	for i, q := range in.ResultQueries() {
		if !h.Contains(pointloc.Answer(q), queries[i]) {
			t.Fatalf("mesh query %d misplaced", i)
		}
	}
}

func TestBuildRejectsHugeSpread(t *testing.T) {
	_, err := pointloc.Build([]geom.Point2{{X: 0, Y: 0}, {X: geom.MaxCoord / 2, Y: 0}, {X: 0, Y: geom.MaxCoord / 2}})
	if err == nil {
		t.Fatal("expected spread rejection")
	}
}
