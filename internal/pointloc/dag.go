package pointloc

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
)

// assemble turns the coarsening stages into the leveled search DAG:
// level 0 = the single super-triangle (last stage), deepest level = the
// input triangulation (stage 0).
func assemble(tr *geom.Triangulation, stages [][]stageTri) (*Hierarchy, error) {
	m := len(stages) - 1
	levels := m + 1
	sizes := make([]int, levels)
	start := make([]int, levels)
	n := 0
	for i := 0; i < levels; i++ {
		sizes[i] = len(stages[m-i])
		start[i] = n
		n += sizes[i]
	}
	g := graph.New(n, true)
	pts := tr.Points
	for lvl := 0; lvl < levels; lvl++ {
		stage := stages[m-lvl]
		for j, st := range stage {
			id := graph.VertexID(start[lvl] + j)
			v := &g.Verts[id]
			v.Level = int32(lvl)
			for c := 0; c < 3; c++ {
				v.Data[dataAX+2*c] = pts[st.t.v[c]].X
				v.Data[dataAY+2*c] = pts[st.t.v[c]].Y
			}
			if lvl == levels-1 {
				v.Data[dataAnswer] = int64(j) // stage 0 order == tr.Tris order
			} else {
				v.Data[dataAnswer] = -1
				ext := make([]int64, 0, 6*len(st.children))
				for _, ci := range st.children {
					child := stages[m-lvl-1][ci]
					g.AddArc(id, graph.VertexID(start[lvl+1]+ci))
					for c := 0; c < 3; c++ {
						ext = append(ext, pts[child.t.v[c]].X, pts[child.t.v[c]].Y)
					}
				}
				v.ExtIdx = g.AddExt(ext)
			}
		}
	}
	mu := math.Exp(math.Log(float64(sizes[levels-1])) / math.Max(1, float64(m)))
	if mu <= 1.01 {
		mu = 1.01
	}
	d := &graph.HDag{Graph: g, Mu: mu, LevelSizes: sizes, LevelStart: start}
	if err := d.Graph.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{Dag: d, Tri: tr, Levels: levels}, nil
}

// Successor returns the point-location search function: at each DAG vertex
// the query descends into the child triangle containing its point, using
// the children's corner coordinates carried in the extended payload.
func (h *Hierarchy) Successor() core.Successor {
	g := h.Dag.Graph
	return func(v graph.Vertex, q *core.Query) (int, bool) {
		q.State[stateDigest] = q.State[stateDigest]*1000003 + int64(v.ID) + 1
		if v.Deg == 0 {
			q.State[StateAnswer] = v.Data[dataAnswer]
			return 0, true
		}
		p := geom.Point2{X: q.State[StateX], Y: q.State[StateY]}
		ext := g.ExtOf(&v)
		for j := 0; j < int(v.Deg); j++ {
			a := geom.Point2{X: ext[j*6+0], Y: ext[j*6+1]}
			b := geom.Point2{X: ext[j*6+2], Y: ext[j*6+3]}
			c := geom.Point2{X: ext[j*6+4], Y: ext[j*6+5]}
			if geom.InTriangle(p, a, b, c) {
				return j, false
			}
		}
		panic(fmt.Sprintf("pointloc: point %v not covered by the children of DAG vertex %d", p, v.ID))
	}
}

// NewQueries builds point-location queries starting at the DAG root. Every
// query point must lie inside the super-triangle (anywhere within the
// original point set's bounding box is safe).
func (h *Hierarchy) NewQueries(points []geom.Point2) []core.Query {
	qs := make([]core.Query, len(points))
	for i, p := range points {
		qs[i].Cur = h.Dag.Root()
		qs[i].State[StateX] = p.X
		qs[i].State[StateY] = p.Y
		qs[i].State[StateAnswer] = -1
	}
	return qs
}

// Answer extracts the located triangle index from a finished query.
func Answer(q core.Query) int { return int(q.State[StateAnswer]) }

// LocateBrute scans all triangles for one containing p (reference).
func (h *Hierarchy) LocateBrute(p geom.Point2) int {
	for i, t := range h.Tri.Tris {
		if geom.InTriangle(p, h.Tri.Points[t[0]], h.Tri.Points[t[1]], h.Tri.Points[t[2]]) {
			return i
		}
	}
	return -1
}

// Contains reports whether triangle idx of the base triangulation contains
// p (used to verify answers without requiring a unique triangle on edges).
func (h *Hierarchy) Contains(idx int, p geom.Point2) bool {
	if idx < 0 || idx >= len(h.Tri.Tris) {
		return false
	}
	t := h.Tri.Tris[idx]
	return geom.InTriangle(p, h.Tri.Points[t[0]], h.Tri.Points[t[1]], h.Tri.Points[t[2]])
}
