// Package pointloc implements the subdivision-hierarchy application of §5:
// Kirkpatrick's planar point-location search DAG [Kir83], built over a
// triangulation and searched in parallel with the hierarchical-DAG
// multisearch of Theorem 2.
//
// Construction (host side, [DK87] notes the parallel version; the paper's
// mesh construction is [DSS88] — here construction is a preprocessing step
// and the multisearch is what runs on the mesh):
//
//  1. The input points are wrapped in a huge super-triangle and the whole
//     set is triangulated (geom.Triangulate).
//  2. Rounds of coarsening: an independent set of non-super vertices of
//     degree ≤ 8 is removed; each star polygon is re-triangulated by ear
//     clipping; every new triangle is linked to the removed triangles it
//     overlaps (exact SAT test).
//  3. The rounds end with the bare super-triangle. DAG level i holds the
//     triangles of coarsening stage (last−i): level 0 is the single
//     super-triangle, the deepest level is the input triangulation.
//     Surviving triangles get per-level copy nodes, keeping every arc
//     between consecutive levels (the hierarchical-DAG shape of §3).
//
// Each DAG vertex carries its triangle in the payload and its children's
// triangles in the extended payload, so a point-location query descends
// with O(1) local work per level.
package pointloc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// maxIndepDegree bounds the degree of removed vertices; it must not exceed
// graph.MaxDegree so that DAG out-degrees (≤ star size) stay within the
// adjacency budget.
const maxIndepDegree = graph.MaxDegree

// Hierarchy is the point-location search DAG.
type Hierarchy struct {
	Dag *graph.HDag
	// Tri is the input triangulation (including the super-triangle wrap);
	// leaf answers are indices into Tri.Tris.
	Tri    *geom.Triangulation
	Levels int
}

// Payload layout: triangle corners (x,y)×3 and the answer index.
const (
	dataAX = iota
	dataAY
	dataBX
	dataBY
	dataCX
	dataCY
	dataAnswer // index into Tri.Tris at the deepest level, else -1
)

// Query state layout.
const (
	StateX = 0
	StateY = 1
	// StateAnswer receives the located triangle index.
	StateAnswer = 2
	stateDigest = 3
)

type tri struct {
	v [3]int32
}

type stageTri struct {
	t        tri
	children []int // indices into the previous (finer) stage
}

// Build wraps pts in a super-triangle, triangulates, and builds the
// hierarchy.
func Build(pts []geom.Point2) (*Hierarchy, error) {
	var minX, minY, maxX, maxY int64 = math.MaxInt64, math.MaxInt64, math.MinInt64, math.MinInt64
	for _, p := range pts {
		geom.CheckCoord(p.X, p.Y)
		minX, minY = min64(minX, p.X), min64(minY, p.Y)
		maxX, maxY = max64(maxX, p.X), max64(maxY, p.Y)
	}
	span := max64(maxX-minX, maxY-minY) + 2
	if span*8 > geom.MaxCoord {
		return nil, fmt.Errorf("pointloc: point spread %d too large for the super-triangle", span)
	}
	// A triangle comfortably containing the bounding box.
	sup := []geom.Point2{
		{X: minX - 4*span, Y: minY - 2*span},
		{X: maxX + 4*span, Y: minY - 2*span},
		{X: (minX + maxX) / 2, Y: maxY + 4*span},
	}
	all := append(append([]geom.Point2{}, pts...), sup...)
	tr, err := geom.Triangulate(all)
	if err != nil {
		return nil, err
	}
	superBase := int32(len(pts))

	// Stage 0 = the full triangulation.
	stages := [][]stageTri{}
	cur := make([]stageTri, len(tr.Tris))
	for i, t := range tr.Tris {
		cur[i] = stageTri{t: tri{t}}
	}
	stages = append(stages, cur)

	for len(cur) > 1 {
		next, err := coarsen(all, cur, superBase)
		if err != nil {
			return nil, err
		}
		if len(next) >= len(cur) {
			return nil, fmt.Errorf("pointloc: coarsening stalled at %d triangles", len(cur))
		}
		stages = append(stages, next)
		cur = next
	}

	return assemble(tr, stages)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// coarsen removes one independent set and returns the next (coarser) stage
// with child links into the current one.
func coarsen(pts []geom.Point2, cur []stageTri, superBase int32) ([]stageTri, error) {
	// Vertex incidences.
	inc := map[int32][]int{}
	var order []int32
	for ti, t := range cur {
		for _, v := range t.t.v {
			if inc[v] == nil {
				order = append(order, v)
			}
			inc[v] = append(inc[v], ti)
		}
	}
	sortInt32(order)
	// Greedy independent set of low-degree non-super vertices (scanned in
	// vertex order for determinism).
	var removed []int32
	blocked := map[int32]bool{}
	for _, v := range order {
		ts := inc[v]
		if v >= superBase || len(ts) > maxIndepDegree || blocked[v] {
			continue
		}
		removed = append(removed, v)
		for _, ti := range ts {
			for _, u := range cur[ti].t.v {
				blocked[u] = true
			}
		}
	}
	if len(removed) == 0 {
		return nil, fmt.Errorf("pointloc: no removable vertex among %d triangles", len(cur))
	}

	var next []stageTri
	usedByHole := make([]bool, len(cur))
	for _, v := range removed {
		star := inc[v]
		for _, ti := range star {
			usedByHole[ti] = true
		}
		hole, err := starPolygon(cur, star, v)
		if err != nil {
			return nil, err
		}
		newTris, err := earClip(pts, hole)
		if err != nil {
			return nil, err
		}
		for _, nt := range newTris {
			st := stageTri{t: nt}
			for _, ti := range star {
				if trianglesOverlap(pts, nt, cur[ti].t) {
					st.children = append(st.children, ti)
				}
			}
			if len(st.children) == 0 || len(st.children) > graph.MaxDegree {
				return nil, fmt.Errorf("pointloc: new triangle links to %d old ones", len(st.children))
			}
			next = append(next, st)
		}
	}
	// Survivors keep a single child link to themselves.
	for ti := range cur {
		if !usedByHole[ti] {
			next = append(next, stageTri{t: cur[ti].t, children: []int{ti}})
		}
	}
	return next, nil
}

// starPolygon returns the boundary cycle of the union of the star triangles
// around the removed vertex v, in CCW order.
func starPolygon(cur []stageTri, star []int, v int32) ([]int32, error) {
	// Each star triangle contributes its edge opposite to v, oriented CCW.
	succ := map[int32]int32{}
	var start int32 = -1
	for _, ti := range star {
		t := cur[ti].t.v
		// Rotate so that t[0] == v.
		var a, b int32
		switch v {
		case t[0]:
			a, b = t[1], t[2]
		case t[1]:
			a, b = t[2], t[0]
		case t[2]:
			a, b = t[0], t[1]
		default:
			return nil, fmt.Errorf("pointloc: star triangle missing its vertex")
		}
		succ[a] = b
		start = a
	}
	cycle := make([]int32, 0, len(star))
	u := start
	for range succ {
		cycle = append(cycle, u)
		nxt, ok := succ[u]
		if !ok {
			return nil, fmt.Errorf("pointloc: star boundary is not a cycle")
		}
		u = nxt
	}
	if u != start || len(cycle) != len(succ) {
		return nil, fmt.Errorf("pointloc: star boundary is not a single cycle")
	}
	return cycle, nil
}

// earClip triangulates a simple polygon given in CCW order (the star
// polygons here are star-shaped, for which ear clipping always succeeds).
func earClip(pts []geom.Point2, poly []int32) ([]tri, error) {
	if len(poly) < 3 {
		return nil, fmt.Errorf("pointloc: polygon with %d vertices", len(poly))
	}
	idx := append([]int32{}, poly...)
	var out []tri
	for len(idx) > 3 {
		clipped := false
		for i := range idx {
			a := idx[(i+len(idx)-1)%len(idx)]
			b := idx[i]
			c := idx[(i+1)%len(idx)]
			if geom.Orient2D(pts[a], pts[b], pts[c]) <= 0 {
				continue // reflex or degenerate corner
			}
			ear := true
			for _, o := range idx {
				if o == a || o == b || o == c {
					continue
				}
				if geom.InTriangle(pts[o], pts[a], pts[b], pts[c]) {
					ear = false
					break
				}
			}
			if !ear {
				continue
			}
			out = append(out, tri{[3]int32{a, b, c}})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			return nil, fmt.Errorf("pointloc: no ear found (polygon not simple?)")
		}
	}
	out = append(out, tri{[3]int32{idx[0], idx[1], idx[2]}})
	return out, nil
}

// trianglesOverlap reports whether two triangles intersect with positive
// area (exact separating-axis test on the 6 directed edges): a CCW edge
// (a,b) separates when every vertex of the other triangle lies on its
// non-positive (outside) side.
func trianglesOverlap(pts []geom.Point2, s, t tri) bool {
	separates := func(a, b geom.Point2, other [3]int32) bool {
		for _, v := range other {
			if geom.Orient2D(a, b, pts[v]) > 0 {
				return false
			}
		}
		return true
	}
	for e := 0; e < 3; e++ {
		if separates(pts[s.v[e]], pts[s.v[(e+1)%3]], t.v) {
			return false
		}
		if separates(pts[t.v[e]], pts[t.v[(e+1)%3]], s.v) {
			return false
		}
	}
	return true
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
