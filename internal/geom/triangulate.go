package geom

import (
	"fmt"
	"sort"
)

// Triangulation is a triangulation of the convex hull of a point set:
// triangles are CCW index triples, pairwise interior-disjoint, covering the
// hull.
type Triangulation struct {
	Points []Point2
	Tris   [][3]int32
}

// Triangulate builds a triangulation of the convex hull of pts by the
// incremental sweep: points are inserted in lexicographic order, each new
// point fanning triangles to the hull edges it sees. Duplicate points are
// rejected. Runs in O(n log n) amortized (each hull vertex is buried once).
func Triangulate(pts []Point2) (*Triangulation, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("geom: triangulation needs ≥ 3 points, got %d", n)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := pts[order[i]], pts[order[j]]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	for i := 1; i < n; i++ {
		if pts[order[i]] == pts[order[i-1]] {
			return nil, fmt.Errorf("geom: duplicate point %v", pts[order[i]])
		}
	}

	t := &Triangulation{Points: pts}
	// Collinear prefix: grow a chain until a non-collinear point arrives.
	chain := []int32{order[0], order[1]}
	k := 2
	for ; k < n; k++ {
		p := order[k]
		if Orient2D(pts[chain[0]], pts[chain[1]], pts[p]) != 0 {
			break
		}
		chain = append(chain, p)
	}
	if k == n {
		return nil, fmt.Errorf("geom: all %d points are collinear", n)
	}
	apex := order[k]
	// Fan from the apex to every chain edge, oriented CCW.
	for i := 0; i+1 < len(chain); i++ {
		a, b := chain[i], chain[i+1]
		if Orient2D(pts[a], pts[b], pts[apex]) > 0 {
			t.Tris = append(t.Tris, [3]int32{a, b, apex})
		} else {
			t.Tris = append(t.Tris, [3]int32{b, a, apex})
		}
	}
	// Hull in CCW order: chain then apex on the correct side.
	var hull []int32
	if Orient2D(pts[chain[0]], pts[chain[len(chain)-1]], pts[apex]) > 0 {
		hull = append(append([]int32{}, chain...), apex)
	} else {
		for i := len(chain) - 1; i >= 0; i-- {
			hull = append(hull, chain[i])
		}
		hull = append(hull, apex)
	}

	// Doubly linked hull with amortized visibility walks from the newest
	// vertex.
	next := make(map[int32]int32, n)
	prev := make(map[int32]int32, n)
	for i := range hull {
		j := (i + 1) % len(hull)
		next[hull[i]] = hull[j]
		prev[hull[j]] = hull[i]
	}
	last := apex
	for k++; k < n; k++ {
		p := order[k]
		// Find the start of the contiguous visible arc: first walk backward
		// until some outgoing edge is visible, then rewind over any earlier
		// visible edges.
		v := last
		for Orient2D(pts[v], pts[next[v]], pts[p]) >= 0 {
			v = prev[v]
		}
		for Orient2D(pts[prev[v]], pts[v], pts[p]) < 0 {
			v = prev[v]
		}
		// v starts the visible arc; triangulate the run [v, ..., w].
		w := v
		for Orient2D(pts[w], pts[next[w]], pts[p]) < 0 {
			t.Tris = append(t.Tris, [3]int32{next[w], w, p})
			w = next[w]
		}
		// Replace the run (v..w) by (v, p, w).
		next[v] = p
		prev[p] = v
		next[p] = w
		prev[w] = p
		last = p
	}
	return t, nil
}

// Hull returns the CCW hull cycle of the triangulation (edges used by
// exactly one triangle).
func (t *Triangulation) Hull() []int32 {
	return ConvexHull2D(t.Points)
}

// Validate checks structural soundness: CCW triangles, every interior edge
// shared by exactly two triangles with opposite orientations, hull edges by
// one, and total area equal to the hull area.
func (t *Triangulation) Validate() error {
	type edge struct{ a, b int32 }
	count := map[edge]int{}
	var area2 int64
	for ti, tr := range t.Tris {
		a, b, c := t.Points[tr[0]], t.Points[tr[1]], t.Points[tr[2]]
		if Orient2D(a, b, c) <= 0 {
			return fmt.Errorf("geom: triangle %d not CCW", ti)
		}
		area2 += (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
		for e := 0; e < 3; e++ {
			u, v := tr[e], tr[(e+1)%3]
			count[edge{u, v}]++
		}
	}
	for e, c := range count {
		rev := count[edge{e.b, e.a}]
		if c != 1 {
			return fmt.Errorf("geom: directed edge %v used %d times", e, c)
		}
		if rev != 0 && rev != 1 {
			return fmt.Errorf("geom: edge %v/%v mismatch", e, edge{e.b, e.a})
		}
	}
	hull := ConvexHull2D(t.Points)
	var hullArea2 int64
	for i := 1; i+1 < len(hull); i++ {
		a, b, c := t.Points[hull[0]], t.Points[hull[i]], t.Points[hull[i+1]]
		hullArea2 += (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	}
	if area2 != hullArea2 {
		return fmt.Errorf("geom: triangulated area %d ≠ hull area %d", area2, hullArea2)
	}
	return nil
}
