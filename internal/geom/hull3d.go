package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Polyhedron is a convex polyhedron: hull faces over a point array, CCW as
// seen from outside.
type Polyhedron struct {
	Pts   []Point3
	Verts []int32    // hull vertex indices (sorted, unique)
	Faces [][3]int32 // outward-oriented faces
}

// ConvexHull3D computes the convex hull of pts by the incremental
// algorithm with exact predicates: for each point, the visible faces are
// removed and the horizon is coned to the new point. Points coplanar with a
// face are treated as not outside it (degenerate inputs yield a hull of a
// subset — still convex and containing all points). O(n·F) time.
func ConvexHull3D(pts []Point3) (*Polyhedron, error) {
	n := len(pts)
	if n < 4 {
		return nil, fmt.Errorf("geom: 3-D hull needs ≥ 4 points, got %d", n)
	}
	// Initial simplex: four affinely independent points.
	i0 := 0
	i1 := -1
	for i := 1; i < n; i++ {
		if pts[i] != pts[i0] {
			i1 = i
			break
		}
	}
	if i1 < 0 {
		return nil, fmt.Errorf("geom: all points identical")
	}
	i2 := -1
	for i := i1 + 1; i < n; i++ {
		c := Cross3(Sub3(pts[i1], pts[i0]), Sub3(pts[i], pts[i0]))
		if c != (Point3{}) {
			i2 = i
			break
		}
	}
	if i2 < 0 {
		return nil, fmt.Errorf("geom: all points collinear")
	}
	i3 := -1
	for i := i2 + 1; i < n; i++ {
		if Orient3D(pts[i0], pts[i1], pts[i2], pts[i]) != 0 {
			i3 = i
			break
		}
	}
	if i3 < 0 {
		return nil, fmt.Errorf("geom: all points coplanar")
	}
	a, b, c, d := int32(i0), int32(i1), int32(i2), int32(i3)
	if Orient3D(pts[a], pts[b], pts[c], pts[d]) > 0 {
		b, c = c, b // make d lie on the negative side of (a,b,c)
	}
	faces := [][3]int32{{a, b, c}, {a, d, b}, {b, d, c}, {c, d, a}}

	used := map[int32]bool{a: true, b: true, c: true, d: true}
	for i := 0; i < n; i++ {
		p := int32(i)
		if used[p] {
			continue
		}
		visible := make([]bool, len(faces))
		any := false
		for fi, f := range faces {
			if Orient3D(pts[f[0]], pts[f[1]], pts[f[2]], pts[p]) > 0 {
				visible[fi] = true
				any = true
			}
		}
		if !any {
			continue // inside (or on) the current hull
		}
		// Horizon: directed edges of non-visible faces whose twin lies in a
		// visible face.
		type edge struct{ u, v int32 }
		inVisible := map[edge]bool{}
		for fi, f := range faces {
			if visible[fi] {
				for e := 0; e < 3; e++ {
					inVisible[edge{f[e], f[(e+1)%3]}] = true
				}
			}
		}
		var next [][3]int32
		for fi, f := range faces {
			if !visible[fi] {
				next = append(next, f)
			}
		}
		for fi, f := range faces {
			if !visible[fi] {
				continue
			}
			for e := 0; e < 3; e++ {
				u, v := f[e], f[(e+1)%3]
				if !inVisible[edge{v, u}] { // twin belongs to a hidden face
					next = append(next, [3]int32{u, v, p})
				}
			}
		}
		faces = next
		used[p] = true
	}

	poly := &Polyhedron{Pts: pts, Faces: faces}
	onHull := map[int32]bool{}
	for _, f := range faces {
		onHull[f[0]] = true
		onHull[f[1]] = true
		onHull[f[2]] = true
	}
	for v := range onHull {
		poly.Verts = append(poly.Verts, v)
	}
	sortInt32(poly.Verts)
	return poly, nil
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Validate checks convexity (no input point strictly outside any face),
// edge pairing (every directed edge has exactly one twin), and Euler's
// formula.
func (p *Polyhedron) Validate() error {
	type edge struct{ u, v int32 }
	edges := map[edge]int{}
	for _, f := range p.Faces {
		if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
			return fmt.Errorf("geom: degenerate face %v", f)
		}
		for e := 0; e < 3; e++ {
			edges[edge{f[e], f[(e+1)%3]}]++
		}
	}
	und := map[edge]int{}
	for e, c := range edges {
		if c != 1 {
			return fmt.Errorf("geom: directed edge %v in %d faces", e, c)
		}
		if edges[edge{e.v, e.u}] != 1 {
			return fmt.Errorf("geom: edge %v missing twin", e)
		}
		u, v := e.u, e.v
		if u > v {
			u, v = v, u
		}
		und[edge{u, v}]++
	}
	v, ee, f := len(p.Verts), len(und), len(p.Faces)
	if v-ee+f != 2 {
		return fmt.Errorf("geom: Euler V−E+F = %d−%d+%d ≠ 2", v, ee, f)
	}
	for _, face := range p.Faces {
		for i := range p.Pts {
			if Orient3D(p.Pts[face[0]], p.Pts[face[1]], p.Pts[face[2]], p.Pts[i]) > 0 {
				return fmt.Errorf("geom: point %d outside face %v", i, face)
			}
		}
	}
	return nil
}

// Neighbors returns the 1-skeleton adjacency lists, keyed by vertex index.
func (p *Polyhedron) Neighbors() map[int32][]int32 {
	seen := map[[2]int32]bool{}
	adj := map[int32][]int32{}
	add := func(u, v int32) {
		k := [2]int32{u, v}
		if !seen[k] {
			seen[k] = true
			adj[u] = append(adj[u], v)
		}
	}
	for _, f := range p.Faces {
		for e := 0; e < 3; e++ {
			u, v := f[e], f[(e+1)%3]
			add(u, v)
			add(v, u)
		}
	}
	return adj
}

// Extreme returns the hull vertex maximizing the dot product with d
// (brute force reference).
func (p *Polyhedron) Extreme(d Point3) int32 {
	best := p.Verts[0]
	bestDot := Dot3(d, p.Pts[best])
	for _, v := range p.Verts[1:] {
		if dot := Dot3(d, p.Pts[v]); dot > bestDot ||
			(dot == bestDot && v < best) {
			best = v
			bestDot = dot
		}
	}
	return best
}

// MergeHulls computes the convex hull of the union of two polyhedra
// (the "merging 3-d convex hulls" operation of Theorem 8.3). Only hull
// vertices of the inputs are considered; the result owns a fresh point
// array.
func MergeHulls(p, q *Polyhedron) (*Polyhedron, error) {
	pts := make([]Point3, 0, len(p.Verts)+len(q.Verts))
	for _, v := range p.Verts {
		pts = append(pts, p.Pts[v])
	}
	for _, v := range q.Verts {
		pts = append(pts, q.Pts[v])
	}
	return ConvexHull3D(pts)
}

// RandomSpherePoints draws n integer points near a sphere of the given
// radius — in strong general position with overwhelming probability, so
// every point is a hull vertex.
func RandomSpherePoints(n int, radius int64, rng *rand.Rand) []Point3 {
	if radius > MaxCoord {
		panic("geom: radius exceeds MaxCoord")
	}
	pts := make([]Point3, 0, n)
	seen := map[Point3]bool{}
	for len(pts) < n {
		x := rng.NormFloat64()
		y := rng.NormFloat64()
		z := rng.NormFloat64()
		norm := x*x + y*y + z*z
		if norm < 1e-9 {
			continue
		}
		s := float64(radius) / math.Sqrt(norm)
		p := Point3{int64(x * s), int64(y * s), int64(z * s)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}
