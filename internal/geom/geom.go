// Package geom provides the exact computational-geometry substrate for the
// §5 applications: integer points, exact orientation predicates (int64 fast
// path with big.Int fallback), 2-D convex hulls, planar triangulations, and
// 3-D convex hulls. All predicates are exact for coordinates bounded by
// MaxCoord, so the structures built on top (Kirkpatrick hierarchies,
// Dobkin–Kirkpatrick hierarchies) are combinatorially sound.
package geom

import (
	"fmt"
	"math/big"
)

// MaxCoord bounds |X|, |Y|, |Z| of all inputs. Orient2D is then exact in
// int64; Orient3D uses a big.Int fallback when the int64 computation could
// overflow.
const MaxCoord = 1 << 29

// Point2 is an exact 2-D point.
type Point2 struct{ X, Y int64 }

// Point3 is an exact 3-D point.
type Point3 struct{ X, Y, Z int64 }

// CheckCoord panics if a coordinate exceeds MaxCoord.
func CheckCoord(vs ...int64) {
	for _, v := range vs {
		if v > MaxCoord || v < -MaxCoord {
			panic(fmt.Sprintf("geom: coordinate %d exceeds ±%d", v, int64(MaxCoord)))
		}
	}
}

// Orient2D returns the sign of the cross product (b−a)×(c−a):
// +1 if a,b,c make a left (counter-clockwise) turn, −1 for a right turn,
// 0 for collinear. Exact: |coords| ≤ 2^29 keeps the computation in int64.
func Orient2D(a, b, c Point2) int {
	det := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case det > 0:
		return 1
	case det < 0:
		return -1
	default:
		return 0
	}
}

// Orient3D returns the sign of the determinant
//
//	| b−a |
//	| c−a |
//	| d−a |
//
// +1 when d lies on the positive side of the plane through a,b,c oriented
// counter-clockwise (right-hand rule), −1 on the negative side, 0 when
// coplanar. The products can reach 3·2^93, so the exact value is computed
// with big.Int whenever the float64 estimate is within its error bound.
func Orient3D(a, b, c, d Point3) int {
	ax, ay, az := float64(b.X-a.X), float64(b.Y-a.Y), float64(b.Z-a.Z)
	bx, by, bz := float64(c.X-a.X), float64(c.Y-a.Y), float64(c.Z-a.Z)
	cx, cy, cz := float64(d.X-a.X), float64(d.Y-a.Y), float64(d.Z-a.Z)
	det := ax*(by*cz-bz*cy) - ay*(bx*cz-bz*cx) + az*(bx*cy-by*cx)
	// Forward error bound: |det| computed with ~7 flops per term; a crude
	// but safe bound is 16·ε·M where M bounds the term magnitudes.
	absTerm := abs3(ax*(by*cz), ax*(bz*cy), ay*(bx*cz)) + abs3(ay*(bz*cx), az*(bx*cy), az*(by*cx))
	err := 1e-14 * absTerm
	if det > err {
		return 1
	}
	if det < -err {
		return -1
	}
	return orient3DExact(a, b, c, d)
}

func abs3(a, b, c float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if c < 0 {
		c = -c
	}
	return a + b + c
}

func orient3DExact(a, b, c, d Point3) int {
	bi := func(v int64) *big.Int { return big.NewInt(v) }
	ax, ay, az := bi(b.X-a.X), bi(b.Y-a.Y), bi(b.Z-a.Z)
	bx, by, bz := bi(c.X-a.X), bi(c.Y-a.Y), bi(c.Z-a.Z)
	cx, cy, cz := bi(d.X-a.X), bi(d.Y-a.Y), bi(d.Z-a.Z)
	t := new(big.Int)
	u := new(big.Int)
	det := new(big.Int)
	// ax·(by·cz − bz·cy)
	det.Mul(ax, u.Sub(t.Mul(by, cz), u.Mul(bz, cy)))
	// − ay·(bx·cz − bz·cx)
	t2 := new(big.Int)
	t2.Mul(ay, u.Sub(t.Mul(bx, cz), u.Mul(bz, cx)))
	det.Sub(det, t2)
	// + az·(bx·cy − by·cx)
	t2.Mul(az, u.Sub(t.Mul(bx, cy), u.Mul(by, cx)))
	det.Add(det, t2)
	return det.Sign()
}

// InTriangle reports whether p lies inside or on the triangle a,b,c
// (any orientation).
func InTriangle(p, a, b, c Point2) bool {
	d1 := Orient2D(a, b, p)
	d2 := Orient2D(b, c, p)
	d3 := Orient2D(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// Dot3 returns the dot product d·p.
func Dot3(d, p Point3) int64 { return d.X*p.X + d.Y*p.Y + d.Z*p.Z }

// Sub3 returns a − b.
func Sub3(a, b Point3) Point3 { return Point3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Cross3 returns a × b. Inputs must be difference vectors of bounded
// points; the result may exceed MaxCoord (it is not a point).
func Cross3(a, b Point3) Point3 {
	return Point3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}
