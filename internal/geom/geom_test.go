package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrient2D(t *testing.T) {
	a, b := Point2{0, 0}, Point2{4, 0}
	if Orient2D(a, b, Point2{2, 1}) != 1 {
		t.Fatal("left turn")
	}
	if Orient2D(a, b, Point2{2, -1}) != -1 {
		t.Fatal("right turn")
	}
	if Orient2D(a, b, Point2{8, 0}) != 0 {
		t.Fatal("collinear")
	}
}

func TestOrient3DMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		p := func() Point3 {
			return Point3{rng.Int63n(2*MaxCoord+1) - MaxCoord,
				rng.Int63n(2*MaxCoord+1) - MaxCoord,
				rng.Int63n(2*MaxCoord+1) - MaxCoord}
		}
		a, b, c, d := p(), p(), p(), p()
		if Orient3D(a, b, c, d) != orient3DExact(a, b, c, d) {
			t.Fatalf("filter disagrees with exact on %v %v %v %v", a, b, c, d)
		}
	}
}

func TestOrient3DDegenerate(t *testing.T) {
	a := Point3{0, 0, 0}
	b := Point3{1 << 28, 0, 0}
	c := Point3{0, 1 << 28, 0}
	if Orient3D(a, b, c, Point3{5, 7, 0}) != 0 {
		t.Fatal("coplanar must be 0")
	}
	if Orient3D(a, b, c, Point3{5, 7, 1}) == 0 {
		t.Fatal("off-plane must be nonzero")
	}
	// Near-degenerate: tiny height over huge base forces the exact path.
	if Orient3D(a, b, c, Point3{(1 << 28) - 1, (1 << 28) - 1, 1}) == 0 {
		t.Fatal("height-1 point must be nonzero")
	}
}

func TestInTriangle(t *testing.T) {
	a, b, c := Point2{0, 0}, Point2{10, 0}, Point2{0, 10}
	if !InTriangle(Point2{1, 1}, a, b, c) || !InTriangle(Point2{0, 0}, a, b, c) ||
		!InTriangle(Point2{5, 5}, a, b, c) {
		t.Fatal("inside/boundary")
	}
	if InTriangle(Point2{6, 6}, a, b, c) || InTriangle(Point2{-1, 0}, a, b, c) {
		t.Fatal("outside")
	}
	// Works for CW orientation too.
	if !InTriangle(Point2{1, 1}, a, c, b) {
		t.Fatal("CW triangle")
	}
}

func TestConvexHull2DSquare(t *testing.T) {
	pts := []Point2{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 0}}
	hull := ConvexHull2D(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size %d want 4 (collinear (2,0) dropped)", len(hull))
	}
	poly := make([]Point2, len(hull))
	for i, id := range hull {
		poly[i] = pts[id]
	}
	for _, p := range pts {
		if !PointInConvexCCW(poly, p) {
			t.Fatalf("point %v outside its hull", p)
		}
	}
}

func TestConvexHull2DDegenerate(t *testing.T) {
	if h := ConvexHull2D([]Point2{{1, 1}}); len(h) != 1 {
		t.Fatal("single point")
	}
	if h := ConvexHull2D([]Point2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}); len(h) != 2 {
		t.Fatalf("collinear: %d", len(h))
	}
	if h := ConvexHull2D([]Point2{{5, 5}, {5, 5}, {5, 5}}); len(h) != 1 {
		t.Fatal("duplicates")
	}
}

func TestQuickHull2DContainsAll(t *testing.T) {
	f := func(raw [24][2]int16) bool {
		pts := make([]Point2, len(raw))
		for i, r := range raw {
			pts[i] = Point2{int64(r[0]), int64(r[1])}
		}
		hull := ConvexHull2D(pts)
		if len(hull) < 3 {
			return true // degenerate draws
		}
		poly := make([]Point2, len(hull))
		for i, id := range hull {
			poly[i] = pts[id]
		}
		// CCW and containing everything.
		for i := range poly {
			j, k := (i+1)%len(poly), (i+2)%len(poly)
			if Orient2D(poly[i], poly[j], poly[k]) <= 0 {
				return false
			}
		}
		for _, p := range pts {
			if !PointInConvexCCW(poly, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomPoints2(n int, span int64, rng *rand.Rand) []Point2 {
	seen := map[Point2]bool{}
	pts := make([]Point2, 0, n)
	for len(pts) < n {
		p := Point2{rng.Int63n(span), rng.Int63n(span)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestTriangulateValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 4, 10, 100, 1000} {
		pts := randomPoints2(n, 10000, rng)
		tr, err := Triangulate(pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTriangulateWithCollinearRuns(t *testing.T) {
	// Grid points: many collinear triples and a collinear prefix.
	var pts []Point2
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 8; y++ {
			pts = append(pts, Point2{x * 3, y * 3})
		}
	}
	tr, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tris) != 2*49 { // (m-1)(n-1) squares × 2 triangles
		t.Fatalf("triangles %d want %d", len(tr.Tris), 2*49)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate([]Point2{{0, 0}, {1, 1}}); err == nil {
		t.Fatal("too few")
	}
	if _, err := Triangulate([]Point2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}); err == nil {
		t.Fatal("collinear")
	}
	if _, err := Triangulate([]Point2{{0, 0}, {0, 0}, {1, 2}}); err == nil {
		t.Fatal("duplicate")
	}
}

func TestQuickTriangulateValid(t *testing.T) {
	f := func(raw [12][2]uint8) bool {
		seen := map[Point2]bool{}
		var pts []Point2
		for _, r := range raw {
			p := Point2{int64(r[0] % 32), int64(r[1] % 32)}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		tr, err := Triangulate(pts)
		if err != nil {
			return true // degenerate input
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvexHull3DCube(t *testing.T) {
	var pts []Point3
	for x := int64(0); x <= 1; x++ {
		for y := int64(0); y <= 1; y++ {
			for z := int64(0); z <= 1; z++ {
				pts = append(pts, Point3{x * 10, y * 10, z * 10})
			}
		}
	}
	pts = append(pts, Point3{5, 5, 5}) // interior
	p, err := ConvexHull3D(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Verts) != 8 {
		t.Fatalf("hull vertices %d want 8", len(p.Verts))
	}
	if len(p.Faces) != 12 { // cube = 6 quads = 12 triangles
		t.Fatalf("faces %d want 12", len(p.Faces))
	}
}

func TestConvexHull3DRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 16, 64, 256} {
		pts := RandomSpherePoints(n, 1<<20, rng)
		p, err := ConvexHull3D(pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Sphere points: (almost) all on hull.
		if len(p.Verts) < n*9/10 {
			t.Fatalf("n=%d: only %d hull vertices", n, len(p.Verts))
		}
	}
}

func TestConvexHull3DDegenerateErrors(t *testing.T) {
	if _, err := ConvexHull3D([]Point3{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}}); err == nil {
		t.Fatal("collinear")
	}
	if _, err := ConvexHull3D([]Point3{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}}); err == nil {
		t.Fatal("coplanar")
	}
	if _, err := ConvexHull3D([]Point3{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 1}}); err == nil {
		t.Fatal("identical")
	}
}

func TestPolyhedronNeighborsSymmetric(t *testing.T) {
	pts := RandomSpherePoints(50, 1<<16, rand.New(rand.NewSource(4)))
	p, err := ConvexHull3D(pts)
	if err != nil {
		t.Fatal(err)
	}
	adj := p.Neighbors()
	for u, ns := range adj {
		for _, v := range ns {
			found := false
			for _, w := range adj[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d-%d", u, v)
			}
		}
	}
}

func TestExtremeBrute(t *testing.T) {
	pts := RandomSpherePoints(100, 1<<16, rand.New(rand.NewSource(5)))
	p, err := ConvexHull3D(pts)
	if err != nil {
		t.Fatal(err)
	}
	d := Point3{3, -7, 2}
	best := p.Extreme(d)
	for _, v := range p.Verts {
		if Dot3(d, p.Pts[v]) > Dot3(d, p.Pts[best]) {
			t.Fatal("Extreme not maximal")
		}
	}
}

func TestMergeHulls(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandomSpherePoints(60, 1<<16, rng)
	b := RandomSpherePoints(60, 1<<16, rng)
	for i := range b {
		b[i].X += 3 << 16 // overlapping-but-offset union
	}
	pa, err := ConvexHull3D(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ConvexHull3D(b)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeHulls(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every input point lies inside the merged hull.
	for _, p := range append(append([]Point3{}, a...), b...) {
		for _, f := range merged.Faces {
			if Orient3D(merged.Pts[f[0]], merged.Pts[f[1]], merged.Pts[f[2]], p) > 0 {
				t.Fatalf("point %v outside merged hull", p)
			}
		}
	}
	// Interior vertices of the union (the facing caps) must vanish.
	if len(merged.Verts) >= len(pa.Verts)+len(pb.Verts) {
		t.Fatalf("merge kept all %d+%d vertices", len(pa.Verts), len(pb.Verts))
	}
}

func TestCheckCoord(t *testing.T) {
	CheckCoord(0, MaxCoord, -MaxCoord)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CheckCoord(MaxCoord + 1)
}
