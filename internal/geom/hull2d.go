package geom

import "sort"

// ConvexHull2D returns the convex hull of the points in counter-clockwise
// order (Andrew's monotone chain). Collinear points on the hull boundary
// are dropped; duplicates are ignored. Returns indices into pts.
func ConvexHull2D(pts []Point2) []int32 {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := pts[idx[i]], pts[idx[j]]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	// Dedupe.
	uniq := idx[:0]
	for i, id := range idx {
		if i == 0 || pts[id] != pts[uniq[len(uniq)-1]] {
			uniq = append(uniq, id)
		}
	}
	idx = uniq
	n = len(idx)
	if n == 1 {
		return []int32{idx[0]}
	}
	build := func(order []int32) []int32 {
		var h []int32
		for _, id := range order {
			for len(h) >= 2 && Orient2D(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[id]) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, id)
		}
		return h
	}
	lower := build(idx)
	rev := make([]int32, n)
	for i, id := range idx {
		rev[n-1-i] = id
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) == 0 { // all collinear
		return []int32{idx[0], idx[n-1]}
	}
	return hull
}

// PointInConvexCCW reports whether p lies inside or on the convex polygon
// given by hull vertex positions in CCW order.
func PointInConvexCCW(poly []Point2, p Point2) bool {
	for i := range poly {
		j := (i + 1) % len(poly)
		if Orient2D(poly[i], poly[j], p) < 0 {
			return false
		}
	}
	return true
}
