package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromWriter builds a Prometheus text-format (version 0.0.4) exposition.
// It is a plain builder, not a registry: the HTTP handlers snapshot their
// counters/histograms per scrape and replay them through it, which keeps the
// hot path free of any metrics-library bookkeeping. HELP/TYPE headers are
// emitted once per family even when samples interleave label sets.
type PromWriter struct {
	buf    bytes.Buffer
	headed map[string]bool
}

// NewPromWriter returns an empty exposition builder.
func NewPromWriter() *PromWriter {
	return &PromWriter{headed: make(map[string]bool)}
}

// ContentType is the scrape response content type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (w *PromWriter) head(name, help, typ string) {
	if w.headed[name] {
		return
	}
	w.headed[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labels renders {k="v",...} from alternating key/value pairs.
func promLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(promEscape(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample (kv = alternating label key/value pairs).
func (w *PromWriter) Counter(name, help string, v float64, kv ...string) {
	w.head(name, help, "counter")
	fmt.Fprintf(&w.buf, "%s%s %s\n", name, promLabels(kv), promFloat(v))
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name, help string, v float64, kv ...string) {
	w.head(name, help, "gauge")
	fmt.Fprintf(&w.buf, "%s%s %s\n", name, promLabels(kv), promFloat(v))
}

// Histogram emits a HistSnapshot as a classic Prometheus histogram in
// seconds. The 960 internal buckets are downsampled to one cumulative
// `le` bound per power-of-two octave (≈60 worst case, far fewer in
// practice: octaves past the slowest observation collapse into +Inf), which
// keeps scrape size sane while preserving quantile error ≤ one octave —
// tighter bounds come from the JSON summaries, which use the full buckets.
func (w *PromWriter) Histogram(name, help string, s HistSnapshot, kv ...string) {
	w.head(name, help, "histogram")
	ls := promLabels(kv)
	var cum int64
	if len(s.Counts) != 0 {
		for i, c := range s.Counts {
			cum += c
			last := i == len(s.Counts)-1
			if !last && (i < 15 || i%16 != 15) {
				continue // not an octave boundary
			}
			if cum >= s.Count && int64(s.Max) <= histUpper(i) {
				// Every observation is at or below this bound; the
				// remaining octaves add nothing but scrape bytes.
				last = true
			}
			le := promFloat(float64(histUpper(i)) / 1e9)
			w.bucket(name, ls, le, cum)
			if last {
				break
			}
		}
	}
	w.bucket(name, ls, "+Inf", s.Count)
	fmt.Fprintf(&w.buf, "%s_sum%s %s\n", name, ls, promFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(&w.buf, "%s_count%s %d\n", name, ls, s.Count)
}

func (w *PromWriter) bucket(name, ls, le string, cum int64) {
	if ls == "" {
		fmt.Fprintf(&w.buf, "%s_bucket{le=%q} %d\n", name, le, cum)
		return
	}
	// ls is `{k="v",...}`; splice the le label in before the closing brace.
	fmt.Fprintf(&w.buf, "%s_bucket%s,le=%q} %d\n", name, ls[:len(ls)-1], le, cum)
}

// Bytes returns the exposition body.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// WriteObserver emits the observer's own families under the given prefix
// (e.g. "meshserve"): per-stage wall-clock histograms, per-outcome counters,
// and the SLO burn-rate gauges. Shared by the serve and fleet handlers.
func (w *PromWriter) WriteObserver(prefix string, o *Observer) {
	// One stage-histogram family; when the observer tracks more than one
	// request class (query kinds, in the serving stack) each class gets its
	// own label set so a slow point-location round cannot hide inside the
	// membership aggregate. Single-class observers keep the unlabeled shape
	// existing dashboards scrape.
	classes := o.Classes()
	for st := Stage(0); st < numStages; st++ {
		if len(classes) > 1 {
			for c, name := range classes {
				w.Histogram(prefix+"_stage_duration_seconds",
					"Wall-clock time per request lifecycle stage.",
					o.StageHistClass(c, st), "stage", st.String(), "kind", name)
			}
		} else {
			w.Histogram(prefix+"_stage_duration_seconds",
				"Wall-clock time per request lifecycle stage.",
				o.StageHist(st), "stage", st.String())
		}
	}
	var answered, degradedLike int64
	for oc := Outcome(0); oc < numOutcomes; oc++ {
		n := o.OutcomeCount(oc)
		w.Counter(prefix+"_requests_total",
			"Finished requests by outcome.",
			float64(n), "outcome", oc.String())
		if oc.answered() {
			answered += n
		}
		if oc == OutcomeDegraded || oc == OutcomeOracle {
			degradedLike += n
		}
	}
	w.Counter(prefix+"_traces_abandoned_total",
		"Traces dropped because the client abandoned the request mid-flight.",
		float64(o.Abandoned()))

	// SLO burn rates: 1.0 = burning exactly at the SLO's error budget,
	// >1 = out of budget. The latency burn gauge needs the caller's
	// end-to-end histogram, so it is emitted via WriteLatencyBurn.
	p99, maxDeg := o.SLO()
	w.Gauge(prefix+"_slo_p99_target_seconds",
		"Configured latency SLO target (at most 1% of answered requests may exceed it).",
		float64(p99)/1e9)
	if answered > 0 {
		frac := float64(degradedLike) / float64(answered)
		w.Gauge(prefix+"_slo_degraded_burn_rate",
			"Degraded-answer fraction over its SLO budget (>1 = out of budget).",
			frac/maxDeg)
	} else {
		w.Gauge(prefix+"_slo_degraded_burn_rate",
			"Degraded-answer fraction over its SLO budget (>1 = out of budget).", 0)
	}
}

// WriteLatencyBurn emits the latency burn-rate gauge for an end-to-end
// latency snapshot against the observer's p99 SLO: the fraction of requests
// over the target, divided by the 1% budget.
func (w *PromWriter) WriteLatencyBurn(prefix string, o *Observer, e2e HistSnapshot) {
	p99, _ := o.SLO()
	burn := 0.0
	if e2e.Count > 0 {
		burn = (float64(e2e.CountAbove(p99)) / float64(e2e.Count)) / 0.01
	}
	w.Gauge(prefix+"_slo_latency_burn_rate",
		"Fraction of requests over the p99 SLO target, divided by the 1% budget (>1 = out of budget).",
		burn)
}

// SortedKeys is a small helper for deterministic map iteration in handlers.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
