package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.eE+-]+(Inf|NaN)?$`)

// checkPromText validates an exposition body against the text-format 0.0.4
// grammar the CI smoke job also enforces: every non-comment line is a sample,
// every sample's family has HELP and TYPE emitted before it, histogram
// buckets are cumulative with a terminal +Inf equal to _count.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]bool{}
	type bstate struct {
		last   int64
		sawInf bool
	}
	buckets := map[string]*bstate{} // family+labels(without le)
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("line %d: bare HELP: %q", ln+1, line)
				continue
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("line %d: bad TYPE: %q", ln+1, line)
				continue
			}
			if typed[f[2]] != "" {
				t.Errorf("line %d: TYPE for %s emitted twice", ln+1, f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("line %d: not a valid sample: %q", ln+1, line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if !helped[family] || typed[family] == "" {
			t.Errorf("line %d: sample %s before its HELP/TYPE", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			series, le := splitLE(t, line)
			st := buckets[series]
			if st == nil {
				st = &bstate{}
				buckets[series] = st
			}
			v, _ := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if v < st.last {
				t.Errorf("line %d: bucket counts not cumulative (%d after %d): %q", ln+1, v, st.last, line)
			}
			st.last = v
			if le == "+Inf" {
				st.sawInf = true
			}
		}
	}
	for series, st := range buckets {
		if !st.sawInf {
			t.Errorf("histogram series %s has no +Inf bucket", series)
		}
	}
}

// splitLE splits a _bucket sample line into its series key (labels minus le)
// and the le value.
func splitLE(t *testing.T, line string) (series, le string) {
	t.Helper()
	open := strings.Index(line, "{")
	if open < 0 {
		t.Fatalf("bucket sample without le: %q", line)
	}
	close := strings.LastIndex(line, "}")
	name, labels := line[:open], line[open+1:close]
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if v, ok := strings.CutPrefix(kv, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, kv)
	}
	if le == "" {
		t.Fatalf("bucket sample without le: %q", line)
	}
	return name + "{" + strings.Join(kept, ",") + "}", le
}

// TestPromWriterFormat runs real observer traffic through the full exposition
// and validates the result with the same checks the CI smoke job applies.
func TestPromWriterFormat(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	for i := 0; i < 50; i++ {
		oc := OutcomeMesh
		if i%10 == 0 {
			oc = OutcomeDegraded
		}
		mk(o, int64(i), start, oc,
			[]Stage{StageAdmit, StageQueue, StageMesh},
			[]time.Duration{time.Microsecond, time.Duration(i) * 100 * time.Microsecond, time.Millisecond})
	}
	var e2e Histogram
	for i := 0; i < 50; i++ {
		e2e.Observe(time.Duration(i) * time.Millisecond)
	}
	pw := NewPromWriter()
	pw.Counter("x_total", "A counter.", 3, "label", `quoted "value" with \ and`+"\n")
	pw.Gauge("x_up", "A gauge.", 1)
	pw.Histogram("x_latency_seconds", "A histogram.", e2e.Snapshot())
	pw.WriteObserver("meshserve", o)
	pw.WriteLatencyBurn("meshserve", o, e2e.Snapshot())
	body := string(pw.Bytes())
	checkPromText(t, body)

	for _, want := range []string{
		`meshserve_stage_duration_seconds_bucket{stage="mesh_round",le="+Inf"} 50`,
		`meshserve_requests_total{outcome="mesh"} 45`,
		`meshserve_requests_total{outcome="degraded"} 5`,
		"meshserve_slo_p99_target_seconds 0.05",
		"meshserve_slo_degraded_burn_rate 10", // 5/50 degraded over a 1% budget
		"meshserve_slo_latency_burn_rate",
		"meshserve_traces_abandoned_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHistogramBucketDownsampling pins the octave downsampling: the +Inf
// bucket always equals _count, and the bucket count stays far below the 960
// internal buckets.
func TestHistogramBucketDownsampling(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	pw := NewPromWriter()
	pw.Histogram("d_seconds", "Downsampled.", h.Snapshot())
	body := string(pw.Bytes())
	checkPromText(t, body)
	n := strings.Count(body, "d_seconds_bucket")
	if n > 70 {
		t.Errorf("%d buckets emitted, want ≤ 70 (octave downsampling)", n)
	}
	if !strings.Contains(body, `d_seconds_bucket{le="+Inf"} 1000`) {
		t.Error("+Inf bucket must equal the observation count")
	}
}

// TestHistogramMergeExact: fixed boundaries make fleet aggregation lossless —
// merged quantiles equal the quantiles of the union stream.
func TestHistogramMergeExact(t *testing.T) {
	var a, b, union Histogram
	for i := 1; i <= 400; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	u := union.Snapshot()
	if m.Count != u.Count || m.Sum != u.Sum || m.Max != u.Max {
		t.Fatalf("merge: count/sum/max = %d/%d/%d, want %d/%d/%d",
			m.Count, m.Sum, m.Max, u.Count, u.Sum, u.Max)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if m.Quantile(q) != u.Quantile(q) {
			t.Errorf("q%g: merged %s, union %s", q, m.Quantile(q), u.Quantile(q))
		}
	}
	// Merging with an empty snapshot is the identity, both ways.
	if got := (HistSnapshot{}).Merge(u); got.Count != u.Count {
		t.Error("empty.Merge(u) lost observations")
	}
	if got := u.Merge(HistSnapshot{}); got.Count != u.Count {
		t.Error("u.Merge(empty) lost observations")
	}
}

// TestCountAbove pins the SLO burn numerator's bucket-granular contract:
// exact for values far from the threshold, never overcounting at it.
func TestCountAbove(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // all well below threshold
	}
	for i := 0; i < 7; i++ {
		h.Observe(time.Second) // all well above
	}
	s := h.Snapshot()
	if got := s.CountAbove(50 * time.Millisecond); got != 7 {
		t.Errorf("CountAbove(50ms) = %d, want 7", got)
	}
	if got := s.CountAbove(2 * time.Second); got != 0 {
		t.Errorf("CountAbove(2s) = %d, want 0", got)
	}
	if got := s.CountAbove(0); got != int64(s.Count) {
		// Bucket 0 holds only exact zeros; everything observed is above.
		t.Errorf("CountAbove(0) = %d, want %d", got, s.Count)
	}
}

// TestSortedKeys covers the deterministic-iteration helper.
func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
