package obs

import (
	"sort"
	"sync"
)

// collector retains completed traces with a tail-biased policy: a bounded
// ring of the most recent traces (whatever their outcome), a second bounded
// ring of "interesting" traces (degraded / failovered / oracle-answered /
// errored — the ones a debugging session is actually after), and the
// slowest-N traces seen since start. Healthy high-throughput traffic churns
// only the recent ring; the evidence for an incident survives it.
type collector struct {
	mu      sync.Mutex
	recent  []*ReqTrace // ring, len == cap once warm
	rpos    int
	intr    []*ReqTrace // ring of interesting traces
	ipos    int
	slowest []*ReqTrace // ascending by Dur, ≤ slowN
	slowN   int
}

func (c *collector) init(ring, slowN int) {
	c.recent = make([]*ReqTrace, 0, ring)
	c.intr = make([]*ReqTrace, 0, ring)
	c.slowN = slowN
	c.slowest = make([]*ReqTrace, 0, slowN)
}

// offer admits a finished (immutable) trace.
func (c *collector) offer(tr *ReqTrace, interesting bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.push(&c.recent, &c.rpos, tr)
	if interesting {
		c.push(&c.intr, &c.ipos, tr)
	}
	d := tr.Dur()
	if len(c.slowest) < c.slowN {
		i := sort.Search(len(c.slowest), func(i int) bool { return c.slowest[i].Dur() >= d })
		c.slowest = append(c.slowest, nil)
		copy(c.slowest[i+1:], c.slowest[i:])
		c.slowest[i] = tr
	} else if len(c.slowest) > 0 && d > c.slowest[0].Dur() {
		i := sort.Search(len(c.slowest), func(i int) bool { return c.slowest[i].Dur() >= d })
		copy(c.slowest[:i-1], c.slowest[1:i]) // evict the current fastest
		c.slowest[i-1] = tr
	}
}

func (c *collector) push(ring *[]*ReqTrace, pos *int, tr *ReqTrace) {
	if len(*ring) < cap(*ring) {
		*ring = append(*ring, tr)
		return
	}
	(*ring)[*pos] = tr
	*pos = (*pos + 1) % len(*ring)
}

// snapshot returns the union of the three retention sets, newest first,
// deduplicated (a trace can sit in all three).
func (c *collector) snapshot() []*ReqTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[*ReqTrace]bool, len(c.recent)+len(c.intr)+len(c.slowest))
	out := make([]*ReqTrace, 0, len(c.recent)+len(c.intr)+len(c.slowest))
	for _, set := range [][]*ReqTrace{c.recent, c.intr, c.slowest} {
		for _, tr := range set {
			if tr != nil && !seen[tr] {
				seen[tr] = true
				out = append(out, tr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End.After(out[j].End) })
	return out
}

// find returns the retained trace with the given ID, or nil. IDs propagated
// across fleet → replica reuse the same trace object, so first match wins.
func (c *collector) find(id TraceID) *ReqTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, set := range [][]*ReqTrace{c.recent, c.intr, c.slowest} {
		for _, tr := range set {
			if tr != nil && tr.ID == id {
				return tr
			}
		}
	}
	return nil
}
