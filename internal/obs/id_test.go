package obs

import (
	"strings"
	"testing"
)

// TestTraceparentRoundTrip: every minted ID survives header encode/decode.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		h := id.Traceparent()
		if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
			t.Fatalf("bad traceparent shape: %q", h)
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if got != id {
			t.Fatalf("round trip: %s → %q → %s", id, h, got)
		}
	}
}

// TestNewTraceIDUnique: the counter derivation must never repeat or zero.
func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("minted the reserved all-zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

// TestParseTraceparentMalformed: per W3C, malformed headers are rejected (the
// caller then mints a fresh ID rather than failing the request).
func TestParseTraceparentMalformed(t *testing.T) {
	valid := NewTraceID().Traceparent()
	cases := map[string]string{
		"empty":             "",
		"short":             "00-abc",
		"no dashes":         strings.ReplaceAll(valid, "-", "_"),
		"version ff":        "ff" + valid[2:],
		"zero trace id":     "00-00000000000000000000000000000000-0000000000000001-01",
		"uppercase hex":     "00-" + strings.ToUpper(valid[3:35]) + valid[35:],
		"non-hex trace id":  "00-zz" + valid[5:],
		"non-hex parent id": valid[:36] + "zzzzzzzzzzzzzzzz" + valid[52:],
		"non-hex flags":     valid[:53] + "zz",
		"non-hex version":   "0x" + valid[2:],
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
	// Unknown-but-legal versions are accepted if the layout matches.
	if _, err := ParseTraceparent("42" + valid[2:]); err != nil {
		t.Errorf("version 42 rejected: %v", err)
	}
	// Longer headers (future versions append fields) parse too.
	if _, err := ParseTraceparent(valid + "-extrafield"); err != nil {
		t.Errorf("extended header rejected: %v", err)
	}
}

// TestTraceparentParentIDsDiffer: each header render gets a fresh parent-id
// (the hop identifier), while the trace-id part stays fixed.
func TestTraceparentParentIDsDiffer(t *testing.T) {
	id := NewTraceID()
	h1, h2 := id.Traceparent(), id.Traceparent()
	if h1[:36] != h2[:36] {
		t.Errorf("trace-id part changed between renders: %q vs %q", h1, h2)
	}
	if h1[36:52] == h2[36:52] {
		t.Errorf("parent-id did not rotate: %q vs %q", h1, h2)
	}
}
