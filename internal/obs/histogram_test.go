package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketsPartition checks the bucket mapping is a partition:
// every value lands in exactly one bucket whose bounds contain it, bucket
// indices are monotone in the value, and upper bounds invert the mapping.
func TestHistogramBucketsPartition(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 1 << 20, (1 << 40) - 1, 1 << 40, 1<<62 + 12345}
	prev := -1
	for _, v := range values {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("bucket index not monotone: value %d → bucket %d after bucket %d", v, i, prev)
		}
		prev = i
		if u := histUpper(i); v > u {
			t.Fatalf("value %d above its bucket's upper bound %d (bucket %d)", v, u, i)
		}
		if i > 0 {
			if lo := histUpper(i - 1); v <= lo {
				t.Fatalf("value %d not above previous bucket's upper bound %d (bucket %d)", v, lo, i)
			}
		}
	}
	// Relative error bound: the bucket width is ≤ 1/16 of the value.
	for _, v := range []int64{100, 10_000, 1_000_000, 1 << 30} {
		i := histIndex(v)
		width := histUpper(i) - histUpper(i-1)
		if 16*width > 2*v {
			t.Fatalf("bucket width %d too coarse for value %d", width, v)
		}
	}
}

// TestHistogramQuantiles draws a known distribution and requires every
// quantile to land within one bucket (≤ 6.25%) of the exact order statistic.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	raw := make([]int64, 10_000)
	for i := range raw {
		v := int64(rng.ExpFloat64() * float64(time.Millisecond))
		raw[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	snap := h.Snapshot()
	if snap.Count != int64(len(raw)) {
		t.Fatalf("count %d, want %d", snap.Count, len(raw))
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		exact := raw[int(q*float64(len(raw)))-1]
		got := int64(snap.Quantile(q))
		if got < exact {
			t.Fatalf("q%.3f = %d underestimates exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.07+16 {
			t.Fatalf("q%.3f = %d overestimates exact %d by more than a bucket", q, got, exact)
		}
	}
	if max := snap.Quantile(1); int64(max) != raw[len(raw)-1] {
		t.Fatalf("q1 = %v, want observed max %d", max, raw[len(raw)-1])
	}
	sum := snap.Summary()
	if sum.P50 > sum.P95 || sum.P95 > sum.P99 || sum.P99 > sum.P999 || sum.P999 > sum.Max {
		t.Fatalf("summary quantiles not monotone: %+v", sum)
	}
}

// TestHistogramEmptyAndConcurrent pins the zero-value contract and runs
// concurrent observers under -race.
func TestHistogramEmptyAndConcurrent(t *testing.T) {
	var h Histogram
	if s := h.Snapshot().Summary(); s.Count != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty histogram summary %+v", s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != 8000 {
		t.Fatalf("count %d, want 8000", snap.Count)
	}
	if snap.Max != 7999 {
		t.Fatalf("max %d, want 7999", snap.Max)
	}
}

// TestHistogramTopBucketBoundary pins the edge behaviour at the top of the
// range: the last bucket's upper bound is exactly MaxInt64 (not a
// two's-complement wrap), and an observation at or above the top bucket's
// lower boundary lands in it rather than panicking or vanishing.
func TestHistogramTopBucketBoundary(t *testing.T) {
	if u := histUpper(histBuckets - 1); u != math.MaxInt64 {
		t.Fatalf("top bucket upper bound = %d, want MaxInt64", u)
	}
	topLo := histLower(histBuckets - 1)
	if penultimate := histUpper(histBuckets - 2); topLo != penultimate+1 {
		t.Fatalf("top bucket lower bound %d does not abut previous upper %d", topLo, penultimate)
	}
	for _, v := range []int64{topLo, topLo + 1, math.MaxInt64 - 1, math.MaxInt64} {
		if i := histIndex(v); i != histBuckets-1 {
			t.Fatalf("value %d landed in bucket %d, want top bucket %d", v, i, histBuckets-1)
		}
	}
	var h Histogram
	h.Observe(time.Duration(math.MaxInt64))
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Counts[histBuckets-1] != 1 {
		t.Fatalf("MaxInt64 observation miscounted: count=%d top=%d", snap.Count, snap.Counts[histBuckets-1])
	}
	if q := snap.Quantile(1); int64(q) != math.MaxInt64 {
		t.Fatalf("q1 of a MaxInt64 observation = %d, want MaxInt64", int64(q))
	}
}

// TestHistogramQuantileClamps pins Quantile's domain edges: q ≤ 0 reports the
// lower bound of the smallest non-empty bucket (never over-reports the
// minimum), q = 1 reports the observed max exactly, and out-of-range q values
// clamp instead of walking off the bucket array.
func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 100, 1000, 50_000} {
		h.Observe(time.Duration(v))
	}
	snap := h.Snapshot()
	lo := histLower(histIndex(100))
	if q := int64(snap.Quantile(0)); q != lo {
		t.Fatalf("q0 = %d, want first bucket's lower bound %d", q, lo)
	}
	if q0, qneg := snap.Quantile(0), snap.Quantile(-0.5); q0 != qneg {
		t.Fatalf("q0 %v and q-0.5 %v differ", q0, qneg)
	}
	if int64(snap.Quantile(0)) > 100 {
		t.Fatalf("q0 = %v over-reports the minimum 100", snap.Quantile(0))
	}
	if q := int64(snap.Quantile(1)); q != 50_000 {
		t.Fatalf("q1 = %d, want observed max 50000", q)
	}
	if q1, qbig := snap.Quantile(1), snap.Quantile(2.5); q1 != qbig {
		t.Fatalf("q1 %v and q2.5 %v differ", q1, qbig)
	}
	// Tiny positive q maps to rank 1 (the first observation), not rank 0.
	if q := int64(snap.Quantile(1e-12)); q > int64(snap.Quantile(0.5)) {
		t.Fatalf("q≈0 = %d above the median %d", q, int64(snap.Quantile(0.5)))
	}
	// Empty snapshot: every quantile is 0.
	var empty Histogram
	es := empty.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if es.Quantile(q) != 0 {
			t.Fatalf("empty q%v = %v, want 0", q, es.Quantile(q))
		}
	}
}

// TestHistogramMergeReturnsValue pins Merge's value semantics: the receiver
// is not mutated; the merged snapshot is the return value.
func TestHistogramMergeReturnsValue(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	b.Observe(1000)
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa.Merge(sb)
	if merged.Count != 2 || merged.Max != 1000 {
		t.Fatalf("merged count=%d max=%d, want 2/1000", merged.Count, merged.Max)
	}
	if sa.Count != 1 || sa.Max != 100 {
		t.Fatalf("Merge mutated its receiver: %+v", sa)
	}
}
