package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// TraceJSON is the wire form of one retained trace at /debug/traces.
type TraceJSON struct {
	ID       string        `json:"id"`
	Needle   int64         `json:"needle"`
	Start    time.Time     `json:"start"`
	DurNS    time.Duration `json:"dur_ns"`
	Outcome  string        `json:"outcome"`
	Err      string        `json:"err,omitempty"`
	Replica  int           `json:"replica"`
	Attempts int           `json:"attempts"`
	RunSeq   int           `json:"run_seq"`
	RunLabel string        `json:"run_label,omitempty"`
	Spans    []SpanJSON    `json:"spans"`
}

// SpanJSON is one stage span, offsets in nanoseconds from trace start.
type SpanJSON struct {
	Stage string        `json:"stage"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

func traceJSON(tr *ReqTrace) TraceJSON {
	out := TraceJSON{
		ID:       tr.ID.String(),
		Needle:   tr.Needle,
		Start:    tr.Start,
		DurNS:    tr.Dur(),
		Outcome:  tr.Outcome.String(),
		Err:      tr.Err,
		Replica:  tr.Replica,
		Attempts: tr.Attempts,
		RunSeq:   tr.RunSeq,
		RunLabel: tr.RunLabel,
		Spans:    make([]SpanJSON, len(tr.Spans)),
	}
	for i, s := range tr.Spans {
		out.Spans[i] = SpanJSON{Stage: s.Stage.String(), Start: s.Start, End: s.End}
	}
	return out
}

// DebugHandler serves the retained traces:
//
//	GET /debug/traces            → JSON list (newest first), ?outcome= filters
//	GET /debug/traces?id=<hex>   → JSON for one trace
//	GET /debug/traces?id=<hex>&format=text → human-readable span breakdown
func (o *Observer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if idHex := r.URL.Query().Get("id"); idHex != "" {
			o.serveOne(w, r, idHex)
			return
		}
		outcome := r.URL.Query().Get("outcome")
		traces := o.Traces()
		list := make([]TraceJSON, 0, len(traces))
		for _, tr := range traces {
			if outcome != "" && tr.Outcome.String() != outcome {
				continue
			}
			list = append(list, traceJSON(tr))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"count":     len(list),
			"begun":     o.Begun(),
			"abandoned": o.Abandoned(),
			"traces":    list,
		})
	})
}

func (o *Observer) serveOne(w http.ResponseWriter, r *http.Request, idHex string) {
	var id TraceID
	tr := (*ReqTrace)(nil)
	if parsed, err := ParseTraceparent("00-" + idHex + "-0000000000000001-01"); err == nil {
		id = parsed
		tr = o.Find(id)
	}
	if tr == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, FormatTrace(tr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(traceJSON(tr))
}

// FormatTrace renders one finished trace as a human-readable span table with
// a proportional bar per stage — the single-trace debugging view.
func FormatTrace(tr *ReqTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  needle=%d  outcome=%s  dur=%v\n",
		tr.ID, tr.Needle, tr.Outcome, tr.Dur())
	fmt.Fprintf(&b, "  started %s  replica=%d  attempts=%d",
		tr.Start.Format(time.RFC3339Nano), tr.Replica, tr.Attempts)
	if tr.Err != "" {
		fmt.Fprintf(&b, "  err=%q", tr.Err)
	}
	b.WriteByte('\n')
	if tr.RunSeq != 0 {
		fmt.Fprintf(&b, "  step-clock run: #%d %s\n", tr.RunSeq, tr.RunLabel)
	}
	total := tr.Dur()
	const width = 40
	for _, s := range tr.Spans {
		bar := 0
		if total > 0 {
			bar = int(float64(s.Dur()) / float64(total) * width)
		}
		if bar > width {
			bar = width
		}
		fmt.Fprintf(&b, "  %-16s %12v  [%+12v] %s\n",
			s.Stage, s.Dur(), s.Start, strings.Repeat("#", bar))
	}
	return b.String()
}
