package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// debugDoc is the /debug/traces list document.
type debugDoc struct {
	Count     int         `json:"count"`
	Begun     int64       `json:"begun"`
	Abandoned int64       `json:"abandoned"`
	Traces    []TraceJSON `json:"traces"`
}

func debugGet(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

// TestDebugHandler drives the whole /debug/traces surface: list, outcome
// filter, single-trace JSON, text view, misses, and the method guard.
func TestDebugHandler(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	mesh := mk(o, 1, start, OutcomeMesh, []Stage{StageAdmit, StageMesh},
		[]time.Duration{time.Microsecond, time.Millisecond})
	fo := mk(o, 2, start, OutcomeFailover,
		[]Stage{StageAdmit, StageMesh, StageFailover, StageMesh},
		[]time.Duration{time.Microsecond, time.Millisecond, 200 * time.Microsecond, time.Millisecond})
	fo.LinkRun(4, "serve round 4")
	h := o.DebugHandler()

	rec := debugGet(t, h, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	var doc debugDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("list: %v", err)
	}
	if doc.Count != 2 || len(doc.Traces) != 2 || doc.Begun != 2 {
		t.Fatalf("list doc: %+v", doc)
	}

	rec = debugGet(t, h, "/debug/traces?outcome=failover")
	var filtered debugDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if filtered.Count != 1 || filtered.Traces[0].ID != fo.ID.String() {
		t.Fatalf("outcome filter: %+v", filtered)
	}
	if filtered.Traces[0].RunSeq != 4 || filtered.Traces[0].RunLabel != "serve round 4" {
		t.Errorf("failover trace lost its step-clock link: %+v", filtered.Traces[0])
	}
	var sum time.Duration
	for _, s := range filtered.Traces[0].Spans {
		sum += s.End - s.Start
	}
	if sum != filtered.Traces[0].DurNS {
		t.Errorf("JSON spans sum to %s, dur_ns is %s", sum, filtered.Traces[0].DurNS)
	}

	rec = debugGet(t, h, "/debug/traces?id="+mesh.ID.String())
	var one TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.ID != mesh.ID.String() || one.Outcome != "mesh" {
		t.Fatalf("single trace: %+v", one)
	}

	rec = debugGet(t, h, "/debug/traces?id="+fo.ID.String()+"&format=text")
	text := rec.Body.String()
	for _, want := range []string{"outcome=failover", "step-clock run: #4 serve round 4", "failover_hop", "#"} {
		if !strings.Contains(text, want) {
			t.Errorf("text view missing %q:\n%s", want, text)
		}
	}

	if rec = debugGet(t, h, "/debug/traces?id="+NewTraceID().String()); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", rec.Code)
	}
	if rec = debugGet(t, h, "/debug/traces?id=nothex"); rec.Code != http.StatusNotFound {
		t.Errorf("malformed id: %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", rec.Code)
	}
}

// TestFormatTraceZeroDur: a trace whose spans all clamped to zero width must
// not divide by zero or emit an over-wide bar.
func TestFormatTraceZeroDur(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	tr := o.Begin(TraceID{}, 3, start)
	tr.MarkAt(StageAdmit, start)
	tr.MarkAt(StageMesh, start)
	tr.MarkAt(StageDeliver, start)
	tr.End = tr.Start
	tr.Outcome = OutcomeMesh
	out := FormatTrace(tr)
	if !strings.Contains(out, "admit") || strings.Count(out, "#") > 0 {
		t.Errorf("zero-duration trace render:\n%s", out)
	}
}
