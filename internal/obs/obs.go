// Package obs is the end-to-end query observability layer (DESIGN.md §3.9):
// wall-clock request traces, per-stage latency decomposition, Prometheus
// text exposition, and structured logging for the serving stack.
//
// Where internal/trace records *simulated* step-clock spans inside one mesh
// round, obs records *wall-clock* spans across a query's whole lifecycle —
// admission, queue wait, batch linger, mesh rounds, retry backoff, failover
// hops, oracle fallback, response delivery — so a p99 outlier can be
// attributed to the stage that produced it. The round span carries the
// sequence number of its step-clock trace.Run, joining simulated steps and
// wall time in one record.
//
// The design mirrors the mesh.Tracer/mesh.Injector seams: a nil *Observer
// disables everything at the cost of one pointer check per boundary — no
// clock reads, no allocation — so the serving hot path is byte-identical to
// the unobserved build. With an Observer installed, every request gets a
// ReqTrace whose spans are *contiguous by construction*: each Mark closes
// the span [cursor, now] and advances the cursor, so the spans of a finished
// trace always partition its end-to-end duration exactly (invariant-tested
// like the §3.4 step partition). Completed traces land in a bounded,
// tail-biased ring (ring.go) served at /debug/traces (http.go); stage
// histograms and outcome counters feed the Prometheus exposition (prom.go).
package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Stage names one lifecycle interval of a served query. The enum order is
// the nominal lifecycle order; a trace may repeat Mesh/Backoff (retries) and
// Failover (multiple hops), and skips stages its path never entered.
type Stage uint8

const (
	// StageAdmit: Lookup entry → admission-queue enqueue (or rejection).
	StageAdmit Stage = iota
	// StageQueue: enqueue → the collector dequeues the request.
	StageQueue
	// StageLinger: dequeue → the executor starts serving the batch. Covers
	// the fill/linger window plus any wait in the one-slot pipeline channel.
	StageLinger
	// StageMesh: one mesh-round attempt (includes any canary probe run
	// immediately before it on the circuit-open path).
	StageMesh
	// StageBackoff: the jittered sleep between retry attempts.
	StageBackoff
	// StageFailover: one fleet-level re-dispatch hop — from a replica's
	// failure surfacing to the next replica's admission.
	StageFailover
	// StageOracle: host-side dictionary fallback (instance degrade rung or
	// the fleet's last rung).
	StageOracle
	// StageDeliver: response leaving the serving goroutine → the caller's
	// Lookup (or the fleet dispatch loop) observing it.
	StageDeliver

	numStages
)

var stageNames = [numStages]string{
	"admit", "queue_wait", "batch_linger", "mesh_round",
	"retry_backoff", "failover_hop", "oracle_fallback", "deliver",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Outcome classifies a finished trace.
type Outcome uint8

const (
	OutcomeMesh     Outcome = iota // answered by a mesh round, first-pick replica
	OutcomeDegraded                // answered by a host oracle (instance rung)
	OutcomeFailover                // answered by a non-first replica's mesh round
	OutcomeOracle                  // answered by the fleet-level oracle rung
	OutcomeRejected                // refused with ErrOverloaded
	OutcomeError                   // a typed fault reached the caller
	OutcomeClosed                  // refused after Shutdown

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"mesh", "degraded", "failover", "oracle", "rejected", "error", "closed",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// answered reports whether the outcome delivered a correct answer.
func (o Outcome) answered() bool {
	return o == OutcomeMesh || o == OutcomeDegraded || o == OutcomeFailover || o == OutcomeOracle
}

// Span is one closed wall-clock stage interval, stored as offsets from the
// trace start so a serialized trace is self-contained.
type Span struct {
	Stage Stage         `json:"-"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Dur is the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// ReqTrace is one request's lifecycle record. It is owned by exactly one
// goroutine at a time — ownership moves with the request along the serving
// pipeline's channel handoffs (Lookup → collector → executor → Lookup),
// which order all Marks without locks. After Finish the trace is immutable.
type ReqTrace struct {
	ID     TraceID
	Needle int64
	// Class is the request's class index (the serving layer's query kind):
	// stage marks land in the observer's per-class histograms. 0 when the
	// observer was built without classes.
	Class int
	Start time.Time
	Spans []Span

	// Cross-link to the step-clock run (internal/trace) that answered this
	// request: the run's stable sequence number and its (tagged) label.
	// Zero/empty until the serving round succeeds.
	RunSeq   int
	RunLabel string

	Replica  int // serving replica index; -1 = fleet oracle; -2 = unset
	Attempts int // mesh-round attempts across all replicas
	Outcome  Outcome
	Err      string // the delivered error's message, if any
	End      time.Time

	o      *Observer
	cursor time.Time
}

// Dur is the finished trace's end-to-end duration. The spans partition it
// exactly: sum(span.Dur()) == Dur() (see TestTracePartition*).
func (tr *ReqTrace) Dur() time.Duration { return tr.End.Sub(tr.Start) }

// Mark closes the stage span [cursor, now] and advances the cursor, feeding
// the observer's per-stage wall-clock histogram.
func (tr *ReqTrace) Mark(stage Stage) { tr.MarkAt(stage, time.Now()) }

// MarkAt is Mark with a caller-supplied clock reading, so a batch-wide
// boundary (the executor marking every request of a round) costs one clock
// read, and every request of the batch agrees on where the boundary fell.
func (tr *ReqTrace) MarkAt(stage Stage, now time.Time) {
	d := now.Sub(tr.cursor)
	if d < 0 { // clock skew across goroutines; clamp rather than corrupt
		d = 0
		now = tr.cursor
	}
	tr.Spans = append(tr.Spans, Span{Stage: stage, Start: tr.cursor.Sub(tr.Start), End: now.Sub(tr.Start)})
	tr.cursor = now
	tr.o.stages[tr.Class][stage].Observe(d)
	if l := tr.o.cfg.Logger; l != nil && l.Enabled(context.Background(), slog.LevelDebug) {
		l.LogAttrs(context.Background(), slog.LevelDebug, "stage",
			slog.String("trace", tr.ID.String()),
			slog.String("stage", stage.String()),
			slog.Duration("dur", d))
	}
}

// LinkRun attaches the step-clock run that served this request's answering
// round (trace.Handle.Seq/Label at the serve layer).
func (tr *ReqTrace) LinkRun(seq int, label string) {
	tr.RunSeq, tr.RunLabel = seq, label
}

// HasStage reports whether any span of the trace carries the stage.
func (tr *ReqTrace) HasStage(stage Stage) bool {
	for _, s := range tr.Spans {
		if s.Stage == stage {
			return true
		}
	}
	return false
}

// StageTotal sums the durations of every span with the given stage.
func (tr *ReqTrace) StageTotal(stage Stage) time.Duration {
	var d time.Duration
	for _, s := range tr.Spans {
		if s.Stage == stage {
			d += s.Dur()
		}
	}
	return d
}

// Config tunes an Observer. The zero value is usable.
type Config struct {
	// Ring bounds the recent-trace ring (default 256).
	Ring int
	// SlowN is how many slowest traces are always retained regardless of
	// ring churn (default 16).
	SlowN int
	// SLOP99 is the latency SLO the burn-rate gauge measures against:
	// at most 1% of answered requests may exceed it (default 50ms).
	SLOP99 time.Duration
	// SLOMaxDegraded is the degraded-fraction SLO: at most this fraction of
	// answered requests may be oracle answers (default 0.01).
	SLOMaxDegraded float64
	// Logger, when set, receives structured events: one per stage boundary
	// at Debug, one per interesting (slow/degraded/failovered/errored)
	// trace completion at Info. Nil disables logging entirely.
	Logger *slog.Logger
	// Classes are the label values of the request-class dimension — the
	// serving layer passes its query-kind names, so stage histograms and the
	// Prometheus exposition split by kind. Empty means one unnamed class
	// (the pre-kind layout, and what Begin without a class uses).
	Classes []string
}

// Observer is the per-server observability hub: it mints request traces,
// aggregates per-stage wall-clock histograms and per-outcome counters, and
// retains completed traces for /debug/traces. One Observer serves one
// instance — or one fleet together with all its replicas (the fleet installs
// itself on each instance config, so instance-side stage marks land in the
// fleet's histograms and the trace follows the request across replicas).
type Observer struct {
	cfg       Config
	stages    [][numStages]Histogram // indexed by class, then stage
	outcomes  [numOutcomes]atomic.Int64
	abandoned atomic.Int64 // traces dropped because the client gave up mid-flight
	begun     atomic.Int64
	ring      collector
}

// New returns an Observer with the config's zero values defaulted.
func New(cfg Config) *Observer {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.SlowN <= 0 {
		cfg.SlowN = 16
	}
	if cfg.SlowN > cfg.Ring {
		cfg.SlowN = cfg.Ring
	}
	if cfg.SLOP99 <= 0 {
		cfg.SLOP99 = 50 * time.Millisecond
	}
	if cfg.SLOMaxDegraded <= 0 || cfg.SLOMaxDegraded > 1 {
		cfg.SLOMaxDegraded = 0.01
	}
	classes := len(cfg.Classes)
	if classes == 0 {
		classes = 1
	}
	o := &Observer{cfg: cfg, stages: make([][numStages]Histogram, classes)}
	o.ring.init(cfg.Ring, cfg.SlowN)
	return o
}

// Classes returns the class label values (a single empty name when the
// observer was built classless).
func (o *Observer) Classes() []string {
	if len(o.cfg.Classes) == 0 {
		return []string{""}
	}
	return o.cfg.Classes
}

// SLO reports the configured latency/degraded-fraction SLO targets.
func (o *Observer) SLO() (p99 time.Duration, maxDegraded float64) {
	return o.cfg.SLOP99, o.cfg.SLOMaxDegraded
}

// Begin mints the trace for one request. start is the caller's own
// entry-time reading so the trace's end-to-end window matches the latency
// sample the caller records; parent is the W3C trace ID propagated from an
// upstream hop (zero = mint a fresh one).
func (o *Observer) Begin(parent TraceID, needle int64, start time.Time) *ReqTrace {
	return o.BeginClass(0, parent, needle, start)
}

// BeginClass is Begin for a specific request class (query kind): the
// trace's stage marks land in that class's histograms. Out-of-range class
// indices clamp to 0, so an observer built classless still accepts kinded
// traffic.
func (o *Observer) BeginClass(class int, parent TraceID, needle int64, start time.Time) *ReqTrace {
	o.begun.Add(1)
	if class < 0 || class >= len(o.stages) {
		class = 0
	}
	id := parent
	if id.IsZero() {
		id = NewTraceID()
	}
	return &ReqTrace{
		ID:      id,
		Needle:  needle,
		Class:   class,
		Start:   start,
		Spans:   make([]Span, 0, 8),
		Replica: -2,
		o:       o,
		cursor:  start,
	}
}

// Finish seals the trace: the final deliver span [cursor, now] closes the
// partition, the outcome counters advance, and the trace enters the
// retention ring. Returns the end-to-end duration. The caller must be the
// trace's creator and the request must be fully delivered — a trace whose
// request was abandoned mid-flight (client context expiry) must go to
// Abandon instead, because the serving goroutines may still append spans.
func (o *Observer) Finish(tr *ReqTrace, outcome Outcome, err error) time.Duration {
	now := time.Now()
	tr.MarkAt(StageDeliver, now)
	tr.End = tr.cursor // == now unless a skew clamp moved it
	tr.Outcome = outcome
	if err != nil {
		tr.Err = err.Error()
	}
	o.outcomes[outcome].Add(1)
	interesting := outcome == OutcomeDegraded || outcome == OutcomeFailover ||
		outcome == OutcomeOracle || outcome == OutcomeError
	o.ring.offer(tr, interesting)
	if l := o.cfg.Logger; l != nil && (interesting || l.Enabled(context.Background(), slog.LevelDebug)) {
		lvl := slog.LevelDebug
		if interesting {
			lvl = slog.LevelInfo
		}
		l.LogAttrs(context.Background(), lvl, "trace",
			slog.String("trace", tr.ID.String()),
			slog.String("outcome", outcome.String()),
			slog.Duration("dur", tr.Dur()),
			slog.Int("replica", tr.Replica),
			slog.Int("attempts", tr.Attempts),
			slog.Int("run_seq", tr.RunSeq),
			slog.String("err", tr.Err))
	}
	return tr.Dur()
}

// Abandon accounts a trace whose client gave up while the request was still
// in flight. The trace itself is dropped, not retained: the serving pipeline
// still owns it and will keep marking stages into it until the (unread)
// response is delivered, so retaining it would race those writes.
func (o *Observer) Abandon(tr *ReqTrace) {
	o.abandoned.Add(1)
}

// StageSnapshot is the per-stage aggregate view (count and total wall time
// per stage) the load generator samples at window boundaries to decompose
// each reporting window's latency by stage.
type StageSnapshot struct {
	Count [numStages]int64
	SumNS [numStages]int64
}

// StageNames lists the stage names in enum order, for iterating snapshots.
func StageNames() []string { return stageNames[:] }

// Stages samples the per-stage counters summed across classes (two atomic
// loads per stage per class) — the classless aggregate view.
func (o *Observer) Stages() StageSnapshot {
	var s StageSnapshot
	for c := range o.stages {
		for i := range o.stages[c] {
			snap := &o.stages[c][i]
			s.Count[i] += snap.Count()
			s.SumNS[i] += snap.SumNS()
		}
	}
	return s
}

// StagesClass samples one class's per-stage counters (out-of-range class
// yields the zero snapshot).
func (o *Observer) StagesClass(class int) StageSnapshot {
	var s StageSnapshot
	if class < 0 || class >= len(o.stages) {
		return s
	}
	for i := range o.stages[class] {
		snap := &o.stages[class][i]
		s.Count[i] = snap.Count()
		s.SumNS[i] = snap.SumNS()
	}
	return s
}

// StageHist snapshots one stage's full wall-clock histogram merged across
// classes (Prometheus exposition; quantile queries in tests).
func (o *Observer) StageHist(stage Stage) HistSnapshot {
	s := o.stages[0][stage].Snapshot()
	for c := 1; c < len(o.stages); c++ {
		s = s.Merge(o.stages[c][stage].Snapshot())
	}
	return s
}

// StageHistClass snapshots one class's histogram for one stage.
func (o *Observer) StageHistClass(class int, stage Stage) HistSnapshot {
	if class < 0 || class >= len(o.stages) {
		return HistSnapshot{}
	}
	return o.stages[class][stage].Snapshot()
}

// OutcomeCount reads one outcome counter.
func (o *Observer) OutcomeCount(oc Outcome) int64 { return o.outcomes[oc].Load() }

// Abandoned reads the abandoned-trace counter.
func (o *Observer) Abandoned() int64 { return o.abandoned.Load() }

// Begun reads the minted-trace counter.
func (o *Observer) Begun() int64 { return o.begun.Load() }

// Traces returns the retained completed traces, newest first (the union of
// the recent ring, the always-kept interesting ring, and the slowest-N set).
func (o *Observer) Traces() []*ReqTrace { return o.ring.snapshot() }

// Find returns the retained trace with the given ID, or nil.
func (o *Observer) Find(id TraceID) *ReqTrace { return o.ring.find(id) }

// ctxKey carries a *ReqTrace across API layers (fleet → instance) and a
// propagated parent TraceID (HTTP handler → Lookup).
type ctxKey int

const (
	ctxTrace ctxKey = iota
	ctxParent
)

// NewContext returns ctx carrying the trace, so a lower serving layer (the
// instance inside a fleet) marks stages on its caller's trace instead of
// minting its own.
func NewContext(ctx context.Context, tr *ReqTrace) context.Context {
	return context.WithValue(ctx, ctxTrace, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *ReqTrace {
	tr, _ := ctx.Value(ctxTrace).(*ReqTrace)
	return tr
}

// DetachContext returns ctx with any carried trace removed (the parent
// TraceID still flows). A trace is single-owner — exactly one goroutine may
// mark or seal it — so a caller racing two concurrent dispatches for one
// request (hedged failover) must not hand the shared trace to both: each
// detached dispatch begins and seals its own child trace under the same
// propagated ID, and the caller keeps marking the original.
func DetachContext(ctx context.Context) context.Context {
	if FromContext(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxTrace, (*ReqTrace)(nil))
}

// ContextWithParent returns ctx carrying a propagated W3C trace ID (from an
// incoming traceparent header) for Begin to adopt.
func ContextWithParent(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, ctxParent, id)
}

// ParentFromContext returns the propagated trace ID, or the zero TraceID.
func ParentFromContext(ctx context.Context) TraceID {
	id, _ := ctx.Value(ctxParent).(TraceID)
	return id
}
