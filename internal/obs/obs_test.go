package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// mk builds a finished trace with deterministic, caller-chosen stage
// boundaries: stages[i] lasts durs[i], then Finish closes the deliver span.
func mk(o *Observer, needle int64, start time.Time, outcome Outcome, stages []Stage, durs []time.Duration) *ReqTrace {
	tr := o.Begin(TraceID{}, needle, start)
	now := start
	for i, st := range stages {
		now = now.Add(durs[i])
		tr.MarkAt(st, now)
	}
	o.Finish(tr, outcome, nil)
	return tr
}

// TestTraceSpansPartitionExactly is the §3.9 analogue of the step-partition
// invariant: a finished trace's spans are contiguous — each starts where the
// previous ended, the first at 0 — and sum exactly to the end-to-end
// duration, with no gap and no overlap.
func TestTraceSpansPartitionExactly(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	tr := mk(o, 7, start, OutcomeMesh,
		[]Stage{StageAdmit, StageQueue, StageLinger, StageMesh, StageBackoff, StageMesh},
		[]time.Duration{time.Microsecond, 2 * time.Millisecond, 500 * time.Microsecond,
			3 * time.Millisecond, time.Millisecond, 4 * time.Millisecond})
	checkPartition(t, tr)
	if got := tr.StageTotal(StageMesh); got != 7*time.Millisecond {
		t.Errorf("StageMesh total %s, want 7ms (two attempts summed)", got)
	}
	if !tr.HasStage(StageBackoff) || tr.HasStage(StageOracle) {
		t.Errorf("HasStage wrong: backoff=%v oracle=%v", tr.HasStage(StageBackoff), tr.HasStage(StageOracle))
	}
	if len(tr.Spans) != 7 { // 6 marks + the deliver span Finish appends
		t.Errorf("got %d spans, want 7", len(tr.Spans))
	}
}

// checkPartition asserts the span-partition invariant on one finished trace.
func checkPartition(t *testing.T, tr *ReqTrace) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Fatalf("trace %s finished with no spans", tr.ID)
	}
	if tr.Spans[0].Start != 0 {
		t.Errorf("trace %s: first span starts at %s, want 0", tr.ID, tr.Spans[0].Start)
	}
	var sum time.Duration
	for i, s := range tr.Spans {
		if s.End < s.Start {
			t.Errorf("trace %s span %d (%s): negative duration [%s, %s]", tr.ID, i, s.Stage, s.Start, s.End)
		}
		if i > 0 && s.Start != tr.Spans[i-1].End {
			t.Errorf("trace %s span %d (%s): starts at %s, previous ended at %s (gap/overlap)",
				tr.ID, i, s.Stage, s.Start, tr.Spans[i-1].End)
		}
		sum += s.Dur()
	}
	if last := tr.Spans[len(tr.Spans)-1]; last.End != tr.Dur() {
		t.Errorf("trace %s: last span ends at %s, e2e is %s", tr.ID, last.End, tr.Dur())
	}
	if sum != tr.Dur() {
		t.Errorf("trace %s: spans sum to %s, e2e is %s", tr.ID, sum, tr.Dur())
	}
}

// TestMarkClampsClockSkew pins the cross-goroutine skew rule: a mark whose
// clock reading precedes the cursor yields a zero-length span, never a
// negative one, and the partition stays exact.
func TestMarkClampsClockSkew(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	tr := o.Begin(TraceID{}, 1, start)
	tr.MarkAt(StageAdmit, start.Add(time.Millisecond))
	tr.MarkAt(StageQueue, start.Add(500*time.Microsecond)) // earlier than cursor
	tr.MarkAt(StageMesh, start.Add(2*time.Millisecond))
	o.Finish(tr, OutcomeMesh, nil)
	if d := tr.Spans[1].Dur(); d != 0 {
		t.Errorf("skewed span lasted %s, want clamped 0", d)
	}
	checkPartition(t, tr)
}

// TestObserverCountsOutcomesAndStages checks the aggregate side: per-outcome
// counters, per-stage histogram sums, and the begun/abandoned ledger.
func TestObserverCountsOutcomesAndStages(t *testing.T) {
	o := New(Config{})
	start := time.Now()
	mk(o, 1, start, OutcomeMesh, []Stage{StageAdmit, StageMesh}, []time.Duration{time.Millisecond, time.Millisecond})
	mk(o, 2, start, OutcomeMesh, []Stage{StageAdmit, StageMesh}, []time.Duration{time.Millisecond, time.Millisecond})
	mk(o, 3, start, OutcomeDegraded, []Stage{StageAdmit, StageOracle}, []time.Duration{time.Millisecond, time.Millisecond})
	o.Abandon(o.Begin(TraceID{}, 4, start))

	if got := o.OutcomeCount(OutcomeMesh); got != 2 {
		t.Errorf("mesh outcomes %d, want 2", got)
	}
	if got := o.OutcomeCount(OutcomeDegraded); got != 1 {
		t.Errorf("degraded outcomes %d, want 1", got)
	}
	if o.Begun() != 4 || o.Abandoned() != 1 {
		t.Errorf("begun %d abandoned %d, want 4/1", o.Begun(), o.Abandoned())
	}
	snap := o.Stages()
	if snap.Count[StageAdmit] != 3 || snap.SumNS[StageAdmit] != 3*int64(time.Millisecond) {
		t.Errorf("admit stage count=%d sum=%d, want 3 / 3ms", snap.Count[StageAdmit], snap.SumNS[StageAdmit])
	}
	if snap.Count[StageOracle] != 1 {
		t.Errorf("oracle stage count=%d, want 1", snap.Count[StageOracle])
	}
	// The abandoned trace was dropped, not retained.
	if got := len(o.Traces()); got != 3 {
		t.Errorf("retained %d traces, want 3 (abandoned not retained)", got)
	}
}

// TestRingTailBias pins the retention policy: churning the recent ring with
// healthy traffic must not evict the interesting traces or the slowest-N.
func TestRingTailBias(t *testing.T) {
	o := New(Config{Ring: 4, SlowN: 2})
	start := time.Now()

	slow := mk(o, 100, start, OutcomeMesh, []Stage{StageMesh}, []time.Duration{time.Second})
	bad := mk(o, 101, start, OutcomeFailover, []Stage{StageMesh}, []time.Duration{time.Millisecond})
	// 40 fast healthy traces — 10× the recent ring.
	for i := 0; i < 40; i++ {
		mk(o, int64(i), start.Add(time.Duration(i)*time.Millisecond), OutcomeMesh,
			[]Stage{StageMesh}, []time.Duration{time.Microsecond})
	}

	if o.Find(slow.ID) == nil {
		t.Error("slowest trace evicted by recent-ring churn")
	}
	if o.Find(bad.ID) == nil {
		t.Error("failover trace evicted by recent-ring churn")
	}
	got := o.Traces()
	// recent(4) + interesting(bad) + slowest(slow, bad or another) — bounded,
	// deduplicated, newest first.
	if len(got) > 4+2+2 {
		t.Errorf("snapshot has %d traces, want ≤ 8 (bounded)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].End.After(got[i-1].End) {
			t.Errorf("snapshot not newest-first at %d", i)
		}
	}
}

// TestFindReturnsRetainedTrace covers lookup by ID and the miss path.
func TestFindReturnsRetainedTrace(t *testing.T) {
	o := New(Config{})
	tr := mk(o, 5, time.Now(), OutcomeMesh, []Stage{StageMesh}, []time.Duration{time.Millisecond})
	if got := o.Find(tr.ID); got != tr {
		t.Fatalf("Find(%s) = %v, want the retained trace", tr.ID, got)
	}
	if got := o.Find(NewTraceID()); got != nil {
		t.Fatalf("Find(unknown) = %v, want nil", got)
	}
}

// TestBeginAdoptsParentID pins W3C propagation: a non-zero parent becomes the
// trace's ID; a zero parent mints a fresh one.
func TestBeginAdoptsParentID(t *testing.T) {
	o := New(Config{})
	parent := NewTraceID()
	tr := o.Begin(parent, 1, time.Now())
	if tr.ID != parent {
		t.Errorf("trace ID %s, want adopted parent %s", tr.ID, parent)
	}
	tr2 := o.Begin(TraceID{}, 1, time.Now())
	if tr2.ID.IsZero() || tr2.ID == parent {
		t.Errorf("zero parent minted ID %s (parent %s)", tr2.ID, parent)
	}
}

// TestFinishRecordsErrAndOutcome covers the error-path bookkeeping.
func TestFinishRecordsErrAndOutcome(t *testing.T) {
	o := New(Config{})
	tr := o.Begin(TraceID{}, 9, time.Now())
	tr.Mark(StageAdmit)
	o.Finish(tr, OutcomeError, errors.New("mesh step budget exhausted"))
	if tr.Outcome != OutcomeError || tr.Err != "mesh step budget exhausted" {
		t.Errorf("outcome=%s err=%q", tr.Outcome, tr.Err)
	}
	if o.Find(tr.ID) == nil {
		t.Error("errored trace is interesting; must be retained")
	}
}

// TestContextCarriesTraceAndParent covers both context channels: the live
// *ReqTrace handoff (fleet → instance) and the propagated parent ID
// (HTTP handler → Lookup).
func TestContextCarriesTraceAndParent(t *testing.T) {
	o := New(Config{})
	ctx := context.Background()
	if FromContext(ctx) != nil || !ParentFromContext(ctx).IsZero() {
		t.Fatal("empty context must carry neither trace nor parent")
	}
	tr := o.Begin(TraceID{}, 1, time.Now())
	if got := FromContext(NewContext(ctx, tr)); got != tr {
		t.Errorf("FromContext = %v, want %v", got, tr)
	}
	id := NewTraceID()
	if got := ParentFromContext(ContextWithParent(ctx, id)); got != id {
		t.Errorf("ParentFromContext = %s, want %s", got, id)
	}
}

// TestStageAndOutcomeNames pins the wire names (Prometheus label values and
// JSON fields are built from them — renames are breaking changes).
func TestStageAndOutcomeNames(t *testing.T) {
	wantStages := []string{"admit", "queue_wait", "batch_linger", "mesh_round",
		"retry_backoff", "failover_hop", "oracle_fallback", "deliver"}
	for i, w := range wantStages {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := StageNames(); len(got) != int(numStages) {
		t.Errorf("StageNames has %d entries, want %d", len(got), numStages)
	}
	wantOutcomes := []string{"mesh", "degraded", "failover", "oracle", "rejected", "error", "closed"}
	for i, w := range wantOutcomes {
		if got := Outcome(i).String(); got != w {
			t.Errorf("Outcome(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(200).String() != "unknown" || Outcome(200).String() != "unknown" {
		t.Error("out-of-range enums must stringify as unknown")
	}
}

// TestConfigDefaults pins New's zero-value defaulting.
func TestConfigDefaults(t *testing.T) {
	o := New(Config{})
	p99, maxDeg := o.SLO()
	if p99 != 50*time.Millisecond || maxDeg != 0.01 {
		t.Errorf("default SLO = (%s, %g), want (50ms, 0.01)", p99, maxDeg)
	}
	o2 := New(Config{Ring: 2, SlowN: 100})
	if o2.ring.slowN > 2 {
		t.Errorf("SlowN %d not clamped to Ring", o2.ring.slowN)
	}
}

// TestRingConcurrentOffer exercises the collector under parallel Finish —
// run with -race.
func TestRingConcurrentOffer(t *testing.T) {
	o := New(Config{Ring: 8, SlowN: 4})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			start := time.Now()
			for i := 0; i < 200; i++ {
				oc := OutcomeMesh
				if i%17 == 0 {
					oc = OutcomeFailover
				}
				mk(o, int64(g*1000+i), start, oc, []Stage{StageMesh},
					[]time.Duration{time.Duration(i%7+1) * time.Millisecond})
				if i%13 == 0 {
					o.Traces()
					o.Stages()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := o.OutcomeCount(OutcomeMesh) + o.OutcomeCount(OutcomeFailover); got != 800 {
		t.Errorf("counted %d finishes, want 800", got)
	}
}

// TestLinkRun pins the step-clock cross-link fields.
func TestLinkRun(t *testing.T) {
	o := New(Config{})
	tr := o.Begin(TraceID{}, 1, time.Now())
	tr.LinkRun(3, "serve round 3 [retry 1]")
	if tr.RunSeq != 3 || tr.RunLabel != "serve round 3 [retry 1]" {
		t.Errorf("LinkRun stored seq=%d label=%q", tr.RunSeq, tr.RunLabel)
	}
}

func ExampleReqTrace_partition() {
	o := New(Config{})
	start := time.Unix(0, 0)
	tr := o.Begin(TraceID{}, 42, start)
	tr.MarkAt(StageAdmit, start.Add(1*time.Millisecond))
	tr.MarkAt(StageQueue, start.Add(3*time.Millisecond))
	tr.MarkAt(StageMesh, start.Add(10*time.Millisecond))
	var sum time.Duration
	for _, s := range tr.Spans {
		sum += s.Dur()
	}
	fmt.Println(sum == 10*time.Millisecond)
	// Output: true
}
