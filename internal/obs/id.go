package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
)

// TraceID is the 16-byte W3C trace-context identifier. Requests that cross
// the HTTP boundary carry it in a `traceparent` header so a fleet-side trace
// and the loadgen client agree on the ID; in-process it is minted locally.
type TraceID [16]byte

// IsZero reports the invalid all-zero ID (the W3C spec reserves it).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// idState seeds ID generation once from crypto/rand, then derives IDs with
// an atomic counter — unique without a syscall or lock per request.
var idState struct {
	hi    uint64
	lo    atomic.Uint64
	ready atomic.Bool
}

func initIDState() {
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// Fall back to a fixed nonzero seed; uniqueness still holds via the
		// counter within this process.
		seed = [16]byte{0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15, 1, 2, 3, 4, 5, 6, 7, 8}
	}
	idState.hi = binary.BigEndian.Uint64(seed[:8])
	idState.lo.Store(binary.BigEndian.Uint64(seed[8:]))
	idState.ready.Store(true)
}

// NewTraceID mints a unique non-zero trace ID.
func NewTraceID() TraceID {
	if !idState.ready.Load() {
		initIDState()
	}
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], idState.hi)
	binary.BigEndian.PutUint64(id[8:], idState.lo.Add(1))
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// ErrBadTraceparent reports a malformed traceparent header. Per the W3C
// spec, receivers ignore malformed headers rather than failing the request.
var ErrBadTraceparent = errors.New("obs: malformed traceparent")

// Traceparent renders the W3C header value for this trace:
// version 00, a fresh parent-id (we don't track per-hop span IDs — the
// wall-clock spans live in the trace body), sampled flag set.
func (id TraceID) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, id[:])
	buf = append(buf, '-')
	var parent [8]byte
	if !idState.ready.Load() {
		initIDState()
	}
	// Step by 2 and force the low bit: consecutive values stay distinct
	// (n|1 == (n+1)|1 for even n) and never hit the forbidden all-zero id.
	binary.BigEndian.PutUint64(parent[:], idState.lo.Add(2)|1)
	buf = hex.AppendEncode(buf, parent[:])
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`). Unknown
// versions are accepted if the layout matches, per spec.
func ParseTraceparent(h string) (TraceID, error) {
	var id TraceID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, ErrBadTraceparent
	}
	if h[0] == 'f' && h[1] == 'f' { // version 0xff is forbidden
		return id, ErrBadTraceparent
	}
	if !isHex(h[:2]) || !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return id, ErrBadTraceparent // isHex also rejects spec-forbidden uppercase
	}
	if _, err := hex.Decode(id[:], []byte(h[3:35])); err != nil {
		return TraceID{}, ErrBadTraceparent
	}
	if id.IsZero() {
		return id, ErrBadTraceparent
	}
	return id, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
