package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary latency histogram: HDR-style buckets with 16
// sub-buckets per power-of-two octave (≤ 6.25% relative error per bucket),
// covering 0ns to the full int64 nanosecond range. Observe is one atomic add
// into a fixed array — no allocation, no lock — so it sits on the serving hot
// path (every Lookup) and in the open-loop load generator's per-window
// accounting without disturbing what it measures.
//
// The zero value is ready to use and safe for concurrent Observe/Snapshot.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// histBuckets: values 0..15 get exact buckets; every octave above contributes
// 16 log-spaced buckets. Octaves 4..62 × 16 + 16 exact = 960.
const histBuckets = 16 * 60

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 16 {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // 4..62
	idx := 16*(o-3) + int((uint64(v)>>(o-4))&15)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histUpper is the inclusive upper bound of bucket i — the value Quantile
// reports, so percentiles overestimate by at most one bucket width. The top
// bucket is the catch-all for everything at or above its lower boundary, so
// its upper bound is pinned to MaxInt64 explicitly — the shifted formula
// would overflow int64 there and only lands on the right value by wrap
// accident.
func histUpper(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	o := i/16 + 3
	sub := int64(i % 16)
	return (16+sub+1)<<(o-4) - 1
}

// histLower is the inclusive lower bound of bucket i (what Quantile reports
// at q ≤ 0, so the minimum is never over-reported).
func histLower(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	o := i/16 + 3
	sub := int64(i % 16)
	return (16 + sub) << (o - 4)
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count reads the observation count (one atomic load).
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS reads the total observed nanoseconds (one atomic load). Count and
// SumNS together give the per-window stage means the load generator samples
// at reporting boundaries without paying for a full bucket snapshot.
func (h *Histogram) SumNS() int64 { return h.sum.Load() }

// Snapshot copies the histogram for quantile queries. Concurrent Observes
// may land between bucket reads; the snapshot is a consistent-enough view
// for reporting (same class as the Stats counter snapshots).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Counts: make([]int64, histBuckets),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Counts []int64
	Count  int64
	Sum    int64 // total nanoseconds
	Max    int64 // largest observed value, nanoseconds
}

// Merge returns the bucket-wise sum of two snapshots — how the fleet's
// Prometheus exposition aggregates per-replica histograms into one family
// without losing quantile fidelity (the buckets are fixed, so summing
// counts is exact).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 {
		return o
	}
	if len(o.Counts) == 0 {
		return s
	}
	out := HistSnapshot{
		Counts: make([]int64, histBuckets),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// CountAbove returns how many observations exceeded d — the numerator of the
// SLO burn-rate gauges (requests out of latency budget). Bucket-granular:
// observations in the bucket containing d are counted as above it only when
// the whole bucket lies above, so the result can undercount by at most one
// bucket's population (≤ 6.25% relative error in d).
func (s HistSnapshot) CountAbove(d time.Duration) int64 {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	var above int64
	for i := histIndex(v) + 1; i < len(s.Counts); i++ {
		above += s.Counts[i]
	}
	return above
}

// Quantile returns the q-quantile as the upper bound of the bucket holding
// that rank, clamped to the observed maximum. Edge behaviour is pinned
// (these numbers back /metrics and the SLO saturation clauses, so an edge
// error moves the measured knee): q ≤ 0 reports the *lower* bound of the
// first non-empty bucket — never above the true minimum; q ≥ 1 reports
// exactly Max, the defined upper boundary, with the rank clamped to Count
// so an out-of-range q cannot walk past the populated buckets. Zero when
// the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		for i, c := range s.Counts {
			if c > 0 {
				return time.Duration(histLower(i))
			}
		}
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			u := histUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(s.Max)
}

// Summary reduces the snapshot to the serving percentiles of interest.
func (s HistSnapshot) Summary() LatencySummary {
	out := LatencySummary{Count: s.Count, Max: time.Duration(s.Max)}
	if s.Count > 0 {
		out.Mean = time.Duration(s.Sum / s.Count)
		out.P50 = s.Quantile(0.50)
		out.P95 = s.Quantile(0.95)
		out.P99 = s.Quantile(0.99)
		out.P999 = s.Quantile(0.999)
	}
	return out
}

// LatencySummary is the JSON-facing percentile snapshot embedded in Stats
// (all durations serialize as integer nanoseconds).
type LatencySummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}
