package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// inertEject is an Eject config for tests that drive the scoring machinery
// by hand: the outlier rule is live, but the re-admission prober is parked
// on an hour-long interval so it cannot interleave with the test's samples.
func inertEject(minSamples int64) EjectConfig {
	return EjectConfig{
		Enabled:       true,
		Multiple:      4,
		MinSamples:    minSamples,
		ProbeInterval: time.Hour,
	}
}

// TestLatencyOutlierIsEjected drives the §3.11 scoring rule directly: three
// replicas, two fast and one consistently 100× slower. Once every replica
// clears the sample floor the slow one's EWMA exceeds 4× the fleet median
// and it is ejected — routing then avoids it, the fleet stays Healthy, its
// stats row carries the fleet's "ejected" verdict over the instance's own
// Healthy self-report, and a manual readmit restores it.
func TestLatencyOutlierIsEjected(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 3,
		Policy:   LeastLoaded(),
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		Eject:    inertEject(4),
	})
	for i := 0; i < 6; i++ {
		f.noteLatency(1, time.Millisecond)
		f.noteLatency(2, time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		f.noteLatency(0, 100*time.Millisecond)
	}

	st := f.Stats()
	if st.Ejections != 1 || st.EjectedReplicas != 1 {
		t.Fatalf("100× outlier not ejected: %+v", st)
	}
	row := st.PerReplica[0]
	if !row.Ejected || row.Health != serve.Ejected.String() {
		t.Fatalf("replica 0 row lacks the ejection verdict: %+v", row)
	}
	if row.LatencyEWMA < 10*time.Millisecond {
		t.Fatalf("ejected replica's score %v does not reflect its samples", row.LatencyEWMA)
	}
	if st.Health != serve.Healthy.String() || st.HealthyReplicas != 2 {
		t.Fatalf("fleet with 2 healthy replicas after ejection: %+v", st)
	}

	// Routing avoids the ejected replica while healthy peers exist.
	for i := 0; i < 8; i++ {
		needle := int64(2*i + 1)
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("lookup %d with one ejected replica: %v", needle, err)
		}
		checkAnswer(t, f, needle, res)
		if res.Replica == 0 {
			t.Fatalf("lookup %d routed to the ejected replica", needle)
		}
	}

	if err := f.ReadmitReplica(0); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.Readmissions != 1 || st.EjectedReplicas != 0 || st.PerReplica[0].Ejected {
		t.Fatalf("manual readmit did not clear the ejection: %+v", st)
	}
}

// TestAutoEjectionSparesLastRoutableReplica pins the guard rail: automatic
// ejection never takes the last replica that could serve — a slow answer
// beats an oracle answer — no matter how damning the replica's score.
func TestAutoEjectionSparesLastRoutableReplica(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 3,
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		Eject:    inertEject(2),
	})
	// Establish the fast baseline first — a sample fed to an ejected
	// replica would count toward its re-admission.
	for i := 0; i < 4; i++ {
		f.noteLatency(1, time.Millisecond)
		f.noteLatency(2, time.Millisecond)
	}
	// Operators take replicas 1 and 2 out; only replica 0 can serve.
	if err := f.EjectReplica(1); err != nil {
		t.Fatal(err)
	}
	if err := f.EjectReplica(2); err != nil {
		t.Fatal(err)
	}
	// Replica 0 is an extreme outlier by score — 100× the peers — but it is
	// the last routable replica, so the rule must not fire.
	for i := 0; i < 4; i++ {
		f.noteLatency(0, 100*time.Millisecond)
	}
	st := f.Stats()
	if st.PerReplica[0].Ejected {
		t.Fatalf("auto-ejection took the last routable replica: %+v", st)
	}
	if st.Ejections != 2 {
		t.Fatalf("ejection count %d, want the 2 manual ones", st.Ejections)
	}
	res, err := f.Lookup(context.Background(), 3)
	if err != nil {
		t.Fatalf("lookup on the spared replica: %v", err)
	}
	checkAnswer(t, f, 3, res)
	if res.Replica != 0 {
		t.Fatalf("lookup served by replica %d, want the spared replica 0", res.Replica)
	}
}

// TestAllEjectedDegradesThenProbesReadmit is the satellite-3 contract: with
// every replica manually ejected the fleet is Degraded — /healthz flips to
// 503 with a Retry-After, and RetryAfterHint is one probe interval, because
// re-admission is gated on the prober's next canary. Lookups still answer
// correctly (an ejected replica's slow answer beats an oracle answer), and
// the canary prober then measures the replicas healthy and re-admits them
// without any operator action.
func TestAllEjectedDegradesThenProbesReadmit(t *testing.T) {
	const probeEvery = 25 * time.Millisecond
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		Eject: EjectConfig{
			Enabled:       true,
			MinSamples:    2,
			ProbeInterval: probeEvery,
			ProbeTimeout:  2 * time.Second,
		},
	})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	healthz := func() (int, http.Header) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header
	}

	if code, _ := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz on a whole fleet → %d", code)
	}

	if err := f.EjectReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := f.EjectReplica(1); err != nil {
		t.Fatal(err)
	}
	if h := f.Health(); h != serve.Degraded {
		t.Fatalf("all-ejected fleet health %v, want Degraded", h)
	}
	if hint := f.RetryAfterHint(); hint != probeEvery {
		t.Fatalf("all-ejected RetryAfterHint %v, want the probe interval %v", hint, probeEvery)
	}
	code, hdr := healthz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with every replica ejected → %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 /healthz carried no Retry-After")
	}

	// Serving never stops: the ejection-masked last-resort pick answers.
	res, err := f.Lookup(context.Background(), 3)
	if err != nil {
		t.Fatalf("lookup with every replica ejected: %v", err)
	}
	checkAnswer(t, f, 3, res)
	if st := f.Stats(); st.OracleServed != 0 {
		t.Fatalf("all-ejected lookup fell through to the oracle: %+v", st)
	}

	// The canary prober re-measures the (actually fast) replicas and
	// re-admits them: no operator in the loop.
	deadline := time.Now().Add(10 * time.Second)
	for f.Health() != serve.Healthy && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := f.Stats()
	if f.Health() != serve.Healthy {
		t.Fatalf("prober never re-admitted a healthy replica: %+v", st)
	}
	if st.Readmissions == 0 || st.EjectProbes == 0 {
		t.Fatalf("recovery happened without probes/readmissions on the books: %+v", st)
	}
	if code, _ := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz after prober re-admission → %d", code)
	}
}
