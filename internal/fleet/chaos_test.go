package fleet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestChaosKillsUnderZipfianLoadZeroWrongAnswers is the headline robustness
// scenario (EXPERIMENTS.md E23): a 3-replica fleet under skewed open-fire
// load while the chaos monkey kills and restarts replicas. The acceptance
// bar is absolute — every admitted lookup is answered, every answer matches
// the host oracle — and failover must carry the fleet: crashes happen, yet
// the mesh path (local or failed-over) keeps serving, with the oracle only
// as the last rung.
func TestChaosKillsUnderZipfianLoadZeroWrongAnswers(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 3,
		Policy:   HealthWeighted(),
		Instance: serve.Config{Side: 8, Linger: 200 * time.Microsecond},
	})
	stop := f.StartChaos(ChaosConfig{Seed: 7, KillEvery: 25 * time.Millisecond, Downtime: 10 * time.Millisecond})

	keySpan := uint64(2 * len(f.Tree().Keys)) // ~half hits, half misses
	var answered, degraded atomic.Int64
	const clients = 8
	deadline := time.Now().Add(1200 * time.Millisecond)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, keySpan-1)
			for time.Now().Before(deadline) {
				needle := int64(zipf.Uint64())
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				res, err := f.Lookup(ctx, needle)
				cancel()
				if errors.Is(err, serve.ErrOverloaded) {
					continue // backpressure is a legal outcome, not a wrong answer
				}
				if err != nil {
					t.Errorf("lookup %d under chaos: %v", needle, err)
					return
				}
				checkAnswer(t, f, needle, res)
				answered.Add(1)
				if res.Degraded {
					degraded.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	stop() // blocks until any in-flight kill has restarted its victim

	st := f.Stats()
	if answered.Load() == 0 {
		t.Fatal("chaos run answered nothing")
	}
	if st.Crashes == 0 {
		t.Fatalf("chaos monkey never fired: %+v", st)
	}
	if st.Restarts < st.Crashes {
		t.Fatalf("%d crashes but %d restarts after stop(): the monkey must hand the fleet back whole", st.Crashes, st.Restarts)
	}
	if st.DownReplicas != 0 {
		t.Fatalf("%d replicas still down after the monkey stopped", st.DownReplicas)
	}
	if st.LastTimeToHealthy <= 0 {
		t.Fatalf("restarts happened but no time-to-healthy recorded: %+v", st)
	}
	// Failover dominance: with two healthy replicas always available, the
	// oracle rung must stay a small minority of answers (single-instance
	// chaos would push every crashed-round answer through degrade instead).
	if oracle := st.OracleServed; oracle*5 > answered.Load() {
		t.Fatalf("oracle served %d of %d answers — failover is not carrying the fleet", oracle, answered.Load())
	}
	t.Logf("chaos run: %d answered (%d degraded), %d crashes, %d restarts, %d failover-served, %d oracle, tth max %s",
		answered.Load(), degraded.Load(), st.Crashes, st.Restarts,
		st.FailoverServed, st.OracleServed, st.MaxTimeToHealthy.Round(time.Millisecond))
}

// TestChaosNeverKillsLastReplica pins the monkey's safety rule: with one
// replica already crashed by hand in a 2-replica fleet, the monkey must
// leave the survivor alone.
func TestChaosNeverKillsLastReplica(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 2, Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond}})
	if err := f.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	stop := f.StartChaos(ChaosConfig{Seed: 3, KillEvery: 5 * time.Millisecond, Downtime: time.Millisecond})
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		res, err := f.Lookup(context.Background(), 3)
		if err != nil {
			t.Fatalf("lookup with the monkey loose: %v", err)
		}
		if res.Replica != 1 {
			t.Fatalf("lookup served by %d; the lone survivor must be 1", res.Replica)
		}
	}
	stop()
	if got := f.Stats().Crashes; got != 1 {
		t.Fatalf("monkey killed the last replica: %d crashes, want only the manual one", got)
	}
}
