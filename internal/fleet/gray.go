package fleet

// Gray-failure resilience (DESIGN.md §3.11): hedged dispatch and
// latency-aware replica ejection. A gray-failed replica answers correctly
// and reports Healthy — its breaker sees no faults — but runs an outlier
// multiple slower than its peers (a latency fault injector, a noisy
// neighbour, a thermally throttled core). Crash detection and the breaker
// ladder never notice; these two mechanisms do:
//
//	hedge  — per-dispatch: when the picked replica has not answered within
//	         the hedge delay (a multiple of the recent per-replica p99
//	         median), the same lookup is speculatively re-dispatched to the
//	         next-preferred replica; the first answer wins and the loser is
//	         cancelled.
//	eject  — per-replica: every answered dispatch feeds an EWMA latency
//	         score; a replica whose score exceeds a configurable multiple
//	         of the fleet median is ejected — a fourth health state beside
//	         healthy/degraded/lame-duck — and re-admitted only when
//	         background canary probes measure it back within bounds.
//
// Hedging hides the slow replica from this request; ejection hides it from
// all subsequent ones. The censored-sample rule ties them together: a
// cancelled hedge loser ran *at least* its elapsed time, and that lower
// bound feeds the score, so a replica that is always hedged around still
// accumulates the slow samples that get it ejected.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// HedgeConfig configures speculative re-dispatch of slow lookups.
type HedgeConfig struct {
	// Enabled turns hedging on (default off: hedges cost duplicate work).
	Enabled bool
	// Delay is a fixed hedge delay. Zero derives the delay adaptively:
	// P99Multiple times the median of the per-replica dispatch p99s.
	Delay time.Duration
	// P99Multiple scales the derived delay (default 3). Ignored with Delay.
	P99Multiple float64
	// MinDelay floors the derived delay (default 1ms) so a fast fleet does
	// not hedge every lookup on scheduler noise. Ignored with Delay.
	MinDelay time.Duration
	// MinSamples is how many answered dispatches a replica needs before its
	// p99 joins the delay derivation (default 16). Until some replica
	// qualifies no hedge fires — a cold fleet has no "slow" yet.
	MinSamples int64
}

// EjectConfig configures latency-outlier ejection.
type EjectConfig struct {
	// Enabled turns automatic ejection and the re-admission prober on.
	// Manual EjectReplica/ReadmitReplica work regardless.
	Enabled bool
	// Multiple ejects a replica whose EWMA latency score exceeds Multiple
	// times the fleet median (default 4).
	Multiple float64
	// ReadmitMultiple re-admits an ejected replica once probes pull its
	// score to at most ReadmitMultiple times the median (default 1.5; must
	// be below Multiple or the replica flaps).
	ReadmitMultiple float64
	// MinSamples is the score sample floor before a replica can be ejected
	// or counted in the median (default 16).
	MinSamples int64
	// ProbeInterval paces the background canary prober that re-measures
	// ejected replicas (default 100ms). Also the /healthz Retry-After hint
	// when every replica is ejected.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe lookup (default 1s). A probe that times
	// out records the timeout as a censored latency sample.
	ProbeTimeout time.Duration
}

func (c *HedgeConfig) setDefaults() {
	if c.P99Multiple <= 0 {
		c.P99Multiple = 3
	}
	if c.MinDelay <= 0 {
		c.MinDelay = time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
}

func (c *EjectConfig) setDefaults() {
	if c.Multiple <= 0 {
		c.Multiple = 4
	}
	if c.ReadmitMultiple <= 0 {
		c.ReadmitMultiple = 1.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
}

// noteLatency feeds one answered-dispatch (or censored hedge-loser)
// duration into replica i's latency score and histogram, then re-evaluates
// ejection. The EWMA uses α=1/4 — the same shift as the instance-side
// step-ratio model — via CAS so concurrent dispatches never lose samples.
func (f *Fleet) noteLatency(i int, d time.Duration) {
	r := f.reps[i]
	r.lat.Observe(d)
	ns := d.Nanoseconds()
	for {
		old := r.ewmaNS.Load()
		nw := ns
		if old > 0 {
			nw = old + (ns-old)/4
		}
		if r.ewmaNS.CompareAndSwap(old, nw) {
			break
		}
	}
	n := r.latSamples.Add(1)
	if f.cfg.Eject.Enabled {
		f.evalEjection(i, n)
	}
}

// latencyMedian is the fleet's reference point for "normal": the median
// EWMA score across up replicas with enough samples (ejected replicas
// included — with few replicas, excluding the outlier would make the
// median circular). Zero when no replica qualifies yet.
func (f *Fleet) latencyMedian() time.Duration {
	var scores []int64
	for _, r := range f.reps {
		r.mu.RLock()
		down := r.down
		r.mu.RUnlock()
		if down {
			continue
		}
		if r.latSamples.Load() < f.cfg.Eject.MinSamples {
			continue
		}
		if s := r.ewmaNS.Load(); s > 0 {
			scores = append(scores, s)
		}
	}
	if len(scores) == 0 {
		return 0
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a] < scores[b] })
	mid := len(scores) / 2
	if len(scores)%2 == 0 {
		return time.Duration((scores[mid-1] + scores[mid]) / 2)
	}
	return time.Duration(scores[mid])
}

// evalEjection applies the outlier rule to replica i after its n-th sample.
// Automatic ejection never takes the last routable replica — a slow answer
// beats an oracle answer — but manual EjectReplica can.
func (f *Fleet) evalEjection(i int, n int64) {
	if n < f.cfg.Eject.MinSamples {
		return
	}
	med := f.latencyMedian()
	if med <= 0 {
		return
	}
	r := f.reps[i]
	score := float64(r.ewmaNS.Load())
	if r.ejected.Load() {
		if score <= f.cfg.Eject.ReadmitMultiple*float64(med) {
			f.readmitReplica(i)
		}
		return
	}
	if score >= f.cfg.Eject.Multiple*float64(med) && f.routableBesides(i) > 0 {
		f.markEjected(i)
	}
}

// routableBesides counts replicas other than i that could take traffic.
func (f *Fleet) routableBesides(i int) int {
	n := 0
	for _, v := range f.views() {
		if v.Index != i && routable(v, func(int) bool { return false }) {
			n++
		}
	}
	return n
}

func (f *Fleet) markEjected(i int) {
	if f.reps[i].ejected.CompareAndSwap(false, true) {
		f.ejections.Add(1)
	}
}

func (f *Fleet) readmitReplica(i int) {
	if f.reps[i].ejected.CompareAndSwap(true, false) {
		f.readmissions.Add(1)
	}
}

// EjectReplica manually ejects replica i from routing (ops drain, tests).
// Unlike automatic ejection it may take the last routable replica — the
// operator said so — which drives fleet health to Degraded and /healthz to
// 503 until probes (or ReadmitReplica) bring one back.
func (f *Fleet) EjectReplica(i int) error {
	if i < 0 || i >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	f.markEjected(i)
	return nil
}

// ReadmitReplica manually clears replica i's ejection.
func (f *Fleet) ReadmitReplica(i int) error {
	if i < 0 || i >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	f.readmitReplica(i)
	return nil
}

// probeEjected is the re-admission prober: every ProbeInterval it sends one
// oracle-checked canary lookup to each ejected replica. A correct answer
// feeds the measured latency into the score — fast probes decay the EWMA
// until the readmit rule fires; slow probes keep it ejected. Runs for the
// fleet's lifetime when Eject.Enabled; Shutdown stops it.
func (f *Fleet) probeEjected() {
	defer close(f.probeDone)
	t := time.NewTicker(f.cfg.Eject.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.probeStop:
			return
		case <-t.C:
		}
		for i, r := range f.reps {
			if !r.ejected.Load() {
				continue
			}
			inst := f.instance(i)
			if inst == nil {
				continue
			}
			f.probeReplica(i, inst)
		}
	}
}

// probeReplica sends one canary lookup of the first enabled kind to an
// ejected replica and scores the round trip. Answers are checked against
// the fleet oracle: a wrong answer records no sample (correctness is the
// breaker ladder's jurisdiction — ejection only ever reasons about time).
func (f *Fleet) probeReplica(i int, inst *serve.Instance) {
	kinds := f.ss.Kinds()
	if len(kinds) == 0 {
		return
	}
	st := f.ss.Get(kinds[0])
	probes := st.Canary()
	if len(probes) == 0 {
		return
	}
	args := probes[0]
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Eject.ProbeTimeout)
	defer cancel()
	f.ejectProbes.Add(1)
	start := time.Now()
	res, err := inst.LookupKind(ctx, kinds[0], args)
	d := time.Since(start)
	if err != nil {
		// Timed out or faulted: the probe ran at least this long — a
		// censored sample that keeps a still-slow replica's score honest.
		f.noteLatency(i, d)
		return
	}
	want := serve.HostAnswer(st, args)
	if res.Found != want.Found || res.Value != want.Value {
		return
	}
	f.noteLatency(i, d)
}

// hedgeDelay resolves the current hedge delay: the fixed configured delay,
// or P99Multiple × the median per-replica dispatch p99 (replicas with at
// least MinSamples answered dispatches), floored by MinDelay and cached for
// 100ms so the percentile scan is off the per-dispatch path. Zero means
// "no data yet — do not hedge".
func (f *Fleet) hedgeDelay() time.Duration {
	if f.cfg.Hedge.Delay > 0 {
		return f.cfg.Hedge.Delay
	}
	const cacheFor = int64(100 * time.Millisecond)
	now := time.Now().UnixNano()
	if now-f.hedgeDelayAt.Load() < cacheFor {
		return time.Duration(f.hedgeDelayNS.Load())
	}
	var p99s []int64
	for _, r := range f.reps {
		if r.latSamples.Load() < f.cfg.Hedge.MinSamples {
			continue
		}
		if p := r.lat.Snapshot().Quantile(0.99).Nanoseconds(); p > 0 {
			p99s = append(p99s, p)
		}
	}
	var d time.Duration
	if len(p99s) > 0 {
		sort.Slice(p99s, func(a, b int) bool { return p99s[a] < p99s[b] })
		d = time.Duration(f.cfg.Hedge.P99Multiple * float64(p99s[len(p99s)/2]))
		if d < f.cfg.Hedge.MinDelay {
			d = f.cfg.Hedge.MinDelay
		}
	}
	f.hedgeDelayNS.Store(int64(d))
	f.hedgeDelayAt.Store(now)
	return d
}

// pickStrict picks the hedge target: next-preferred by the same policy,
// never an ejected replica (hedging onto a known outlier helps nobody).
func (f *Fleet) pickStrict(tried uint64) int {
	return f.policy.Pick(f.views(), func(i int) bool { return tried&(1<<uint(i)) != 0 })
}

// pick is the dispatch loop's replica choice: the policy's strict pick
// first; when that fails and ejected replicas exist, one more pass with
// ejection masked — a last resort, because an ejected replica's slow answer
// still beats an oracle answer.
func (f *Fleet) pick(tried uint64) int {
	vs := f.views()
	skip := func(i int) bool { return tried&(1<<uint(i)) != 0 }
	if idx := f.policy.Pick(vs, skip); idx >= 0 {
		return idx
	}
	masked := false
	for i := range vs {
		if vs[i].Ejected {
			vs[i].Ejected = false
			masked = true
		}
	}
	if !masked {
		return -1
	}
	return f.policy.Pick(vs, skip)
}

// dispatchHedged runs one dispatch of the failover ladder against replica
// primary, speculatively adding a second replica if the first has not
// answered within the hedge delay. Returns the winning answer, which
// replica produced it, and whether a hedge (not the primary) won.
//
// Trace safety: the fleet trace on ctx is single-owner, and two racing
// attempts would both write stage marks into it — so every hedged attempt
// runs on a detached context (obs.DetachContext) where the instance begins
// and finishes its own child trace under the same propagated TraceID; the
// fleet goroutine alone touches the fleet trace. With hedging off (or no
// delay derivable yet) the dispatch is the plain single-attempt call on the
// undetached ctx, exactly as before this mechanism existed.
func (f *Fleet) dispatchHedged(ctx context.Context, kind serve.Kind, args serve.Args, primary int, inst *serve.Instance, tried *uint64) (serve.Result, int, bool, error) {
	var delay time.Duration
	if f.cfg.Hedge.Enabled {
		delay = f.hedgeDelay()
	}
	if delay <= 0 {
		start := time.Now()
		res, err := inst.LookupKind(ctx, kind, args)
		if err == nil {
			f.noteLatency(primary, time.Since(start))
		}
		return res, primary, false, err
	}

	type attempt struct {
		res serve.Result
		err error
		idx int
	}
	actx := obs.DetachContext(ctx)
	ch := make(chan attempt, 2) // buffered: a cancelled loser must not leak
	launch := func(idx int, in *serve.Instance, c context.Context) {
		start := time.Now()
		res, err := in.LookupKind(c, kind, args)
		d := time.Since(start)
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// A win trains the score; a cancelled loser ran *at least* d —
			// the censored sample that lets a hedged-around replica still
			// accumulate the slow evidence that ejects it.
			f.noteLatency(idx, d)
		}
		ch <- attempt{res: res, err: err, idx: idx}
	}

	pctx, pcancel := context.WithCancel(actx)
	defer pcancel()
	go launch(primary, inst, pctx)
	inflight := 1

	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedged := false
	var hcancel context.CancelFunc
	var lastErr error
	for inflight > 0 {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true // one hedge per dispatch
			hidx := f.pickStrict(*tried)
			if hidx < 0 {
				continue
			}
			hinst := f.instance(hidx)
			if hinst == nil {
				continue
			}
			if dl, ok := ctx.Deadline(); ok {
				if need := hinst.ExpectedRoundTime(kind); need > 0 && time.Until(dl) < need {
					continue // the hedge itself would be doomed work
				}
			}
			*tried |= 1 << uint(hidx)
			f.hedges.Add(1)
			hctx, cancel := context.WithCancel(actx)
			defer cancel() // also fired early via hcancel when the primary wins
			hcancel = cancel
			go launch(hidx, hinst, hctx)
			inflight++
		case a := <-ch:
			inflight--
			if a.err == nil {
				// First answer wins; cancel the other attempt.
				pcancel()
				if hcancel != nil {
					hcancel()
				}
				win := hedged && a.idx != primary
				if win {
					f.hedgeWins.Add(1)
				}
				return a.res, a.idx, win, nil
			}
			lastErr = a.err
		}
	}
	return serve.Result{}, primary, false, lastErr
}
