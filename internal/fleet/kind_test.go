package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/serve"
)

// TestReplicaLimitPins pins the failover bitmask's capacity contract: exactly
// MaxReplicas replicas are accepted, one more is rejected with the typed
// error (the `tried` word tracks one bit per replica, so 65 would silently
// break failover).
func TestReplicaLimitPins(t *testing.T) {
	if MaxReplicas != 64 {
		t.Fatalf("MaxReplicas = %d; the failover bitmask is one uint64, so it must be 64", MaxReplicas)
	}

	// 64 replicas: accepted. Side 4 keeps the 64 instances cheap.
	f := newTestFleet(t, Config{Replicas: MaxReplicas, Instance: serve.Config{Side: 4}})
	if f.Replicas() != MaxReplicas {
		t.Fatalf("built %d replicas, want %d", f.Replicas(), MaxReplicas)
	}
	if _, err := f.Lookup(context.Background(), 3); err != nil {
		t.Fatalf("lookup on a full-width fleet: %v", err)
	}

	// 65 replicas: rejected with the typed error before any instance starts.
	_, err := New(Config{Replicas: MaxReplicas + 1, Instance: serve.Config{Side: 4}})
	var lim *ReplicaLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("New with %d replicas: err = %v, want *ReplicaLimitError", MaxReplicas+1, err)
	}
	if lim.Replicas != MaxReplicas+1 {
		t.Fatalf("ReplicaLimitError.Replicas = %d, want %d", lim.Replicas, MaxReplicas+1)
	}
	if !strings.Contains(err.Error(), "65") || !strings.Contains(err.Error(), "64") {
		t.Fatalf("error %q names neither the limit nor the request", err)
	}
}

// TestFleetLookupKindRoutesAndChecks drives every served family through the
// fleet router and holds each answer to its kind's host oracle.
func TestFleetLookupKindRoutesAndChecks(t *testing.T) {
	kinds := []serve.Kind{serve.KindPointLoc, serve.KindInterval}
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{Side: 8, Linger: 200 * time.Microsecond, Kinds: kinds},
	})
	ss := f.Structures()
	for _, k := range f.Kinds() {
		st := ss.Get(k)
		for i := int64(0); i < 12; i++ {
			args := st.ArgsFor(i)
			var res Result
			var err error
			for {
				res, err = f.LookupKind(context.Background(), k, args)
				if !errors.Is(err, serve.ErrOverloaded) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				t.Fatalf("%s lookup %v: %v", k, args, err)
			}
			want := serve.HostAnswer(st, args)
			if res.Found != want.Found || res.Value != want.Value {
				t.Fatalf("%s %v: fleet answered found=%v value=%d, oracle says found=%v value=%d",
					k, args, res.Found, res.Value, want.Found, want.Value)
			}
		}
	}
	st := f.Stats()
	if len(st.ByKind) != len(f.Kinds()) {
		t.Fatalf("Stats().ByKind has %d entries, serving %d kinds", len(st.ByKind), len(f.Kinds()))
	}
	for _, kr := range st.ByKind {
		if kr.Served == 0 {
			t.Errorf("kind %s routed zero lookups", kr.Kind)
		}
	}
}

// TestFleetLookupKindNotServed rejects an unserved kind up front — no
// failover attempts are burned on a kind no replica can answer.
func TestFleetLookupKindNotServed(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 2, Instance: serve.Config{Side: 8}})
	before := f.Stats().Dispatched
	if _, err := f.LookupKind(context.Background(), serve.KindTangent, serve.Args{1, 0, 0}); !errors.Is(err, serve.ErrKindNotServed) {
		t.Fatalf("unserved kind: err = %v, want ErrKindNotServed", err)
	}
	if after := f.Stats().Dispatched; after != before {
		t.Fatalf("unserved kind burned %d dispatches", after-before)
	}
}

// TestFleetOracleServesTypedKinds kills the whole fleet's meshes (every
// audited round fails terminally) and requires the fleet-level oracle rung
// to answer typed kinds correctly, marked degraded.
func TestFleetOracleServesTypedKinds(t *testing.T) {
	kinds := []serve.Kind{serve.KindInterval}
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{
			Side: 8, Linger: 100 * time.Microsecond, Kinds: kinds,
			Audit: true, MaxRetries: -1, BreakerWindow: 1,
			// Every replica's breaker must open on its own mesh, so each
			// needs its own always-lying injector.
			DisableDegrade: true,
		},
		MakeInjector: func(int) mesh.Injector { return brokenInjector{} },
	})
	st := f.Structures().Get(serve.KindInterval)
	for i := int64(0); i < 8; i++ {
		args := st.ArgsFor(i)
		res, err := f.LookupKind(context.Background(), serve.KindInterval, args)
		if err != nil {
			t.Fatalf("interval lookup %v with all meshes broken: %v", args, err)
		}
		if !res.Degraded || res.Replica != -1 {
			t.Fatalf("lookup %v: want a degraded fleet-oracle answer, got %+v", args, res)
		}
		want := serve.HostAnswer(st, args)
		if res.Found != want.Found || res.Value != want.Value {
			t.Fatalf("oracle answer for %v wrong: found=%v value=%d, want found=%v value=%d",
				args, res.Found, res.Value, want.Found, want.Value)
		}
	}
	if f.Stats().OracleServed == 0 {
		t.Fatal("no lookups reached the fleet oracle; the test exercised nothing")
	}
}
