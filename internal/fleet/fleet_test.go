package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/serve"
)

// newTestFleet builds a small fleet on the default odd-key dictionary and
// registers a bounded drain.
func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	if cfg.Instance.Side == 0 {
		cfg.Instance.Side = 8
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = f.Shutdown(ctx)
	})
	return f
}

// checkAnswer fails the test on any answer that disagrees with the host
// oracle — the fleet's zero-wrong-answers bar.
func checkAnswer(t *testing.T, f *Fleet, needle int64, res Result) {
	t.Helper()
	if res.Found != f.Tree().Contains(needle) {
		t.Errorf("answer for %d disagrees with the host oracle: %+v", needle, res)
	}
	if res.Found && res.LeafKey != needle {
		t.Errorf("hit for %d landed on leaf %d", needle, res.LeafKey)
	}
}

// brokenInjector makes every sort lie, so every audited round on its
// instance fails terminally — a deterministically unhealthy replica.
type brokenInjector struct{}

func (brokenInjector) SortLie(_ string, items int) int64 {
	if items >= 2 {
		return 1
	}
	return 0
}
func (brokenInjector) CorruptCell(string, int) (int, int, bool) { return 0, 0, false }
func (brokenInjector) DropReply(int) (int, bool)                { return 0, false }
func (brokenInjector) DuplicateReply(int) (int, int, bool)      { return 0, 0, false }

// stallInjector wedges its instance's executor: once armed, the first
// consultation inside a round blocks until release is closed (injecting no
// faults), so admission backpressure can be driven deterministically.
type stallInjector struct {
	armed   atomic.Bool
	release chan struct{}
}

func newStallInjector() *stallInjector { return &stallInjector{release: make(chan struct{})} }

func (g *stallInjector) block() {
	if g.armed.Load() {
		<-g.release
	}
}
func (g *stallInjector) SortLie(string, int) int64                { g.block(); return 0 }
func (g *stallInjector) CorruptCell(string, int) (int, int, bool) { g.block(); return 0, 0, false }
func (g *stallInjector) DropReply(int) (int, bool)                { g.block(); return 0, false }
func (g *stallInjector) DuplicateReply(int) (int, int, bool)      { g.block(); return 0, 0, false }

// TestSingleReplicaFleetServesCorrectly pins the degenerate fleet: one
// replica behind the router answers exactly like a bare instance, with no
// failover or oracle involvement.
func TestSingleReplicaFleetServesCorrectly(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 1, Instance: serve.Config{Side: 8, Linger: 200 * time.Microsecond}})
	keys := int64(len(f.Tree().Keys))
	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		needle := int64(i) % (2 * keys)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Lookup(context.Background(), needle)
			if err != nil {
				t.Errorf("lookup %d: %v", needle, err)
				return
			}
			if res.Replica != 0 {
				t.Errorf("lookup %d served by replica %d in a 1-replica fleet", needle, res.Replica)
			}
			checkAnswer(t, f, needle, res)
		}()
	}
	wg.Wait()
	st := f.Stats()
	if st.Dispatched != n || st.FailoverServed != 0 || st.OracleServed != 0 || st.Unrouted != 0 {
		t.Fatalf("1-replica fleet counters: %+v", st)
	}
	if st.Agg.Served != n || st.Agg.Degraded != 0 {
		t.Fatalf("aggregate serving counters: %+v", st.Agg)
	}
}

// TestFailoverServesFromHealthyReplica is the tentpole contract: a lookup
// whose first pick lands on a faulting replica is re-dispatched to a healthy
// one and answered correctly — before any oracle degrade.
func TestFailoverServesFromHealthyReplica(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 2,
		Policy:   LeastLoaded(), // ties break to replica 0, the broken one
		Instance: serve.Config{
			Side: 8, Audit: true, MaxRetries: -1,
			Linger: 100 * time.Microsecond, RetryBackoff: 10 * time.Microsecond,
		},
		MakeInjector: func(i int) mesh.Injector {
			if i == 0 {
				return brokenInjector{}
			}
			return nil
		},
	})
	const n = 8
	for i := 0; i < n; i++ {
		needle := int64(2*i + 1)
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("lookup %d: %v", needle, err)
		}
		if res.Replica != 1 {
			t.Fatalf("lookup %d served by replica %d, want failover to 1", needle, res.Replica)
		}
		if res.Degraded {
			t.Fatalf("lookup %d degraded; failover must beat the oracle rung", needle)
		}
		checkAnswer(t, f, needle, res)
	}
	st := f.Stats()
	if st.FailoverServed != n {
		t.Fatalf("%d of %d lookups failover-served: %+v", st.FailoverServed, n, st)
	}
	if st.OracleServed != 0 || st.Agg.Degraded != 0 {
		t.Fatalf("oracle answered despite a healthy replica: %+v", st)
	}
}

// TestHealthWeightedRoutesAroundDegradedReplica proves the router consumes
// breaker state: once the broken replica's circuit opens, health-weighted
// first picks go straight to the healthy replica and failover stops.
func TestHealthWeightedRoutesAroundDegradedReplica(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 2,
		Policy:   HealthWeighted(),
		Instance: serve.Config{
			Side: 8, Audit: true, MaxRetries: -1,
			Linger: 100 * time.Microsecond, RetryBackoff: 10 * time.Microsecond,
			CanaryInterval: -1, // keep the broken replica visibly degraded
		},
		MakeInjector: func(i int) mesh.Injector {
			if i == 0 {
				return brokenInjector{}
			}
			return nil
		},
	})
	// Drive lookups until replica 0's terminal failure has opened its
	// circuit and the health machine shows it degraded.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if res, err := f.Lookup(context.Background(), 3); err != nil {
			t.Fatalf("lookup during breaker warm-up: %v", err)
		} else {
			checkAnswer(t, f, 3, res)
		}
		views := f.views()
		if views[0].Up && views[0].Health == serve.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 0 never reported degraded: %+v", f.Stats())
		}
	}
	failoversBefore := f.Stats().Failovers
	const n = 10
	for i := 0; i < n; i++ {
		needle := int64(2 * i)
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("lookup %d: %v", needle, err)
		}
		if res.Replica != 1 {
			t.Fatalf("lookup %d served by replica %d, want the healthy 1 first-pick", needle, res.Replica)
		}
		checkAnswer(t, f, needle, res)
	}
	if d := f.Stats().Failovers - failoversBefore; d != 0 {
		t.Fatalf("%d failovers after the breaker opened; health-weighted routing should avoid the degraded replica outright", d)
	}
}

// TestAllReplicasDownFallsBackToOracle pins the last ladder rung: with every
// replica crashed the fleet still answers — correctly, flagged Degraded,
// attributed to replica -1 — unless the oracle rung is disabled, in which
// case the typed routing failure surfaces.
func TestAllReplicasDownFallsBackToOracle(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 2, Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond}})
	for i := 0; i < 2; i++ {
		if err := f.CrashReplica(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, needle := range []int64{0, 3, 7, 100} {
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("oracle lookup %d: %v", needle, err)
		}
		if !res.Degraded || res.Replica != -1 {
			t.Fatalf("all-down lookup %d not attributed to the oracle: %+v", needle, res)
		}
		checkAnswer(t, f, needle, res)
	}
	if f.Health() != serve.Degraded {
		t.Fatalf("all-down fleet health %v, want %v", f.Health(), serve.Degraded)
	}
	st := f.Stats()
	if st.OracleServed != 4 || st.Unrouted != 4 || st.DownReplicas != 2 {
		t.Fatalf("oracle-path counters: %+v", st)
	}

	t.Run("DisableOracle surfaces the routing failure", func(t *testing.T) {
		f2 := newTestFleet(t, Config{
			Replicas: 1, DisableOracle: true,
			Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		})
		if err := f2.CrashReplica(0); err != nil {
			t.Fatal(err)
		}
		if _, err := f2.Lookup(context.Background(), 3); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("lookup error %v, want ErrNoReplica", err)
		}
	})
}

// TestCrashRestartLifecycle exercises the chaos primitives directly: crash
// bookkeeping, stats preservation across the crash, restart with measured
// time-to-healthy, and the error cases.
func TestCrashRestartLifecycle(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 2, Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond}})
	const warm = 10
	for i := 0; i < warm; i++ {
		if _, err := f.Lookup(context.Background(), int64(i)); err != nil {
			t.Fatalf("warm-up lookup: %v", err)
		}
	}
	if err := f.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := f.CrashReplica(0); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := f.RestartReplica(1); err == nil {
		t.Fatal("restart of an up replica accepted")
	}
	st := f.Stats()
	if st.Crashes != 1 || st.DownReplicas != 1 {
		t.Fatalf("post-crash counters: %+v", st)
	}
	// The crashed incarnation's serving counters survive in the aggregate.
	if st.Agg.Served != warm {
		t.Fatalf("aggregate lost crashed-replica history: served %d, want %d", st.Agg.Served, warm)
	}
	// The surviving replica keeps answering.
	res, err := f.Lookup(context.Background(), 3)
	if err != nil || res.Replica != 1 {
		t.Fatalf("lookup with one replica down: res=%+v err=%v", res, err)
	}
	checkAnswer(t, f, 3, res)

	if err := f.RestartReplica(0); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.Restarts != 1 || st.DownReplicas != 0 {
		t.Fatalf("post-restart counters: %+v", st)
	}
	if st.LastTimeToHealthy <= 0 || st.MaxTimeToHealthy < st.LastTimeToHealthy {
		t.Fatalf("time-to-healthy not recorded: %+v", st)
	}
	// The reborn replica serves (route to it directly: crash the other).
	if err := f.CrashReplica(1); err != nil {
		t.Fatal(err)
	}
	res, err = f.Lookup(context.Background(), 5)
	if err != nil || res.Replica != 0 {
		t.Fatalf("lookup on the restarted replica: res=%+v err=%v", res, err)
	}
	checkAnswer(t, f, 5, res)
}

// TestAllOverloadedIsBackpressureNotOracle wedges every replica's executor
// and fills their admission pipelines: the fleet must answer the overflow
// with ErrOverloaded — backpressure the client can retry — and the oracle
// must not absorb it (that would hide the saturation knee behind an
// unbounded pool of degraded answers).
func TestAllOverloadedIsBackpressureNotOracle(t *testing.T) {
	injs := make([]*stallInjector, 2)
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{Side: 8, MaxBatch: 1, QueueDepth: 2, Linger: 0},
		MakeInjector: func(i int) mesh.Injector {
			injs[i] = newStallInjector()
			return injs[i]
		},
	})
	for _, inj := range injs {
		inj.armed.Store(true)
	}
	// Both pipelines absorb at most ~5 lookups each (one in-round, one
	// batched, one held by the collector, two queued); 24 clients therefore
	// guarantee rejections once both replicas wedge.
	const n = 24
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		needle := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Lookup(context.Background(), needle)
			if err == nil {
				checkAnswer(t, f, needle, res)
			}
			errs <- err
		}()
	}
	var overloaded int
	for overloaded < 3 {
		if err := <-errs; errors.Is(err, serve.ErrOverloaded) {
			overloaded++
		} else if err != nil {
			t.Fatalf("unexpected lookup error under overload: %v", err)
		}
	}
	for _, inj := range injs {
		inj.armed.Store(false)
		close(inj.release)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, serve.ErrOverloaded) {
			t.Errorf("unexpected lookup error: %v", err)
		}
	}
	st := f.Stats()
	if st.OverloadedAll < 3 {
		t.Fatalf("fleet recorded %d all-overloaded rejections, want ≥ 3: %+v", st.OverloadedAll, st)
	}
	if st.OracleServed != 0 {
		t.Fatalf("oracle absorbed %d overloaded lookups: %+v", st.OracleServed, st)
	}
}

// TestNewValidatesAndTearsDown pins constructor failure modes: a too-large
// fleet and an invalid instance template both refuse cleanly.
func TestNewValidatesAndTearsDown(t *testing.T) {
	if _, err := New(Config{Replicas: 65, Instance: serve.Config{Side: 8}}); err == nil {
		t.Fatal("65-replica fleet accepted (dispatch tracks tried replicas in a 64-bit word)")
	}
	if _, err := New(Config{Replicas: 2, Instance: serve.Config{Side: 7}}); err == nil {
		t.Fatal("invalid instance template accepted")
	}
}

// TestShutdownDrainsAllReplicas checks the fleet drain: admitted lookups
// complete, later ones fail typed, and a crashed replica does not block it.
func TestShutdownDrainsAllReplicas(t *testing.T) {
	f, err := New(Config{Replicas: 3, Instance: serve.Config{Side: 8, Linger: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CrashReplica(2); err != nil {
		t.Fatal(err)
	}
	const n = 18
	results := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		needle := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.Lookup(context.Background(), needle)
			results <- err
		}()
	}
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("fleet drain: %v", err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		// A lookup that raced Shutdown may be answered or see ErrClosed;
		// nothing else is acceptable across a drain.
		if err != nil && !errors.Is(err, serve.ErrClosed) {
			t.Errorf("lookup across drain: %v", err)
		}
	}
	if _, err := f.Lookup(context.Background(), 1); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-shutdown lookup returned %v, want ErrClosed", err)
	}
	if f.Health() != serve.LameDuck {
		t.Fatalf("post-shutdown health %v, want %v", f.Health(), serve.LameDuck)
	}
}
