package fleet

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// ReplicaView is one replica's routing-relevant state, snapshotted per
// dispatch: liveness, the PR 5 health ladder's verdict, the admission queue
// depth (the least-loaded signal), and the PR 10 latency score (the
// gray-failure signal — DESIGN.md §3.11).
type ReplicaView struct {
	Index    int
	Up       bool // instance running (not crashed/restarting)
	Health   serve.Health
	QueueLen int
	QueueCap int
	// LatencyEWMA is the fleet's per-replica answered-dispatch latency
	// score; Ejected is its verdict — the score is an outlier multiple of
	// the fleet median, so the replica is skipped by every policy until
	// canary probes re-admit it. Policies treat Ejected like lame-duck;
	// the dispatch loop alone may fall back to ejected replicas when
	// nothing else is routable (slow answers still beat oracle answers).
	LatencyEWMA time.Duration
	Ejected     bool
}

// routable reports whether a view may receive traffic at all: the instance
// is up, not draining, not latency-ejected, and not already tried this
// dispatch. Policies differ only in how they *order* routable replicas.
func routable(v ReplicaView, skip func(int) bool) bool {
	return v.Up && v.Health != serve.LameDuck && !v.Ejected && !skip(v.Index)
}

// Policy orders replicas for dispatch. Pick returns the preferred routable
// replica index, or -1 when none qualifies; the dispatch loop calls it again
// with the failed pick added to skip, so Pick's ordering *is* the failover
// order.
type Policy interface {
	Name() string
	Pick(views []ReplicaView, skip func(int) bool) int
}

// PolicyByName resolves the meshserve -policy flag.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return RoundRobin(), nil
	case "least-loaded":
		return LeastLoaded(), nil
	case "health-weighted":
		return HealthWeighted(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-loaded, or health-weighted)", name)
	}
}

// PolicyNames lists the routing policies (flag help, sweep mode).
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "health-weighted"}
}

type roundRobin struct{ next atomic.Uint64 }

// RoundRobin rotates across routable replicas regardless of load or
// breaker state (only lame-duck and crashed replicas are skipped). The
// baseline policy: fair, oblivious, and the control for measuring what
// health-aware routing buys.
func RoundRobin() Policy { return &roundRobin{} }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(views []ReplicaView, skip func(int) bool) int {
	if len(views) == 0 {
		return -1
	}
	start := int(p.next.Add(1)-1) % len(views)
	for i := 0; i < len(views); i++ {
		v := views[(start+i)%len(views)]
		if routable(v, skip) {
			return v.Index
		}
	}
	return -1
}

type leastLoaded struct{}

// LeastLoaded picks the routable replica with the shallowest admission
// queue (ties break to the lowest index). Queue depth is the same signal
// the instance's own overload rejection reads, so this policy steers
// traffic away from replicas about to say 429.
func LeastLoaded() Policy { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(views []ReplicaView, skip func(int) bool) int {
	best, bestLen := -1, 0
	for _, v := range views {
		if !routable(v, skip) {
			continue
		}
		if best < 0 || v.QueueLen < bestLen {
			best, bestLen = v.Index, v.QueueLen
		}
	}
	return best
}

type healthWeighted struct{}

// HealthWeighted folds the PR 5 breaker state into routing: healthy
// replicas (circuit closed) are always preferred, least-loaded among them;
// a degraded replica — circuit open, canaries probing — receives traffic
// only when no healthy replica is routable. With DisableOracle a degraded
// instance fails lookups fast, so routing to one is a last resort that the
// failover loop converts into an oracle answer.
func HealthWeighted() Policy { return healthWeighted{} }

func (healthWeighted) Name() string { return "health-weighted" }

func (healthWeighted) Pick(views []ReplicaView, skip func(int) bool) int {
	best, bestTier, bestLen := -1, 0, 0
	for _, v := range views {
		if !routable(v, skip) {
			continue
		}
		tier := 0
		if v.Health != serve.Healthy {
			tier = 1
		}
		if best < 0 || tier < bestTier || (tier == bestTier && v.QueueLen < bestLen) {
			best, bestTier, bestLen = v.Index, tier, v.QueueLen
		}
	}
	return best
}
