package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestFailoverTraceCarriesHopAndRun is the PR's acceptance pin: a failed-over
// lookup's trace must show the failover hop as a wall-clock span, the stage
// marks from BOTH replicas on one record, the serving replica index, and the
// cross-link to the step-clock run that finally answered — all partitioning
// the end-to-end latency exactly.
func TestFailoverTraceCarriesHopAndRun(t *testing.T) {
	o := obs.New(obs.Config{})
	f := newTestFleet(t, Config{
		Replicas: 2,
		Policy:   LeastLoaded(), // ties break to replica 0, the broken one
		Obs:      o,
		Instance: serve.Config{
			Side: 8, Audit: true, MaxRetries: -1,
			Linger: 100 * time.Microsecond, RetryBackoff: 10 * time.Microsecond,
		},
		MakeInjector: func(i int) mesh.Injector {
			if i == 0 {
				return brokenInjector{}
			}
			return nil
		},
		MakeTracer: func(int) *trace.Tracer { return trace.New() },
	})
	res, err := f.Lookup(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != 1 || res.Degraded {
		t.Fatalf("want a failover mesh answer from replica 1, got %+v", res)
	}

	var tr *obs.ReqTrace
	for _, cand := range o.Traces() {
		if cand.Outcome == obs.OutcomeFailover {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Fatal("no failover-outcome trace retained")
	}
	if !tr.HasStage(obs.StageFailover) {
		t.Fatalf("failover trace has no failover_hop span: %+v", tr.Spans)
	}
	if !tr.HasStage(obs.StageMesh) || !tr.HasStage(obs.StageAdmit) {
		t.Fatalf("failover trace lacks per-replica stages: %+v", tr.Spans)
	}
	if tr.Replica != 1 {
		t.Errorf("trace replica %d, want 1", tr.Replica)
	}
	if tr.RunSeq <= 0 || tr.RunLabel == "" {
		t.Errorf("failover trace not linked to the answering step-clock run: seq=%d label=%q",
			tr.RunSeq, tr.RunLabel)
	}
	// Partition invariant across the replica hop.
	if tr.Spans[0].Start != 0 {
		t.Errorf("first span starts at %s", tr.Spans[0].Start)
	}
	var sum time.Duration
	for i, sp := range tr.Spans {
		if i > 0 && sp.Start != tr.Spans[i-1].End {
			t.Errorf("span %d (%s): gap/overlap", i, sp.Stage)
		}
		sum += sp.Dur()
	}
	if sum != tr.Dur() {
		t.Errorf("spans sum to %s, e2e %s", sum, tr.Dur())
	}
	if got := o.Find(tr.ID); got != tr {
		t.Error("failover trace not retrievable by ID")
	}
}

// TestFleetOracleTraceMarksLastRung: with every replica down, the trace must
// record the fleet-oracle rung — oracle_fallback span, replica -1, outcome
// oracle — and stay retrievable (oracle answers are always interesting).
func TestFleetOracleTraceMarksLastRung(t *testing.T) {
	o := obs.New(obs.Config{})
	f := newTestFleet(t, Config{
		Replicas: 2,
		Obs:      o,
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
	})
	for i := 0; i < 2; i++ {
		if err := f.CrashReplica(i); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.Lookup(context.Background(), 7)
	if err != nil || !res.Degraded || res.Replica != -1 {
		t.Fatalf("all-down lookup: res=%+v err=%v, want degraded oracle answer", res, err)
	}
	if got := o.OutcomeCount(obs.OutcomeOracle); got != 1 {
		t.Fatalf("oracle outcomes %d, want 1", got)
	}
	var tr *obs.ReqTrace
	for _, cand := range o.Traces() {
		if cand.Outcome == obs.OutcomeOracle {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatal("oracle trace not retained")
	}
	if !tr.HasStage(obs.StageOracle) || tr.Replica != -1 {
		t.Fatalf("oracle trace: stages=%+v replica=%d", tr.Spans, tr.Replica)
	}
}

// TestRetryAfterHintNoHealthyReplicas (satellite 2) pins the fallback ladder
// of the fleet's backpressure hint, including the previously undefined
// zero-routable-replicas case:
//
//	healthy replicas exist  → min over healthy instance hints
//	only degraded replicas  → min over degraded instance hints
//	no routable replica     → RestartBoundHint
func TestRetryAfterHintNoHealthyReplicas(t *testing.T) {
	const linger = 2 * time.Millisecond
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{
			Side: 8, Linger: linger, Audit: true, MaxRetries: -1,
			RetryBackoff: 10 * time.Microsecond,
			// Manual canaries only: a probe must not close the circuit and
			// flip the degraded replica back to healthy mid-assertion.
			CanaryInterval: -1,
		},
		MakeInjector: func(i int) mesh.Injector {
			if i == 0 {
				return brokenInjector{}
			}
			return nil
		},
	})

	// All replicas healthy and idle: the hint is one linger period — the
	// soonest any replica's next round could admit the retry.
	if got := f.RetryAfterHint(); got != linger {
		t.Fatalf("healthy hint %s, want %s", got, linger)
	}

	// Break replica 0's mesh: one terminal fault opens its circuit, making
	// it Degraded but still routable. (Fleet replicas run DisableOracle, so
	// the lookup surfaces the typed fault rather than degrading — either
	// way the breaker records the terminal failure.) The fleet hint must
	// keep preferring the healthy replica 1.
	inst0 := f.instance(0)
	if _, err := inst0.Lookup(context.Background(), 7); err == nil {
		t.Fatal("broken replica answered; want a typed fault")
	}
	if h := inst0.Health(); h != serve.Degraded {
		t.Fatalf("replica 0 health %s after terminal fault, want degraded", h)
	}
	if got := f.RetryAfterHint(); got != linger {
		t.Fatalf("hint with one degraded replica %s, want healthy replica's %s", got, linger)
	}

	// Crash the healthy replica: only the degraded one remains routable, so
	// its (canary-dominated) hint is the answer — still not the restart bound.
	if err := f.CrashReplica(1); err != nil {
		t.Fatal(err)
	}
	want := inst0.RetryAfterHint()
	if got := f.RetryAfterHint(); got != want {
		t.Fatalf("degraded-only hint %s, want replica 0's own %s", got, want)
	}
	if got := f.RetryAfterHint(); got == RestartBoundHint {
		t.Fatal("degraded-only fleet must not report the restart bound")
	}

	// No routable replica at all: the hint is the pinned restart bound —
	// a fixed pessimistic constant, not zero and not garbage.
	if err := f.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	if got := f.RetryAfterHint(); got != RestartBoundHint {
		t.Fatalf("zero-replica hint %s, want RestartBoundHint %s", got, RestartBoundHint)
	}
	if RestartBoundHint <= 0 {
		t.Fatal("RestartBoundHint must be positive")
	}
}
