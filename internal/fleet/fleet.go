// Package fleet runs N serve.Instances — each its own mesh, dictionary,
// recovery ladder, breaker state and stats — behind a health-aware router
// (DESIGN.md §3.8). It is the step from "a server" to "a cluster": replicas
// multiply read throughput past one mesh's knee, and they change the robust
// answer to a mesh fault from *degrade* to *failover*.
//
// The recovery ladder gains a rung above the instance-local one of §3.6:
//
//	retry-local  — the instance re-executes a faulted round with auditing
//	               forced on (unchanged from PR 5);
//	failover     — a lookup whose instance faulted, tripped its breaker, or
//	               crashed outright is re-dispatched to a healthy replica;
//	oracle       — only when no replica can answer does the fleet fall back
//	               to its host-side dictionary oracle (Degraded answers).
//
// Instances inside a fleet therefore run with serve.Config.DisableOracle:
// they keep their breaker, health machine and canaries, but surface typed
// faults instead of answering from the oracle themselves — the fleet owns
// that last rung. Routing is pluggable (round-robin, least-loaded by
// admission-queue depth, health-weighted by breaker state); lame-duck and
// crashed replicas are routed around while their canaries — or a restart —
// bring them back. Replica crash/restart is chaos-injectable (StartChaos)
// with measured time-to-healthy.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// ErrNoReplica is returned (only with DisableOracle) when no routable
// replica exists and the fleet has no oracle rung to absorb the lookup.
var ErrNoReplica = errors.New("fleet: no routable replica")

// MaxReplicas is the routing limit: the dispatch loop tracks which replicas
// a lookup has already tried in a single 64-bit word, so replica indices
// must fit in one word's bit positions.
const MaxReplicas = 64

// ReplicaLimitError is the typed construction error for a Config whose
// Replicas exceeds MaxReplicas. It is a distinct type (not a wrapped
// sentinel) so callers building fleets from external configuration can
// errors.As it and clamp rather than string-match — previously the
// constructor formatted an anonymous error, and one configuration path
// skipped the check entirely, letting a 65-replica fleet silently alias
// replica 64's tried-bit onto replica 0.
type ReplicaLimitError struct {
	Replicas int // the rejected replica count
}

func (e *ReplicaLimitError) Error() string {
	return fmt.Sprintf("fleet: at most %d replicas (failover tracks tried replicas in one word), got %d", MaxReplicas, e.Replicas)
}

// Config configures a Fleet.
type Config struct {
	// Replicas is the instance count (default 1; at most 64 — the dispatch
	// loop tracks tried replicas in a word).
	Replicas int
	// Instance is the per-instance serve.Config template. DisableOracle is
	// forced on (the fleet owns the oracle rung); Tracer and Injector are
	// per-instance concerns — see MakeTracer / MakeInjector.
	Instance serve.Config
	// Policy picks the replica for each lookup (default round-robin).
	Policy Policy
	// MaxFailovers caps re-dispatches per lookup after the first pick fails
	// (0 defaults to Replicas-1 — try every replica once; negative means
	// no failover, straight to the oracle rung).
	MaxFailovers int
	// DisableOracle removes the fleet-level oracle rung: a lookup that
	// exhausts failover returns its typed fault (tests and diagnostics).
	DisableOracle bool
	// MakeInjector, when set, builds each instance's fault injector —
	// replicas must not share one injector, or their fault streams couple
	// through its state. Overrides Instance.Injector.
	MakeInjector func(i int) mesh.Injector
	// MakeTracer, when set, builds each instance's tracer. Without it only
	// replica 0 keeps Instance.Tracer: a tracer records one mesh's runs and
	// must not be shared across replicas.
	MakeTracer func(i int) *trace.Tracer
	// Obs installs the fleet-wide observability layer. Unlike tracers and
	// injectors the Observer IS shared: it is installed on every instance
	// (overriding Instance.Obs), so one request trace follows its lookup
	// across failover hops, and every replica's stage marks land in one set
	// of histograms. Nil disables observability fleet-wide.
	Obs *obs.Observer
	// Hedge configures speculative re-dispatch of slow lookups; Eject
	// configures latency-outlier replica ejection (both DESIGN.md §3.11,
	// both default off).
	Hedge HedgeConfig
	Eject EjectConfig
}

// Result is one answered lookup plus its provenance: which replica served
// it, or -1 for a fleet-oracle answer (Degraded is then also set).
type Result struct {
	serve.Result
	Replica int `json:"replica"`
}

// replica is one routing slot: the live instance (nil while down) and the
// crash/restart bookkeeping. Stats of crashed incarnations accumulate in
// lost so fleet aggregates survive a crash.
type replica struct {
	idx int

	mu        sync.RWMutex
	inst      *serve.Instance
	down      bool
	crashedAt time.Time
	crashes   int64
	lastTTH   time.Duration
	lost      serve.Stats

	// Gray-failure state (§3.11): the EWMA latency score over answered
	// dispatches (plus censored hedge/probe samples), the sample count
	// gating it, and the ejection verdict — all reset on restart, because a
	// fresh incarnation owes nothing to the old one's slowness. The
	// dispatch-latency histogram (the adaptive hedge delay reads its p99)
	// is cumulative across incarnations, like every other histogram here.
	ewmaNS     atomic.Int64
	latSamples atomic.Int64
	ejected    atomic.Bool
	lat        serve.Histogram
}

// Fleet is N serve instances behind a router. Safe for concurrent use.
type Fleet struct {
	cfg          Config
	policy       Policy
	maxFailovers int
	ss           *serve.StructureSet // fleet-level oracle structures, one per kind
	bt           *dict.BTree         // the membership structure's tree (Tree accessor)
	reps         []*replica

	mu     sync.RWMutex // guards closed against Lookup and restarts
	closed bool

	dispatched     atomic.Int64
	failovers      atomic.Int64 // re-dispatch attempts after a failed pick
	failoverServed atomic.Int64 // lookups answered by a non-first pick
	oracleServed   atomic.Int64 // lookups answered by the fleet oracle
	overloadedAll  atomic.Int64 // rejected: every routable replica was full
	unrouted       atomic.Int64 // lookups that found no routable replica
	crashes        atomic.Int64
	restarts       atomic.Int64
	budgetShed     atomic.Int64 // dispatches skipped: deadline budget below expected round time
	hedges         atomic.Int64 // speculative second dispatches launched
	hedgeWins      atomic.Int64 // hedges whose answer arrived first
	ejections      atomic.Int64 // latency-outlier ejections (auto + manual)
	readmissions   atomic.Int64 // ejections cleared (probes or manual)
	ejectProbes    atomic.Int64 // canary probes sent to ejected replicas
	hedgeDelayNS   atomic.Int64 // cached derived hedge delay
	hedgeDelayAt   atomic.Int64 // unix ns the cache was filled

	probeStop   chan struct{} // closes to stop the re-admission prober
	probeDone   chan struct{} // closed when the prober has exited
	probeOnce   sync.Once
	lastTTH     atomic.Int64 // ns, most recent crash → healthy
	maxTTH      atomic.Int64 // ns, worst observed
	lat         serve.Histogram
	latFailover serve.Histogram // answered by a non-first pick
	latOracle   serve.Histogram // answered by the fleet oracle rung
	obs         *obs.Observer

	kindServed [serve.NumKinds]atomic.Int64 // answered lookups per query kind
	kindOracle [serve.NumKinds]atomic.Int64 // fleet-oracle answers per query kind
	kindLat    [serve.NumKinds]serve.Histogram
}

// New builds Replicas instances from the template and starts routing.
// Instance 0's dictionary doubles as the fleet oracle (all instances are
// built from the same key set, so any tree answers for all).
func New(cfg Config) (*Fleet, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > MaxReplicas {
		return nil, &ReplicaLimitError{Replicas: cfg.Replicas}
	}
	cfg.Hedge.setDefaults()
	cfg.Eject.setDefaults()
	f := &Fleet{cfg: cfg, policy: cfg.Policy, obs: cfg.Obs}
	if f.policy == nil {
		f.policy = RoundRobin()
	}
	f.maxFailovers = cfg.MaxFailovers
	if f.maxFailovers == 0 {
		f.maxFailovers = cfg.Replicas - 1
	} else if f.maxFailovers < 0 {
		f.maxFailovers = 0
	}
	f.reps = make([]*replica, cfg.Replicas)
	for i := range f.reps {
		inst, err := serve.New(f.instanceConfig(i))
		if err != nil {
			// Tear down what already started: constructor failure must not
			// leak serving goroutines.
			for j := 0; j < i; j++ {
				_ = f.reps[j].inst.Shutdown(context.Background())
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		f.reps[i] = &replica{idx: i, inst: inst}
	}
	// The oracle rung holds replica 0's host-side structures — one per
	// enabled kind. They are immutable data built from the shared key set
	// (every replica builds identical structures), so retaining them is safe
	// even across that replica's later crashes.
	f.ss = f.reps[0].inst.Structures()
	f.bt = f.ss.Membership()
	if cfg.Eject.Enabled {
		f.probeStop = make(chan struct{})
		f.probeDone = make(chan struct{})
		go f.probeEjected()
	}
	return f, nil
}

// instanceConfig specializes the template for replica i.
func (f *Fleet) instanceConfig(i int) serve.Config {
	cfg := f.cfg.Instance
	// The oracle rung belongs to the fleet: instances surface typed faults
	// so a lookup can fail over before any answer degrades.
	cfg.DisableOracle = true
	if f.cfg.MakeInjector != nil {
		cfg.Injector = f.cfg.MakeInjector(i)
	}
	if f.cfg.MakeTracer != nil {
		cfg.Tracer = f.cfg.MakeTracer(i)
	} else if i > 0 {
		cfg.Tracer = nil // a tracer records one mesh; never share it
	}
	// The Observer is deliberately shared (histograms and the trace ring are
	// concurrency-safe): instance-side stage marks land on the trace the
	// fleet began and carried in via context.
	cfg.Obs = f.obs
	return cfg
}

// Observer exposes the installed observability hub (nil when disabled).
func (f *Fleet) Observer() *obs.Observer { return f.obs }

// Tree exposes the fleet oracle's dictionary (tests, load generators).
func (f *Fleet) Tree() *dict.BTree { return f.bt }

// Structures exposes the fleet oracle's per-kind structure set.
func (f *Fleet) Structures() *serve.StructureSet { return f.ss }

// Kinds reports the query kinds every replica serves.
func (f *Fleet) Kinds() []serve.Kind { return f.ss.Kinds() }

// Replicas reports the configured replica count.
func (f *Fleet) Replicas() int { return len(f.reps) }

// Side reports the per-instance mesh side length.
func (f *Fleet) Side() int { return f.cfg.Instance.Side }

// MaxBatch reports the per-instance batch cap (from any live replica; the
// template value when all are down).
func (f *Fleet) MaxBatch() int {
	for _, r := range f.reps {
		r.mu.RLock()
		inst := r.inst
		r.mu.RUnlock()
		if inst != nil {
			return inst.MaxBatch()
		}
	}
	return f.cfg.Instance.MaxBatch
}

// instance returns replica i's live instance, or nil while it is down.
func (f *Fleet) instance(i int) *serve.Instance {
	r := f.reps[i]
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return nil
	}
	return r.inst
}

// views snapshots every replica for the routing policy.
func (f *Fleet) views() []ReplicaView {
	out := make([]ReplicaView, len(f.reps))
	for i, r := range f.reps {
		r.mu.RLock()
		inst, down := r.inst, r.down
		r.mu.RUnlock()
		v := ReplicaView{Index: i}
		if !down && inst != nil {
			v.Up = true
			v.Health = inst.Health()
			v.QueueLen = inst.QueueLen()
			v.QueueCap = inst.QueueCap()
			v.LatencyEWMA = time.Duration(r.ewmaNS.Load())
			v.Ejected = r.ejected.Load()
		}
		out[i] = v
	}
	return out
}

// Lookup dispatches one membership query — LookupKind with the membership
// kind, kept for pre-kind callers.
func (f *Fleet) Lookup(ctx context.Context, needle int64) (Result, error) {
	return f.LookupKind(ctx, serve.KindMembership, serve.Args{needle})
}

// LookupKind dispatches one query of the given kind: the policy picks a
// replica, and a pick that fails — overload, crash, typed round fault, open
// circuit — is re-dispatched to the next-preferred replica before the fleet
// falls back to that kind's host oracle. Client-context expiry is returned
// as-is (the client is gone; rerouting would answer nobody). When every
// routable replica rejected with overload the fleet reports ErrOverloaded:
// that is backpressure, not failure, and the caller should back off.
func (f *Fleet) LookupKind(ctx context.Context, kind serve.Kind, args serve.Args) (Result, error) {
	start := time.Now()
	if kind >= serve.NumKinds || f.ss.Get(kind) == nil {
		// Replicas are built from one template, so a kind missing here is
		// missing everywhere: fail fast instead of burning failover attempts
		// on replicas guaranteed to reject it.
		return Result{}, serve.ErrKindNotServed
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return Result{}, serve.ErrClosed
	}
	f.mu.RUnlock()
	f.dispatched.Add(1)

	// Fleet-level tracing: adopt the HTTP handler's trace from ctx, or begin
	// one here (and then finish it here — creator finalizes). The same trace
	// rides ctx into every instance dispatch, so one record accumulates the
	// admit/queue/linger/mesh marks of every replica it visited.
	var tr *obs.ReqTrace
	created := false
	if f.obs != nil {
		if tr = obs.FromContext(ctx); tr == nil {
			tr = f.obs.BeginClass(int(kind), obs.ParentFromContext(ctx), args[0], start)
			created = true
		}
		ctx = obs.NewContext(ctx, tr)
	}

	var tried uint64
	var lastErr error
	attempts, firstIdx := 0, -1
	overloadedOnly := true
	deadline, hasDeadline := ctx.Deadline()
	for attempts <= f.maxFailovers {
		idx := f.pick(tried)
		if idx < 0 {
			break
		}
		tried |= 1 << uint(idx)
		attempts++
		if firstIdx >= 0 {
			f.failovers.Add(1)
			if tr != nil {
				// The hop span: previous replica's failure surfacing here →
				// this re-dispatch. The next admit span starts at this mark.
				tr.Mark(obs.StageFailover)
			}
		} else {
			firstIdx = idx
		}
		inst := f.instance(idx)
		if inst == nil {
			lastErr = ErrNoReplica // crashed between the view and the fetch
			overloadedOnly = false
			continue
		}
		// Failover budget rung (§3.11): re-dispatching to a replica whose
		// expected round time exceeds the remaining deadline budget is
		// doomed work — skip the rung instead of burning it. The per-replica
		// prediction is what makes this gray-failure-aware: a latency-
		// injected replica honestly predicts long rounds, so tight-deadline
		// lookups route past it while generous ones may still use it.
		if hasDeadline {
			if need := inst.ExpectedRoundTime(kind); need > 0 && time.Until(deadline) < need {
				lastErr = serve.ErrBudgetExhausted
				overloadedOnly = false
				f.budgetShed.Add(1)
				continue
			}
		}
		res, servedIdx, hedgeWon, err := f.dispatchHedged(ctx, kind, args, idx, inst, &tried)
		if err == nil {
			failedOver := idx != firstIdx
			if failedOver {
				f.failoverServed.Add(1)
			}
			e2e := time.Since(start)
			f.lat.Observe(e2e)
			f.kindServed[kind].Add(1)
			f.kindLat[kind].Observe(e2e)
			if failedOver {
				f.latFailover.Observe(e2e)
			}
			if tr != nil {
				tr.Replica = servedIdx
			}
			if created {
				oc := obs.OutcomeMesh
				if failedOver || hedgeWon {
					oc = obs.OutcomeFailover
				} else if res.Degraded {
					oc = obs.OutcomeDegraded
				}
				f.obs.Finish(tr, oc, nil)
			}
			return Result{Result: res, Replica: servedIdx}, nil
		}
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The client is gone, not the replica. The instance's pipeline
			// may still hold the trace, so it can only be abandoned.
			if created {
				f.obs.Abandon(tr)
			}
			return Result{}, err
		}
		lastErr = err
		if !errors.Is(err, serve.ErrOverloaded) {
			overloadedOnly = false
		}
	}

	switch {
	case attempts > 0 && overloadedOnly:
		// Every routable replica is admission-full: backpressure. The
		// oracle must not absorb overload — it would turn saturation into
		// an unbounded degraded-answer pool and hide the knee.
		f.overloadedAll.Add(1)
		if created {
			f.obs.Finish(tr, obs.OutcomeRejected, serve.ErrOverloaded)
		}
		return Result{}, serve.ErrOverloaded
	case attempts == 0:
		f.unrouted.Add(1)
		if lastErr == nil {
			lastErr = ErrNoReplica
		}
	}
	if f.cfg.DisableOracle {
		if created {
			f.obs.Finish(tr, obs.OutcomeError, lastErr)
		}
		return Result{}, lastErr
	}
	// Oracle rung: no replica could answer (all crashed, draining, or
	// faulting). The kind's host-side structure descends its own search
	// graph — correct, Degraded-flagged, unaccounted in mesh steps.
	ans := serve.HostAnswer(f.ss.Get(kind), args)
	f.oracleServed.Add(1)
	f.kindServed[kind].Add(1)
	f.kindOracle[kind].Add(1)
	e2e := time.Since(start)
	f.lat.Observe(e2e)
	f.latOracle.Observe(e2e)
	f.kindLat[kind].Observe(e2e)
	if tr != nil {
		tr.Mark(obs.StageOracle)
		tr.Replica = -1
	}
	if created {
		f.obs.Finish(tr, obs.OutcomeOracle, nil)
	}
	return Result{
		Result: serve.Result{
			Kind:     kind,
			Needle:   args[0],
			Found:    ans.Found,
			LeafKey:  ans.Value,
			Value:    ans.Value,
			Aux:      ans.Aux,
			Steps:    ans.Steps,
			Degraded: true,
		},
		Replica: -1,
	}, nil
}

// CrashReplica simulates an instance crash: the replica is immediately
// unroutable, its in-flight and queued lookups fail with typed cancellation
// faults (which the dispatch loop treats as failover triggers), and its
// serving counters are folded into the fleet aggregate. No drain — a crash
// does not say goodbye.
func (f *Fleet) CrashReplica(i int) error {
	if i < 0 || i >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	r := f.reps[i]
	r.mu.Lock()
	if r.down || r.inst == nil {
		r.mu.Unlock()
		return fmt.Errorf("fleet: replica %d is already down", i)
	}
	inst := r.inst
	r.inst = nil
	r.down = true
	r.crashedAt = time.Now()
	r.crashes++
	r.mu.Unlock()
	f.crashes.Add(1)

	// Expired context: Shutdown cancels the mesh run instead of draining,
	// so every admitted lookup gets its fault now, not after a drain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = inst.Shutdown(ctx)
	addStats(&r.mu, &r.lost, inst.Stats())
	return nil
}

// RestartReplica brings a crashed replica back: a fresh instance is built
// from the template (dictionary rebuild and all — that cost is the point of
// measuring it) and the crash-to-healthy duration is recorded.
func (f *Fleet) RestartReplica(i int) error {
	if i < 0 || i >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return serve.ErrClosed
	}
	f.mu.RUnlock()
	r := f.reps[i]
	r.mu.RLock()
	down, crashedAt := r.down, r.crashedAt
	r.mu.RUnlock()
	if !down {
		return fmt.Errorf("fleet: replica %d is not down", i)
	}
	inst, err := serve.New(f.instanceConfig(i))
	if err != nil {
		return fmt.Errorf("fleet: restart replica %d: %w", i, err)
	}
	tth := time.Since(crashedAt)
	r.mu.Lock()
	if !r.down { // lost a restart race; discard ours
		r.mu.Unlock()
		_ = inst.Shutdown(context.Background())
		return fmt.Errorf("fleet: replica %d restarted concurrently", i)
	}
	r.inst = inst
	r.down = false
	r.lastTTH = tth
	r.mu.Unlock()
	// A fresh incarnation starts with a clean latency record: the old
	// instance's slowness (often the very reason it was crashed) must not
	// pre-eject its replacement.
	r.ewmaNS.Store(0)
	r.latSamples.Store(0)
	if r.ejected.CompareAndSwap(true, false) {
		f.readmissions.Add(1)
	}
	f.restarts.Add(1)
	f.lastTTH.Store(tth.Nanoseconds())
	for {
		m := f.maxTTH.Load()
		if tth.Nanoseconds() <= m || f.maxTTH.CompareAndSwap(m, tth.Nanoseconds()) {
			break
		}
	}
	return nil
}

// Health is the fleet's admission-facing state: Healthy while at least one
// replica is healthy *and not latency-ejected*, LameDuck once Shutdown
// begins, Degraded in between — every lookup is then answered by
// failover-to-degraded-replicas, last-resort ejected replicas, or the
// oracle, and /healthz tells balancers to prefer elsewhere. An all-ejected
// fleet is therefore Degraded even though every breaker is closed: that is
// the gray-failure case /healthz exists to surface.
func (f *Fleet) Health() serve.Health {
	f.mu.RLock()
	closed := f.closed
	f.mu.RUnlock()
	if closed {
		return serve.LameDuck
	}
	for _, v := range f.views() {
		if v.Up && v.Health == serve.Healthy && !v.Ejected {
			return serve.Healthy
		}
	}
	return serve.Degraded
}

// RestartBoundHint is the retry hint when zero replicas are routable: with
// every replica down or lame-duck, the soonest the fleet could accept work
// is bounded by a replica restart (dictionary rebuild and all), which is not
// knowable from admission state — so the hint is a fixed, deliberately
// pessimistic constant rather than a zero/garbage duration. Pinned by
// TestRetryAfterHintNoHealthyReplicas.
const RestartBoundHint = time.Second

// RetryAfterHint is the fleet's backpressure signal: the minimum retry hint
// across healthy routable replicas — the soonest any replica could accept
// work — not whichever instance happened to reject. Degraded replicas are
// consulted only when no healthy one exists. When every live replica is
// latency-ejected the hint is one probe interval: re-admission is gated on
// the prober's next canary, so that is the soonest routing can recover.
// With no routable replica at all the hint is RestartBoundHint.
func (f *Fleet) RetryAfterHint() time.Duration {
	best, bestDegraded := time.Duration(-1), time.Duration(-1)
	anyEjected := false
	for i, v := range f.views() {
		if !v.Up || v.Health == serve.LameDuck {
			continue
		}
		if v.Ejected {
			anyEjected = true
			continue
		}
		inst := f.instance(i)
		if inst == nil {
			continue
		}
		h := inst.RetryAfterHint()
		if v.Health == serve.Healthy {
			if best < 0 || h < best {
				best = h
			}
		} else if bestDegraded < 0 || h < bestDegraded {
			bestDegraded = h
		}
	}
	switch {
	case best >= 0:
		return best
	case bestDegraded >= 0:
		return bestDegraded
	case anyEjected:
		return f.cfg.Eject.ProbeInterval
	default:
		return RestartBoundHint
	}
}

// Shutdown closes fleet admission and drains every live replica in
// parallel through the normal serve drain path. Crashed replicas stay
// down. Returns the first drain error.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()

	if f.probeStop != nil {
		f.probeOnce.Do(func() { close(f.probeStop) })
		<-f.probeDone
	}

	var wg sync.WaitGroup
	errs := make([]error, len(f.reps))
	for i, r := range f.reps {
		r.mu.RLock()
		inst := r.inst
		r.mu.RUnlock()
		if inst == nil {
			continue
		}
		wg.Add(1)
		go func(i int, inst *serve.Instance) {
			defer wg.Done()
			errs[i] = inst.Shutdown(ctx)
		}(i, inst)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// addStats folds src's counters into dst under the replica lock.
func addStats(mu *sync.RWMutex, dst *serve.Stats, src serve.Stats) {
	mu.Lock()
	defer mu.Unlock()
	sumStats(dst, src)
}

// sumStats adds src's counters into dst (latency summaries do not sum;
// fleet-level latency comes from the fleet's own histogram).
func sumStats(dst *serve.Stats, src serve.Stats) {
	dst.Accepted += src.Accepted
	dst.Rejected += src.Rejected
	dst.Served += src.Served
	dst.Failed += src.Failed
	dst.Rounds += src.Rounds
	dst.SimSteps += src.SimSteps
	if src.PeakBatch > dst.PeakBatch {
		dst.PeakBatch = src.PeakBatch
	}
	dst.LastBatch = src.LastBatch
	dst.StepBudget = src.StepBudget
	dst.Retries += src.Retries
	dst.Recovered += src.Recovered
	dst.BudgetShed += src.BudgetShed
	dst.Degraded += src.Degraded
	dst.DegradedRounds += src.DegradedRounds
	dst.CircuitOpens += src.CircuitOpens
	dst.CircuitCloses += src.CircuitCloses
	dst.CanaryRounds += src.CanaryRounds
	dst.CanaryFails += src.CanaryFails
	dst.FaultsAudit += src.FaultsAudit
	dst.FaultsBudget += src.FaultsBudget
	dst.FaultsCanceled += src.FaultsCanceled
	dst.FaultsPanic += src.FaultsPanic
	dst.FaultsOther += src.FaultsOther
}

// ReplicaStats is one replica's row in the fleet snapshot.
type ReplicaStats struct {
	Index         int           `json:"index"`
	State         string        `json:"state"` // up | down
	Health        string        `json:"health,omitempty"`
	QueueLen      int           `json:"queue_len"`
	Crashes       int64         `json:"crashes"`
	TimeToHealthy time.Duration `json:"time_to_healthy_ns,omitempty"` // last restart
	// Ejected and LatencyEWMA are the gray-failure columns (§3.11): the
	// fleet's latency-outlier verdict and the score behind it.
	Ejected     bool          `json:"ejected,omitempty"`
	LatencyEWMA time.Duration `json:"latency_ewma_ns,omitempty"`
	Serve       serve.Stats   `json:"serve"`
}

// Stats is a point-in-time snapshot of the fleet. Agg sums every
// incarnation of every replica (crashed instances included); its Degraded
// count covers instance-level oracle answers only — fleet-oracle answers
// are OracleServed, and both flag Result.Degraded to clients.
type Stats struct {
	Replicas         int    `json:"replicas"`
	HealthyReplicas  int    `json:"healthy_replicas"`
	DegradedReplicas int    `json:"degraded_replicas"`
	DownReplicas     int    `json:"down_replicas"`
	EjectedReplicas  int    `json:"ejected_replicas"`
	Policy           string `json:"policy"`
	Health           string `json:"health"`

	Dispatched     int64 `json:"dispatched"`
	Failovers      int64 `json:"failovers"`
	FailoverServed int64 `json:"failover_served"`
	OracleServed   int64 `json:"oracle_served"`
	OverloadedAll  int64 `json:"overloaded_all"`
	Unrouted       int64 `json:"unrouted"`
	Crashes        int64 `json:"crashes"`
	Restarts       int64 `json:"restarts"`

	// Gray-failure counters (§3.11). BudgetShed here counts *fleet-side*
	// pre-dispatch sheds (replica skipped because its expected round time
	// exceeded the remaining deadline budget); instance-side sheds are in
	// Agg.BudgetShed. Hedges/HedgeWins: speculative second dispatches and
	// how many beat the primary. Ejections/Readmissions/EjectProbes: the
	// latency-outlier ejection lifecycle.
	BudgetShed   int64 `json:"budget_shed"`
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
	EjectProbes  int64 `json:"eject_probes"`

	LastTimeToHealthy time.Duration `json:"last_time_to_healthy_ns"`
	MaxTimeToHealthy  time.Duration `json:"max_time_to_healthy_ns"`

	Latency serve.LatencySummary `json:"latency"` // fleet dispatch → answer
	// LatencyFailover / LatencyOracle split the dispatch latency by how the
	// answer was produced (non-first-pick replica vs fleet oracle rung), so
	// the fleet p99 can be attributed; Latency stays as the combined view.
	LatencyFailover serve.LatencySummary `json:"latency_failover"`
	LatencyOracle   serve.LatencySummary `json:"latency_oracle"`

	Agg        serve.Stats    `json:"agg"`
	PerReplica []ReplicaStats `json:"per_replica"`
	ByKind     []KindRouting  `json:"by_kind,omitempty"`
}

// KindRouting is one query kind's routing row in the fleet snapshot:
// answered lookups of that kind (any rung), how many fell through to the
// fleet oracle, and the kind's dispatch-to-answer latency.
type KindRouting struct {
	Kind         string               `json:"kind"`
	Served       int64                `json:"served"`
	OracleServed int64                `json:"oracle_served"`
	Latency      serve.LatencySummary `json:"latency"`
}

// Stats snapshots the fleet: routing and failover counters, per-replica
// state, and the summed per-instance serving counters.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Replicas:          len(f.reps),
		Policy:            f.policy.Name(),
		Health:            f.Health().String(),
		Dispatched:        f.dispatched.Load(),
		Failovers:         f.failovers.Load(),
		FailoverServed:    f.failoverServed.Load(),
		OracleServed:      f.oracleServed.Load(),
		OverloadedAll:     f.overloadedAll.Load(),
		Unrouted:          f.unrouted.Load(),
		Crashes:           f.crashes.Load(),
		Restarts:          f.restarts.Load(),
		BudgetShed:        f.budgetShed.Load(),
		Hedges:            f.hedges.Load(),
		HedgeWins:         f.hedgeWins.Load(),
		Ejections:         f.ejections.Load(),
		Readmissions:      f.readmissions.Load(),
		EjectProbes:       f.ejectProbes.Load(),
		LastTimeToHealthy: time.Duration(f.lastTTH.Load()),
		MaxTimeToHealthy:  time.Duration(f.maxTTH.Load()),
		Latency:           f.lat.Snapshot().Summary(),
		LatencyFailover:   f.latFailover.Snapshot().Summary(),
		LatencyOracle:     f.latOracle.Snapshot().Summary(),
	}
	for _, r := range f.reps {
		r.mu.RLock()
		inst, down := r.inst, r.down
		row := ReplicaStats{Index: r.idx, Crashes: r.crashes, TimeToHealthy: r.lastTTH, Serve: r.lost}
		r.mu.RUnlock()
		if down || inst == nil {
			row.State = "down"
			st.DownReplicas++
		} else {
			row.State = "up"
			h := inst.Health()
			row.QueueLen = inst.QueueLen()
			row.LatencyEWMA = time.Duration(r.ewmaNS.Load())
			row.Ejected = r.ejected.Load()
			if row.Ejected {
				// The fleet's verdict overrides the instance's self-report:
				// a gray-failed replica says Healthy about itself.
				row.Health = serve.Ejected.String()
				st.EjectedReplicas++
			} else {
				row.Health = h.String()
			}
			live := inst.Stats()
			sumStats(&row.Serve, live)
			switch {
			case row.Ejected:
			case h == serve.Healthy:
				st.HealthyReplicas++
			case h == serve.Degraded:
				st.DegradedReplicas++
			}
		}
		sumStats(&st.Agg, row.Serve)
		st.PerReplica = append(st.PerReplica, row)
	}
	st.Agg.Health = st.Health
	st.Agg.Latency = st.Latency
	for _, k := range f.ss.Kinds() {
		st.ByKind = append(st.ByKind, KindRouting{
			Kind:         k.String(),
			Served:       f.kindServed[k].Load(),
			OracleServed: f.kindOracle[k].Load(),
			Latency:      f.kindLat[k].Snapshot().Summary(),
		})
	}
	return st
}
