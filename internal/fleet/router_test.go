package fleet

import (
	"testing"

	"repro/internal/serve"
)

func noSkip(int) bool { return false }

func skipSet(idxs ...int) func(int) bool {
	set := map[int]bool{}
	for _, i := range idxs {
		set[i] = true
	}
	return func(i int) bool { return set[i] }
}

// upViews builds n up, healthy, empty-queue views.
func upViews(n int) []ReplicaView {
	out := make([]ReplicaView, n)
	for i := range out {
		out[i] = ReplicaView{Index: i, Up: true, Health: serve.Healthy, QueueCap: 64}
	}
	return out
}

func TestRoundRobinRotatesAndSkips(t *testing.T) {
	p := RoundRobin()
	views := upViews(3)
	seen := map[int]int{}
	var prev = -1
	for i := 0; i < 6; i++ {
		idx := p.Pick(views, noSkip)
		if idx < 0 || idx > 2 {
			t.Fatalf("pick %d out of range", idx)
		}
		if idx == prev {
			t.Fatalf("round-robin repeated replica %d on consecutive picks", idx)
		}
		prev = idx
		seen[idx]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 2 {
			t.Fatalf("uneven rotation over 6 picks: %v", seen)
		}
	}

	// A down replica and a lame-duck replica never receive traffic; a
	// skipped (already-tried) replica is the failover contract.
	views[0].Up = false
	views[1].Health = serve.LameDuck
	for i := 0; i < 4; i++ {
		if idx := p.Pick(views, noSkip); idx != 2 {
			t.Fatalf("pick %d, want the only routable replica 2", idx)
		}
	}
	if idx := p.Pick(views, skipSet(2)); idx != -1 {
		t.Fatalf("pick %d with every replica excluded, want -1", idx)
	}
	if idx := p.Pick(nil, noSkip); idx != -1 {
		t.Fatalf("pick %d on empty fleet, want -1", idx)
	}
}

func TestLeastLoadedPicksShallowestQueue(t *testing.T) {
	p := LeastLoaded()
	views := upViews(3)
	views[0].QueueLen = 5
	views[1].QueueLen = 1
	views[2].QueueLen = 9
	if idx := p.Pick(views, noSkip); idx != 1 {
		t.Fatalf("pick %d, want least-loaded replica 1", idx)
	}
	// Failover order: with 1 tried, the next-shallowest queue wins.
	if idx := p.Pick(views, skipSet(1)); idx != 0 {
		t.Fatalf("pick %d after skipping 1, want 0", idx)
	}
	// Ties break to the lowest index — deterministic routing for tests.
	views[0].QueueLen, views[2].QueueLen = 1, 1
	if idx := p.Pick(views, noSkip); idx != 0 {
		t.Fatalf("pick %d on a tie, want lowest index 0", idx)
	}
	// Load does not excuse routing to a down replica.
	views[0].Up = false
	views[1].QueueLen = 100
	if idx := p.Pick(views, skipSet(2)); idx != 1 {
		t.Fatalf("pick %d, want 1 (the deep queue is still the only routable one)", idx)
	}
}

func TestHealthWeightedPrefersHealthyTier(t *testing.T) {
	p := HealthWeighted()
	views := upViews(3)
	// An idle degraded replica (breaker open, canaries probing) loses to a
	// busy healthy one: circuit state outranks queue depth.
	views[0].Health = serve.Degraded
	views[1].QueueLen = 7
	views[2].QueueLen = 3
	if idx := p.Pick(views, noSkip); idx != 2 {
		t.Fatalf("pick %d, want least-loaded healthy replica 2", idx)
	}
	if idx := p.Pick(views, skipSet(2)); idx != 1 {
		t.Fatalf("pick %d, want the remaining healthy replica 1", idx)
	}
	// Only when every healthy replica is exhausted does a degraded one get
	// traffic — the last rung before the fleet oracle.
	if idx := p.Pick(views, skipSet(1, 2)); idx != 0 {
		t.Fatalf("pick %d, want degraded replica 0 as last resort", idx)
	}
	// All degraded: least loaded among them.
	views[1].Health = serve.Degraded
	views[2].Health = serve.Degraded
	views[0].QueueLen = 2
	if idx := p.Pick(views, noSkip); idx != 0 {
		t.Fatalf("pick %d among all-degraded, want least-loaded 0", idx)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p == nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := PolicyByName(""); err != nil || p.Name() != "round-robin" {
		t.Fatalf("empty name → %v, %v; want the round-robin default", p, err)
	}
	if _, err := PolicyByName("weighted-dice"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}
