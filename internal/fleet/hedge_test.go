package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mesh"
	"repro/internal/serve"
)

// TestHedgeBeatsGraySlowReplica is the satellite-2 contract, run under
// -race in CI: replica 0 — the least-loaded tie-break pick — carries a
// latency injector that makes its mesh work ~200× slower while staying
// perfectly correct (a gray failure: no faults, closed breaker, Healthy
// self-report), and hedging with a small fixed delay routes around it.
// Every lookup must return exactly one oracle-correct answer, hedges must
// fire and win, and the win accounting must not double-count: a hedge win
// is not a failover, dispatches count once per lookup, and the oracle rung
// is never reached.
func TestHedgeBeatsGraySlowReplica(t *testing.T) {
	// Factor 1 keeps the injector inert through the dictionary build; the
	// test arms the slowdown only once the fleet is up, via SetFactor.
	lat := faults.NewLatency(faults.LatencyConfig{Factor: 1}, nil)
	f := newTestFleet(t, Config{
		Replicas: 2,
		Policy:   LeastLoaded(), // ties break to replica 0, the slow one
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		MakeInjector: func(i int) mesh.Injector {
			if i == 0 {
				return lat
			}
			return nil
		},
		Hedge: HedgeConfig{Enabled: true, Delay: 2 * time.Millisecond},
	})

	// Warm both replicas while the fleet is uniformly fast.
	for i := 0; i < 4; i++ {
		needle := int64(2*i + 1)
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("warm lookup %d: %v", needle, err)
		}
		checkAnswer(t, f, needle, res)
	}
	warm := f.Stats().Dispatched

	lat.SetFactor(200) // replica 0 goes gray: slow, correct, Healthy

	// Sequential phase: drive lookups until hedges demonstrably win, with a
	// generous iteration bound instead of a wall-clock one.
	issued := int64(0)
	for i := 0; i < 300; i++ {
		needle := int64(i)
		res, err := f.Lookup(context.Background(), needle)
		if err != nil {
			t.Fatalf("lookup %d under gray slowdown: %v", needle, err)
		}
		checkAnswer(t, f, needle, res)
		issued++
		if st := f.Stats(); st.HedgeWins >= 3 && i >= 20 {
			break
		}
	}

	// Concurrent phase: racing hedged dispatches against each other is what
	// -race is here to scrutinise (score CAS, answer channel, cancellation).
	const workers, perWorker = 8, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				needle := int64(w*perWorker + i)
				res, err := f.Lookup(context.Background(), needle)
				if err != nil {
					t.Errorf("concurrent lookup %d: %v", needle, err)
					return
				}
				checkAnswer(t, f, needle, res)
			}
		}()
	}
	wg.Wait()
	issued += workers * perWorker

	st := f.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("no hedges fired against a 200× slow primary: %+v", st)
	}
	if st.HedgeWins > st.Hedges {
		t.Fatalf("hedge wins %d exceed hedges %d", st.HedgeWins, st.Hedges)
	}
	// No double-count: one dispatch per lookup regardless of speculative
	// attempts, hedge wins stay out of the failover ledger, and no lookup
	// fell through to the oracle.
	if st.Dispatched != warm+issued {
		t.Fatalf("dispatched %d for %d lookups — hedges leaked into the dispatch count", st.Dispatched, warm+issued)
	}
	if st.FailoverServed != 0 || st.Failovers != 0 {
		t.Fatalf("hedge wins were booked as failovers: %+v", st)
	}
	if st.OracleServed != 0 || st.Unrouted != 0 {
		t.Fatalf("gray slowdown reached the oracle/unrouted rungs: %+v", st)
	}
	// Gray means gray: the slow replica never faulted and still reports up.
	if st.DownReplicas != 0 || st.Crashes != 0 {
		t.Fatalf("latency injection crashed a replica: %+v", st)
	}
}

// TestHedgeDisabledNeverSpeculates pins the default: without Hedge.Enabled
// the dispatch path is the plain single-attempt call and no hedge counters
// move, even with a fixed delay configured.
func TestHedgeDisabledNeverSpeculates(t *testing.T) {
	f := newTestFleet(t, Config{
		Replicas: 2,
		Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond},
		Hedge:    HedgeConfig{Delay: time.Nanosecond}, // armed but not enabled
	})
	for i := 0; i < 10; i++ {
		res, err := f.Lookup(context.Background(), int64(i))
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		checkAnswer(t, f, int64(i), res)
	}
	if st := f.Stats(); st.Hedges != 0 || st.HedgeWins != 0 {
		t.Fatalf("disabled hedging still speculated: %+v", st)
	}
}
