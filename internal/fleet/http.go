package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the fleet's HTTP surface — the same contract as one
// instance's (serve.Instance.Handler), aggregated:
//
//	GET /search?key=K — one lookup through the router and failover ladder;
//	                    the JSON answer carries the serving replica index
//	                    (-1 for a fleet-oracle answer). 429 only when every
//	                    routable replica rejected with overload, 503 after
//	                    Shutdown; the Retry-After on both is the *least-
//	                    loaded healthy* replica's estimate — the soonest the
//	                    fleet could accept work — not whichever instance
//	                    happened to reject.
//	GET /healthz      — 200 while at least one replica is healthy and not
//	                    latency-ejected; 503 only when none is (all
//	                    degraded/crashed/ejected) or the fleet is draining.
//	                    A single replica loss is the fleet working as
//	                    designed, not an incident. 504 on /search means the
//	                    X-Deadline-Budget ran out before any replica could
//	                    answer (§3.11).
//	GET /metrics      — fleet stats (routing, failover, crash/restart,
//	                    time-to-healthy), per-replica state, and the summed
//	                    per-instance serving counters under "serve" so
//	                    instance-shaped scrapers (loadgen.HTTPTarget) work
//	                    unchanged against a fleet.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", f.handleSearch)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	if f.obs != nil {
		mux.Handle("/debug/traces", f.obs.DebugHandler())
	} else {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "fleet: request tracing disabled (Config.Obs is nil)", http.StatusNotFound)
		})
	}
	return mux
}

// traceCtx mirrors the instance handler's traceparent adoption: the fleet
// trace takes the wire ID (minting one when absent/malformed) and the
// response echoes it so a loadgen client can correlate its samples with
// /debug/traces records.
func (f *Fleet) traceCtx(w http.ResponseWriter, r *http.Request) context.Context {
	ctx := r.Context()
	if f.obs == nil {
		return ctx
	}
	id, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if err != nil {
		id = obs.NewTraceID()
	}
	w.Header().Set("Traceparent", id.Traceparent())
	return obs.ContextWithParent(ctx, id)
}

func (f *Fleet) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind, err := serve.ParseKind(q.Get("kind"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args, err := serve.ParseSearchArgs(kind, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The X-Deadline-Budget header becomes a real context deadline here, so
	// the whole ladder below — fleet budget rung, instance admission, batch
	// linger, retries, hedges — sees one consistent remaining budget.
	ctx, cancel := serve.WithDeadlineBudget(f.traceCtx(w, r), r)
	defer cancel()
	res, err := f.LookupKind(ctx, kind, args)
	switch {
	case errors.Is(err, serve.ErrKindNotServed):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, serve.ErrClosed):
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, serve.ErrBudgetExhausted):
		// Deadline budget below every replica's expected round time: the
		// fleet shed the work rather than answer past the deadline. 504 —
		// the server-side deadline verdict — mirrors the instance handler.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case r.Context().Err() == nil && errors.Is(err, context.DeadlineExceeded):
		// A deadline fired that the client's own context did not carry: the
		// X-Deadline-Budget header's server-side deadline ran out mid-flight.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Same client-versus-server split as the instance handler: the
		// request's own context firing is a client outcome, 4xx class.
		status := serve.StatusClientClosedRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		http.Error(w, err.Error(), status)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := f.Health()
	st := f.Stats()
	doc := map[string]any{
		"health":                  h.String(),
		"replicas":                st.Replicas,
		"healthy_replicas":        st.HealthyReplicas,
		"degraded_replicas":       st.DegradedReplicas,
		"down_replicas":           st.DownReplicas,
		"ejected_replicas":        st.EjectedReplicas,
		"crashes":                 st.Crashes,
		"restarts":                st.Restarts,
		"last_time_to_healthy_ns": st.LastTimeToHealthy,
	}
	w.Header().Set("Content-Type", "application/json")
	if h != serve.Healthy {
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		f.promMetrics(w)
		return
	}
	st := f.Stats()
	doc := map[string]any{
		"fleet":     st,
		"serve":     st.Agg, // instance-shaped aggregate for shared scrapers
		"health":    st.Health,
		"side":      f.Side(),
		"keys":      len(f.bt.Keys),
		"max_batch": f.MaxBatch(),
	}
	doc["kinds"] = st.ByKind
	if st.Dispatched > 0 {
		doc["failover_fraction"] = float64(st.FailoverServed) / float64(st.Dispatched)
		doc["oracle_fraction"] = float64(st.OracleServed) / float64(st.Dispatched)
	}
	writeJSON(w, doc)
}

// promMetrics renders the fleet's Prometheus text exposition: routing and
// failover counters, per-replica gauges, outcome-split dispatch latency, the
// bucket-exact merge of every live replica's serving histograms, and (with
// Config.Obs) the shared per-stage decomposition and SLO burn gauges.
func (f *Fleet) promMetrics(w http.ResponseWriter) {
	st := f.Stats()
	pw := obs.NewPromWriter()

	pw.Counter("meshfleet_dispatched_total", "Lookups dispatched through the router.", float64(st.Dispatched))
	pw.Counter("meshfleet_failovers_total", "Re-dispatch attempts after a failed pick.", float64(st.Failovers))
	pw.Counter("meshfleet_answers_total", "Answered lookups by serving rung.", float64(st.Dispatched-st.FailoverServed-st.OracleServed-st.OverloadedAll-st.Unrouted), "rung", "first_pick")
	pw.Counter("meshfleet_answers_total", "Answered lookups by serving rung.", float64(st.FailoverServed), "rung", "failover")
	pw.Counter("meshfleet_answers_total", "Answered lookups by serving rung.", float64(st.OracleServed), "rung", "oracle")
	pw.Counter("meshfleet_overloaded_total", "Lookups rejected with every routable replica admission-full.", float64(st.OverloadedAll))
	pw.Counter("meshfleet_unrouted_total", "Lookups that found no routable replica.", float64(st.Unrouted))
	pw.Counter("meshfleet_crashes_total", "Replica crashes.", float64(st.Crashes))
	pw.Counter("meshfleet_restarts_total", "Replica restarts.", float64(st.Restarts))
	pw.Counter("meshfleet_budget_shed_total", "Dispatches skipped: deadline budget below the replica's expected round time.", float64(st.BudgetShed))
	pw.Counter("meshfleet_hedges_total", "Speculative second dispatches launched.", float64(st.Hedges))
	pw.Counter("meshfleet_hedge_wins_total", "Hedged dispatches whose answer arrived first.", float64(st.HedgeWins))
	pw.Counter("meshfleet_ejections_total", "Latency-outlier replica ejections.", float64(st.Ejections))
	pw.Counter("meshfleet_readmissions_total", "Ejections cleared by probes or operators.", float64(st.Readmissions))
	pw.Counter("meshfleet_eject_probes_total", "Canary probes sent to ejected replicas.", float64(st.EjectProbes))
	pw.Gauge("meshfleet_ejected_replicas", "Replicas currently latency-ejected.", float64(st.EjectedReplicas))

	pw.Gauge("meshfleet_replicas", "Configured replica count.", float64(st.Replicas))
	pw.Gauge("meshfleet_last_time_to_healthy_seconds", "Most recent crash-to-healthy duration.", float64(st.LastTimeToHealthy)/1e9)
	for _, rv := range f.views() {
		idx := strconv.Itoa(rv.Index)
		pw.Gauge("meshfleet_replica_up", "1 while the replica is routable.", boolGauge(rv.Up), "replica", idx)
		health := "down"
		if rv.Up {
			health = rv.Health.String()
		}
		pw.Gauge("meshfleet_replica_healthy", "1 while the replica reports healthy.", boolGauge(rv.Up && rv.Health == serve.Healthy), "replica", idx, "health", health)
		pw.Gauge("meshfleet_replica_queue_depth", "Replica admission-queue depth.", float64(rv.QueueLen), "replica", idx)
		pw.Gauge("meshfleet_replica_latency_ewma_seconds", "Per-replica EWMA dispatch-latency score (the ejection signal).", float64(rv.LatencyEWMA)/1e9, "replica", idx)
		pw.Gauge("meshfleet_replica_ejected", "1 while the replica is latency-ejected.", boolGauge(rv.Ejected), "replica", idx)
		rep := f.reps[rv.Index]
		rep.mu.RLock()
		crashes := rep.crashes
		rep.mu.RUnlock()
		pw.Counter("meshfleet_replica_crashes_total", "Crashes of this replica slot.", float64(crashes), "replica", idx)
	}

	// Per-kind routing: lookups of each query family, how many fell through
	// to the fleet oracle, and the kind's dispatch latency.
	for _, kr := range st.ByKind {
		pw.Counter("meshfleet_kind_served_total", "Answered lookups by query kind.", float64(kr.Served), "kind", kr.Kind)
		pw.Counter("meshfleet_kind_oracle_total", "Fleet-oracle answers by query kind.", float64(kr.OracleServed), "kind", kr.Kind)
	}
	for _, k := range f.ss.Kinds() {
		pw.Histogram("meshfleet_kind_request_duration_seconds", "Dispatch-to-answer latency by query kind.", f.kindLat[k].Snapshot(), "kind", k.String())
	}

	// Fleet-level dispatch latency, combined + by rung.
	lat := f.lat.Snapshot()
	pw.Histogram("meshfleet_request_duration_seconds", "Dispatch-to-answer latency.", lat, "rung", "all")
	pw.Histogram("meshfleet_request_duration_seconds", "Dispatch-to-answer latency.", f.latFailover.Snapshot(), "rung", "failover")
	pw.Histogram("meshfleet_request_duration_seconds", "Dispatch-to-answer latency.", f.latOracle.Snapshot(), "rung", "oracle")

	// Replica-level serving latency, merged bucket-exact across live
	// replicas (fixed boundaries sum losslessly), split by outcome.
	var mAll, mMesh, mDeg obs.HistSnapshot
	for i := range f.reps {
		inst := f.instance(i)
		if inst == nil {
			continue
		}
		mAll = mAll.Merge(inst.LatencySnapshot())
		im, id := inst.LatencyByOutcome()
		mMesh = mMesh.Merge(im)
		mDeg = mDeg.Merge(id)
	}
	pw.Histogram("meshserve_request_duration_seconds", "Per-replica serving latency, merged across live replicas.", mAll, "outcome", "all")
	pw.Histogram("meshserve_request_duration_seconds", "Per-replica serving latency, merged across live replicas.", mMesh, "outcome", "mesh")
	pw.Histogram("meshserve_request_duration_seconds", "Per-replica serving latency, merged across live replicas.", mDeg, "outcome", "degraded")

	if f.obs != nil {
		pw.WriteObserver("meshfleet", f.obs)
		pw.WriteLatencyBurn("meshfleet", f.obs, lat)
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(pw.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
