package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// Handler returns the fleet's HTTP surface — the same contract as one
// instance's (serve.Instance.Handler), aggregated:
//
//	GET /search?key=K — one lookup through the router and failover ladder;
//	                    the JSON answer carries the serving replica index
//	                    (-1 for a fleet-oracle answer). 429 only when every
//	                    routable replica rejected with overload, 503 after
//	                    Shutdown; the Retry-After on both is the *least-
//	                    loaded healthy* replica's estimate — the soonest the
//	                    fleet could accept work — not whichever instance
//	                    happened to reject.
//	GET /healthz      — 200 while at least one replica is healthy; 503 only
//	                    when none is (all degraded/crashed) or the fleet is
//	                    draining. A single replica loss is the fleet working
//	                    as designed, not an incident.
//	GET /metrics      — fleet stats (routing, failover, crash/restart,
//	                    time-to-healthy), per-replica state, and the summed
//	                    per-instance serving counters under "serve" so
//	                    instance-shaped scrapers (loadgen.HTTPTarget) work
//	                    unchanged against a fleet.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", f.handleSearch)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	return mux
}

func (f *Fleet) handleSearch(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseInt(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "fleet: /search needs an integer ?key=", http.StatusBadRequest)
		return
	}
	res, err := f.Lookup(r.Context(), key)
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, serve.ErrClosed):
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Same client-versus-server split as the instance handler: the
		// request's own context firing is a client outcome, 4xx class.
		status := serve.StatusClientClosedRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		http.Error(w, err.Error(), status)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := f.Health()
	st := f.Stats()
	doc := map[string]any{
		"health":            h.String(),
		"replicas":          st.Replicas,
		"healthy_replicas":  st.HealthyReplicas,
		"degraded_replicas": st.DegradedReplicas,
		"down_replicas":     st.DownReplicas,
		"crashes":           st.Crashes,
		"restarts":          st.Restarts,
		"last_time_to_healthy_ns": st.LastTimeToHealthy,
	}
	w.Header().Set("Content-Type", "application/json")
	if h != serve.Healthy {
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(f.RetryAfterHint()))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func (f *Fleet) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := f.Stats()
	doc := map[string]any{
		"fleet":     st,
		"serve":     st.Agg, // instance-shaped aggregate for shared scrapers
		"health":    st.Health,
		"side":      f.Side(),
		"keys":      len(f.bt.Keys),
		"max_batch": f.MaxBatch(),
	}
	if st.Dispatched > 0 {
		doc["failover_fraction"] = float64(st.FailoverServed) / float64(st.Dispatched)
		doc["oracle_fraction"] = float64(st.OracleServed) / float64(st.Dispatched)
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
