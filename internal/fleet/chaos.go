package fleet

import (
	"math/rand"
	"sync"
	"time"
)

// ChaosConfig drives the instance-level chaos monkey: whole-replica crashes
// and restarts, the failure mode the mesh-level fault injector (internal/
// faults) cannot express. Seeded, so a chaos run's kill schedule is
// reproducible up to goroutine timing.
type ChaosConfig struct {
	// Seed feeds the kill schedule's RNG (required, non-zero).
	Seed int64
	// KillEvery is the mean interval between kills, jittered ±50%
	// (default 500ms).
	KillEvery time.Duration
	// Downtime is how long a killed replica stays down before restart
	// (default 250ms; the rebuild itself adds to time-to-healthy).
	Downtime time.Duration
}

// StartChaos begins killing and restarting replicas until stop is called.
// At most one replica is down at a time and only when at least two are up:
// the monkey tests failover, not total blackout — a fleet-wide outage is a
// separate scenario (see TestAllReplicasDownServesFromOracle). stop blocks
// until in-flight kills finish restarting, so a stopped fleet is whole.
func (f *Fleet) StartChaos(cfg ChaosConfig) (stop func()) {
	if cfg.KillEvery <= 0 {
		cfg.KillEvery = 500 * time.Millisecond
	}
	if cfg.Downtime <= 0 {
		cfg.Downtime = 250 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for {
			wait := time.Duration(float64(cfg.KillEvery) * (0.5 + rng.Float64()))
			select {
			case <-done:
				return
			case <-time.After(wait):
			}
			// Kill a random up replica, but never the last one.
			var up []int
			for _, v := range f.views() {
				if v.Up {
					up = append(up, v.Index)
				}
			}
			if len(up) < 2 {
				continue
			}
			victim := up[rng.Intn(len(up))]
			if err := f.CrashReplica(victim); err != nil {
				continue
			}
			select {
			case <-done:
			case <-time.After(cfg.Downtime):
			}
			// Restart even when stopping: chaos must hand the fleet back
			// whole. A closed fleet refuses the restart; that's fine.
			_ = f.RestartReplica(victim)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
