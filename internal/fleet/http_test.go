package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestFleetHTTPSurface walks the fleet handler through the robustness
// contract of DESIGN.md §3.8: /healthz stays 200 through a single replica
// kill (that is the fleet working as designed), /search keeps answering
// correctly all the way down to the oracle rung, and only an all-replicas
// outage flips /healthz to 503 — with a Retry-After.
func TestFleetHTTPSurface(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 3, Instance: serve.Config{Side: 8, Linger: 100 * time.Microsecond}})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	get := func(path string) (int, http.Header, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, string(body)
	}
	search := func(key string) (int, Result) {
		t.Helper()
		code, _, body := get("/search?key=" + key)
		var res Result
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &res); err != nil {
				t.Fatalf("bad /search body %q: %v", body, err)
			}
		}
		return code, res
	}

	// Healthy fleet: correct answers with replica attribution, 200 health.
	code, res := search("3")
	if code != 200 || !res.Found || res.LeafKey != 3 || res.Replica < 0 || res.Degraded {
		t.Fatalf("healthy /search → %d %+v", code, res)
	}
	if code, _, _ := get("/search?key=banana"); code != http.StatusBadRequest {
		t.Fatalf("garbage key → %d, want 400", code)
	}
	if code, _, body := get("/healthz"); code != 200 || !strings.Contains(body, "healthy") {
		t.Fatalf("/healthz on a whole fleet → %d %s", code, body)
	}

	// One replica down: not an incident. Health stays 200, serving continues.
	if err := f.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	if code, _, body := get("/healthz"); code != 200 {
		t.Fatalf("/healthz with 1 of 3 replicas down → %d %s (a single loss must not flip health)", code, body)
	}
	code, res = search("5")
	if code != 200 || !res.Found || res.Degraded {
		t.Fatalf("/search with one replica down → %d %+v", code, res)
	}

	// Every replica down: degraded, 503 health with a retry hint, and
	// /search answers from the fleet oracle rather than erroring.
	if err := f.CrashReplica(1); err != nil {
		t.Fatal(err)
	}
	if err := f.CrashReplica(2); err != nil {
		t.Fatal(err)
	}
	code, hdr, body := get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz with all replicas down → %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("unhealthy /healthz carries no Retry-After")
	}
	code, res = search("7")
	if code != 200 || !res.Found || !res.Degraded || res.Replica != -1 {
		t.Fatalf("all-down /search → %d %+v, want a degraded oracle answer", code, res)
	}

	// /metrics stays instance-shaped for shared scrapers.
	code, _, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics → %d", code)
	}
	var doc struct {
		Serve serve.Stats `json:"serve"`
		Fleet Stats       `json:"fleet"`
		Side  int         `json:"side"`
		Keys  int         `json:"keys"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad /metrics body: %v", err)
	}
	if doc.Side != 8 || doc.Keys != len(f.Tree().Keys) {
		t.Fatalf("/metrics shape fields: %+v", doc)
	}
	if doc.Fleet.Crashes != 3 || doc.Fleet.OracleServed == 0 {
		t.Fatalf("/metrics fleet counters: %+v", doc.Fleet)
	}
	if doc.Serve.Served == 0 {
		t.Fatal("/metrics aggregate lost the crashed replicas' serving history")
	}
}

// TestFleetHTTPAfterShutdown pins the draining surface: 503 with Retry-After
// on /search, lame-duck on /healthz.
func TestFleetHTTPAfterShutdown(t *testing.T) {
	f := newTestFleet(t, Config{Replicas: 2, Instance: serve.Config{Side: 8}})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/search?key=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown /search → %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("post-shutdown /search carries no Retry-After")
	}
	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	body, _ := io.ReadAll(hresp.Body)
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "lame-duck") {
		t.Fatalf("post-shutdown /healthz → %d %s", hresp.StatusCode, body)
	}
}
