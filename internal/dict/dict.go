// Package dict implements a parallel dictionary on the mesh: an (a,b)-tree
// (2-3 tree by default — the structure of [PVS83], which §1 cites as the
// EREW-PRAM ancestor of multisearch) over a sorted key set, answering
// batched membership and predecessor queries through α-partitionable
// multisearch (Theorem 5). Unlike the complete k-ary trees of Figures 2–3,
// an (a,b)-tree has variable arity and ragged subtree sizes, exercising the
// general depth-cut splitter and part normalization.
package dict

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Node payload layout: Data[0..maxSep-1] hold the separator keys (the
// minimum key of child j+1 sits in Data[j]), Data[sepCount] slot stores the
// number of children; leaves store their key in Data[0] and -1 children.
const (
	maxSep   = 6 // supports b ≤ 7 children
	dataNKid = 6 // number of children (0 for leaves)
	dataLeaf = 7 // 1 if leaf
)

// Query state layout.
const (
	stateNeedle = 0
	// StateFound is 1 if the needle is a member.
	StateFound = 1
	// StateLeafKey receives the key of the reached leaf (the member, or the
	// smallest key ≥ needle in its leaf neighbourhood).
	StateLeafKey = 2
	stateDigest  = 3
)

// BTree is an (a,b)-tree over distinct int64 keys, one key per leaf.
// Vertex IDs are assigned level by level from the root.
type BTree struct {
	G      *graph.Graph
	Root   graph.VertexID
	Height int
	Depth  []int32
	Keys   []int64 // sorted
	A, B   int
}

// New builds the (a,b)-tree bottom-up. Requires 2 ≤ a ≤ (b+1)/2 (so that
// merge-redistribution always lands in [a,b]) and b+1 ≤ graph.MaxDegree.
func New(keys []int64, a, b int) *BTree {
	if len(keys) == 0 {
		panic("dict: empty key set")
	}
	if a < 2 || a > (b+1)/2 || b > maxSep+1 {
		panic(fmt.Sprintf("dict: invalid (a,b) = (%d,%d)", a, b))
	}
	ks := append([]int64{}, keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1] {
			panic("dict: duplicate key")
		}
	}

	// Build levels bottom-up as (minKey, children...) groups.
	type node struct {
		min      int64
		key      int64 // leaves only
		children []int // indices into the previous level
		leaf     bool
	}
	var levels [][]node
	cur := make([]node, len(ks))
	for i, k := range ks {
		cur[i] = node{min: k, key: k, leaf: true}
	}
	levels = append(levels, cur)
	for len(cur) > 1 {
		var next []node
		i := 0
		n := len(cur)
		for i < n {
			take := b
			rem := n - i
			if rem < take {
				take = rem
			}
			// Keep the leftover group ≥ a by borrowing from this one.
			if rest := n - i - take; rest > 0 && rest < a {
				take -= a - rest
			}
			if take < a && len(next) == 0 && rem == n {
				// Entire level smaller than a: a single small root group.
				take = rem
			}
			kids := make([]int, take)
			for j := 0; j < take; j++ {
				kids[j] = i + j
			}
			next = append(next, node{min: cur[i].min, children: kids})
			i += take
		}
		levels = append(levels, next)
		cur = next
	}

	// Assemble the graph, root first (level-major IDs).
	height := len(levels) - 1
	total := 0
	for _, lv := range levels {
		total += len(lv)
	}
	g := graph.New(total, true)
	t := &BTree{G: g, Root: 0, Height: height, Depth: make([]int32, total), Keys: ks, A: a, B: b}
	// ID of node j at build-level l (build levels are bottom-up).
	idOf := make([][]graph.VertexID, len(levels))
	id := 0
	for l := height; l >= 0; l-- {
		idOf[l] = make([]graph.VertexID, len(levels[l]))
		for j := range levels[l] {
			idOf[l][j] = graph.VertexID(id)
			id++
		}
	}
	for l := height; l >= 0; l-- {
		depth := height - l
		for j, nd := range levels[l] {
			vid := idOf[l][j]
			v := &g.Verts[vid]
			v.Level = int32(depth)
			t.Depth[vid] = int32(depth)
			if nd.leaf {
				v.Data[0] = nd.key
				v.Data[dataNKid] = 0
				v.Data[dataLeaf] = 1
				continue
			}
			v.Data[dataNKid] = int64(len(nd.children))
			for c, ci := range nd.children {
				g.AddArc(vid, idOf[l-1][ci])
				if c > 0 {
					v.Data[c-1] = levels[l-1][ci].min
				}
			}
		}
	}
	return t
}

// Validate checks the (a,b)-tree invariants: arity bounds (except the
// root), separator ordering, and the search property (every key reachable
// by separator descent).
func (t *BTree) Validate() error {
	for i := range t.G.Verts {
		v := &t.G.Verts[i]
		if v.Data[dataLeaf] == 1 {
			continue
		}
		k := int(v.Data[dataNKid])
		if int(v.Deg) != k {
			return fmt.Errorf("dict: node %d arity %d ≠ recorded %d", i, v.Deg, k)
		}
		if graph.VertexID(i) != t.Root && (k < t.A || k > t.B) {
			return fmt.Errorf("dict: node %d arity %d outside [%d,%d]", i, k, t.A, t.B)
		}
		for c := 1; c < k-1; c++ {
			if v.Data[c-1] >= v.Data[c] {
				return fmt.Errorf("dict: node %d separators out of order", i)
			}
		}
	}
	for _, k := range t.Keys {
		if got := t.lookupHost(k); got != k {
			return fmt.Errorf("dict: key %d unreachable (descended to %d)", k, got)
		}
	}
	return nil
}

// lookupHost descends sequentially and returns the reached leaf's key.
func (t *BTree) lookupHost(needle int64) int64 {
	k, _, _ := t.HostLookup(needle)
	return k
}

// HostLookup descends the tree sequentially on the host and returns the
// reached leaf's key, whether the needle is a member, and the number of
// nodes visited on the way down. It is the degraded-mode analogue of one
// mesh query's answer (same leaf, same search-path length as a faithful
// round would report) — correct, but unaccounted in mesh steps — used by
// the serving layer when the mesh is unavailable (DESIGN.md §3.6).
func (t *BTree) HostLookup(needle int64) (leafKey int64, found bool, pathLen int32) {
	cur := t.Root
	for {
		v := &t.G.Verts[cur]
		pathLen++
		if v.Data[dataLeaf] == 1 {
			return v.Data[0], v.Data[0] == needle, pathLen
		}
		cur = v.Adj[childFor(v, needle)]
	}
}

// childFor picks the child slot by separator comparison.
func childFor(v *graph.Vertex, needle int64) int {
	k := int(v.Data[dataNKid])
	c := 0
	for c < k-1 && needle >= v.Data[c] {
		c++
	}
	return c
}

// Successor drives one batched lookup step.
func Successor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[stateDigest] = q.State[stateDigest]*1000003 + int64(v.ID) + 1
	if v.Data[dataLeaf] == 1 {
		q.State[StateLeafKey] = v.Data[0]
		if v.Data[0] == q.State[stateNeedle] {
			q.State[StateFound] = 1
		}
		return 0, true
	}
	return childFor(&v, q.State[stateNeedle]), false
}

// NewQueries builds membership queries for the needles.
func (t *BTree) NewQueries(needles []int64) []core.Query {
	qs := make([]core.Query, len(needles))
	for i, k := range needles {
		qs[i].Cur = t.Root
		qs[i].State[stateNeedle] = k
	}
	return qs
}

// InstallSplitter installs a normalized α-splitting (depth cut at half
// height) and returns the part-size bound for MultisearchAlpha.
func (t *BTree) InstallSplitter() int {
	cut := (t.Height + 1) / 2
	if cut < 1 {
		cut = 1
	}
	if cut > t.Height {
		cut = t.Height
	}
	s := graph.InstallDepthSplitter(t.G, t.Root, t.Depth, cut, graph.Primary)
	if s.K*s.MaxPart > 2*t.G.N() {
		s = graph.NormalizeParts(t.G, s, s.MaxPart, func(p int32) int {
			if p == 0 {
				return 0
			}
			return 1
		})
	}
	// Balance the other way: a huge top over tiny subtrees regroups the
	// subtrees toward the top's size (handled above); a tiny top is fine.
	return s.MaxPart
}

// Member reports whether a finished query found its needle.
func Member(q core.Query) bool { return q.State[StateFound] == 1 }

// Contains reports host-side whether key is in the dictionary, by binary
// search on the sorted key set — the O(log n) sequential oracle the serving
// layer and the load generator check mesh answers against.
func (t *BTree) Contains(key int64) bool {
	i := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] >= key })
	return i < len(t.Keys) && t.Keys[i] == key
}
