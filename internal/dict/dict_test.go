package dict_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/graph"
	"repro/internal/mesh"
)

func randomKeys(n int, span int64, rng *rand.Rand) []int64 {
	seen := map[int64]bool{}
	ks := make([]int64, 0, n)
	for len(ks) < n {
		k := rng.Int63n(span)
		if !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	return ks
}

func TestBTreeBuildAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, a, b int }{
		{1, 2, 3}, {2, 2, 3}, {7, 2, 3}, {100, 2, 3}, {1000, 2, 3},
		{500, 2, 4}, {500, 3, 7}, {777, 2, 5},
	} {
		keys := randomKeys(tc.n, 1<<30, rng)
		bt := dict.New(keys, tc.a, tc.b)
		if err := bt.Validate(); err != nil {
			t.Fatalf("n=%d (a,b)=(%d,%d): %v", tc.n, tc.a, tc.b, err)
		}
		if err := bt.G.Validate(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
	}
}

func TestBTreeRejectsBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { dict.New(nil, 2, 3) },
		func() { dict.New([]int64{1}, 1, 3) },
		func() { dict.New([]int64{1}, 3, 4) },  // a > (b+1)/2
		func() { dict.New([]int64{1}, 2, 99) }, // b too large for payload
		func() { dict.New([]int64{5, 5}, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLookupsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randomKeys(800, 10000, rng)
	bt := dict.New(keys, 2, 3)
	present := map[int64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	needles := make([]int64, 1500)
	for i := range needles {
		if i%2 == 0 {
			needles[i] = keys[rng.Intn(len(keys))]
		} else {
			needles[i] = rng.Int63n(10000)
		}
	}
	out := core.Oracle(bt.G, bt.NewQueries(needles), dict.Successor, 0)
	for i, q := range out {
		if dict.Member(q) != present[needles[i]] {
			t.Fatalf("needle %d: member=%v want %v", needles[i], dict.Member(q), present[needles[i]])
		}
	}
}

func TestBatchedLookupsOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randomKeys(1200, 1<<20, rng)
	bt := dict.New(keys, 2, 3)
	maxPart := bt.InstallSplitter()
	if err := graph.ValidateAlphaPartitionable(bt.G); err != nil {
		t.Fatal(err)
	}
	side := 4
	for side*side < bt.G.N() {
		side *= 2
	}
	needles := make([]int64, side*side/2)
	present := map[int64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	for i := range needles {
		if i%3 == 0 {
			needles[i] = keys[rng.Intn(len(keys))]
		} else {
			needles[i] = rng.Int63n(1 << 20)
		}
	}
	qs := bt.NewQueries(needles)
	want := core.Oracle(bt.G, qs, dict.Successor, 0)
	m := mesh.New(side)
	in := core.NewInstance(m, bt.G, qs, dict.Successor)
	core.MultisearchAlpha(m.Root(), in, maxPart, 0)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	for i, q := range in.ResultQueries() {
		if dict.Member(q) != present[needles[i]] {
			t.Fatalf("mesh needle %d wrong membership", i)
		}
	}
}

func TestBTreeHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{10, 100, 1000, 10000} {
		bt := dict.New(randomKeys(n, 1<<40, rng), 2, 3)
		// height ≤ log₂ n + 1 for a 2-3 tree.
		bound := 1
		for x := n; x > 1; x /= 2 {
			bound++
		}
		if bt.Height > bound {
			t.Fatalf("n=%d: height %d > %d", n, bt.Height, bound)
		}
	}
}

// Property: every inserted key is a member, arbitrary (valid) key sets.
func TestQuickBTreeMembership(t *testing.T) {
	f := func(raw []int16, abSel uint8) bool {
		seen := map[int64]bool{}
		var keys []int64
		for _, r := range raw {
			k := int64(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return true
		}
		ab := [][2]int{{2, 3}, {2, 4}, {3, 7}}[int(abSel)%3]
		bt := dict.New(keys, ab[0], ab[1])
		if bt.Validate() != nil {
			return false
		}
		out := core.Oracle(bt.G, bt.NewQueries(keys), dict.Successor, 0)
		for _, q := range out {
			if !dict.Member(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthSplitterOnIrregularTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bt := dict.New(randomKeys(700, 1<<30, rng), 2, 3)
	s := graph.InstallDepthSplitter(bt.G, bt.Root, bt.Depth, (bt.Height+1)/2, graph.Primary)
	total := 0
	for _, sz := range s.Sizes {
		total += sz
	}
	if total != bt.G.N() {
		t.Fatalf("splitter covers %d of %d", total, bt.G.N())
	}
	if err := graph.ValidateAlphaPartitionable(bt.G); err != nil {
		t.Fatal(err)
	}
}
