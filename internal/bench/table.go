// Package bench is the experiment harness: one runnable experiment per
// theorem/figure of the paper (the per-experiment index lives in
// DESIGN.md §4, results in EXPERIMENTS.md). cmd/meshbench drives it.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/mesh"
)

// Table is one experiment's output: a titled, aligned text table.
type Table struct {
	ID     string
	Title  string
	Source string // theorem / figure / section reference
	Note   string
	Header []string
	Rows   [][]string

	// Profiles holds optional per-operation step breakdowns, one per
	// labelled mesh run (meshbench -profile).
	Profiles []ProfileEntry
}

// ProfileEntry is one labelled per-operation breakdown.
type ProfileEntry struct {
	Label string
	P     mesh.Profile
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddProfile attaches a labelled per-operation breakdown.
func (t *Table) AddProfile(label string, p mesh.Profile) {
	t.Profiles = append(t.Profiles, ProfileEntry{Label: label, P: p})
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s  [%s]\n", t.ID, t.Title, t.Source)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, pe := range t.Profiles {
		pe.print(w)
	}
}

// print renders one per-operation breakdown via the shared
// mesh.Profile.String rendering (also used by the phase tables and
// BudgetExceededError).
func (pe ProfileEntry) print(w io.Writer) {
	fmt.Fprintf(w, "  profile %s (total %d steps, %d ops on the critical path):\n",
		pe.Label, pe.P.TotalSteps(), pe.P.TotalOps())
	for _, line := range strings.Split(strings.TrimRight(pe.P.String(), "\n"), "\n") {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

// CSV renders the table as RFC-4180 CSV with a leading comment line naming
// the experiment, for downstream plotting. Attached profiles follow as real
// CSV records of the form profile,<label>,<class>,<steps>,<ops>.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s [%s]\n", t.ID, t.Title, t.Source)
	cw := csv.NewWriter(w)
	_ = cw.Write(t.Header)
	for _, r := range t.Rows {
		_ = cw.Write(r)
	}
	for _, pe := range t.Profiles {
		for c := mesh.OpClass(0); c < mesh.NumOpClasses; c++ {
			s := pe.P.Ops[c]
			if s.Count == 0 && s.Steps == 0 {
				continue
			}
			_ = cw.Write([]string{"profile", pe.Label, c.String(),
				fmt.Sprintf("%d", s.Steps), fmt.Sprintf("%d", s.Count)})
		}
	}
	cw.Flush()
}

// Numeric formatting helpers.

func fi(v int64) string { return fmt.Sprintf("%d", v) }

func ff(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// perSqrtN returns steps normalized by √n.
func perSqrtN(steps int64, n int) float64 {
	return float64(steps) / math.Sqrt(float64(n))
}

// perSqrtNLogN returns steps normalized by √n·log₂n.
func perSqrtNLogN(steps int64, n int) float64 {
	return float64(steps) / (math.Sqrt(float64(n)) * math.Log2(float64(n)))
}
