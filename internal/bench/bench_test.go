package bench

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1, Model: mesh.CostCounted} }

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(quickCfg())
			if tab.ID != e.ID {
				t.Fatalf("table ID %q for experiment %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(r), len(tab.Header))
				}
			}
		})
	}
}

func TestFindExperiments(t *testing.T) {
	if Find("E1") == nil || Find("E14") == nil {
		t.Fatal("known experiments not found")
	}
	if Find("E99") != nil {
		t.Fatal("unknown experiment found")
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Source: "test", Note: "line1\nline2",
		Header: []string{"a", "bb"},
	}
	tab.Add("1", "2")
	tab.Add("333", "4")
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	for _, want := range []string{"EX — demo", "line1", "line2", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Source: "test", Header: []string{"a", "b"}}
	tab.Add("1", "2,3") // comma needs quoting
	var sb strings.Builder
	tab.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "# EX — demo [test]") || !strings.Contains(out, "a,b") ||
		!strings.Contains(out, `1,"2,3"`) {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if fi(42) != "42" {
		t.Fatal("fi")
	}
	if ff(0) != "0" || ff(123.4) != "123" || ff(1.234) != "1.23" || ff(0.1234) != "0.1234" {
		t.Fatalf("ff: %s %s %s", ff(123.4), ff(1.234), ff(0.1234))
	}
	if perSqrtN(100, 4) != 50 {
		t.Fatal("perSqrtN")
	}
	if got := perSqrtNLogN(100, 4); got != 25 {
		t.Fatalf("perSqrtNLogN=%g", got)
	}
}

func TestHeightForSide(t *testing.T) {
	for _, side := range []int{16, 32, 64, 128} {
		h := heightForSide(side)
		if (1<<(h+1))-1 > side*side {
			t.Fatalf("side %d: tree of height %d too big", side, h)
		}
		if (1<<(h+2))-1 <= side*side {
			t.Fatalf("side %d: height %d not maximal", side, h)
		}
	}
}
