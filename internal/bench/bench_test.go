package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/trace"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1, Model: mesh.CostCounted} }

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := SafeRun(&e, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != e.ID {
				t.Fatalf("table ID %q for experiment %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(r), len(tab.Header))
				}
			}
		})
	}
}

func TestSafeRunBudgetYieldsPartialTable(t *testing.T) {
	// A budget far below one E2 measurement aborts the experiment, but
	// SafeRun must return an attributable (if row-less) table and a typed
	// error instead of panicking.
	cfg := quickCfg()
	cfg.Budget = 50
	tab, err := SafeRun(Find("E2"), cfg)
	if err == nil {
		t.Fatal("budget of 50 steps should abort E2")
	}
	var be *mesh.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want wrapped *mesh.BudgetExceededError", err)
	}
	if tab == nil || tab.ID != "E2" {
		t.Fatalf("partial table %+v", tab)
	}
}

func TestSafeRunCancellationYieldsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickCfg()
	cfg.Ctx = ctx
	_, err := SafeRun(Find("E1"), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in chain", err)
	}
}

func TestAuditedTablesAreByteIdentical(t *testing.T) {
	// Audit mode observes only: the rendered table (steps, ratios,
	// profiles) of an audited run must match the plain run byte for byte.
	if testing.Short() {
		t.Skip("audit comparison skipped in -short mode")
	}
	render := func(cfg Config) string {
		cfg.Profile = true
		tab, err := SafeRun(Find("E2"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tab.Print(&sb)
		tab.CSV(&sb)
		return sb.String()
	}
	plain := render(quickCfg())
	audited := quickCfg()
	audited.Audit = true
	if got := render(audited); got != plain {
		t.Fatalf("audited table differs from plain table:\n--- plain ---\n%s\n--- audited ---\n%s", plain, got)
	}
}

func TestTracedTablesAreByteIdentical(t *testing.T) {
	// Like audit mode, tracing observes only: the rendered table of a traced
	// run must match the plain run byte for byte, and every traced run's
	// phase rows must partition its step clock (the DESIGN.md §3.4
	// invariant, bench-level form).
	if testing.Short() {
		t.Skip("trace comparison skipped in -short mode")
	}
	render := func(cfg Config) string {
		cfg.Profile = true
		tab, err := SafeRun(Find("E2"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tab.Print(&sb)
		tab.CSV(&sb)
		return sb.String()
	}
	plain := render(quickCfg())
	traced := quickCfg()
	traced.Tracer = trace.New()
	if got := render(traced); got != plain {
		t.Fatalf("traced table differs from plain table:\n--- plain ---\n%s\n--- traced ---\n%s", plain, got)
	}
	runs := traced.Tracer.Runs()
	if len(runs) == 0 {
		t.Fatal("no traced runs collected")
	}
	for _, r := range runs {
		if !strings.HasPrefix(r.Label, "E2 ") {
			t.Fatalf("run label %q missing experiment prefix", r.Label)
		}
		var self int64
		for _, row := range trace.PhaseRows(r) {
			self += row.Self
		}
		if self != r.End {
			t.Fatalf("run %s: phase self sum %d != run total %d", r.Label, self, r.End)
		}
	}
}

func TestFindExperiments(t *testing.T) {
	if Find("E1") == nil || Find("E14") == nil {
		t.Fatal("known experiments not found")
	}
	if Find("E99") != nil {
		t.Fatal("unknown experiment found")
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Source: "test", Note: "line1\nline2",
		Header: []string{"a", "bb"},
	}
	tab.Add("1", "2")
	tab.Add("333", "4")
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	for _, want := range []string{"EX — demo", "line1", "line2", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Source: "test", Header: []string{"a", "b"}}
	tab.Add("1", "2,3") // comma needs quoting
	var sb strings.Builder
	tab.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "# EX — demo [test]") || !strings.Contains(out, "a,b") ||
		!strings.Contains(out, `1,"2,3"`) {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if fi(42) != "42" {
		t.Fatal("fi")
	}
	if ff(0) != "0" || ff(123.4) != "123" || ff(1.234) != "1.23" || ff(0.1234) != "0.1234" {
		t.Fatalf("ff: %s %s %s", ff(123.4), ff(1.234), ff(0.1234))
	}
	if perSqrtN(100, 4) != 50 {
		t.Fatal("perSqrtN")
	}
	if got := perSqrtNLogN(100, 4); got != 25 {
		t.Fatalf("perSqrtNLogN=%g", got)
	}
}

func TestHeightForSide(t *testing.T) {
	for _, side := range []int{16, 32, 64, 128} {
		h := heightForSide(side)
		if (1<<(h+1))-1 > side*side {
			t.Fatalf("side %d: tree of height %d too big", side, h)
		}
		if (1<<(h+2))-1 <= side*side {
			t.Fatalf("side %d: height %d not maximal", side, h)
		}
	}
}
