package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	Quick    bool
	Seed     int64
	Model    mesh.CostModel
	Progress io.Writer
	// Profile attaches per-operation step breakdowns (Mesh.Profile) to the
	// tables of the experiments that expose their meshes (E1–E5).
	Profile bool

	// Run control and chaos options, applied to every mesh an experiment
	// builds (via newMesh). Zero values cost nothing on the hot path.
	Ctx      context.Context // cancellation/deadline; nil = not cancellable
	Budget   int64           // per-mesh step budget; 0 = unlimited
	Injector mesh.Injector   // fault injection; nil = none
	Audit    bool            // verify op invariants as the run executes

	// Tracer collects phase-attributed span trees from every mesh the
	// experiment builds (meshbench -trace / -phase-table / -metrics);
	// nil = tracing off (one pointer check per span site).
	Tracer *trace.Tracer
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed + 1)) }

func (c Config) log(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// profile records the mesh's per-operation breakdown on the table when
// profiling is enabled. Call it right after reading m.Steps(), before the
// mesh is discarded.
func (c Config) profile(t *Table, label string, m *mesh.Mesh) {
	if !c.Profile {
		return
	}
	t.AddProfile(label, m.Profile())
}

// newMesh builds a mesh under the Config's cost model with its run-control
// and chaos options applied. Every experiment constructs its meshes through
// here, so a budget, context, injector or audit flag set on the Config
// governs the whole run.
func (c Config) newMesh(side int) *mesh.Mesh { return c.newMeshModel(side, c.Model) }

// newMeshModel is newMesh with an explicit cost model (for ablations that
// sweep models, e.g. E13).
func (c Config) newMeshModel(side int, model mesh.CostModel) *mesh.Mesh {
	opts := []mesh.Option{mesh.WithCostModel(model)}
	if c.Budget > 0 {
		opts = append(opts, mesh.WithBudget(c.Budget))
	}
	if c.Ctx != nil {
		opts = append(opts, mesh.WithContext(c.Ctx))
	}
	if c.Injector != nil {
		opts = append(opts, mesh.WithInjector(c.Injector))
	}
	if c.Audit {
		opts = append(opts, mesh.WithAudit())
	}
	if c.Tracer != nil {
		opts = append(opts, mesh.WithTracer(c.Tracer))
	}
	return mesh.New(side, opts...)
}

// Experiment is one reproducible experiment. Run fills the caller-owned
// table: metadata first, then one row per completed measurement, so rows
// finished before an abort (budget overrun, cancellation, fault detection)
// survive and can still be printed. Run may panic with the mesh layer's
// typed faults; execute it through SafeRun to get errors instead.
type Experiment struct {
	ID     string
	Title  string
	Source string
	Run    func(Config, *Table)
}

// All lists the experiments in DESIGN.md §4 order.
var All = []Experiment{
	{"E1", "Constrained multisearch scaling", "Lemma 3", runE1},
	{"E2", "Hierarchical-DAG multisearch scaling", "Theorem 2", runE2},
	{"E3", "α-partitionable multisearch: r sweep", "Theorem 5", runE3},
	{"E4", "α-β-partitionable multisearch: r sweep", "Theorem 7", runE4},
	{"E5", "Multisearch vs synchronous multistep baseline", "§1 / [DR90]", runE5},
	{"E6", "Directed tree α-splitter census", "Figure 2 / §4.2", runE6},
	{"E7", "Undirected tree α-β-splitter census", "Figure 3 / §4.3", runE7},
	{"E8", "B_i level-decomposition census", "Figures 1,4,5 / §3", runE8},
	{"E9", "Multiple interval intersection", "§6", runE9},
	{"E10", "Batched planar point location", "§5 / [Kir83]", runE10},
	{"E11", "Multiple tangent-plane queries (DK hierarchy)", "Theorem 8.1", runE11},
	{"E12", "Convex polyhedra separation", "Theorem 8.2", runE12},
	{"E13", "Cost-model ablation (shearsort vs optimal sort)", "DESIGN §1 substitution 2", runE13},
	{"E14", "Constrained-multisearch copy volume", "Lemma 3 item (1)", runE14},
	{"E15", "Batched (2,3)-tree dictionary lookups", "§1 [PVS83] / §6", runE15},
	{"E16", "Mesh-side level-index computation", "§3 (level indices remark)", runE16},
	{"E17", "Algorithm 1 recursion-depth ablation", "§3 design choice", runE17},
	{"E18", "Mesh multisearch vs hypercube [DR90] strategy", "§1 / [DR90]", runE18},
	{"E19", "Batched 2-D tangent determination", "Theorem 8 (planar analogue)", runE19},
}

// Find returns the experiment with the given ID, or nil.
func Find(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

func sides(c Config, quick, full []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// --- E1: Lemma 3 ---------------------------------------------------------

func runE1(c Config, t *Table) {
	*t = Table{
		ID: "E1", Title: "Constrained multisearch, one call, n queries on a balanced tree",
		Source: "Lemma 3",
		Note: "Claim: O(√n) mesh steps per call. steps/√n should grow only with the\n" +
			"shearsort log factor; steps/(√n·lg n) should be ~flat (DESIGN §1 sub. 2).",
		Header: []string{"n", "side", "marked", "ΣΓ", "copyVol/n", "steps", "steps/√n", "steps/(√n·lg n)"},
	}
	for _, side := range sides(c, []int{16, 32, 64}, []int{16, 32, 64, 128, 256, 512}) {
		height := heightForSide(side)
		tr := graph.NewBalancedTree(2, height, true)
		s := graph.InstallTreeSplitter(tr, (height+1)/2, graph.Primary)
		m := c.newMesh(side)
		n := m.N()
		qs := workload.KeySearchQueries(n, int64(tr.SubtreeSize(0)), tr.Root(), 2, c.rng())
		in := core.NewInstance(m, tr.Graph, qs, workload.KeySearchSuccessor)
		in.Prime(m.Root())
		in.GlobalStep(m.Root())
		m.ResetSteps()
		st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
		steps := m.Steps()
		t.Add(fi(int64(n)), fi(int64(side)), fi(int64(st.Marked)), fi(int64(st.TotalGamma)),
			ff(float64(st.CopyVolume)/float64(n)), fi(steps),
			ff(perSqrtN(steps, n)), ff(perSqrtNLogN(steps, n)))
		c.profile(t, fmt.Sprintf("side=%d", side), m)
		c.log("E1 side=%d done", side)
	}
}

// heightForSide returns the largest complete-binary-tree height fitting a
// side×side mesh.
func heightForSide(side int) int {
	n := side * side
	h := 0
	for (1<<(h+2))-1 <= n {
		h++
	}
	return h
}

// --- E2: Theorem 2 -------------------------------------------------------

func runE2(c Config, t *Table) {
	*t = Table{
		ID: "E2", Title: "Algorithm 1 on complete binary hierarchical DAGs, n queries",
		Source: "Theorem 2",
		Note: "Claim: O(√n) total. S = number of B-blocks (log*-recursion engages at\n" +
			"h ≥ 16, i.e. side ≥ 512 for μ=2). B* levels stay O(1).",
		Header: []string{"n", "side", "h", "S", "B* levels", "steps", "steps/√n", "steps/(√n·lg n)"},
	}
	for _, side := range sides(c, []int{16, 32, 64}, []int{16, 32, 64, 128, 256, 512}) {
		d := graph.CompleteTreeHDag(2, heightForSide(side))
		m := c.newMesh(side)
		plan, err := core.PlanHDag(d, side)
		if err != nil {
			panic(err)
		}
		qs := workload.KeySearchQueries(m.N(), 1<<d.Height(), d.Root(), 2, c.rng())
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		m.ResetSteps()
		st := core.MultisearchHDag(m.Root(), in, plan)
		steps := m.Steps()
		n := m.N()
		t.Add(fi(int64(n)), fi(int64(side)), fi(int64(d.Height())), fi(int64(plan.S)),
			fi(int64(st.StarLevels)), fi(steps),
			ff(perSqrtN(steps, n)), ff(perSqrtNLogN(steps, n)))
		c.profile(t, fmt.Sprintf("side=%d", side), m)
		c.log("E2 side=%d done", side)
	}
}

// --- E3: Theorem 5 -------------------------------------------------------

func runE3(c Config, t *Table) {
	side := 128
	if c.Quick {
		side = 32
	}
	m0 := side * side
	*t = Table{
		ID: "E3", Title: fmt.Sprintf("Algorithm 2 on %d directed cycles (n=%d), sweep walk length r", side, m0),
		Source: "Theorem 5",
		Note: "Claim: O(√n + r·√n/log n). steps/(r·√n/lg n) should approach a\n" +
			"constant as r grows; log-phases ≈ r/(2·lg n).",
		Header: []string{"r", "r/lg n", "log-phases", "steps", "steps/√n", "steps/(r·√n/lg n)"},
	}
	cycleLen := side // components of size n^(1/2)
	g := workload.CycleGraph(m0/cycleLen, cycleLen)
	lg := math.Log2(float64(m0))
	for _, mult := range sides(c, []int{1, 2, 4}, []int{1, 2, 4, 8, 16, 32}) {
		r := mult * int(lg)
		m := c.newMesh(side)
		qs := workload.WalkQueries(m0, r, g.N(), c.rng())
		in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
		m.ResetSteps()
		st := core.MultisearchAlpha(m.Root(), in, cycleLen, 0)
		steps := m.Steps()
		rTerm := float64(r) * math.Sqrt(float64(m0)) / lg
		t.Add(fi(int64(r)), ff(float64(r)/lg), fi(int64(st.LogPhases)), fi(steps),
			ff(perSqrtN(steps, m0)), ff(float64(steps)/rTerm))
		c.profile(t, fmt.Sprintf("r=%d", r), m)
		c.log("E3 r=%d done", r)
	}
}

// --- E4: Theorem 7 -------------------------------------------------------

func runE4(c Config, t *Table) {
	side := 128
	height := 13
	if c.Quick {
		side, height = 32, 9
	}
	tr := graph.NewBalancedTree(2, height, false)
	s1 := graph.InstallTreeSplitter(tr, height/3, graph.Primary)
	s2 := graph.InstallTreeSplitter(tr, 2*height/3, graph.Secondary)
	dist := graph.SplitterDistance(tr.Graph)
	n := side * side
	*t = Table{
		ID: "E4", Title: fmt.Sprintf("Algorithm 3 on an undirected tree (h=%d), bouncing walks, sweep r", height),
		Source: "Theorem 7",
		Note:   fmt.Sprintf("Splitter distance %d = Ω(log n). Claim: O(√n + r·√n/log n).", dist),
		Header: []string{"bounces", "r", "log-phases", "steps", "steps/√n", "steps/(r·√n/lg n)"},
	}
	lg := math.Log2(float64(n))
	for _, bounces := range sides(c, []int{1, 2, 4}, []int{1, 2, 4, 8, 16}) {
		r := bounces*2*height + 1
		m := c.newMesh(side)
		qs := workload.BounceQueries(n, bounces, int64(tr.SubtreeSize(0)), tr.Root(), c.rng())
		in := core.NewInstance(m, tr.Graph, qs, workload.BounceSuccessor(2))
		m.ResetSteps()
		st := core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 0)
		steps := m.Steps()
		rTerm := float64(r) * math.Sqrt(float64(n)) / lg
		t.Add(fi(int64(bounces)), fi(int64(r)), fi(int64(st.LogPhases)), fi(steps),
			ff(perSqrtN(steps, n)), ff(float64(steps)/rTerm))
		c.profile(t, fmt.Sprintf("bounces=%d", bounces), m)
		c.log("E4 bounces=%d done", bounces)
	}
}

// --- E5: vs synchronous baseline ----------------------------------------

func runE5(c Config, t *Table) {
	*t = Table{
		ID: "E5", Title: "Algorithm 2 vs synchronous multistep ([DR90] strategy), r = 8·lg n",
		Source: "§1 / [DR90]",
		Note: "The baseline pays one full-mesh RAR per search step: Θ(r·√n).\n" +
			"Multisearch amortizes log n steps per O(√n) phase, so the speedup\n" +
			"grows as Θ(log n) with the mesh size (the r-dependence is E3).",
		Header: []string{"n", "side", "r", "multisearch steps", "baseline steps", "speedup", "lg n"},
	}
	for _, side := range sides(c, []int{16, 32}, []int{16, 32, 64, 128, 256}) {
		n := side * side
		cycleLen := side
		g := workload.CycleGraph(n/cycleLen, cycleLen)
		lg := math.Log2(float64(n))
		r := 8 * int(lg)
		qs := workload.WalkQueries(n, r, g.N(), c.rng())

		m1 := c.newMesh(side)
		in1 := core.NewInstance(m1, g, qs, workload.WalkSuccessor)
		core.MultisearchAlpha(m1.Root(), in1, cycleLen, 0)

		m2 := c.newMesh(side)
		in2 := core.NewInstance(m2, g, qs, workload.WalkSuccessor)
		core.SynchronousMultisearch(m2.Root(), in2, 0)

		if err := core.SameOutcome(in1.ResultQueries(), in2.ResultQueries()); err != nil {
			panic(err)
		}
		t.Add(fi(int64(n)), fi(int64(side)), fi(int64(r)), fi(m1.Steps()), fi(m2.Steps()),
			ff(float64(m2.Steps())/float64(m1.Steps())), ff(lg))
		c.profile(t, fmt.Sprintf("side=%d multisearch", side), m1)
		c.profile(t, fmt.Sprintf("side=%d synchronous", side), m2)
		c.log("E5 side=%d done", side)
	}
}

// --- E6 / E7: splitter censuses ------------------------------------------

func runE6(c Config, t *Table) {
	*t = Table{
		ID: "E6", Title: "α-splitter of directed balanced binary trees (cut at h/2)",
		Source: "Figure 2 / §4.2",
		Note:   "Claim: components O(n^α), count O(n^(1-α)), α = 1/2; H/T property holds.",
		Header: []string{"n", "h", "parts", "max part", "α (measured)", "H→T valid"},
	}
	for _, h := range sides(c, []int{8, 10, 12}, []int{8, 10, 12, 14, 16, 18}) {
		tr := graph.NewBalancedTree(2, h, true)
		s := graph.InstallTreeSplitter(tr, (h+1)/2, graph.Primary)
		valid := "yes"
		if err := graph.ValidateAlphaPartitionable(tr.Graph); err != nil {
			valid = "NO: " + err.Error()
		}
		t.Add(fi(int64(tr.N())), fi(int64(h)), fi(int64(s.K)), fi(int64(s.MaxPart)), ff(s.Delta), valid)
	}
}

func runE7(c Config, t *Table) {
	*t = Table{
		ID: "E7", Title: "α- and β-splitters of undirected balanced binary trees",
		Source: "Figure 3 / §4.3",
		Note:   "Claim: both splittings have O(n^δ) parts and border distance Ω(log n).",
		Header: []string{"n", "h", "α parts", "α max", "β parts", "β max", "distance", "lg n"},
	}
	for _, h := range sides(c, []int{9, 12}, []int{9, 12, 15, 18}) {
		tr := graph.NewBalancedTree(2, h, false)
		s1 := graph.InstallTreeSplitter(tr, h/3, graph.Primary)
		s2 := graph.InstallTreeSplitter(tr, 2*h/3, graph.Secondary)
		d := graph.SplitterDistance(tr.Graph)
		t.Add(fi(int64(tr.N())), fi(int64(h)), fi(int64(s1.K)), fi(int64(s1.MaxPart)),
			fi(int64(s2.K)), fi(int64(s2.MaxPart)), fi(int64(d)), ff(math.Log2(float64(tr.N()))))
	}
}

// --- E8: B_i census ------------------------------------------------------

func runE8(c Config, t *Table) {
	*t = Table{
		ID: "E8", Title: "B_i decomposition of complete binary hierarchical DAGs",
		Source: "Figures 1, 4, 5 / §3",
		Note: "Claims: |B_i| = O(n/(log^(i)h)²), Δh_i = O(log^(i)h), Σ√|B_i| = O(√n),\n" +
			"B* has O(1) levels. Blocks appear once log₂h ≥ c = 4 (h ≥ 16).",
		Header: []string{"h", "n", "S", "i", "levels [lo,hi]", "|B_i|", "Δh_i", "grid", "√|B_i|/√n"},
	}
	for _, h := range sides(c, []int{10, 17}, []int{10, 14, 17, 19}) {
		d := graph.CompleteTreeHDag(2, h)
		side := 4
		for side*side < d.N() {
			side *= 2
		}
		plan, err := core.PlanHDag(d, side)
		if err != nil {
			panic(err)
		}
		n := d.N()
		if plan.S == 0 {
			t.Add(fi(int64(h)), fi(int64(n)), "0", "—",
				fmt.Sprintf("B*=[%d,%d]", plan.StarLo, plan.H), fi(int64(n)), fi(int64(plan.H+1)), "1", "1")
			continue
		}
		for i, blk := range plan.Blocks {
			t.Add(fi(int64(h)), fi(int64(n)), fi(int64(plan.S)), fi(int64(i)),
				fmt.Sprintf("[%d,%d]", blk.Lo, blk.Hi), fi(int64(blk.Count)),
				fi(int64(blk.Hi-blk.Lo+1)), fi(int64(blk.Grid)),
				ff(math.Sqrt(float64(blk.Count))/math.Sqrt(float64(n))))
		}
		t.Add(fi(int64(h)), fi(int64(n)), fi(int64(plan.S)), "B*",
			fmt.Sprintf("[%d,%d]", plan.StarLo, plan.H),
			fi(int64(countLevels(d, plan.StarLo, plan.H))), fi(int64(plan.H-plan.StarLo+1)), "—", "—")
	}
}

func countLevels(d *graph.HDag, lo, hi int) int {
	c := 0
	for l := lo; l <= hi; l++ {
		c += d.LevelSizes[l]
	}
	return c
}
