package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/polygon"
)

// --- E19: planar DK hierarchy tangents --------------------------------------

func runE19(c Config, t *Table) {
	*t = Table{
		ID: "E19", Title: "Batched 2-D tangent determination (planar DK hierarchy, μ=2 exactly)",
		Source: "Theorem 8 (planar analogue)",
		Note: "Alternate-vertex removal gives the cleanest hierarchical DAG of the\n" +
			"paper's class (Figure 1, μ=2). n/2 external points, one tangent each,\n" +
			"every answer certified by the exact all-vertices-one-side test.",
		Header: []string{"poly verts", "DAG nodes", "levels", "n(mesh)", "steps", "steps/√n", "steps/(√n·lg n)"},
	}
	rng := c.rng()
	for _, nv := range sides(c, []int{128, 512}, []int{128, 512, 2048, 8192, 32768}) {
		pts := convexCircle(nv, 1<<26, rng)
		h, err := polygon.Build(pts)
		if err != nil {
			panic(err)
		}
		side := 4
		for side*side < h.Dag.N() {
			side *= 2
		}
		m := c.newMesh(side)
		plan, err := core.PlanHDag(h.Dag, side)
		if err != nil {
			panic(err)
		}
		queries := make([]geom.Point2, side*side/2)
		for i := range queries {
			a := 2 * math.Pi * rng.Float64()
			r := float64(int64(1)<<26) * (2 + 2*rng.Float64())
			queries[i] = geom.Point2{X: int64(r * math.Cos(a)), Y: int64(r * math.Sin(a))}
		}
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(queries, +1), h.Successor())
		m.ResetSteps()
		core.MultisearchHDag(m.Root(), in, plan)
		for i, q := range in.ResultQueries() {
			if i%127 == 0 && !h.IsTangent(queries[i], polygon.Answer(q)) {
				panic(fmt.Sprintf("E19: query %d answer not tangent", i))
			}
		}
		n := m.N()
		t.Add(fi(int64(len(pts))), fi(int64(h.Dag.N())), fi(int64(h.Levels)), fi(int64(n)),
			fi(m.Steps()), ff(perSqrtN(m.Steps(), n)), ff(perSqrtNLogN(m.Steps(), n)))
		c.log("E19 verts=%d done", nv)
	}
}

// convexCircle places n angle-jittered integer points on a circle (all in
// convex position at this radius).
func convexCircle(n int, radius int64, rng *rand.Rand) []geom.Point2 {
	var raw []geom.Point2
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * (float64(i) + 0.2 + 0.6*rng.Float64()) / float64(n)
		raw = append(raw, geom.Point2{
			X: int64(float64(radius) * math.Cos(a)),
			Y: int64(float64(radius) * math.Sin(a)),
		})
	}
	hull := geom.ConvexHull2D(raw)
	pts := make([]geom.Point2, len(hull))
	for i, id := range hull {
		pts[i] = raw[id]
	}
	return pts
}
