package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/workload"
)

// --- E18: cross-architecture comparison with [DR90] ------------------------

func runE18(c Config, t *Table) {
	*t = Table{
		ID: "E18", Title: "Mesh multisearch vs the [DR90] hypercube strategy, r = 8·lg n",
		Source: "§1 / [DR90]",
		Note: "Each machine charged in its own steps (one word per link per step).\n" +
			"The hypercube's synchronous multistep costs Θ(r·log²n) (bitonic) or\n" +
			"Θ(r·log n) (flashsort model); the mesh pays Θ(√n) wires-length\n" +
			"penalties but amortizes log n advancement per phase. The paper's\n" +
			"point (§1): the hypercube approach ported to the mesh is not viable —\n" +
			"column mesh-sync/mesh-ms shows what multisearch recovers.",
		Header: []string{"n", "r", "mesh-ms", "mesh-sync", "cube-bitonic", "cube-flash", "mesh-sync/mesh-ms"},
	}
	for _, side := range sides(c, []int{16, 32}, []int{16, 32, 64, 128, 256}) {
		n := side * side
		g := workload.CycleGraph(n/side, side)
		r := 8 * int(math.Log2(float64(n)))
		qs := workload.WalkQueries(n, r, g.N(), c.rng())

		m1 := c.newMesh(side)
		in1 := core.NewInstance(m1, g, qs, workload.WalkSuccessor)
		core.MultisearchAlpha(m1.Root(), in1, side, 0)

		m2 := c.newMesh(side)
		in2 := core.NewInstance(m2, g, qs, workload.WalkSuccessor)
		core.SynchronousMultisearch(m2.Root(), in2, 0)

		cb := hypercube.New(n, hypercube.CostCounted)
		in3 := hypercube.NewInstance(cb, g, qs, workload.WalkSuccessor)
		hypercube.SynchronousMultisearch(in3, 0)

		cf := hypercube.New(n, hypercube.CostTheoretical)
		in4 := hypercube.NewInstance(cf, g, qs, workload.WalkSuccessor)
		hypercube.SynchronousMultisearch(in4, 0)

		if err := core.SameOutcome(in1.ResultQueries(), in3.ResultQueries()); err != nil {
			panic("E18: mesh and hypercube disagree: " + err.Error())
		}
		t.Add(fi(int64(n)), fi(int64(r)), fi(m1.Steps()), fi(m2.Steps()),
			fi(cb.Steps()), fi(cf.Steps()),
			ff(float64(m2.Steps())/float64(m1.Steps())))
		c.log("E18 side=%d done", side)
	}
}
