package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- E15: (a,b)-tree dictionary ------------------------------------------

func runE15(c Config, t *Table) {
	*t = Table{
		ID: "E15", Title: "Batched membership lookups on a (2,3)-tree dictionary",
		Source: "§1 [PVS83] / §6",
		Note: "The mesh analogue of the Paul–Vishkin–Wagener parallel dictionary:\n" +
			"n/2 lookups per batch via Algorithm 2 on an irregular-arity tree\n" +
			"(general depth splitter + normalization). Verified against a map.",
		Header: []string{"keys", "tree nodes", "n(mesh)", "lookups", "steps", "steps/√n", "steps/(√n·lg n)"},
	}
	rng := c.rng()
	for _, nk := range sides(c, []int{100, 400}, []int{100, 400, 1600, 6400, 25600}) {
		seen := map[int64]bool{}
		keys := make([]int64, 0, nk)
		for len(keys) < nk {
			k := rng.Int63n(1 << 40)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		bt := dict.New(keys, 2, 3)
		maxPart := bt.InstallSplitter()
		side := 4
		for side*side < bt.G.N() {
			side *= 2
		}
		m := c.newMesh(side)
		needles := make([]int64, side*side/2)
		for i := range needles {
			if i%2 == 0 {
				needles[i] = keys[rng.Intn(len(keys))]
			} else {
				needles[i] = rng.Int63n(1 << 40)
			}
		}
		in := core.NewInstance(m, bt.G, bt.NewQueries(needles), dict.Successor)
		m.ResetSteps()
		end := trace.Span(m.Root(), "dict/lookup-batch[%d]", len(needles))
		core.MultisearchAlpha(m.Root(), in, maxPart, 0)
		end()
		for i, q := range in.ResultQueries() {
			if i%97 == 0 && dict.Member(q) != seen[needles[i]] {
				panic(fmt.Sprintf("E15: needle %d wrong membership", i))
			}
		}
		n := m.N()
		t.Add(fi(int64(nk)), fi(int64(bt.G.N())), fi(int64(n)), fi(int64(len(needles))),
			fi(m.Steps()), ff(perSqrtN(m.Steps(), n)), ff(perSqrtNLogN(m.Steps(), n)))
		c.log("E15 keys=%d done", nk)
	}
}

// --- E17: recursion-depth ablation -----------------------------------------

func runE17(c Config, t *Table) {
	*t = Table{
		ID: "E17", Title: "Algorithm 1 recursion-depth ablation (manual B-block plans)",
		Source: "§3 design choice",
		Note: "The same DAG and queries solved with S = 0 (pure level-by-level),\n" +
			"the automatic plan, and manually deepened recursions. Identical\n" +
			"results asserted; only the step counts differ. Automatic plans never\n" +
			"reach S ≥ 2 at realizable sizes (log*μ h ≥ 2 needs h ≥ μ^(μ^c)).",
		Header: []string{"n", "plan", "S", "steps", "steps/√n"},
	}
	side := 128
	if c.Quick {
		side = 32
	}
	h := heightForSide(side)
	d := graph.CompleteTreeHDag(2, h)
	qs := workload.KeySearchQueries(side*side/2, 1<<h, d.Root(), 2, c.rng())

	type variant struct {
		name string
		plan *core.HDagPlan
	}
	var variants []variant
	flat, err := core.ManualPlan(d, side, 0, nil)
	if err != nil {
		panic(err)
	}
	variants = append(variants, variant{"level-by-level (S=0)", flat})
	auto, err := core.PlanHDag(d, side)
	if err != nil {
		panic(err)
	}
	variants = append(variants, variant{"automatic", auto})
	// Manual S=2: split the top levels into two geometric blocks.
	if h >= 9 {
		cut1, cut2 := h/4, h/2
		man, err := core.ManualPlan(d, side, cut2+1, []core.HDagBlock{
			{Lo: 0, Hi: cut1, Grid: minInt(16, side/4)},
			{Lo: cut1 + 1, Hi: cut2, Grid: minInt(4, side/8)},
		})
		if err == nil {
			variants = append(variants, variant{"manual (S=2)", man})
		} else {
			c.log("E17 manual plan rejected: %v", err)
		}
	}

	var reference []core.Query
	for _, v := range variants {
		m := c.newMesh(side)
		in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
		m.ResetSteps()
		core.MultisearchHDag(m.Root(), in, v.plan)
		if reference == nil {
			reference = in.ResultQueries()
		} else if err := core.SameOutcome(reference, in.ResultQueries()); err != nil {
			panic(fmt.Sprintf("E17: %s diverges: %v", v.name, err))
		}
		n := m.N()
		t.Add(fi(int64(n)), v.name, fi(int64(v.plan.S)), fi(m.Steps()), ff(perSqrtN(m.Steps(), n)))
		c.log("E17 %s done", v.name)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- E16: §3 level-index computation --------------------------------------

func runE16(c Config, t *Table) {
	*t = Table{
		ID: "E16", Title: "Level indices by peel-and-compress",
		Source: "§3 (the \"easily computed in time O(√n)\" remark)",
		Note: "h peel rounds would cost Θ(h·√n) without compression; compressing\n" +
			"the survivors telescopes the total to O(Sort(√n)). The last column\n" +
			"shows the measured advantage.",
		Header: []string{"n", "h", "steps", "steps/√n", "uncompressed est.", "saving"},
	}
	for _, side := range sides(c, []int{16, 32, 64}, []int{16, 32, 64, 128, 256, 512}) {
		d := graph.CompleteTreeHDag(2, heightForSide(side))
		m := c.newMesh(side)
		in := core.NewInstance(m, d.Graph, nil, workload.KeySearchSuccessor)
		m.ResetSteps()
		levels := core.ComputeLevels(m.Root(), in)
		for id := range d.Verts {
			if levels[id] != d.Verts[id].Level {
				panic(fmt.Sprintf("E16: vertex %d level %d want %d", id, levels[id], d.Verts[id].Level))
			}
		}
		n := m.N()
		// Uncompressed estimate: h rounds, each ≈ MaxDegree RARs ≈
		// 3·MaxDegree sorts at full mesh size.
		uncompressed := int64(d.Height()+1) * 3 * int64(graph.MaxDegree) * m.Root().SortCost()
		t.Add(fi(int64(n)), fi(int64(d.Height())), fi(m.Steps()),
			ff(perSqrtN(m.Steps(), n)), fi(uncompressed),
			ff(float64(uncompressed)/math.Max(1, float64(m.Steps()))))
		c.log("E16 side=%d done", side)
	}
}
