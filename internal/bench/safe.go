package bench

import (
	"repro/internal/core"
)

// SafeRun executes one experiment inside the core.Run containment boundary.
// The returned table is never nil: it holds every row the experiment
// completed before the failure, so a budget overrun, cancellation, detected
// fault or panic in one experiment still yields a printable partial table.
// A nil error means the experiment ran to completion.
func SafeRun(e *Experiment, c Config) (*Table, error) {
	// Pre-fill the identity so even a failure before the experiment's own
	// metadata assignment produces an attributable table.
	t := &Table{ID: e.ID, Title: e.Title, Source: e.Source}
	if c.Tracer != nil {
		c.Tracer.SetPrefix(e.ID)
	}
	err := core.Run(e.ID+": "+e.Title, func() error {
		e.Run(c, t)
		return nil
	})
	return t, err
}
