package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/mesh"
	"repro/internal/pointloc"
	"repro/internal/polyhedron"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- E9: §6 multiple interval intersection --------------------------------

func runE9(c Config, t *Table) {
	*t = Table{
		ID: "E9", Title: "Multiple interval intersection: m=n/2 queries vs n/2 intervals",
		Source: "§6",
		Note: "count tree = two rank descents (Theorem 5 route); search tree = pruned\n" +
			"DFS walks (Theorem 7 route); sync = synchronous-multistep baseline on\n" +
			"the search tree. All three verified against brute-force counting.",
		Header: []string{"n(mesh)", "intervals", "queries", "count steps", "search steps", "sync steps", "sync/search"},
	}
	rng := c.rng()
	for _, side := range sides(c, []int{16, 32}, []int{16, 32, 64, 128}) {
		n := side * side
		nIv := n / 2
		set := make([]interval.Interval, nIv)
		span := int64(100000)
		for i := range set {
			lo := rng.Int63n(span)
			set[i] = interval.Interval{Lo: lo, Hi: lo + rng.Int63n(span/64+1), ID: int32(i)}
		}
		ranges := make([][2]int64, n/2)
		for i := range ranges {
			lo := rng.Int63n(span)
			ranges[i] = [2]int64{lo, lo + rng.Int63n(span/256+1)}
		}

		// Count tree (α-partitionable, Theorem 5).
		ct := interval.NewCountTree(set)
		maxPart := ct.InstallSplitter()
		ctSide := side
		for ctSide*ctSide < ct.G.N() || ctSide*ctSide < 2*len(ranges) {
			ctSide *= 2
		}
		m1 := c.newMesh(ctSide)
		in1 := core.NewInstance(m1, ct.G, ct.NewQueries(ranges), interval.CountSuccessor)
		end1 := trace.Span(m1.Root(), "interval/count-tree")
		core.MultisearchAlpha(m1.Root(), in1, maxPart, 0)
		end1()
		counts := ct.Counts(in1.ResultQueries(), len(ranges))

		// Search tree (α-β-partitionable, Theorem 7).
		st := interval.NewSearchTree(set)
		s1, s2 := st.InstallSplitters()
		stSide := side
		for stSide*stSide < st.Tree.N() {
			stSide *= 2
		}
		m2 := c.newMesh(stSide)
		in2 := core.NewInstance(m2, st.Tree.Graph, st.NewQueries(ranges), interval.Successor)
		end2 := trace.Span(m2.Root(), "interval/search-tree")
		core.MultisearchAlphaBeta(m2.Root(), in2, s1.MaxPart, s2.MaxPart, 0)
		end2()

		// Baseline: synchronous multistep on the search tree.
		m3 := c.newMesh(stSide)
		in3 := core.NewInstance(m3, st.Tree.Graph, st.NewQueries(ranges), interval.Successor)
		end3 := trace.Span(m3.Root(), "interval/sync-baseline")
		core.SynchronousMultisearch(m3.Root(), in3, 0)
		end3()

		// Verify all three agree with brute force (spot-check a sample).
		res2 := in2.ResultQueries()
		for i := 0; i < len(ranges); i += 1 + len(ranges)/64 {
			want := interval.BruteCount(set, ranges[i][0], ranges[i][1])
			if counts[i] != want || interval.Count(res2[i]) != want {
				panic(fmt.Sprintf("E9: count mismatch at query %d", i))
			}
		}
		t.Add(fi(int64(n)), fi(int64(nIv)), fi(int64(len(ranges))),
			fi(m1.Steps()), fi(m2.Steps()), fi(m3.Steps()),
			ff(float64(m3.Steps())/float64(m2.Steps())))
		c.log("E9 side=%d done", side)
	}
}

// --- E10: §5 batched planar point location --------------------------------

func runE10(c Config, t *Table) {
	*t = Table{
		ID: "E10", Title: "Batched point location via the Kirkpatrick hierarchy",
		Source: "§5 / [Kir83] / Theorem 8",
		Note: "n/2 query points located in a triangulation with ~n/4 sites. The DAG\n" +
			"has μ ≈ 1.2, so at these n the plan stays in the B* regime (S=0) and\n" +
			"runs level-by-level: steps ≈ levels·√n (see EXPERIMENTS.md).",
		Header: []string{"sites", "DAG nodes", "levels", "n(mesh)", "steps", "steps/√n", "steps/(levels·√n)"},
	}
	rng := c.rng()
	for _, sites := range sides(c, []int{100, 400}, []int{100, 400, 1600, 4000}) {
		pts := make([]geom.Point2, 0, sites)
		seen := map[geom.Point2]bool{}
		for len(pts) < sites {
			p := geom.Point2{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20)}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		h, err := pointloc.Build(pts)
		if err != nil {
			panic(err)
		}
		side := 4
		for side*side < h.Dag.N() {
			side *= 2
		}
		m := c.newMesh(side)
		plan, err := core.PlanHDag(h.Dag, side)
		if err != nil {
			panic(err)
		}
		queries := make([]geom.Point2, side*side/2)
		for i := range queries {
			queries[i] = geom.Point2{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20)}
		}
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(queries), h.Successor())
		m.ResetSteps()
		core.MultisearchHDag(m.Root(), in, plan)
		// Verify a sample.
		res := in.ResultQueries()
		for i := 0; i < len(queries); i += 1 + len(queries)/64 {
			if !h.Contains(pointloc.Answer(res[i]), queries[i]) {
				panic(fmt.Sprintf("E10: query %d misplaced", i))
			}
		}
		n := m.N()
		t.Add(fi(int64(sites)), fi(int64(h.Dag.N())), fi(int64(h.Levels)), fi(int64(n)),
			fi(m.Steps()), ff(perSqrtN(m.Steps(), n)),
			ff(perSqrtN(m.Steps(), n)/float64(h.Levels)))
		c.log("E10 sites=%d done", sites)
	}
}

// --- E11: Theorem 8.1 tangent planes --------------------------------------

func runE11(c Config, t *Table) {
	*t = Table{
		ID: "E11", Title: "Multiple tangent-plane determination on the DK hierarchy",
		Source: "Theorem 8.1",
		Note: "n/2 direction queries; each finds the extreme vertex (= tangent plane\n" +
			"contact) by DK descent. Verified against brute-force support values.",
		Header: []string{"hull verts", "DAG nodes", "levels", "n(mesh)", "steps", "steps/√n", "steps/(levels·√n)"},
	}
	rng := c.rng()
	for _, nv := range sides(c, []int{100, 400}, []int{100, 400, 1600, 4000}) {
		pts := geom.RandomSpherePoints(nv, 1<<20, rng)
		poly, err := geom.ConvexHull3D(pts)
		if err != nil {
			panic(err)
		}
		h, err := polyhedron.Build(poly)
		if err != nil {
			panic(err)
		}
		side := 4
		for side*side < h.Dag.N() {
			side *= 2
		}
		m := c.newMesh(side)
		plan, err := core.PlanHDag(h.Dag, side)
		if err != nil {
			panic(err)
		}
		dirs := make([]geom.Point3, side*side/2)
		for i := range dirs {
			for dirs[i] == (geom.Point3{}) {
				dirs[i] = geom.Point3{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20), Z: rng.Int63n(1 << 20)}
			}
		}
		in := core.NewInstance(m, h.Dag.Graph, h.NewQueries(dirs), h.Successor())
		m.ResetSteps()
		core.MultisearchHDag(m.Root(), in, plan)
		res := in.ResultQueries()
		for i := 0; i < len(dirs); i += 1 + len(dirs)/64 {
			got := geom.Dot3(dirs[i], poly.Pts[polyhedron.Answer(res[i])])
			want := geom.Dot3(dirs[i], poly.Pts[poly.Extreme(dirs[i])])
			if got != want {
				panic(fmt.Sprintf("E11: direction %d wrong extreme", i))
			}
		}
		n := m.N()
		t.Add(fi(int64(len(poly.Verts))), fi(int64(h.Dag.N())), fi(int64(h.Levels)),
			fi(int64(n)), fi(m.Steps()), ff(perSqrtN(m.Steps(), n)),
			ff(perSqrtN(m.Steps(), n)/float64(h.Levels)))
		c.log("E11 verts=%d done", nv)
	}
}

// --- E12: Theorem 8.2 separation ------------------------------------------

func runE12(c Config, t *Table) {
	*t = Table{
		ID: "E12", Title: "Convex polyhedra separation via batched support queries",
		Source: "Theorem 8.2",
		Note:   "Gap > 0: hulls translated apart (expected separated). Gap = 0: concentric.",
		Header: []string{"hull verts", "gap", "axes", "separated", "mesh steps"},
	}
	rng := c.rng()
	for _, nv := range sides(c, []int{60}, []int{60, 200, 800}) {
		for _, gap := range []int64{0, 1 << 19} {
			a := geom.RandomSpherePoints(nv, 1<<18, rng)
			b := geom.RandomSpherePoints(nv, 1<<18, rng)
			if gap > 0 {
				for i := range b {
					b[i].X += 2*(1<<18) + gap
				}
			}
			pa, err := geom.ConvexHull3D(a)
			if err != nil {
				panic(err)
			}
			pb, err := geom.ConvexHull3D(b)
			if err != nil {
				panic(err)
			}
			ha, err := polyhedron.Build(pa)
			if err != nil {
				panic(err)
			}
			hb, err := polyhedron.Build(pb)
			if err != nil {
				panic(err)
			}
			axes := polyhedron.CandidateAxes(pa, pb, 64, rng)
			side := 4
			for side*side < ha.Dag.N() || side*side < hb.Dag.N() || side*side < 4*len(axes) {
				side *= 2
			}
			res := polyhedron.Separate(ha, hb, axes,
				c.newMesh(side),
				c.newMesh(side))
			sep := "no"
			if res.Separated {
				sep = "yes"
			}
			wantSep := gap > 0
			if res.Separated != wantSep {
				sep += " (UNEXPECTED)"
			}
			t.Add(fi(int64(nv)), fi(gap), fi(int64(res.Axes)), sep, fi(res.MeshSteps))
			c.log("E12 verts=%d gap=%d done", nv, gap)
		}
	}
}

// --- E13: cost-model ablation ----------------------------------------------

func runE13(c Config, t *Table) {
	*t = Table{
		ID: "E13", Title: "Cost-model ablation: counted shearsort vs theoretical O(√n) sort",
		Source: "DESIGN.md §1 substitution 2",
		Note: "The same Algorithm 1 run charged both ways. The theoretical model\n" +
			"(Schnorr–Shamir-class sorters) makes steps/√n flat, confirming the\n" +
			"measured log factor comes from shearsort, not the multisearch.",
		Header: []string{"n", "side", "counted", "counted/√n", "theoretical", "theor./√n", "ratio"},
	}
	for _, side := range sides(c, []int{16, 32, 64}, []int{16, 32, 64, 128, 256, 512}) {
		d := graph.CompleteTreeHDag(2, heightForSide(side))
		var steps [2]int64
		for mi, model := range []mesh.CostModel{mesh.CostCounted, mesh.CostTheoretical} {
			m := c.newMeshModel(side, model)
			plan, err := core.PlanHDag(d, side)
			if err != nil {
				panic(err)
			}
			qs := workload.KeySearchQueries(m.N(), 1<<d.Height(), d.Root(), 2, c.rng())
			in := core.NewInstance(m, d.Graph, qs, workload.KeySearchSuccessor)
			m.ResetSteps()
			core.MultisearchHDag(m.Root(), in, plan)
			steps[mi] = m.Steps()
		}
		n := side * side
		t.Add(fi(int64(n)), fi(int64(side)), fi(steps[0]), ff(perSqrtN(steps[0], n)),
			fi(steps[1]), ff(perSqrtN(steps[1], n)), ff(float64(steps[0])/float64(steps[1])))
		c.log("E13 side=%d done", side)
	}
}

// --- E14: copy volume -------------------------------------------------------

func runE14(c Config, t *Table) {
	*t = Table{
		ID: "E14", Title: "Constrained-multisearch copy volume under query skew",
		Source: "Lemma 3 item (1)",
		Note: "Claim: ΣΓ_i·|G_i| = O(n) regardless of congestion. 'dup' repeats each\n" +
			"key that many times; 'skewed' sends half the queries to 8 hot keys.",
		Header: []string{"n", "workload", "marked", "ΣΓ", "layers", "copyVol", "copyVol/n"},
	}
	side := 128
	if c.Quick {
		side = 32
	}
	height := heightForSide(side)
	tr := graph.NewBalancedTree(2, height, true)
	s := graph.InstallTreeSplitter(tr, (height+1)/2, graph.Primary)
	n := side * side
	span := int64(tr.SubtreeSize(0))
	cases := []struct {
		name string
		qs   []core.Query
	}{
		{"uniform", workload.KeySearchQueries(n, span, tr.Root(), 1, c.rng())},
		{"dup=16", workload.KeySearchQueries(n, span, tr.Root(), 16, c.rng())},
		{"dup=256", workload.KeySearchQueries(n, span, tr.Root(), 256, c.rng())},
		{"skewed", workload.SkewedQueries(n, span, tr.Root(), c.rng())},
		{"all-one-key", workload.KeySearchQueries(n, span, tr.Root(), n, c.rng())},
	}
	cut := (height + 1) / 2
	for _, tc := range cases {
		m := c.newMesh(side)
		in := core.NewInstance(m, tr.Graph, tc.qs, workload.KeySearchSuccessor)
		in.Prime(m.Root())
		// Advance every query into its subtree part so key skew translates
		// into part congestion (the situation Γ-copying resolves).
		for step := 0; step <= cut; step++ {
			in.GlobalStep(m.Root())
		}
		st := core.ConstrainedMultisearch(m.Root(), in, graph.Primary, s.MaxPart, core.Log2N(m.Root()))
		t.Add(fi(int64(n)), tc.name, fi(int64(st.Marked)), fi(int64(st.TotalGamma)),
			fi(int64(st.Layers)), fi(int64(st.CopyVolume)), ff(float64(st.CopyVolume)/float64(n)))
		c.log("E14 %s done", tc.name)
	}
}

// silence unused-import guards when experiment sets change
var _ = math.Sqrt
