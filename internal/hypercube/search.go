package hypercube

import (
	"cmp"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// RAR is the hypercube random-access read with concurrent reads, identical
// in structure to the mesh version (sort the combined bank by key, copy-scan
// record values across their requests, sort the requests back). Cost:
// 1 double-sort + 1 double-scan + 1 single sort.
func RAR[K cmp.Ordered, V any](c *Cube,
	record func(i int) (key K, val V, ok bool),
	request func(i int) (key K, ok bool),
	deliver func(i int, val V, found bool),
) {
	type item struct {
		key    K
		isReq  bool
		found  bool
		val    V
		origin int32
	}
	items := make([]item, 0, 2*c.n)
	for i := 0; i < c.n; i++ {
		if k, val, ok := record(i); ok {
			items = append(items, item{key: k, val: val, found: true, origin: int32(i)})
		}
		if k, ok := request(i); ok {
			items = append(items, item{key: k, isReq: true, origin: int32(i)})
		}
	}
	sortSlice(c, items, 2, func(a, b item) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return !a.isReq && b.isReq
	})
	scanSlice(c, items, 2,
		func(i int) bool { return i == 0 || items[i].key != items[i-1].key },
		func(a, b item) item {
			if b.isReq {
				b.val = a.val
				b.found = a.found
			}
			return b
		})
	reqs := items[:0]
	for _, it := range items {
		if it.isReq {
			reqs = append(reqs, it)
		}
	}
	sortSlice(c, reqs, 1, func(a, b item) bool { return a.origin < b.origin })
	for _, it := range reqs {
		deliver(int(it.origin), it.val, it.found)
	}
	c.Charge(1)
}

// Instance is a multisearch problem loaded onto the hypercube: the same
// Query/Successor machinery as the mesh (internal/core), different
// substrate.
type Instance struct {
	C       *Cube
	G       *graph.Graph
	F       core.Successor
	Nodes   *Reg[graph.Vertex]
	Queries *Reg[core.Query]
	NumQ    int
}

var emptyVertex = func() graph.Vertex {
	var v graph.Vertex
	v.ID = graph.Nil
	v.Level = -1
	v.Part = graph.NoPart
	v.Part2 = graph.NoPart
	v.ExtIdx = -1
	return v
}()

var emptyQuery = core.Query{ID: core.NoQuery, Cur: graph.Nil, CurPart: graph.NoPart, CurPart2: graph.NoPart, CurLevel: -1}

// NewInstance loads g and the queries: vertex i at processor i, query j at
// processor j.
func NewInstance(c *Cube, g *graph.Graph, queries []core.Query, f core.Successor) *Instance {
	if g.N() > c.N() {
		panic(fmt.Sprintf("hypercube: graph with %d vertices exceeds cube size %d", g.N(), c.N()))
	}
	if len(queries) > c.N() {
		panic(fmt.Sprintf("hypercube: %d queries exceed cube size %d", len(queries), c.N()))
	}
	in := &Instance{
		C: c, G: g, F: f,
		Nodes:   NewReg[graph.Vertex](c),
		Queries: NewReg[core.Query](c),
		NumQ:    len(queries),
	}
	Fill(in.Nodes, emptyVertex)
	Fill(in.Queries, emptyQuery)
	Load(in.Nodes, g.Verts)
	qs := make([]core.Query, len(queries))
	for i, q := range queries {
		q.ID = int32(i)
		q.Done = false
		q.Mark = false
		q.Steps = 0
		q.CurPart = graph.NoPart
		q.CurPart2 = graph.NoPart
		q.CurLevel = -1
		qs[i] = q
	}
	Load(in.Queries, qs)
	return in
}

// GlobalStep advances every unfinished query one search step with one
// full-cube RAR — the [DR90] synchronous multistep on its home topology.
func (in *Instance) GlobalStep() int {
	advanced := 0
	RAR(in.C,
		func(i int) (graph.VertexID, graph.Vertex, bool) {
			nd := At(in.Nodes, i)
			return nd.ID, nd, nd.ID != graph.Nil
		},
		func(i int) (graph.VertexID, bool) {
			q := At(in.Queries, i)
			return q.Cur, q.ID != core.NoQuery && !q.Done
		},
		func(i int, nd graph.Vertex, found bool) {
			if !found {
				panic(fmt.Sprintf("hypercube: query at %d visits unknown vertex", i))
			}
			q := At(in.Queries, i)
			core.Visit(in.F, nd, &q)
			Set(in.Queries, i, q)
			advanced++
		})
	return advanced
}

// Unfinished counts the queries still searching.
func (in *Instance) Unfinished() int {
	return Count(in.Queries, func(q core.Query) bool {
		return q.ID != core.NoQuery && !q.Done
	})
}

// SynchronousMultisearch runs the [DR90] strategy: GlobalStep until every
// search path ends. Returns the number of multisteps.
func SynchronousMultisearch(in *Instance, maxSteps int) int {
	steps := 0
	for in.Unfinished() > 0 {
		if maxSteps > 0 && steps >= maxSteps {
			panic(fmt.Sprintf("hypercube: synchronous multisearch exceeded %d multisteps", maxSteps))
		}
		in.GlobalStep()
		steps++
	}
	return steps
}

// ResultQueries snapshots final query records in ID order.
func (in *Instance) ResultQueries() []core.Query {
	all := Snapshot(in.Queries)
	out := make([]core.Query, in.NumQ)
	for _, q := range all {
		if q.ID != core.NoQuery {
			out[q.ID] = q
		}
	}
	return out
}
