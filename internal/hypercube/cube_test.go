package hypercube_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/workload"
)

func TestNewValidates(t *testing.T) {
	c := hypercube.New(64, hypercube.CostCounted)
	if c.N() != 64 || c.Dim() != 6 {
		t.Fatalf("N=%d dim=%d", c.N(), c.Dim())
	}
	for _, n := range []int{0, -2, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			hypercube.New(n, hypercube.CostCounted)
		}()
	}
}

func TestCostModels(t *testing.T) {
	if hypercube.CostCounted.String() != "counted" || hypercube.CostTheoretical.String() != "theoretical" {
		t.Fatal("strings")
	}
	// Bitonic d(d+1)/2 vs flashsort 3d.
	cc := hypercube.New(1024, hypercube.CostCounted)
	ct := hypercube.New(1024, hypercube.CostTheoretical)
	rc := hypercube.NewReg[int](cc)
	rt := hypercube.NewReg[int](ct)
	hypercube.Sort(rc, func(a, b int) bool { return a < b })
	hypercube.Sort(rt, func(a, b int) bool { return a < b })
	if cc.Steps() != 10*11/2 {
		t.Fatalf("bitonic cost %d", cc.Steps())
	}
	if ct.Steps() != 3*10 {
		t.Fatalf("flashsort cost %d", ct.Steps())
	}
}

func TestBasicOps(t *testing.T) {
	c := hypercube.New(16, hypercube.CostCounted)
	r := hypercube.NewReg[int](c)
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 16)
	for i := range xs {
		xs[i] = rng.Intn(100)
	}
	hypercube.Load(r, xs)
	want := 0
	for _, x := range xs {
		want += x
	}
	if got := hypercube.Reduce(r, func(a, b int) int { return a + b }); got != want {
		t.Fatalf("Reduce=%d want %d", got, want)
	}
	hypercube.Scan(r, func(a, b int) int { return a + b })
	acc := 0
	for i, x := range xs {
		acc += x
		if hypercube.At(r, i) != acc {
			t.Fatalf("prefix at %d", i)
		}
	}
	hypercube.Set(r, 3, 999)
	hypercube.Broadcast(r, 3)
	if hypercube.At(r, 15) != 999 {
		t.Fatal("broadcast")
	}
	hypercube.Fill(r, 5)
	hypercube.Apply(r, func(i, cur int) int { return cur + i })
	if hypercube.At(r, 7) != 12 {
		t.Fatal("fill+apply")
	}
	if hypercube.Count(r, func(x int) bool { return x%2 == 1 }) != 8 {
		t.Fatal("count")
	}
}

func TestSortSorts(t *testing.T) {
	c := hypercube.New(64, hypercube.CostCounted)
	r := hypercube.NewReg[int](c)
	rng := rand.New(rand.NewSource(2))
	xs := make([]int, 64)
	for i := range xs {
		xs[i] = rng.Intn(50)
	}
	hypercube.Load(r, xs)
	hypercube.Sort(r, func(a, b int) bool { return a < b })
	out := hypercube.Snapshot(r)
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestQuickRARMatchesGather(t *testing.T) {
	c := hypercube.New(16, hypercube.CostCounted)
	f := func(recKeys [16]uint8, recMask uint16, reqKeys [16]uint8) bool {
		ref := map[int32]int{}
		for i := 0; i < 16; i++ {
			if recMask&(1<<i) != 0 {
				k := int32(recKeys[i] % 8)
				if _, dup := ref[k]; dup {
					return true
				}
				ref[k] = i * 100
			}
		}
		ok := true
		hypercube.RAR(c,
			func(i int) (int32, int, bool) {
				if recMask&(1<<i) != 0 {
					return int32(recKeys[i] % 8), i * 100, true
				}
				return 0, 0, false
			},
			func(i int) (int32, bool) { return int32(reqKeys[i] % 8), true },
			func(i int, val int, found bool) {
				want, exists := ref[int32(reqKeys[i]%8)]
				if found != exists || (found && val != want) {
					ok = false
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronousMultisearchMatchesOracle(t *testing.T) {
	g := workload.CycleGraph(16, 16)
	rng := rand.New(rand.NewSource(3))
	qs := workload.WalkQueries(200, 37, g.N(), rng)
	want := core.Oracle(g, qs, workload.WalkSuccessor, 0)
	c := hypercube.New(256, hypercube.CostCounted)
	in := hypercube.NewInstance(c, g, qs, workload.WalkSuccessor)
	steps := hypercube.SynchronousMultisearch(in, 0)
	if steps != 37 {
		t.Fatalf("multisteps=%d", steps)
	}
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	// Cost: r multisteps, each Θ(log² n) under bitonic.
	d := int64(c.Dim())
	lower := 37 * d * d / 2
	upper := 37 * (3*d*d + 10*d + 10)
	if c.Steps() < lower || c.Steps() > upper {
		t.Fatalf("cost %d outside [%d, %d]", c.Steps(), lower, upper)
	}
}

func TestInstancePanics(t *testing.T) {
	g := workload.CycleGraph(4, 8) // 32 vertices
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("graph overflow accepted")
			}
		}()
		hypercube.NewInstance(hypercube.New(16, hypercube.CostCounted), g, nil, workload.WalkSuccessor)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("query overflow accepted")
			}
		}()
		hypercube.NewInstance(hypercube.New(32, hypercube.CostCounted), g,
			make([]core.Query, 33), workload.WalkSuccessor)
	}()
}

func TestChargePanicsOnNegative(t *testing.T) {
	c := hypercube.New(4, hypercube.CostCounted)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Charge(-1)
}
