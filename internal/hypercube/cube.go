// Package hypercube simulates the network [DR90] ran multisearch on — the
// d-dimensional hypercube with N = 2^d processors — with the same
// operation-level/step-exact philosophy as internal/mesh. §1 of the paper
// contrasts its mesh algorithms with the hypercube strategy of [DR90]
// ("moving the search queries synchronously through G", one
// diameter-proportional multistep per search step); this package provides
// that comparator on its native topology (experiment E18).
//
// Machine model: one step = every processor does O(1) work and may
// exchange O(1) words with its neighbour across ONE dimension (the normal,
// SIMD hypercube model). Costs charged:
//
//	broadcast / reduce      d            (dimension sweep)
//	prefix scan             2d           (up + down sweeps)
//	bitonic sort            d(d+1)/2     (the full bitonic network;
//	                                      CostCounted, default)
//	sort, CostTheoretical   3d           (Reif–Valiant flashsort class,
//	                                      mirroring the mesh's optimal-sort
//	                                      model)
//
// Random-access reads compose from sorts and scans exactly as on the mesh.
package hypercube

import (
	"fmt"
	"math/bits"
	"sort"
)

// CostModel mirrors mesh.CostModel for the cube's sorter.
type CostModel int

const (
	// CostCounted charges the bitonic sorting network its true depth.
	CostCounted CostModel = iota
	// CostTheoretical charges O(d) sorting (randomized flashsort class).
	CostTheoretical
)

func (c CostModel) String() string {
	if c == CostTheoretical {
		return "theoretical"
	}
	return "counted"
}

// Cube is a 2^d-processor hypercube.
type Cube struct {
	dim   int
	n     int
	model CostModel
	steps int64
}

// New creates a hypercube with n = 2^d processors (n must be a power of
// two).
func New(n int, model CostModel) *Cube {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("hypercube: size must be a power of two, got %d", n))
	}
	return &Cube{dim: bits.Len(uint(n)) - 1, n: n, model: model}
}

// N returns the processor count.
func (c *Cube) N() int { return c.n }

// Dim returns d = log₂ N, the diameter.
func (c *Cube) Dim() int { return c.dim }

// Model returns the active cost model.
func (c *Cube) Model() CostModel { return c.model }

// Steps returns accumulated simulated hypercube time.
func (c *Cube) Steps() int64 { return c.steps }

// ResetSteps zeroes the clock.
func (c *Cube) ResetSteps() { c.steps = 0 }

// Charge adds explicit steps (for O(1)-local passes).
func (c *Cube) Charge(s int64) {
	if s < 0 {
		panic("hypercube: negative charge")
	}
	c.steps += s
}

func (c *Cube) sortCost() int64 {
	if c.model == CostTheoretical {
		return int64(3 * c.dim)
	}
	return int64(c.dim * (c.dim + 1) / 2)
}

func (c *Cube) scanCost() int64 { return int64(2 * c.dim) }

func (c *Cube) broadcastCost() int64 { return int64(c.dim) }

// Reg is one register: one value of type T per processor.
type Reg[T any] struct {
	c    *Cube
	data []T
}

// NewReg allocates a register.
func NewReg[T any](c *Cube) *Reg[T] { return &Reg[T]{c: c, data: make([]T, c.n)} }

// At reads processor i's value.
func At[T any](r *Reg[T], i int) T { return r.data[i] }

// Set writes processor i's value.
func Set[T any](r *Reg[T], i int, v T) { r.data[i] = v }

// Fill stores v everywhere. One step.
func Fill[T any](r *Reg[T], v T) {
	for i := range r.data {
		r.data[i] = v
	}
	r.c.Charge(1)
}

// Apply runs an O(1) local update everywhere. One step.
func Apply[T any](r *Reg[T], f func(i int, cur T) T) {
	for i := range r.data {
		r.data[i] = f(i, r.data[i])
	}
	r.c.Charge(1)
}

// Load writes xs into processors 0..len(xs)-1 (initialization; no charge).
func Load[T any](r *Reg[T], xs []T) {
	if len(xs) > len(r.data) {
		panic("hypercube: Load overflow")
	}
	copy(r.data, xs)
}

// Snapshot copies the register (inspection; no charge).
func Snapshot[T any](r *Reg[T]) []T { return append([]T(nil), r.data...) }

// Sort sorts the register ascending by less (stable). Cost: one bitonic
// sort under CostCounted.
func Sort[T any](r *Reg[T], less func(a, b T) bool) {
	sort.SliceStable(r.data, func(i, j int) bool { return less(r.data[i], r.data[j]) })
	r.c.Charge(r.c.sortCost())
}

// Scan replaces each cell with the inclusive prefix combination in
// processor order. Cost: 2d.
func Scan[T any](r *Reg[T], op func(a, b T) T) {
	for i := 1; i < len(r.data); i++ {
		r.data[i] = op(r.data[i-1], r.data[i])
	}
	r.c.Charge(r.c.scanCost())
}

// Broadcast copies processor src's value everywhere. Cost: d.
func Broadcast[T any](r *Reg[T], src int) {
	v := r.data[src]
	for i := range r.data {
		r.data[i] = v
	}
	r.c.Charge(r.c.broadcastCost())
}

// Reduce combines all values. Cost: d.
func Reduce[T any](r *Reg[T], op func(a, b T) T) T {
	acc := r.data[0]
	for _, x := range r.data[1:] {
		acc = op(acc, x)
	}
	r.c.Charge(r.c.broadcastCost())
	return acc
}

// Count counts values satisfying pred. Cost: d.
func Count[T any](r *Reg[T], pred func(T) bool) int {
	n := 0
	for _, x := range r.data {
		if pred(x) {
			n++
		}
	}
	r.c.Charge(r.c.broadcastCost())
	return n
}

// sortSlice sorts a scratch bank of ≤ perProc records per processor,
// charging perProc sorts (multi-record sorts pay per record, as on the
// mesh).
func sortSlice[T any](c *Cube, xs []T, perProc int, less func(a, b T) bool) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*c.n {
		panic("hypercube: sortSlice overflow")
	}
	sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
	c.Charge(int64(perProc) * c.sortCost())
}

// scanSlice performs a segmented scan over a scratch bank, charging perProc
// scans.
func scanSlice[T any](c *Cube, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*c.n {
		panic("hypercube: scanSlice overflow")
	}
	for i := 1; i < len(xs); i++ {
		if !head(i) {
			xs[i] = op(xs[i-1], xs[i])
		}
	}
	c.Charge(int64(perProc) * c.scanCost())
}
