// Package workload generates the synthetic inputs of the experiment suite:
// search-tree queries, traversal queries, hierarchical-DAG descents, and
// the successor functions that drive them. Every generator is seeded and
// deterministic. The generators substitute for the paper's unspecified
// inputs (the paper is theoretical and reports no datasets); see DESIGN.md.
package workload

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// State word layout for the query kinds below.
const (
	StateKey   = 0 // search key
	StatePhase = 1 // traversal phase (descend/ascend)
	StateAcc   = 2 // order-sensitive visit digest
	StateCount = 3 // application accumulator (e.g. intersection count)
)

// digest folds a visited vertex into the query's order-sensitive visit
// digest. Equal digests certify equal visit sequences — this is what makes
// oracle comparisons strong.
func digest(acc int64, id graph.VertexID) int64 {
	return acc*1000003 + int64(id) + 1
}

// KeySearchSuccessor drives a root-to-leaf key search on any span-annotated
// search structure (graph.CompleteTreeHDag, graph.NewBalancedTree directed,
// and the k-ary levels of interval trees): at an internal vertex descend
// into the child whose key span contains State[StateKey]; finish at a
// vertex with no children. Works on hierarchical DAGs and α-partitionable
// directed trees alike.
func KeySearchSuccessor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[StateAcc] = digest(q.State[StateAcc], v.ID)
	if v.Deg == 0 {
		return 0, true
	}
	key := q.State[StateKey]
	return spanChild(key, v.Data[graph.HDagSpanStart], v.Data[graph.HDagSpanWidth], int(v.Deg)), false
}

// spanChild maps a key to the child whose equal share of [start, start+width)
// contains it, clamped to [0, deg). A vertex whose span is narrower than its
// degree has per-child spans of width zero; descend into child 0 rather than
// dividing by zero.
func spanChild(key, start, width int64, deg int) int {
	per := width / int64(deg)
	if per < 1 {
		return 0
	}
	idx := int((key - start) / per)
	if idx < 0 {
		idx = 0
	}
	if idx >= deg {
		idx = deg - 1
	}
	return idx
}

// DownUpSuccessor drives an undirected balanced tree traversal: descend by
// key to a leaf, then climb back to the root, then stop. The path has
// length 2h+1 and crosses every depth cut twice, exercising both splitters
// of an α-β-partitionable tree in both directions.
func DownUpSuccessor(k int) core.Successor {
	return func(v graph.Vertex, q *core.Query) (int, bool) {
		q.State[StateAcc] = digest(q.State[StateAcc], v.ID)
		isRoot := v.Level == 0
		childCount := int(v.Deg)
		if !isRoot {
			childCount-- // slot 0 is the parent edge
		}
		if q.State[StatePhase] == 0 { // descending
			if childCount == 0 {
				q.State[StatePhase] = 1
				if isRoot {
					return 0, true // degenerate single-vertex tree
				}
				return 0, false // parent edge
			}
			key := q.State[StateKey]
			idx := spanChild(key, v.Data[graph.HDagSpanStart], v.Data[graph.HDagSpanWidth], childCount)
			if isRoot {
				return idx, false
			}
			return idx + 1, false
		}
		// Ascending.
		if isRoot {
			return 0, true
		}
		return 0, false
	}
}

// RandomWalkDownSuccessor descends a hierarchical DAG by a deterministic
// pseudo-random child choice (hash of key and vertex), finishing at a
// sink. Exercises arbitrary congestion: walks seeded with equal keys
// collide at every level.
func RandomWalkDownSuccessor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[StateAcc] = digest(q.State[StateAcc], v.ID)
	if v.Deg == 0 {
		return 0, true
	}
	h := uint64(q.State[StateKey])*0x9E3779B97F4A7C15 ^ uint64(v.ID)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return int(h % uint64(v.Deg)), false
}

// KeySearchQueries draws m uniform keys in [0, keySpace) and returns
// queries starting at start. dup > 1 makes keys collide on purpose (each
// key repeated dup times), creating the congestion the multisearch copies
// resolve.
func KeySearchQueries(m int, keySpace int64, start graph.VertexID, dup int, rng *rand.Rand) []core.Query {
	if dup < 1 {
		dup = 1
	}
	qs := make([]core.Query, m)
	var key int64
	for i := range qs {
		if i%dup == 0 {
			key = rng.Int63n(keySpace)
		}
		qs[i].Cur = start
		qs[i].State[StateKey] = key
	}
	return qs
}

// SkewedQueries draws keys from a power-law-ish distribution (many
// duplicates of few hot keys), the adversarial congestion case.
func SkewedQueries(m int, keySpace int64, start graph.VertexID, rng *rand.Rand) []core.Query {
	qs := make([]core.Query, m)
	hot := make([]int64, 8)
	for i := range hot {
		hot[i] = rng.Int63n(keySpace)
	}
	for i := range qs {
		qs[i].Cur = start
		if rng.Intn(2) == 0 {
			qs[i].State[StateKey] = hot[rng.Intn(len(hot))]
		} else {
			qs[i].State[StateKey] = rng.Int63n(keySpace)
		}
	}
	return qs
}
