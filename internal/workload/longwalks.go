package workload

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Long-search-path workloads for the Theorem 5/7 experiments (E3-E5).
//
// For directed α-partitionable graphs, search paths longer than log n live
// inside subgraphs: once a query crosses the splitter into a T_j it can
// never leave (all splitter arcs run H→T), so unbounded r requires cyclic
// components. CycleGraph builds the canonical instance: a disjoint union of
// directed cycles, which is α-partitionable with the empty splitter (every
// component already has size O(n^α)).
//
// For undirected α-β-partitionable graphs, long paths bounce: BounceQueries
// walk a balanced tree root→leaf→root k times, rehashing the search key at
// every turn, crossing both splitters Θ(k) times.

// CycleGraph returns numCycles directed cycles of the given length, with
// Part = cycle index (the trivial normalized α-splitting, S = ∅).
func CycleGraph(numCycles, length int) *graph.Graph {
	g := graph.New(numCycles*length, true)
	for c := 0; c < numCycles; c++ {
		base := c * length
		for i := 0; i < length; i++ {
			id := graph.VertexID(base + i)
			g.Verts[id].Part = int32(c)
			g.AddArc(id, graph.VertexID(base+(i+1)%length))
		}
	}
	g.RefreshAdjParts()
	return g
}

// WalkSuccessor advances a query along adjacency slot 0 until it has made
// State[StateKey] visits.
func WalkSuccessor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[StateAcc] = digest(q.State[StateAcc], v.ID)
	if int64(q.Steps) >= q.State[StateKey] {
		return 0, true
	}
	return 0, false
}

// WalkQueries starts m fixed-length walks of r steps at random vertices.
func WalkQueries(m, r, n int, rng *rand.Rand) []core.Query {
	qs := make([]core.Query, m)
	for i := range qs {
		qs[i].Cur = graph.VertexID(rng.Intn(n))
		qs[i].State[StateKey] = int64(r)
	}
	return qs
}

// BounceSuccessor walks an undirected balanced k-ary tree root→leaf→root,
// `bounces` times, rehashing the key at every leaf so each descent takes a
// fresh path. Path length r = bounces·2h + 1.
func BounceSuccessor(k int) core.Successor {
	downUp := DownUpSuccessor(k)
	return func(v graph.Vertex, q *core.Query) (int, bool) {
		edge, done := downUp(v, q)
		if !done {
			return edge, false
		}
		// Back at the root: start the next bounce or finish.
		if q.State[StateCount] == 0 {
			return 0, true
		}
		q.State[StateCount]--
		q.State[StatePhase] = 0 // descend again
		h := uint64(q.State[StateKey])*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
		h ^= h >> 29
		q.State[StateKey] = int64(h % uint64(v.Data[graph.HDagSpanWidth]))
		key := q.State[StateKey]
		childCount := int(v.Deg)
		width := v.Data[graph.HDagSpanWidth] / int64(childCount)
		idx := int(key / width)
		if idx >= childCount {
			idx = childCount - 1
		}
		return idx, false
	}
}

// BounceQueries starts m bouncing traversals with the given bounce count.
func BounceQueries(m, bounces int, keySpace int64, root graph.VertexID, rng *rand.Rand) []core.Query {
	qs := make([]core.Query, m)
	for i := range qs {
		qs[i].Cur = root
		qs[i].State[StateKey] = rng.Int63n(keySpace)
		qs[i].State[StateCount] = int64(bounces - 1)
	}
	return qs
}
