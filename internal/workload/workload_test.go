package workload_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/workload"
)

func TestKeySearchQueriesDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs := workload.KeySearchQueries(12, 100, 0, 4, rng)
	for i := 0; i < 12; i += 4 {
		for j := 1; j < 4; j++ {
			if qs[i].State[workload.StateKey] != qs[i+j].State[workload.StateKey] {
				t.Fatalf("group %d keys differ", i/4)
			}
		}
	}
}

func TestKeySearchSuccessorReachesCorrectLeaf(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 8)
	qs := workload.KeySearchQueries(64, 256, d.Root(), 1, rand.New(rand.NewSource(2)))
	out := core.Oracle(d.Graph, qs, workload.KeySearchSuccessor, 0)
	for i, q := range out {
		// The query visits h+1 vertices and must end at the leaf whose span
		// contains the key.
		if q.Steps != 9 || !q.Done {
			t.Fatalf("query %d steps=%d done=%v", i, q.Steps, q.Done)
		}
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	d := graph.CompleteTreeHDag(2, 6)
	qs := workload.KeySearchQueries(10, 64, d.Root(), 1, rand.New(rand.NewSource(3)))
	a := core.Oracle(d.Graph, qs, workload.RandomWalkDownSuccessor, 0)
	b := core.Oracle(d.Graph, qs, workload.RandomWalkDownSuccessor, 0)
	if err := core.SameOutcome(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestCycleGraphStructure(t *testing.T) {
	g := workload.CycleGraph(4, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 32 {
		t.Fatalf("n=%d", g.N())
	}
	// Every vertex has out-degree 1 within its own cycle.
	for i := range g.Verts {
		v := &g.Verts[i]
		if v.Deg != 1 || v.AdjPart[0] != v.Part {
			t.Fatalf("vertex %d: deg=%d part=%d adjpart=%d", i, v.Deg, v.Part, v.AdjPart[0])
		}
	}
}

func TestWalkOnCyclesMatchesOracleOnMesh(t *testing.T) {
	g := workload.CycleGraph(16, 16) // n = 256
	m := mesh.New(16)
	rng := rand.New(rand.NewSource(4))
	r := 40 // multiple wraps around each cycle
	qs := workload.WalkQueries(200, r, g.N(), rng)
	want := core.Oracle(g, qs, workload.WalkSuccessor, 0)
	for _, q := range want {
		if int(q.Steps) != r {
			t.Fatalf("oracle walk length %d want %d", q.Steps, r)
		}
	}
	in := core.NewInstance(m, g, qs, workload.WalkSuccessor)
	st := core.MultisearchAlpha(m.Root(), in, 16, 1000)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	// Theorem 5: ≈ r / (2·log₂ n) log-phases.
	if st.LogPhases > r/4+2 {
		t.Fatalf("%d log-phases for r=%d", st.LogPhases, r)
	}
}

func TestBounceSuccessorPathLength(t *testing.T) {
	h := 6
	tr := graph.NewBalancedTree(2, h, false)
	for _, bounces := range []int{1, 3, 7} {
		qs := workload.BounceQueries(20, bounces, int64(tr.SubtreeSize(0)), tr.Root(), rand.New(rand.NewSource(5)))
		out := core.Oracle(tr.Graph, qs, workload.BounceSuccessor(2), 0)
		want := int32(bounces*2*h + 1)
		for i, q := range out {
			if q.Steps != want || !q.Done {
				t.Fatalf("bounces=%d query %d: steps=%d want %d", bounces, i, q.Steps, want)
			}
		}
	}
}

func TestBounceOnMeshMatchesOracle(t *testing.T) {
	h := 7
	tr := graph.NewBalancedTree(2, h, false)
	s1 := graph.InstallTreeSplitter(tr, 3, graph.Primary)
	s2 := graph.InstallTreeSplitter(tr, 6, graph.Secondary)
	m := mesh.New(16)
	qs := workload.BounceQueries(100, 4, int64(tr.SubtreeSize(0)), tr.Root(), rand.New(rand.NewSource(6)))
	want := core.Oracle(tr.Graph, qs, workload.BounceSuccessor(2), 0)
	in := core.NewInstance(m, tr.Graph, qs, workload.BounceSuccessor(2))
	core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 2000)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedQueriesStartAtRoot(t *testing.T) {
	qs := workload.SkewedQueries(50, 1000, 7, rand.New(rand.NewSource(7)))
	for i, q := range qs {
		if q.Cur != 7 {
			t.Fatalf("query %d starts at %d", i, q.Cur)
		}
	}
}

// A vertex whose key span is narrower than its degree has per-child spans of
// width zero; the seed divided by that zero width and panicked. The query
// must instead descend into child 0.
func TestNarrowSpanDescendsToChildZero(t *testing.T) {
	var v graph.Vertex
	v.ID = 7
	v.Deg = 4
	v.Data[graph.HDagSpanStart] = 10
	v.Data[graph.HDagSpanWidth] = 2 // narrower than Deg

	var q core.Query
	q.State[workload.StateKey] = 11
	edge, done := workload.KeySearchSuccessor(v, &q)
	if done || edge != 0 {
		t.Errorf("KeySearchSuccessor on narrow span: edge=%d done=%v, want 0,false", edge, done)
	}

	// DownUpSuccessor, descending at a non-root vertex: slot 0 is the
	// parent edge, so child 0 is adjacency slot 1.
	v.Level = 3
	v.Deg = 5 // parent + 4 children, span still narrower than child count
	var q2 core.Query
	q2.State[workload.StateKey] = 11
	edge, done = workload.DownUpSuccessor(2)(v, &q2)
	if done || edge != 1 {
		t.Errorf("DownUpSuccessor on narrow span: edge=%d done=%v, want 1,false", edge, done)
	}

	// The wide-span path still picks the spanning child.
	v2 := v
	v2.Level = 0
	v2.Deg = 4
	v2.Data[graph.HDagSpanWidth] = 40
	var q3 core.Query
	q3.State[workload.StateKey] = 10 + 25 // third child's decile
	edge, done = workload.KeySearchSuccessor(v2, &q3)
	if done || edge != 2 {
		t.Errorf("KeySearchSuccessor wide span: edge=%d done=%v, want 2,false", edge, done)
	}
}
