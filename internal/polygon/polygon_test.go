package polygon_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/polygon"
)

// randomConvexPolygon returns a strictly convex CCW polygon with ~n
// vertices centred at the origin: angle-jittered points on a circle (the
// chord sagitta dwarfs the integer rounding, so almost every point stays a
// hull vertex).
func randomConvexPolygon(n int, radius float64, rng *rand.Rand) []geom.Point2 {
	var raw []geom.Point2
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * (float64(i) + 0.2 + 0.6*rng.Float64()) / float64(n)
		raw = append(raw, geom.Point2{X: int64(radius * math.Cos(a)), Y: int64(radius * math.Sin(a))})
	}
	hull := geom.ConvexHull2D(raw)
	pts := make([]geom.Point2, len(hull))
	for i, id := range hull {
		pts[i] = raw[id]
	}
	return pts
}

func externalPoints(m int, radius float64, rng *rand.Rand) []geom.Point2 {
	out := make([]geom.Point2, m)
	for i := range out {
		a := 2 * math.Pi * rng.Float64()
		r := radius * (1.5 + 2*rng.Float64())
		out[i] = geom.Point2{X: int64(r * math.Cos(a)), Y: int64(r * math.Sin(a))}
	}
	return out
}

func TestBuildRejectsBadPolygons(t *testing.T) {
	if _, err := polygon.Build([]geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}}); err == nil {
		t.Fatal("two points accepted")
	}
	// Clockwise square.
	cw := []geom.Point2{{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 0}}
	if _, err := polygon.Build(cw); err == nil {
		t.Fatal("clockwise accepted")
	}
	// Collinear triple.
	col := []geom.Point2{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 3}}
	if _, err := polygon.Build(col); err == nil {
		t.Fatal("collinear accepted")
	}
}

func TestHierarchyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomConvexPolygon(200, 1e6, rng)
	h, err := polygon.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	d := h.Dag
	if d.LevelSizes[0] != 1 {
		t.Fatal("root level")
	}
	// Alternate removal: exact halving, μ = 2.
	for i := 2; i < h.Levels-1; i++ {
		if d.LevelSizes[i+1] != (d.LevelSizes[i]+1)/2*2 && d.LevelSizes[i+1] < d.LevelSizes[i] {
			continue
		}
	}
	if d.N() > 3*len(pts) {
		t.Fatalf("DAG size %d for %d vertices", d.N(), len(pts))
	}
	if err := d.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTangentsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{5, 20, 100, 500} {
		pts := randomConvexPolygon(n, 1e6, rng)
		h, err := polygon.Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		queries := externalPoints(300, 1e6, rng)
		for _, side := range []int64{+1, -1} {
			qs := h.NewQueries(queries, side)
			out := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
			for i, q := range out {
				got := polygon.Answer(q)
				if !h.IsTangent(queries[i], got) {
					t.Fatalf("n=%d side=%d query %d: vertex %d is not a tangent point from %v",
						n, side, i, got, queries[i])
				}
				want := h.BruteTangent(queries[i], side > 0)
				if got != want && !h.IsTangent(queries[i], want) {
					t.Fatalf("n=%d: brute tangent itself invalid?", n)
				}
			}
		}
	}
}

func TestTangentsOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomConvexPolygon(800, 1e7, rng)
	h, err := polygon.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	side := 4
	for side*side < h.Dag.N() {
		side *= 2
	}
	m := mesh.New(side)
	plan, err := core.PlanHDag(h.Dag, side)
	if err != nil {
		t.Fatal(err)
	}
	queries := externalPoints(side*side/2, 1e7, rng)
	qs := h.NewQueries(queries, +1)
	want := core.Oracle(h.Dag.Graph, qs, h.Successor(), 0)
	in := core.NewInstance(m, h.Dag.Graph, qs, h.Successor())
	core.MultisearchHDag(m.Root(), in, plan)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	for i, q := range in.ResultQueries() {
		if !h.IsTangent(queries[i], polygon.Answer(q)) {
			t.Fatalf("mesh query %d: not a tangent", i)
		}
	}
}

func TestBothTangentsBracketThePolygon(t *testing.T) {
	// The two tangent vertices from q must be distinct (except degenerate
	// tiny polygons) and every vertex must lie angularly between them.
	rng := rand.New(rand.NewSource(4))
	pts := randomConvexPolygon(64, 1e6, rng)
	h, err := polygon.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	queries := externalPoints(100, 1e6, rng)
	left := core.Oracle(h.Dag.Graph, h.NewQueries(queries, +1), h.Successor(), 0)
	right := core.Oracle(h.Dag.Graph, h.NewQueries(queries, -1), h.Successor(), 0)
	for i := range queries {
		l, r := polygon.Answer(left[i]), polygon.Answer(right[i])
		if l == r {
			t.Fatalf("query %d: tangents coincide at %d", i, l)
		}
		// All vertices weakly right of line q→l and weakly left of q→r.
		for _, p := range pts {
			if geom.Orient2D(queries[i], pts[l], p) > 0 {
				t.Fatalf("query %d: vertex beyond the CCW tangent", i)
			}
			if geom.Orient2D(queries[i], pts[r], p) < 0 {
				t.Fatalf("query %d: vertex beyond the CW tangent", i)
			}
		}
	}
}
