// Package polygon implements the planar Dobkin–Kirkpatrick hierarchy: a
// convex polygon coarsened by repeatedly removing every other vertex, turned
// into a hierarchical search DAG (μ = 2 exactly) for batched tangent-point
// determination from external points — the two-dimensional analogue of the
// Theorem 8 tangent-plane application, included because its refinement
// structure is the cleanest illustration of the paper's hierarchical-DAG
// class (Figure 1 with μ = 2).
//
// Refinement lemma used by the successor: seen from an external point q,
// the polar angle of the vertices (measured against any fixed direction
// within the < π wedge the polygon subtends from q) is unimodal along the
// boundary. Refining by re-inserting alternate vertices, the angular
// extremum of P_{i+1} is therefore either the extremum v of P_i or one of
// the (at most two) re-inserted vertices adjacent to v — so each DAG node
// needs only three candidate children.
package polygon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
)

// topMax is the size of the coarsest polygon (all children of the root).
const topMax = 4

// Hierarchy is the 2-D DK search DAG of one convex polygon.
type Hierarchy struct {
	Dag    *graph.HDag
	Pts    []geom.Point2 // polygon vertices, CCW
	Levels int
}

// Payload layout: vertex coordinates and polygon index.
const (
	dataX = iota
	dataY
	dataIdx // index into Pts; -1 at the root
)

// Query state layout.
const (
	StateQX = 0
	StateQY = 1
	stateBX = 2 // base direction (q → polygon interior), fixed per query
	stateBY = 3
	// StateSide selects the tangent: +1 = CCW-most, -1 = CW-most vertex.
	StateSide = 4
	// StateAnswer receives the tangent vertex index.
	StateAnswer = 5
)

// Build constructs the hierarchy of the convex polygon given by its CCW
// vertex cycle (≥ 3 vertices, strictly convex).
func Build(pts []geom.Point2) (*Hierarchy, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("polygon: need ≥ 3 vertices, got %d", n)
	}
	for i := 0; i < n; i++ {
		a, b, c := pts[i], pts[(i+1)%n], pts[(i+2)%n]
		if geom.Orient2D(a, b, c) <= 0 {
			return nil, fmt.Errorf("polygon: not strictly convex CCW at vertex %d", (i+1)%n)
		}
	}
	// Stages: stage 0 = all indices; stage k+1 = every other index of
	// stage k (keeping even positions), down to ≤ topMax.
	var stages [][]int32
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	stages = append(stages, cur)
	for len(cur) > topMax {
		next := make([]int32, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			next = append(next, cur[i])
		}
		stages = append(stages, next)
		cur = next
	}

	m := len(stages) - 1 // coarsest
	levels := m + 2      // + root
	sizes := make([]int, levels)
	start := make([]int, levels)
	sizes[0] = 1
	total := 1
	for i := 1; i < levels; i++ {
		sizes[i] = len(stages[m-(i-1)])
		start[i] = total
		total += sizes[i]
	}
	g := graph.New(total, true)
	nodeAt := make([]map[int32]graph.VertexID, levels)
	for i := 1; i < levels; i++ {
		nodeAt[i] = map[int32]graph.VertexID{}
		for j, pv := range stages[m-(i-1)] {
			id := graph.VertexID(start[i] + j)
			nodeAt[i][pv] = id
			v := &g.Verts[id]
			v.Level = int32(i)
			v.Data[dataX] = pts[pv].X
			v.Data[dataY] = pts[pv].Y
			v.Data[dataIdx] = int64(pv)
		}
	}
	root := &g.Verts[0]
	root.Level = 0
	root.Data[dataIdx] = -1
	for _, pv := range stages[m] {
		g.AddArc(0, nodeAt[1][pv])
	}
	// Stage s (level i) → stage s-1 (level i+1): each survivor links to its
	// own copy plus the two re-inserted boundary neighbours.
	for i := 1; i < levels-1; i++ {
		st := stages[m-(i-1)]
		finer := stages[m-i]
		pos := map[int32]int{}
		for j, pv := range finer {
			pos[pv] = j
		}
		for _, pv := range st {
			id := nodeAt[i][pv]
			j := pos[pv]
			prev := finer[(j-1+len(finer))%len(finer)]
			next := finer[(j+1)%len(finer)]
			g.AddArc(id, nodeAt[i+1][pv])
			for _, w := range []int32{prev, next} {
				if _, survives := nodeAt[i][w]; !survives && w != pv {
					g.AddArc(id, nodeAt[i+1][w])
				}
			}
		}
	}
	mu := 2.0
	d := &graph.HDag{Graph: g, Mu: mu, LevelSizes: sizes, LevelStart: start}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{Dag: d, Pts: pts, Levels: levels}, nil
}

// angleLess reports whether direction u is angularly before w (CW of it),
// valid while both lie within one open half-plane (guaranteed: the polygon
// subtends < π from an external query point).
func angleLess(u, w geom.Point2) bool {
	cross := u.X*w.Y - u.Y*w.X
	if cross != 0 {
		return cross > 0
	}
	// Collinear: nearer point first (any fixed rule; must match BruteTangent).
	return u.X*u.X+u.Y*u.Y < w.X*w.X+w.Y*w.Y
}

// Successor drives one tangent query: among the node's candidate children
// pick the angular extremum in the query's direction of interest.
func (h *Hierarchy) Successor() core.Successor {
	g := h.Dag.Graph
	return func(v graph.Vertex, q *core.Query) (int, bool) {
		if v.Deg == 0 {
			q.State[StateAnswer] = v.Data[dataIdx]
			return 0, true
		}
		qp := geom.Point2{X: q.State[StateQX], Y: q.State[StateQY]}
		ccw := q.State[StateSide] > 0
		best := 0
		bestDir := dirTo(g, v, 0, qp)
		for j := 1; j < int(v.Deg); j++ {
			d := dirTo(g, v, j, qp)
			better := angleLess(bestDir, d)
			if !ccw {
				better = angleLess(d, bestDir)
			}
			if better {
				best, bestDir = j, d
			}
		}
		return best, false
	}
}

func dirTo(g *graph.Graph, v graph.Vertex, slot int, q geom.Point2) geom.Point2 {
	c := &g.Verts[v.Adj[slot]]
	return geom.Point2{X: c.Data[dataX] - q.X, Y: c.Data[dataY] - q.Y}
}

// NewQueries builds tangent queries: for each external point, side +1
// yields the CCW-most (left) tangent vertex, -1 the CW-most (right) one.
func (h *Hierarchy) NewQueries(points []geom.Point2, side int64) []core.Query {
	qs := make([]core.Query, len(points))
	for i, p := range points {
		qs[i].Cur = h.Dag.Root()
		qs[i].State[StateQX] = p.X
		qs[i].State[StateQY] = p.Y
		qs[i].State[StateSide] = side
		qs[i].State[StateAnswer] = -1
	}
	return qs
}

// Answer extracts the tangent vertex index from a finished query.
func Answer(q core.Query) int32 { return int32(q.State[StateAnswer]) }

// BruteTangent returns the angular extremum vertex seen from q (reference).
func (h *Hierarchy) BruteTangent(q geom.Point2, ccw bool) int32 {
	best := int32(0)
	bestDir := geom.Point2{X: h.Pts[0].X - q.X, Y: h.Pts[0].Y - q.Y}
	for i := 1; i < len(h.Pts); i++ {
		d := geom.Point2{X: h.Pts[i].X - q.X, Y: h.Pts[i].Y - q.Y}
		better := angleLess(bestDir, d)
		if !ccw {
			better = angleLess(d, bestDir)
		}
		if better {
			best, bestDir = int32(i), d
		}
	}
	return best
}

// IsTangent verifies exactly that vertex t is a tangent point from q: the
// whole polygon lies (weakly) on one side of the line q–t.
func (h *Hierarchy) IsTangent(q geom.Point2, t int32) bool {
	pos, neg := false, false
	for i := range h.Pts {
		switch geom.Orient2D(q, h.Pts[t], h.Pts[i]) {
		case 1:
			pos = true
		case -1:
			neg = true
		}
	}
	return !(pos && neg)
}
