package interval

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// CountTree answers interval intersection *counting* queries with two
// root-to-leaf descents over directed balanced search trees — the
// α-partitionable application of Theorem 5:
//
//	|{I ∈ S : I ∩ [a,b] ≠ ∅}| = n − #{I : I.Hi < a} − #{I : I.Lo > b}.
//
// Both counts are rank queries over sorted endpoint arrays, each a complete
// binary search tree whose vertices carry (key, #leaves-in-left-subtree).
// One CountTree packs the Hi-rank tree and the Lo-rank tree into a single
// graph (two roots) so a single multisearch run answers both descents: each
// query is issued twice, once per tree.
type CountTree struct {
	G       *graph.Graph
	RootHi  graph.VertexID // search for rank of a among sorted Hi values
	RootLo  graph.VertexID // search for rank of b among sorted Lo values
	N       int
	Height  int
	HiVals  []int64 // sorted
	LoVals  []int64 // sorted
	NumVert int
}

// CountTree payload layout.
const (
	ctKey   = 0 // routing key
	ctLeft  = 1 // number of values in the left subtree
	ctValue = 2 // leaf value (leaves only)
	ctIsHi  = 3 // 1 if the vertex belongs to the Hi tree
)

// CountTree query state layout.
const (
	ctStateNeedle = 0 // the endpoint being ranked
	ctStateCount  = 2 // accumulated count of values < needle
	ctStateDigest = 3
)

// NewCountTree builds the two rank trees over the endpoint multisets.
func NewCountTree(set []Interval) *CountTree {
	n := len(set)
	his := make([]int64, n)
	los := make([]int64, n)
	for i, iv := range set {
		his[i] = iv.Hi
		los[i] = iv.Lo
	}
	sort.Slice(his, func(i, j int) bool { return his[i] < his[j] })
	sort.Slice(los, func(i, j int) bool { return los[i] < los[j] })

	height := 0
	for 1<<height < n {
		height++
	}
	leaves := 1 << height
	perTree := 2*leaves - 1
	g := graph.New(2*perTree, true)
	ct := &CountTree{
		G: g, N: n, Height: height,
		HiVals: his, LoVals: los, NumVert: 2 * perTree,
	}
	build := func(base int, vals []int64, isHi int64) graph.VertexID {
		// Level-major complete binary tree over `leaves` padded leaves.
		pad := make([]int64, leaves)
		copy(pad, vals)
		for i := len(vals); i < leaves; i++ {
			pad[i] = math.MaxInt64 // +∞ padding sorts last, never counted
		}
		id := base
		for lvl := 0; lvl <= height; lvl++ {
			width := leaves >> lvl
			for j := 0; j < (1 << lvl); j++ {
				v := &g.Verts[id]
				v.Level = int32(lvl)
				v.Data[ctIsHi] = isHi
				lo := j * width
				if lvl == height {
					v.Data[ctKey] = pad[lo]
					v.Data[ctValue] = pad[lo]
					if lo < len(vals) {
						v.Data[ctLeft] = 1 // real leaf counts itself
					}
				} else {
					mid := lo + width/2
					v.Data[ctKey] = pad[mid] // min of right subtree
					cnt := int64(0)
					for t := lo; t < mid && t < len(vals); t++ {
						cnt++
					}
					v.Data[ctLeft] = cnt
					childBase := base + (1 << (lvl + 1)) - 1
					g.AddArc(graph.VertexID(id), graph.VertexID(childBase+2*j))
					g.AddArc(graph.VertexID(id), graph.VertexID(childBase+2*j+1))
				}
				id++
			}
		}
		return graph.VertexID(base)
	}
	ct.RootHi = build(0, his, 1)
	ct.RootLo = build(perTree, los, 0)
	return ct
}

// InstallSplitter installs the α-splitter (cut at half height) on both
// trees and returns the combined splitting bound.
func (ct *CountTree) InstallSplitter() int {
	cut := (ct.Height + 1) / 2
	if cut < 1 {
		cut = 1
	}
	// Assign parts manually: part 0 and 1 are the two top trees; subtree
	// roots at depth `cut` of each tree get their own parts.
	next := int32(2)
	maxPart := 0
	sizes := map[int32]int{}
	var assign func(id graph.VertexID, part int32)
	assign = func(id graph.VertexID, part int32) {
		v := &ct.G.Verts[id]
		v.Part = part
		sizes[part]++
		for j := 0; j < int(v.Deg); j++ {
			child := v.Adj[j]
			cp := part
			if int(ct.G.Verts[child].Level) == cut {
				cp = next
				next++
			}
			assign(child, cp)
		}
	}
	assign(ct.RootHi, 0)
	assign(ct.RootLo, 1)
	ct.G.RefreshAdjParts()
	for _, s := range sizes {
		if s > maxPart {
			maxPart = s
		}
	}
	return maxPart
}

// CountSuccessor performs one rank-descent step: count the tree's values
// strictly below the needle, descending by the routing key (the minimum of
// the right subtree). Going right banks the left subtree's count; a real
// leaf banks itself.
func CountSuccessor(v graph.Vertex, q *core.Query) (int, bool) {
	q.State[ctStateDigest] = q.State[ctStateDigest]*1000003 + int64(v.ID) + 1
	needle := q.State[ctStateNeedle]
	if v.Deg == 0 { // leaf
		if v.Data[ctLeft] > 0 && v.Data[ctValue] < needle {
			q.State[ctStateCount]++
		}
		return 0, true
	}
	if needle > v.Data[ctKey] {
		q.State[ctStateCount] += v.Data[ctLeft]
		return 1, false
	}
	return 0, false
}

// NewQueries creates the 2m rank queries for m intersection queries: query
// 2i ranks a_i among Hi values (#Hi < a), query 2i+1 ranks b_i+1 among Lo
// values (#Lo < b+1 = #Lo ≤ b; keys are integers). Both descents run the
// same strict-below successor.
func (ct *CountTree) NewQueries(ranges [][2]int64) []core.Query {
	qs := make([]core.Query, 2*len(ranges))
	for i, r := range ranges {
		qs[2*i].Cur = ct.RootHi
		qs[2*i].State[ctStateNeedle] = r[0] // count Hi < a
		qs[2*i+1].Cur = ct.RootLo
		qs[2*i+1].State[ctStateNeedle] = r[1] + 1 // count Lo < b+1 ⇒ Lo ≤ b
	}
	return qs
}

// Counts combines the finished rank queries into intersection counts.
func (ct *CountTree) Counts(results []core.Query, m int) []int64 {
	out := make([]int64, m)
	for i := 0; i < m; i++ {
		hiBelowA := results[2*i].State[ctStateCount]
		loAtMostB := results[2*i+1].State[ctStateCount]
		// n − #{Hi < a} − #{Lo > b} = n − #{Hi < a} − (n − #{Lo ≤ b}).
		out[i] = loAtMostB - hiBelowA
	}
	return out
}
