// Package interval implements §6 of the paper: interval trees as an
// application of multisearch, supporting the multiple interval intersection
// problem (m intersection queries against a set S of n intervals, answered
// in parallel on the mesh).
//
// Two data structures are provided, exercising both §4 graph classes:
//
//   - CountTree: a directed balanced binary search tree over sorted
//     endpoints, answering intersection *counting* queries with two
//     root-to-leaf rank descents (α-partitionable multisearch, Theorem 5).
//     |[a,b] ∩ S| = n − #{Hi < a} − #{Lo > b}.
//
//   - SearchTree: an undirected balanced tree over the intervals sorted by
//     left endpoint, augmented with subtree maximum right endpoints (the
//     CLRS-style interval tree). An intersection query walks the tree in
//     pruned DFS order — travelling tree edges in both directions, the
//     α-β-partitionable case (Theorem 7) — counting and sampling the
//     intersecting intervals. Walk length is O(log n + k) for output size k.
package interval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi int64
	ID     int32
}

// Intersects reports whether two closed intervals overlap.
func (iv Interval) Intersects(lo, hi int64) bool { return iv.Lo <= hi && iv.Hi >= lo }

// Payload word layout for SearchTree vertices.
const (
	dataLo      = 0 // interval left endpoint (math.MaxInt64 for padding)
	dataHi      = 1 // interval right endpoint (math.MinInt64 for padding)
	dataMaxEndL = 2 // max right endpoint in the left subtree
	dataMaxEndR = 3 // max right endpoint in the right subtree
	dataID      = 4 // interval ID (-1 for padding)
)

// Query state word layout.
const (
	stateLo    = 0 // query interval left endpoint
	stateHi    = 1 // query interval right endpoint
	statePrev  = 2 // vertex visited immediately before the current one
	stateCount = 3 // number of intersecting intervals found
	stateRep0  = 4 // first reported interval ID (-1 if none)
	stateRep1  = 5 // second reported interval ID (-1 if none)
)

// MaxReported is the per-query report capacity of the bounded-reporting
// walk: the first MaxReported intersecting interval IDs (in tree DFS
// order) ride in the query record, the rest are counted. This is the
// O(1)-state form of §6's "reporting the k intervals" — full reporting
// requires Θ(k) output words per query, which no O(1)-state query can
// carry; batched LIMIT-style retrieval is the standard workaround.
const MaxReported = 2

const negInf = math.MinInt64
const posInf = math.MaxInt64

// SearchTree is the undirected augmented interval tree.
type SearchTree struct {
	Tree      *graph.Tree
	Intervals []Interval // sorted by Lo; index = inorder rank
	N         int        // real (non-padding) intervals
}

// NewSearchTree builds the interval tree over the given set. The set is
// padded with +∞ sentinels to the next complete-tree size; height is
// ⌈log₂(n+1)⌉-1 at minimum.
func NewSearchTree(set []Interval) *SearchTree {
	n := len(set)
	if n == 0 {
		panic("interval: empty set")
	}
	ivs := append([]Interval(nil), set...)
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	height := 0
	for (1<<(height+1))-1 < n {
		height++
	}
	full := (1 << (height + 1)) - 1
	for len(ivs) < full {
		ivs = append(ivs, Interval{Lo: posInf, Hi: negInf, ID: -1})
	}
	tr := graph.NewBalancedTree(2, height, false)
	st := &SearchTree{Tree: tr, Intervals: ivs, N: n}
	// Vertex IDs are level-major; assign intervals by inorder rank and
	// compute subtree max-ends bottom-up (deepest level first).
	maxEnd := make([]int64, tr.N())
	for lvl := height; lvl >= 0; lvl-- {
		for j := 0; j < tr.LevelSizes[lvl]; j++ {
			id := graph.VertexID(tr.LevelStart[lvl] + j)
			v := &tr.Verts[id]
			iv := ivs[inorderRank(lvl, j, height)]
			v.Data[dataLo] = iv.Lo
			v.Data[dataHi] = iv.Hi
			v.Data[dataID] = int64(iv.ID)
			me := iv.Hi
			if lvl < height {
				l := graph.VertexID(tr.LevelStart[lvl+1] + 2*j)
				r := l + 1
				v.Data[dataMaxEndL] = maxEnd[l]
				v.Data[dataMaxEndR] = maxEnd[r]
				if maxEnd[l] > me {
					me = maxEnd[l]
				}
				if maxEnd[r] > me {
					me = maxEnd[r]
				}
			} else {
				v.Data[dataMaxEndL] = negInf
				v.Data[dataMaxEndR] = negInf
			}
			maxEnd[id] = me
		}
	}
	return st
}

// inorderRank maps the j-th vertex of depth lvl in a complete binary tree
// of the given height to its inorder index.
func inorderRank(lvl, j, height int) int {
	// In a complete tree, the vertex (lvl, j) has inorder index
	// j·2^(h-lvl+1) + 2^(h-lvl) - 1.
	shift := height - lvl
	return j*(1<<(shift+1)) + (1 << shift) - 1
}

// InstallSplitters installs the Figure-3 α- and β-splitters on the tree for
// Algorithm 3 and returns their part-size bounds. Each splitting is
// normalized (tiny subtree parts grouped to Θ(maxPart), §4.1) so that
// Constrained-Multisearch's copy accounting stays within Lemma 3's O(n).
func (st *SearchTree) InstallSplitters() (s1, s2 graph.Splitting) {
	h := st.Tree.Height
	cut1 := (h + 1) / 3
	cut2 := (2*h + 2) / 3
	if cut1 < 1 {
		cut1 = 1
	}
	if cut2 <= cut1 {
		cut2 = cut1 + 1
	}
	if cut2 > h {
		cut2 = h
	}
	topVsRest := func(p int32) int {
		if p == 0 {
			return 0
		}
		return 1
	}
	s1 = graph.InstallTreeSplitter(st.Tree, cut1, graph.Primary)
	if s1.K*s1.MaxPart > 2*st.Tree.N() {
		s1 = graph.NormalizeParts(st.Tree.Graph, s1, s1.MaxPart, topVsRest)
	}
	s2 = graph.InstallTreeSplitter(st.Tree, cut2, graph.Secondary)
	if s2.K*s2.MaxPart > 2*st.Tree.N() {
		s2 = graph.NormalizeParts(st.Tree.Graph, s2, s2.MaxPart, topVsRest)
	}
	return s1, s2
}

// Successor drives one intersection query as a pruned DFS walk. The query
// arrives at a vertex, decides locally (using the vertex payload and the
// remembered previous vertex) whether to descend left, descend right, or
// retreat to the parent, and counts the intersecting intervals it meets.
func Successor(v graph.Vertex, q *core.Query) (int, bool) {
	lo, hi := q.State[stateLo], q.State[stateHi]
	prev := graph.VertexID(q.State[statePrev])
	q.State[statePrev] = int64(v.ID)

	isRoot := v.Level == 0
	isLeaf := (isRoot && v.Deg == 0) || (!isRoot && v.Deg == 1)
	var parentSlot, leftSlot, rightSlot int
	if isRoot {
		parentSlot = -1
		leftSlot, rightSlot = 0, 1
	} else {
		parentSlot = 0
		leftSlot, rightSlot = 1, 2
	}
	if isLeaf {
		leftSlot, rightSlot = -1, -1
	}

	fromParent := q.Steps == 1 || (!isRoot && prev == v.Adj[parentSlot])
	fromLeft := leftSlot >= 0 && prev == v.Adj[leftSlot] && !fromParent
	goLeft := leftSlot >= 0 && v.Data[dataMaxEndL] >= lo
	goRight := rightSlot >= 0 && v.Data[dataMaxEndR] >= lo && v.Data[dataLo] <= hi

	selfCheck := func() {
		if v.Data[dataID] >= 0 && v.Data[dataLo] <= hi && v.Data[dataHi] >= lo {
			switch q.State[stateCount] {
			case 0:
				q.State[stateRep0] = v.Data[dataID]
			case 1:
				q.State[stateRep1] = v.Data[dataID]
			}
			q.State[stateCount]++
		}
	}
	retreat := func() (int, bool) {
		if isRoot {
			return 0, true
		}
		return parentSlot, false
	}

	switch {
	case fromParent:
		if goLeft {
			return leftSlot, false
		}
		selfCheck()
		if goRight {
			return rightSlot, false
		}
		return retreat()
	case fromLeft:
		selfCheck()
		if goRight {
			return rightSlot, false
		}
		return retreat()
	default: // from the right child
		return retreat()
	}
}

// NewQueries builds intersection queries [lo_i, hi_i] starting at the root.
func (st *SearchTree) NewQueries(ranges [][2]int64) []core.Query {
	qs := make([]core.Query, len(ranges))
	for i, r := range ranges {
		if r[0] > r[1] {
			panic(fmt.Sprintf("interval: query %d has lo > hi", i))
		}
		qs[i].Cur = st.Tree.Root()
		qs[i].State[stateLo] = r[0]
		qs[i].State[stateHi] = r[1]
		qs[i].State[statePrev] = int64(graph.Nil)
		qs[i].State[stateRep0] = -1
		qs[i].State[stateRep1] = -1
	}
	return qs
}

// Count extracts the intersection count from a finished query.
func Count(q core.Query) int64 { return q.State[stateCount] }

// Reported extracts the up-to-MaxReported interval IDs found first (in DFS
// order of the tree) from a finished query.
func Reported(q core.Query) []int32 {
	var out []int32
	for _, w := range []int64{q.State[stateRep0], q.State[stateRep1]} {
		if w >= 0 {
			out = append(out, int32(w))
		}
	}
	return out
}

// ReportAll answers one intersection query sequentially with full output,
// in tree DFS order (reference for the bounded mesh reporting).
func (st *SearchTree) ReportAll(lo, hi int64) []int32 {
	var out []int32
	var walk func(id graph.VertexID)
	walk = func(id graph.VertexID) {
		v := &st.Tree.Verts[id]
		isRoot := v.Level == 0
		isLeaf := (isRoot && v.Deg == 0) || (!isRoot && v.Deg == 1)
		var left, right graph.VertexID = graph.Nil, graph.Nil
		if !isLeaf {
			if isRoot {
				left, right = v.Adj[0], v.Adj[1]
			} else {
				left, right = v.Adj[1], v.Adj[2]
			}
		}
		if left != graph.Nil && v.Data[dataMaxEndL] >= lo {
			walk(left)
		}
		if v.Data[dataID] >= 0 && v.Data[dataLo] <= hi && v.Data[dataHi] >= lo {
			out = append(out, int32(v.Data[dataID]))
		}
		if right != graph.Nil && v.Data[dataMaxEndR] >= lo && v.Data[dataLo] <= hi {
			walk(right)
		}
	}
	walk(st.Tree.Root())
	return out
}

// BruteCount counts intersections directly — the independent reference.
func BruteCount(set []Interval, lo, hi int64) int64 {
	var c int64
	for _, iv := range set {
		if iv.Intersects(lo, hi) {
			c++
		}
	}
	return c
}
