package interval_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/mesh"
)

func randomSet(n int, span int64, rng *rand.Rand) []interval.Interval {
	set := make([]interval.Interval, n)
	for i := range set {
		lo := rng.Int63n(span)
		hi := lo + rng.Int63n(span/4+1)
		set[i] = interval.Interval{Lo: lo, Hi: hi, ID: int32(i)}
	}
	return set
}

func randomRanges(m int, span int64, rng *rand.Rand) [][2]int64 {
	rs := make([][2]int64, m)
	for i := range rs {
		lo := rng.Int63n(span)
		rs[i] = [2]int64{lo, lo + rng.Int63n(span/8+1)}
	}
	return rs
}

func TestSearchTreeOracleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(200, 1000, rng)
	st := interval.NewSearchTree(set)
	ranges := randomRanges(100, 1000, rng)
	qs := st.NewQueries(ranges)
	out := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)
	for i, q := range out {
		want := interval.BruteCount(set, ranges[i][0], ranges[i][1])
		if got := interval.Count(q); got != want {
			t.Fatalf("query %d [%d,%d]: count %d want %d", i, ranges[i][0], ranges[i][1], got, want)
		}
		if !q.Done {
			t.Fatalf("query %d did not finish", i)
		}
	}
}

func TestSearchTreeWalkLengthIsLogPlusOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set := randomSet(500, 100000, rng)
	st := interval.NewSearchTree(set)
	ranges := randomRanges(200, 100000, rng)
	qs := st.NewQueries(ranges)
	out := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)
	h := st.Tree.Height
	for i, q := range out {
		k := interval.Count(q)
		// The pruned DFS visits O((k+1)·log n) vertices.
		if int64(q.Steps) > (k+2)*int64(4*h+4) {
			t.Fatalf("query %d: %d steps for k=%d (h=%d)", i, q.Steps, k, h)
		}
	}
}

func TestSearchTreeOnMeshMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set := randomSet(180, 5000, rng)
	st := interval.NewSearchTree(set)
	s1, s2 := st.InstallSplitters()
	ranges := randomRanges(250, 5000, rng)
	qs := st.NewQueries(ranges)
	want := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)

	m := mesh.New(16)
	in := core.NewInstance(m, st.Tree.Graph, qs, interval.Successor)
	core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 2000)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	for i, q := range in.ResultQueries() {
		if got, want := interval.Count(q), interval.BruteCount(set, ranges[i][0], ranges[i][1]); got != want {
			t.Fatalf("query %d count %d want %d", i, got, want)
		}
	}
}

func TestSearchTreeSplitterDistance(t *testing.T) {
	set := randomSet(300, 1000, rand.New(rand.NewSource(4)))
	st := interval.NewSearchTree(set)
	st.InstallSplitters()
	if d := graph.SplitterDistance(st.Tree.Graph); d < 1 {
		t.Fatalf("splitter distance %d", d)
	}
}

func TestCountTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(300, 2000, rng)
	ct := interval.NewCountTree(set)
	if err := ct.G.Validate(); err != nil {
		t.Fatal(err)
	}
	ranges := randomRanges(150, 2000, rng)
	qs := ct.NewQueries(ranges)
	out := core.Oracle(ct.G, qs, interval.CountSuccessor, 0)
	counts := ct.Counts(out, len(ranges))
	for i, r := range ranges {
		if want := interval.BruteCount(set, r[0], r[1]); counts[i] != want {
			t.Fatalf("query %d [%d,%d]: %d want %d", i, r[0], r[1], counts[i], want)
		}
	}
}

func TestCountTreeOnMeshMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set := randomSet(120, 3000, rng)
	ct := interval.NewCountTree(set)
	maxPart := ct.InstallSplitter()
	if err := graph.ValidateAlphaPartitionable(ct.G); err != nil {
		t.Fatal(err)
	}
	ranges := randomRanges(120, 3000, rng)
	qs := ct.NewQueries(ranges)
	want := core.Oracle(ct.G, qs, interval.CountSuccessor, 0)

	m := mesh.New(32)
	in := core.NewInstance(m, ct.G, qs, interval.CountSuccessor)
	core.MultisearchAlpha(m.Root(), in, maxPart, 500)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	counts := ct.Counts(in.ResultQueries(), len(ranges))
	for i, r := range ranges {
		if wantC := interval.BruteCount(set, r[0], r[1]); counts[i] != wantC {
			t.Fatalf("query %d: %d want %d", i, counts[i], wantC)
		}
	}
}

func TestBoundedReportingMatchesReportAll(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	set := randomSet(300, 2000, rng)
	st := interval.NewSearchTree(set)
	ranges := randomRanges(200, 2000, rng)
	qs := st.NewQueries(ranges)
	out := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)
	for i, q := range out {
		full := st.ReportAll(ranges[i][0], ranges[i][1])
		if int64(len(full)) != interval.Count(q) {
			t.Fatalf("query %d: ReportAll %d vs count %d", i, len(full), interval.Count(q))
		}
		rep := interval.Reported(q)
		wantRep := len(full)
		if wantRep > interval.MaxReported {
			wantRep = interval.MaxReported
		}
		if len(rep) != wantRep {
			t.Fatalf("query %d: %d reported want %d", i, len(rep), wantRep)
		}
		for j, id := range rep {
			if id != full[j] {
				t.Fatalf("query %d: reported[%d]=%d want %d (DFS order)", i, j, id, full[j])
			}
		}
		// Every reported ID genuinely intersects.
		for _, id := range rep {
			if !setByID(set, id).Intersects(ranges[i][0], ranges[i][1]) {
				t.Fatalf("query %d: reported non-intersecting interval %d", i, id)
			}
		}
	}
}

func setByID(set []interval.Interval, id int32) interval.Interval {
	for _, iv := range set {
		if iv.ID == id {
			return iv
		}
	}
	panic("unknown id")
}

func TestBoundedReportingOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	set := randomSet(150, 3000, rng)
	st := interval.NewSearchTree(set)
	s1, s2 := st.InstallSplitters()
	ranges := randomRanges(200, 3000, rng)
	qs := st.NewQueries(ranges)
	want := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)
	m := mesh.New(16)
	in := core.NewInstance(m, st.Tree.Graph, qs, interval.Successor)
	core.MultisearchAlphaBeta(m.Root(), in, s1.MaxPart, s2.MaxPart, 0)
	if err := core.SameOutcome(want, in.ResultQueries()); err != nil {
		t.Fatal(err)
	}
	for i, q := range in.ResultQueries() {
		full := st.ReportAll(ranges[i][0], ranges[i][1])
		rep := interval.Reported(q)
		for j, id := range rep {
			if id != full[j] {
				t.Fatalf("mesh query %d: reported[%d]=%d want %d", i, j, id, full[j])
			}
		}
	}
}

func TestIntervalIntersects(t *testing.T) {
	iv := interval.Interval{Lo: 5, Hi: 10}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 4, false}, {0, 5, true}, {10, 20, true}, {11, 20, false},
		{6, 7, true}, {0, 20, true}, {5, 5, true}, {10, 10, true},
	}
	for _, c := range cases {
		if iv.Intersects(c.lo, c.hi) != c.want {
			t.Fatalf("[5,10] vs [%d,%d]", c.lo, c.hi)
		}
	}
}

func TestNewQueriesRejectsInverted(t *testing.T) {
	set := randomSet(10, 100, rand.New(rand.NewSource(7)))
	st := interval.NewSearchTree(set)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.NewQueries([][2]int64{{5, 3}})
}

func TestSearchTreeSingleInterval(t *testing.T) {
	st := interval.NewSearchTree([]interval.Interval{{Lo: 3, Hi: 7, ID: 0}})
	qs := st.NewQueries([][2]int64{{0, 2}, {4, 5}, {8, 9}})
	out := core.Oracle(st.Tree.Graph, qs, interval.Successor, 0)
	wants := []int64{0, 1, 0}
	for i, q := range out {
		if interval.Count(q) != wants[i] {
			t.Fatalf("query %d count %d want %d", i, interval.Count(q), wants[i])
		}
	}
}

// Property: for arbitrary small interval sets and queries, the tree count
// equals brute force (both data structures).
func TestQuickBothTreesMatchBrute(t *testing.T) {
	f := func(rawSet [15][2]uint8, rawQ [8][2]uint8) bool {
		set := make([]interval.Interval, len(rawSet))
		for i, r := range rawSet {
			lo := int64(r[0])
			set[i] = interval.Interval{Lo: lo, Hi: lo + int64(r[1]%32), ID: int32(i)}
		}
		ranges := make([][2]int64, len(rawQ))
		for i, r := range rawQ {
			lo := int64(r[0])
			ranges[i] = [2]int64{lo, lo + int64(r[1]%32)}
		}
		st := interval.NewSearchTree(set)
		ct := interval.NewCountTree(set)
		sq := core.Oracle(st.Tree.Graph, st.NewQueries(ranges), interval.Successor, 0)
		cq := core.Oracle(ct.G, ct.NewQueries(ranges), interval.CountSuccessor, 0)
		counts := ct.Counts(cq, len(ranges))
		for i, r := range ranges {
			want := interval.BruteCount(set, r[0], r[1])
			if interval.Count(sq[i]) != want || counts[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
