package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// SLO is the predicate a sustainable rate must satisfy over a whole probe
// run: answered-query p99 latency under P99, degraded fraction (of answered)
// at most MaxDegraded, rejected+shed fraction (of offered) at most
// MaxRejected, and no failed or oracle-mismatched queries at all. Under a
// mixed-kind workload every clause is also evaluated against each kind's own
// aggregate — a minority kind's blown p99 must fail the probe even when the
// majority kind drags the combined percentile under the target.
type SLO struct {
	P99         time.Duration `json:"p99_ns"`
	MaxDegraded float64       `json:"max_degraded_frac"`
	MaxRejected float64       `json:"max_rejected_frac"`
	// PerKind overrides the clause set for the named kind's aggregate
	// (e.g. a looser p99 for point location); kinds without an entry are
	// held to the top-level clauses.
	PerKind map[string]SLO `json:"per_kind,omitempty"`
}

// Pass evaluates the SLO against a run's aggregate — and, per kind, against
// each kind's slice of it — returning the first violated clause for the
// knee report.
func (slo SLO) Pass(r *Report) (bool, string) {
	if ok, reason := slo.passWindow("", r.Total); !ok {
		return false, reason
	}
	if len(r.Kinds) > 1 || len(slo.PerKind) > 0 {
		for _, kname := range sortedKindNames(r.Kinds) {
			ks := slo
			if over, ok := slo.PerKind[kname]; ok {
				over.PerKind = nil
				ks = over
			}
			if ok, reason := ks.passWindow(kname, *r.Kinds[kname]); !ok {
				return false, reason
			}
		}
	}
	return true, ""
}

// passWindow checks one aggregate (the run total, or one kind's slice —
// label prefixes the violation for the knee report).
func (slo SLO) passWindow(label string, t WindowStats) (bool, string) {
	pfx := ""
	if label != "" {
		pfx = label + ": "
	}
	if t.Mismatched > 0 {
		return false, fmt.Sprintf("%s%d answers disagreed with the host oracle", pfx, t.Mismatched)
	}
	if t.Failed > 0 {
		return false, fmt.Sprintf("%s%d queries failed", pfx, t.Failed)
	}
	if t.Offered > 0 {
		if frac := float64(t.Rejected+t.Shed) / float64(t.Offered); frac > slo.MaxRejected {
			return false, fmt.Sprintf("%srejected %.2f%% > %.2f%%", pfx, 100*frac, 100*slo.MaxRejected)
		}
	}
	if t.Answered > 0 {
		if frac := float64(t.Degraded) / float64(t.Answered); frac > slo.MaxDegraded {
			return false, fmt.Sprintf("%sdegraded %.2f%% > %.2f%%", pfx, 100*frac, 100*slo.MaxDegraded)
		}
	}
	if slo.P99 > 0 && t.P99 > slo.P99 {
		return false, fmt.Sprintf("%sp99 %v > %v", pfx, t.P99, slo.P99)
	}
	return true, ""
}

// sortedKindNames gives deterministic clause-evaluation (and so violation-
// reporting) order.
func sortedKindNames(m map[string]*WindowStats) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Probe is one saturation measurement: the offered rate and how the run
// fared against the SLO.
type Probe struct {
	Rate        float64       `json:"rate_qps"`
	Pass        bool          `json:"pass"`
	Reason      string        `json:"reason,omitempty"`
	AchievedQPS float64       `json:"achieved_qps"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	P99         time.Duration `json:"p99_ns"`
	P999        time.Duration `json:"p999_ns"`
	Degraded    float64       `json:"degraded_frac"`
	Rejected    float64       `json:"rejected_frac"`
}

// KneeReport is the saturation search's result: every probe in order, and
// the knee — the highest probed rate that still met the SLO.
type KneeReport struct {
	SLO    SLO     `json:"slo"`
	Probes []Probe `json:"probes"`
	Knee   float64 `json:"knee_qps"`
	// Capped means the search hit maxRate while still passing: the true
	// knee is at or above Knee, not bracketed.
	Capped bool `json:"capped,omitempty"`
}

// Saturate binary-searches the maximum sustainable offered rate under the
// SLO. run executes one probe at the given rate (fresh arrival plan, same
// server) and returns its report. The search doubles from start until the
// SLO breaks (or max is reached), then bisects the bracket `bisections`
// times; the knee is the highest passing rate observed.
func Saturate(run func(rate float64) (*Report, error), start, max float64, bisections int, slo SLO) (*KneeReport, error) {
	if start <= 0 || max < start {
		return nil, fmt.Errorf("loadgen: saturation needs 0 < start ≤ max (got start=%g max=%g)", start, max)
	}
	if bisections < 0 {
		bisections = 0
	}
	out := &KneeReport{SLO: slo}
	probe := func(rate float64) (bool, error) {
		rep, err := run(rate)
		if err != nil {
			return false, fmt.Errorf("loadgen: probe at %g qps: %w", rate, err)
		}
		pass, reason := slo.Pass(rep)
		t := rep.Total
		p := Probe{
			Rate: rate, Pass: pass, Reason: reason,
			AchievedQPS: t.AchievedQPS,
			P50:         t.P50, P95: t.P95, P99: t.P99, P999: t.P999,
		}
		if t.Offered > 0 {
			p.Rejected = float64(t.Rejected+t.Shed) / float64(t.Offered)
		}
		if t.Answered > 0 {
			p.Degraded = float64(t.Degraded) / float64(t.Answered)
		}
		out.Probes = append(out.Probes, p)
		return pass, nil
	}

	// Exponential growth phase: find a failing bracket [lo passing, hi failing].
	lo, hi := 0.0, 0.0
	rate := start
	for {
		pass, err := probe(rate)
		if err != nil {
			return nil, err
		}
		if !pass {
			hi = rate
			break
		}
		lo = rate
		if rate >= max {
			out.Knee = lo
			out.Capped = true
			return out, nil
		}
		rate *= 2
		if rate > max {
			rate = max
		}
	}

	// Bisection phase. A relative gap under 5% is inside measurement noise.
	for i := 0; i < bisections && hi-lo > 0.05*hi; i++ {
		mid := (lo + hi) / 2
		pass, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if pass {
			lo = mid
		} else {
			hi = mid
		}
	}
	out.Knee = lo
	return out, nil
}
