package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Generate materializes an arrival plan: every arrival the process emits,
// paired with a needle from the popularity draw. The result is the unit of
// record/replay — a run is a pure function of its event slice, so replaying
// the slice reproduces the answer stream. max bounds the plan size (a rate
// schedule is user input; a typo must not OOM the harness).
func Generate(a *Arrivals, k KeyDraw, max int) ([]TraceEvent, error) {
	if max <= 0 {
		max = 2_000_000
	}
	var events []TraceEvent
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		if len(events) >= max {
			return nil, fmt.Errorf("loadgen: schedule generates more than %d arrivals; lower the rate or raise the cap", max)
		}
		events = append(events, TraceEvent{I: len(events), AtNS: int64(at), Needle: k.Draw()})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("loadgen: schedule produced no arrivals")
	}
	return events, nil
}

// Config drives one open-loop run.
type Config struct {
	// Server is the in-process target, already serving. Optional when
	// Lookup is set instead.
	Server *serve.Server
	// Lookup is the pluggable target seam: one query against whatever is
	// being driven — an in-process instance, a fleet, or a remote server
	// over HTTP (HTTPTarget). Ignored when Server is set.
	Lookup func(ctx context.Context, needle int64) (serve.Result, error)
	// Stats samples the target's serving counters at window boundaries for
	// the per-window sim-steps gauge. Optional with Lookup (a remote target
	// may not expose counters); derived from Server when it is set.
	Stats func() serve.Stats
	// Events is the materialized arrival plan (Generate or a replayed
	// trace). Run fills each event's answer fields in place.
	Events []TraceEvent
	// Window is the reporting bucket width (default 1s).
	Window time.Duration
	// Deadline bounds each lookup (default 5s; ≤0 keeps the default —
	// an open-loop run must never block forever on one query).
	Deadline time.Duration
	// MaxInFlight caps concurrent outstanding lookups (default 4096). When
	// the cap is hit the arrival is shed client-side and counted — blocking
	// would silently turn the generator closed-loop.
	MaxInFlight int
	// Stages samples the target observer's per-stage wall-clock counters at
	// window boundaries (obs.Observer.Stages), so each reporting window
	// decomposes its latency by lifecycle stage — queue wait vs linger vs
	// mesh vs backoff vs failover. Optional; nil leaves the breakdown empty.
	Stages func() obs.StageSnapshot
	// Contains is the host oracle for answer checking; nil disables checks.
	Contains func(int64) bool
}

// Outcome classifies one arrival's fate.
type outcome struct {
	status   uint8
	latNS    int64
	pathLen  int32
	mismatch bool
}

const (
	outcomeOK       = iota // answered by a mesh round
	outcomeDegraded        // answered by the host oracle (still correct)
	outcomeRejected        // ErrOverloaded from admission
	outcomeShed            // shed client-side at MaxInFlight
	outcomeFailed          // any other error (round fault, deadline)
)

// WindowStats aggregates one reporting window (and, for Total, the whole
// run). Quantiles come from the shared fixed-boundary histogram
// (serve.Histogram); offered is by arrival time, so a query is attributed
// to the window that offered it even if it completed later.
type WindowStats struct {
	Start      time.Duration `json:"start_ns"`
	Offered    int64         `json:"offered"`
	Answered   int64         `json:"answered"` // mesh-served + degraded
	Rejected   int64         `json:"rejected"`
	Shed       int64         `json:"shed"`
	Failed     int64         `json:"failed"`
	Degraded   int64         `json:"degraded"`
	Mismatched int64         `json:"mismatched"`

	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`

	// MeanPathSteps is the mean search-path length of answered queries (the
	// per-query cost the paper's tree height bounds); SimStepsPerQuery is
	// simulated mesh steps per mesh-served query over the window, from the
	// server's own counters sampled at window boundaries.
	MeanPathSteps    float64 `json:"mean_path_steps"`
	SimStepsPerQuery float64 `json:"sim_steps_per_query"`

	// StageNS decomposes the window's latency by lifecycle stage: mean
	// wall-clock nanoseconds spent per answered query in each stage (from
	// the observer's counters sampled at window boundaries; only stages with
	// time in this window appear). Requires Config.Stages.
	StageNS map[string]float64 `json:"stage_ns,omitempty"`
}

// Report is the result of one open-loop run.
type Report struct {
	Windows []WindowStats `json:"windows"`
	Total   WindowStats   `json:"total"`
	// Digest is a SHA-256 over the answered events in arrival order
	// (needle, membership, leaf, path length): two runs with identical
	// digests produced identical answer streams.
	Digest string        `json:"answer_digest"`
	Wall   time.Duration `json:"wall_ns"`
}

func (cfg Config) check() error {
	if cfg.Server == nil && cfg.Lookup == nil {
		return fmt.Errorf("loadgen: Config needs a target (Server or Lookup)")
	}
	if len(cfg.Events) == 0 {
		return fmt.Errorf("loadgen: no events to run")
	}
	return nil
}

// target resolves the pluggable seam: the lookup function and a stats
// sampler (zero-valued when the target exposes none — per-window sim-steps
// then report 0, everything else still works).
func (cfg Config) target() (func(context.Context, int64) (serve.Result, error), func() serve.Stats) {
	lookup, stats := cfg.Lookup, cfg.Stats
	if cfg.Server != nil {
		lookup, stats = cfg.Server.Lookup, cfg.Server.Stats
	}
	if stats == nil {
		stats = func() serve.Stats { return serve.Stats{} }
	}
	return lookup, stats
}

// Run plays the arrival plan against the server: open loop, each arrival
// fired at its scheduled offset regardless of outstanding queries. The hot
// path does no per-query allocation beyond the one goroutine per in-flight
// lookup — outcomes land in a preallocated slice, latency quantiles come
// from fixed-boundary histograms built at report time.
func Run(cfg Config) (*Report, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	window := cfg.Window
	if window <= 0 {
		window = time.Second
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 5 * time.Second
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}

	lookup, stats := cfg.target()
	events := cfg.Events
	outcomes := make([]outcome, len(events))
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup

	// Sample the target's counters at window boundaries so per-window
	// sim-steps/query can be computed from deltas (the counters are global;
	// boundary samples attribute them to windows to histogram precision).
	lastAt := time.Duration(events[len(events)-1].AtNS)
	numWindows := int(lastAt/window) + 1
	sampleStages := cfg.Stages
	if sampleStages == nil {
		sampleStages = func() obs.StageSnapshot { return obs.StageSnapshot{} }
	}
	boundarySamples := make([]serve.Stats, 0, numWindows+1)
	boundarySamples = append(boundarySamples, stats())
	stageSamples := make([]obs.StageSnapshot, 0, numWindows+1)
	stageSamples = append(stageSamples, sampleStages())
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(window)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if len(boundarySamples) <= numWindows {
					boundarySamples = append(boundarySamples, stats())
					stageSamples = append(stageSamples, sampleStages())
				}
			case <-samplerStop:
				return
			}
		}
	}()

	start := time.Now()
	for i := range events {
		ev := &events[i]
		if wait := time.Duration(ev.AtNS) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case sem <- struct{}{}:
		default:
			outcomes[i].status = outcomeShed
			continue
		}
		wg.Add(1)
		go func(ev *TraceEvent, o *outcome) {
			defer wg.Done()
			defer func() { <-sem }()
			qctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			qstart := time.Now()
			res, err := lookup(qctx, ev.Needle)
			o.latNS = time.Since(qstart).Nanoseconds()
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				o.status = outcomeRejected
			case err != nil:
				o.status = outcomeFailed
			default:
				ev.OK, ev.Found, ev.Leaf, ev.Steps = true, res.Found, res.LeafKey, res.Steps
				o.pathLen = res.Steps
				if cfg.Contains != nil &&
					(res.Found != cfg.Contains(ev.Needle) || (res.Found && res.LeafKey != ev.Needle)) {
					o.mismatch = true
				}
				if res.Degraded {
					o.status = outcomeDegraded
				} else {
					o.status = outcomeOK
				}
			}
		}(ev, &outcomes[i])
	}
	wg.Wait()
	wall := time.Since(start)
	close(samplerStop)
	<-samplerDone
	boundarySamples = append(boundarySamples, stats())
	stageSamples = append(stageSamples, sampleStages())

	return buildReport(events, outcomes, boundarySamples, stageSamples, window, wall), nil
}

func buildReport(events []TraceEvent, outcomes []outcome, samples []serve.Stats, stageSamples []obs.StageSnapshot, window time.Duration, wall time.Duration) *Report {
	lastAt := time.Duration(events[len(events)-1].AtNS)
	numWindows := int(lastAt/window) + 1
	hists := make([]*serve.Histogram, numWindows)
	var totalHist serve.Histogram
	wins := make([]WindowStats, numWindows)
	var total WindowStats
	var totalPath int64
	winPath := make([]int64, numWindows)
	for i := range events {
		w := int(time.Duration(events[i].AtNS) / window)
		ws := &wins[w]
		o := &outcomes[i]
		ws.Offered++
		total.Offered++
		switch o.status {
		case outcomeOK, outcomeDegraded:
			ws.Answered++
			total.Answered++
			if o.status == outcomeDegraded {
				ws.Degraded++
				total.Degraded++
			}
			if hists[w] == nil {
				hists[w] = &serve.Histogram{}
			}
			hists[w].Observe(time.Duration(o.latNS))
			totalHist.Observe(time.Duration(o.latNS))
			winPath[w] += int64(o.pathLen)
			totalPath += int64(o.pathLen)
		case outcomeRejected:
			ws.Rejected++
			total.Rejected++
		case outcomeShed:
			ws.Shed++
			total.Shed++
		case outcomeFailed:
			ws.Failed++
			total.Failed++
		}
		if o.mismatch {
			ws.Mismatched++
			total.Mismatched++
		}
	}

	winSecs := window.Seconds()
	for w := range wins {
		ws := &wins[w]
		ws.Start = time.Duration(w) * window
		ws.OfferedQPS = float64(ws.Offered) / winSecs
		ws.AchievedQPS = float64(ws.Answered) / winSecs
		if hists[w] != nil {
			fillQuantiles(ws, hists[w].Snapshot())
		}
		if ws.Answered > 0 {
			ws.MeanPathSteps = float64(winPath[w]) / float64(ws.Answered)
		}
		// Per-window mesh steps from the boundary samples: sample w is the
		// state at the window's start, w+1 at its end (clamped — the run
		// tail may outlive the last full window).
		lo, hi := w, w+1
		if hi >= len(samples) {
			hi = len(samples) - 1
		}
		if lo < hi {
			dSteps := samples[hi].SimSteps - samples[lo].SimSteps
			dMesh := (samples[hi].Served - samples[hi].Degraded) - (samples[lo].Served - samples[lo].Degraded)
			if dMesh > 0 {
				ws.SimStepsPerQuery = float64(dSteps) / float64(dMesh)
			}
			if hi < len(stageSamples) {
				ws.StageNS = stageBreakdown(stageSamples[lo], stageSamples[hi], ws.Answered)
			}
		}
	}

	wallSecs := wall.Seconds()
	if wallSecs <= 0 {
		wallSecs = winSecs
	}
	total.OfferedQPS = float64(total.Offered) / wallSecs
	total.AchievedQPS = float64(total.Answered) / wallSecs
	fillQuantiles(&total, totalHist.Snapshot())
	if total.Answered > 0 {
		total.MeanPathSteps = float64(totalPath) / float64(total.Answered)
	}
	first, last := samples[0], samples[len(samples)-1]
	if dMesh := (last.Served - last.Degraded) - (first.Served - first.Degraded); dMesh > 0 {
		total.SimStepsPerQuery = float64(last.SimSteps-first.SimSteps) / float64(dMesh)
	}
	if len(stageSamples) > 0 {
		total.StageNS = stageBreakdown(stageSamples[0], stageSamples[len(stageSamples)-1], total.Answered)
	}

	return &Report{Windows: wins, Total: total, Digest: Digest(events), Wall: wall}
}

// stageBreakdown turns two boundary samples of the observer's per-stage
// counters into mean nanoseconds per answered query for each stage that
// accumulated time in between. Stage time is attributed to windows at
// boundary-sample precision, same as SimStepsPerQuery.
func stageBreakdown(lo, hi obs.StageSnapshot, answered int64) map[string]float64 {
	if answered <= 0 {
		return nil
	}
	var out map[string]float64
	for i, name := range obs.StageNames() {
		d := hi.SumNS[i] - lo.SumNS[i]
		if d <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64, len(obs.StageNames()))
		}
		out[name] = float64(d) / float64(answered)
	}
	return out
}

func fillQuantiles(ws *WindowStats, snap serve.HistSnapshot) {
	ws.P50 = snap.Quantile(0.50)
	ws.P95 = snap.Quantile(0.95)
	ws.P99 = snap.Quantile(0.99)
	ws.P999 = snap.Quantile(0.999)
	ws.Max = time.Duration(snap.Max)
}

// Digest hashes the answered events in arrival order. Two runs over the
// same plan with equal digests produced byte-identical answer streams.
func Digest(events []TraceEvent) string {
	h := sha256.New()
	for i := range events {
		ev := &events[i]
		if !ev.OK {
			continue
		}
		fmt.Fprintf(h, "%d:%d:%t:%d:%d\n", ev.I, ev.Needle, ev.Found, ev.Leaf, ev.Steps)
	}
	return hex.EncodeToString(h.Sum(nil))
}
