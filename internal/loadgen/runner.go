package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Generate materializes a membership-only arrival plan: every arrival the
// process emits, paired with a needle from the popularity draw. The result
// is the unit of record/replay — a run is a pure function of its event
// slice, so replaying the slice reproduces the answer stream. max bounds the
// plan size (a rate schedule is user input; a typo must not OOM the
// harness). Mixed-kind plans come from GenerateMix.
func Generate(a *Arrivals, k KeyDraw, max int) ([]TraceEvent, error) {
	if max <= 0 {
		max = 2_000_000
	}
	var events []TraceEvent
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		if len(events) >= max {
			return nil, fmt.Errorf("loadgen: schedule generates more than %d arrivals; lower the rate or raise the cap", max)
		}
		needle := k.Draw()
		events = append(events, TraceEvent{I: len(events), AtNS: int64(at), Needle: needle, Args: serve.Args{needle}})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("loadgen: schedule produced no arrivals")
	}
	return events, nil
}

// Config drives one open-loop run.
type Config struct {
	// Server is the in-process target, already serving. Optional when
	// Lookup is set instead.
	Server *serve.Server
	// LookupKind is the pluggable target seam: one typed query against
	// whatever is being driven — an in-process instance, a fleet, or a
	// remote server over HTTP (HTTPTarget). Ignored when Server is set.
	LookupKind func(ctx context.Context, kind serve.Kind, args serve.Args) (serve.Result, error)
	// Lookup is the membership-only seam kept for pre-kind targets; a plan
	// containing any other kind needs LookupKind (or Server). Ignored when
	// Server or LookupKind is set.
	Lookup func(ctx context.Context, needle int64) (serve.Result, error)
	// Stats samples the target's serving counters at window boundaries for
	// the per-window sim-steps gauge. Optional with Lookup (a remote target
	// may not expose counters); derived from Server when it is set.
	Stats func() serve.Stats
	// Events is the materialized arrival plan (Generate or a replayed
	// trace). Run fills each event's answer fields in place.
	Events []TraceEvent
	// Window is the reporting bucket width (default 1s).
	Window time.Duration
	// Deadline bounds each lookup (default 5s; ≤0 keeps the default —
	// an open-loop run must never block forever on one query).
	Deadline time.Duration
	// MaxInFlight caps concurrent outstanding lookups (default 4096). When
	// the cap is hit the arrival is shed client-side and counted — blocking
	// would silently turn the generator closed-loop.
	MaxInFlight int
	// Stages samples the target observer's per-stage wall-clock counters at
	// window boundaries (obs.Observer.Stages), so each reporting window
	// decomposes its latency by lifecycle stage — queue wait vs linger vs
	// mesh vs backoff vs failover. Optional; nil leaves the breakdown empty.
	Stages func() obs.StageSnapshot
	// Check is the per-kind answer check (true = the answer matches the
	// host oracle); StructureChecker builds one from a serve.StructureSet.
	// Nil falls back to Contains for membership events.
	Check func(kind serve.Kind, args serve.Args, res serve.Result) bool
	// Contains is the membership-only host oracle kept for pre-kind
	// callers; nil (with nil Check) disables checks.
	Contains func(int64) bool
}

// Outcome classifies one arrival's fate.
type outcome struct {
	status   uint8
	latNS    int64
	pathLen  int32
	mismatch bool
}

const (
	outcomeOK       = iota // answered by a mesh round
	outcomeDegraded        // answered by the host oracle (still correct)
	outcomeRejected        // ErrOverloaded from admission
	outcomeShed            // shed client-side at MaxInFlight or server-side on budget
	outcomeFailed          // any other error (round fault, deadline)
)

// outcomeNames are the wire names recorded on v2 trace events and folded
// into the answer digest.
var outcomeNames = [...]string{
	outcomeOK:       "ok",
	outcomeDegraded: "degraded",
	outcomeRejected: "rejected",
	outcomeShed:     "shed",
	outcomeFailed:   "failed",
}

// WindowStats aggregates one reporting window (and, for Total, the whole
// run). Quantiles come from the shared fixed-boundary histogram
// (serve.Histogram); offered is by arrival time, so a query is attributed
// to the window that offered it even if it completed later.
type WindowStats struct {
	Start      time.Duration `json:"start_ns"`
	Offered    int64         `json:"offered"`
	Answered   int64         `json:"answered"` // mesh-served + degraded
	Rejected   int64         `json:"rejected"`
	Shed       int64         `json:"shed"`
	Failed     int64         `json:"failed"`
	Degraded   int64         `json:"degraded"`
	Mismatched int64         `json:"mismatched"`

	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`

	// MeanPathSteps is the mean search-path length of answered queries (the
	// per-query cost the paper's tree height bounds); SimStepsPerQuery is
	// simulated mesh steps per mesh-served query over the window, from the
	// server's own counters sampled at window boundaries.
	MeanPathSteps    float64 `json:"mean_path_steps"`
	SimStepsPerQuery float64 `json:"sim_steps_per_query"`

	// StageNS decomposes the window's latency by lifecycle stage: mean
	// wall-clock nanoseconds spent per answered query in each stage (from
	// the observer's counters sampled at window boundaries; only stages with
	// time in this window appear). Requires Config.Stages.
	StageNS map[string]float64 `json:"stage_ns,omitempty"`
}

// Report is the result of one open-loop run.
type Report struct {
	Windows []WindowStats `json:"windows"`
	Total   WindowStats   `json:"total"`
	// Kinds aggregates the whole run per query kind — the split the mixed-
	// workload SLO clauses evaluate, so one slow or wrong family cannot
	// hide inside the combined totals.
	Kinds map[string]*WindowStats `json:"kinds,omitempty"`
	// Digest is a v2 SHA-256 over every event in arrival order — kind,
	// typed arguments, outcome, and the answer (found, leaf, value, aux,
	// steps). Folding the outcome in means two runs that produced the same
	// answers by different paths (mesh vs degraded, rejected vs shed) no
	// longer hash identically, which the pre-v2 answers-only digest
	// silently allowed.
	Digest string        `json:"answer_digest"`
	Wall   time.Duration `json:"wall_ns"`
}

func (cfg Config) check() error {
	if cfg.Server == nil && cfg.LookupKind == nil && cfg.Lookup == nil {
		return fmt.Errorf("loadgen: Config needs a target (Server, LookupKind, or Lookup)")
	}
	if len(cfg.Events) == 0 {
		return fmt.Errorf("loadgen: no events to run")
	}
	if cfg.Server == nil && cfg.LookupKind == nil {
		for i := range cfg.Events {
			if cfg.Events[i].Kind != serve.KindMembership {
				return fmt.Errorf("loadgen: event %d is kind %s but the target only supports membership (set LookupKind)",
					i, cfg.Events[i].Kind)
			}
		}
	}
	return nil
}

// target resolves the pluggable seam: the kind-typed lookup function and a
// stats sampler (zero-valued when the target exposes none — per-window
// sim-steps then report 0, everything else still works).
func (cfg Config) target() (func(context.Context, serve.Kind, serve.Args) (serve.Result, error), func() serve.Stats) {
	lookup, stats := cfg.LookupKind, cfg.Stats
	if cfg.Server != nil {
		lookup, stats = cfg.Server.LookupKind, cfg.Server.Stats
	} else if lookup == nil {
		plain := cfg.Lookup
		lookup = func(ctx context.Context, _ serve.Kind, args serve.Args) (serve.Result, error) {
			return plain(ctx, args[0])
		}
	}
	if stats == nil {
		stats = func() serve.Stats { return serve.Stats{} }
	}
	return lookup, stats
}

// Run plays the arrival plan against the server: open loop, each arrival
// fired at its scheduled offset regardless of outstanding queries. The hot
// path does no per-query allocation beyond the one goroutine per in-flight
// lookup — outcomes land in a preallocated slice, latency quantiles come
// from fixed-boundary histograms built at report time.
func Run(cfg Config) (*Report, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	window := cfg.Window
	if window <= 0 {
		window = time.Second
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 5 * time.Second
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}

	lookup, stats := cfg.target()
	events := cfg.Events
	outcomes := make([]outcome, len(events))
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup

	// Sample the target's counters at window boundaries so per-window
	// sim-steps/query can be computed from deltas (the counters are global;
	// boundary samples attribute them to windows to histogram precision).
	lastAt := time.Duration(events[len(events)-1].AtNS)
	numWindows := int(lastAt/window) + 1
	sampleStages := cfg.Stages
	if sampleStages == nil {
		sampleStages = func() obs.StageSnapshot { return obs.StageSnapshot{} }
	}
	boundarySamples := make([]serve.Stats, 0, numWindows+1)
	boundarySamples = append(boundarySamples, stats())
	stageSamples := make([]obs.StageSnapshot, 0, numWindows+1)
	stageSamples = append(stageSamples, sampleStages())
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(window)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if len(boundarySamples) <= numWindows {
					boundarySamples = append(boundarySamples, stats())
					stageSamples = append(stageSamples, sampleStages())
				}
			case <-samplerStop:
				return
			}
		}
	}()

	start := time.Now()
	for i := range events {
		ev := &events[i]
		if wait := time.Duration(ev.AtNS) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case sem <- struct{}{}:
		default:
			outcomes[i].status = outcomeShed
			continue
		}
		wg.Add(1)
		go func(ev *TraceEvent, o *outcome) {
			defer wg.Done()
			defer func() { <-sem }()
			qctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			args := ev.Args
			if ev.Kind == serve.KindMembership {
				// The needle is canonical for membership — hand-built and v1
				// event slices carry it without the typed-args mirror.
				args = serve.Args{ev.Needle}
			}
			qstart := time.Now()
			res, err := lookup(qctx, ev.Kind, args)
			o.latNS = time.Since(qstart).Nanoseconds()
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				o.status = outcomeRejected
			case errors.Is(err, serve.ErrBudgetExhausted):
				// Server-side budget shed: the same outcome class as a
				// client-side MaxInFlight shed — deliberately dropped load,
				// not a failure (§3.11).
				o.status = outcomeShed
			case err != nil:
				o.status = outcomeFailed
			default:
				ev.OK, ev.Found, ev.Steps = true, res.Found, res.Steps
				ev.Leaf, ev.Value, ev.Aux = res.LeafKey, res.Value, res.Aux
				o.pathLen = res.Steps
				switch {
				case cfg.Check != nil:
					o.mismatch = !cfg.Check(ev.Kind, args, res)
				case cfg.Contains != nil && ev.Kind == serve.KindMembership:
					o.mismatch = res.Found != cfg.Contains(ev.Needle) || (res.Found && res.LeafKey != ev.Needle)
				}
				if res.Degraded {
					o.status = outcomeDegraded
				} else {
					o.status = outcomeOK
				}
			}
		}(ev, &outcomes[i])
	}
	wg.Wait()
	wall := time.Since(start)
	close(samplerStop)
	<-samplerDone
	boundarySamples = append(boundarySamples, stats())
	stageSamples = append(stageSamples, sampleStages())

	return buildReport(events, outcomes, boundarySamples, stageSamples, window, wall), nil
}

func buildReport(events []TraceEvent, outcomes []outcome, samples []serve.Stats, stageSamples []obs.StageSnapshot, window time.Duration, wall time.Duration) *Report {
	lastAt := time.Duration(events[len(events)-1].AtNS)
	numWindows := int(lastAt/window) + 1
	hists := make([]*serve.Histogram, numWindows)
	var totalHist serve.Histogram
	wins := make([]WindowStats, numWindows)
	var total WindowStats
	var totalPath int64
	winPath := make([]int64, numWindows)
	kinds := make(map[string]*WindowStats)
	kindHists := make(map[string]*serve.Histogram)
	kindPath := make(map[string]int64)
	for i := range events {
		ev := &events[i]
		w := int(time.Duration(ev.AtNS) / window)
		ws := &wins[w]
		o := &outcomes[i]
		ev.Outcome = outcomeNames[o.status]
		kname := ev.Kind.String()
		ks := kinds[kname]
		if ks == nil {
			ks = &WindowStats{}
			kinds[kname] = ks
			kindHists[kname] = &serve.Histogram{}
		}
		ws.Offered++
		total.Offered++
		ks.Offered++
		switch o.status {
		case outcomeOK, outcomeDegraded:
			ws.Answered++
			total.Answered++
			ks.Answered++
			if o.status == outcomeDegraded {
				ws.Degraded++
				total.Degraded++
				ks.Degraded++
			}
			if hists[w] == nil {
				hists[w] = &serve.Histogram{}
			}
			hists[w].Observe(time.Duration(o.latNS))
			totalHist.Observe(time.Duration(o.latNS))
			kindHists[kname].Observe(time.Duration(o.latNS))
			winPath[w] += int64(o.pathLen)
			totalPath += int64(o.pathLen)
			kindPath[kname] += int64(o.pathLen)
		case outcomeRejected:
			ws.Rejected++
			total.Rejected++
			ks.Rejected++
		case outcomeShed:
			ws.Shed++
			total.Shed++
			ks.Shed++
		case outcomeFailed:
			ws.Failed++
			total.Failed++
			ks.Failed++
		}
		if o.mismatch {
			ws.Mismatched++
			total.Mismatched++
			ks.Mismatched++
		}
	}

	winSecs := window.Seconds()
	for w := range wins {
		ws := &wins[w]
		ws.Start = time.Duration(w) * window
		ws.OfferedQPS = float64(ws.Offered) / winSecs
		ws.AchievedQPS = float64(ws.Answered) / winSecs
		if hists[w] != nil {
			fillQuantiles(ws, hists[w].Snapshot())
		}
		if ws.Answered > 0 {
			ws.MeanPathSteps = float64(winPath[w]) / float64(ws.Answered)
		}
		// Per-window mesh steps from the boundary samples: sample w is the
		// state at the window's start, w+1 at its end (clamped — the run
		// tail may outlive the last full window).
		lo, hi := w, w+1
		if hi >= len(samples) {
			hi = len(samples) - 1
		}
		if lo < hi {
			dSteps := samples[hi].SimSteps - samples[lo].SimSteps
			dMesh := (samples[hi].Served - samples[hi].Degraded) - (samples[lo].Served - samples[lo].Degraded)
			if dMesh > 0 {
				ws.SimStepsPerQuery = float64(dSteps) / float64(dMesh)
			}
			if hi < len(stageSamples) {
				ws.StageNS = stageBreakdown(stageSamples[lo], stageSamples[hi], ws.Answered)
			}
		}
	}

	wallSecs := wall.Seconds()
	if wallSecs <= 0 {
		wallSecs = winSecs
	}
	total.OfferedQPS = float64(total.Offered) / wallSecs
	total.AchievedQPS = float64(total.Answered) / wallSecs
	fillQuantiles(&total, totalHist.Snapshot())
	if total.Answered > 0 {
		total.MeanPathSteps = float64(totalPath) / float64(total.Answered)
	}
	first, last := samples[0], samples[len(samples)-1]
	if dMesh := (last.Served - last.Degraded) - (first.Served - first.Degraded); dMesh > 0 {
		total.SimStepsPerQuery = float64(last.SimSteps-first.SimSteps) / float64(dMesh)
	}
	if len(stageSamples) > 0 {
		total.StageNS = stageBreakdown(stageSamples[0], stageSamples[len(stageSamples)-1], total.Answered)
	}

	// Per-kind run aggregates: offered-rate shares use the full run's wall
	// clock (a kind's arrivals spread over the whole schedule).
	for kname, ks := range kinds {
		ks.OfferedQPS = float64(ks.Offered) / wallSecs
		ks.AchievedQPS = float64(ks.Answered) / wallSecs
		fillQuantiles(ks, kindHists[kname].Snapshot())
		if ks.Answered > 0 {
			ks.MeanPathSteps = float64(kindPath[kname]) / float64(ks.Answered)
		}
	}

	return &Report{Windows: wins, Total: total, Kinds: kinds, Digest: Digest(events), Wall: wall}
}

// stageBreakdown turns two boundary samples of the observer's per-stage
// counters into mean nanoseconds per answered query for each stage that
// accumulated time in between. Stage time is attributed to windows at
// boundary-sample precision, same as SimStepsPerQuery.
func stageBreakdown(lo, hi obs.StageSnapshot, answered int64) map[string]float64 {
	if answered <= 0 {
		return nil
	}
	var out map[string]float64
	for i, name := range obs.StageNames() {
		d := hi.SumNS[i] - lo.SumNS[i]
		if d <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64, len(obs.StageNames()))
		}
		out[name] = float64(d) / float64(answered)
	}
	return out
}

func fillQuantiles(ws *WindowStats, snap serve.HistSnapshot) {
	ws.P50 = snap.Quantile(0.50)
	ws.P95 = snap.Quantile(0.95)
	ws.P99 = snap.Quantile(0.99)
	ws.P999 = snap.Quantile(0.999)
	ws.Max = time.Duration(snap.Max)
}

// Digest hashes every event in arrival order — kind, typed arguments, the
// arrival's outcome, and its answer fields. Two runs over the same plan with
// equal digests produced byte-identical answer *and outcome* streams; the
// pre-v2 digest skipped unanswered events and hashed answers only, so a run
// that degraded (or shed) half its traffic could hash identically to a clean
// one. The "v2" prefix keys the format so digests from the two schemes can
// never collide silently.
func Digest(events []TraceEvent) string {
	h := sha256.New()
	fmt.Fprintln(h, "v2")
	for i := range events {
		ev := &events[i]
		fmt.Fprintf(h, "%d:%s:%d,%d,%d:%s:%t:%d:%d:%d:%d\n",
			ev.I, ev.Kind, ev.Args[0], ev.Args[1], ev.Args[2],
			ev.Outcome, ev.Found, ev.Leaf, ev.Value, ev.Aux, ev.Steps)
	}
	return hex.EncodeToString(h.Sum(nil))
}
