package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/serve"
)

func newRunServer(t *testing.T) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Side: 8, Linger: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestRunRecordReplayIdenticalAnswers is the harness's core contract: a
// seeded Poisson run against a live server produces an answer stream that a
// replay of its recorded trace reproduces exactly — same digest, zero
// comparison mismatches — on a *fresh* server.
func TestRunRecordReplayIdenticalAnswers(t *testing.T) {
	sched := Schedule{{Rate: 400, Dur: 800 * time.Millisecond}}
	arr, err := Poisson(sched, 42)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := UniformKeys(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Generate(arr, keys, 0)
	if err != nil {
		t.Fatal(err)
	}

	s1 := newRunServer(t)
	rep1, err := Run(Config{Server: s1, Events: events, Window: 200 * time.Millisecond, Contains: s1.Tree().Contains})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Total.Mismatched > 0 || rep1.Total.Failed > 0 {
		t.Fatalf("clean run had %d mismatches, %d failures", rep1.Total.Mismatched, rep1.Total.Failed)
	}
	if rep1.Total.Answered == 0 {
		t.Fatal("run answered nothing")
	}

	replayEvents := StripAnswers(events)
	s2 := newRunServer(t)
	rep2, err := Run(Config{Server: s2, Events: replayEvents, Window: 200 * time.Millisecond, Contains: s2.Tree().Contains})
	if err != nil {
		t.Fatal(err)
	}
	if n, ferr := CompareAnswers(events, replayEvents); n != 0 {
		t.Fatalf("replay diverged on %d events: %v", n, ferr)
	}
	if rep1.Digest != rep2.Digest {
		t.Fatalf("digests differ: %s vs %s", rep1.Digest, rep2.Digest)
	}
}

// TestRunWindowAccounting checks the per-window report: offered counts
// partition the events by arrival time, quantiles are populated and
// monotone, and offered ≈ achieved on an unsaturated run.
func TestRunWindowAccounting(t *testing.T) {
	sched := Schedule{{Rate: 300, Dur: 900 * time.Millisecond}}
	arr, _ := Poisson(sched, 7)
	keys, _ := UniformKeys(16, 7)
	events, err := Generate(arr, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newRunServer(t)
	rep, err := Run(Config{Server: s, Events: events, Window: 300 * time.Millisecond, Contains: s.Tree().Contains})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) < 2 || len(rep.Windows) > 4 {
		t.Fatalf("%d windows for a 900ms run at 300ms windows", len(rep.Windows))
	}
	var offered int64
	for i, w := range rep.Windows {
		offered += w.Offered
		if w.Offered != w.Answered+w.Rejected+w.Shed+w.Failed {
			t.Fatalf("window %d outcomes don't partition offered: %+v", i, w)
		}
		if w.Answered > 0 {
			if w.P50 <= 0 || w.P50 > w.P95 || w.P95 > w.P99 || w.P99 > w.P999 || w.P999 > w.Max {
				t.Fatalf("window %d quantiles not monotone: %+v", i, w)
			}
			if w.MeanPathSteps <= 0 {
				t.Fatalf("window %d lacks path-length accounting: %+v", i, w)
			}
		}
	}
	if offered != int64(len(events)) {
		t.Fatalf("windows offered %d, want %d", offered, len(events))
	}
	tot := rep.Total
	if tot.Offered != int64(len(events)) || tot.Answered != int64(len(events)) {
		t.Fatalf("unsaturated run should answer everything: %+v", tot)
	}
	if tot.SimStepsPerQuery <= 0 {
		t.Fatalf("total sim-steps/query not derived from server stats: %+v", tot)
	}
	if tot.P99 <= 0 || tot.AchievedQPS <= 0 {
		t.Fatalf("total summary not populated: %+v", tot)
	}
}

// TestSaturateFindsKnee drives the binary search against a synthetic probe
// whose SLO breaks above a known capacity, checking bracketing, the knee,
// and the capped path.
func TestSaturateFindsKnee(t *testing.T) {
	const capacity = 400.0
	fakeRun := func(rate float64) (*Report, error) {
		rep := &Report{}
		rep.Total.Offered = 1000
		rep.Total.Answered = 1000
		rep.Total.AchievedQPS = rate
		if rate <= capacity {
			rep.Total.P99 = 10 * time.Millisecond
		} else {
			rep.Total.P99 = 500 * time.Millisecond
		}
		return rep, nil
	}
	slo := SLO{P99: 50 * time.Millisecond, MaxDegraded: 0.01, MaxRejected: 0.01}
	kr, err := Saturate(fakeRun, 50, 100_000, 8, slo)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Capped {
		t.Fatalf("search capped despite a breakable SLO: %+v", kr)
	}
	if kr.Knee < capacity*0.85 || kr.Knee > capacity {
		t.Fatalf("knee %.1f, want within (%.1f, %.1f]", kr.Knee, capacity*0.85, capacity)
	}
	if len(kr.Probes) < 4 {
		t.Fatalf("only %d probes recorded", len(kr.Probes))
	}
	for _, p := range kr.Probes {
		if p.Pass != (p.Rate <= capacity) {
			t.Fatalf("probe at %.1f recorded pass=%v", p.Rate, p.Pass)
		}
		if !p.Pass && p.Reason == "" {
			t.Fatalf("failing probe at %.1f lacks a reason", p.Rate)
		}
	}
	// Capped: the SLO never breaks below max.
	kr, err = Saturate(fakeRun, 50, 200, 8, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !kr.Capped || kr.Knee != 200 {
		t.Fatalf("uncappable search: %+v", kr)
	}
	if _, err := Saturate(fakeRun, 0, 100, 3, slo); err == nil {
		t.Fatal("non-positive start accepted")
	}
}

// TestSLOPassClauses unit-tests every SLO clause and its reason string.
func TestSLOPassClauses(t *testing.T) {
	slo := SLO{P99: 100 * time.Millisecond, MaxDegraded: 0.05, MaxRejected: 0.10}
	base := func() *Report {
		r := &Report{}
		r.Total.Offered = 1000
		r.Total.Answered = 990
		r.Total.Rejected = 10
		r.Total.P99 = 20 * time.Millisecond
		return r
	}
	if ok, reason := slo.Pass(base()); !ok {
		t.Fatalf("healthy report failed SLO: %s", reason)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"mismatch", func(r *Report) { r.Total.Mismatched = 1 }},
		{"failed", func(r *Report) { r.Total.Failed = 1 }},
		{"rejected", func(r *Report) { r.Total.Rejected = 200 }},
		{"shed", func(r *Report) { r.Total.Shed = 200 }},
		{"degraded", func(r *Report) { r.Total.Degraded = 100 }},
		{"p99", func(r *Report) { r.Total.P99 = time.Second }},
	}
	for _, tc := range cases {
		r := base()
		tc.mutate(r)
		ok, reason := slo.Pass(r)
		if ok || reason == "" {
			t.Fatalf("%s violation not caught (reason %q)", tc.name, reason)
		}
	}
}

// TestGenerateBounds pins the arrival cap and the empty-schedule error.
func TestGenerateBounds(t *testing.T) {
	sched := Schedule{{Rate: 100_000, Dur: time.Second}}
	arr, _ := Poisson(sched, 1)
	keys, _ := UniformKeys(16, 1)
	if _, err := Generate(arr, keys, 1000); err == nil {
		t.Fatal("oversized plan accepted")
	}
	if err := (Config{}).check(); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Server: nil, Events: []TraceEvent{{}}}); err == nil {
		t.Fatal("nil server accepted")
	}
}
