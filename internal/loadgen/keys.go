package loadgen

import (
	"fmt"
	"math/rand"
)

// KeyDraw picks the needle for one query. Implementations are seeded and
// deterministic; the needle domain is [0, 2·keys), matching the serve
// layer's default dictionary layout (odd keys resident) so roughly half the
// domain hits and half misses under uniform draw.
type KeyDraw interface {
	Draw() int64
}

type uniformDraw struct {
	rng *rand.Rand
	n   int64
}

func (u *uniformDraw) Draw() int64 { return u.rng.Int63n(u.n) }

// UniformKeys draws needles uniformly over [0, 2·keys).
func UniformKeys(keys int, seed int64) (KeyDraw, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("loadgen: uniform draw needs a positive key count, got %d", keys)
	}
	return &uniformDraw{rng: rand.New(rand.NewSource(seed)), n: 2 * int64(keys)}, nil
}

type zipfDraw struct {
	z *rand.Zipf
}

func (z *zipfDraw) Draw() int64 { return int64(z.z.Uint64()) }

// ZipfKeys draws needles from a Zipfian(s) distribution over [0, 2·keys):
// needle 0 is the hottest key, with probability ∝ 1/(1+k)^s. s must exceed
// 1 (the math/rand parameterization); s around 1.1 is a mild hot-key skew,
// 2+ concentrates most traffic on a handful of needles.
func ZipfKeys(keys int, s float64, seed int64) (KeyDraw, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("loadgen: zipf draw needs a positive key count, got %d", keys)
	}
	if s <= 1 {
		return nil, fmt.Errorf("loadgen: zipf exponent must be > 1, got %g", s)
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(2*keys-1))
	if z == nil {
		return nil, fmt.Errorf("loadgen: bad zipf parameters (s=%g, keys=%d)", s, keys)
	}
	return &zipfDraw{z: z}, nil
}
