// Package loadgen is the open-loop workload generator and SLO harness for
// the serve layer (DESIGN.md §3.7). Unlike the closed-loop sweep in
// cmd/meshserve (-loadgen), which can only offer as much load as the server
// absorbs, loadgen fires queries on an arrival clock that does not wait for
// responses — the only way to observe saturation, queueing delay, and the
// offered-vs-achieved gap Theorem 2's amortized throughput bound is about.
//
// The pieces compose:
//
//   - Schedule: a multi-period rate(t) plan (diurnal-style segments).
//   - Arrivals: a seeded Poisson or ON/OFF-bursty arrival process over a
//     Schedule (exact piecewise-constant thinning-free inversion).
//   - KeyDraw: uniform or Zipfian(s) hot-key popularity over the resident
//     dictionary's needle domain.
//   - Generate → []TraceEvent: a materialized, replayable arrival plan;
//     WriteTrace/ReadTrace round-trip it (with answers) through JSONL.
//   - Run: drives serve.Server in-process, reporting per-window percentiles
//     (fixed-boundary histogram — no per-query allocation on the hot path),
//     offered vs achieved qps, steps/query, rejected/degraded fractions.
//   - Saturate: binary-searches the max sustainable rate under an SLO
//     predicate and emits a knee report.
package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Phase is one segment of a rate schedule: offer Rate arrivals/second for
// Dur. Rate 0 is a silence (valid inside a schedule).
type Phase struct {
	Rate float64       `json:"rate_qps"`
	Dur  time.Duration `json:"dur_ns"`
}

// Schedule is a piecewise-constant offered-rate plan, played once.
type Schedule []Phase

// Total is the schedule's full length.
func (s Schedule) Total() time.Duration {
	var t time.Duration
	for _, p := range s {
		t += p.Dur
	}
	return t
}

// Validate rejects schedules the arrival process cannot play.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("loadgen: empty schedule")
	}
	anyRate := false
	for i, p := range s {
		if p.Dur <= 0 {
			return fmt.Errorf("loadgen: schedule phase %d has non-positive duration %v", i, p.Dur)
		}
		if p.Rate < 0 {
			return fmt.Errorf("loadgen: schedule phase %d has negative rate %g", i, p.Rate)
		}
		if p.Rate > 0 {
			anyRate = true
		}
	}
	if !anyRate {
		return fmt.Errorf("loadgen: schedule offers zero load everywhere")
	}
	return nil
}

// ParseSchedule parses a rate plan from its flag syntax: a comma-separated
// list of RATE or RATExDUR entries, e.g. "400" (constant, defaultDur long)
// or "200x2s,800x500ms,200x2s" (a burst window between two baseline
// periods). Bare RATE entries get defaultDur.
func ParseSchedule(spec string, defaultDur time.Duration) (Schedule, error) {
	var out Schedule
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		rateStr, durStr, explicit := strings.Cut(f, "x")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad rate in schedule entry %q", f)
		}
		dur := defaultDur
		if explicit {
			if dur, err = time.ParseDuration(durStr); err != nil {
				return nil, fmt.Errorf("loadgen: bad duration in schedule entry %q", f)
			}
		}
		out = append(out, Phase{Rate: rate, Dur: dur})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
