package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestHTTPTargetDrivesRemoteServer runs the open-loop harness against a real
// serve.Instance over its HTTP surface: shape probing, the full lookup path,
// and oracle checking must all work across the wire exactly as in-process.
func TestHTTPTargetDrivesRemoteServer(t *testing.T) {
	s := newRunServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	target := NewHTTPTarget(srv.URL)

	side, keys, err := target.Probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if side != 8 || keys != len(s.Tree().Keys) {
		t.Fatalf("probe reported %dx%d / %d keys, want 8x8 / %d", side, side, keys, len(s.Tree().Keys))
	}

	arr, err := Poisson(Schedule{{Rate: 300, Dur: 600 * time.Millisecond}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	draw, err := UniformKeys(keys, 11)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Generate(arr, draw, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Lookup:   target.Lookup,
		Stats:    target.Stats,
		Events:   events,
		Window:   200 * time.Millisecond,
		Contains: s.Tree().Contains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Mismatched > 0 || rep.Total.Failed > 0 {
		t.Fatalf("remote run had %d mismatches, %d failures", rep.Total.Mismatched, rep.Total.Failed)
	}
	if rep.Total.Answered == 0 {
		t.Fatal("remote run answered nothing")
	}
	if got := rep.Total.Answered + rep.Total.Rejected + rep.Total.Shed; got != rep.Total.Offered {
		t.Fatalf("outcome accounting leaks over HTTP: %d of %d offered", got, rep.Total.Offered)
	}
}

// TestHTTPTargetStatusMapping pins the inverse of the /search handler's
// status mapping: backpressure and drain statuses come back as the same
// typed serve errors the in-process path yields, so the harness classifies
// outcomes identically either way.
func TestHTTPTargetStatusMapping(t *testing.T) {
	var status int
	var body string
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	defer stub.Close()
	target := NewHTTPTarget(stub.URL)

	status, body = http.StatusTooManyRequests, "overloaded\n"
	if _, err := target.Lookup(context.Background(), 1); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("429 mapped to %v, want ErrOverloaded", err)
	}
	status, body = http.StatusServiceUnavailable, "draining\n"
	if _, err := target.Lookup(context.Background(), 1); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("503 mapped to %v, want ErrClosed", err)
	}
	status, body = http.StatusInternalServerError, "boom\n"
	if _, err := target.Lookup(context.Background(), 1); err == nil ||
		errors.Is(err, serve.ErrOverloaded) || errors.Is(err, serve.ErrClosed) {
		t.Fatalf("500 mapped to %v, want a generic failure", err)
	}
	status, body = http.StatusOK, "{not json"
	if _, err := target.Lookup(context.Background(), 1); err == nil {
		t.Fatal("garbage 200 body accepted")
	}

	// Client-context expiry surfaces as the context's own error so deadline
	// accounting matches in-process runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := target.Lookup(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-context lookup → %v, want context.Canceled", err)
	}

	// A stats scrape against a non-/metrics server is best-effort zero, and
	// Probe — which gates replay — fails loudly instead.
	status, body = http.StatusOK, "{}"
	if st := target.Stats(); st.Served != 0 {
		t.Fatalf("stats scrape of an empty doc: %+v", st)
	}
	if _, _, err := target.Probe(context.Background()); err == nil {
		t.Fatal("probe of a shapeless /metrics succeeded")
	}
}
