package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// HTTPTarget drives a remote meshserve — one instance or a whole fleet —
// over its HTTP surface, so the open-loop harness can measure a server it
// does not share a process (or machine) with. Lookup and Stats satisfy the
// Config seam; the status→error mapping inverts the /search handler's, so
// the harness's outcome accounting (rejected vs failed vs answered) means
// the same thing in-process and over the wire.
type HTTPTarget struct {
	Base   string // e.g. http://127.0.0.1:8845, no trailing slash
	Client *http.Client
	// Trace enables W3C traceparent propagation: each Lookup mints a trace
	// ID and sends it, so the server-side trace at /debug/traces carries an
	// ID the client chose — the hook for correlating a slow client-side
	// sample with its server-side stage decomposition.
	Trace bool
}

// NewHTTPTarget returns a target for the given base URL. The client pools
// connections with enough idle capacity that the measured path is request
// latency, not handshake latency.
func NewHTTPTarget(base string) *HTTPTarget {
	return &HTTPTarget{
		Base: strings.TrimRight(base, "/"),
		Client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
			IdleConnTimeout:     90 * time.Second,
		}},
	}
}

// Lookup fires one membership /search query — LookupKind with the
// membership kind, kept for pre-kind callers.
func (t *HTTPTarget) Lookup(ctx context.Context, needle int64) (serve.Result, error) {
	return t.LookupKind(ctx, serve.KindMembership, serve.Args{needle})
}

// searchURL renders the kind-typed /search URL: the per-kind parameter
// names mirror serve.ParseSearchArgs, and membership keeps the bare
// ?key= shape so a v1 server can still be driven.
func searchURL(base string, kind serve.Kind, args serve.Args) string {
	var b strings.Builder
	b.WriteString(base)
	b.WriteString("/search?")
	if kind != serve.KindMembership {
		b.WriteString("kind=")
		b.WriteString(kind.String())
		b.WriteByte('&')
	}
	params := kindQueryParams[kind]
	for i, name := range params {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(args[i], 10))
	}
	return b.String()
}

// kindQueryParams mirrors the serve handler's per-kind parameter names.
var kindQueryParams = [serve.NumKinds][]string{
	serve.KindMembership: {"key"},
	serve.KindPointLoc:   {"x", "y"},
	serve.KindInterval:   {"lo", "hi"},
	serve.KindLinePoly:   {"x", "y"},
	serve.KindTangent:    {"dx", "dy", "dz"},
}

// LookupKind fires one typed /search query. Statuses map back to the
// serve-layer errors the harness classifies on: 429 → ErrOverloaded
// (rejected), 503 → ErrClosed, 504 → ErrBudgetExhausted (shed), 2xx → the
// decoded Result. Context expiry surfaces as the context's own error so
// deadline accounting matches in-process runs.
func (t *HTTPTarget) LookupKind(ctx context.Context, kind serve.Kind, args serve.Args) (serve.Result, error) {
	url := searchURL(t.Base, kind, args)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return serve.Result{}, err
	}
	if t.Trace {
		req.Header.Set("Traceparent", obs.NewTraceID().Traceparent())
	}
	// Deadline-budget propagation (§3.11): the context deadline travels as an
	// explicit header, so the server-side ladder — fleet budget rung,
	// admission, linger, retries, hedges — sheds work this client would have
	// abandoned anyway, instead of discovering that at response-write time.
	if dl, ok := ctx.Deadline(); ok {
		if budget := time.Until(dl); budget > 0 {
			req.Header.Set(serve.DeadlineBudgetHeader, budget.String())
		}
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return serve.Result{}, ctx.Err()
		}
		return serve.Result{}, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return serve.Result{}, serve.ErrOverloaded
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return serve.Result{}, serve.ErrClosed
	case resp.StatusCode == http.StatusGatewayTimeout:
		// The server shed the lookup with the deadline budget exhausted.
		io.Copy(io.Discard, resp.Body)
		return serve.Result{}, serve.ErrBudgetExhausted
	case resp.StatusCode != http.StatusOK:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return serve.Result{}, fmt.Errorf("loadgen: %s → %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return serve.Result{}, fmt.Errorf("loadgen: bad /search body: %w", err)
	}
	return res, nil
}

// metricsDoc is the slice of /metrics both an instance and a fleet expose.
type metricsDoc struct {
	Serve    serve.Stats `json:"serve"`
	Side     int         `json:"side"`
	Keys     int         `json:"keys"`
	MaxBatch int         `json:"max_batch"`
}

// Stats samples the remote serving counters from /metrics (the "serve"
// document an instance exports directly and a fleet exports as its
// aggregate). Best-effort: a failed scrape returns zero stats rather than
// failing the run — the harness then reports sim-steps as 0 for that
// window, which is visible, not silent.
func (t *HTTPTarget) Stats() serve.Stats {
	doc, err := t.scrape(context.Background())
	if err != nil {
		return serve.Stats{}
	}
	return doc.Serve
}

// Probe fetches the remote server's shape — mesh side and key count — which
// gates trace replay (a trace records the shape it was captured against)
// and sizes the popularity draw.
func (t *HTTPTarget) Probe(ctx context.Context) (side, keys int, err error) {
	doc, err := t.scrape(ctx)
	if err != nil {
		return 0, 0, err
	}
	if doc.Side <= 0 || doc.Keys <= 0 {
		return 0, 0, fmt.Errorf("loadgen: %s/metrics reports no side/keys (old server?)", t.Base)
	}
	return doc.Side, doc.Keys, nil
}

func (t *HTTPTarget) scrape(ctx context.Context) (metricsDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/metrics", nil)
	if err != nil {
		return metricsDoc{}, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return metricsDoc{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return metricsDoc{}, fmt.Errorf("loadgen: %s/metrics → %d", t.Base, resp.StatusCode)
	}
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return metricsDoc{}, fmt.Errorf("loadgen: bad /metrics body: %w", err)
	}
	return doc, nil
}
