package loadgen

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []TraceEvent {
	return []TraceEvent{
		{I: 0, AtNS: 0, Needle: 3, OK: true, Found: true, Leaf: 3, Steps: 4},
		{I: 1, AtNS: 1500, Needle: 8, OK: true, Found: false, Leaf: 7, Steps: 4},
		{I: 2, AtNS: 4000, Needle: 5}, // rejected: no answer recorded
	}
}

// TestTraceRoundTrip: WriteTrace → ReadTrace is the identity on header and
// events, byte-stable across repeated writes.
func TestTraceRoundTrip(t *testing.T) {
	h := TraceHeader{Workload: "poisson", Side: 8, Keys: 16, Seed: 42}
	events := sampleEvents()
	var buf1, buf2 bytes.Buffer
	if err := WriteTrace(&buf1, h, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&buf2, h, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("trace serialization is not byte-stable")
	}
	gotH, gotE, err := ReadTrace(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Workload != "poisson" || gotH.Side != 8 || gotH.Keys != 16 || gotH.Seed != 42 || gotH.Events != len(events) {
		t.Fatalf("header mangled: %+v", gotH)
	}
	if len(gotE) != len(events) {
		t.Fatalf("read %d events, want %d", len(gotE), len(events))
	}
	for i := range events {
		if gotE[i] != events[i] {
			t.Fatalf("event %d mangled: %+v vs %+v", i, gotE[i], events[i])
		}
	}
}

// TestTraceValidation: wrong kind, truncation, broken ordering all refuse.
func TestTraceValidation(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader(`{"kind":"other","version":1}` + "\n")); err == nil {
		t.Fatal("foreign kind accepted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceHeader{}, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	truncated := strings.Join(lines[:len(lines)-2], "")
	if _, _, err := ReadTrace(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated trace accepted")
	}
	// Non-monotone arrival clock.
	events := sampleEvents()
	events[2].AtNS = 100
	buf.Reset()
	if err := WriteTrace(&buf, TraceHeader{}, events); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadTrace(&buf); err == nil {
		t.Fatal("non-monotone trace accepted")
	}
}

// TestStripAndCompareAnswers: StripAnswers clears only answers; Compare
// detects every divergence class and passes on the identity.
func TestStripAndCompareAnswers(t *testing.T) {
	rec := sampleEvents()
	stripped := StripAnswers(rec)
	for i, ev := range stripped {
		if ev.OK || ev.Found || ev.Leaf != 0 || ev.Steps != 0 {
			t.Fatalf("stripped event %d keeps answers: %+v", i, ev)
		}
		if ev.I != rec[i].I || ev.AtNS != rec[i].AtNS || ev.Needle != rec[i].Needle {
			t.Fatalf("stripped event %d lost its arrival: %+v", i, ev)
		}
	}
	if n, err := CompareAnswers(rec, rec); n != 0 || err != nil {
		t.Fatalf("identity comparison: %d mismatches, %v", n, err)
	}
	// Recorded-but-unanswered replay event diverges.
	rep := append([]TraceEvent(nil), rec...)
	rep[1].OK = false
	if n, err := CompareAnswers(rec, rep); n != 1 || err == nil {
		t.Fatalf("dropped answer not flagged: %d, %v", n, err)
	}
	// Different membership diverges.
	rep = append([]TraceEvent(nil), rec...)
	rep[0].Found = false
	if n, _ := CompareAnswers(rec, rep); n != 1 {
		t.Fatalf("wrong membership not flagged: %d", n)
	}
	// Different arrival plan diverges even without answers.
	rep = append([]TraceEvent(nil), rec...)
	rep[2].Needle = 999
	if n, _ := CompareAnswers(rec, rep); n != 1 {
		t.Fatalf("changed needle not flagged: %d", n)
	}
	if n, _ := CompareAnswers(rec, rec[:2]); n == 0 {
		t.Fatal("length divergence not flagged")
	}
	// A replay that answered a query the recording could not (e.g. the
	// recording rejected it) is not a divergence: nothing was recorded.
	rep = append([]TraceEvent(nil), rec...)
	rep[2].OK, rep[2].Found = true, true
	if n, err := CompareAnswers(rec, rep); n != 0 || err != nil {
		t.Fatalf("extra replay answer flagged: %d, %v", n, err)
	}
	dig1, dig2 := Digest(rec), Digest(rep)
	if dig1 == dig2 {
		t.Fatal("digest ignores the answered set")
	}
	if Digest(rec) != Digest(append([]TraceEvent(nil), rec...)) {
		t.Fatal("digest not deterministic")
	}
}
