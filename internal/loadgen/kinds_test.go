package loadgen

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

func TestParseKindMix(t *testing.T) {
	m, err := ParseKindMix("membership:0.6,pointloc:0.3,interval:0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []serve.Kind{serve.KindMembership, serve.KindPointLoc, serve.KindInterval}
	if got := m.Kinds(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	// String renders a parseable, normalized form.
	back, err := ParseKindMix(m.String())
	if err != nil {
		t.Fatalf("String() %q not parseable: %v", m.String(), err)
	}
	if back.String() != m.String() {
		t.Fatalf("String round trip: %q vs %q", back.String(), m.String())
	}

	// Bare names get weight 1 each; the empty spec is membership only.
	m2, err := ParseKindMix("pointloc,tangent")
	if err != nil || len(m2.Kinds()) != 2 {
		t.Fatalf("bare-name mix: %v, %v", m2, err)
	}
	m3, err := ParseKindMix("")
	if err != nil || len(m3.Kinds()) != 1 || m3.Kinds()[0] != serve.KindMembership {
		t.Fatalf("empty mix: %v, %v", m3, err)
	}

	// Unnormalized weights describe the same mix as their normalized form.
	a, _ := ParseKindMix("membership:3,pointloc:1")
	b, _ := ParseKindMix("membership:0.75,pointloc:0.25")
	if a.String() != b.String() {
		t.Fatalf("weight normalization: %q vs %q", a.String(), b.String())
	}

	for _, bad := range []string{"bogus:1", "membership:-1", "membership:0", "membership:x", "membership:1,membership:2"} {
		if _, err := ParseKindMix(bad); err == nil {
			t.Errorf("ParseKindMix(%q) did not error", bad)
		}
	}
}

func TestKindMixDrawWeightsAndDeterminism(t *testing.T) {
	m, _ := ParseKindMix("membership:0.7,interval:0.3")
	counts := map[serve.Kind]int{}
	rng := rand.New(rand.NewSource(1))
	const n = 20_000
	for i := 0; i < n; i++ {
		counts[m.Draw(rng)]++
	}
	if frac := float64(counts[serve.KindMembership]) / n; frac < 0.67 || frac > 0.73 {
		t.Fatalf("membership drawn %.3f of the time, want ≈0.7", frac)
	}
	// Same seed → same draw sequence.
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if m.Draw(r1) != m.Draw(r2) {
			t.Fatal("Draw is not deterministic in the rng")
		}
	}
}

func TestGenerateMixTypedArguments(t *testing.T) {
	sched := Schedule{{Rate: 2000, Dur: 100 * time.Millisecond}}
	arr, err := Poisson(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := UniformKeys(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := ParseKindMix("membership:0.5,interval:0.5")
	argsFor := func(k serve.Kind, needle int64) serve.Args {
		if k == serve.KindInterval {
			return serve.Args{needle, needle + 3}
		}
		return serve.Args{needle}
	}
	events, err := GenerateMix(arr, keys, mix, argsFor, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawInterval := false
	for _, ev := range events {
		switch ev.Kind {
		case serve.KindMembership:
			if ev.Args != (serve.Args{ev.Needle}) {
				t.Fatalf("membership event args %v, want [%d]", ev.Args, ev.Needle)
			}
		case serve.KindInterval:
			sawInterval = true
			if ev.Args != (serve.Args{ev.Needle, ev.Needle + 3}) {
				t.Fatalf("interval event args %v for needle %d", ev.Args, ev.Needle)
			}
		default:
			t.Fatalf("event drew kind %s outside the mix", ev.Kind)
		}
	}
	if !sawInterval {
		t.Fatal("no interval events drawn from a 50% mix")
	}

	// A non-membership mix without an argument mapping is an error, not a
	// silently mis-typed plan.
	arr2, _ := Poisson(sched, 1)
	if _, err := GenerateMix(arr2, keys, mix, nil, 7, 0); err == nil {
		t.Fatal("GenerateMix with nil argsFor for a typed mix did not error")
	}
}

// TestDigestFoldsOutcomes is the satellite-2 pin: two runs producing the
// same answers by different paths (mesh-served vs degraded) must hash
// differently once outcomes are folded into the digest.
func TestDigestFoldsOutcomes(t *testing.T) {
	mk := func(outcome string) []TraceEvent {
		return []TraceEvent{
			{I: 0, AtNS: 0, Needle: 3, Args: serve.Args{3}, OK: true, Found: true, Value: 3, Outcome: outcome},
			{I: 1, AtNS: 10, Needle: 8, Args: serve.Args{8}, OK: true, Found: false, Value: 7, Outcome: "ok"},
		}
	}
	ok, deg := Digest(mk("ok")), Digest(mk("degraded"))
	if ok == deg {
		t.Fatal("digests identical across differing outcomes: outcome not folded in")
	}
	// Still deterministic in the events.
	if Digest(mk("ok")) != ok {
		t.Fatal("digest not deterministic")
	}
	// Kind is folded in too: the same scalar answer under a different kind
	// must not collide.
	a := []TraceEvent{{I: 0, Needle: 3, Args: serve.Args{3}, OK: true, Found: true, Value: 3, Outcome: "ok"}}
	b := []TraceEvent{{I: 0, Kind: serve.KindInterval, Needle: 3, Args: serve.Args{3}, OK: true, Found: true, Value: 3, Outcome: "ok"}}
	if Digest(a) == Digest(b) {
		t.Fatal("digests identical across differing kinds")
	}
}

// TestReadTraceV1Compat pins the trace-format contract: a v1 JSONL trace
// (membership only, no kinds, no outcomes) reads back as membership-kind
// events with Args and Value normalized, so replay and digesting work on old
// recordings.
func TestReadTraceV1Compat(t *testing.T) {
	v1 := strings.Join([]string{
		`{"kind":"meshserve-workload-trace","version":1,"workload":"poisson","side":8,"keys":16,"seed":42,"events":2}`,
		`{"i":0,"at_ns":0,"needle":3,"ok":true,"found":true,"leaf":3,"steps":4}`,
		`{"i":1,"at_ns":1500,"needle":8}`,
	}, "\n") + "\n"
	h, events, err := ReadTrace(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 || h.Kinds != "" {
		t.Fatalf("v1 header mangled: %+v", h)
	}
	ev := events[0]
	if ev.Kind != serve.KindMembership || ev.Args != (serve.Args{3}) || ev.Value != 3 || ev.Outcome != "ok" {
		t.Fatalf("v1 answered event not normalized: %+v", ev)
	}
	if e := events[1]; e.Kind != serve.KindMembership || e.Args != (serve.Args{8}) || e.OK || e.Outcome != "" {
		t.Fatalf("v1 unanswered event not normalized: %+v", e)
	}
	// And the normalized events digest/compare like native v2 ones.
	if Digest(events) == "" || Digest(events) != Digest(events) {
		t.Fatal("v1-normalized events do not digest deterministically")
	}
}

// TestTraceV2RoundTripWithKinds pins the v2 format: kinds, typed args, aux
// and outcomes survive a write/read cycle, and the header records the mix.
func TestTraceV2RoundTripWithKinds(t *testing.T) {
	events := []TraceEvent{
		{I: 0, AtNS: 0, Kind: serve.KindPointLoc, Needle: 5, Args: serve.Args{12, -7}, OK: true, Found: true, Value: 3, Steps: 6, Outcome: "ok"},
		{I: 1, AtNS: 900, Kind: serve.KindTangent, Needle: 9, Args: serve.Args{1, 0, -2}, OK: true, Found: true, Value: 4, Aux: 77, Steps: 5, Outcome: "degraded"},
		{I: 2, AtNS: 2000, Needle: 6, Args: serve.Args{6}, Outcome: "rejected"},
	}
	h := TraceHeader{Workload: "poisson", Side: 8, Keys: 16, Seed: 1, Kinds: "pointloc:0.5,tangent:0.5"}
	var buf strings.Builder
	if err := WriteTrace(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	gotH, gotE, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Version != 2 || gotH.Kinds != h.Kinds {
		t.Fatalf("v2 header mangled: %+v", gotH)
	}
	for i := range events {
		if gotE[i] != events[i] {
			t.Fatalf("event %d mangled: %+v vs %+v", i, gotE[i], events[i])
		}
	}
	// StripAnswers keeps the arrival identity including kind and args.
	stripped := StripAnswers(gotE)
	if s := stripped[1]; s.Kind != serve.KindTangent || s.Args != events[1].Args || s.OK || s.Outcome != "" {
		t.Fatalf("StripAnswers mangled arrival identity: %+v", s)
	}
}

// TestSLOPerKindClauses pins the mixed-workload SLO semantics: a minority
// kind blowing its p99 fails the probe even when the majority kind keeps the
// combined aggregate under target, and PerKind overrides relax one kind
// without relaxing the rest.
func TestSLOPerKindClauses(t *testing.T) {
	slo := SLO{P99: 10 * time.Millisecond, MaxDegraded: 1, MaxRejected: 1}
	rep := &Report{
		Total: WindowStats{Offered: 100, Answered: 100, P99: 5 * time.Millisecond},
		Kinds: map[string]*WindowStats{
			"membership": {Offered: 90, Answered: 90, P99: 4 * time.Millisecond},
			"pointloc":   {Offered: 10, Answered: 10, P99: 50 * time.Millisecond},
		},
	}
	pass, reason := slo.Pass(rep)
	if pass {
		t.Fatal("blown minority-kind p99 passed the combined SLO")
	}
	if !strings.Contains(reason, "pointloc") {
		t.Fatalf("violation %q does not name the kind", reason)
	}

	// A per-kind override admits the slow kind without loosening the rest.
	slo.PerKind = map[string]SLO{"pointloc": {P99: 100 * time.Millisecond, MaxDegraded: 1, MaxRejected: 1}}
	if pass, reason := slo.Pass(rep); !pass {
		t.Fatalf("per-kind override still fails: %s", reason)
	}
	rep.Kinds["membership"].P99 = 20 * time.Millisecond
	if pass, _ := slo.Pass(rep); pass {
		t.Fatal("non-overridden kind escaped the top-level clause")
	}
}

// TestRunMixedKindsChaosZeroWrong is the end-to-end mixed-workload bar: a
// three-kind open-loop run against a chaos-injected server, every answer
// checked against its kind's own host oracle — zero mismatches, zero failed
// queries, and per-kind aggregates in the report.
func TestRunMixedKindsChaosZeroWrong(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 42, PSortLie: 0.03, PCorrupt: 0.03, PDrop: 0.03, PDup: 0.03})
	s, err := serve.New(serve.Config{
		Side: 8, Linger: 500 * time.Microsecond,
		Kinds: []serve.Kind{serve.KindPointLoc, serve.KindInterval},
		Audit: true, Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	sched := Schedule{{Rate: 400, Dur: 600 * time.Millisecond}}
	arr, err := Poisson(sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := ZipfKeys(16, 1.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := ParseKindMix("membership:0.5,pointloc:0.3,interval:0.2")
	events, err := GenerateMix(arr, keys, mix, StructureArgs(s.Structures()), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Server: s, Events: events, Window: 200 * time.Millisecond,
		Check: StructureChecker(s.Structures()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Mismatched > 0 {
		t.Fatalf("%d answers disagreed with their kind's host oracle under chaos", rep.Total.Mismatched)
	}
	if rep.Total.Failed > 0 {
		t.Fatalf("%d queries failed under chaos", rep.Total.Failed)
	}
	if len(rep.Kinds) != 3 {
		t.Fatalf("report has per-kind aggregates for %d kinds, want 3", len(rep.Kinds))
	}
	for name, ks := range rep.Kinds {
		if ks.Answered == 0 {
			t.Errorf("kind %s answered nothing", name)
		}
		if ks.Mismatched > 0 || ks.Failed > 0 {
			t.Errorf("kind %s: %d mismatched, %d failed", name, ks.Mismatched, ks.Failed)
		}
	}
	if inj.Count() == 0 {
		t.Fatal("chaos injected no faults; the test exercised nothing")
	}
	// Outcomes were folded into every event for the digest.
	for i := range events {
		if events[i].Outcome == "" {
			t.Fatalf("event %d has no outcome after the run", i)
		}
	}
}
