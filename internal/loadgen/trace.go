package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/serve"
)

// TraceHeader is the first JSONL line of a workload trace: enough context to
// refuse a replay against the wrong server shape.
type TraceHeader struct {
	Kind     string `json:"kind"` // always traceKind
	Version  int    `json:"version"`
	Workload string `json:"workload"` // poisson | burst
	Side     int    `json:"side"`
	Keys     int    `json:"keys"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
	// Kinds is the query-kind mix the trace was generated with (v2; empty
	// means membership only — which is what every v1 trace was).
	Kinds string `json:"kinds,omitempty"`
}

const (
	traceKind = "meshserve-workload-trace"
	// traceVersion is the version WriteTrace emits. v1 recorded membership
	// queries and answers only; v2 adds the query kind, its typed arguments,
	// the kind-generic Value/Aux answer, and the per-query outcome. ReadTrace
	// accepts both — a v1 trace reads back as membership-kind events.
	traceVersion   = 2
	traceVersionV1 = 1
)

// TraceEvent is one arrival: its offset on the open-loop clock, its query
// kind and arguments, and — once the run has answered it — the recorded
// answer plus how the arrival fared. Replay re-fires the same queries on the
// same clock and compares its answers to these.
type TraceEvent struct {
	I      int        `json:"i"`
	AtNS   int64      `json:"at_ns"`
	Kind   serve.Kind `json:"kind,omitempty"` // zero value = membership (v1 traces)
	Needle int64      `json:"needle"`
	Args   serve.Args `json:"args"`

	// Answer fields, filled by Run. OK means the query was answered by the
	// server (mesh-served or degraded); rejected/shed/failed arrivals keep
	// OK=false and are excluded from the answer stream. Value is the kind's
	// primary answer (for membership it equals Leaf, kept for v1 traces).
	OK    bool  `json:"ok,omitempty"`
	Found bool  `json:"found,omitempty"`
	Leaf  int64 `json:"leaf,omitempty"`
	Value int64 `json:"value,omitempty"`
	Aux   int64 `json:"aux,omitempty"`
	Steps int32 `json:"steps,omitempty"`
	// Outcome is the arrival's fate (ok | degraded | rejected | shed |
	// failed), folded into the v2 digest so two runs that produced the same
	// answers by different paths no longer hash identically.
	Outcome string `json:"outcome,omitempty"`
}

// WriteTrace emits the header and one event per line as JSONL (always the
// current trace version).
func WriteTrace(w io.Writer, h TraceHeader, events []TraceEvent) error {
	h.Kind = traceKind
	h.Version = traceVersion
	h.Events = len(events)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("loadgen: write trace header: %w", err)
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("loadgen: write trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace written by WriteTrace. Both trace versions
// are readable: a v1 trace (membership only, no outcomes) comes back as
// membership-kind events with Args and Value filled from its needle/leaf
// fields, so replay and digesting work uniformly downstream.
func ReadTrace(r io.Reader) (TraceHeader, []TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: empty trace")
	}
	var h TraceHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: bad trace header: %w", err)
	}
	if h.Kind != traceKind || (h.Version != traceVersion && h.Version != traceVersionV1) {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: not a v%d/v%d %s (got kind %q version %d)",
			traceVersionV1, traceVersion, traceKind, h.Kind, h.Version)
	}
	events := make([]TraceEvent, 0, h.Events)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: bad trace event %d: %w", len(events), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: read trace: %w", err)
	}
	if len(events) != h.Events {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: trace truncated: header says %d events, read %d", h.Events, len(events))
	}
	for i := range events {
		ev := &events[i]
		if ev.I != i {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: trace event order broken at %d (got index %d)", i, ev.I)
		}
		if ev.AtNS < 0 || (i > 0 && ev.AtNS < events[i-1].AtNS) {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: trace arrival clock not monotone at event %d", i)
		}
		if h.Version == traceVersionV1 {
			// Normalize v1 shape to v2 semantics: membership kind, the
			// needle as the single typed argument, the leaf as Value, and
			// the outcome reconstructed from the answer bit (v1 did not
			// distinguish degraded; ok is the faithful upper bound).
			ev.Kind = serve.KindMembership
			ev.Args = serve.Args{ev.Needle}
			if ev.OK {
				ev.Value = ev.Leaf
				if ev.Outcome == "" {
					ev.Outcome = "ok"
				}
			}
		}
	}
	return h, events, nil
}

// StripAnswers returns a copy of events with the answer fields cleared — the
// replay input, leaving the recorded answers untouched for comparison.
func StripAnswers(events []TraceEvent) []TraceEvent {
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{I: ev.I, AtNS: ev.AtNS, Kind: ev.Kind, Needle: ev.Needle, Args: ev.Args}
	}
	return out
}

// CompareAnswers checks a replayed answer stream against the recorded one,
// returning the number of diverging events and a description of the first.
// Every recorded answer must be reproduced exactly (kind, arguments, found,
// value, path length); an arrival the replay failed to get answered counts
// as a divergence too. Outcomes are deliberately not compared — a recorded
// mesh answer replayed through the degrade rung is the same answer (that
// difference lives in the digest, not in replay verification).
func CompareAnswers(recorded, replayed []TraceEvent) (int, error) {
	if len(recorded) != len(replayed) {
		return 1, fmt.Errorf("event count differs: recorded %d, replayed %d", len(recorded), len(replayed))
	}
	mismatches := 0
	var first error
	for i := range recorded {
		rec, rep := recorded[i], replayed[i]
		if rec.Kind != rep.Kind || rec.Args != rep.Args || rec.Needle != rep.Needle || rec.AtNS != rep.AtNS {
			mismatches++
			if first == nil {
				first = fmt.Errorf("event %d: arrival differs (%s %v@%dns vs %s %v@%dns)",
					i, rec.Kind, rec.Args, rec.AtNS, rep.Kind, rep.Args, rep.AtNS)
			}
			continue
		}
		if !rec.OK {
			continue // nothing recorded to reproduce
		}
		if !rep.OK || rec.Found != rep.Found || rec.Value != rep.Value || rec.Leaf != rep.Leaf || rec.Steps != rep.Steps {
			mismatches++
			if first == nil {
				first = fmt.Errorf("event %d (%s %v): recorded ok=%v found=%v value=%d steps=%d, replayed ok=%v found=%v value=%d steps=%d",
					i, rec.Kind, rec.Args, rec.OK, rec.Found, rec.Value, rec.Steps,
					rep.OK, rep.Found, rep.Value, rep.Steps)
			}
		}
	}
	return mismatches, first
}
