package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceHeader is the first JSONL line of a workload trace: enough context to
// refuse a replay against the wrong server shape.
type TraceHeader struct {
	Kind     string `json:"kind"` // always traceKind
	Version  int    `json:"version"`
	Workload string `json:"workload"` // poisson | burst
	Side     int    `json:"side"`
	Keys     int    `json:"keys"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
}

const (
	traceKind    = "meshserve-workload-trace"
	traceVersion = 1
)

// TraceEvent is one arrival: its offset on the open-loop clock, its needle,
// and — once the run has answered it — the recorded answer. Replay re-fires
// the same needles on the same clock and compares its answers to these.
type TraceEvent struct {
	I      int   `json:"i"`
	AtNS   int64 `json:"at_ns"`
	Needle int64 `json:"needle"`

	// Answer fields, filled by Run. OK means the query was answered by the
	// server (mesh-served or degraded); rejected/shed/failed arrivals keep
	// OK=false and are excluded from the answer stream.
	OK    bool  `json:"ok,omitempty"`
	Found bool  `json:"found,omitempty"`
	Leaf  int64 `json:"leaf,omitempty"`
	Steps int32 `json:"steps,omitempty"`
}

// WriteTrace emits the header and one event per line as JSONL.
func WriteTrace(w io.Writer, h TraceHeader, events []TraceEvent) error {
	h.Kind = traceKind
	h.Version = traceVersion
	h.Events = len(events)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("loadgen: write trace header: %w", err)
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("loadgen: write trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace written by WriteTrace.
func ReadTrace(r io.Reader) (TraceHeader, []TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: empty trace")
	}
	var h TraceHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: bad trace header: %w", err)
	}
	if h.Kind != traceKind || h.Version != traceVersion {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: not a v%d %s (got kind %q version %d)",
			traceVersion, traceKind, h.Kind, h.Version)
	}
	events := make([]TraceEvent, 0, h.Events)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: bad trace event %d: %w", len(events), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: read trace: %w", err)
	}
	if len(events) != h.Events {
		return TraceHeader{}, nil, fmt.Errorf("loadgen: trace truncated: header says %d events, read %d", h.Events, len(events))
	}
	for i := range events {
		if events[i].I != i {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: trace event order broken at %d (got index %d)", i, events[i].I)
		}
		if events[i].AtNS < 0 || (i > 0 && events[i].AtNS < events[i-1].AtNS) {
			return TraceHeader{}, nil, fmt.Errorf("loadgen: trace arrival clock not monotone at event %d", i)
		}
	}
	return h, events, nil
}

// StripAnswers returns a copy of events with the answer fields cleared — the
// replay input, leaving the recorded answers untouched for comparison.
func StripAnswers(events []TraceEvent) []TraceEvent {
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{I: ev.I, AtNS: ev.AtNS, Needle: ev.Needle}
	}
	return out
}

// CompareAnswers checks a replayed answer stream against the recorded one,
// returning the number of diverging events and a description of the first.
// Every recorded answer must be reproduced exactly (needle, membership,
// leaf, path length); an arrival the replay failed to get answered counts
// as a divergence too.
func CompareAnswers(recorded, replayed []TraceEvent) (int, error) {
	if len(recorded) != len(replayed) {
		return 1, fmt.Errorf("event count differs: recorded %d, replayed %d", len(recorded), len(replayed))
	}
	mismatches := 0
	var first error
	for i := range recorded {
		rec, rep := recorded[i], replayed[i]
		if rec.Needle != rep.Needle || rec.AtNS != rep.AtNS {
			mismatches++
			if first == nil {
				first = fmt.Errorf("event %d: arrival differs (needle %d@%dns vs %d@%dns)",
					i, rec.Needle, rec.AtNS, rep.Needle, rep.AtNS)
			}
			continue
		}
		if !rec.OK {
			continue // nothing recorded to reproduce
		}
		if !rep.OK || rec.Found != rep.Found || rec.Leaf != rep.Leaf || rec.Steps != rep.Steps {
			mismatches++
			if first == nil {
				first = fmt.Errorf("event %d (needle %d): recorded ok=%v found=%v leaf=%d steps=%d, replayed ok=%v found=%v leaf=%d steps=%d",
					i, rec.Needle, rec.OK, rec.Found, rec.Leaf, rec.Steps,
					rep.OK, rep.Found, rep.Leaf, rep.Steps)
			}
		}
	}
	return mismatches, first
}
