package loadgen

import (
	"testing"
	"time"
)

func collect(t *testing.T, a *Arrivals) []time.Duration {
	t.Helper()
	var out []time.Duration
	for {
		at, ok := a.Next()
		if !ok {
			return out
		}
		out = append(out, at)
		if len(out) > 1_000_000 {
			t.Fatal("arrival process never terminates")
		}
	}
}

// TestPoissonDeterministicAndMonotone: same seed → identical arrival
// sequence (the record/replay foundation), strictly monotone, inside the
// schedule span.
func TestPoissonDeterministicAndMonotone(t *testing.T) {
	sched := Schedule{{Rate: 500, Dur: 2 * time.Second}}
	a1, err := Poisson(sched, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Poisson(sched, 42)
	s1, s2 := collect(t, a1), collect(t, a2)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("sequences differ in length: %d vs %d", len(s1), len(s2))
	}
	prev := time.Duration(-1)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("arrival %d differs across same-seed runs: %v vs %v", i, s1[i], s2[i])
		}
		if s1[i] <= prev {
			t.Fatalf("arrival clock not strictly monotone at %d: %v after %v", i, s1[i], prev)
		}
		prev = s1[i]
		if s1[i] > sched.Total() {
			t.Fatalf("arrival %d at %v beyond schedule end %v", i, s1[i], sched.Total())
		}
	}
	a3, _ := Poisson(sched, 43)
	s3 := collect(t, a3)
	if len(s3) == len(s1) {
		same := true
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical sequences")
		}
	}
}

// TestPoissonRateAndSchedule checks the offered rate tracks λ(t): counts per
// phase match rate·dur within 5σ, including across a 10× diurnal step.
func TestPoissonRateAndSchedule(t *testing.T) {
	sched := Schedule{
		{Rate: 200, Dur: 2 * time.Second},
		{Rate: 2000, Dur: 2 * time.Second},
	}
	a, err := Poisson(sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	arr := collect(t, a)
	var low, high int
	for _, at := range arr {
		if at < 2*time.Second {
			low++
		} else {
			high++
		}
	}
	checkCount := func(name string, got int, want float64) {
		sigma := 5 * (want * 0.05) // λ=400/4000: 5·√λ ≪ 5%·λ, use the looser bar
		if float64(got) < want-sigma-5*20 || float64(got) > want+sigma+5*20 {
			t.Fatalf("%s phase: %d arrivals, want ≈ %.0f", name, got, want)
		}
	}
	checkCount("low", low, 400)
	checkCount("high", high, 4000)
}

// TestBurstyOnOffWindows: no arrivals land in OFF windows, and the
// ON-window rate is boosted so the schedule's average is preserved.
func TestBurstyOnOffWindows(t *testing.T) {
	const on, off = 100 * time.Millisecond, 300 * time.Millisecond
	sched := Schedule{{Rate: 1000, Dur: 4 * time.Second}}
	a, err := Bursty(sched, on, off, 99)
	if err != nil {
		t.Fatal(err)
	}
	arr := collect(t, a)
	for i, at := range arr {
		if pos := at % (on + off); pos > on {
			t.Fatalf("arrival %d at %v lands in an OFF window (pos %v)", i, at, pos)
		}
	}
	// Average preserved: ≈ 1000 qps × 4s = 4000 arrivals despite 75% silence.
	if len(arr) < 3400 || len(arr) > 4600 {
		t.Fatalf("bursty produced %d arrivals, want ≈ 4000", len(arr))
	}
}

// TestParseSchedule pins the flag syntax and its error paths.
func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("200x2s,800x500ms,200", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{{200, 2 * time.Second}, {800, 500 * time.Millisecond}, {200, 3 * time.Second}}
	if len(s) != len(want) {
		t.Fatalf("parsed %d phases, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("phase %d = %+v, want %+v", i, s[i], want[i])
		}
	}
	for _, bad := range []string{"", "abc", "100xnope", "-5", "0x1s", "100x0s"} {
		if _, err := ParseSchedule(bad, time.Second); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestZipfKeysSkewAndDeterminism: the hot key dominates, draws stay in the
// needle domain, and the sequence is seed-deterministic.
func TestZipfKeysSkewAndDeterminism(t *testing.T) {
	const keys = 64
	z1, err := ZipfKeys(keys, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	z2, _ := ZipfKeys(keys, 1.5, 5)
	counts := make(map[int64]int)
	for i := 0; i < 20000; i++ {
		v1, v2 := z1.Draw(), z2.Draw()
		if v1 != v2 {
			t.Fatalf("draw %d differs across same-seed zipfs: %d vs %d", i, v1, v2)
		}
		if v1 < 0 || v1 >= 2*keys {
			t.Fatalf("draw %d = %d outside [0, %d)", i, v1, 2*keys)
		}
		counts[v1]++
	}
	if counts[0] < counts[10]*2 || counts[0] < 2000 {
		t.Fatalf("zipf not skewed toward the hot key: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	if _, err := ZipfKeys(keys, 0.9, 1); err == nil {
		t.Fatal("zipf accepted s ≤ 1")
	}
	u, err := UniformKeys(keys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := u.Draw(); v < 0 || v >= 2*keys {
			t.Fatalf("uniform draw %d outside domain", v)
		}
	}
}
