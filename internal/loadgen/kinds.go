package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/serve"
)

// KindMix is a weighted distribution over query kinds — the workload knob
// that turns the single-family generator into a mixed-workload one. Weights
// are normalized at parse time, so "membership:3,pointloc:1" and
// "membership:0.75,pointloc:0.25" describe the same mix.
type KindMix struct {
	kinds []serve.Kind
	cum   []float64 // normalized cumulative weights, cum[len-1] == 1
}

// ParseKindMix parses a mix spec: comma-separated kind:weight pairs
// ("membership:0.6,pointloc:0.3,interval:0.1"), a bare kind name
// ("pointloc" — weight 1), or the empty string (membership only). Kind
// names accept the same aliases as /search?kind=.
func ParseKindMix(spec string) (*KindMix, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return SingleKind(serve.KindMembership), nil
	}
	var kinds []serve.Kind
	var weights []float64
	seen := map[serve.Kind]bool{}
	for _, part := range strings.Split(spec, ",") {
		name, wstr, hasW := strings.Cut(strings.TrimSpace(part), ":")
		k, err := serve.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("loadgen: kind mix %q: %w", spec, err)
		}
		w := 1.0
		if hasW {
			w, err = strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: kind mix %q: weight for %s must be a positive number", spec, k)
			}
		}
		if seen[k] {
			return nil, fmt.Errorf("loadgen: kind mix %q: kind %s appears twice", spec, k)
		}
		seen[k] = true
		kinds = append(kinds, k)
		weights = append(weights, w)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	m := &KindMix{kinds: kinds, cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // absorb rounding
	return m, nil
}

// SingleKind is the degenerate mix: every draw returns k.
func SingleKind(k serve.Kind) *KindMix {
	return &KindMix{kinds: []serve.Kind{k}, cum: []float64{1}}
}

// Kinds lists the kinds in the mix, in spec order.
func (m *KindMix) Kinds() []serve.Kind { return m.kinds }

// Draw samples one kind.
func (m *KindMix) Draw(rng *rand.Rand) serve.Kind {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.kinds) {
		i = len(m.kinds) - 1
	}
	return m.kinds[i]
}

// String renders the mix in parseable form.
func (m *KindMix) String() string {
	var b strings.Builder
	prev := 0.0
	for i, k := range m.kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%.3g", k, m.cum[i]-prev)
		prev = m.cum[i]
	}
	return b.String()
}

// StructureArgs maps the popularity draw's scalar to kind-typed query
// arguments via the structure set's own deterministic mapping — the same
// needle always yields the same point/window/direction, so record/replay
// stays a pure function of the event slice.
func StructureArgs(ss *serve.StructureSet) func(serve.Kind, int64) serve.Args {
	return func(k serve.Kind, needle int64) serve.Args {
		if st := ss.Get(k); st != nil {
			return st.ArgsFor(needle)
		}
		return serve.Args{needle}
	}
}

// StructureChecker builds the per-kind answer check from the host-side
// structure set: an answer matches when Found and Value agree with the
// kind's host oracle descent (the same descent the serving degrade rung
// uses, so mesh, degraded, and fleet-oracle answers are all held to one
// reference). Kinds absent from the set pass vacuously — the target would
// have rejected them with ErrKindNotServed before answering.
func StructureChecker(ss *serve.StructureSet) func(serve.Kind, serve.Args, serve.Result) bool {
	return func(k serve.Kind, args serve.Args, res serve.Result) bool {
		st := ss.Get(k)
		if st == nil {
			return true
		}
		want := serve.HostAnswer(st, args)
		return res.Found == want.Found && res.Value == want.Value
	}
}

// GenerateMix materializes a mixed-kind arrival plan: each arrival draws a
// kind from the mix and a needle from the popularity draw, and argsFor maps
// the pair to typed arguments (nil argsFor is allowed for membership-only
// mixes). seed drives the kind draw so the plan is reproducible.
func GenerateMix(a *Arrivals, k KeyDraw, mix *KindMix, argsFor func(serve.Kind, int64) serve.Args, seed int64, max int) ([]TraceEvent, error) {
	if mix == nil {
		mix = SingleKind(serve.KindMembership)
	}
	if argsFor == nil {
		for _, kind := range mix.kinds {
			if kind != serve.KindMembership {
				return nil, fmt.Errorf("loadgen: kind mix includes %s but no argsFor mapping was given", kind)
			}
		}
		argsFor = func(_ serve.Kind, needle int64) serve.Args { return serve.Args{needle} }
	}
	if max <= 0 {
		max = 2_000_000
	}
	rng := rand.New(rand.NewSource(seed))
	var events []TraceEvent
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		if len(events) >= max {
			return nil, fmt.Errorf("loadgen: schedule generates more than %d arrivals; lower the rate or raise the cap", max)
		}
		kind := mix.Draw(rng)
		needle := k.Draw()
		events = append(events, TraceEvent{
			I:      len(events),
			AtNS:   int64(at),
			Kind:   kind,
			Needle: needle,
			Args:   argsFor(kind, needle),
		})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("loadgen: schedule produced no arrivals")
	}
	return events, nil
}
