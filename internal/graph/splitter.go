package graph

import (
	"fmt"
	"math"
)

// δ-splitters (§4.1). A splitting is installed on a graph by assigning
// Part (primary/α) or Part2 (secondary/β) indices to vertices; the edges
// of the splitter S are exactly the edges whose endpoints carry different
// part indices. RefreshAdjParts must run after installation so queries can
// detect border crossings locally.

// Slot selects which of the two part registers a splitting occupies.
type Slot int

const (
	// Primary is the α-splitting, stored in Vertex.Part.
	Primary Slot = iota
	// Secondary is the β-splitting, stored in Vertex.Part2.
	Secondary
)

func (s Slot) get(v *Vertex) int32 {
	if s == Primary {
		return v.Part
	}
	return v.Part2
}

// PartOf returns the vertex's part index in this splitting slot.
func (s Slot) PartOf(v *Vertex) int32 { return s.get(v) }

// AdjPartOf returns the part index (in this slot) of the neighbour at
// adjacency slot j.
func (s Slot) AdjPartOf(v *Vertex, j int) int32 {
	if s == Primary {
		return v.AdjPart[j]
	}
	return v.AdjPart2[j]
}

func (s Slot) set(v *Vertex, p int32) {
	if s == Primary {
		v.Part = p
	} else {
		v.Part2 = p
	}
}

// Splitting summarizes an installed δ-splitting.
type Splitting struct {
	Slot    Slot
	K       int   // number of parts
	Sizes   []int // vertices per part
	MaxPart int
	// Delta is the achieved exponent: MaxPart = n^Delta.
	Delta float64
}

// InstallTreeSplitter installs on t the splitting obtained by removing all
// tree edges between depths cut-1 and cut: part 0 is the top tree (depths
// < cut) and part 1+j is the j-th subtree rooted at depth cut. For directed
// (downward) trees this is an α-splitter with H = {top} and T = {subtrees}:
// every removed edge leads from the top tree into a subtree (Figure 2).
func InstallTreeSplitter(t *Tree, cut int, slot Slot) Splitting {
	if cut < 1 || cut > t.Height {
		panic(fmt.Sprintf("graph: cut depth %d outside [1, %d]", cut, t.Height))
	}
	nTop := t.LevelStart[cut]
	roots := t.LevelSizes[cut]
	sizes := make([]int, 1+roots)
	for i := range t.Verts {
		v := &t.Verts[i]
		d := int(t.Depth[i])
		var p int32
		if d < cut {
			p = 0
		} else {
			// Ancestor of i at depth cut indexes the subtree part.
			anc := VertexID(i)
			for int(t.Depth[anc]) > cut {
				anc = t.Parent[anc]
			}
			p = 1 + int32(anc) - int32(t.LevelStart[cut])
		}
		slot.set(v, p)
		sizes[p]++
	}
	t.RefreshAdjParts()
	maxPart := nTop
	sub := t.SubtreeSize(cut)
	if sub > maxPart {
		maxPart = sub
	}
	n := float64(t.N())
	return Splitting{
		Slot: slot, K: len(sizes), Sizes: sizes, MaxPart: maxPart,
		Delta: math.Log(float64(maxPart)) / math.Log(n),
	}
}

// NormalizeParts regroups an installed splitting so every resulting part
// has between target and groupCap ≥ 2·target vertices (except possibly one
// smaller leftover group per class), making the splitting normalized:
// k = O(n/target). classOf assigns each original part a class label; only
// parts of the same class are grouped together, which preserves the H/T
// bipartition of α-partitionable graphs. Returns the new Splitting.
func NormalizeParts(g *Graph, s Splitting, target int, classOf func(part int32) int) Splitting {
	if target < 1 {
		panic("graph: NormalizeParts target must be ≥ 1")
	}
	// Greedy first-fit by class: parts arrive in index order; a group closes
	// once it reaches target vertices.
	type group struct {
		id   int32
		size int
	}
	open := map[int]*group{}
	remap := make([]int32, s.K)
	var newSizes []int
	next := int32(0)
	for p := 0; p < s.K; p++ {
		cls := classOf(int32(p))
		gr := open[cls]
		if gr == nil {
			gr = &group{id: next}
			next++
			newSizes = append(newSizes, 0)
			open[cls] = gr
		}
		remap[p] = gr.id
		gr.size += s.Sizes[p]
		newSizes[gr.id] += s.Sizes[p]
		if gr.size >= target {
			delete(open, cls)
		}
	}
	for i := range g.Verts {
		v := &g.Verts[i]
		if old := s.Slot.get(v); old >= 0 {
			s.Slot.set(v, remap[old])
		}
	}
	g.RefreshAdjParts()
	maxPart := 0
	for _, sz := range newSizes {
		if sz > maxPart {
			maxPart = sz
		}
	}
	return Splitting{
		Slot: s.Slot, K: len(newSizes), Sizes: newSizes, MaxPart: maxPart,
		Delta: math.Log(float64(maxPart)) / math.Log(float64(g.N())),
	}
}

// ValidateAlphaPartitionable checks the §4.2 property on the installed
// primary splitting of a directed graph: the parts admit a bipartition
// {H...} ∪ {T...} with every cross-part arc leading from an H-part to a
// T-part. Equivalently, no part has both an outgoing and an incoming
// cross-part arc.
func ValidateAlphaPartitionable(g *Graph) error {
	if !g.Directed {
		return fmt.Errorf("graph: α-partitionable applies to directed graphs")
	}
	hasOut := map[int32]bool{}
	hasIn := map[int32]bool{}
	for i := range g.Verts {
		v := &g.Verts[i]
		for j := 0; j < int(v.Deg); j++ {
			if v.AdjPart[j] != v.Part {
				hasOut[v.Part] = true
				hasIn[v.AdjPart[j]] = true
			}
		}
	}
	for p := range hasOut {
		if hasIn[p] {
			return fmt.Errorf("graph: part %d has both incoming and outgoing splitter arcs", p)
		}
	}
	return nil
}

// BorderVertices returns the vertices incident to a splitter edge of the
// given slot (the §4.1 "border" of S).
func BorderVertices(g *Graph, slot Slot) []VertexID {
	var out []VertexID
	for i := range g.Verts {
		v := &g.Verts[i]
		adj := v.AdjPart
		if slot == Secondary {
			adj = v.AdjPart2
		}
		for j := 0; j < int(v.Deg); j++ {
			if adj[j] != slot.get(v) {
				out = append(out, v.ID)
				break
			}
		}
	}
	return out
}

// SplitterDistance returns the minimum graph distance between the borders
// of the primary and secondary splitters (∞ is reported as -1 when either
// border is empty). BFS over the host representation; used to validate the
// Ω(log n) distance condition of α-β-partitionable graphs (§4.3).
func SplitterDistance(g *Graph) int {
	b1 := BorderVertices(g, Primary)
	b2 := BorderVertices(g, Secondary)
	if len(b1) == 0 || len(b2) == 0 {
		return -1
	}
	inB2 := make([]bool, g.N())
	for _, v := range b2 {
		inB2[v] = true
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]VertexID, 0, len(b1))
	for _, v := range b1 {
		dist[v] = 0
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if inB2[u] {
			return int(dist[u])
		}
		vu := &g.Verts[u]
		for j := 0; j < int(vu.Deg); j++ {
			w := vu.Adj[j]
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return -1
}
