package graph

import "testing"

func TestExtPayload(t *testing.T) {
	g := New(2, true)
	if g.ExtOf(&g.Verts[0]) != nil {
		t.Fatal("fresh vertex should have no ext block")
	}
	idx := g.AddExt([]int64{7, 8, 9})
	g.Verts[0].ExtIdx = idx
	got := g.ExtOf(&g.Verts[0])
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("ext block %v", got)
	}
	idx2 := g.AddExt([]int64{1})
	if idx2 == idx {
		t.Fatal("ext indices must be distinct")
	}
}

func TestSlotAccessors(t *testing.T) {
	g := New(2, true)
	g.AddArc(0, 1)
	g.Verts[0].Part = 3
	g.Verts[0].Part2 = 4
	g.Verts[1].Part = 5
	g.Verts[1].Part2 = 6
	g.RefreshAdjParts()
	v := &g.Verts[0]
	if Primary.PartOf(v) != 3 || Secondary.PartOf(v) != 4 {
		t.Fatal("PartOf")
	}
	if Primary.AdjPartOf(v, 0) != 5 || Secondary.AdjPartOf(v, 0) != 6 {
		t.Fatal("AdjPartOf")
	}
}

func TestChildSlotDirected(t *testing.T) {
	tr := NewBalancedTree(2, 3, true)
	// Directed trees: slot c is child c everywhere, including non-roots.
	inner := VertexID(1)
	for c := 0; c < 2; c++ {
		if tr.ChildSlot(inner, c) != c {
			t.Fatalf("directed ChildSlot(%d)=%d", c, tr.ChildSlot(inner, c))
		}
	}
}

func TestHDagValidateErrors(t *testing.T) {
	// Undirected "DAG".
	und := &HDag{Graph: New(1, false), Mu: 2, LevelSizes: []int{1}, LevelStart: []int{0}}
	und.Verts[0].Level = 0
	if und.Validate(0.5, 2) == nil {
		t.Fatal("undirected accepted")
	}
	// |L_0| ≠ 1.
	d := CompleteTreeHDag(2, 3)
	d.LevelSizes[0] = 2
	if d.Validate(0.5, 2) == nil {
		t.Fatal("bad root level accepted")
	}
	d.LevelSizes[0] = 1
	// Level size outside the [c1,c2]·μ^i band.
	if d.Validate(1.5, 2) == nil {
		t.Fatal("size band violation accepted")
	}
	// Level-skipping arc.
	d2 := CompleteTreeHDag(2, 3)
	d2.Verts[0].Adj[0] = VertexID(d2.LevelStart[2]) // root → level 2
	if d2.Validate(0.9, 1.1) == nil {
		t.Fatal("level-skipping arc accepted")
	}
}

func TestInstallDepthSplitterPanics(t *testing.T) {
	tr := NewBalancedTree(2, 3, true)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("cut 0 accepted")
			}
		}()
		InstallDepthSplitter(tr.Graph, tr.Root(), tr.Depth, 0, Primary)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("depth length mismatch accepted")
			}
		}()
		InstallDepthSplitter(tr.Graph, tr.Root(), tr.Depth[:2], 1, Primary)
	}()
}

func TestInstallDepthSplitterMatchesTreeSplitter(t *testing.T) {
	// On a complete tree the generic depth splitter must agree with the
	// specialized installer.
	a := NewBalancedTree(2, 6, true)
	b := NewBalancedTree(2, 6, true)
	s1 := InstallTreeSplitter(a, 3, Primary)
	s2 := InstallDepthSplitter(b.Graph, b.Root(), b.Depth, 3, Primary)
	if s1.K != s2.K || s1.MaxPart != s2.MaxPart {
		t.Fatalf("splitters disagree: %+v vs %+v", s1, s2)
	}
	for i := range a.Verts {
		// Part numbering may differ; compare partition structure by
		// checking that equality classes match.
		for j := range a.Verts {
			sameA := a.Verts[i].Part == a.Verts[j].Part
			sameB := b.Verts[i].Part == b.Verts[j].Part
			if sameA != sameB {
				t.Fatalf("vertices %d,%d: grouped %v vs %v", i, j, sameA, sameB)
			}
		}
	}
}

func TestInstallDepthSplitterUndirectedTree(t *testing.T) {
	tr := NewBalancedTree(2, 5, false)
	s := InstallDepthSplitter(tr.Graph, tr.Root(), tr.Depth, 2, Primary)
	total := 0
	for _, sz := range s.Sizes {
		total += sz
	}
	if total != tr.N() {
		t.Fatalf("covered %d of %d", total, tr.N())
	}
}

func TestInstallTreeSplitterPanicsOnBadCut(t *testing.T) {
	tr := NewBalancedTree(2, 4, true)
	for _, cut := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cut %d accepted", cut)
				}
			}()
			InstallTreeSplitter(tr, cut, Primary)
		}()
	}
}

func TestNormalizePartsPanicsOnBadTarget(t *testing.T) {
	tr := NewBalancedTree(2, 4, true)
	s := InstallTreeSplitter(tr, 2, Primary)
	defer func() {
		if recover() == nil {
			t.Fatal("target 0 accepted")
		}
	}()
	NormalizeParts(tr.Graph, s, 0, func(int32) int { return 0 })
}

func TestSplitterDistanceEmptyBorder(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// All one part in both slots: no splitter edges at all.
	for i := range g.Verts {
		g.Verts[i].Part = 0
		g.Verts[i].Part2 = 0
	}
	g.RefreshAdjParts()
	if d := SplitterDistance(g); d != -1 {
		t.Fatalf("distance %d for empty borders", d)
	}
}

func TestTreePanicsOnBadArity(t *testing.T) {
	for _, f := range []func(){
		func() { NewBalancedTree(1, 3, true) },
		func() { NewBalancedTree(9, 3, true) },
		func() { NewBalancedTree(8, 3, false) }, // k+1 > MaxDegree undirected
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCompleteTreeHDagPanicsOnBadArity(t *testing.T) {
	for _, mu := range []int{1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mu=%d accepted", mu)
				}
			}()
			CompleteTreeHDag(mu, 3)
		}()
	}
}

func TestGraphSizeDirectedVsUndirected(t *testing.T) {
	dg := New(3, true)
	dg.AddArc(0, 1)
	ug := New(3, false)
	ug.AddEdge(0, 1)
	if dg.Size() != 4 || ug.Size() != 4 {
		t.Fatalf("sizes %d %d", dg.Size(), ug.Size())
	}
}
