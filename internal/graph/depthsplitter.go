package graph

import (
	"fmt"
	"math"
)

// InstallDepthSplitter installs the depth-cut splitting on an arbitrary
// rooted tree (not necessarily complete or of uniform arity): removing all
// edges between depths cut-1 and cut leaves the top tree (part 0) and one
// part per subtree rooted at depth cut. depths must give each vertex's
// distance from the root; for directed trees arcs must point away from the
// root. This generalizes InstallTreeSplitter to the (a,b)-trees and other
// irregular structures of §6.
func InstallDepthSplitter(g *Graph, root VertexID, depths []int32, cut int, slot Slot) Splitting {
	if cut < 1 {
		panic("graph: depth splitter cut must be ≥ 1")
	}
	if len(depths) != g.N() {
		panic("graph: depths length mismatch")
	}
	next := int32(1)
	sizes := []int{0}
	// BFS from the root assigning parts: the part changes exactly when the
	// BFS crosses the cut depth.
	part := make([]int32, g.N())
	for i := range part {
		part[i] = NoPart
	}
	queue := []VertexID{root}
	part[root] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		sizes[part[u]]++
		v := &g.Verts[u]
		for j := 0; j < int(v.Deg); j++ {
			w := v.Adj[j]
			if depths[w] != depths[u]+1 {
				continue // ignore parent arcs in undirected trees
			}
			if part[w] != NoPart {
				continue
			}
			if int(depths[w]) == cut {
				part[w] = next
				next++
				sizes = append(sizes, 0)
			} else {
				part[w] = part[u]
			}
			queue = append(queue, w)
		}
	}
	maxPart := 0
	total := 0
	for _, s := range sizes {
		total += s
		if s > maxPart {
			maxPart = s
		}
	}
	if total != g.N() {
		panic(fmt.Sprintf("graph: depth splitter covered %d of %d vertices (unreachable vertices?)", total, g.N()))
	}
	for i := range g.Verts {
		slot.set(&g.Verts[i], part[i])
	}
	g.RefreshAdjParts()
	return Splitting{
		Slot: slot, K: len(sizes), Sizes: sizes, MaxPart: maxPart,
		Delta: math.Log(float64(maxPart)) / math.Log(float64(g.N())),
	}
}
