// Package graph provides the search-structure side of the multisearch
// problem: constant-degree directed and undirected graphs, hierarchical
// DAGs (§3 of the paper), and δ-splitters with the α-partitionable and
// α-β-partitionable machinery of §4.
//
// A graph is represented host-side as a slice of fixed-size Vertex records;
// the multisearch algorithms in internal/core load these records onto mesh
// processors. Every record is O(1) machine words, matching the paper's
// "O(1) memory per processor" model: adjacency is a bounded array, and
// application payloads are packed into a fixed number of words.
package graph

import "fmt"

// VertexID identifies a vertex. IDs are dense: 0..n-1.
type VertexID int32

// Nil is the absent vertex.
const Nil VertexID = -1

// MaxDegree bounds the (out-)degree of every vertex. The paper requires a
// constant bound; 8 accommodates every structure built here (k-ary trees up
// to k=7 with parent pointer, triangulation DAG nodes, DK hierarchy links).
const MaxDegree = 8

// PayloadWords is the number of application payload words per vertex.
const PayloadWords = 8

// NoPart marks a vertex that belongs to no subgraph of a splitting.
const NoPart int32 = -1

// Payload is the fixed-size application data carried by a vertex
// (search keys, triangle corners, polyhedron face planes, ...).
type Payload [PayloadWords]int64

// Vertex is the record stored at one mesh processor: identity, adjacency,
// level index (hierarchical DAGs), splitting membership for itself and for
// each neighbour, and the application payload. Neighbour membership
// (AdjPart/AdjPart2) is what lets a query decide locally, in O(1) time,
// whether its next step leaves the current subgraph — the unmark test in
// step 6(b) of Constrained-Multisearch.
type Vertex struct {
	ID    VertexID
	Level int32 // level index in a hierarchical DAG; -1 otherwise
	Part  int32 // subgraph index in the primary (α) splitting; NoPart if none
	Part2 int32 // subgraph index in the secondary (β) splitting; NoPart if none
	Deg   int8

	Adj      [MaxDegree]VertexID
	AdjPart  [MaxDegree]int32
	AdjPart2 [MaxDegree]int32

	Data Payload
	// ExtIdx indexes the graph's extended-payload table (-1 if unused).
	// The referenced block is immutable, O(1)-sized per-vertex data that
	// conceptually travels with the record; the simulator stores it
	// out-of-line only to avoid bloating every Vertex copy (see Graph.Ext).
	ExtIdx int32
}

// Graph is a host-side constant-degree graph. Verts[i].ID == i.
type Graph struct {
	Directed bool
	Verts    []Vertex
	// Ext holds immutable extended payload blocks (each O(1) words),
	// referenced by Vertex.ExtIdx. On the physical machine these words are
	// part of the vertex record — every block must stay constant-size.
	Ext [][]int64
}

// AddExt registers an extended payload block and returns its index.
func (g *Graph) AddExt(block []int64) int32 {
	g.Ext = append(g.Ext, block)
	return int32(len(g.Ext) - 1)
}

// ExtOf returns the vertex's extended payload block (nil if none).
func (g *Graph) ExtOf(v *Vertex) []int64 {
	if v.ExtIdx < 0 {
		return nil
	}
	return g.Ext[v.ExtIdx]
}

// New creates a graph with n isolated vertices.
func New(n int, directed bool) *Graph {
	g := &Graph{Directed: directed, Verts: make([]Vertex, n)}
	for i := range g.Verts {
		v := &g.Verts[i]
		v.ID = VertexID(i)
		v.Level = -1
		v.Part = NoPart
		v.Part2 = NoPart
		v.ExtIdx = -1
		for j := range v.Adj {
			v.Adj[j] = Nil
			v.AdjPart[j] = NoPart
			v.AdjPart2[j] = NoPart
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Verts) }

// Size returns |V| + |E| with undirected edges counted once.
func (g *Graph) Size() int {
	e := 0
	for i := range g.Verts {
		e += int(g.Verts[i].Deg)
	}
	if !g.Directed {
		e /= 2
	}
	return len(g.Verts) + e
}

// AddArc adds the directed arc u→v (for undirected graphs use AddEdge).
func (g *Graph) AddArc(u, v VertexID) {
	vu := &g.Verts[u]
	if int(vu.Deg) >= MaxDegree {
		panic(fmt.Sprintf("graph: vertex %d exceeds MaxDegree", u))
	}
	vu.Adj[vu.Deg] = v
	vu.Deg++
}

// AddEdge adds the undirected edge {u, v} (arcs in both directions).
func (g *Graph) AddEdge(u, v VertexID) {
	g.AddArc(u, v)
	g.AddArc(v, u)
}

// EdgeIndex returns the adjacency slot of arc u→v, or -1.
func (g *Graph) EdgeIndex(u, v VertexID) int {
	vu := &g.Verts[u]
	for j := 0; j < int(vu.Deg); j++ {
		if vu.Adj[j] == v {
			return j
		}
	}
	return -1
}

// Validate checks structural invariants: dense IDs, in-range adjacency, and
// (for undirected graphs) arc symmetry.
func (g *Graph) Validate() error {
	n := VertexID(len(g.Verts))
	for i := range g.Verts {
		v := &g.Verts[i]
		if v.ID != VertexID(i) {
			return fmt.Errorf("graph: vertex %d has ID %d", i, v.ID)
		}
		for j := 0; j < int(v.Deg); j++ {
			w := v.Adj[j]
			if w < 0 || w >= n {
				return fmt.Errorf("graph: vertex %d arc %d out of range: %d", i, j, w)
			}
			if !g.Directed && g.EdgeIndex(w, v.ID) < 0 {
				return fmt.Errorf("graph: arc %d->%d missing its reverse", i, w)
			}
		}
	}
	return nil
}

// RefreshAdjParts recomputes AdjPart and AdjPart2 from the current Part and
// Part2 assignments. Call after installing or changing a splitting.
func (g *Graph) RefreshAdjParts() {
	for i := range g.Verts {
		v := &g.Verts[i]
		for j := 0; j < int(v.Deg); j++ {
			w := &g.Verts[v.Adj[j]]
			v.AdjPart[j] = w.Part
			v.AdjPart2[j] = w.Part2
		}
	}
}
