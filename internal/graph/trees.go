package graph

import "fmt"

// Tree is a complete balanced k-ary search tree, the running example of §4
// (Figures 2 and 3). Vertex IDs are level-major (BFS order). Leaves carry
// consecutive key spans; internal vertices route by span, so the successor
// function of a key search descends without any linear order on queries
// being needed (only span comparisons).
type Tree struct {
	*Graph
	K      int
	Height int
	Depth  []int32
	Parent []VertexID
	// LevelStart[d] is the first ID at depth d.
	LevelStart []int
	LevelSizes []int
}

// Payload layout shared with hierarchical DAGs: Data[0] span start,
// Data[1] span width (see HDagSpanStart/HDagSpanWidth).

// NewBalancedTree builds the complete k-ary tree of the given height.
// If down is true the tree is directed with arcs root→leaves (the
// α-partitionable case, Figure 2); otherwise it is undirected (the
// α-β-partitionable case, Figure 3; degree k+1 must stay ≤ MaxDegree).
func NewBalancedTree(k, height int, down bool) *Tree {
	if k < 2 {
		panic("graph: tree arity must be ≥ 2")
	}
	if down && k > MaxDegree || !down && k+1 > MaxDegree {
		panic(fmt.Sprintf("graph: arity %d exceeds degree budget", k))
	}
	sizes := make([]int, height+1)
	start := make([]int, height+1)
	n := 0
	p := 1
	for d := 0; d <= height; d++ {
		sizes[d] = p
		start[d] = n
		n += p
		p *= k
	}
	g := New(n, down)
	t := &Tree{
		Graph: g, K: k, Height: height,
		Depth:      make([]int32, n),
		Parent:     make([]VertexID, n),
		LevelStart: start, LevelSizes: sizes,
	}
	for d := 0; d <= height; d++ {
		width := int64(pow(k, height-d))
		for j := 0; j < sizes[d]; j++ {
			id := VertexID(start[d] + j)
			v := &g.Verts[id]
			v.Level = int32(d)
			v.Data[HDagSpanStart] = int64(j) * width
			v.Data[HDagSpanWidth] = width
			t.Depth[id] = int32(d)
			if d == 0 {
				t.Parent[id] = Nil
			} else {
				t.Parent[id] = VertexID(start[d-1] + j/k)
			}
			if d < height {
				for c := 0; c < k; c++ {
					child := VertexID(start[d+1] + j*k + c)
					if down {
						g.AddArc(id, child)
					} else {
						g.AddEdge(id, child)
					}
				}
			}
		}
	}
	return t
}

// Root returns the tree root.
func (t *Tree) Root() VertexID { return 0 }

// SubtreeSize returns the number of vertices in the subtree rooted at depth
// d (all subtrees at one depth of a complete tree have equal size).
func (t *Tree) SubtreeSize(d int) int {
	s := 0
	p := 1
	for i := d; i <= t.Height; i++ {
		s += p
		p *= t.K
	}
	return s
}

// ChildSlot returns the adjacency slot of the c-th child at an internal
// vertex: slot c for directed-down trees; for undirected non-root vertices
// the first slot is the parent edge, children follow.
func (t *Tree) ChildSlot(id VertexID, c int) int {
	if t.Directed || id == t.Root() {
		return c
	}
	// Undirected non-root: AddEdge(parent, child) ran parent-first, so this
	// vertex's slot 0 is its parent.
	return c + 1
}
