package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphZeroState(t *testing.T) {
	g := New(5, true)
	if g.N() != 5 || g.Size() != 5 {
		t.Fatalf("N=%d Size=%d", g.N(), g.Size())
	}
	for i := range g.Verts {
		v := &g.Verts[i]
		if v.ID != VertexID(i) || v.Deg != 0 || v.Part != NoPart || v.Adj[0] != Nil {
			t.Fatalf("vertex %d not initialized: %+v", i, v)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddArcAndEdgeIndex(t *testing.T) {
	g := New(3, true)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	if g.EdgeIndex(0, 2) != 1 || g.EdgeIndex(0, 1) != 0 || g.EdgeIndex(1, 0) != -1 {
		t.Fatal("EdgeIndex")
	}
	if g.Size() != 3+2 {
		t.Fatalf("Size=%d", g.Size())
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(2, false)
	g.AddEdge(0, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2+1 {
		t.Fatalf("Size=%d (undirected edges count once)", g.Size())
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(2, false)
	g.AddArc(0, 1) // missing reverse
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDegreeBoundPanics(t *testing.T) {
	g := New(MaxDegree+2, true)
	for i := 1; i <= MaxDegree; i++ {
		g.AddArc(0, VertexID(i))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddArc(0, MaxDegree+1)
}

func TestRefreshAdjParts(t *testing.T) {
	g := New(3, true)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.Verts[0].Part = 0
	g.Verts[1].Part = 1
	g.Verts[2].Part = 1
	g.Verts[0].Part2 = 5
	g.Verts[1].Part2 = 5
	g.Verts[2].Part2 = 6
	g.RefreshAdjParts()
	if g.Verts[0].AdjPart[0] != 1 || g.Verts[1].AdjPart[0] != 1 {
		t.Fatal("AdjPart")
	}
	if g.Verts[0].AdjPart2[0] != 5 || g.Verts[1].AdjPart2[0] != 6 {
		t.Fatal("AdjPart2")
	}
}

func TestCompleteTreeHDagStructure(t *testing.T) {
	d := CompleteTreeHDag(2, 5)
	if d.Height() != 5 || d.N() != 63 {
		t.Fatalf("height=%d n=%d", d.Height(), d.N())
	}
	if err := d.Validate(0.99, 1.01); err != nil {
		t.Fatal(err)
	}
	if d.Root() != 0 || d.LevelOf(0) != 0 {
		t.Fatal("root")
	}
	// Spans at each level tile [0, 2^5) exactly.
	for lvl := 0; lvl <= 5; lvl++ {
		total := int64(0)
		for j := 0; j < d.LevelSizes[lvl]; j++ {
			v := &d.Verts[d.LevelStart[lvl]+j]
			if v.Data[HDagSpanStart] != total {
				t.Fatalf("level %d vertex %d span start %d want %d", lvl, j, v.Data[HDagSpanStart], total)
			}
			total += v.Data[HDagSpanWidth]
		}
		if total != 32 {
			t.Fatalf("level %d spans cover %d", lvl, total)
		}
	}
}

func TestCompleteTreeHDagChildSpans(t *testing.T) {
	d := CompleteTreeHDag(3, 4)
	if err := d.Validate(0.99, 1.01); err != nil {
		t.Fatal(err)
	}
	for i := range d.Verts {
		v := &d.Verts[i]
		if v.Deg == 0 {
			continue
		}
		// Children partition the parent's span.
		start := v.Data[HDagSpanStart]
		for j := 0; j < int(v.Deg); j++ {
			c := &d.Verts[v.Adj[j]]
			if c.Data[HDagSpanStart] != start {
				t.Fatalf("vertex %d child %d span start %d want %d", i, j, c.Data[HDagSpanStart], start)
			}
			start += c.Data[HDagSpanWidth]
		}
		if start != v.Data[HDagSpanStart]+v.Data[HDagSpanWidth] {
			t.Fatalf("vertex %d children cover to %d", i, start)
		}
	}
}

func TestRandomHDagValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mu := range []int{2, 3} {
		d := RandomHDag(mu, 8, rng)
		if err := d.Validate(0.6, 1.4); err != nil {
			t.Fatalf("mu=%d: %v", mu, err)
		}
		// Every non-root vertex has a parent (reachable level by level).
		hasParent := make([]bool, d.N())
		for i := range d.Verts {
			v := &d.Verts[i]
			for j := 0; j < int(v.Deg); j++ {
				hasParent[v.Adj[j]] = true
			}
		}
		for i := 1; i < d.N(); i++ {
			if !hasParent[i] {
				t.Fatalf("mu=%d: vertex %d unreachable", mu, i)
			}
		}
	}
}

func TestRandomHDagRejectsBadMu(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomHDag(5, 4, rand.New(rand.NewSource(1)))
}

func TestBalancedTreeDirected(t *testing.T) {
	tr := NewBalancedTree(2, 6, true)
	if tr.N() != 127 {
		t.Fatalf("n=%d", tr.N())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Parent/Depth consistency.
	for i := 1; i < tr.N(); i++ {
		p := tr.Parent[i]
		if tr.Depth[i] != tr.Depth[p]+1 {
			t.Fatalf("depth inconsistency at %d", i)
		}
		if tr.EdgeIndex(p, VertexID(i)) < 0 {
			t.Fatalf("parent %d has no arc to %d", p, i)
		}
	}
}

func TestBalancedTreeUndirected(t *testing.T) {
	tr := NewBalancedTree(3, 4, false)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-root slot 0 is the parent edge; ChildSlot skips it.
	for i := 1; i < tr.N(); i++ {
		if tr.Verts[i].Adj[0] != tr.Parent[i] {
			t.Fatalf("vertex %d slot 0 = %d, want parent %d", i, tr.Verts[i].Adj[0], tr.Parent[i])
		}
	}
	internal := VertexID(1)
	if got := tr.Verts[internal].Adj[tr.ChildSlot(internal, 0)]; tr.Parent[got] != internal {
		t.Fatal("ChildSlot does not address a child")
	}
}

func TestSubtreeSize(t *testing.T) {
	tr := NewBalancedTree(2, 4, true)
	if tr.SubtreeSize(0) != tr.N() {
		t.Fatal("SubtreeSize(0)")
	}
	if tr.SubtreeSize(4) != 1 {
		t.Fatal("SubtreeSize(leaf)")
	}
	if tr.SubtreeSize(2) != 7 {
		t.Fatalf("SubtreeSize(2)=%d", tr.SubtreeSize(2))
	}
}

func TestInstallTreeSplitterFigure2(t *testing.T) {
	// Figure 2: directed balanced binary tree, α = 1/2 via a cut at h/2.
	tr := NewBalancedTree(2, 8, true)
	s := InstallTreeSplitter(tr, 4, Primary)
	if s.K != 1+16 {
		t.Fatalf("parts=%d", s.K)
	}
	if s.Sizes[0] != 15 { // top tree of height 3
		t.Fatalf("top size=%d", s.Sizes[0])
	}
	for p := 1; p < s.K; p++ {
		if s.Sizes[p] != 31 { // subtrees of height 4
			t.Fatalf("subtree %d size=%d", p, s.Sizes[p])
		}
	}
	if err := ValidateAlphaPartitionable(tr.Graph); err != nil {
		t.Fatal(err)
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		t.Fatalf("delta=%g", s.Delta)
	}
}

func TestAlphaBetaSplitterDistance(t *testing.T) {
	// Figure 3: undirected tree with S1 and S2 at different depths; the
	// border distance must be the depth gap minus one.
	tr := NewBalancedTree(2, 9, false)
	InstallTreeSplitter(tr, 3, Primary)
	InstallTreeSplitter(tr, 7, Secondary)
	// Borders: S1 touches depths {2,3}; S2 touches {6,7}; distance 6-3 = 3.
	if d := SplitterDistance(tr.Graph); d != 3 {
		t.Fatalf("distance=%d want 3", d)
	}
}

func TestBorderVertices(t *testing.T) {
	tr := NewBalancedTree(2, 4, false)
	InstallTreeSplitter(tr, 2, Primary)
	b := BorderVertices(tr.Graph, Primary)
	// Depth-1 vertices (2) and depth-2 vertices (4).
	if len(b) != 6 {
		t.Fatalf("border size %d want 6", len(b))
	}
	for _, v := range b {
		if d := tr.Depth[v]; d != 1 && d != 2 {
			t.Fatalf("border vertex %d at depth %d", v, d)
		}
	}
}

func TestValidateAlphaPartitionableRejectsBidirectionalCross(t *testing.T) {
	g := New(4, true)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	// Parts: {0,1} -> part 0, {2,3} -> part 1, but add a back arc 2->1.
	g.AddArc(2, 1)
	g.Verts[0].Part, g.Verts[1].Part = 0, 0
	g.Verts[2].Part, g.Verts[3].Part = 1, 1
	g.RefreshAdjParts()
	if err := ValidateAlphaPartitionable(g); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestNormalizeParts(t *testing.T) {
	// Cut deep: many tiny subtrees that need grouping.
	tr := NewBalancedTree(2, 10, true)
	s := InstallTreeSplitter(tr, 8, Primary)
	if s.K != 1+256 {
		t.Fatalf("pre-normalize parts=%d", s.K)
	}
	target := 64
	ns := NormalizeParts(tr.Graph, s, target, func(p int32) int {
		if p == 0 {
			return 0 // H class
		}
		return 1 // T class
	})
	if ns.K >= s.K/4 {
		t.Fatalf("normalization did not shrink part count: %d -> %d", s.K, ns.K)
	}
	// All groups within [target, 2*target) except possibly the last of each
	// class and the (already large) H part.
	small := 0
	for p, sz := range ns.Sizes {
		if sz >= 2*target+tr.SubtreeSize(8) && p != 0 {
			t.Fatalf("group %d oversized: %d", p, sz)
		}
		if sz < target {
			small++
		}
	}
	if small > 2 {
		t.Fatalf("%d undersized groups", small)
	}
	if err := ValidateAlphaPartitionable(tr.Graph); err != nil {
		t.Fatalf("normalization broke H/T property: %v", err)
	}
	// Sizes consistent with assignment.
	count := make([]int, ns.K)
	for i := range tr.Verts {
		count[tr.Verts[i].Part]++
	}
	for p := range count {
		if count[p] != ns.Sizes[p] {
			t.Fatalf("part %d size mismatch %d != %d", p, count[p], ns.Sizes[p])
		}
	}
}

// Property: for arbitrary cut depths, the tree splitter yields parts whose
// sizes sum to n and the α-partitionable property holds.
func TestQuickTreeSplitterInvariants(t *testing.T) {
	tr := NewBalancedTree(2, 10, true)
	f := func(rawCut uint8) bool {
		cut := 1 + int(rawCut)%tr.Height
		s := InstallTreeSplitter(tr, cut, Primary)
		total := 0
		for _, sz := range s.Sizes {
			total += sz
		}
		if total != tr.N() {
			return false
		}
		return ValidateAlphaPartitionable(tr.Graph) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if pow(2, 10) != 1024 || pow(3, 0) != 1 || pow(5, 3) != 125 {
		t.Fatal("pow")
	}
}
