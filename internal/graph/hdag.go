package graph

import (
	"fmt"
	"math/rand"
)

// HDag is a hierarchical DAG (§3): vertices partitioned into levels
// L_0..L_h, every arc from L_i to L_{i+1}, |L_0| = 1, and |L_i| within
// constant factors of μ^i for some μ > 1. Vertex IDs are level-major:
// level i occupies IDs [LevelStart[i], LevelStart[i]+LevelSizes[i]).
type HDag struct {
	*Graph
	Mu         float64
	LevelSizes []int
	LevelStart []int
}

// Height returns h, the index of the deepest level.
func (d *HDag) Height() int { return len(d.LevelSizes) - 1 }

// LevelOf returns the level of vertex id.
func (d *HDag) LevelOf(id VertexID) int { return int(d.Verts[id].Level) }

// Root returns the single vertex of L_0.
func (d *HDag) Root() VertexID { return VertexID(d.LevelStart[0]) }

// Validate checks the hierarchical-DAG conditions on top of Graph.Validate:
// level-respecting arcs, |L_0| = 1, and geometric level growth within
// [c1, c2]·μ^i factors.
func (d *HDag) Validate(c1, c2 float64) error {
	if err := d.Graph.Validate(); err != nil {
		return err
	}
	if !d.Directed {
		return fmt.Errorf("hdag: must be directed")
	}
	if d.LevelSizes[0] != 1 {
		return fmt.Errorf("hdag: |L_0| = %d, want 1", d.LevelSizes[0])
	}
	mu := 1.0
	for i, sz := range d.LevelSizes {
		if i > 0 {
			mu *= d.Mu
		}
		if float64(sz) < c1*mu || float64(sz) > c2*mu {
			return fmt.Errorf("hdag: |L_%d| = %d outside [%g, %g]·μ^i", i, sz, c1, c2)
		}
	}
	for i := range d.Verts {
		v := &d.Verts[i]
		for j := 0; j < int(v.Deg); j++ {
			w := &d.Verts[v.Adj[j]]
			if w.Level != v.Level+1 {
				return fmt.Errorf("hdag: arc %d(L%d)->%d(L%d) skips levels",
					v.ID, v.Level, w.ID, w.Level)
			}
		}
	}
	return nil
}

// Payload word layout for search-tree hierarchical DAGs: Data[0] is the
// start of the key span covered by the vertex and Data[1] the span width.
// A query for key x at an internal vertex descends into the child whose
// sub-span contains x.
const (
	HDagSpanStart = 0
	HDagSpanWidth = 1
)

// CompleteTreeHDag builds the complete μ-ary search tree of height h as a
// hierarchical DAG: |L_i| = μ^i, each internal vertex has μ children
// partitioning its key span [0, μ^h) evenly. This is the canonical G of
// Figure 1.
func CompleteTreeHDag(mu, h int) *HDag {
	if mu < 2 || mu > MaxDegree {
		panic(fmt.Sprintf("graph: CompleteTreeHDag arity %d out of range [2,%d]", mu, MaxDegree))
	}
	sizes := make([]int, h+1)
	start := make([]int, h+1)
	n := 0
	p := 1
	for i := 0; i <= h; i++ {
		sizes[i] = p
		start[i] = n
		n += p
		p *= mu
	}
	g := New(n, true)
	// The key space is [0, μ^h); the vertex (lvl, j) covers the span of
	// width μ^(h-lvl) starting at j·μ^(h-lvl).
	for lvl := 0; lvl <= h; lvl++ {
		width := int64(pow(mu, h-lvl))
		for j := 0; j < sizes[lvl]; j++ {
			id := VertexID(start[lvl] + j)
			v := &g.Verts[id]
			v.Level = int32(lvl)
			v.Data[HDagSpanStart] = int64(j) * width
			v.Data[HDagSpanWidth] = width
			if lvl < h {
				for t := 0; t < mu; t++ {
					g.AddArc(id, VertexID(start[lvl+1]+j*mu+t))
				}
			}
		}
	}
	return &HDag{Graph: g, Mu: float64(mu), LevelSizes: sizes, LevelStart: start}
}

// RandomHDag builds a hierarchical DAG with jittered level sizes
// |L_i| ∈ [⌈2μ^i/3⌉, ⌈4μ^i/3⌉] (the paper's generalized c1·μ^i ≤ |L_i| ≤
// c2·μ^i condition) and random level-respecting arcs: every vertex of
// L_{i+1} has at least one parent, and out-degrees stay ≤ MaxDegree. True
// DAG sharing arises when several arcs point to one child. μ must be 2 or 3
// so that the degree budget always suffices.
func RandomHDag(mu, h int, rng *rand.Rand) *HDag {
	if mu < 2 || mu > 3 {
		panic("graph: RandomHDag supports mu in {2, 3}")
	}
	sizes := make([]int, h+1)
	start := make([]int, h+1)
	n := 0
	p := 1
	for i := 0; i <= h; i++ {
		if i == 0 {
			sizes[i] = 1
		} else {
			lo := (2*p + 2) / 3
			hi := (4*p + 2) / 3
			if hi <= lo {
				hi = lo + 1
			}
			sizes[i] = lo + rng.Intn(hi-lo)
		}
		start[i] = n
		n += sizes[i]
		if p <= (1<<30)/mu {
			p *= mu
		}
	}
	g := New(n, true)
	for lvl := 0; lvl <= h; lvl++ {
		for j := 0; j < sizes[lvl]; j++ {
			g.Verts[start[lvl]+j].Level = int32(lvl)
		}
	}
	for lvl := 0; lvl < h; lvl++ {
		// Give every child one parent, chosen proportionally so parent
		// out-degrees stay bounded; then sprinkle extra arcs up to the
		// degree budget.
		np, nc := sizes[lvl], sizes[lvl+1]
		for j := 0; j < nc; j++ {
			parent := VertexID(start[lvl] + j*np/nc)
			if int(g.Verts[parent].Deg) >= MaxDegree {
				// Fall back to any parent with room (exists: total child
				// count nc ≤ 3μ/2·np ≤ MaxDegree·np for μ ≤ 5).
				for t := 0; t < np; t++ {
					cand := VertexID(start[lvl] + (j*np/nc+t)%np)
					if int(g.Verts[cand].Deg) < MaxDegree {
						parent = cand
						break
					}
				}
			}
			g.AddArc(parent, VertexID(start[lvl+1]+j))
		}
		extras := np / 2
		for e := 0; e < extras; e++ {
			u := VertexID(start[lvl] + rng.Intn(np))
			if int(g.Verts[u].Deg) >= MaxDegree {
				continue
			}
			g.AddArc(u, VertexID(start[lvl+1]+rng.Intn(nc)))
		}
	}
	return &HDag{Graph: g, Mu: float64(mu), LevelSizes: sizes, LevelStart: start}
}

func pow(b, e int) int {
	r := 1
	for ; e > 0; e-- {
		r *= b
	}
	return r
}
