package mesh

import (
	"fmt"
	"strings"
)

// Typed run-control faults. The simulator reports abnormal terminations —
// step-budget overruns, context cancellation, audit-invariant violations,
// and contained submesh panics — by panicking with one of the error values
// below. They are panics rather than returns because mesh operations sit at
// the bottom of deep algorithm call chains with no error plumbing (the
// machine model has none: a real mesh halts); the containment boundary
// (core.Run / bench.SafeRun) recovers them into ordinary errors, so no code
// path above the boundary can take the process down.

// Geometry identifies the machine a fault occurred on.
type Geometry struct {
	Side  int
	N     int
	Model CostModel
}

func (g Geometry) String() string {
	return fmt.Sprintf("%dx%d mesh (n=%d, %s cost model)", g.Side, g.Side, g.N, g.Model)
}

func (m *Mesh) geometry() Geometry { return Geometry{Side: m.side, N: m.n, Model: m.model} }

// BudgetExceededError reports that a run's simulated parallel time passed
// the step budget configured with WithBudget. Steps is the elapsed parallel
// time along the critical chain at the moment of the overrun, and Profile is
// its per-operation breakdown, so the error names which op class consumed
// the budget — the first question a bound regression raises.
type BudgetExceededError struct {
	Geom    Geometry
	Budget  int64
	Steps   int64
	Profile Profile
}

// Dominant returns the op class that charged the most steps, and its total.
func (e *BudgetExceededError) Dominant() (OpClass, int64) { return e.Profile.Dominant() }

func (e *BudgetExceededError) Error() string {
	c, s := e.Dominant()
	msg := fmt.Sprintf("mesh: step budget exceeded on %s: %d steps > budget %d (dominant op class %s: %d steps)",
		e.Geom, e.Steps, e.Budget, c, s)
	// The full critical-chain breakdown, in the same rendering meshbench
	// -profile uses, so the error alone answers where the budget went.
	for _, line := range strings.Split(strings.TrimRight(e.Profile.String(), "\n"), "\n") {
		msg += "\n\t" + line
	}
	return msg
}

// CanceledError reports that the context installed with WithContext was
// canceled while a run was in flight. Steps is the elapsed parallel time at
// the abort point.
type CanceledError struct {
	Geom  Geometry
	Steps int64
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("mesh: run canceled after %d steps on %s: %v", e.Steps, e.Geom, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// AuditError reports an audit-mode invariant violation: a sort whose output
// differs from the reference stable sort, a scan breaking the prefix
// identity, or a RAR/RAW delivery disagreeing with the host-side oracle.
// Under fault injection this is the detector firing; without injection it
// would indicate a genuine simulator bug.
type AuditError struct {
	Geom   Geometry
	Op     string
	Detail string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("mesh: audit: %s: %s on %s", e.Op, e.Detail, e.Geom)
}

// PanicError wraps a panic recovered from a RunParallel submesh body and
// re-raised on the calling goroutine. Without this, any panic inside a
// parallel region would kill the process outright (an unrecovered panic in a
// spawned goroutine cannot be caught anywhere else).
type PanicError struct {
	Geom  Geometry
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("mesh: submesh body panicked on %s: %v", e.Geom, e.Val)
}

// Unwrap exposes a wrapped error value (a budget/cancel/audit fault that
// fired inside a parallel body) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Val.(error); ok {
		return err
	}
	return nil
}
