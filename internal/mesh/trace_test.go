package mesh

import (
	"sync"
	"testing"
)

// stubTracer is a minimal mesh.Tracer for testing the seam from inside the
// package (the real collector lives in internal/trace, which imports mesh).
// Like the real one it must synchronize internally: forked chains emit span
// events from RunParallel goroutines.
type stubTracer struct {
	mu       sync.Mutex
	attached int
	chains   int
	events   []string
}

type stubContext struct {
	t *stubTracer
}

func (t *stubTracer) Attach(g Geometry) TraceContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attached++
	t.chains++
	return &stubContext{t: t}
}

func (c *stubContext) OpenSpan(name string, at int64, prof Profile) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	c.t.events = append(c.t.events, "open:"+name)
}

func (c *stubContext) CloseSpan(at int64, prof Profile) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	c.t.events = append(c.t.events, "close")
}

func (c *stubContext) Fork() TraceContext {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	c.t.chains++
	return &stubContext{t: c.t}
}

func (c *stubContext) Merge(child TraceContext) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	c.t.events = append(c.t.events, "merge")
}

// Attaching a tracer must not perturb the simulation: step clocks and
// per-op profiles stay byte-identical to a plain run (the same invariant
// audit mode holds, TestAuditCleanRunMatchesPlainRun).
func TestTracedRunMatchesPlainRun(t *testing.T) {
	run := func(m *Mesh) {
		sortWorkload(m)
		rarWorkload(m)
		v := m.Root()
		subs := v.Partition(2, 2)
		r := NewReg[int](m)
		v.RunParallel(subs, func(idx int, sub View) {
			end := sub.Span("sub")
			Sort(sub, r, func(a, b int) bool { return a < b })
			end()
		})
		v.RunSequential(v.Partition(2, 1), func(idx int, sub View) {
			Scan(sub, r, func(a, b int) int { return a + b })
		})
	}
	plain := New(8)
	run(plain)
	st := &stubTracer{}
	traced := New(8, WithTracer(st))
	run(traced)
	if plain.Steps() != traced.Steps() {
		t.Fatalf("steps differ: plain=%d traced=%d", plain.Steps(), traced.Steps())
	}
	if plain.Profile() != traced.Profile() {
		t.Fatalf("profiles differ:\nplain  %+v\ntraced %+v", plain.Profile(), traced.Profile())
	}
	if st.attached != 1 {
		t.Fatalf("attached %d times, want 1", st.attached)
	}
	if len(st.events) == 0 {
		t.Fatal("tracer saw no span events")
	}
}

// Span on an untraced view must return the shared no-op closer without
// touching the tracer machinery.
func TestSpanWithoutTracerIsNoop(t *testing.T) {
	m := New(4)
	v := m.Root()
	if v.Traced() {
		t.Fatal("plain mesh reports Traced")
	}
	end := v.Span("x")
	v.Charge(3)
	end()
	if m.Steps() != 3 {
		t.Fatalf("steps=%d, want 3", m.Steps())
	}
}

// ResetSteps must attach a fresh trace context so post-reset spans land in a
// new run.
func TestResetStepsReattachesTracer(t *testing.T) {
	st := &stubTracer{}
	m := New(4, WithTracer(st))
	m.ResetSteps()
	if st.attached != 2 {
		t.Fatalf("attached %d times, want 2 (New + ResetSteps)", st.attached)
	}
}

// Every RunParallel forks one context per submesh and merges exactly one of
// them (the critical path) back.
func TestRunParallelForksAndMergesOnce(t *testing.T) {
	st := &stubTracer{}
	m := New(8, WithTracer(st))
	v := m.Root()
	subs := v.Partition(2, 2)
	v.RunParallel(subs, func(idx int, sub View) {
		sub.Charge(int64(idx + 1))
	})
	if st.chains != 1+len(subs) {
		t.Fatalf("chains=%d, want %d (root + one per submesh)", st.chains, 1+len(subs))
	}
	merges := 0
	for _, e := range st.events {
		if e == "merge" {
			merges++
		}
	}
	if merges != 1 {
		t.Fatalf("merges=%d, want exactly 1 (critical path only)", merges)
	}
}
