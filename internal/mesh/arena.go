package mesh

import (
	"reflect"
	"sync"
)

// Scratch-buffer arena. Every compound mesh operation needs a transient
// item bank (the gathered view contents, the 2m-record sort bank of RAR,
// the move list of a routing). Allocating those banks per call makes an
// O(√n)-multistep search perform O(√n) full-mesh allocations and the GC
// dominates wall-clock time, so the arena keeps them alive on the Mesh:
// buffers are checked out per View operation and released when the
// operation returns. Buffers are simulation bookkeeping — they model the
// registers the physical machine already has — and carry no step charge.
//
// The arena is safe under RunParallel: concurrent submesh bodies check out
// distinct buffers from a mutex-protected per-type free list. Capacities
// are sized once from the mesh (2·N() elements, the largest bank any
// whole-mesh operation needs), so the steady-state multistep loop reuses
// the same handful of buffers with zero allocations.
//
// Released buffers are not zeroed: like the register file, they persist for
// the lifetime of the Mesh and are garbage-collected with it.

// scratchPool is the free list for one element type. The pointer is stored
// type-erased in Mesh.pools; Checkout/Release recover the typed view, so no
// boxing happens on the steady-state path.
type scratchPool[T any] struct {
	mu   sync.Mutex
	free [][]T // each with len 0, cap ≥ 2·N() (or a larger custom request)
}

// poolFor returns (creating if needed) the free list for element type T.
// The lookup is allocation-free: the key is the reflect.Type of *T, built
// from a nil pointer that needs no boxing.
func poolFor[T any](m *Mesh) *scratchPool[T] {
	key := reflect.TypeOf((*T)(nil))
	if p, ok := m.pools.Load(key); ok {
		return p.(*scratchPool[T])
	}
	p, _ := m.pools.LoadOrStore(key, &scratchPool[T]{})
	return p.(*scratchPool[T])
}

// Checkout returns a scratch slice of length n from m's arena. Contents are
// unspecified (overwrite before reading, or reslice to [:0] and append).
// Release it when the operation is done; a buffer that is never released is
// merely an allocation, not a leak.
func Checkout[T any](m *Mesh, n int) []T {
	p := poolFor[T](m)
	p.mu.Lock()
	for len(p.free) > 0 {
		s := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if cap(s) >= n {
			p.mu.Unlock()
			return s[:n]
		}
		// Undersized stragglers (from a smaller custom request) are
		// dropped; the replacement allocated below re-enters the pool
		// at full size.
	}
	p.mu.Unlock()
	c := 2 * m.n
	if n > c {
		c = n
	}
	return make([]T, n, c)
}

// Release returns a slice obtained from Checkout to m's arena.
func Release[T any](m *Mesh, s []T) {
	if cap(s) == 0 {
		return
	}
	p := poolFor[T](m)
	p.mu.Lock()
	p.free = append(p.free, s[:0])
	p.mu.Unlock()
}
