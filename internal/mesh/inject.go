package mesh

// Fault-injection seam. The standard operations consult an Injector (when
// one is installed with WithInjector) at the points where a physical mesh
// could misbehave: comparator evaluation inside sorts, the register
// write-back after a sort, and the reply-delivery sweep of a random-access
// read. The default is nil and costs exactly one pointer check per
// operation — no allocation, no indirect call — so the steady-state path is
// unchanged when injection is off.
//
// Implementations decide *whether* and *where* to inject; the operations
// apply the fault mechanically. internal/faults provides the seeded,
// deterministic implementation used by the chaos tests and meshbench -chaos.

// Injector is consulted by the standard mesh operations at their
// fault-injection points. Implementations must be safe for concurrent use:
// operations on disjoint submeshes run on real goroutines under RunParallel.
type Injector interface {
	// SortLie is consulted once before each charged sort of items records
	// (op names the operation, e.g. "Sort", "RAR", "Route"). A return k ≥ 1
	// makes the sort's comparator lie — return the negated answer — from the
	// k-th comparison onward, modelling a faulty comparison unit. 0 leaves
	// the sort honest.
	SortLie(op string, items int) int64

	// CorruptCell is consulted once after each charged sort has produced its
	// output bank. Returning ok directs the operation to overwrite record
	// dst with a copy of record src (src != dst), modelling a register cell
	// latching a neighbour's word during the write-back sweep.
	CorruptCell(op string, items int) (src, dst int, ok bool)

	// DropReply is consulted once per RAR delivery sweep over replies
	// pending replies. Returning ok drops reply drop entirely: its
	// requesting processor never hears back, as if the reply packet was
	// lost in the routing phase.
	DropReply(replies int) (drop int, ok bool)

	// DuplicateReply is consulted once per RAR delivery sweep. Returning ok
	// delivers reply src a second time, to the processor that issued
	// request dst — a duplicated packet landing at the wrong origin.
	DuplicateReply(replies int) (src, dst int, ok bool)
}
