package mesh

// Fault-injection seam. The standard operations consult an Injector (when
// one is installed with WithInjector) at the points where a physical mesh
// could misbehave: comparator evaluation inside sorts, the register
// write-back sweep that ends every charged operation (sorts, scans,
// rotations, broadcasts, reduces, local applies, routings), and the
// reply-delivery sweep of a random-access read. The default is nil and costs
// exactly one pointer check per operation — no allocation, no indirect
// call — so the steady-state path is unchanged when injection is off.
//
// Every charged OpClass is reachable through the seam (invariant-tested by
// the coverage test in inject_coverage_test.go, which enumerates OpClass).
// The only charged calls with no consultation point are View.Charge (no data
// to fault) and a zero-distance rotation (no sweep executes); their classes
// are reachable through Apply/Fill and a non-trivial rotation respectively.
//
// Implementations decide *whether* and *where* to inject; the operations
// apply the fault mechanically. internal/faults provides the seeded,
// deterministic implementation used by the chaos tests and meshbench -chaos.

// Injector is consulted by the standard mesh operations at their
// fault-injection points. Implementations must be safe for concurrent use:
// operations on disjoint submeshes run on real goroutines under RunParallel.
type Injector interface {
	// SortLie is consulted once before each charged sort of items records
	// (op names the operation, e.g. "Sort", "RAR", "Route"). A return k ≥ 1
	// makes the sort's comparator lie — return the negated answer — from the
	// k-th comparison onward, modelling a faulty comparison unit. 0 leaves
	// the sort honest.
	SortLie(op string, items int) int64

	// CorruptCell is consulted once after each charged operation has produced
	// its output bank of items records (op names the operation). Returning ok
	// directs the operation to overwrite record dst with a copy of record src
	// (src != dst), modelling a register cell latching a neighbour's word
	// during the write-back sweep. For value-returning operations (Reduce,
	// Count) the "bank" is the view's cells and the fault replaces the
	// returned accumulator with cell src's word; for Broadcast and Fill the
	// fault makes cell dst miss the sweep and latch cell src's pre-sweep
	// word instead of the broadcast value.
	CorruptCell(op string, items int) (src, dst int, ok bool)

	// DropReply is consulted once per RAR delivery sweep over replies
	// pending replies. Returning ok drops reply drop entirely: its
	// requesting processor never hears back, as if the reply packet was
	// lost in the routing phase.
	DropReply(replies int) (drop int, ok bool)

	// DuplicateReply is consulted once per RAR delivery sweep. Returning ok
	// delivers reply src a second time, to the processor that issued
	// request dst — a duplicated packet landing at the wrong origin.
	DuplicateReply(replies int) (src, dst int, ok bool)
}

// corruptSlice consults the injector's CorruptCell for an operation whose
// output bank is the scratch slice xs, applying the fault in place. The
// shared write-back seam of every slice-banked operation.
func corruptSlice[T any](v View, op string, xs []T) {
	inj := v.m.inj
	if inj == nil {
		return
	}
	if s, d, ok := inj.CorruptCell(op, len(xs)); ok &&
		s != d && s >= 0 && d >= 0 && s < len(xs) && d < len(xs) {
		xs[d] = xs[s]
	}
}

// corruptReg is corruptSlice for operations whose output bank is the view's
// cells of a register: view-local record dst latches record src's word.
func corruptReg[T any](v View, op string, r *Reg[T]) {
	inj := v.m.inj
	if inj == nil {
		return
	}
	n := v.Size()
	if s, d, ok := inj.CorruptCell(op, n); ok &&
		s != d && s >= 0 && d >= 0 && s < n && d < n {
		r.data[v.Global(d)] = r.data[v.Global(s)]
	}
}

// corruptStale consults CorruptCell for a constant-writing sweep (Broadcast,
// Fill): if the injector fires, it returns the pre-sweep word of cell src
// and the cell dst that will latch it instead of the swept value. The caller
// reads the stale word before overwriting anything and pokes it back after
// the sweep. staleAt is -1 when no fault fires.
func corruptStale[T any](v View, op string, r *Reg[T]) (stale T, staleAt int) {
	staleAt = -1
	inj := v.m.inj
	if inj == nil {
		return
	}
	n := v.Size()
	if s, d, ok := inj.CorruptCell(op, n); ok &&
		s != d && s >= 0 && d >= 0 && s < n && d < n {
		stale, staleAt = r.data[v.Global(s)], d
	}
	return
}
