package mesh

import (
	"sort"
	"testing"
)

// The arena must hand back the same backing store it was given: that is the
// whole point of the pool.
func TestCheckoutReuse(t *testing.T) {
	m := New(8)
	s1 := Checkout[int64](m, 10)
	if len(s1) != 10 || cap(s1) < 2*m.N() {
		t.Fatalf("Checkout len=%d cap=%d, want len 10 cap ≥ %d", len(s1), cap(s1), 2*m.N())
	}
	p1 := &s1[:1][0]
	Release(m, s1)
	s2 := Checkout[int64](m, 5)
	if &s2[:1][0] != p1 {
		t.Fatal("Checkout after Release did not reuse the buffer")
	}
	Release(m, s2)
	// Distinct element types get distinct pools.
	s3 := Checkout[int32](m, 5)
	Release(m, s3)
}

// Steady-state RAR must not allocate: the seed allocated its 2m-item bank
// and several sort.SliceStable artifacts on every call (7 allocs/op at
// side 64), which made the GC dominate multistep-heavy runs. The acceptance
// bar for this PR is ≥ 5× fewer, i.e. ≤ 1.
func TestRARAllocsSteadyState(t *testing.T) {
	m := New(64)
	v := m.Root()
	// Warm the arena once.
	doRAR := func() {
		RAR(v,
			func(i int) (int64, int64, bool) { return int64(i), int64(i) * 3, true },
			func(i int) (int64, bool) { return int64((i * 7) % v.Size()), true },
			func(i int, val int64, found bool) {},
		)
	}
	doRAR()
	allocs := testing.AllocsPerRun(20, doRAR)
	if allocs > 1 {
		t.Errorf("steady-state RAR allocates %.0f per op, want ≤ 1 (seed: 7)", allocs)
	}
}

// Sort and Concentrate share the gather path; they must be allocation-free
// at steady state too.
func TestSortConcentrateAllocsSteadyState(t *testing.T) {
	m := New(32)
	v := m.Root()
	r := NewReg[int64](m)
	body := func() {
		Sort(v, r, func(a, b int64) bool { return a < b })
		Concentrate(v, r, -1, func(x int64) bool { return x%2 == 0 })
		Scan(v, r, func(a, b int64) int64 { return a + b })
	}
	body()
	allocs := testing.AllocsPerRun(20, body)
	if allocs > 1 {
		t.Errorf("steady-state Sort+Concentrate+Scan allocates %.0f per op, want ≤ 1", allocs)
	}
}

// Concurrent submesh bodies must be able to check pooled buffers in and out
// without interfering; run with -race in CI. Each body sorts, RARs and
// concentrates inside its own sub-view; the parent's registers elsewhere
// must be untouched and every sub-view's result must be correct.
func TestRunParallelPooledStress(t *testing.T) {
	m := New(32)
	v := m.Root()
	r := NewReg[int64](m)
	for round := 0; round < 5; round++ {
		for i := 0; i < v.Size(); i++ {
			Set(v, r, i, int64((i*2654435761+round)%1000))
		}
		subs := v.Partition(4, 4)
		v.RunParallel(subs, func(idx int, sub View) {
			Sort(sub, r, func(a, b int64) bool { return a < b })
			// RAR: every processor reads the record keyed by its mirror.
			RAR(sub,
				func(i int) (int64, int64, bool) { return int64(i), At(sub, r, i), true },
				func(i int) (int64, bool) { return int64(sub.Size() - 1 - i), true },
				func(i int, val int64, found bool) {
					if !found {
						t.Errorf("sub %d: RAR miss at %d", idx, i)
					}
				})
			Scan(sub, r, func(a, b int64) int64 { return max(a, b) })
			Concentrate(sub, r, -1, func(x int64) bool { return x >= 0 })
		})
		// After sorting, a running-max scan and a total concentrate, each
		// sub-view must hold its original multiset's sorted-order maxima:
		// still sorted, nothing lost across sub-view borders.
		for si, sub := range subs {
			xs := Snapshot(sub, r)
			if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
				t.Fatalf("round %d sub %d: not sorted: %v", round, si, xs)
			}
		}
	}
}

// BenchmarkRARSteadyState is the allocation benchmark of the PR-1 acceptance
// bar (BENCH_PR1.json): one full-view RAR per iteration, the op the
// multistep loop is made of. Run with -benchmem.
func BenchmarkRARSteadyState(b *testing.B) {
	m := New(64)
	v := m.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RAR(v,
			func(i int) (int64, int64, bool) { return int64(i), int64(i) * 3, true },
			func(i int) (int64, bool) { return int64((i * 7) % v.Size()), true },
			func(i int, val int64, found bool) {},
		)
	}
}
