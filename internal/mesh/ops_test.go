package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func intsOnView(v View, r *Reg[int], seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int, v.Size())
	for i := range xs {
		xs[i] = rng.Intn(1000)
	}
	Load(v, r, xs)
	return xs
}

func TestBroadcast(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(2, 2, 4, 4)
	intsOnView(v, r, 1)
	Set(v, r, 5, 424242)
	Broadcast(v, r, 5)
	for i := 0; i < v.Size(); i++ {
		if At(v, r, i) != 424242 {
			t.Fatalf("cell %d = %d", i, At(v, r, i))
		}
	}
	if m.Steps() != int64(v.Rows()+v.Cols()) {
		t.Fatalf("cost %d", m.Steps())
	}
}

func TestReduceSum(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(0, 0, 4, 8)
	xs := intsOnView(v, r, 2)
	want := 0
	for _, x := range xs {
		want += x
	}
	got := Reduce(v, r, func(a, b int) int { return a + b })
	if got != want {
		t.Fatalf("Reduce=%d want %d", got, want)
	}
}

func TestScanPrefixSums(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(4, 0, 4, 4)
	xs := intsOnView(v, r, 3)
	Scan(v, r, func(a, b int) int { return a + b })
	acc := 0
	for i, x := range xs {
		acc += x
		if got := At(v, r, i); got != acc {
			t.Fatalf("prefix at %d: %d want %d", i, got, acc)
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	xs := intsOnView(v, r, 4)
	ExclusiveScan(v, r, 0, func(a, b int) int { return a + b })
	acc := 0
	for i, x := range xs {
		if got := At(v, r, i); got != acc {
			t.Fatalf("exclusive prefix at %d: %d want %d", i, got, acc)
		}
		acc += x
	}
}

func TestSegScanCopiesAcrossSegments(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	head := NewReg[bool](m)
	v := m.Root()
	// Segments start at 0, 5, 11.
	starts := map[int]bool{0: true, 5: true, 11: true}
	for i := 0; i < v.Size(); i++ {
		Set(v, head, i, starts[i])
		if starts[i] {
			Set(v, r, i, 1000+i)
		} else {
			Set(v, r, i, 0)
		}
	}
	// Copy-scan: propagate the head value through the segment.
	SegScan(v, r, head, func(a, b int) int { return a })
	wantFor := func(i int) int {
		switch {
		case i >= 11:
			return 1011
		case i >= 5:
			return 1005
		default:
			return 1000
		}
	}
	for i := 0; i < v.Size(); i++ {
		if got := At(v, r, i); got != wantFor(i) {
			t.Fatalf("cell %d = %d want %d", i, got, wantFor(i))
		}
	}
}

func TestRotateRows(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	xs := intsOnView(v, r, 5)
	RotateRows(v, r, 1)
	for row := 0; row < v.Rows(); row++ {
		for c := 0; c < v.Cols(); c++ {
			want := xs[row*v.Cols()+((c-1+v.Cols())%v.Cols())]
			if got := At(v, r, row*v.Cols()+c); got != want {
				t.Fatalf("(%d,%d)=%d want %d", row, c, got, want)
			}
		}
	}
	// Rotating by cols is the identity and costs 0.
	before := m.Steps()
	snap := Snapshot(v, r)
	RotateRows(v, r, v.Cols())
	if m.Steps() != before {
		t.Fatalf("full rotation should cost 0, got %d", m.Steps()-before)
	}
	for i, x := range Snapshot(v, r) {
		if x != snap[i] {
			t.Fatal("full rotation changed state")
		}
	}
}

func TestRotateColsInverse(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(0, 0, 8, 4)
	xs := intsOnView(v, r, 6)
	RotateCols(v, r, 3)
	RotateCols(v, r, -3)
	for i, x := range Snapshot(v, r) {
		if x != xs[i] {
			t.Fatalf("rotate inverse mismatch at %d", i)
		}
	}
}

func TestRotateCostIsShortestDirection(t *testing.T) {
	m := New(64)
	r := NewReg[int](m)
	v := m.Root()
	RotateRows(v, r, 63) // one step left is cheaper
	if m.Steps() != 1 {
		t.Fatalf("cost %d want 1", m.Steps())
	}
}

func TestCount(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root()
	xs := intsOnView(v, r, 7)
	want := 0
	for _, x := range xs {
		if x%2 == 0 {
			want++
		}
	}
	if got := Count(v, r, func(x int) bool { return x%2 == 0 }); got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
}

// Property: Scan with + equals sequential prefix sums on arbitrary inputs.
func TestQuickScanMatchesPrefix(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root()
	f := func(raw [64]int16) bool {
		xs := make([]int, 64)
		for i, x := range raw {
			xs[i] = int(x)
		}
		Load(v, r, xs)
		Scan(v, r, func(a, b int) int { return a + b })
		acc := 0
		for i, x := range xs {
			acc += x
			if At(v, r, i) != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SegScan with max never crosses a head boundary.
func TestQuickSegScanRespectsBoundaries(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	head := NewReg[bool](m)
	v := m.Root()
	f := func(raw [16]uint8, headBits uint16) bool {
		xs := make([]int, 16)
		hs := make([]bool, 16)
		for i := range xs {
			xs[i] = int(raw[i])
			hs[i] = headBits&(1<<i) != 0
		}
		hs[0] = true
		Load(v, r, xs)
		Load(v, head, hs)
		SegScan(v, r, head, func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		// Reference.
		want := make([]int, 16)
		for i := range xs {
			if hs[i] || i == 0 {
				want[i] = xs[i]
			} else {
				want[i] = max(want[i-1], xs[i])
			}
		}
		for i := range want {
			if At(v, r, i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
