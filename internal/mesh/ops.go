package mesh

import (
	"fmt"
	"reflect"
)

// Standard mesh operations: broadcast, reduce, prefix scan, segmented scan,
// and row/column rotation. Each computes the same machine state the textbook
// mesh implementation produces and charges its step cost (see the cost
// formulas in mesh.go). Scans update the register file in place and reduces
// accumulate directly, so none of these allocate; rotations borrow one
// row/column buffer from the arena.

// Broadcast copies the value at view-local index src into every processor of
// the view. Cost: rows+cols (a row sweep then a column sweep).
func Broadcast[T any](v View, r *Reg[T], src int) {
	v = v.begin(OpBroadcast)
	val := r.data[v.Global(src)]
	for i, n := 0, v.Size(); i < n; i++ {
		r.data[v.Global(i)] = val
	}
	v.charge(OpBroadcast, v.broadcastCost())
}

// Reduce combines all values in the view with op (which must be associative)
// and returns the result, leaving registers untouched. Cost: rows+cols.
func Reduce[T any](v View, r *Reg[T], op func(a, b T) T) T {
	v = v.begin(OpReduce)
	acc := r.data[v.Global(0)]
	for i, n := 1, v.Size(); i < n; i++ {
		acc = op(acc, r.data[v.Global(i)])
	}
	v.charge(OpReduce, v.reduceCost())
	return acc
}

// Scan replaces each cell with the inclusive prefix combination of all cells
// at or before it in view-local row-major order. op must be associative.
// Cost: 2·(rows+cols).
func Scan[T any](v View, r *Reg[T], op func(a, b T) T) {
	v = v.begin(OpScan)
	n := v.Size()
	var in []T
	if v.m.audit && n > 0 {
		in = make([]T, n)
		for i := 0; i < n; i++ {
			in[i] = r.data[v.Global(i)]
		}
	}
	prev := r.data[v.Global(0)]
	for i := 1; i < n; i++ {
		g := v.Global(i)
		prev = op(prev, r.data[g])
		r.data[g] = prev
	}
	if in != nil {
		auditScanIdentity(v, "Scan", in, func(i int) T { return r.data[v.Global(i)] }, op)
	}
	v.charge(OpScan, v.scanCost())
}

// auditScanIdentity verifies the inclusive-scan prefix identity
// out[i] = op(out[i-1], in[i]) over a register scan's output.
func auditScanIdentity[T any](v View, opName string, in []T, out func(i int) T, op func(a, b T) T) {
	prev := out(0)
	for i := 1; i < len(in); i++ {
		got := out(i)
		if want := op(prev, in[i]); !reflect.DeepEqual(got, want) {
			panic(&AuditError{
				Geom:   v.m.geometry(),
				Op:     opName,
				Detail: fmt.Sprintf("prefix identity broken at processor %d of %d", i, len(in)),
			})
		}
		prev = got
	}
}

// ExclusiveScan is Scan shifted by one: cell i receives the combination of
// cells 0..i-1, and cell 0 receives id. Cost: 2·(rows+cols).
func ExclusiveScan[T any](v View, r *Reg[T], id T, op func(a, b T) T) {
	v = v.begin(OpScan)
	acc := id
	for i, n := 0, v.Size(); i < n; i++ {
		g := v.Global(i)
		acc, r.data[g] = op(acc, r.data[g]), acc
	}
	v.charge(OpScan, v.scanCost())
}

// SegScan performs a segmented inclusive scan in row-major order: the prefix
// combination restarts at every cell whose head flag is true. This is the
// mesh "copy-scan" primitive used to duplicate a record across the group of
// processors following it (Nassimi–Sahni generalize). Cost: 2·(rows+cols).
func SegScan[T any](v View, r *Reg[T], head *Reg[bool], op func(a, b T) T) {
	v = v.begin(OpScan)
	prev := r.data[v.Global(0)]
	for i, n := 1, v.Size(); i < n; i++ {
		g := v.Global(i)
		if head.data[g] {
			prev = r.data[g]
		} else {
			prev = op(prev, r.data[g])
			r.data[g] = prev
		}
	}
	v.charge(OpScan, v.scanCost())
}

// RotateRows cyclically shifts every row of the view right by d positions
// (left for negative d). Cost: |d| mod cols.
func RotateRows[T any](v View, r *Reg[T], d int) {
	v = v.begin(OpRotate)
	d = ((d % v.w) + v.w) % v.w
	if d == 0 {
		v.charge(OpRotate, 0)
		return
	}
	row := Checkout[T](v.m, v.w)
	for rr := 0; rr < v.h; rr++ {
		base := rr * v.w
		for c := 0; c < v.w; c++ {
			row[(c+d)%v.w] = r.data[v.Global(base+c)]
		}
		for c := 0; c < v.w; c++ {
			r.data[v.Global(base+c)] = row[c]
		}
	}
	Release(v.m, row)
	cost := d
	if v.w-d < cost {
		cost = v.w - d
	}
	v.charge(OpRotate, int64(cost))
}

// RotateCols cyclically shifts every column of the view down by d positions
// (up for negative d). Cost: |d| mod rows.
func RotateCols[T any](v View, r *Reg[T], d int) {
	v = v.begin(OpRotate)
	d = ((d % v.h) + v.h) % v.h
	if d == 0 {
		v.charge(OpRotate, 0)
		return
	}
	col := Checkout[T](v.m, v.h)
	for c := 0; c < v.w; c++ {
		for rr := 0; rr < v.h; rr++ {
			col[(rr+d)%v.h] = r.data[v.Global(rr*v.w+c)]
		}
		for rr := 0; rr < v.h; rr++ {
			r.data[v.Global(rr*v.w+c)] = col[rr]
		}
	}
	Release(v.m, col)
	cost := d
	if v.h-d < cost {
		cost = v.h - d
	}
	v.charge(OpRotate, int64(cost))
}

// Count returns the number of processors in the view whose value satisfies
// pred. Cost: one reduce (rows+cols).
func Count[T any](v View, r *Reg[T], pred func(T) bool) int {
	v = v.begin(OpReduce)
	c := 0
	for i, n := 0, v.Size(); i < n; i++ {
		if pred(r.data[v.Global(i)]) {
			c++
		}
	}
	v.charge(OpReduce, v.reduceCost())
	return c
}
