package mesh

import (
	"fmt"
	"reflect"
)

// Standard mesh operations: broadcast, reduce, prefix scan, segmented scan,
// and row/column rotation. Each computes the same machine state the textbook
// mesh implementation produces and charges its step cost (see the cost
// formulas in mesh.go). Scans update the register file in place and reduces
// accumulate directly, so none of these allocate; rotations borrow one
// row/column buffer from the arena.
//
// Every operation here consults the fault-injection seam (inject.go) after
// producing its output and, in audit mode, verifies that output against the
// operation's defining identity — the same contract the sorts and the
// random-access operations honour. Audit checks only observe: they charge
// nothing and never alter machine state, so audited runs keep byte-identical
// step tables.

// Broadcast copies the value at view-local index src into every processor of
// the view. Cost: rows+cols (a row sweep then a column sweep).
//
// Fault model: one cell misses the sweep and latches another cell's
// pre-broadcast word. Audit mode verifies every cell equals the broadcast
// value.
func Broadcast[T any](v View, r *Reg[T], src int) {
	v = v.begin(OpBroadcast)
	val := r.data[v.Global(src)]
	stale, staleAt := corruptStale(v, "Broadcast", r)
	n := v.Size()
	for i := 0; i < n; i++ {
		r.data[v.Global(i)] = val
	}
	if staleAt >= 0 {
		r.data[v.Global(staleAt)] = stale
	}
	if v.m.audit {
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(r.data[v.Global(i)], val) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     "Broadcast",
					Detail: fmt.Sprintf("cell %d of %d differs from the broadcast value", i, n),
				})
			}
		}
	}
	v.charge(OpBroadcast, v.broadcastCost())
}

// Reduce combines all values in the view with op (which must be associative
// and, for audit mode, deterministic) and returns the result, leaving
// registers untouched. Cost: rows+cols.
//
// Fault model: the accumulation register latches cell src's word in place of
// the running total. Audit mode recomputes the fold from the (untouched)
// register file and compares.
func Reduce[T any](v View, r *Reg[T], op func(a, b T) T) T {
	v = v.begin(OpReduce)
	n := v.Size()
	acc := r.data[v.Global(0)]
	for i := 1; i < n; i++ {
		acc = op(acc, r.data[v.Global(i)])
	}
	if inj := v.m.inj; inj != nil {
		if s, _, ok := inj.CorruptCell("Reduce", n); ok && s >= 0 && s < n {
			acc = r.data[v.Global(s)]
		}
	}
	if v.m.audit {
		ref := r.data[v.Global(0)]
		for i := 1; i < n; i++ {
			ref = op(ref, r.data[v.Global(i)])
		}
		if !reflect.DeepEqual(acc, ref) {
			panic(&AuditError{
				Geom:   v.m.geometry(),
				Op:     "Reduce",
				Detail: "reduction result differs from the reference fold",
			})
		}
	}
	v.charge(OpReduce, v.reduceCost())
	return acc
}

// Scan replaces each cell with the inclusive prefix combination of all cells
// at or before it in view-local row-major order. op must be associative.
// Cost: 2·(rows+cols).
func Scan[T any](v View, r *Reg[T], op func(a, b T) T) {
	v = v.begin(OpScan)
	n := v.Size()
	var in []T
	if v.m.audit && n > 0 {
		in = make([]T, n)
		for i := 0; i < n; i++ {
			in[i] = r.data[v.Global(i)]
		}
	}
	prev := r.data[v.Global(0)]
	for i := 1; i < n; i++ {
		g := v.Global(i)
		prev = op(prev, r.data[g])
		r.data[g] = prev
	}
	corruptReg(v, "Scan", r)
	if in != nil {
		auditScanIdentity(v, "Scan", in, func(i int) T { return r.data[v.Global(i)] }, nil, op)
	}
	v.charge(OpScan, v.scanCost())
}

// auditScanIdentity verifies a (segmented) inclusive scan's output against
// the full prefix identity over the pristine input: out[i] = op(out[i-1],
// in[i]) at interior cells, out[i] = in[i] at cell 0 and at segment heads
// (which the scan leaves untouched — a fault landing there must not escape
// either). head nil means the only head is cell 0.
func auditScanIdentity[T any](v View, opName string, in []T, out func(i int) T, head func(i int) bool, op func(a, b T) T) {
	for i := 0; i < len(in); i++ {
		var want T
		if i == 0 || (head != nil && head(i)) {
			want = in[i]
		} else {
			want = op(out(i-1), in[i])
		}
		if got := out(i); !reflect.DeepEqual(got, want) {
			panic(&AuditError{
				Geom:   v.m.geometry(),
				Op:     opName,
				Detail: fmt.Sprintf("prefix identity broken at processor %d of %d", i, len(in)),
			})
		}
	}
}

// ExclusiveScan is Scan shifted by one: cell i receives the combination of
// cells 0..i-1, and cell 0 receives id. Cost: 2·(rows+cols).
func ExclusiveScan[T any](v View, r *Reg[T], id T, op func(a, b T) T) {
	v = v.begin(OpScan)
	n := v.Size()
	var in []T
	if v.m.audit && n > 0 {
		in = make([]T, n)
		for i := 0; i < n; i++ {
			in[i] = r.data[v.Global(i)]
		}
	}
	acc := id
	for i := 0; i < n; i++ {
		g := v.Global(i)
		acc, r.data[g] = op(acc, r.data[g]), acc
	}
	corruptReg(v, "ExclusiveScan", r)
	if in != nil {
		// Exclusive identity: out[0] = id, out[i] = op(out[i-1], in[i-1]).
		for i := 0; i < n; i++ {
			var want T
			if i == 0 {
				want = id
			} else {
				want = op(r.data[v.Global(i-1)], in[i-1])
			}
			if got := r.data[v.Global(i)]; !reflect.DeepEqual(got, want) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     "ExclusiveScan",
					Detail: fmt.Sprintf("exclusive prefix identity broken at processor %d of %d", i, n),
				})
			}
		}
	}
	v.charge(OpScan, v.scanCost())
}

// SegScan performs a segmented inclusive scan in row-major order: the prefix
// combination restarts at every cell whose head flag is true. This is the
// mesh "copy-scan" primitive used to duplicate a record across the group of
// processors following it (Nassimi–Sahni generalize). Cost: 2·(rows+cols).
func SegScan[T any](v View, r *Reg[T], head *Reg[bool], op func(a, b T) T) {
	v = v.begin(OpScan)
	n := v.Size()
	var in []T
	if v.m.audit && n > 0 {
		in = make([]T, n)
		for i := 0; i < n; i++ {
			in[i] = r.data[v.Global(i)]
		}
	}
	prev := r.data[v.Global(0)]
	for i := 1; i < n; i++ {
		g := v.Global(i)
		if head.data[g] {
			prev = r.data[g]
		} else {
			prev = op(prev, r.data[g])
			r.data[g] = prev
		}
	}
	corruptReg(v, "SegScan", r)
	if in != nil {
		auditScanIdentity(v, "SegScan", in,
			func(i int) T { return r.data[v.Global(i)] },
			func(i int) bool { return head.data[v.Global(i)] },
			op)
	}
	v.charge(OpScan, v.scanCost())
}

// auditRotation verifies a row/column rotation against the pristine input:
// every cell must hold the word that the cyclic shift moves there. at maps a
// (line, position) pair to the view-local index; lines is the number of
// rotated lines, length their cell count, d the normalized shift.
func auditRotation[T any](v View, opName string, r *Reg[T], in []T, lines, length, d int,
	at func(line, pos int) int) {
	for l := 0; l < lines; l++ {
		for p := 0; p < length; p++ {
			got := r.data[v.Global(at(l, (p+d)%length))]
			if want := in[at(l, p)]; !reflect.DeepEqual(got, want) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     opName,
					Detail: fmt.Sprintf("rotation identity broken on line %d at position %d", l, (p+d)%length),
				})
			}
		}
	}
}

// RotateRows cyclically shifts every row of the view right by d positions
// (left for negative d). Cost: min(d mod cols, cols − d mod cols) — the
// sweep takes whichever direction is shorter, so a shift by cols−1 costs one
// step, and a full rotation costs (and does) nothing.
func RotateRows[T any](v View, r *Reg[T], d int) {
	v = v.begin(OpRotate)
	d = ((d % v.w) + v.w) % v.w
	if d == 0 {
		v.charge(OpRotate, 0)
		return
	}
	var in []T
	if v.m.audit {
		in = gather(v, r)
	}
	row := Checkout[T](v.m, v.w)
	for rr := 0; rr < v.h; rr++ {
		base := rr * v.w
		for c := 0; c < v.w; c++ {
			row[(c+d)%v.w] = r.data[v.Global(base+c)]
		}
		for c := 0; c < v.w; c++ {
			r.data[v.Global(base+c)] = row[c]
		}
	}
	Release(v.m, row)
	corruptReg(v, "RotateRows", r)
	if in != nil {
		auditRotation(v, "RotateRows", r, in, v.h, v.w, d,
			func(line, pos int) int { return line*v.w + pos })
	}
	cost := d
	if v.w-d < cost {
		cost = v.w - d
	}
	v.charge(OpRotate, int64(cost))
}

// RotateCols cyclically shifts every column of the view down by d positions
// (up for negative d). Cost: min(d mod rows, rows − d mod rows), the shorter
// sweep direction (see RotateRows).
func RotateCols[T any](v View, r *Reg[T], d int) {
	v = v.begin(OpRotate)
	d = ((d % v.h) + v.h) % v.h
	if d == 0 {
		v.charge(OpRotate, 0)
		return
	}
	var in []T
	if v.m.audit {
		in = gather(v, r)
	}
	col := Checkout[T](v.m, v.h)
	for c := 0; c < v.w; c++ {
		for rr := 0; rr < v.h; rr++ {
			col[(rr+d)%v.h] = r.data[v.Global(rr*v.w+c)]
		}
		for rr := 0; rr < v.h; rr++ {
			r.data[v.Global(rr*v.w+c)] = col[rr]
		}
	}
	Release(v.m, col)
	corruptReg(v, "RotateCols", r)
	if in != nil {
		auditRotation(v, "RotateCols", r, in, v.w, v.h, d,
			func(line, pos int) int { return pos*v.w + line })
	}
	cost := d
	if v.h-d < cost {
		cost = v.h - d
	}
	v.charge(OpRotate, int64(cost))
}

// Count returns the number of processors in the view whose value satisfies
// pred. Cost: one reduce (rows+cols).
//
// Fault model: the tally register latches cell src's index in place of the
// count. Audit mode recounts and compares.
func Count[T any](v View, r *Reg[T], pred func(T) bool) int {
	v = v.begin(OpReduce)
	n := v.Size()
	c := 0
	for i := 0; i < n; i++ {
		if pred(r.data[v.Global(i)]) {
			c++
		}
	}
	if inj := v.m.inj; inj != nil {
		if s, _, ok := inj.CorruptCell("Count", n); ok && s >= 0 && s < n {
			c = s
		}
	}
	if v.m.audit {
		ref := 0
		for i := 0; i < n; i++ {
			if pred(r.data[v.Global(i)]) {
				ref++
			}
		}
		if c != ref {
			panic(&AuditError{
				Geom:   v.m.geometry(),
				Op:     "Count",
				Detail: fmt.Sprintf("count %d differs from reference recount %d", c, ref),
			})
		}
	}
	v.charge(OpReduce, v.reduceCost())
	return c
}
