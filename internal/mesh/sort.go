package mesh

import "slices"

// sortStable stable-sorts xs by less without reflection or allocation
// (sort.SliceStable boxes the slice and builds a reflect.Swapper on every
// call, which is what made sorting dominate the allocation profile).
func sortStable[T any](xs []T, less func(a, b T) bool) {
	slices.SortStableFunc(xs, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// Sort sorts the view's record per processor into row-major order by less.
// The sort is stable. Cost: shearsort into snake order plus one row sweep to
// flip the odd rows into row-major order (see mesh.go cost formulas).
func Sort[T any](v View, r *Reg[T], less func(a, b T) bool) {
	v = v.begin(OpSort)
	xs := gatherScratch(v, r)
	sortStable(xs, less)
	scatter(v, r, xs)
	Release(v.m, xs)
	v.charge(OpSort, v.rowMajorSortCost())
}

// SortSnake sorts into snake-like order: even rows run left-to-right, odd
// rows right-to-left. This is the native output order of shearsort and is
// what scan-based algorithms on the physical machine consume. Cost: one
// shearsort.
func SortSnake[T any](v View, r *Reg[T], less func(a, b T) bool) {
	v = v.begin(OpSort)
	xs := gatherScratch(v, r)
	sortStable(xs, less)
	// Lay the sorted sequence back out in snake order.
	k := 0
	for row := 0; row < v.h; row++ {
		if row%2 == 0 {
			for c := 0; c < v.w; c++ {
				r.data[v.Global(row*v.w+c)] = xs[k]
				k++
			}
		} else {
			for c := v.w - 1; c >= 0; c-- {
				r.data[v.Global(row*v.w+c)] = xs[k]
				k++
			}
		}
	}
	Release(v.m, xs)
	v.charge(OpSort, v.sortCost())
}

// SortCost reports, without executing anything, the charge of one row-major
// Sort on the view under the active cost model. Harness code uses it to
// annotate tables.
func (v View) SortCost() int64 { return v.rowMajorSortCost() }

// doubleSortCost is the charge for sorting two records per processor (2m
// items on m processors): each transposition round moves two words per link,
// doubling the time of every phase.
func (v View) doubleSortCost() int64 { return 2 * v.rowMajorSortCost() }

// sortSlice stable-sorts a scratch slice holding up to perProc records per
// processor and charges the corresponding multi-record sort cost. Compound
// operations (RAR, RAW, Route) build on this single source of cost truth.
func sortSlice[T any](v View, xs []T, perProc int, less func(a, b T) bool) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*v.Size() {
		panic("mesh: sortSlice overflow")
	}
	sortStable(xs, less)
	v.charge(OpSort, int64(perProc)*v.rowMajorSortCost())
}

// scanSlice charges one scan on the view and performs a segmented inclusive
// scan over a scratch slice (up to perProc records per processor).
func scanSlice[T any](v View, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*v.Size() {
		panic("mesh: scanSlice overflow")
	}
	for i := 1; i < len(xs); i++ {
		if !head(i) {
			xs[i] = op(xs[i-1], xs[i])
		}
	}
	v.charge(OpScan, int64(perProc)*v.scanCost())
}
