package mesh

import (
	"fmt"
	"reflect"
	"slices"
)

// sortStable stable-sorts xs by less without reflection or allocation
// (sort.SliceStable boxes the slice and builds a reflect.Swapper on every
// call, which is what made sorting dominate the allocation profile).
func sortStable[T any](xs []T, less func(a, b T) bool) {
	slices.SortStableFunc(xs, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// runSort is the single execution point of every charged sort: it applies
// fault injection (a lying comparator, a corrupted write-back cell) when an
// injector is installed, and verifies the output against a reference stable
// sort when audit mode is on. It performs no charging — callers keep their
// own cost lines. With injection and audit off it is exactly sortStable:
// two nil/bool checks, no allocation.
func runSort[T any](v View, op string, xs []T, less func(a, b T) bool) {
	m := v.m
	var ref []T
	if m.audit && len(xs) > 0 {
		ref = append(ref, xs...)
	}
	if inj := m.inj; inj != nil {
		if k := inj.SortLie(op, len(xs)); k > 0 {
			var n int64
			sortStable(xs, func(a, b T) bool {
				n++
				r := less(a, b)
				if n >= k {
					return !r
				}
				return r
			})
		} else {
			sortStable(xs, less)
		}
		corruptSlice(v, op, xs)
	} else {
		sortStable(xs, less)
	}
	if ref != nil {
		sortStable(ref, less)
		for i := range ref {
			if !reflect.DeepEqual(xs[i], ref[i]) {
				panic(&AuditError{
					Geom: m.geometry(),
					Op:   op,
					Detail: fmt.Sprintf(
						"sort output differs from reference stable sort at record %d of %d", i, len(ref)),
				})
			}
		}
	}
}

// Sort sorts the view's record per processor into row-major order by less.
// The sort is stable. Cost: shearsort into snake order plus one row sweep to
// flip the odd rows into row-major order (see mesh.go cost formulas).
func Sort[T any](v View, r *Reg[T], less func(a, b T) bool) {
	v = v.begin(OpSort)
	xs := gatherScratch(v, r)
	runSort(v, "Sort", xs, less)
	scatter(v, r, xs)
	Release(v.m, xs)
	v.charge(OpSort, v.rowMajorSortCost())
}

// SortSnake sorts into snake-like order: even rows run left-to-right, odd
// rows right-to-left. This is the native output order of shearsort and is
// what scan-based algorithms on the physical machine consume. Cost: one
// shearsort.
func SortSnake[T any](v View, r *Reg[T], less func(a, b T) bool) {
	v = v.begin(OpSort)
	xs := gatherScratch(v, r)
	runSort(v, "SortSnake", xs, less)
	// Lay the sorted sequence back out in snake order.
	k := 0
	for row := 0; row < v.h; row++ {
		if row%2 == 0 {
			for c := 0; c < v.w; c++ {
				r.data[v.Global(row*v.w+c)] = xs[k]
				k++
			}
		} else {
			for c := v.w - 1; c >= 0; c-- {
				r.data[v.Global(row*v.w+c)] = xs[k]
				k++
			}
		}
	}
	Release(v.m, xs)
	v.charge(OpSort, v.sortCost())
}

// SortCost reports, without executing anything, the charge of one row-major
// Sort on the view under the active cost model. Harness code uses it to
// annotate tables.
func (v View) SortCost() int64 { return v.rowMajorSortCost() }

// doubleSortCost is the charge for sorting two records per processor (2m
// items on m processors): each transposition round moves two words per link,
// doubling the time of every phase.
func (v View) doubleSortCost() int64 { return 2 * v.rowMajorSortCost() }

// sortSlice stable-sorts a scratch slice holding up to perProc records per
// processor and charges the corresponding multi-record sort cost. Compound
// operations (RAR, RAW, Route) build on this single source of cost truth;
// op names the operation for fault injection and audit reports.
func sortSlice[T any](v View, op string, xs []T, perProc int, less func(a, b T) bool) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*v.Size() {
		panic("mesh: sortSlice overflow")
	}
	runSort(v, op, xs, less)
	v.charge(OpSort, int64(perProc)*v.rowMajorSortCost())
}

// scanSlice charges one scan on the view and performs a segmented inclusive
// scan over a scratch slice (up to perProc records per processor); opName
// names the operation for fault injection and audit reports. In audit mode
// the output is verified against the full prefix identity on a pristine copy
// of the input: out[i] = op(out[i-1], in[i]) at interior records, and
// out[i] = in[i] at segment heads and record 0 — the head cells are part of
// the machine state too, so a fault landing there must not escape.
func scanSlice[T any](v View, opName string, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*v.Size() {
		panic("mesh: scanSlice overflow")
	}
	var in []T
	if v.m.audit && len(xs) > 0 {
		in = append(in, xs...)
	}
	for i := 1; i < len(xs); i++ {
		if !head(i) {
			xs[i] = op(xs[i-1], xs[i])
		}
	}
	corruptSlice(v, opName, xs)
	if in != nil {
		for i := 0; i < len(xs); i++ {
			var want T
			if i == 0 || head(i) {
				want = in[i]
			} else {
				want = op(xs[i-1], in[i])
			}
			if !reflect.DeepEqual(xs[i], want) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     opName,
					Detail: fmt.Sprintf("prefix identity broken at record %d of %d", i, len(xs)),
				})
			}
		}
	}
	v.charge(OpScan, int64(perProc)*v.scanCost())
}
