package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRARBasicGather(t *testing.T) {
	m := New(4)
	v := m.Root()
	// Processor i holds record (key=i*10, val=i*100); every processor
	// requests key ((i+3) mod 16)*10.
	got := make([]int, v.Size())
	RAR(v,
		func(i int) (int32, int, bool) { return int32(i * 10), i * 100, true },
		func(i int) (int32, bool) { return int32(((i + 3) % 16) * 10), true },
		func(i int, val int, found bool) {
			if !found {
				t.Fatalf("request %d not found", i)
			}
			got[i] = val
		})
	for i := range got {
		if got[i] != ((i+3)%16)*100 {
			t.Fatalf("req %d got %d", i, got[i])
		}
	}
}

func TestRARConcurrentReads(t *testing.T) {
	m := New(8)
	v := m.Root()
	// One record (key 7) read by all 64 requests: the congestion case the
	// copy-scan resolves.
	hits := 0
	RAR(v,
		func(i int) (int32, int, bool) {
			if i == 42 {
				return 7, 4242, true
			}
			return 0, 0, false
		},
		func(i int) (int32, bool) { return 7, true },
		func(i int, val int, found bool) {
			if found && val == 4242 {
				hits++
			}
		})
	if hits != v.Size() {
		t.Fatalf("hits=%d want %d", hits, v.Size())
	}
}

func TestRARMissingKey(t *testing.T) {
	m := New(2)
	v := m.Root()
	misses := 0
	RAR(v,
		func(i int) (int32, int, bool) { return int32(i), i, i < 2 },
		func(i int) (int32, bool) { return int32(i), true },
		func(i int, val int, found bool) {
			if !found {
				misses++
			} else if val != i {
				t.Fatalf("req %d got %d", i, val)
			}
		})
	if misses != 2 {
		t.Fatalf("misses=%d want 2", misses)
	}
}

func TestRARNoRequests(t *testing.T) {
	m := New(2)
	v := m.Root()
	RAR(v,
		func(i int) (int32, int, bool) { return int32(i), i, true },
		func(i int) (int32, bool) { return 0, false },
		func(i int, val int, found bool) { t.Fatal("no deliveries expected") })
}

// Property: RAR equals a reference map-based gather for arbitrary sparse
// records and requests with arbitrary duplication.
func TestQuickRARMatchesReferenceGather(t *testing.T) {
	m := New(4)
	v := m.Root()
	f := func(recKeys [16]uint8, recMask uint16, reqKeys [16]uint8) bool {
		ref := map[int32]int{}
		for i := 0; i < 16; i++ {
			if recMask&(1<<i) != 0 {
				k := int32(recKeys[i] % 8)
				if _, dup := ref[k]; dup {
					return true // skip duplicate-record-key draws
				}
				ref[k] = i * 1000
			}
		}
		ok := true
		RAR(v,
			func(i int) (int32, int, bool) {
				if recMask&(1<<i) != 0 {
					return int32(recKeys[i] % 8), i * 1000, true
				}
				return 0, 0, false
			},
			func(i int) (int32, bool) { return int32(reqKeys[i] % 8), true },
			func(i int, val int, found bool) {
				want, exists := ref[int32(reqKeys[i]%8)]
				if found != exists || (found && val != want) {
					ok = false
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRARCostIsConstantNumberOfSorts(t *testing.T) {
	m := New(16)
	v := m.Root()
	RAR(v,
		func(i int) (int32, int, bool) { return int32(i), i, true },
		func(i int) (int32, bool) { return int32(i), true },
		func(i int, val int, found bool) {})
	// 1 double sort + 1 double scan + 1 single sort + 1 step, per route.go.
	want := v.doubleSortCost() + 2*v.scanCost() + v.rowMajorSortCost() + 1
	if m.Steps() != want {
		t.Fatalf("RAR cost %d want %d", m.Steps(), want)
	}
}

func TestRoutePermutation(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	for i := 0; i < v.Size(); i++ {
		Set(v, r, i, i)
	}
	// Reverse the mesh.
	Route(v, r, -1, func(i, val int) (int, bool) { return v.Size() - 1 - i, true })
	for i := 0; i < v.Size(); i++ {
		if At(v, r, i) != v.Size()-1-i {
			t.Fatalf("cell %d = %d", i, At(v, r, i))
		}
	}
}

func TestRoutePartialLeavesClear(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	for i := 0; i < v.Size(); i++ {
		Set(v, r, i, 100+i)
	}
	// Move cell 0 to cell 8; cell 0 becomes clear, others untouched.
	Route(v, r, -1, func(i, val int) (int, bool) { return 8, i == 0 })
	if At(v, r, 0) != -1 {
		t.Fatalf("source not cleared: %d", At(v, r, 0))
	}
	if At(v, r, 8) != 100 {
		t.Fatalf("dest=%d", At(v, r, 8))
	}
	if At(v, r, 3) != 103 {
		t.Fatalf("bystander=%d", At(v, r, 3))
	}
}

func TestRouteCollisionPanics(t *testing.T) {
	m := New(2)
	r := NewReg[int](m)
	v := m.Root()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Route(v, r, 0, func(i, val int) (int, bool) { return 0, true })
}

func TestRouteOutOfRangePanics(t *testing.T) {
	m := New(2)
	r := NewReg[int](m)
	v := m.Root()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Route(v, r, 0, func(i, val int) (int, bool) { return 99, true })
}

func TestConcentrate(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	rng := rand.New(rand.NewSource(21))
	vals := make([]int, v.Size())
	for i := range vals {
		vals[i] = rng.Intn(50)
	}
	Load(v, r, vals)
	k := Concentrate(v, r, -1, func(x int) bool { return x%2 == 0 })
	var want []int
	for _, x := range vals {
		if x%2 == 0 {
			want = append(want, x)
		}
	}
	if k != len(want) {
		t.Fatalf("k=%d want %d", k, len(want))
	}
	for i, x := range want {
		if At(v, r, i) != x {
			t.Fatalf("concentrated[%d]=%d want %d (order must be preserved)", i, At(v, r, i), x)
		}
	}
	for i := k; i < v.Size(); i++ {
		if At(v, r, i) != -1 {
			t.Fatalf("tail cell %d not cleared", i)
		}
	}
}

func TestBroadcastBlock(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root()
	subs := v.Partition(2, 2)
	block := []int{7, 8, 9}
	BroadcastBlock(v, r, block, subs)
	for si, s := range subs {
		for i, want := range block {
			if At(s, r, i) != want {
				t.Fatalf("sub %d cell %d = %d", si, i, At(s, r, i))
			}
		}
	}
	if m.Steps() != int64(2*(8+8)) {
		t.Fatalf("cost %d", m.Steps())
	}
}

func TestBroadcastBlockOverflowPanics(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	subs := m.Root().Partition(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BroadcastBlock(m.Root(), r, make([]int, 5), subs)
}

func TestScanScratchSegmented(t *testing.T) {
	m := New(2)
	v := m.Root()
	xs := []int{1, 2, 3, 4, 5, 6}
	ScanScratch(v, xs, 2, func(i int) bool { return i == 0 || i == 3 },
		func(a, b int) int { return a + b })
	want := []int{1, 3, 6, 4, 9, 15}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d]=%d want %d", i, xs[i], want[i])
		}
	}
}
