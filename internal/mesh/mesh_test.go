package mesh

import (
	"testing"
)

func TestNewValidatesSide(t *testing.T) {
	for _, side := range []int{1, 2, 4, 64} {
		m := New(side)
		if m.Side() != side || m.N() != side*side {
			t.Fatalf("New(%d): side=%d n=%d", side, m.Side(), m.N())
		}
	}
	for _, side := range []int{0, -4, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", side)
				}
			}()
			New(side)
		}()
	}
}

func TestViewIndexing(t *testing.T) {
	m := New(8)
	v := m.Root().Sub(2, 4, 4, 2) // rows 2..5, cols 4..5
	if v.Rows() != 4 || v.Cols() != 2 || v.Size() != 8 {
		t.Fatalf("geometry: %dx%d", v.Rows(), v.Cols())
	}
	// local 3 -> local (1,1) -> global (3,5) -> 3*8+5
	if g := v.Global(3); g != 3*8+5 {
		t.Fatalf("Global(3)=%d", g)
	}
	if l, ok := v.Local(3*8 + 5); !ok || l != 3 {
		t.Fatalf("Local=%d,%v", l, ok)
	}
	if _, ok := v.Local(0); ok {
		t.Fatal("Local(0) should be outside the view")
	}
	r0, c0 := v.Origin()
	if r0 != 2 || c0 != 4 {
		t.Fatalf("Origin=(%d,%d)", r0, c0)
	}
}

func TestPartitionCoversDisjointly(t *testing.T) {
	m := New(16)
	subs := m.Root().Partition(4, 4)
	if len(subs) != 16 {
		t.Fatalf("len=%d", len(subs))
	}
	seen := make(map[int]bool)
	for _, s := range subs {
		if s.Rows() != 4 || s.Cols() != 4 {
			t.Fatalf("sub geometry %dx%d", s.Rows(), s.Cols())
		}
		for i := 0; i < s.Size(); i++ {
			g := s.Global(i)
			if seen[g] {
				t.Fatalf("processor %d covered twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != m.N() {
		t.Fatalf("coverage %d of %d", len(seen), m.N())
	}
}

func TestPartitionPanicsOnNonDivisor(t *testing.T) {
	m := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Root().Partition(3, 3)
}

func TestRegGatherScatterRoundTrip(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(1, 2, 3, 4)
	in := make([]int, v.Size())
	for i := range in {
		in[i] = 100 + i
	}
	Load(v, r, in)
	out := Snapshot(v, r)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip at %d: %d != %d", i, out[i], in[i])
		}
	}
	// Cells outside the view untouched (zero).
	if got := At(m.Root(), r, 0); got != 0 {
		t.Fatalf("outside cell modified: %d", got)
	}
}

func TestFillAndApplyChargeOneStep(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	Fill(v, r, 7)
	if m.Steps() != 1 {
		t.Fatalf("Fill cost %d", m.Steps())
	}
	Apply(v, r, func(i, cur int) int { return cur + i })
	if m.Steps() != 2 {
		t.Fatalf("Apply cost %d", m.Steps())
	}
	for i := 0; i < v.Size(); i++ {
		if At(v, r, i) != 7+i {
			t.Fatalf("cell %d = %d", i, At(v, r, i))
		}
	}
}

func TestRunParallelChargesMax(t *testing.T) {
	m := New(8)
	v := m.Root()
	subs := v.Partition(2, 2)
	v.RunParallel(subs, func(i int, sub View) {
		sub.Charge(int64(10 * (i + 1)))
	})
	if m.Steps() != 40 {
		t.Fatalf("parallel cost = %d, want max=40", m.Steps())
	}
}

func TestRunSequentialChargesSum(t *testing.T) {
	m := New(8)
	v := m.Root()
	subs := v.Partition(2, 2)
	v.RunSequential(subs, func(i int, sub View) {
		sub.Charge(int64(10 * (i + 1)))
	})
	if m.Steps() != 100 {
		t.Fatalf("sequential cost = %d, want sum=100", m.Steps())
	}
}

func TestRunParallelNestedDoesNotDeadlock(t *testing.T) {
	m := New(32, WithParallelism(2))
	v := m.Root()
	outer := v.Partition(4, 4)
	v.RunParallel(outer, func(_ int, sub View) {
		inner := sub.Partition(2, 2)
		sub.RunParallel(inner, func(_ int, s2 View) {
			s2.Charge(1)
		})
	})
	if m.Steps() != 1 {
		t.Fatalf("nested parallel cost = %d, want 1", m.Steps())
	}
}

func TestRunParallelBodiesSeeDisjointRegions(t *testing.T) {
	m := New(16)
	r := NewReg[int](m)
	v := m.Root()
	subs := v.Partition(4, 4)
	v.RunParallel(subs, func(idx int, sub View) {
		Fill(sub, r, idx)
	})
	for idx, sub := range v.Partition(4, 4) {
		for i := 0; i < sub.Size(); i++ {
			if At(sub, r, i) != idx {
				t.Fatalf("sub %d cell %d = %d", idx, i, At(sub, r, i))
			}
		}
	}
}

func TestCostModelString(t *testing.T) {
	if CostCounted.String() != "counted" || CostTheoretical.String() != "theoretical" {
		t.Fatal("CostModel strings")
	}
	if CostModel(9).String() == "" {
		t.Fatal("unknown model string empty")
	}
}

func TestTheoreticalSortCheaperThanCounted(t *testing.T) {
	for _, side := range []int{4, 16, 64, 256} {
		mc := New(side)
		mt := New(side, WithCostModel(CostTheoretical))
		if mt.Root().SortCost() > mc.Root().SortCost() {
			t.Fatalf("side %d: theoretical %d > counted %d",
				side, mt.Root().SortCost(), mc.Root().SortCost())
		}
	}
}

func TestResetSteps(t *testing.T) {
	m := New(4)
	m.Root().Charge(5)
	if m.Steps() != 5 {
		t.Fatal("charge")
	}
	m.ResetSteps()
	if m.Steps() != 0 {
		t.Fatal("reset")
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	m := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Root().Charge(-1)
}

func TestSubPanicsOutOfBounds(t *testing.T) {
	m := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Root().Sub(4, 4, 8, 8)
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := log2Ceil(x); got != want {
			t.Errorf("log2Ceil(%d)=%d want %d", x, got, want)
		}
	}
}
