package mesh

import (
	"context"
	"errors"
	"testing"
)

// stubInjector injects exactly the faults its fields describe. Zero value
// injects nothing.
type stubInjector struct {
	lieAfter int64 // SortLie result for the first sort consulted
	corrupt  bool  // CorruptCell (0 -> last) on the first sort consulted
	drop     bool  // DropReply 0 on the first RAR delivery sweep
	dup      bool  // DuplicateReply (0 -> last) on the first RAR sweep
	fired    bool
}

func (s *stubInjector) SortLie(op string, items int) int64 {
	if s.lieAfter > 0 && !s.fired && items > 1 {
		s.fired = true
		return s.lieAfter
	}
	return 0
}

func (s *stubInjector) CorruptCell(op string, items int) (int, int, bool) {
	if s.corrupt && !s.fired && items > 1 {
		s.fired = true
		return 0, items - 1, true
	}
	return 0, 0, false
}

func (s *stubInjector) DropReply(replies int) (int, bool) {
	if s.drop && !s.fired {
		s.fired = true
		return 0, true
	}
	return 0, false
}

func (s *stubInjector) DuplicateReply(replies int) (int, int, bool) {
	if s.dup && !s.fired && replies > 1 {
		s.fired = true
		return 0, replies - 1, true
	}
	return 0, 0, false
}

// sortWorkload runs one register sort plus one scan — enough to exercise
// every audited primitive except RAR/RAW.
func sortWorkload(m *Mesh) {
	v := m.Root()
	r := NewReg[int](m)
	Apply(v, r, func(i int, _ int) int { return (i * 7919) % 101 })
	Sort(v, r, func(a, b int) bool { return a < b })
	Scan(v, r, func(a, b int) int { return a + b })
}

// rarWorkload issues one all-processors RAR.
func rarWorkload(m *Mesh) {
	v := m.Root()
	n := v.Size()
	RAR(v,
		func(i int) (int32, int, bool) { return int32(i), i * 3, true },
		func(i int) (int32, bool) { return int32((i + 1) % n), true },
		func(i int, val int, found bool) {})
}

func TestBudgetExceededAbortsWithDominantClass(t *testing.T) {
	m := New(16, WithBudget(10))
	err := func() (err error) {
		defer func() {
			r := recover()
			var ok bool
			if err, ok = r.(error); !ok {
				t.Fatalf("recovered %T, want error", r)
			}
		}()
		sortWorkload(m)
		return nil
	}()
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetExceededError", err)
	}
	if be.Steps <= be.Budget || be.Budget != 10 {
		t.Fatalf("steps=%d budget=%d", be.Steps, be.Budget)
	}
	if c, s := be.Dominant(); c != OpSort || s == 0 {
		t.Fatalf("dominant=%s (%d steps), want sort", c, s)
	}
	if be.Geom.Side != 16 {
		t.Fatalf("geometry %v", be.Geom)
	}
}

func TestBudgetCountsCriticalChainInsideRunParallel(t *testing.T) {
	// Each submesh sorts once; the critical chain is one submesh's clock on
	// top of the parent's, not the sum over submeshes. A budget generous
	// enough for one submesh sort must not fire even though four run.
	cost := func() int64 {
		m := New(16)
		subs := m.Root().Partition(2, 2)
		r := NewReg[int](m)
		m.Root().RunParallel(subs, func(idx int, sub View) {
			Sort(sub, r, func(a, b int) bool { return a < b })
		})
		return m.Steps()
	}()
	m := New(16, WithBudget(cost))
	subs := m.Root().Partition(2, 2)
	r := NewReg[int](m)
	m.Root().RunParallel(subs, func(idx int, sub View) {
		Sort(sub, r, func(a, b int) bool { return a < b })
	})

	// With the budget one step short, the overrun fires inside a parallel
	// body and must surface as a PanicError wrapping the budget fault.
	m2 := New(16, WithBudget(cost-1))
	subs2 := m2.Root().Partition(2, 2)
	r2 := NewReg[int](m2)
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok {
			t.Fatalf("recovered %T, want error", r)
		}
		var pe *PanicError
		var be *BudgetExceededError
		if !errors.As(err, &pe) || !errors.As(err, &be) {
			t.Fatalf("got %v, want PanicError wrapping BudgetExceededError", err)
		}
	}()
	m2.Root().RunParallel(subs2, func(idx int, sub View) {
		Sort(sub, r2, func(a, b int) bool { return a < b })
	})
	t.Fatal("budget should have fired")
}

func TestCancellationAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(8, WithContext(ctx))
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok {
			t.Fatalf("recovered %T, want error", r)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("got %v, want *CanceledError", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cause %v, want context.Canceled", ce.Cause)
		}
	}()
	sortWorkload(m)
	t.Fatal("canceled run should not complete")
}

func TestRunParallelContainsBodyPanic(t *testing.T) {
	m := New(8)
	subs := m.Root().Partition(2, 2)
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Val != "boom" {
			t.Fatalf("Val=%v", pe.Val)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("missing stack")
		}
	}()
	m.Root().RunParallel(subs, func(idx int, sub View) {
		if idx == 2 {
			panic("boom")
		}
		sub.Charge(1)
	})
	t.Fatal("panic should have propagated")
}

func TestAuditCleanRunMatchesPlainRun(t *testing.T) {
	// Audit mode must observe only: identical step clocks and identical
	// per-op profiles on a workload covering sorts, scans, RAR and RAW.
	run := func(m *Mesh) {
		sortWorkload(m)
		rarWorkload(m)
		v := m.Root()
		RAW(v,
			func(i int) (int32, bool) { return int32(i % 5), i < 5 },
			func(i int) (int32, int, bool) { return int32(i % 5), i, true },
			func(a, b int) int { return a + b },
			func(i int, combined int, any bool) {})
	}
	plain := New(8)
	run(plain)
	audited := New(8, WithAudit())
	run(audited)
	if plain.Steps() != audited.Steps() {
		t.Fatalf("steps differ: plain=%d audited=%d", plain.Steps(), audited.Steps())
	}
	if plain.Profile() != audited.Profile() {
		t.Fatalf("profiles differ:\nplain   %+v\naudited %+v", plain.Profile(), audited.Profile())
	}
}

func TestAuditDetectsInjectedFaults(t *testing.T) {
	cases := []struct {
		name string
		inj  *stubInjector
		run  func(m *Mesh)
	}{
		{"sort comparator lie", &stubInjector{lieAfter: 1}, sortWorkload},
		{"corrupted sort cell", &stubInjector{corrupt: true}, sortWorkload},
		{"dropped RAR reply", &stubInjector{drop: true}, rarWorkload},
		{"duplicated RAR reply", &stubInjector{dup: true}, rarWorkload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(8, WithAudit(), WithInjector(tc.inj))
			defer func() {
				r := recover()
				if _, ok := r.(*AuditError); !ok {
					t.Fatalf("recovered %T (%v), want *AuditError", r, r)
				}
			}()
			tc.run(m)
			t.Fatal("injected fault escaped the audit")
		})
	}
}

func TestInjectorWithoutAuditStillRuns(t *testing.T) {
	// Injection with audit off must not panic on its own for faults that
	// only corrupt data (the point: audit is the detector, not injection).
	m := New(8, WithInjector(&stubInjector{corrupt: true}))
	sortWorkload(m)
	if m.Steps() == 0 {
		t.Fatal("no steps charged")
	}
}
