package mesh

import "testing"

// The theoretical cost model (optimal O(√n) sorters) must never charge more
// than the counted (shearsort) model for any operation at any size — the
// invariant that makes E13's ablation meaningful.
func TestTheoreticalNeverExceedsCounted(t *testing.T) {
	for _, side := range []int{2, 4, 8, 16, 64, 256, 1024} {
		mc := New(side)
		mt := New(side, WithCostModel(CostTheoretical))
		ops := []struct {
			name string
			run  func(m *Mesh) int64
		}{
			{"sort", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Sort(m.Root(), r, func(a, b int) bool { return a < b })
				return m.Steps()
			}},
			{"snake-sort", func(m *Mesh) int64 {
				r := NewReg[int](m)
				SortSnake(m.Root(), r, func(a, b int) bool { return a < b })
				return m.Steps()
			}},
			{"rar", func(m *Mesh) int64 {
				RAR(m.Root(),
					func(i int) (int32, int, bool) { return int32(i), i, true },
					func(i int) (int32, bool) { return int32(i), true },
					func(i, v int, ok bool) {})
				return m.Steps()
			}},
			{"raw", func(m *Mesh) int64 {
				RAW(m.Root(),
					func(i int) (int32, bool) { return int32(i), true },
					func(i int) (int32, int, bool) { return int32(i), i, true },
					func(a, b int) int { return a + b },
					func(i, v int, ok bool) {})
				return m.Steps()
			}},
			{"concentrate", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Concentrate(m.Root(), r, -1, func(x int) bool { return x >= 0 })
				return m.Steps()
			}},
			{"scan", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Scan(m.Root(), r, func(a, b int) int { return a + b })
				return m.Steps()
			}},
		}
		for _, op := range ops {
			mc.ResetSteps()
			mt.ResetSteps()
			cc := op.run(mc)
			ct := op.run(mt)
			if ct > cc {
				t.Fatalf("side %d op %s: theoretical %d > counted %d", side, op.name, ct, cc)
			}
			if cc <= 0 || ct <= 0 {
				t.Fatalf("side %d op %s: zero cost", side, op.name)
			}
		}
	}
}
