package mesh

import "testing"

// The theoretical cost model (optimal O(√n) sorters) must never charge more
// than the counted (shearsort) model for any operation at any size — the
// invariant that makes E13's ablation meaningful.
func TestTheoreticalNeverExceedsCounted(t *testing.T) {
	for _, side := range []int{2, 4, 8, 16, 64, 256, 1024} {
		mc := New(side)
		mt := New(side, WithCostModel(CostTheoretical))
		ops := []struct {
			name string
			run  func(m *Mesh) int64
		}{
			{"sort", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Sort(m.Root(), r, func(a, b int) bool { return a < b })
				return m.Steps()
			}},
			{"snake-sort", func(m *Mesh) int64 {
				r := NewReg[int](m)
				SortSnake(m.Root(), r, func(a, b int) bool { return a < b })
				return m.Steps()
			}},
			{"rar", func(m *Mesh) int64 {
				RAR(m.Root(),
					func(i int) (int32, int, bool) { return int32(i), i, true },
					func(i int) (int32, bool) { return int32(i), true },
					func(i, v int, ok bool) {})
				return m.Steps()
			}},
			{"raw", func(m *Mesh) int64 {
				RAW(m.Root(),
					func(i int) (int32, bool) { return int32(i), true },
					func(i int) (int32, int, bool) { return int32(i), i, true },
					func(a, b int) int { return a + b },
					func(i, v int, ok bool) {})
				return m.Steps()
			}},
			{"concentrate", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Concentrate(m.Root(), r, -1, func(x int) bool { return x >= 0 })
				return m.Steps()
			}},
			{"scan", func(m *Mesh) int64 {
				r := NewReg[int](m)
				Scan(m.Root(), r, func(a, b int) int { return a + b })
				return m.Steps()
			}},
		}
		for _, op := range ops {
			mc.ResetSteps()
			mt.ResetSteps()
			cc := op.run(mc)
			ct := op.run(mt)
			if ct > cc {
				t.Fatalf("side %d op %s: theoretical %d > counted %d", side, op.name, ct, cc)
			}
			if cc <= 0 || ct <= 0 {
				t.Fatalf("side %d op %s: zero cost", side, op.name)
			}
		}
	}
}

// Rotations sweep whichever direction is shorter, so the charge is
// min(d mod len, len − d mod len) — NOT d mod len; a shift by len−1 costs
// one step and a full rotation costs nothing. This pins the documented
// formula to the implementation for both axes, including negative and
// larger-than-len displacements.
func TestRotateChargeIsShortestDirection(t *testing.T) {
	for _, side := range []int{2, 4, 8, 16} {
		for _, d := range []int{0, 1, 2, side / 2, side - 1, side, side + 1, -1, -side - 2, 3*side + 2} {
			dm := ((d % side) + side) % side
			want := int64(min(dm, side-dm))

			m := New(side)
			r := NewReg[int](m)
			RotateRows(m.Root(), r, d)
			if got := m.Steps(); got != want {
				t.Fatalf("side %d RotateRows(%d): charged %d steps, want min(%d, %d) = %d",
					side, d, got, dm, side-dm, want)
			}
			if got := m.Profile().Ops[OpRotate].Steps; got != want {
				t.Fatalf("side %d RotateRows(%d): profile attributes %d steps to rotate, want %d",
					side, d, got, want)
			}

			m = New(side)
			r = NewReg[int](m)
			RotateCols(m.Root(), r, d)
			if got := m.Steps(); got != want {
				t.Fatalf("side %d RotateCols(%d): charged %d steps, want min(%d, %d) = %d",
					side, d, got, dm, side-dm, want)
			}
		}
	}
}
