package mesh

import (
	"sync"
	"testing"
)

// targetedInjector fires exactly one CorruptCell fault, at the first
// consultation whose op name matches, with chosen src/dst cells. Everything
// else stays honest. Safe for concurrent use (RunParallel).
type targetedInjector struct {
	op   string
	s, d int

	mu    sync.Mutex
	fired bool
}

func (t *targetedInjector) SortLie(string, int) int64 { return 0 }

func (t *targetedInjector) CorruptCell(op string, items int) (int, int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || op != t.op || items <= t.s || items <= t.d {
		return 0, 0, false
	}
	t.fired = true
	return t.s, t.d, true
}

func (t *targetedInjector) DropReply(int) (int, bool)           { return 0, false }
func (t *targetedInjector) DuplicateReply(int) (int, int, bool) { return 0, 0, false }

func (t *targetedInjector) didFire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// catchAudit runs f and returns the *AuditError it panics with, nil if it
// returns normally. Any other panic value is re-raised.
func catchAudit(f func()) (ae *AuditError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if ae, ok = r.(*AuditError); !ok {
				panic(r)
			}
		}
	}()
	f()
	return nil
}

// opClassDrivers enumerates, for every charged OpClass, a representative
// operation, the op name its injection seam reports, the corrupt src/dst
// cells to request, and a driver that executes it on distinct data (so the
// corrupted cell always changes machine state). The run-time pairing with
// NumOpClasses is the coverage contract: adding an OpClass without a
// faultable, audited representative fails the test below.
var opClassDrivers = map[OpClass]struct {
	op   string
	s, d int
	run  func(m *Mesh)
}{
	OpLocal: {"Apply", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		Apply(m.Root(), r, func(i, _ int) int { return i*7 + 11 })
	}},
	OpSort: {"Sort", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = v.Size() - i
		}
		Load(v, r, xs)
		Sort(v, r, func(a, b int) bool { return a < b })
	}},
	OpScan: {"Scan", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = i + 1
		}
		Load(v, r, xs)
		Scan(v, r, func(a, b int) int { return a + b })
	}},
	// s=2 ≠ the broadcast source: the stale word must differ from the
	// broadcast value for the fault to be observable at all.
	OpBroadcast: {"Broadcast", 2, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = 100 + i
		}
		Load(v, r, xs)
		Broadcast(v, r, 0)
	}},
	OpReduce: {"Reduce", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = i + 1
		}
		Load(v, r, xs)
		Reduce(v, r, func(a, b int) int { return a + b })
	}},
	OpRotate: {"RotateRows", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = i * 3
		}
		Load(v, r, xs)
		RotateRows(v, r, 1)
	}},
	OpRoute: {"RouteScratch", 0, 1, func(m *Mesh) {
		v := m.Root()
		src := make([]int, v.Size())
		for i := range src {
			src[i] = 1000 + i
		}
		dst, occ := RouteScratch(v, src, len(src), 1, func(i int) int { return len(src) - 1 - i })
		Release(m, dst)
		Release(m, occ)
	}},
	OpConcentrate: {"Concentrate", 0, 1, func(m *Mesh) {
		r := NewReg[int](m)
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = i
		}
		Load(v, r, xs)
		Concentrate(v, r, -1, func(x int) bool { return x%2 == 0 })
	}},
	OpRAR: {"RAR", 0, 1, func(m *Mesh) {
		v := m.Root()
		n := v.Size()
		RAR(v,
			func(i int) (int32, int, bool) { return int32(i), i * 5, true },
			func(i int) (int32, bool) { return int32((i + 3) % n), true },
			func(i, val int, found bool) {})
	}},
	OpRAW: {"RAW", 0, 1, func(m *Mesh) {
		v := m.Root()
		n := v.Size()
		RAW(v,
			func(i int) (int32, bool) { return int32(i), true },
			func(i int) (int32, int, bool) { return int32((i + 3) % n), i * 5, true },
			func(a, b int) int { return a + b },
			func(i, val int, ok bool) {})
	}},
}

// TestEveryOpClassIsFaultableAndAudited is the single coverage test the
// fault seam is pinned by: it enumerates OpClass and requires, per class,
// that (1) a representative driver exists, (2) the driver actually charges
// the class on a clean mesh, and (3) a targeted injected corruption on that
// class's op is caught by audit mode as a typed *AuditError.
func TestEveryOpClassIsFaultableAndAudited(t *testing.T) {
	if len(opClassDrivers) != int(NumOpClasses) {
		t.Fatalf("coverage map has %d drivers, want one per OpClass (%d) — "+
			"a new class needs a faultable, audited representative here", len(opClassDrivers), NumOpClasses)
	}
	for c := OpClass(0); c < NumOpClasses; c++ {
		d, ok := opClassDrivers[c]
		if !ok {
			t.Fatalf("no driver for class %v", c)
		}
		t.Run(c.String(), func(t *testing.T) {
			// Clean run: the driver must charge its class.
			clean := New(4)
			d.run(clean)
			if got := clean.Profile().Ops[c]; got.Count == 0 || got.Steps == 0 {
				t.Fatalf("driver charged class %v count=%d steps=%d, want both > 0", c, got.Count, got.Steps)
			}
			// Injected run: the corruption must reach the op and trip the audit.
			inj := &targetedInjector{op: d.op, s: d.s, d: d.d}
			m := New(4, WithAudit(), WithInjector(inj))
			ae := catchAudit(func() { d.run(m) })
			if ae == nil {
				t.Fatalf("class %v: injected corruption on %q escaped the audit (fired=%v)", c, d.op, inj.didFire())
			}
			if !inj.didFire() {
				t.Fatalf("class %v: audit fired without injection — op name %q never consulted", c, d.op)
			}
			if ae.Op == "" || ae.Detail == "" {
				t.Fatalf("class %v: audit error lacks context: %v", c, ae)
			}
		})
	}
}

// TestScanHeadCellCorruptionCaught pins the head-cell half of the scan
// audits: segment heads (and cell 0) are untouched by a segmented scan, so a
// fault landing exactly there used to be invisible to the prefix-identity
// check. Both the register SegScan and the scratch ScanScratch must flag it.
func TestScanHeadCellCorruptionCaught(t *testing.T) {
	t.Run("SegScan", func(t *testing.T) {
		inj := &targetedInjector{op: "SegScan", s: 2, d: 5} // d = a segment head
		m := New(4, WithAudit(), WithInjector(inj))
		r := NewReg[int](m)
		head := NewReg[bool](m)
		v := m.Root()
		xs := make([]int, v.Size())
		hs := make([]bool, v.Size())
		for i := range xs {
			xs[i] = i
			hs[i] = i%5 == 0
		}
		Load(v, r, xs)
		Load(v, head, hs)
		ae := catchAudit(func() {
			SegScan(v, r, head, func(a, b int) int { return max(a, b) })
		})
		if ae == nil || !inj.didFire() {
			t.Fatalf("head-cell corruption escaped the SegScan audit (err=%v fired=%v)", ae, inj.didFire())
		}
	})
	t.Run("ScanScratch", func(t *testing.T) {
		inj := &targetedInjector{op: "ScanScratch", s: 2, d: 5}
		m := New(4, WithAudit(), WithInjector(inj))
		v := m.Root()
		xs := make([]int, v.Size())
		for i := range xs {
			xs[i] = i
		}
		ae := catchAudit(func() {
			ScanScratch(v, xs, 1, func(i int) bool { return i%5 == 0 },
				func(a, b int) int { return max(a, b) })
		})
		if ae == nil || !inj.didFire() {
			t.Fatalf("head-cell corruption escaped the ScanScratch audit (err=%v fired=%v)", ae, inj.didFire())
		}
	})
}

// replyEdgeInjector drives RAR's reply-fault sweep with exact indices,
// for the drop == dupSrc edge: the dropped reply is itself the source of
// the duplication, so the duplicate delivery is the *only* delivery the
// duplication target's origin sees twice — and the dropped origin still
// sees its own (the drop skips index drop in the main sweep but dupSrc's
// value is re-sent to dupDst's origin).
type replyEdgeInjector struct {
	drop, dupSrc, dupDst int
}

func (i replyEdgeInjector) SortLie(string, int) int64                { return 0 }
func (i replyEdgeInjector) CorruptCell(string, int) (int, int, bool) { return 0, 0, false }
func (i replyEdgeInjector) DropReply(int) (int, bool)                { return i.drop, true }
func (i replyEdgeInjector) DuplicateReply(int) (int, int, bool)      { return i.dupSrc, i.dupDst, true }

// TestRARDropEqualsDupSrcEdgeIsCaught pins the reply-fault edge where the
// dropped reply index equals the duplication source: the duplication target's
// origin is delivered twice (once honestly, once as the duplicate), while the
// dropped origin is never delivered. Audit mode must flag the run — the
// double delivery fires first, before the end-of-op dropped-reply check.
func TestRARDropEqualsDupSrcEdgeIsCaught(t *testing.T) {
	inj := replyEdgeInjector{drop: 3, dupSrc: 3, dupDst: 5}
	m := New(8, WithAudit(), WithInjector(inj))
	v := m.Root()
	n := v.Size()
	ae := catchAudit(func() {
		RAR(v,
			func(i int) (int32, int, bool) { return int32(i), i * 9, true },
			func(i int) (int32, bool) { return int32((i + 7) % n), true },
			func(i, val int, found bool) {})
	})
	if ae == nil {
		t.Fatal("drop == dupSrc reply fault escaped the RAR audit")
	}
	if ae.Op != "RAR" {
		t.Fatalf("audit flagged op %q, want RAR", ae.Op)
	}
}
