package mesh

import (
	"strings"
	"testing"
)

// The fundamental profile invariant: per-class step totals sum exactly to
// the step clock, including across RunParallel (critical-path merge) and
// RunSequential (sum merge).
func TestProfileSumsToSteps(t *testing.T) {
	m := New(16)
	v := m.Root()
	r := NewReg[int64](m)
	for i := 0; i < v.Size(); i++ {
		Set(v, r, i, int64(i%17))
	}
	Sort(v, r, func(a, b int64) bool { return a < b })
	Scan(v, r, func(a, b int64) int64 { return a + b })
	Broadcast(v, r, 0)
	Reduce(v, r, func(a, b int64) int64 { return a + b })
	RotateRows(v, r, 3)
	Concentrate(v, r, -1, func(x int64) bool { return x%2 == 0 })
	RAR(v,
		func(i int) (int64, int64, bool) { return int64(i), int64(i), true },
		func(i int) (int64, bool) { return int64(i), true },
		func(i int, val int64, found bool) {})
	RAW(v,
		func(i int) (int64, bool) { return int64(i), true },
		func(i int) (int64, int64, bool) { return int64(i / 2), 1, true },
		func(a, b int64) int64 { return a + b },
		func(i int, combined int64, any bool) {})
	v.RunParallel(v.Partition(2, 2), func(_ int, sub View) {
		Sort(sub, r, func(a, b int64) bool { return a < b })
		sub.Charge(4)
	})
	v.RunSequential(v.Partition(4, 4), func(_ int, sub View) {
		Scan(sub, r, func(a, b int64) int64 { return a + b })
	})
	Fill(v, r, 0)

	p := m.Profile()
	if got, want := p.TotalSteps(), m.Steps(); got != want {
		t.Fatalf("profile step total %d != Steps() %d", got, want)
	}
	for _, c := range []OpClass{OpSort, OpScan, OpBroadcast, OpReduce, OpRotate,
		OpConcentrate, OpRAR, OpRAW, OpLocal} {
		if p.Ops[c].Count == 0 {
			t.Errorf("class %v: count 0, want > 0", c)
		}
		if p.Ops[c].Steps <= 0 {
			t.Errorf("class %v: steps %d, want > 0", c, p.Ops[c].Steps)
		}
	}
}

// A compound operation owns the steps of its internal sorts and scans: one
// lone RAR must show up only under the rar class.
func TestCompoundOpAttribution(t *testing.T) {
	m := New(8)
	v := m.Root()
	RAR(v,
		func(i int) (int64, int64, bool) { return int64(i), int64(i), true },
		func(i int) (int64, bool) { return int64(i), true },
		func(i int, val int64, found bool) {})
	p := m.Profile()
	if p.Ops[OpRAR].Count != 1 {
		t.Errorf("rar count = %d, want 1", p.Ops[OpRAR].Count)
	}
	if p.Ops[OpRAR].Steps != m.Steps() {
		t.Errorf("rar steps = %d, want all %d", p.Ops[OpRAR].Steps, m.Steps())
	}
	for c := OpClass(0); c < NumOpClasses; c++ {
		if c != OpRAR && (p.Ops[c].Count != 0 || p.Ops[c].Steps != 0) {
			t.Errorf("class %v leaked out of RAR: %+v", c, p.Ops[c])
		}
	}
}

func TestResetStepsClearsProfile(t *testing.T) {
	m := New(8)
	r := NewReg[int64](m)
	Sort(m.Root(), r, func(a, b int64) bool { return a < b })
	m.ResetSteps()
	if m.Steps() != 0 || m.Profile().TotalSteps() != 0 || m.Profile().TotalOps() != 0 {
		t.Fatalf("ResetSteps left steps=%d profile=%+v", m.Steps(), m.Profile())
	}
}

// RunParallel charges the critical path: the profile must carry the most
// expensive submesh's breakdown, not the sum of all submeshes.
func TestProfileCriticalPathMerge(t *testing.T) {
	m := New(16)
	v := m.Root()
	r := NewReg[int64](m)
	subs := v.Partition(2, 2)
	v.RunParallel(subs, func(idx int, sub View) {
		if idx == 0 {
			Sort(sub, r, func(a, b int64) bool { return a < b }) // expensive
		} else {
			sub.Charge(1) // cheap
		}
	})
	p := m.Profile()
	if p.Ops[OpSort].Count != 1 {
		t.Errorf("sort count = %d, want 1 (critical path only)", p.Ops[OpSort].Count)
	}
	if p.Ops[OpLocal].Count != 0 {
		t.Errorf("local count = %d, want 0 (off the critical path)", p.Ops[OpLocal].Count)
	}
	if p.TotalSteps() != m.Steps() {
		t.Errorf("profile total %d != Steps() %d", p.TotalSteps(), m.Steps())
	}
}

// Out-of-view local indices must panic with the view geometry instead of
// silently addressing a neighbouring submesh.
func TestGlobalBoundsPanic(t *testing.T) {
	m := New(8)
	sub := m.Root().Sub(2, 2, 4, 4)
	r := NewReg[int64](m)
	for _, tc := range []struct {
		name  string
		local int
	}{
		{"past end", sub.Size()},
		{"way past end", 3 * sub.Size()},
		{"negative", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatalf("local %d did not panic", tc.local)
				}
				if !strings.Contains(msg, "4x4 view") || !strings.Contains(msg, "(2,2)") {
					t.Errorf("panic %q does not name the view geometry", msg)
				}
			}()
			At(sub, r, tc.local)
		})
	}
	// Set and Broadcast funnel through the same check.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set out of view did not panic")
			}
		}()
		Set(sub, r, sub.Size(), 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Broadcast src out of view did not panic")
			}
		}()
		Broadcast(sub, r, sub.Size())
	}()
}
