package mesh

import "testing"

func TestApply2(t *testing.T) {
	m := New(4)
	a := NewReg[int](m)
	b := NewReg[int](m)
	v := m.Root()
	for i := 0; i < v.Size(); i++ {
		Set(v, a, i, i*10)
		Set(v, b, i, 1)
	}
	Apply2(v, a, b, func(local, av, bv int) int { return av + bv + local })
	for i := 0; i < v.Size(); i++ {
		if got := At(v, b, i); got != i*10+1+i {
			t.Fatalf("cell %d = %d", i, got)
		}
	}
	if m.Steps() != 1 {
		t.Fatalf("Apply2 cost %d", m.Steps())
	}
}

func TestMeshAccessors(t *testing.T) {
	m := New(8, WithCostModel(CostTheoretical), WithParallelism(0))
	if m.Model() != CostTheoretical {
		t.Fatal("Model")
	}
	v := m.Root()
	if v.Mesh() != m {
		t.Fatal("View.Mesh")
	}
	if cap(m.sem) != 1 {
		t.Fatal("WithParallelism clamps to 1")
	}
}

func TestScanScratchRev(t *testing.T) {
	m := New(2)
	v := m.Root()
	// Segments in reverse order: heads (in reverse scan) at indices 3 and 1.
	xs := []int{1, 2, 3, 4}
	ScanScratchRev(v, xs, 1,
		func(i int) bool { return i == 3 || i == 1 },
		func(a, b int) int { return a + b })
	// Reverse scan: x[3]=4 (head), x[2]=x[3]+3=7, x[1]=2 (head), x[0]=3.
	want := []int{3, 2, 7, 4}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d]=%d want %d", i, xs[i], want[i])
		}
	}
}

func TestScanScratchRevOverflowPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScanScratchRev(m.Root(), make([]int, 5), 1, func(int) bool { return false },
		func(a, b int) int { return a })
}

func TestRouteTo(t *testing.T) {
	m := New(4)
	src := NewReg[int](m)
	dst := NewReg[int](m)
	v := m.Root()
	for i := 0; i < v.Size(); i++ {
		Set(v, src, i, 100+i)
		Set(v, dst, i, -1)
	}
	RouteTo(v, src, dst, func(i, val int) (int, bool) {
		return v.Size() - 1 - i, i%2 == 0
	})
	for i := 0; i < v.Size(); i++ {
		j := v.Size() - 1 - i
		if i%2 == 0 {
			if At(v, dst, j) != 100+i {
				t.Fatalf("dst[%d]=%d", j, At(v, dst, j))
			}
		}
	}
	// Source untouched.
	if At(v, src, 0) != 100 {
		t.Fatal("source modified")
	}
	// Unrouted dst cells keep their value.
	if At(v, dst, v.Size()-2) != -1 && At(v, dst, 1) != -1 {
		t.Fatal("unrouted cells modified")
	}
}

func TestRouteToCollisionPanics(t *testing.T) {
	m := New(2)
	src := NewReg[int](m)
	dst := NewReg[int](m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RouteTo(m.Root(), src, dst, func(i, val int) (int, bool) { return 0, true })
}

func TestRouteToOutOfRangePanics(t *testing.T) {
	m := New(2)
	src := NewReg[int](m)
	dst := NewReg[int](m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RouteTo(m.Root(), src, dst, func(i, val int) (int, bool) { return -1, true })
}

func TestRouteScratch(t *testing.T) {
	m := New(2)
	v := m.Root()
	src := []int{10, 20, 30}
	dst, occ := RouteScratch(v, src, 6, 2, func(i int) int { return 2 * i })
	for i := range src {
		if dst[2*i] != src[i] || !occ[2*i] {
			t.Fatalf("dst[%d]=%d occ=%v", 2*i, dst[2*i], occ[2*i])
		}
	}
	if occ[1] || occ[3] || occ[5] {
		t.Fatal("gaps marked occupied")
	}
}

func TestRouteScratchPanics(t *testing.T) {
	m := New(2)
	v := m.Root()
	for name, f := range map[string]func(){
		"overflow": func() { RouteScratch(v, []int{1}, 9, 2, func(int) int { return 0 }) },
		"range":    func() { RouteScratch(v, []int{1}, 4, 2, func(int) int { return 9 }) },
		"collide":  func() { RouteScratch(v, []int{1, 2}, 4, 2, func(int) int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLoadOverflowPanics(t *testing.T) {
	m := New(2)
	r := NewReg[int](m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Load(m.Root(), r, make([]int, 5))
}

func TestScanScratchOverflowPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScanScratch(m.Root(), make([]int, 5), 1, func(int) bool { return false },
		func(a, b int) int { return a })
}
