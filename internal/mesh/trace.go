package mesh

// Step-clock tracing seam. Algorithm code opens named spans on a View
// (View.Span, or the fmt-aware wrapper in internal/trace); the mesh keeps
// the span tree aligned with the critical-path step accounting by forking a
// trace context per submesh body and merging exactly the contexts whose
// steps were charged: the max-cost child under RunParallel, every child
// under RunSequential. Spans therefore live on the same timeline as
// Mesh.Steps() — a span's [open, close] window is an interval of simulated
// parallel time along the critical chain, and well-nested instrumentation
// partitions the clock exactly (see DESIGN.md §3.4).
//
// The default is nil and costs one pointer check per Span call and one per
// RunParallel/RunSequential — no allocation, no indirect call — so untraced
// runs are byte-identical to the seed (invariant-tested).

// TraceContext collects the spans of one execution chain. The mesh creates
// one per sink: each RunParallel / RunSequential body gets its own via Fork,
// owned exclusively by the goroutine executing the body, and Merge is only
// called by the parent goroutine after the body has finished. Distinct
// chains DO run concurrently (RunParallel bodies), so any state shared
// across chains — e.g. the backing Tracer — must synchronize internally;
// within one chain calls are never re-entrant.
type TraceContext interface {
	// OpenSpan starts a span at simulated parallel time `at` on this chain.
	// prof is the chain sink's per-op breakdown at the open, so the closer
	// can attribute a Profile delta to the span.
	OpenSpan(name string, at int64, prof Profile)
	// CloseSpan ends the innermost open span at time `at`.
	CloseSpan(at int64, prof Profile)
	// Fork returns the context for a child execution chain (one submesh
	// body). The child's spans are buffered until Merge.
	Fork() TraceContext
	// Merge splices a forked child's spans into this chain at the fork
	// point. RunParallel merges only the critical-path (max-cost) child —
	// the same rule the step clock obeys — so merged span windows always
	// lie inside their parent's window; RunSequential merges every child.
	Merge(child TraceContext)
}

// Tracer is attached to a Mesh with WithTracer. Attach is called by New and
// by ResetSteps — each call starts a fresh traced run whose step clock
// begins at zero. internal/trace provides the implementation used by
// meshbench (Chrome trace export, phase tables, live metrics).
type Tracer interface {
	Attach(g Geometry) TraceContext
}

// WithTracer installs a step-clock tracer (see internal/trace). nil (the
// default) disables tracing at the cost of one pointer check per span and
// per parallel region.
func WithTracer(t Tracer) Option {
	return func(ms *Mesh) { ms.tracer = t }
}

// TraceRun returns the trace context of the mesh's current run — the value
// the installed Tracer's Attach returned at New or the latest ResetSteps —
// or nil when no tracer is installed. It names *this mesh's current run*
// specifically (trace.HandleFor turns it into a taggable run handle), which
// is what the serving layer needs when rounds on different meshes attach
// concurrently and "most recently attached" would be a race.
func (m *Mesh) TraceRun() TraceContext { return m.root.tc }

// Traced reports whether a tracer is collecting spans for this view's
// execution chain. Callers formatting span names should check it first so
// untraced runs skip the formatting entirely.
func (v View) Traced() bool { return v.sink.tc != nil }

// noSpan is the shared closer returned when tracing is off.
var noSpan = func() {}

// Span opens a named span at the view's current critical-chain clock and
// returns its closer. The span is charged nothing; it only brackets the
// steps charged between open and close, and its Profile delta is the
// per-op decomposition of exactly those steps. Spans must be closed in
// LIFO order on the chain that opened them (use defer), and before the
// enclosing RunParallel / RunSequential body returns.
func (v View) Span(name string) func() {
	tc := v.sink.tc
	if tc == nil {
		return noSpan
	}
	tc.OpenSpan(name, v.elapsed(), v.sink.prof)
	s := v.sink
	return func() { tc.CloseSpan(s.base+s.steps, s.prof) }
}
