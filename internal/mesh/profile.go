package mesh

import (
	"fmt"
	"strings"
)

// Per-operation step accounting. Every charge carries an OpClass; the sink
// keeps, next to the plain step clock, a breakdown of those steps by class.
// Compound operations (RAR, RAW, Concentrate, ...) attribute the charges of
// their internal sorts and scans to themselves, so the breakdown answers the
// question the EXPERIMENTS tables ask: which primitive consumed the step
// budget of a run.
//
// Under RunParallel the parent is charged the *maximum* cost across
// submeshes (elapsed parallel time). The profile follows the same rule: the
// breakdown of the most expensive submesh — the critical path — is merged
// into the parent. The invariant, checked by tests, is that the per-class
// step totals always sum exactly to Mesh.Steps().

// OpClass identifies one class of standard mesh operation.
type OpClass int

const (
	// OpLocal is an O(1)-local parallel step on every processor
	// (Fill, Apply, explicit Charge calls from algorithm code).
	OpLocal OpClass = iota
	// OpSort covers Sort, SortSnake and SortScratch.
	OpSort
	// OpScan covers Scan, ExclusiveScan, SegScan and the scratch scans.
	OpScan
	// OpBroadcast covers Broadcast and BroadcastBlock.
	OpBroadcast
	// OpReduce covers Reduce and Count.
	OpReduce
	// OpRotate covers RotateRows and RotateCols.
	OpRotate
	// OpRoute covers Route, RouteTo and RouteScratch.
	OpRoute
	// OpConcentrate covers Concentrate.
	OpConcentrate
	// OpRAR is the random-access read.
	OpRAR
	// OpRAW is the combining random-access write.
	OpRAW

	// NumOpClasses is the number of operation classes.
	NumOpClasses
)

func (c OpClass) String() string {
	switch c {
	case OpLocal:
		return "local"
	case OpSort:
		return "sort"
	case OpScan:
		return "scan"
	case OpBroadcast:
		return "broadcast"
	case OpReduce:
		return "reduce"
	case OpRotate:
		return "rotate"
	case OpRoute:
		return "route"
	case OpConcentrate:
		return "concentrate"
	case OpRAR:
		return "rar"
	case OpRAW:
		return "raw"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// OpStats is the critical-path tally of one operation class.
type OpStats struct {
	Count int64 // operations executed on the critical path
	Steps int64 // mesh steps charged to the class on the critical path
}

// Profile is the per-class decomposition of a mesh's step clock along the
// critical path. The class step totals sum exactly to Mesh.Steps().
type Profile struct {
	Ops [NumOpClasses]OpStats
}

// TotalSteps returns the sum of the per-class step totals. It always equals
// the Steps() of the mesh the profile was read from.
func (p Profile) TotalSteps() int64 {
	var t int64
	for _, s := range p.Ops {
		t += s.Steps
	}
	return t
}

// TotalOps returns the number of operations on the critical path.
func (p Profile) TotalOps() int64 {
	var t int64
	for _, s := range p.Ops {
		t += s.Count
	}
	return t
}

// add merges q into p (both counts and steps).
func (p *Profile) add(q *Profile) {
	for i := range p.Ops {
		p.Ops[i].Count += q.Ops[i].Count
		p.Ops[i].Steps += q.Ops[i].Steps
	}
}

// Add merges q into p (counts and steps) — the exported form used by the
// tracing exporters when they aggregate span deltas.
func (p *Profile) Add(q Profile) { p.add(&q) }

// Sub returns the per-class difference p − q. q must be an earlier snapshot
// of the same accumulating profile (counts and steps only grow), so the
// result is the breakdown of what was charged between the two snapshots —
// how tracing spans attribute a per-op delta to their window.
func (p Profile) Sub(q Profile) Profile {
	var d Profile
	for i := range p.Ops {
		d.Ops[i].Count = p.Ops[i].Count - q.Ops[i].Count
		d.Ops[i].Steps = p.Ops[i].Steps - q.Ops[i].Steps
	}
	return d
}

// String renders the breakdown as an aligned per-class table, one line per
// class that executed, with each class's share of the profile's step total.
// It is the single rendering used by meshbench -profile, the phase tables
// and BudgetExceededError.
func (p Profile) String() string {
	var b strings.Builder
	total := p.TotalSteps()
	for c := OpClass(0); c < NumOpClasses; c++ {
		s := p.Ops[c]
		if s.Count == 0 && s.Steps == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Steps) / float64(total)
		}
		fmt.Fprintf(&b, "%-11s %12d steps  %5.1f%%  %9d ops\n", c, s.Steps, share, s.Count)
	}
	return b.String()
}

// Dominant returns the class that charged the most steps, and its total.
func (p Profile) Dominant() (OpClass, int64) {
	best := OpClass(0)
	for c := OpClass(1); c < NumOpClasses; c++ {
		if p.Ops[c].Steps > p.Ops[best].Steps {
			best = c
		}
	}
	return best, p.Ops[best].Steps
}

// Profile returns the per-operation breakdown of the mesh's step clock
// accumulated since New or the last ResetSteps.
func (m *Mesh) Profile() Profile { return m.root.prof }
