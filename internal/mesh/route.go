package mesh

import (
	"cmp"
	"fmt"
	"reflect"
)

// Data movement operations: random-access read, routing, concentration, and
// block replication. These are the "standard mesh operations" the paper
// composes; all are built from sorts and scans so their charges follow from
// the primitive cost formulas. Item banks (the 2m-record sort banks of
// RAR/RAW, routing move lists) are checked out of the mesh's scratch arena
// and released on return, so the steady-state multistep loop allocates
// nothing.
//
// Scratch-slice variants (SortScratch, ScanScratch) model a bank of perProc
// registers per processor — perProc must remain O(1), which is how the
// physical machine sorts 2m items on m processors (two words per link per
// transposition round, doubling the phase time).

// SortScratch stable-sorts xs, a scratch bank holding up to perProc records
// per processor of the view, charging perProc row-major sorts.
func SortScratch[T any](v View, xs []T, perProc int, less func(a, b T) bool) {
	v = v.begin(OpSort)
	sortSlice(v, "SortScratch", xs, perProc, less)
}

// ScanScratch performs a segmented inclusive scan over scratch bank xs in
// index order, restarting wherever head reports true, charging perProc
// scans.
func ScanScratch[T any](v View, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	v = v.begin(OpScan)
	scanSlice(v, "ScanScratch", xs, perProc, head, op)
}

// ScanScratchRev is ScanScratch running in reverse index order: segment
// heads are tested in reverse order (head(i) true restarts the scan at i,
// moving from high indices to low). Mesh scans run equally well along the
// reversed snake; same cost.
func ScanScratchRev[T any](v View, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	v = v.begin(OpScan)
	scanSliceRev(v, "ScanScratchRev", xs, perProc, head, op)
}

// move pairs a routed value with its destination; routings sort their move
// list by destination, which is also what detects collisions (adjacent
// duplicates after the sort).
type move[T any] struct {
	dest int32
	val  T
}

// collectMoves builds the pooled move list for Route/RouteTo and validates
// destinations. The caller releases it.
func collectMoves[T any](v View, read func(local int) T, sel func(local int, val T) (dest int, ok bool), opName string) []move[T] {
	m := v.Size()
	moves := Checkout[move[T]](v.m, m)[:0]
	for i := 0; i < m; i++ {
		val := read(i)
		if d, ok := sel(i, val); ok {
			if d < 0 || d >= m {
				panic("mesh: " + opName + " destination out of view")
			}
			moves = append(moves, move[T]{int32(d), val})
		}
	}
	sortSlice(v, opName, moves, 1, func(a, b move[T]) bool { return a.dest < b.dest })
	for i := 1; i < len(moves); i++ {
		if moves[i].dest == moves[i-1].dest {
			panic("mesh: " + opName + " destination collision")
		}
	}
	return moves
}

// RouteTo moves selected records of src into computed destination cells of
// dst (a different register). Destinations must be distinct; cells of dst
// that receive no record are untouched. Cost: one sort.
func RouteTo[T any](v View, src, dst *Reg[T], sel func(local int, val T) (dest int, ok bool)) {
	v = v.begin(OpRoute)
	moves := collectMoves(v, func(i int) T { return src.data[v.Global(i)] }, sel, "RouteTo")
	for _, mv := range moves {
		dst.data[v.Global(int(mv.dest))] = mv.val
	}
	Release(v.m, moves)
	v.charge(OpRoute, 1)
}

// RouteScratch routes the items of src into a scratch bank of dstLen cells
// (≤ perProc per processor): src[i] lands at dest(i). Destinations must be
// distinct; with an honest sort a collision panics (equal destinations are
// adjacent after the destination sort). occupied reports which cells
// received an item. The returned slices come from the arena — the caller
// must hand both back with Release when done with them. Cost: perProc sorts.
//
// The routing executes as a move-list sort by destination through runSort,
// so the fault-injection and audit seams cover it like every other charged
// sort (a lying comparator or corrupted move record trips the audit's
// reference-sort comparison before the scatter).
func RouteScratch[T any](v View, src []T, dstLen, perProc int, dest func(i int) int) (dst []T, occupied []bool) {
	v = v.begin(OpRoute)
	if perProc < 1 {
		perProc = 1
	}
	if dstLen > perProc*v.Size() {
		panic("mesh: RouteScratch overflow")
	}
	moves := Checkout[move[T]](v.m, len(src))[:0]
	for i := range src {
		d := dest(i)
		if d < 0 || d >= dstLen {
			panic("mesh: RouteScratch destination out of range")
		}
		moves = append(moves, move[T]{int32(d), src[i]})
	}
	runSort(v, "RouteScratch", moves, func(a, b move[T]) bool { return a.dest < b.dest })
	dst = Checkout[T](v.m, dstLen)
	occupied = Checkout[bool](v.m, dstLen)
	clear(dst)
	clear(occupied)
	for i, mv := range moves {
		if i > 0 && mv.dest == moves[i-1].dest {
			panic("mesh: RouteScratch destination collision")
		}
		dst[mv.dest] = mv.val
		occupied[mv.dest] = true
	}
	Release(v.m, moves)
	v.charge(OpRoute, int64(perProc)*v.rowMajorSortCost())
	return dst, occupied
}

// rarExpect is the audit-mode oracle record for one RAR request (or one RAW
// record cell): the value the delivery sweep must hand back, and how many
// times it has been delivered so far.
type rarExpect[V any] struct {
	val   V
	found bool
	n     int
}

// auditDelivery cross-checks one delivery against the oracle expectation
// map and the delivered-exactly-once rule. Shared by RAR and RAW.
func auditDelivery[V any](v View, op string, expect map[int32]*rarExpect[V], origin int32, val V, found bool) {
	e := expect[origin]
	if e == nil {
		panic(&AuditError{Geom: v.m.geometry(), Op: op,
			Detail: fmt.Sprintf("delivery to processor %d, which expects none", origin)})
	}
	e.n++
	if e.n > 1 {
		panic(&AuditError{Geom: v.m.geometry(), Op: op,
			Detail: fmt.Sprintf("processor %d delivered to %d times", origin, e.n)})
	}
	if found != e.found {
		panic(&AuditError{Geom: v.m.geometry(), Op: op,
			Detail: fmt.Sprintf("processor %d delivered found=%v, oracle says %v", origin, found, e.found)})
	}
	if found && !reflect.DeepEqual(val, e.val) {
		panic(&AuditError{Geom: v.m.geometry(), Op: op,
			Detail: fmt.Sprintf("processor %d delivered a value differing from the oracle", origin)})
	}
}

// auditAllDelivered verifies that every expected delivery happened.
func auditAllDelivered[V any](v View, op string, expect map[int32]*rarExpect[V]) {
	for origin, e := range expect {
		if e.n == 0 {
			panic(&AuditError{Geom: v.m.geometry(), Op: op,
				Detail: fmt.Sprintf("reply for processor %d was never delivered (dropped)", origin)})
		}
	}
}

// RAR is the random-access read of Nassimi–Sahni: every processor may issue
// one keyed request, every processor may hold one keyed record, and each
// request receives the value of the record with its key. Concurrent reads
// of one record by many requests are supported (the duplication happens in
// the segmented copy-scan, not by magic). Record keys are expected to be
// unique within the view (the algorithms guarantee this; if violated, the
// last record in sorted order wins). Requests whose key has no record
// receive found=false.
//
// Mesh realization charged here: sort the 2m-item bank by (key, records
// first); copy-scan record values across the requests that follow them;
// sort the requests back by origin. Cost: 1 double-sort + 1 double-scan +
// 1 single sort.
//
// In audit mode every delivery is cross-checked against a host-side oracle
// built from the pristine item bank, and each pending request must be
// delivered exactly once — which is what detects injected dropped or
// duplicated replies and corrupted bank records.
func RAR[K cmp.Ordered, V any](v View,
	record func(local int) (key K, val V, ok bool),
	request func(local int) (key K, ok bool),
	deliver func(local int, val V, found bool),
) {
	type item struct {
		key    K
		isReq  bool
		found  bool
		val    V
		origin int32
	}
	v = v.begin(OpRAR)
	m := v.Size()
	items := Checkout[item](v.m, 2*m)[:0]
	for i := 0; i < m; i++ {
		if k, val, ok := record(i); ok {
			items = append(items, item{key: k, val: val, found: true, origin: int32(i)})
		}
		if k, ok := request(i); ok {
			items = append(items, item{key: k, isReq: true, origin: int32(i)})
		}
	}
	// Audit oracle, built from the pristine bank before any sort can be
	// faulted: each request origin expects the value of the last record
	// collected with its key (matching the stable sort + copy-scan).
	var expect map[int32]*rarExpect[V]
	if v.m.audit {
		recs := make(map[K]rarExpect[V], len(items))
		for _, it := range items {
			if !it.isReq {
				recs[it.key] = rarExpect[V]{val: it.val, found: true}
			}
		}
		expect = make(map[int32]*rarExpect[V], len(items))
		for _, it := range items {
			if it.isReq {
				e := recs[it.key]
				expect[it.origin] = &rarExpect[V]{val: e.val, found: e.found}
			}
		}
	}
	sortSlice(v, "RAR", items, 2, func(a, b item) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return !a.isReq && b.isReq
	})
	scanSlice(v, "RAR", items, 2,
		func(i int) bool { return i == 0 || items[i].key != items[i-1].key },
		func(a, b item) item {
			if b.isReq {
				b.val = a.val
				b.found = a.found
			}
			return b
		})
	// Keep only the requests, route them back to their origins.
	reqs := items[:0]
	for _, it := range items {
		if it.isReq {
			reqs = append(reqs, it)
		}
	}
	sortSlice(v, "RAR", reqs, 1, func(a, b item) bool { return a.origin < b.origin })
	// Delivery sweep, with optional reply-fault injection: a dropped reply
	// is skipped, a duplicated reply lands a second time at another
	// request's origin.
	drop, dupSrc, dupDst := -1, -1, -1
	if inj := v.m.inj; inj != nil && len(reqs) > 0 {
		if d, ok := inj.DropReply(len(reqs)); ok && d >= 0 && d < len(reqs) {
			drop = d
		}
		if s, d, ok := inj.DuplicateReply(len(reqs)); ok &&
			s >= 0 && s < len(reqs) && d >= 0 && d < len(reqs) {
			dupSrc, dupDst = s, d
		}
	}
	for i, it := range reqs {
		if i == drop {
			continue
		}
		if expect != nil {
			auditDelivery(v, "RAR", expect, it.origin, it.val, it.found)
		}
		deliver(int(it.origin), it.val, it.found)
	}
	if dupSrc >= 0 {
		it, dst := reqs[dupSrc], reqs[dupDst]
		if expect != nil {
			auditDelivery(v, "RAR", expect, dst.origin, it.val, it.found)
		}
		deliver(int(dst.origin), it.val, it.found)
	}
	if expect != nil {
		auditAllDelivered(v, "RAR", expect)
	}
	Release(v.m, items)
	v.charge(OpRAR, 1)
}

// RAW is the combining random-access write, the dual of RAR: every
// processor may issue one keyed write, every processor may expose one keyed
// record cell, and each record cell receives the combination (under the
// associative, commutative combine) of all values written to its key.
// Record keys must be unique within the view. Cells nobody writes to are
// not delivered. Writes to keys with no record cell are dropped.
//
// Mesh realization charged here: sort the 2m-item bank by (key, record
// first); a reverse segmented copy-scan folds each key's writes together
// onto its record; sort the records back by origin. Cost: 1 double-sort +
// 1 double-scan + 1 single sort.
//
// In audit mode every record delivery is cross-checked against a host-side
// fold of the pristine write set, mirroring RAR's oracle.
func RAW[K cmp.Ordered, V any](v View,
	record func(local int) (key K, ok bool),
	write func(local int) (key K, val V, ok bool),
	combine func(a, b V) V,
	deliver func(local int, combined V, any bool),
) {
	type item struct {
		key    K
		isRec  bool
		has    bool
		val    V
		origin int32
	}
	v = v.begin(OpRAW)
	m := v.Size()
	items := Checkout[item](v.m, 2*m)[:0]
	for i := 0; i < m; i++ {
		if k, ok := record(i); ok {
			items = append(items, item{key: k, isRec: true, origin: int32(i)})
		}
		if k, val, ok := write(i); ok {
			items = append(items, item{key: k, val: val, has: true, origin: int32(i)})
		}
	}
	// Audit oracle: each record origin expects the right-fold of all writes
	// to its key in collection order — exactly what the reverse copy-scan
	// computes on the stably sorted bank.
	var expect map[int32]*rarExpect[V]
	if v.m.audit {
		writes := make(map[K][]V, len(items))
		for _, it := range items {
			if !it.isRec {
				writes[it.key] = append(writes[it.key], it.val)
			}
		}
		expect = make(map[int32]*rarExpect[V], len(items))
		for _, it := range items {
			if it.isRec {
				e := &rarExpect[V]{}
				if ws := writes[it.key]; len(ws) > 0 {
					acc := ws[len(ws)-1]
					for i := len(ws) - 2; i >= 0; i-- {
						acc = combine(ws[i], acc)
					}
					e.val, e.found = acc, true
				}
				expect[it.origin] = e
			}
		}
	}
	sortSlice(v, "RAW", items, 2, func(a, b item) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.isRec && !b.isRec
	})
	// Reverse scan: fold write values toward the record at the front of
	// each key segment.
	scanSliceRev(v, "RAW", items, 2,
		func(i int) bool { return i == len(items)-1 || items[i].key != items[i+1].key },
		func(a, b item) item {
			if a.has {
				if b.has {
					b.val = combine(b.val, a.val)
				} else {
					b.val = a.val
					b.has = true
				}
			}
			return b
		})
	recs := items[:0]
	for _, it := range items {
		if it.isRec {
			recs = append(recs, it)
		}
	}
	sortSlice(v, "RAW", recs, 1, func(a, b item) bool { return a.origin < b.origin })
	for _, it := range recs {
		if expect != nil {
			auditDelivery(v, "RAW", expect, it.origin, it.val, it.has)
		}
		deliver(int(it.origin), it.val, it.has)
	}
	if expect != nil {
		auditAllDelivered(v, "RAW", expect)
	}
	Release(v.m, items)
	v.charge(OpRAW, 1)
}

// scanSliceRev mirrors scanSlice in reverse index order, including the
// fault-injection consult and the audit-mode prefix-identity check (which,
// like scanSlice's, also pins the untouched head cells and the last record
// to their input values).
func scanSliceRev[T any](v View, opName string, xs []T, perProc int, head func(i int) bool, op func(a, b T) T) {
	if perProc < 1 {
		perProc = 1
	}
	if len(xs) > perProc*v.Size() {
		panic("mesh: scanSliceRev overflow")
	}
	var in []T
	if v.m.audit && len(xs) > 0 {
		in = append(in, xs...)
	}
	for i := len(xs) - 2; i >= 0; i-- {
		if !head(i) {
			xs[i] = op(xs[i+1], xs[i])
		}
	}
	corruptSlice(v, opName, xs)
	if in != nil {
		for i := len(xs) - 1; i >= 0; i-- {
			var want T
			if i == len(xs)-1 || head(i) {
				want = in[i]
			} else {
				want = op(xs[i+1], in[i])
			}
			if !reflect.DeepEqual(xs[i], want) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     opName,
					Detail: fmt.Sprintf("prefix identity broken at record %d of %d", i, len(xs)),
				})
			}
		}
	}
	v.charge(OpScan, int64(perProc)*v.scanCost())
}

// Route moves selected records of r to computed destination local indices.
// Destinations must be distinct (panic otherwise: a routing collision is a
// program bug in the calling algorithm — the paper's routings are always
// collision-free by construction). Source cells of moved records that do
// not themselves receive a record are set to clear. Cost: one sort.
func Route[T any](v View, r *Reg[T], clear T, sel func(local int, val T) (dest int, ok bool)) {
	v = v.begin(OpRoute)
	cleared := Checkout[int32](v.m, v.Size())[:0]
	moves := collectMoves(v, func(i int) T { return r.data[v.Global(i)] },
		func(i int, val T) (int, bool) {
			d, ok := sel(i, val)
			if ok {
				cleared = append(cleared, int32(i))
			}
			return d, ok
		}, "Route")
	for _, i := range cleared {
		r.data[v.Global(int(i))] = clear
	}
	for _, mv := range moves {
		r.data[v.Global(int(mv.dest))] = mv.val
	}
	Release(v.m, cleared)
	Release(v.m, moves)
	v.charge(OpRoute, 1)
}

// Concentrate moves the records satisfying pred to local indices 0..k-1,
// preserving their order, sets every other cell to clear, and returns k.
// Cost: one sort (stable sort by the predicate).
//
// The concentration executes as a stable sort on the predicate through
// runSort — satisfying records before the rest, order preserved within each
// group — so the fault-injection and audit seams cover it like every other
// charged sort. The non-satisfying tail is overwritten with clear after the
// sort (and after the audit's reference comparison).
func Concentrate[T any](v View, r *Reg[T], clearVal T, pred func(T) bool) int {
	v = v.begin(OpConcentrate)
	xs := gatherScratch(v, r)
	k := 0
	for _, x := range xs {
		if pred(x) {
			k++
		}
	}
	runSort(v, "Concentrate", xs, func(a, b T) bool { return pred(a) && !pred(b) })
	for i := k; i < len(xs); i++ {
		xs[i] = clearVal
	}
	scatter(v, r, xs)
	Release(v.m, xs)
	v.charge(OpConcentrate, v.rowMajorSortCost())
	return k
}

// BroadcastBlock writes block into local indices 0..len(block)-1 of every
// listed sub-view of parent. On the machine this is the pipelined submesh
// replication sweep: the block travels across the top row of submeshes and
// down every submesh column, words pipelined, in ≤ 2·(rows+cols) steps of
// the parent. block must fit in each sub-view.
//
// Fault model: one replicated cell misses the sweep and latches its
// pre-sweep word (the injector's CorruptCell over the len(subs)·len(block)
// written cells, src selecting the stale word, dst the cell that keeps it).
// Audit mode verifies every written cell against the block.
func BroadcastBlock[T any](parent View, r *Reg[T], block []T, subs []View) {
	parent = parent.begin(OpBroadcast)
	for _, s := range subs {
		if len(block) > s.Size() {
			panic("mesh: BroadcastBlock block larger than sub-view")
		}
	}
	written := len(subs) * len(block)
	cellOf := func(flat int) (View, int) { return subs[flat/len(block)], flat % len(block) }
	var stale T
	staleAt := -1
	if inj := parent.m.inj; inj != nil && written > 0 {
		if s, d, ok := inj.CorruptCell("BroadcastBlock", written); ok &&
			s != d && s >= 0 && d >= 0 && s < written && d < written {
			sv, si := cellOf(s)
			stale, staleAt = r.data[sv.Global(si)], d
		}
	}
	for _, s := range subs {
		for i, x := range block {
			r.data[s.Global(i)] = x
		}
	}
	if staleAt >= 0 {
		dv, di := cellOf(staleAt)
		r.data[dv.Global(di)] = stale
	}
	if parent.m.audit {
		for f := 0; f < written; f++ {
			sv, si := cellOf(f)
			if !reflect.DeepEqual(r.data[sv.Global(si)], block[si]) {
				panic(&AuditError{
					Geom:   parent.m.geometry(),
					Op:     "BroadcastBlock",
					Detail: fmt.Sprintf("replicated cell %d of sub-view %d differs from the block", si, f/len(block)),
				})
			}
		}
	}
	parent.charge(OpBroadcast, int64(2*(parent.h+parent.w)))
}
