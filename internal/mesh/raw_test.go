package mesh

import (
	"testing"
	"testing/quick"
)

func TestRAWCombinesWrites(t *testing.T) {
	m := New(4)
	v := m.Root()
	// Record cells 0..3 expose keys 0..3; every processor i writes value
	// 1<<i to key i%4. Combined with OR, record k collects all i ≡ k (4).
	got := make(map[int]int)
	RAW(v,
		func(i int) (int32, bool) { return int32(i), i < 4 },
		func(i int) (int32, int, bool) { return int32(i % 4), 1 << i, true },
		func(a, b int) int { return a | b },
		func(i int, combined int, any bool) {
			if !any {
				t.Fatalf("record %d got nothing", i)
			}
			got[i] = combined
		})
	for k := 0; k < 4; k++ {
		want := 0
		for i := k; i < 16; i += 4 {
			want |= 1 << i
		}
		if got[k] != want {
			t.Fatalf("record %d combined %x want %x", k, got[k], want)
		}
	}
}

func TestRAWNoWriters(t *testing.T) {
	m := New(2)
	v := m.Root()
	RAW(v,
		func(i int) (int32, bool) { return int32(i), true },
		func(i int) (int32, int, bool) { return 0, 0, false },
		func(a, b int) int { return a + b },
		func(i int, combined int, any bool) {
			if any {
				t.Fatal("delivery without writers")
			}
		})
}

func TestRAWDroppedWrites(t *testing.T) {
	// Writes to keys with no record cell are dropped silently.
	m := New(2)
	v := m.Root()
	deliveries := 0
	RAW(v,
		func(i int) (int32, bool) { return 99, i == 0 },
		func(i int) (int32, int, bool) { return int32(i), i, true }, // keys 0..3, no record
		func(a, b int) int { return a + b },
		func(i int, combined int, any bool) {
			deliveries++
			if any {
				t.Fatal("record 99 should receive nothing")
			}
		})
	if deliveries != 1 {
		t.Fatalf("deliveries=%d", deliveries)
	}
}

// Property: RAW with + equals a reference map-based scatter-add.
func TestQuickRAWMatchesReference(t *testing.T) {
	m := New(4)
	v := m.Root()
	f := func(recMask uint16, keys [16]uint8, vals [16]int8) bool {
		ref := map[int32]int{}
		refAny := map[int32]bool{}
		for i := 0; i < 16; i++ {
			k := int32(keys[i] % 8)
			ref[k] += int(vals[i])
			refAny[k] = true
		}
		ok := true
		seen := 0
		RAW(v,
			func(i int) (int32, bool) { return int32(i % 8), recMask&(1<<i) != 0 && i < 8 },
			func(i int) (int32, int, bool) { return int32(keys[i] % 8), int(vals[i]), true },
			func(a, b int) int { return a + b },
			func(i int, combined int, any bool) {
				seen++
				k := int32(i % 8)
				if any != refAny[k] {
					ok = false
				}
				if any && combined != ref[k] {
					ok = false
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRAWCost(t *testing.T) {
	m := New(8)
	v := m.Root()
	RAW(v,
		func(i int) (int32, bool) { return int32(i), true },
		func(i int) (int32, int, bool) { return int32(i), i, true },
		func(a, b int) int { return a + b },
		func(i int, combined int, any bool) {})
	want := v.doubleSortCost() + 2*v.scanCost() + v.rowMajorSortCost() + 1
	if m.Steps() != want {
		t.Fatalf("RAW cost %d want %d", m.Steps(), want)
	}
}
