package mesh

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortRowMajor(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root().Sub(0, 0, 4, 4)
	xs := intsOnView(v, r, 10)
	Sort(v, r, func(a, b int) bool { return a < b })
	want := append([]int(nil), xs...)
	sort.Ints(want)
	got := Snapshot(v, r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestSortStability(t *testing.T) {
	m := New(4)
	type kv struct{ k, seq int }
	r := NewReg[kv](m)
	v := m.Root()
	for i := 0; i < v.Size(); i++ {
		Set(v, r, i, kv{k: i % 3, seq: i})
	}
	Sort(v, r, func(a, b kv) bool { return a.k < b.k })
	prev := kv{-1, -1}
	for i := 0; i < v.Size(); i++ {
		cur := At(v, r, i)
		if cur.k < prev.k || (cur.k == prev.k && cur.seq < prev.seq) {
			t.Fatalf("instability at %d: %+v after %+v", i, cur, prev)
		}
		prev = cur
	}
}

func TestSortSnakeOrder(t *testing.T) {
	m := New(4)
	r := NewReg[int](m)
	v := m.Root()
	intsOnView(v, r, 11)
	SortSnake(v, r, func(a, b int) bool { return a < b })
	// Read back in snake order; must be nondecreasing.
	prev := -1 << 30
	for row := 0; row < v.Rows(); row++ {
		for c := 0; c < v.Cols(); c++ {
			col := c
			if row%2 == 1 {
				col = v.Cols() - 1 - c
			}
			x := At(v, r, row*v.Cols()+col)
			if x < prev {
				t.Fatalf("snake order violated at row %d", row)
			}
			prev = x
		}
	}
}

func TestSortIsPermutation(t *testing.T) {
	m := New(8)
	r := NewReg[int](m)
	v := m.Root()
	xs := intsOnView(v, r, 12)
	Sort(v, r, func(a, b int) bool { return a < b })
	got := Snapshot(v, r)
	count := map[int]int{}
	for _, x := range xs {
		count[x]++
	}
	for _, x := range got {
		count[x]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("value %d count off by %d", k, c)
		}
	}
}

func TestSortCostFormulas(t *testing.T) {
	// Counted: (⌈log₂h⌉+1)(h+w) + w. Theoretical: 3·max(h,w) + w.
	m := New(16)
	r := NewReg[int](m)
	v := m.Root()
	intsOnView(v, r, 13)
	Sort(v, r, func(a, b int) bool { return a < b })
	want := int64((log2Ceil(16)+1)*(16+16) + 16)
	if m.Steps() != want {
		t.Fatalf("counted sort cost %d want %d", m.Steps(), want)
	}

	mt := New(16, WithCostModel(CostTheoretical))
	rt := NewReg[int](mt)
	vt := mt.Root()
	intsOnView(vt, rt, 13)
	Sort(vt, rt, func(a, b int) bool { return a < b })
	if mt.Steps() != int64(3*16+16) {
		t.Fatalf("theoretical sort cost %d", mt.Steps())
	}
}

// shearsortExact executes shearsort phase by phase with genuine odd-even
// transposition rounds, counting real steps. It validates that the analytic
// charge in sortCost is an upper bound on the machine's true behaviour and
// that the final state matches the functional Sort.
func shearsortExact(h, w int, xs []int) (out []int, steps int64) {
	grid := make([][]int, h)
	for r := range grid {
		grid[r] = append([]int(nil), xs[r*w:(r+1)*w]...)
	}
	oddEvenRow := func(row []int, rev bool) int64 {
		var s int64
		for round := 0; round < len(row); round++ {
			start := round % 2
			for i := start; i+1 < len(row); i += 2 {
				a, b := row[i], row[i+1]
				if (!rev && a > b) || (rev && a < b) {
					row[i], row[i+1] = b, a
				}
			}
			s++
		}
		return s
	}
	phases := log2Ceil(h) + 1
	for p := 0; p < phases; p++ {
		var rowSteps int64
		for r := 0; r < h; r++ {
			s := oddEvenRow(grid[r], r%2 == 1)
			if s > rowSteps {
				rowSteps = s
			}
		}
		steps += rowSteps
		if p == phases-1 {
			break
		}
		col := make([]int, h)
		var colSteps int64
		for c := 0; c < w; c++ {
			for r := 0; r < h; r++ {
				col[r] = grid[r][c]
			}
			s := oddEvenRow(col, false)
			if s > colSteps {
				colSteps = s
			}
			for r := 0; r < h; r++ {
				grid[r][c] = col[r]
			}
		}
		steps += colSteps
	}
	out = make([]int, 0, h*w)
	for r := 0; r < h; r++ {
		if r%2 == 0 {
			out = append(out, grid[r]...)
		} else {
			for c := w - 1; c >= 0; c-- {
				out = append(out, grid[r][c])
			}
		}
	}
	return out, steps
}

func TestShearsortReferenceSortsAndMatchesCharge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, side := range []int{2, 4, 8, 16} {
		xs := make([]int, side*side)
		for i := range xs {
			xs[i] = rng.Intn(100)
		}
		out, steps := shearsortExact(side, side, xs)
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				t.Fatalf("side %d: reference shearsort failed at %d", side, i)
			}
		}
		m := New(side)
		charge := m.Root().sortCost()
		if steps > charge {
			t.Fatalf("side %d: real steps %d exceed charge %d", side, steps, charge)
		}
		// The charge should be tight within a small constant.
		if charge > 2*steps+int64(4*side) {
			t.Fatalf("side %d: charge %d loose vs real %d", side, charge, steps)
		}
	}
}

// Property: shearsort reference output equals a plain sort for arbitrary
// inputs — the functional Sort and the machine agree.
func TestQuickShearsortEqualsSort(t *testing.T) {
	f := func(raw [16]uint8) bool {
		xs := make([]int, 16)
		for i, x := range raw {
			xs[i] = int(x)
		}
		out, _ := shearsortExact(4, 4, xs)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortScratchPanicsOnOverflow(t *testing.T) {
	m := New(2)
	v := m.Root()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortScratch(v, make([]int, 9), 2, func(a, b int) bool { return a < b })
}
