// Package mesh simulates a √n×√n mesh-connected computer with exact
// parallel-step accounting.
//
// The machine model follows the SPAA'91 multisearch paper: n processors in a
// square grid, each with O(1) registers, each able to exchange O(1) words
// with its four grid neighbours per time step. The simulator is functional
// at the operation level and exact at the step level: every standard mesh
// operation (rotation, scan, sort, random-access read/write, concentration,
// segmented broadcast) computes the machine state an actual mesh program
// would produce, and charges the number of parallel steps the textbook mesh
// implementation of that operation takes.
//
// Operations executed "independently and in parallel" on disjoint submeshes
// (the paper's recurring phrase) are expressed through View values and
// RunParallel, which executes the bodies concurrently on real goroutines and
// charges the maximum cost across submeshes, exactly as wall-clock time on a
// physical mesh would behave.
//
// Two cost models are provided. CostCounted (the default) charges shearsort
// its true (⌈log₂ rows⌉+1)·(rows+cols) steps, so measured totals carry the
// well-known log factor of the simple sorter. CostTheoretical charges the
// 3·side steps of the optimal mesh sorters (Schnorr–Shamir, Thompson–Kung)
// that the paper's "standard mesh operations" presuppose. See DESIGN.md §3.
package mesh

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
)

// CostModel selects how compound operations (sorting in particular) are
// charged. See the package comment.
type CostModel int

const (
	// CostCounted charges shearsort its real phase-by-phase step count.
	CostCounted CostModel = iota
	// CostTheoretical charges sorting the 3·side steps of the optimal
	// O(√n)-time mesh sorters assumed by the paper.
	CostTheoretical
)

func (c CostModel) String() string {
	switch c {
	case CostCounted:
		return "counted"
	case CostTheoretical:
		return "theoretical"
	default:
		return fmt.Sprintf("CostModel(%d)", int(c))
	}
}

// Mesh is a Side×Side mesh-connected computer. The zero value is not usable;
// call New.
type Mesh struct {
	side  int
	n     int
	model CostModel

	root sink

	// parallelism limits concurrent submesh bodies in RunParallel.
	sem chan struct{}

	// pools is the scratch-buffer arena: one free list per element type
	// (see arena.go).
	pools sync.Map

	// Run control (see errors.go). budget 0 means unlimited; done is the
	// Done channel of the context installed with WithContext (nil when the
	// mesh is not cancellable); inj and audit are the fault-injection and
	// audit-mode hooks (see inject.go).
	budget int64
	done   <-chan struct{}
	ctx    context.Context
	inj    Injector
	audit  bool
	tracer Tracer
}

// sink accumulates parallel steps and their per-operation breakdown. Each
// goroutine executing a submesh body owns its sink exclusively; no locking
// is needed. parent and base link a submesh sink back to the chain that
// spawned it: base is the parallel time already elapsed on that chain when
// the sink started, so base+steps is the exact critical-chain clock at any
// moment — what the budget guard compares against. Ancestor sinks are only
// written while their goroutine is blocked waiting on this one, so reading
// up the chain is race-free.
type sink struct {
	steps  int64
	prof   Profile
	parent *sink
	base   int64

	// tc collects tracing spans for this chain (nil when tracing is off).
	// It follows the same ownership discipline as the step fields: one
	// goroutine at a time, forked and merged at the parallel boundaries.
	tc TraceContext
}

// Option configures a Mesh.
type Option func(*Mesh)

// WithCostModel selects the cost model (default CostCounted).
func WithCostModel(m CostModel) Option {
	return func(ms *Mesh) { ms.model = m }
}

// WithParallelism bounds the number of goroutines used for concurrent
// submesh execution (default runtime.GOMAXPROCS(0)).
func WithParallelism(p int) Option {
	return func(ms *Mesh) {
		if p < 1 {
			p = 1
		}
		ms.sem = make(chan struct{}, p)
	}
}

// WithBudget installs a step budget: as soon as the simulated parallel time
// of any run passes steps, the in-flight operation aborts by panicking with
// a *BudgetExceededError carrying the per-op Profile breakdown of the
// critical chain. The panic is contained by core.Run / bench.SafeRun.
// Callers set the budget to a configured multiple of a run's theoretical
// bound (e.g. c·√n for a Theorem 2 experiment), turning the paper's bounds
// into an enforced runtime contract. steps ≤ 0 means unlimited.
func WithBudget(steps int64) Option {
	return func(ms *Mesh) {
		if steps < 0 {
			steps = 0
		}
		ms.budget = steps
	}
}

// WithContext makes every mesh operation on this machine cancellable: once
// ctx is done, the next charge aborts the run by panicking with a
// *CanceledError (contained by core.Run / bench.SafeRun). The check is one
// non-blocking channel poll per charged operation — not per processor — so
// the hot path is unaffected.
func WithContext(ctx context.Context) Option {
	return func(ms *Mesh) {
		if ctx == nil {
			return
		}
		ms.ctx = ctx
		ms.done = ctx.Done()
	}
}

// WithInjector installs a fault injector (see inject.go). nil (the default)
// disables injection at the cost of one pointer check per operation.
func WithInjector(inj Injector) Option {
	return func(ms *Mesh) { ms.inj = inj }
}

// WithAudit enables audit mode: every sort is verified against a reference
// stable sort, every scan against the prefix identity, and every RAR/RAW
// delivery against a host-side oracle. A violation panics with a typed
// *AuditError (contained by core.Run / bench.SafeRun). Audit checks only
// observe — they charge no steps and never alter machine state — so audited
// runs produce byte-identical step tables; they do allocate, so audit mode
// is for verification runs, not benchmarks.
func WithAudit() Option {
	return func(ms *Mesh) { ms.audit = true }
}

// SetAudit toggles audit mode (see WithAudit) on a quiescent mesh. It is
// the recovery ladder's escalation seam: a serving layer re-executes a
// failed round with auditing forced on without rebuilding the mesh (and the
// registers resident on it). The caller must guarantee no operation is in
// flight — call it between runs, from the goroutine that issues the mesh's
// operations; submesh goroutines spawned afterwards observe the new value
// through RunParallel's happens-before edge.
func (m *Mesh) SetAudit(on bool) { m.audit = on }

// Audit reports whether audit mode is currently enabled.
func (m *Mesh) Audit() bool { return m.audit }

// SetBudget replaces the step budget (see WithBudget) on a quiescent mesh,
// under the same caller contract as SetAudit. It exists so a serving layer
// multiplexing several resident structures can give each query family its
// own per-round budget — the budget clock still resets with ResetSteps, so
// the new value governs whole rounds, never a round in flight. steps ≤ 0
// means unlimited.
func (m *Mesh) SetBudget(steps int64) {
	if steps < 0 {
		steps = 0
	}
	m.budget = steps
}

// Budget reports the current step budget (0 = unlimited).
func (m *Mesh) Budget() int64 { return m.budget }

// SetInjector installs (or, with nil, removes) the fault injector on a
// quiescent mesh, under the same caller contract as SetAudit. It exists so a
// serving layer can build its resident data structure fault-free — a fault
// injected during host-side setup would surface outside any containment
// boundary — and begin chaos only once serving rounds start.
func (m *Mesh) SetInjector(inj Injector) { m.inj = inj }

// New creates a side×side mesh. side must be a positive power of two: the
// recursive submesh partitionings of the multisearch algorithms require
// every grid refinement to divide evenly.
func New(side int, opts ...Option) *Mesh {
	if side <= 0 || side&(side-1) != 0 {
		panic(fmt.Sprintf("mesh: side must be a positive power of two, got %d", side))
	}
	m := &Mesh{side: side, n: side * side}
	for _, o := range opts {
		o(m)
	}
	if m.sem == nil {
		m.sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	if m.tracer != nil {
		m.root.tc = m.tracer.Attach(m.geometry())
	}
	return m
}

// Side returns the side length √n of the mesh.
func (m *Mesh) Side() int { return m.side }

// N returns the number of processors, Side².
func (m *Mesh) N() int { return m.n }

// Model returns the active cost model.
func (m *Mesh) Model() CostModel { return m.model }

// Steps returns the accumulated simulated parallel time, in mesh steps.
func (m *Mesh) Steps() int64 { return m.root.steps }

// ResetSteps zeroes the step clock and its per-operation profile (registers
// are untouched). With a tracer installed it also starts a fresh traced run:
// spans recorded before the reset stay with the previous run's clock.
func (m *Mesh) ResetSteps() {
	m.root = sink{}
	if m.tracer != nil {
		m.root.tc = m.tracer.Attach(m.geometry())
	}
}

// Root returns the View covering the whole mesh.
func (m *Mesh) Root() View {
	return View{m: m, sink: &m.root, r0: 0, c0: 0, h: m.side, w: m.side}
}

// View is a rectangular region of the mesh on which operations execute.
// Local indices are row-major within the view: local index i corresponds to
// view coordinates (i/w, i%w). All standard operations charge their step
// cost to the view's cost sink.
type View struct {
	m    *Mesh
	sink *sink
	r0   int
	c0   int
	h, w int

	// attr, when nonzero, attributes every charge to OpClass(attr-1): a
	// compound operation (RAR, Concentrate, ...) sets it via begin so the
	// sorts and scans it is built from are charged to the compound op in
	// the profile. Zero means charges keep the class the primitive reports.
	attr int8
}

// Mesh returns the underlying machine.
func (v View) Mesh() *Mesh { return v.m }

// Rows returns the number of rows in the view.
func (v View) Rows() int { return v.h }

// Cols returns the number of columns in the view.
func (v View) Cols() int { return v.w }

// Size returns the number of processors in the view.
func (v View) Size() int { return v.h * v.w }

// Origin returns the global (row, col) of the view's top-left processor.
func (v View) Origin() (row, col int) { return v.r0, v.c0 }

// Global converts a local row-major index to the global row-major processor
// index. local must lie in [0, Size()): an out-of-range local index would
// silently address a processor outside the view — corrupting a neighbouring
// submesh — so it panics instead.
func (v View) Global(local int) int {
	if local < 0 || local >= v.h*v.w {
		panic(fmt.Sprintf("mesh: local index %d out of %dx%d view at origin (%d,%d)",
			local, v.h, v.w, v.r0, v.c0))
	}
	r, c := local/v.w, local%v.w
	return (v.r0+r)*v.m.side + (v.c0 + c)
}

// Local converts a global processor index to a local row-major index and
// reports whether the processor lies in the view.
func (v View) Local(global int) (int, bool) {
	r, c := global/v.m.side, global%v.m.side
	r -= v.r0
	c -= v.c0
	if r < 0 || r >= v.h || c < 0 || c >= v.w {
		return 0, false
	}
	return r*v.w + c, true
}

// Sub returns the sub-view at local offset (r0, c0) with h rows and w cols.
func (v View) Sub(r0, c0, h, w int) View {
	if r0 < 0 || c0 < 0 || r0+h > v.h || c0+w > v.w || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("mesh: Sub(%d,%d,%d,%d) out of %dx%d view", r0, c0, h, w, v.h, v.w))
	}
	return View{m: v.m, sink: v.sink, r0: v.r0 + r0, c0: v.c0 + c0, h: h, w: w}
}

// Partition splits the view into a gr×gc grid of equal sub-views, returned
// in row-major grid order. gr must divide Rows and gc must divide Cols.
func (v View) Partition(gr, gc int) []View {
	if gr <= 0 || gc <= 0 || v.h%gr != 0 || v.w%gc != 0 {
		panic(fmt.Sprintf("mesh: Partition(%d,%d) does not divide %dx%d view", gr, gc, v.h, v.w))
	}
	sh, sw := v.h/gr, v.w/gc
	subs := make([]View, 0, gr*gc)
	for r := 0; r < gr; r++ {
		for c := 0; c < gc; c++ {
			subs = append(subs, v.Sub(r*sh, c*sw, sh, sw))
		}
	}
	return subs
}

// charge adds steps to the view's cost sink, attributed to class c in the
// profile (or to the enclosing compound operation when attr is set).
func (v View) charge(c OpClass, steps int64) {
	if steps < 0 {
		panic("mesh: negative charge")
	}
	if v.attr != 0 {
		c = OpClass(v.attr - 1)
	}
	v.sink.steps += steps
	v.sink.prof.Ops[c].Steps += steps
	if v.m.budget > 0 || v.m.done != nil {
		v.checkRunControl()
	}
}

// elapsed is the exact simulated parallel time along the view's critical
// chain: the time already accumulated when its sink was spawned plus the
// sink's own clock.
func (v View) elapsed() int64 { return v.sink.base + v.sink.steps }

// chainProfile merges the per-op breakdowns up the sink chain, yielding the
// critical-chain decomposition of elapsed().
func (v View) chainProfile() Profile {
	p := v.sink.prof
	for s := v.sink.parent; s != nil; s = s.parent {
		p.add(&s.prof)
	}
	return p
}

// checkRunControl is the slow path of charge: abort the run if the step
// budget is exhausted or the installed context was canceled.
func (v View) checkRunControl() {
	m := v.m
	elapsed := v.elapsed()
	if m.budget > 0 && elapsed > m.budget {
		panic(&BudgetExceededError{
			Geom:    m.geometry(),
			Budget:  m.budget,
			Steps:   elapsed,
			Profile: v.chainProfile(),
		})
	}
	if m.done != nil {
		select {
		case <-m.done:
			panic(&CanceledError{Geom: m.geometry(), Steps: elapsed, Cause: m.ctx.Err()})
		default:
		}
	}
}

// begin records one executed operation of class c on the view's profile and
// returns a view whose subsequent charges are attributed to c. Inside an
// already-attributed view (a compound op invoking another op) it is a no-op:
// the outer operation keeps both the count and the steps.
func (v View) begin(c OpClass) View {
	if v.attr != 0 {
		return v
	}
	v.sink.prof.Ops[c].Count++
	v.attr = int8(c) + 1
	return v
}

// Charge adds an explicit step cost to the view's clock. It is exported for
// algorithm code that performs a locally-computed O(1) update on every
// processor (one parallel step). Profiled under OpLocal.
func (v View) Charge(steps int64) {
	v = v.begin(OpLocal)
	v.charge(OpLocal, steps)
}

// RunParallel executes body on each sub-view concurrently and charges the
// parent view the maximum cost incurred by any sub-view, which is the
// elapsed parallel time when disjoint submeshes run independently.
// The sub-views must be disjoint regions (not checked); bodies must only
// touch register cells inside their own sub-view.
func (v View) RunParallel(subs []View, body func(idx int, sub View)) {
	if len(subs) == 0 {
		return
	}
	sinks := make([]sink, len(subs))
	base := v.sink.base + v.sink.steps
	// Contain body panics: an unrecovered panic in a spawned goroutine kills
	// the whole process with no chance of recovery anywhere, so each body —
	// spawned or inline — runs behind a recover that captures the first
	// panic, lets every other submesh finish, and re-raises on the calling
	// goroutine where core.Run / bench.SafeRun can catch it.
	var (
		panicMu sync.Mutex
		caught  *PanicError
	)
	run := func(i int, sub View) {
		defer func() {
			if r := recover(); r != nil {
				pe, ok := r.(*PanicError)
				if !ok {
					pe = &PanicError{Geom: v.m.geometry(), Val: r, Stack: debug.Stack()}
				}
				panicMu.Lock()
				if caught == nil {
					caught = pe
				}
				panicMu.Unlock()
			}
		}()
		body(i, sub)
	}
	var wg sync.WaitGroup
	for i := range subs {
		sub := subs[i]
		sub.sink = &sinks[i]
		sinks[i].parent = v.sink
		sinks[i].base = base
		if v.sink.tc != nil {
			sinks[i].tc = v.sink.tc.Fork()
		}
		// Spawn if a worker slot is free; otherwise run inline. Running
		// inline keeps nested RunParallel calls deadlock-free: a body that
		// itself fans out never waits on slots held by blocked ancestors.
		select {
		case v.m.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, sub View) {
				defer func() {
					<-v.m.sem
					wg.Done()
				}()
				run(i, sub)
			}(i, sub)
		default:
			run(i, sub)
		}
	}
	wg.Wait()
	// Charge the parent the elapsed parallel time: the cost of the most
	// expensive submesh. Its profile is the critical-path breakdown and is
	// merged wholesale, keeping the invariant that per-class step totals
	// sum to the step clock.
	maxIdx := 0
	for i := range sinks {
		if sinks[i].steps > sinks[maxIdx].steps {
			maxIdx = i
		}
	}
	v.sink.steps += sinks[maxIdx].steps
	v.sink.prof.add(&sinks[maxIdx].prof)
	// The span tree follows the step clock: only the critical-path child's
	// spans survive into the parent chain.
	if v.sink.tc != nil {
		v.sink.tc.Merge(sinks[maxIdx].tc)
	}
	if caught != nil {
		panic(caught)
	}
}

// RunSequential executes body on each sub-view one after another, charging
// the sum of their costs (the paper's "processing some pieces in sequence").
func (v View) RunSequential(subs []View, body func(idx int, sub View)) {
	for i := range subs {
		s := sink{parent: v.sink, base: v.sink.base + v.sink.steps}
		if v.sink.tc != nil {
			s.tc = v.sink.tc.Fork()
		}
		subs[i].sink = &s
		body(i, subs[i])
		v.sink.steps += s.steps
		v.sink.prof.add(&s.prof)
		if v.sink.tc != nil {
			v.sink.tc.Merge(s.tc)
		}
	}
}

// --- cost formulas -----------------------------------------------------

// log2Ceil returns ⌈log₂ x⌉ for x ≥ 1.
func log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// sortCost is the charge for sorting one record per processor within the
// view into snake order.
func (v View) sortCost() int64 {
	switch v.m.model {
	case CostTheoretical:
		// Schnorr–Shamir / Thompson–Kung class sorters: 3·side + o(side).
		s := v.h
		if v.w > s {
			s = v.w
		}
		return int64(3 * s)
	default:
		// Shearsort: ⌈log₂ rows⌉+1 phases; each phase sorts all rows by
		// odd-even transposition (w steps) and all columns (h steps).
		phases := int64(log2Ceil(v.h) + 1)
		return phases * int64(v.h+v.w)
	}
}

// rowMajorSortCost adds the odd-row reversal that converts snake order to
// row-major order.
func (v View) rowMajorSortCost() int64 { return v.sortCost() + int64(v.w) }

// scanCost is the charge for a prefix scan in row-major order: scan each
// row, scan the column of row totals, then add offsets back across rows.
func (v View) scanCost() int64 { return int64(2*v.w + 2*v.h) }

// broadcastCost is the charge for one processor's value reaching all others
// (a row sweep then a column sweep).
func (v View) broadcastCost() int64 { return int64(v.h + v.w) }

// reduceCost mirrors broadcastCost in the opposite direction.
func (v View) reduceCost() int64 { return int64(v.h + v.w) }
