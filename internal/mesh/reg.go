package mesh

import (
	"fmt"
	"reflect"
)

// Reg is one named machine register: every processor holds exactly one value
// of type T. Algorithms allocate a fixed, O(1) set of registers, matching
// the paper's "O(1) memory per processor" model; tests assert that no
// algorithm needs a per-processor register count that grows with n.
type Reg[T any] struct {
	m    *Mesh
	data []T
}

// NewReg allocates a register on m, zero-valued everywhere.
func NewReg[T any](m *Mesh) *Reg[T] {
	return &Reg[T]{m: m, data: make([]T, m.n)}
}

// At returns the value held by the view-local processor i.
func At[T any](v View, r *Reg[T], i int) T { return r.data[v.Global(i)] }

// Ref returns a pointer to the cell held by the view-local processor i, for
// in-place O(1) updates. Hot visit loops use it to mutate a record through a
// dynamic callback without the copy of the record escaping to the heap on
// every call.
func Ref[T any](v View, r *Reg[T], i int) *T { return &r.data[v.Global(i)] }

// Set stores val into the view-local processor i.
func Set[T any](v View, r *Reg[T], i int, val T) { r.data[v.Global(i)] = val }

// Fill stores val into every processor of the view. One parallel step.
//
// Fault model: like Broadcast, one cell misses the sweep and latches another
// cell's pre-fill word; audit mode verifies every cell equals val.
func Fill[T any](v View, r *Reg[T], val T) {
	v = v.begin(OpLocal)
	stale, staleAt := corruptStale(v, "Fill", r)
	n := v.Size()
	for i := 0; i < n; i++ {
		r.data[v.Global(i)] = val
	}
	if staleAt >= 0 {
		r.data[v.Global(staleAt)] = stale
	}
	if v.m.audit {
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(r.data[v.Global(i)], val) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     "Fill",
					Detail: fmt.Sprintf("cell %d of %d differs from the fill value", i, n),
				})
			}
		}
	}
	v.charge(OpLocal, 1)
}

// Apply runs a locally-computed O(1) update on every processor of the view.
// One parallel step.
//
// Fault model: one cell latches a neighbour's updated word during the
// write-back sweep. Audit mode snapshots the honest output and compares
// cell-by-cell after the seam — it never re-runs f, so impure update
// functions stay single-shot.
func Apply[T any](v View, r *Reg[T], f func(local int, cur T) T) {
	v = v.begin(OpLocal)
	n := v.Size()
	for i := 0; i < n; i++ {
		g := v.Global(i)
		r.data[g] = f(i, r.data[g])
	}
	auditWriteBack(v, "Apply", r)
}

// Apply2 runs a locally-computed O(1) update reading register a and updating
// register b on every processor of the view. One parallel step. Same fault
// model and audit as Apply, on register b.
func Apply2[A, B any](v View, a *Reg[A], b *Reg[B], f func(local int, av A, bv B) B) {
	v = v.begin(OpLocal)
	for i, n := 0, v.Size(); i < n; i++ {
		g := v.Global(i)
		b.data[g] = f(i, a.data[g], b.data[g])
	}
	auditWriteBack(v, "Apply2", b)
}

// auditWriteBack is the shared tail of Apply/Apply2: snapshot the honest
// output (audit mode only), run the write-back fault seam, verify nothing
// moved, and charge the one local step.
func auditWriteBack[T any](v View, op string, r *Reg[T]) {
	var want []T
	if v.m.audit {
		want = gather(v, r)
	}
	corruptReg(v, op, r)
	if want != nil {
		n := v.Size()
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(r.data[v.Global(i)], want[i]) {
				panic(&AuditError{
					Geom:   v.m.geometry(),
					Op:     op,
					Detail: fmt.Sprintf("cell %d of %d latched a foreign word during write-back", i, n),
				})
			}
		}
	}
	v.charge(OpLocal, 1)
}

// gatherInto copies the view's contents of r into out (which must have
// length Size()) in view-local row-major order.
func gatherInto[T any](v View, r *Reg[T], out []T) {
	if v.w == v.m.side && v.c0 == 0 {
		copy(out, r.data[v.r0*v.m.side:(v.r0+v.h)*v.m.side])
		return
	}
	for row := 0; row < v.h; row++ {
		base := (v.r0+row)*v.m.side + v.c0
		copy(out[row*v.w:(row+1)*v.w], r.data[base:base+v.w])
	}
}

// gather copies the view's contents of r into a fresh slice in view-local
// row-major order. Simulation bookkeeping; carries no step charge itself.
func gather[T any](v View, r *Reg[T]) []T {
	out := make([]T, v.Size())
	gatherInto(v, r, out)
	return out
}

// gatherScratch is gather into a pooled arena buffer; the caller must hand
// the buffer back with Release when the operation is done.
func gatherScratch[T any](v View, r *Reg[T]) []T {
	out := Checkout[T](v.m, v.Size())
	gatherInto(v, r, out)
	return out
}

// scatter writes xs (view-local row-major) back into the view's cells of r.
func scatter[T any](v View, r *Reg[T], xs []T) {
	if len(xs) != v.Size() {
		panic("mesh: scatter length mismatch")
	}
	if v.w == v.m.side && v.c0 == 0 {
		copy(r.data[v.r0*v.m.side:(v.r0+v.h)*v.m.side], xs)
		return
	}
	for row := 0; row < v.h; row++ {
		base := (v.r0+row)*v.m.side + v.c0
		copy(r.data[base:base+v.w], xs[row*v.w:(row+1)*v.w])
	}
}

// Snapshot returns a copy of the view's contents of r in view-local
// row-major order, for inspection by tests and harness code (no charge).
func Snapshot[T any](v View, r *Reg[T]) []T { return gather(v, r) }

// Load writes xs into the view starting at local index 0 in row-major
// order, for test and harness initialization (no charge). Cells past
// len(xs) are untouched.
func Load[T any](v View, r *Reg[T], xs []T) {
	if len(xs) > v.Size() {
		panic("mesh: Load overflow")
	}
	for i, x := range xs {
		r.data[v.Global(i)] = x
	}
}
