package serve

import "repro/internal/obs"

// The fixed-boundary latency histogram moved to internal/obs in PR 8 — the
// observability layer exposes it in Prometheus text format and must not
// import serve — but it remains part of this package's API surface: the
// fleet, the load generator, and the serving hot path all speak
// serve.Histogram. Aliases keep every call site source-compatible.

// Histogram is the zero-alloc fixed-boundary latency histogram (see
// obs.Histogram for the bucket layout and error bound).
type Histogram = obs.Histogram

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot = obs.HistSnapshot

// LatencySummary is the JSON-facing percentile snapshot embedded in Stats.
type LatencySummary = obs.LatencySummary
