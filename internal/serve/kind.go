package serve

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/mesh"
	"repro/internal/pointloc"
	"repro/internal/polyhedron"
)

// Kind is a typed query family the serving stack can answer — the paper's
// Theorem 8 / §5–6 applications, each backed by its own resident structure
// on the shared mesh (DESIGN.md §3.10).
type Kind uint8

const (
	// KindMembership is dictionary membership over the (a,b)-tree (§4.5).
	KindMembership Kind = iota
	// KindPointLoc is planar point location over the Kirkpatrick DAG (§5).
	KindPointLoc
	// KindInterval is interval intersection counting over the rank trees
	// (Theorem 8.4's interval-stabbing family).
	KindInterval
	// KindLinePoly is vertical line–polyhedron intersection over the
	// xy-shadow wedge tree (Theorem 8.1).
	KindLinePoly
	// KindTangent is tangent-plane determination over the Dobkin–Kirkpatrick
	// hierarchy (Theorem 8.3).
	KindTangent
	// NumKinds bounds the registry.
	NumKinds
)

var kindNames = [NumKinds]string{"membership", "pointloc", "interval", "linepoly", "tangent"}

// String returns the canonical kind name used in URLs, metrics and traces.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindNames lists the canonical kind names in Kind order (obs class labels,
// metric label values).
func KindNames() []string { return append([]string(nil), kindNames[:]...) }

// MarshalJSON encodes the kind as its canonical name, keeping the HTTP
// Result wire format self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts a kind name (or legacy numeric value).
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	parsed, err := ParseKind(s)
	if err != nil {
		var n uint8
		if _, serr := fmt.Sscanf(s, "%d", &n); serr == nil && Kind(n) < NumKinds {
			*k = Kind(n)
			return nil
		}
		return err
	}
	*k = parsed
	return nil
}

// ParseKind resolves a kind name (canonical or a common alias). The empty
// string is membership, keeping pre-kind clients working unchanged.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "membership", "member", "dict":
		return KindMembership, nil
	case "pointloc", "point-location", "pointlocation":
		return KindPointLoc, nil
	case "interval", "interval-stab", "intervalstab":
		return KindInterval, nil
	case "linepoly", "line-poly", "line-polyhedron", "linestab":
		return KindLinePoly, nil
	case "tangent", "tangent-plane", "tangentplane":
		return KindTangent, nil
	}
	return 0, fmt.Errorf("serve: unknown query kind %q", s)
}

// Args is one query's arguments, interpreted per kind:
//
//	membership: [needle, -, -]
//	pointloc:   [x, y, -]
//	interval:   [lo, hi, -]
//	linepoly:   [x, y, -]
//	tangent:    [dx, dy, dz]
type Args [3]int64

// Answer is one query's kind-generic result: Value is the primary answer
// (leaf key, triangle index, intersection count, wedge index, extreme
// vertex index), Aux a secondary one (the tangent plane offset d·v), Found
// the family's hit bit, and Steps the search-path length.
type Answer struct {
	Value int64
	Aux   int64
	Found bool
	Steps int32
}

// Structure is one resident query family: the built graph, the successor
// that drives its on-line search, the multisearch algorithm that serves a
// round of it, and the query/answer marshalling around a batch. Every
// method except Search is host-side and read-only after construction.
type Structure interface {
	Kind() Kind
	// Graph exposes the built structure (host descents, fit checks).
	Graph() *graph.Graph
	// Successor is the on-line search function of §2 for this family.
	Successor() core.Successor
	// PerRequest is how many mesh queries one request expands to
	// (interval counting issues two rank descents per request).
	PerRequest() int
	// MakeQueries expands a batch of requests into start-configured queries.
	MakeQueries(args []Args) []core.Query
	// Extract collapses request i's PerRequest finished queries into its
	// answer.
	Extract(qs []core.Query, i int) Answer
	// Search runs one multisearch round over the already-reset queries.
	Search(v mesh.View, in *core.Instance)
	// ArgsFor maps an arbitrary int64 draw onto valid arguments for this
	// family — the load generator's seam, deterministic in the draw.
	ArgsFor(needle int64) Args
	// Canary is a small probe set spanning the family's domain.
	Canary() []Args
}

// HostAnswer answers one request sequentially on the host by descending the
// structure's graph with its own successor — the degrade rung's oracle.
// Identical descent, identical Value/Found/Steps as a faithful mesh round;
// correct, but unaccounted in simulated mesh steps.
func HostAnswer(st Structure, a Args) Answer {
	qs := st.MakeQueries([]Args{a})
	g := st.Graph()
	f := st.Successor()
	for i := range qs {
		q := &qs[i]
		for !q.Done {
			core.Visit(f, g.Verts[q.Cur], q)
		}
	}
	return st.Extract(qs, 0)
}

// StructureSet is the kind registry of one instance: the structures
// resident on its mesh, indexed by Kind.
type StructureSet struct {
	byKind [NumKinds]Structure
	kinds  []Kind
}

// Get returns the structure serving kind k, or nil if the kind is not
// enabled on this instance.
func (ss *StructureSet) Get(k Kind) Structure {
	if ss == nil || k >= NumKinds {
		return nil
	}
	return ss.byKind[k]
}

// Kinds lists the enabled kinds in registry order.
func (ss *StructureSet) Kinds() []Kind { return append([]Kind(nil), ss.kinds...) }

// Membership returns the resident dictionary (always enabled).
func (ss *StructureSet) Membership() *dict.BTree {
	return ss.byKind[KindMembership].(*membershipStructure).bt
}

// BuildStructures builds the resident structures for the requested kinds,
// deterministically from (side, keys): the same inputs always produce the
// same structures, so a remote load generator can rebuild the set host-side
// for oracle checking. Membership is always included; every other kind's
// synthetic input is sized to fit the mesh (and shrunk until it does).
func BuildStructures(side int, keys []int64, a, b int, kinds []Kind) (*StructureSet, error) {
	n := side * side
	bt := dict.New(keys, a, b)
	if bt.G.N() > n {
		return nil, fmt.Errorf("serve: (%d,%d)-tree over %d keys needs %d processors, mesh has %d",
			a, b, len(keys), bt.G.N(), n)
	}
	ss := &StructureSet{}
	ss.byKind[KindMembership] = newMembershipStructure(bt)
	ss.kinds = []Kind{KindMembership}
	want := [NumKinds]bool{}
	for _, k := range kinds {
		if k < NumKinds {
			want[k] = true
		}
	}
	for k := Kind(0); k < NumKinds; k++ {
		if !want[k] || ss.byKind[k] != nil {
			continue
		}
		st, err := buildKind(k, side, n, len(keys))
		if err != nil {
			return nil, fmt.Errorf("serve: building %s structure: %w", k, err)
		}
		ss.byKind[k] = st
		ss.kinds = append(ss.kinds, k)
	}
	return ss, nil
}

func buildKind(k Kind, side, n, numKeys int) (Structure, error) {
	switch k {
	case KindPointLoc:
		return buildPointLoc(side, n)
	case KindInterval:
		return buildInterval(n, numKeys)
	case KindLinePoly, KindTangent:
		return buildHullKind(k, side, n)
	}
	return nil, fmt.Errorf("unknown kind %d", k)
}

// mix is splitmix64: the deterministic draw → argument expansion shared by
// ArgsFor implementations and the synthetic structure inputs.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixRange maps draw x onto [lo, hi] (inclusive), deterministically.
func mixRange(x uint64, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + int64(mix(x)%span)
}

// ---------------------------------------------------------------- membership

type membershipStructure struct {
	bt      *dict.BTree
	maxPart int
}

func newMembershipStructure(bt *dict.BTree) *membershipStructure {
	return &membershipStructure{bt: bt, maxPart: bt.InstallSplitter()}
}

func (s *membershipStructure) Kind() Kind                 { return KindMembership }
func (s *membershipStructure) Graph() *graph.Graph        { return s.bt.G }
func (s *membershipStructure) Successor() core.Successor  { return dict.Successor }
func (s *membershipStructure) PerRequest() int            { return 1 }
func (s *membershipStructure) ArgsFor(needle int64) Args  { return Args{needle} }

func (s *membershipStructure) MakeQueries(args []Args) []core.Query {
	needles := make([]int64, len(args))
	for i, a := range args {
		needles[i] = a[0]
	}
	return s.bt.NewQueries(needles)
}

func (s *membershipStructure) Extract(qs []core.Query, i int) Answer {
	q := qs[i]
	return Answer{Value: q.State[dict.StateLeafKey], Found: dict.Member(q), Steps: q.Steps}
}

func (s *membershipStructure) Search(v mesh.View, in *core.Instance) {
	core.MultisearchAlpha(v, in, s.maxPart, 0)
}

func (s *membershipStructure) Canary() []Args {
	ks := s.bt.Keys
	probes := []int64{ks[0], ks[len(ks)/2], ks[len(ks)-1], ks[0] - 1, ks[len(ks)-1] + 1, ks[len(ks)/2] + 1}
	out := make([]Args, len(probes))
	for i, k := range probes {
		out[i] = Args{k}
	}
	return out
}

// ------------------------------------------------------------------ pointloc

type pointlocStructure struct {
	h    *pointloc.Hierarchy
	plan *core.HDagPlan
	// Query domain: the input points' bounding box (always inside the
	// super-triangle).
	minX, maxX, minY, maxY int64
}

// buildPointLoc triangulates a deterministic synthetic point set sized to
// the mesh and builds the Kirkpatrick DAG; the set shrinks until the DAG
// fits. Seeds step on the rare degenerate set the coarsening rejects.
func buildPointLoc(side, n int) (Structure, error) {
	pts := 0
	for npts := max(8, n/16); npts >= 8; npts /= 2 {
		pts = npts
		for seed := uint64(1); seed <= 8; seed++ {
			in := make([]geom.Point2, npts)
			used := map[geom.Point2]bool{}
			for i := range in {
				for {
					p := geom.Point2{
						X: mixRange(mix(seed*1_000_003+uint64(i)*2), -1<<16, 1<<16),
						Y: mixRange(mix(seed*1_000_003+uint64(i)*2+1), -1<<16, 1<<16),
					}
					if !used[p] {
						used[p] = true
						in[i] = p
						break
					}
				}
			}
			h, err := pointloc.Build(in)
			if err != nil {
				continue
			}
			if h.Dag.Graph.N() > n {
				break // too big at this size: shrink
			}
			plan, err := core.PlanHDag(h.Dag, side)
			if err != nil {
				continue
			}
			st := &pointlocStructure{h: h, plan: plan}
			st.minX, st.maxX, st.minY, st.maxY = bbox2(in)
			return st, nil
		}
	}
	return nil, fmt.Errorf("no point set of ≤ %d points yields a DAG fitting %d processors", pts, n)
}

func bbox2(pts []geom.Point2) (minX, maxX, minY, maxY int64) {
	minX, maxX, minY, maxY = pts[0].X, pts[0].X, pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	return
}

func (s *pointlocStructure) Kind() Kind                { return KindPointLoc }
func (s *pointlocStructure) Graph() *graph.Graph       { return s.h.Dag.Graph }
func (s *pointlocStructure) Successor() core.Successor { return s.h.Successor() }
func (s *pointlocStructure) PerRequest() int           { return 1 }

func (s *pointlocStructure) ArgsFor(needle int64) Args {
	x := uint64(needle)
	return Args{mixRange(x*2+1, s.minX, s.maxX), mixRange(x*2+2, s.minY, s.maxY)}
}

func (s *pointlocStructure) MakeQueries(args []Args) []core.Query {
	points := make([]geom.Point2, len(args))
	for i, a := range args {
		points[i] = geom.Point2{X: a[0], Y: a[1]}
	}
	return s.h.NewQueries(points)
}

func (s *pointlocStructure) Extract(qs []core.Query, i int) Answer {
	q := qs[i]
	return Answer{Value: int64(pointloc.Answer(q)), Found: pointloc.Answer(q) >= 0, Steps: q.Steps}
}

func (s *pointlocStructure) Search(v mesh.View, in *core.Instance) {
	core.MultisearchHDag(v, in, s.plan)
}

func (s *pointlocStructure) Canary() []Args {
	cx, cy := (s.minX+s.maxX)/2, (s.minY+s.maxY)/2
	return []Args{
		{s.minX, s.minY}, {s.maxX, s.minY}, {s.minX, s.maxY}, {s.maxX, s.maxY}, {cx, cy},
	}
}

// ------------------------------------------------------------------ interval

type intervalStructure struct {
	ct      *interval.CountTree
	maxPart int
	// Query domain: the endpoint value range.
	lo, hi int64
}

// buildInterval builds the two-rank-tree counting structure over a
// deterministic synthetic interval set sized to fit the mesh. The endpoint
// domain matches the membership needle domain [0, 2·keys) so one key draw
// parameterizes every kind.
func buildInterval(n, numKeys int) (Structure, error) {
	domain := int64(2 * numKeys)
	if domain < 16 {
		domain = 16
	}
	for num := max(4, n/16); num >= 2; num /= 2 {
		set := make([]interval.Interval, num)
		for i := range set {
			lo := mixRange(uint64(i)*2+101, 0, domain-1)
			length := mixRange(uint64(i)*2+102, 0, domain/4)
			set[i] = interval.Interval{Lo: lo, Hi: min(lo+length, domain-1)}
		}
		ct := interval.NewCountTree(set)
		if ct.NumVert > n {
			continue
		}
		return &intervalStructure{ct: ct, maxPart: ct.InstallSplitter(), lo: 0, hi: domain - 1}, nil
	}
	return nil, fmt.Errorf("no interval set fits %d processors", n)
}

func (s *intervalStructure) Kind() Kind                { return KindInterval }
func (s *intervalStructure) Graph() *graph.Graph       { return s.ct.G }
func (s *intervalStructure) Successor() core.Successor { return interval.CountSuccessor }
func (s *intervalStructure) PerRequest() int           { return 2 }

func (s *intervalStructure) ArgsFor(needle int64) Args {
	x := uint64(needle)
	a := mixRange(x*2+3, s.lo, s.hi)
	b := min(a+mixRange(x*2+4, 0, (s.hi-s.lo)/8), s.hi)
	return Args{a, b}
}

func (s *intervalStructure) MakeQueries(args []Args) []core.Query {
	ranges := make([][2]int64, len(args))
	for i, a := range args {
		ranges[i] = [2]int64{a[0], a[1]}
	}
	return s.ct.NewQueries(ranges)
}

func (s *intervalStructure) Extract(qs []core.Query, i int) Answer {
	count := s.ct.Counts(qs[2*i:2*i+2], 1)[0]
	return Answer{Value: count, Found: count > 0, Steps: qs[2*i].Steps + qs[2*i+1].Steps}
}

func (s *intervalStructure) Search(v mesh.View, in *core.Instance) {
	core.MultisearchAlpha(v, in, s.maxPart, 0)
}

func (s *intervalStructure) Canary() []Args {
	mid := (s.lo + s.hi) / 2
	return []Args{
		{s.lo, s.hi},           // everything
		{s.lo - 10, s.lo - 5},  // below the domain: empty
		{mid, mid},             // point stab
		{mid, s.hi},            // upper half
	}
}

// -------------------------------------------------- linepoly / tangent hull

// buildHullKind builds the shared convex polyhedron input (deterministic
// sphere points) and the requested structure over it: the DK hierarchy for
// tangent-plane queries, the xy-shadow wedge tree for line stabbing.
func buildHullKind(k Kind, side, n int) (Structure, error) {
	for npts := max(8, min(128, n/8)); npts >= 8; npts /= 2 {
		rng := rand.New(rand.NewSource(42))
		pts := geom.RandomSpherePoints(npts, 1<<16, rng)
		poly, err := geom.ConvexHull3D(pts)
		if err != nil {
			continue
		}
		if k == KindTangent {
			h, err := polyhedron.Build(poly)
			if err != nil {
				continue
			}
			if h.Dag.Graph.N() > n {
				continue
			}
			plan, err := core.PlanHDag(h.Dag, side)
			if err != nil {
				continue
			}
			return &tangentStructure{h: h, plan: plan}, nil
		}
		ls, err := polyhedron.NewLineStab(poly)
		if err != nil {
			continue
		}
		if ls.G.N() > n {
			continue
		}
		st := &linepolyStructure{ls: ls, maxPart: ls.InstallSplitter()}
		st.minX, st.maxX, st.minY, st.maxY = bbox2(ls.Hull)
		return st, nil
	}
	return nil, fmt.Errorf("no hull fits %d processors", n)
}

type linepolyStructure struct {
	ls      *polyhedron.LineStab
	maxPart int
	// Query domain: the shadow bounding box, padded so ~1/3 of draws miss.
	minX, maxX, minY, maxY int64
}

func (s *linepolyStructure) Kind() Kind                { return KindLinePoly }
func (s *linepolyStructure) Graph() *graph.Graph       { return s.ls.G }
func (s *linepolyStructure) Successor() core.Successor { return polyhedron.StabSuccessor }
func (s *linepolyStructure) PerRequest() int           { return 1 }

func (s *linepolyStructure) ArgsFor(needle int64) Args {
	x := uint64(needle)
	padX, padY := (s.maxX-s.minX)/4+1, (s.maxY-s.minY)/4+1
	return Args{
		mixRange(x*2+5, s.minX-padX, s.maxX+padX),
		mixRange(x*2+6, s.minY-padY, s.maxY+padY),
	}
}

func (s *linepolyStructure) MakeQueries(args []Args) []core.Query {
	points := make([]geom.Point2, len(args))
	for i, a := range args {
		points[i] = geom.Point2{X: a[0], Y: a[1]}
	}
	return s.ls.NewStabQueries(points)
}

func (s *linepolyStructure) Extract(qs []core.Query, i int) Answer {
	q := qs[i]
	return Answer{Value: polyhedron.StabSector(q), Found: polyhedron.Stabbed(q), Steps: q.Steps}
}

func (s *linepolyStructure) Search(v mesh.View, in *core.Instance) {
	core.MultisearchAlpha(v, in, s.maxPart, 0)
}

func (s *linepolyStructure) Canary() []Args {
	h := s.ls.Hull
	var cx, cy int64
	for _, p := range h {
		cx, cy = cx+p.X, cy+p.Y
	}
	cx, cy = cx/int64(len(h)), cy/int64(len(h))
	return []Args{
		{h[0].X, h[0].Y},                      // hull vertex: hit
		{cx, cy},                              // centroid: hit
		{s.maxX + (s.maxX - s.minX), cy},      // far outside: miss
		{s.minX - (s.maxX - s.minX), s.minY},  // far outside: miss
	}
}

type tangentStructure struct {
	h    *polyhedron.Hierarchy
	plan *core.HDagPlan
}

func (s *tangentStructure) Kind() Kind                { return KindTangent }
func (s *tangentStructure) Graph() *graph.Graph       { return s.h.Dag.Graph }
func (s *tangentStructure) Successor() core.Successor { return s.h.Successor() }
func (s *tangentStructure) PerRequest() int           { return 1 }

const tangentDirBound = 1 << 10

func (s *tangentStructure) ArgsFor(needle int64) Args {
	x := uint64(needle)
	a := Args{
		mixRange(x*3+7, -tangentDirBound, tangentDirBound),
		mixRange(x*3+8, -tangentDirBound, tangentDirBound),
		mixRange(x*3+9, -tangentDirBound, tangentDirBound),
	}
	if a[0] == 0 && a[1] == 0 && a[2] == 0 {
		a[2] = 1
	}
	return a
}

func (s *tangentStructure) MakeQueries(args []Args) []core.Query {
	dirs := make([]geom.Point3, len(args))
	for i, a := range args {
		dirs[i] = geom.Point3{X: a[0], Y: a[1], Z: a[2]}
	}
	return s.h.NewQueries(dirs)
}

func (s *tangentStructure) Extract(qs []core.Query, i int) Answer {
	q := qs[i]
	idx := polyhedron.Answer(q)
	if idx < 0 {
		return Answer{Value: -1, Steps: q.Steps}
	}
	d := geom.Point3{X: q.State[polyhedron.StateDX], Y: q.State[polyhedron.StateDY], Z: q.State[polyhedron.StateDZ]}
	return Answer{
		Value: int64(idx),
		Aux:   geom.Dot3(d, s.h.Poly.Pts[idx]),
		Found: idx >= 0,
		Steps: q.Steps,
	}
}

func (s *tangentStructure) Search(v mesh.View, in *core.Instance) {
	core.MultisearchHDag(v, in, s.plan)
}

func (s *tangentStructure) Canary() []Args {
	return []Args{
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
	}
}
