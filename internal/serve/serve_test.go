package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/trace"
)

// newTestServer builds a small server; the default dictionary (odd keys) is
// used so Contains gives a trivial oracle.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Side == 0 {
		cfg.Side = 8
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestLookupsMatchHostOracle fires concurrent clients at a server and checks
// every answer against the host-side binary search, with retry on overload —
// the end-to-end correctness contract of the serving path.
func TestLookupsMatchHostOracle(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 200 * time.Microsecond})
	const clients, perClient = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				needle := int64((c*perClient+i)%40 - 4) // hits, misses, out-of-range
				var res Result
				var err error
				for {
					res, err = s.Lookup(context.Background(), needle)
					if !errors.Is(err, ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					errs <- err
					return
				}
				if want := s.Tree().Contains(needle); res.Found != want {
					errs <- errors.New("wrong membership answer")
					return
				}
				if res.Found && res.LeafKey != needle {
					errs <- errors.New("found needle but leaf key differs")
					return
				}
				if res.Steps <= 0 || res.Round <= 0 {
					errs <- errors.New("result lacks steps/round provenance")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Served != clients*perClient {
		t.Fatalf("served %d, want %d", st.Served, clients*perClient)
	}
	if st.Rounds <= 0 || st.SimSteps <= 0 {
		t.Fatalf("stats lack rounds/steps: %+v", st)
	}
}

// TestBatchingAmortizesRounds checks the point of the subsystem: queries
// admitted together ride one multisearch round, so rounds ≪ queries.
func TestBatchingAmortizesRounds(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 20 * time.Millisecond, QueueDepth: 256})
	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := s.Lookup(context.Background(), int64(i)); !errors.Is(err, ErrOverloaded) {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	// 48 queries on a 64-cell mesh with a 20ms linger should take far fewer
	// than 48 rounds; allow wide slack for scheduling (the bound that matters
	// is "not one round per query").
	if st.Rounds >= n/2 {
		t.Fatalf("%d rounds for %d queries — batching is not amortizing", st.Rounds, n)
	}
	if st.PeakBatch < 2 {
		t.Fatalf("peak batch %d, want ≥ 2", st.PeakBatch)
	}
}

// stallInjector wedges the executor: once armed, the first injector
// consultation inside a round blocks until release is closed. It injects no
// faults (every answer is 0 = "no lie"), so the stalled round completes
// normally once released — a pure wall-clock stall for admission tests.
type stallInjector struct {
	armed   atomic.Bool
	once    sync.Once
	stalled chan struct{} // closed when the executor first blocks
	release chan struct{} // close to let the round proceed
}

func newStallInjector() *stallInjector {
	return &stallInjector{stalled: make(chan struct{}), release: make(chan struct{})}
}

func (g *stallInjector) block() {
	if g.armed.Load() {
		g.once.Do(func() { close(g.stalled) })
		<-g.release
	}
}
func (g *stallInjector) SortLie(string, int) int64                { g.block(); return 0 }
func (g *stallInjector) CorruptCell(string, int) (int, int, bool) { g.block(); return 0, 0, false }
func (g *stallInjector) DropReply(int) (int, bool)                { g.block(); return 0, false }
func (g *stallInjector) DuplicateReply(int) (int, int, bool)      { g.block(); return 0, 0, false }

// TestOverloadRejectsTyped wedges the executor mid-round and requires the
// typed fast-fail once the bounded pipeline is full. With the round stalled,
// the pipeline absorbs at most 4 more lookups (one-slot batches channel,
// one batch held by the collector, two queued), so 11 further clients must
// see at least 7 rejections — deterministically, not by racing the round.
func TestOverloadRejectsTyped(t *testing.T) {
	inj := newStallInjector()
	s := newTestServer(t, Config{Side: 8, MaxBatch: 1, QueueDepth: 2, Linger: 0, Injector: inj})
	inj.armed.Store(true)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	lookup := func(i int) {
		defer wg.Done()
		_, err := s.Lookup(context.Background(), int64(i))
		errs <- err
	}
	wg.Add(1)
	go lookup(0)
	<-inj.stalled // the executor is now blocked inside round 1
	for i := 1; i < 12; i++ {
		wg.Add(1)
		go lookup(i)
	}
	// Rejections are immediate; admitted lookups block until release. Wait
	// for the guaranteed-excess rejections before unblocking the round.
	var overloaded int
	for overloaded < 7 {
		if err := <-errs; errors.Is(err, ErrOverloaded) {
			overloaded++
		} else if err != nil {
			t.Fatalf("unexpected lookup error: %v", err)
		}
	}
	inj.armed.Store(false)
	close(inj.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Errorf("unexpected lookup error: %v", err)
		}
	}
	if st := s.Stats(); st.Rejected < 7 {
		t.Fatalf("stats recorded %d rejections, want ≥ 7: %+v", st.Rejected, st)
	}
}

// TestShutdownDrainsQueuedLookups submits lookups, begins Shutdown, and
// requires every already-admitted query to be answered (not errored) while
// later lookups fail with ErrClosed.
func TestShutdownDrainsQueuedLookups(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 5 * time.Millisecond})
	const n = 24
	results := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Lookup(context.Background(), int64(i))
			results <- err
		}()
	}
	// Give the lookups a moment to be admitted, then drain.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown failed: %v", err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("admitted lookup errored across drain: %v", err)
		}
	}
	if _, err := s.Lookup(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown lookup returned %v, want ErrClosed", err)
	}
	// Second Shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestBudgetAbortDeliversTypedError serves with an absurdly small per-round
// budget and the oracle fallback disabled: the round must fail and every
// query of the batch must receive an error unwrapping to
// *mesh.BudgetExceededError — proving the run-control seam composes with
// serving. (With the fallback enabled the same overrun is answered degraded;
// see TestBudgetOverrunDegradesToOracle.)
func TestBudgetAbortDeliversTypedError(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Budget: 3, DisableDegrade: true})
	_, err := s.Lookup(context.Background(), 1)
	if err == nil {
		t.Fatal("lookup under a 3-step budget succeeded")
	}
	var be *mesh.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("lookup error %v does not unwrap to *mesh.BudgetExceededError", err)
	}
	if st := s.Stats(); st.Failed == 0 {
		t.Fatalf("stats recorded no failures: %+v", st)
	}
	// The server survives a failed round: later rounds still answer (the
	// budget keeps failing them, but the loop must not wedge).
	if _, err := s.Lookup(context.Background(), 2); err == nil {
		t.Fatal("second lookup under the budget succeeded")
	}
}

// TestExpiredDrainCancelsInFlight shuts down with an already-expired context
// and requires Shutdown to return promptly with ctx.Err while in-flight
// lookups get the cancellation fault.
func TestExpiredDrainCancelsInFlight(t *testing.T) {
	s, err := New(Config{Side: 8, Linger: 50 * time.Millisecond, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Lookup(context.Background(), int64(i))
			errs <- err
		}()
	}
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the drain starts
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown with expired context returned %v", err)
	}
	wg.Wait()
	close(errs)
	var canceled int
	for err := range errs {
		var ce *mesh.CanceledError
		if errors.As(err, &ce) {
			canceled++
		} else if err != nil {
			t.Fatalf("in-flight lookup got %v, want nil or *mesh.CanceledError", err)
		}
	}
	t.Logf("%d of %d lookups cancelled, rest served before the abort", canceled, n)
}

// TestHTTPSurface exercises /search and /metrics end to end, including the
// typed error mapping and the clamped headroom.
func TestHTTPSurface(t *testing.T) {
	tr := trace.New()
	s := newTestServer(t, Config{Side: 8, Tracer: tr, Budget: 1 << 40, Linger: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/search?key=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/search?key=3 → %d", resp.StatusCode)
	}
	if resp, err := srv.Client().Get(srv.URL + "/search?key=zebra"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("/search?key=zebra → %d, want 400", resp.StatusCode)
		}
	}
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("/metrics → %d", mresp.StatusCode)
	}
}

// TestConfigValidation pins the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Side: 3}); err == nil {
		t.Fatal("non-power-of-two side accepted")
	}
	keys := make([]int64, 200) // a (2,3)-tree over 200 keys cannot fit 64 cells
	for i := range keys {
		keys[i] = int64(i)
	}
	if _, err := New(Config{Side: 8, Keys: keys}); err == nil {
		t.Fatal("oversized dictionary accepted")
	}
}
