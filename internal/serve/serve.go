// Package serve turns the batch multisearch machinery into a query-serving
// subsystem: a long-lived mesh holding a built hierarchical DAG (the dict
// (a,b)-tree), an admission queue accepting lookups from many concurrent
// clients, and a round loop that collects admitted queries into batches and
// answers each batch with one multisearch round (DESIGN.md §3.5).
//
// The serving loop is two pipeline stages connected by a one-slot channel:
// the collector assembles the next batch (blocking for the first query, then
// filling until the batch is full or the linger deadline passes) while the
// executor simulates the current round — host-side batch assembly overlaps
// simulated mesh time. Admission is bounded: when the queue is full, Lookup
// fails fast with ErrOverloaded rather than queueing unboundedly. Shutdown
// closes admission, drains every in-flight batch through the normal round
// path, and only cancels the mesh run (via the run-control context seam) if
// the caller's drain deadline expires.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/mesh"
	"repro/internal/trace"
)

// ErrOverloaded is returned by Lookup when the admission queue is full: the
// client should back off and retry. Typed so load generators and HTTP
// handlers can distinguish overload (retryable, 429) from closure.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrClosed is returned by Lookup once Shutdown has begun.
var ErrClosed = errors.New("serve: server closed")

// Config configures a Server. The zero value of every field has a usable
// default except Side, which must be a positive power of two.
type Config struct {
	// Side is the mesh side length √n; required, power of two.
	Side int
	// Keys is the dictionary key set. Nil defaults to n/4 odd keys
	// 1, 3, 5, …, so even needles miss and odd needles below the range hit.
	Keys []int64
	// A, B select the (a,b)-tree arity; 0,0 defaults to a 2-3 tree.
	A, B int
	// Model selects the mesh cost model (default CostCounted).
	Model mesh.CostModel
	// MaxBatch caps the queries per multisearch round. 0 defaults to n,
	// one query per processor; larger values are clamped to n.
	MaxBatch int
	// QueueDepth bounds the admission queue. 0 defaults to 4×MaxBatch.
	QueueDepth int
	// Linger is how long the collector waits to fill a batch after its
	// first query arrives. ≤ 0 means no waiting: a round starts with
	// whatever is already queued.
	Linger time.Duration
	// Budget is the per-round step budget (the clock resets every round);
	// a round that exceeds it fails with a *mesh.BudgetExceededError
	// delivered to every query of the batch. 0 = unlimited.
	Budget int64
	// Tracer, when set, records one traced run per round (retention is
	// bounded by RetainRuns) and feeds the /metrics live snapshot.
	Tracer *trace.Tracer
	// RetainRuns bounds the tracer's retained runs (default 64).
	RetainRuns int
	// Parallelism bounds the simulator's goroutines (default GOMAXPROCS).
	Parallelism int
}

// Result is the answer to one lookup.
type Result struct {
	Needle  int64 `json:"needle"`
	Found   bool  `json:"found"`
	LeafKey int64 `json:"leaf_key"` // key of the reached leaf
	Steps   int32 `json:"steps"`    // search-path length of this query
	Round   int64 `json:"round"`    // multisearch round that served it
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	Accepted   int64 `json:"accepted"`    // lookups admitted to the queue
	Rejected   int64 `json:"rejected"`    // lookups refused with ErrOverloaded
	Served     int64 `json:"served"`      // lookups answered successfully
	Failed     int64 `json:"failed"`      // lookups answered with a round error
	Rounds     int64 `json:"rounds"`      // multisearch rounds executed
	SimSteps   int64 `json:"sim_steps"`   // simulated mesh steps across all rounds
	LastBatch  int64 `json:"last_batch"`  // size of the most recent batch
	PeakBatch  int64 `json:"peak_batch"`  // largest batch so far
	StepBudget int64 `json:"step_budget"` // configured per-round budget (0 = unlimited)
}

type request struct {
	needle int64
	resp   chan response
}

type response struct {
	res Result
	err error
}

// Server owns one mesh with a built dictionary and serves batched lookups
// against it. Safe for concurrent use.
type Server struct {
	cfg      Config
	m        *mesh.Mesh
	bt       *dict.BTree
	in       *core.Instance
	maxPart  int
	maxBatch int

	queue   chan request
	batches chan []request
	cancel  context.CancelFunc
	done    chan struct{}

	mu     sync.RWMutex // guards closed against Lookup's queue send
	closed bool

	accepted, rejected, served, failed atomic.Int64
	rounds, simSteps                   atomic.Int64
	lastBatch, peakBatch               atomic.Int64
}

// New builds the dictionary, loads it onto a fresh mesh, and starts the
// serving loop. The returned server answers Lookups until Shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Side <= 0 || cfg.Side&(cfg.Side-1) != 0 {
		return nil, fmt.Errorf("serve: side must be a positive power of two, got %d", cfg.Side)
	}
	n := cfg.Side * cfg.Side
	keys := cfg.Keys
	if keys == nil {
		keys = make([]int64, n/4)
		for i := range keys {
			keys[i] = int64(2*i + 1)
		}
	}
	a, b := cfg.A, cfg.B
	if a == 0 && b == 0 {
		a, b = 2, 3
	}
	bt := dict.New(keys, a, b)
	if bt.G.N() > n {
		return nil, fmt.Errorf("serve: (%d,%d)-tree over %d keys needs %d processors, mesh has %d",
			a, b, len(keys), bt.G.N(), n)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 || maxBatch > n {
		maxBatch = n
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * maxBatch
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := []mesh.Option{
		mesh.WithCostModel(cfg.Model),
		mesh.WithBudget(cfg.Budget),
		mesh.WithContext(ctx),
	}
	if cfg.Tracer != nil {
		retain := cfg.RetainRuns
		if retain <= 0 {
			retain = 64
		}
		cfg.Tracer.SetRetain(retain)
		opts = append(opts, mesh.WithTracer(cfg.Tracer))
	}
	if cfg.Parallelism > 0 {
		opts = append(opts, mesh.WithParallelism(cfg.Parallelism))
	}
	m := mesh.New(cfg.Side, opts...)

	s := &Server{
		cfg:      cfg,
		m:        m,
		bt:       bt,
		maxPart:  bt.InstallSplitter(),
		maxBatch: maxBatch,
		queue:    make(chan request, depth),
		batches:  make(chan []request, 1),
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	s.in = core.NewInstance(m, bt.G, nil, dict.Successor)
	go s.collect()
	go s.execute()
	return s, nil
}

// Tree exposes the served dictionary (for oracle checks in tests and the
// load generator).
func (s *Server) Tree() *dict.BTree { return s.bt }

// MaxBatch reports the effective per-round batch cap.
func (s *Server) MaxBatch() int { return s.maxBatch }

// Lookup submits one membership query and blocks until its round completes,
// ctx is done, or the server refuses it (ErrOverloaded when the admission
// queue is full, ErrClosed after Shutdown).
func (s *Server) Lookup(ctx context.Context, needle int64) (Result, error) {
	req := request{needle: needle, resp: make(chan response, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	// Non-blocking admission under the read lock: Shutdown takes the write
	// lock before closing the queue, so this send cannot race the close.
	select {
	case s.queue <- req:
		s.mu.RUnlock()
		s.accepted.Add(1)
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return Result{}, ErrOverloaded
	}
	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		// The round still answers into the buffered resp channel; the
		// abandoned reply is garbage-collected with it.
		return Result{}, ctx.Err()
	}
}

// collect is the admission stage: it blocks for a round's first query, then
// fills the batch until MaxBatch or the linger deadline, and hands it to the
// executor. The one-slot batches channel lets the next batch assemble while
// the current round simulates.
func (s *Server) collect() {
	defer close(s.batches)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]request, 0, s.maxBatch), first)
		if s.cfg.Linger > 0 {
			timer := time.NewTimer(s.cfg.Linger)
		fill:
			for len(batch) < s.maxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break fill
					}
					batch = append(batch, r)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		greedy:
			for len(batch) < s.maxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break greedy
					}
					batch = append(batch, r)
				default:
					break greedy
				}
			}
		}
		s.batches <- batch
	}
}

// execute runs one multisearch round per batch until the collector drains.
func (s *Server) execute() {
	defer close(s.done)
	for batch := range s.batches {
		s.runRound(batch)
	}
}

// runRound answers one batch with one multisearch round: reset the step
// clock (making the budget per-round and starting a fresh traced run), load
// the batch's queries against the resident tree, run Algorithm 2 to
// completion inside the core.Run containment boundary, and deliver each
// query's result — or, on a contained fault (budget overrun, cancellation),
// the typed error — to its waiting client.
func (s *Server) runRound(batch []request) {
	round := s.rounds.Add(1)
	s.lastBatch.Store(int64(len(batch)))
	if int64(len(batch)) > s.peakBatch.Load() {
		s.peakBatch.Store(int64(len(batch)))
	}
	queries := make([]core.Query, len(batch))
	for i, r := range batch {
		queries[i].Cur = s.bt.Root
		queries[i].State[0] = r.needle
	}
	s.m.ResetSteps()
	err := core.Run(fmt.Sprintf("serve round %d", round), func() error {
		v := s.m.Root()
		defer trace.Span(v, "round#%d q=%d", round, len(batch))()
		s.in.ResetQueries(v, queries)
		core.MultisearchAlpha(v, s.in, s.maxPart, 0)
		return nil
	})
	s.simSteps.Add(s.m.Steps())
	if err != nil {
		s.failed.Add(int64(len(batch)))
		for _, r := range batch {
			r.resp <- response{err: err}
		}
		return
	}
	results := s.in.ResultQueries()
	for i, r := range batch {
		q := results[i]
		r.resp <- response{res: Result{
			Needle:  r.needle,
			Found:   dict.Member(q),
			LeafKey: q.State[dict.StateLeafKey],
			Steps:   q.Steps,
			Round:   round,
		}}
	}
	s.served.Add(int64(len(batch)))
}

// Shutdown stops admission and drains: queued and in-flight batches are
// answered through the normal round path. If ctx expires first, the mesh
// run is cancelled through the run-control seam — the in-flight round (and
// any still-queued batch) fails fast with a *mesh.CanceledError delivered
// to its clients — and Shutdown returns ctx.Err(). Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	select {
	case <-s.done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.done
		return ctx.Err()
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Served:     s.served.Load(),
		Failed:     s.failed.Load(),
		Rounds:     s.rounds.Load(),
		SimSteps:   s.simSteps.Load(),
		LastBatch:  s.lastBatch.Load(),
		PeakBatch:  s.peakBatch.Load(),
		StepBudget: s.cfg.Budget,
	}
}
